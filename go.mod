module famedb

go 1.22
