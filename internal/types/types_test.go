package types

import (
	"bytes"
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func TestKindNames(t *testing.T) {
	cases := []struct {
		in   string
		want Kind
	}{
		{"INT", KindInt}, {"integer", KindInt},
		{"FLOAT", KindFloat}, {"real", KindFloat}, {"DOUBLE", KindFloat},
		{"TEXT", KindString}, {"varchar", KindString},
		{"BLOB", KindBytes},
		{"bool", KindBool}, {"BOOLEAN", KindBool},
	}
	for _, c := range cases {
		got, err := KindByName(c.in)
		if err != nil || got != c.want {
			t.Errorf("KindByName(%q) = %v, %v", c.in, got, err)
		}
	}
	if _, err := KindByName("DATETIME2"); err == nil {
		t.Error("unknown type should fail")
	}
	if KindInt.String() != "INT" || KindBytes.String() != "BLOB" {
		t.Error("Kind.String wrong")
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Int(-5), "-5"},
		{Float(2.5), "2.5"},
		{Str("it's"), "'it''s'"},
		{Bytes([]byte{0xAB}), "x'ab'"},
		{Bool(true), "TRUE"},
		{Bool(false), "FALSE"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%#v.String() = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Int(3), Int(2), 1},
		{Float(1.5), Float(2.5), -1},
		{Str("a"), Str("b"), -1},
		{Bytes([]byte("ab")), Bytes([]byte("abc")), -1},
		{Bool(false), Bool(true), -1},
		{Int(1), Str("a"), -1}, // ordered by kind
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := Compare(c.b, c.a); got != -c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.b, c.a, got, -c.want)
		}
	}
}

func TestIntKeyOrderPreserving(t *testing.T) {
	vals := []int64{math.MinInt64, -1000, -1, 0, 1, 42, 1000, math.MaxInt64}
	for i := 0; i < len(vals)-1; i++ {
		a, b := EncodeIntKey(vals[i]), EncodeIntKey(vals[i+1])
		if bytes.Compare(a, b) >= 0 {
			t.Errorf("encoding of %d not < encoding of %d", vals[i], vals[i+1])
		}
	}
	for _, v := range vals {
		got, err := DecodeIntKey(EncodeIntKey(v))
		if err != nil || got != v {
			t.Errorf("round trip %d = %d, %v", v, got, err)
		}
	}
	if _, err := DecodeIntKey([]byte{1, 2}); err == nil {
		t.Error("short int key should fail")
	}
}

func TestIntKeyOrderQuick(t *testing.T) {
	f := func(a, b int64) bool {
		cmp := bytes.Compare(EncodeIntKey(a), EncodeIntKey(b))
		switch {
		case a < b:
			return cmp < 0
		case a > b:
			return cmp > 0
		default:
			return cmp == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloatKeyOrderPreserving(t *testing.T) {
	vals := []float64{
		math.Inf(-1), -1e300, -1.5, -math.SmallestNonzeroFloat64,
		0, math.SmallestNonzeroFloat64, 1.5, 1e300, math.Inf(1),
	}
	for i := 0; i < len(vals)-1; i++ {
		a, b := EncodeFloatKey(vals[i]), EncodeFloatKey(vals[i+1])
		if bytes.Compare(a, b) >= 0 {
			t.Errorf("encoding of %g not < encoding of %g", vals[i], vals[i+1])
		}
	}
	for _, v := range vals {
		got, err := DecodeFloatKey(EncodeFloatKey(v))
		if err != nil || got != v {
			t.Errorf("round trip %g = %g, %v", v, got, err)
		}
	}
}

func TestFloatKeyOrderQuick(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		cmp := bytes.Compare(EncodeFloatKey(a), EncodeFloatKey(b))
		switch {
		case a < b:
			return cmp < 0
		case a > b:
			return cmp > 0
		default:
			return cmp == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBytesKeyRoundTripQuick(t *testing.T) {
	f := func(v []byte) bool {
		got, rest, err := DecodeBytesKey(EncodeBytesKey(v))
		return err == nil && len(rest) == 0 && bytes.Equal(got, v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBytesKeyOrderQuick(t *testing.T) {
	f := func(a, b []byte) bool {
		want := bytes.Compare(a, b)
		got := bytes.Compare(EncodeBytesKey(a), EncodeBytesKey(b))
		if want < 0 {
			return got < 0
		}
		if want > 0 {
			return got > 0
		}
		return got == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBytesKeyZeroEscaping(t *testing.T) {
	// A value containing 0x00 must still sort before a longer one and
	// decode exactly.
	a := []byte{0x00}
	b := []byte{0x00, 0x00}
	if bytes.Compare(EncodeBytesKey(a), EncodeBytesKey(b)) >= 0 {
		t.Fatal("zero-byte ordering broken")
	}
	got, rest, err := DecodeBytesKey(EncodeBytesKey(b))
	if err != nil || len(rest) != 0 || !bytes.Equal(got, b) {
		t.Fatalf("round trip of %v = %v, %v, %v", b, got, rest, err)
	}
}

func TestBytesKeyErrors(t *testing.T) {
	cases := [][]byte{
		{},                 // unterminated
		{0x41},             // unterminated
		{0x00},             // truncated escape
		{0x00, 0x02},       // invalid escape
		{0x41, 0x00, 0x03}, // invalid escape after content
	}
	for _, c := range cases {
		if _, _, err := DecodeBytesKey(c); err == nil {
			t.Errorf("DecodeBytesKey(%v) should fail", c)
		}
	}
}

func TestEncodeKeyRoundTrip(t *testing.T) {
	vals := []Value{
		Int(-3), Int(0), Int(99),
		Float(-2.25), Float(3.5),
		Str(""), Str("hello"), Str("a\x00b"),
		Bytes(nil), Bytes([]byte{1, 2, 3}),
		Bool(true), Bool(false),
	}
	for _, v := range vals {
		got, err := DecodeKey(EncodeKey(v))
		if err != nil {
			t.Errorf("DecodeKey(%v): %v", v, err)
			continue
		}
		if Compare(got, v) != 0 {
			t.Errorf("round trip %v = %v", v, got)
		}
	}
}

func TestEncodeKeyOrderMatchesCompare(t *testing.T) {
	vals := []Value{
		Int(-3), Int(0), Int(99),
		Float(-2.25), Float(3.5),
		Str("a"), Str("ab"), Str("b"),
		Bool(false), Bool(true),
	}
	for _, a := range vals {
		for _, b := range vals {
			keyCmp := bytes.Compare(EncodeKey(a), EncodeKey(b))
			valCmp := Compare(a, b)
			if (keyCmp < 0) != (valCmp < 0) || (keyCmp > 0) != (valCmp > 0) {
				t.Errorf("key order of (%v, %v) = %d, value order %d", a, b, keyCmp, valCmp)
			}
		}
	}
}

func TestCompositeKeyRoundTrip(t *testing.T) {
	in := []Value{Str("user"), Int(42), Bool(true)}
	out, err := DecodeCompositeKey(EncodeCompositeKey(in...))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d components, want %d", len(out), len(in))
	}
	for i := range in {
		if Compare(in[i], out[i]) != 0 {
			t.Errorf("component %d: %v != %v", i, in[i], out[i])
		}
	}
}

func TestCompositeKeyOrdering(t *testing.T) {
	// ("a", 2) < ("a", 10) < ("b", 1): component-wise, not bytewise on
	// the raw strings.
	k1 := EncodeCompositeKey(Str("a"), Int(2))
	k2 := EncodeCompositeKey(Str("a"), Int(10))
	k3 := EncodeCompositeKey(Str("b"), Int(1))
	if !(bytes.Compare(k1, k2) < 0 && bytes.Compare(k2, k3) < 0) {
		t.Fatal("composite ordering broken")
	}
	// Prefix property: "ab" sorts after ("a", anything) only when
	// compared as the same arity; distinct arities stay self-delimiting.
	ka := EncodeCompositeKey(Str("a"))
	kab := EncodeCompositeKey(Str("ab"))
	if bytes.Compare(ka, kab) >= 0 {
		t.Fatal("string prefix ordering broken")
	}
}

func TestDecodeKeyErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{0x7F},                          // invalid tag
		{byte(KindInt), 1},              // truncated
		{byte(KindBool)},                // truncated
		append(EncodeKey(Int(1)), 0xFF), // trailing
	}
	for _, c := range cases {
		if _, err := DecodeKey(c); err == nil {
			t.Errorf("DecodeKey(%v) should fail", c)
		}
	}
}

func TestRowRoundTrip(t *testing.T) {
	rows := [][]Value{
		{},
		{Int(7)},
		{Int(-1), Float(2.5), Str("x"), Bytes([]byte{9}), Bool(true)},
		{Str(""), Str("unicode: héllo")},
	}
	for _, row := range rows {
		got, err := DecodeRow(EncodeRow(row))
		if err != nil {
			t.Errorf("DecodeRow(%v): %v", row, err)
			continue
		}
		if len(got) != len(row) {
			t.Errorf("row %v decoded to %v", row, got)
			continue
		}
		for i := range row {
			if Compare(row[i], got[i]) != 0 {
				t.Errorf("row component %d: %v != %v", i, row[i], got[i])
			}
		}
	}
}

func TestRowRoundTripQuick(t *testing.T) {
	f := func(i int64, fl float64, s string, bs []byte, b bool) bool {
		if math.IsNaN(fl) {
			return true
		}
		row := []Value{Int(i), Float(fl), Str(s), Bytes(bs), Bool(b)}
		got, err := DecodeRow(EncodeRow(row))
		if err != nil || len(got) != 5 {
			return false
		}
		if got[3].Bytes == nil {
			got[3].Bytes = []byte{}
		}
		want := row
		if want[3].Bytes == nil {
			want[3].Bytes = []byte{}
		}
		return reflect.DeepEqual(got[0], want[0]) &&
			got[1].Float == want[1].Float &&
			got[2].Str == want[2].Str &&
			bytes.Equal(got[3].Bytes, want[3].Bytes) &&
			got[4].Bool == want[4].Bool
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRowErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		{2, byte(KindInt)},                       // truncated value
		{1, 0x7F},                                // bad tag
		{1, byte(KindFloat), 1, 2},               // truncated float
		{1, byte(KindString), 5, 'a'},            // truncated string
		append(EncodeRow([]Value{Int(1)}), 0xEE), // trailing
	}
	for _, c := range cases {
		if _, err := DecodeRow(c); err == nil {
			t.Errorf("DecodeRow(%v) should fail", c)
		}
	}
}
