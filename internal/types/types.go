// Package types is the Data Types feature of FAME-DBMS (Fig. 2): typed
// values, order-preserving key encodings, and row serialization.
//
// Key encodings are designed so that bytes.Compare on encoded keys
// matches the natural ordering of the values, which is what the B+-tree
// index requires. Composite keys concatenate encoded components with a
// self-delimiting escape for variable-length fields.
package types

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates the supported data types.
type Kind int

const (
	// KindInt is a signed 64-bit integer.
	KindInt Kind = iota + 1
	// KindFloat is an IEEE-754 double.
	KindFloat
	// KindString is a UTF-8 string.
	KindString
	// KindBytes is an opaque byte string.
	KindBytes
	// KindBool is a boolean.
	KindBool
)

// String returns the SQL-ish type name.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "INT"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "TEXT"
	case KindBytes:
		return "BLOB"
	case KindBool:
		return "BOOL"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// KindByName parses a SQL type name (case-insensitive).
func KindByName(name string) (Kind, error) {
	switch strings.ToUpper(name) {
	case "INT", "INTEGER":
		return KindInt, nil
	case "FLOAT", "REAL", "DOUBLE":
		return KindFloat, nil
	case "TEXT", "STRING", "VARCHAR":
		return KindString, nil
	case "BLOB", "BYTES":
		return KindBytes, nil
	case "BOOL", "BOOLEAN":
		return KindBool, nil
	default:
		return 0, fmt.Errorf("types: unknown type %q", name)
	}
}

// Value is a typed value. Exactly the field matching Kind is meaningful.
type Value struct {
	Kind  Kind
	Int   int64
	Float float64
	Str   string
	Bytes []byte
	Bool  bool
}

// Int returns an integer value.
func Int(v int64) Value { return Value{Kind: KindInt, Int: v} }

// Float returns a float value.
func Float(v float64) Value { return Value{Kind: KindFloat, Float: v} }

// Str returns a string value.
func Str(v string) Value { return Value{Kind: KindString, Str: v} }

// Bytes returns a byte-string value.
func Bytes(v []byte) Value { return Value{Kind: KindBytes, Bytes: v} }

// Bool returns a boolean value.
func Bool(v bool) Value { return Value{Kind: KindBool, Bool: v} }

// String renders the value as a SQL literal.
func (v Value) String() string {
	switch v.Kind {
	case KindInt:
		return strconv.FormatInt(v.Int, 10)
	case KindFloat:
		return strconv.FormatFloat(v.Float, 'g', -1, 64)
	case KindString:
		return "'" + strings.ReplaceAll(v.Str, "'", "''") + "'"
	case KindBytes:
		return fmt.Sprintf("x'%x'", v.Bytes)
	case KindBool:
		if v.Bool {
			return "TRUE"
		}
		return "FALSE"
	default:
		return "NULL"
	}
}

// Compare orders two values of the same kind: -1, 0, or +1. Comparing
// different kinds orders by kind, so heterogeneous sorts are stable.
func Compare(a, b Value) int {
	if a.Kind != b.Kind {
		return cmpInt(int64(a.Kind), int64(b.Kind))
	}
	switch a.Kind {
	case KindInt:
		return cmpInt(a.Int, b.Int)
	case KindFloat:
		switch {
		case a.Float < b.Float:
			return -1
		case a.Float > b.Float:
			return 1
		default:
			return 0
		}
	case KindString:
		return strings.Compare(a.Str, b.Str)
	case KindBytes:
		return bytesCompare(a.Bytes, b.Bytes)
	case KindBool:
		return cmpInt(boolInt(a.Bool), boolInt(b.Bool))
	default:
		return 0
	}
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func bytesCompare(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	return cmpInt(int64(len(a)), int64(len(b)))
}

// --- Order-preserving key encodings ---

// EncodeIntKey encodes a signed integer so that bytes.Compare matches
// integer order: big-endian with the sign bit flipped.
func EncodeIntKey(v int64) []byte {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(v)^(1<<63))
	return buf[:]
}

// DecodeIntKey reverses EncodeIntKey.
func DecodeIntKey(b []byte) (int64, error) {
	if len(b) != 8 {
		return 0, fmt.Errorf("types: int key has %d bytes, want 8", len(b))
	}
	return int64(binary.BigEndian.Uint64(b) ^ (1 << 63)), nil
}

// EncodeFloatKey encodes a float so that bytes.Compare matches float
// order (NaN sorts above +Inf). Positive floats flip the sign bit;
// negative floats flip all bits.
func EncodeFloatKey(v float64) []byte {
	bits := math.Float64bits(v)
	if bits&(1<<63) != 0 {
		bits = ^bits
	} else {
		bits |= 1 << 63
	}
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], bits)
	return buf[:]
}

// DecodeFloatKey reverses EncodeFloatKey.
func DecodeFloatKey(b []byte) (float64, error) {
	if len(b) != 8 {
		return 0, fmt.Errorf("types: float key has %d bytes, want 8", len(b))
	}
	bits := binary.BigEndian.Uint64(b)
	if bits&(1<<63) != 0 {
		bits &^= 1 << 63
	} else {
		bits = ^bits
	}
	return math.Float64frombits(bits), nil
}

// EncodeBytesKey encodes a byte string self-delimitingly while
// preserving order: each 0x00 becomes 0x00 0xFF, and the encoding ends
// with 0x00 0x01. This allows concatenating encoded components into
// composite keys that still sort component-wise.
func EncodeBytesKey(v []byte) []byte {
	out := make([]byte, 0, len(v)+2)
	for _, c := range v {
		if c == 0x00 {
			out = append(out, 0x00, 0xFF)
		} else {
			out = append(out, c)
		}
	}
	return append(out, 0x00, 0x01)
}

// DecodeBytesKey decodes one EncodeBytesKey component from the front of
// b, returning the value and the remaining bytes.
func DecodeBytesKey(b []byte) (val, rest []byte, err error) {
	var out []byte
	for i := 0; i < len(b); i++ {
		if b[i] != 0x00 {
			out = append(out, b[i])
			continue
		}
		if i+1 >= len(b) {
			return nil, nil, errors.New("types: truncated bytes key")
		}
		switch b[i+1] {
		case 0xFF:
			out = append(out, 0x00)
			i++
		case 0x01:
			return out, b[i+2:], nil
		default:
			return nil, nil, fmt.Errorf("types: invalid escape 0x00 0x%02X", b[i+1])
		}
	}
	return nil, nil, errors.New("types: unterminated bytes key")
}

// EncodeKey encodes a single value as an order-preserving key with a
// one-byte kind tag so keys of different kinds never collide.
func EncodeKey(v Value) []byte {
	out := []byte{byte(v.Kind)}
	switch v.Kind {
	case KindInt:
		out = append(out, EncodeIntKey(v.Int)...)
	case KindFloat:
		out = append(out, EncodeFloatKey(v.Float)...)
	case KindString:
		out = append(out, EncodeBytesKey([]byte(v.Str))...)
	case KindBytes:
		out = append(out, EncodeBytesKey(v.Bytes)...)
	case KindBool:
		out = append(out, byte(boolInt(v.Bool)))
	default:
		panic(fmt.Sprintf("types: EncodeKey of invalid kind %v", v.Kind))
	}
	return out
}

// DecodeKey reverses EncodeKey.
func DecodeKey(b []byte) (Value, error) {
	v, rest, err := decodeKeyPrefix(b)
	if err != nil {
		return Value{}, err
	}
	if len(rest) != 0 {
		return Value{}, fmt.Errorf("types: %d trailing bytes after key", len(rest))
	}
	return v, nil
}

// EncodeCompositeKey concatenates the order-preserving encodings of the
// given values; the result sorts component-wise.
func EncodeCompositeKey(vs ...Value) []byte {
	var out []byte
	for _, v := range vs {
		out = append(out, EncodeKey(v)...)
	}
	return out
}

// DecodeCompositeKey decodes all components of a composite key.
func DecodeCompositeKey(b []byte) ([]Value, error) {
	var out []Value
	for len(b) > 0 {
		v, rest, err := decodeKeyPrefix(b)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
		b = rest
	}
	return out, nil
}

func decodeKeyPrefix(b []byte) (Value, []byte, error) {
	if len(b) == 0 {
		return Value{}, nil, errors.New("types: empty key")
	}
	kind := Kind(b[0])
	b = b[1:]
	switch kind {
	case KindInt:
		if len(b) < 8 {
			return Value{}, nil, errors.New("types: truncated int key")
		}
		v, err := DecodeIntKey(b[:8])
		return Int(v), b[8:], err
	case KindFloat:
		if len(b) < 8 {
			return Value{}, nil, errors.New("types: truncated float key")
		}
		v, err := DecodeFloatKey(b[:8])
		return Float(v), b[8:], err
	case KindString:
		val, rest, err := DecodeBytesKey(b)
		return Str(string(val)), rest, err
	case KindBytes:
		val, rest, err := DecodeBytesKey(b)
		return Bytes(val), rest, err
	case KindBool:
		if len(b) < 1 {
			return Value{}, nil, errors.New("types: truncated bool key")
		}
		return Bool(b[0] != 0), b[1:], nil
	default:
		return Value{}, nil, fmt.Errorf("types: invalid key tag 0x%02X", byte(kind))
	}
}

// --- Row (tuple) serialization ---

// EncodeRow serializes a tuple of values compactly (not
// order-preserving; rows are payloads, not keys).
func EncodeRow(vs []Value) []byte {
	out := []byte{byte(len(vs))}
	for _, v := range vs {
		out = append(out, byte(v.Kind))
		switch v.Kind {
		case KindInt:
			out = binary.AppendVarint(out, v.Int)
		case KindFloat:
			var buf [8]byte
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v.Float))
			out = append(out, buf[:]...)
		case KindString:
			out = binary.AppendUvarint(out, uint64(len(v.Str)))
			out = append(out, v.Str...)
		case KindBytes:
			out = binary.AppendUvarint(out, uint64(len(v.Bytes)))
			out = append(out, v.Bytes...)
		case KindBool:
			out = append(out, byte(boolInt(v.Bool)))
		default:
			panic(fmt.Sprintf("types: EncodeRow of invalid kind %v", v.Kind))
		}
	}
	return out
}

// DecodeRow reverses EncodeRow.
func DecodeRow(b []byte) ([]Value, error) {
	return DecodeRowMask(b, nil)
}

// DecodeRowMask decodes a row materializing only the columns whose
// mask entry is true; the rest stay zero Values (their bytes are still
// walked and validated, but string and byte columns skip the copy).
// A nil mask materializes every column. Columns beyond the mask's
// length are materialized — a short mask only elides its false entries.
func DecodeRowMask(b []byte, mask []bool) ([]Value, error) {
	if len(b) == 0 {
		return nil, errors.New("types: empty row")
	}
	n := int(b[0])
	b = b[1:]
	out := make([]Value, 0, n)
	for i := 0; i < n; i++ {
		if len(b) == 0 {
			return nil, errors.New("types: truncated row")
		}
		kind := Kind(b[0])
		b = b[1:]
		switch kind {
		case KindInt:
			v, sz := binary.Varint(b)
			if sz <= 0 {
				return nil, errors.New("types: bad varint in row")
			}
			out = append(out, Int(v))
			b = b[sz:]
		case KindFloat:
			if len(b) < 8 {
				return nil, errors.New("types: truncated float in row")
			}
			out = append(out, Float(math.Float64frombits(binary.LittleEndian.Uint64(b))))
			b = b[8:]
		case KindString, KindBytes:
			l, sz := binary.Uvarint(b)
			if sz <= 0 || uint64(len(b)-sz) < l {
				return nil, errors.New("types: truncated string in row")
			}
			switch {
			case mask != nil && i < len(mask) && !mask[i]:
				out = append(out, Value{}) // elided: walked, not copied
			case kind == KindString:
				out = append(out, Str(string(b[sz:sz+int(l)])))
			default:
				out = append(out, Bytes(append([]byte(nil), b[sz:sz+int(l)]...)))
			}
			b = b[sz+int(l):]
		case KindBool:
			if len(b) < 1 {
				return nil, errors.New("types: truncated bool in row")
			}
			out = append(out, Bool(b[0] != 0))
			b = b[1:]
		default:
			return nil, fmt.Errorf("types: invalid row tag 0x%02X", byte(kind))
		}
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("types: %d trailing bytes after row", len(b))
	}
	return out, nil
}
