package txn

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"famedb/internal/access"
	"famedb/internal/index"
	"famedb/internal/osal"
	"famedb/internal/storage"
)

// env bundles the pieces a transactional product needs.
type env struct {
	fs    *osal.MemFS
	pf    *storage.PageFile
	store *access.Store
	meta  storage.PageID
}

func newEnv(t *testing.T) *env {
	t.Helper()
	fs := osal.NewMemFS()
	f, err := fs.Create("data.db")
	if err != nil {
		t.Fatal(err)
	}
	pf, err := storage.CreatePageFile(f, 512)
	if err != nil {
		t.Fatal(err)
	}
	idx, meta, err := index.CreateBTree(pf, index.AllBTreeOps())
	if err != nil {
		t.Fatal(err)
	}
	return &env{fs: fs, pf: pf, store: access.New(idx, access.AllOps()), meta: meta}
}

func (e *env) openMgr(t *testing.T, opts Options) *Manager {
	t.Helper()
	if opts.Protocol == nil {
		opts.Protocol = Force{}
	}
	opts.SyncStore = e.pf.Sync
	m, err := Open(e.fs, "wal.log", e.store, opts)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCommitAppliesWrites(t *testing.T) {
	e := newEnv(t)
	m := e.openMgr(t, Options{Locking: true, Recovery: true})
	tx := m.Begin()
	if err := tx.Put([]byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Put([]byte("b"), []byte("2")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	v, err := e.store.Get([]byte("a"))
	if err != nil || string(v) != "1" {
		t.Fatalf("store after commit = %q, %v", v, err)
	}
}

func TestAbortDiscardsWrites(t *testing.T) {
	e := newEnv(t)
	m := e.openMgr(t, Options{})
	tx := m.Begin()
	tx.Put([]byte("x"), []byte("1"))
	tx.Abort()
	if _, err := e.store.Get([]byte("x")); !errors.Is(err, access.ErrNotFound) {
		t.Fatalf("aborted write visible: %v", err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("Commit after Abort = %v", err)
	}
}

func TestReadYourWrites(t *testing.T) {
	e := newEnv(t)
	m := e.openMgr(t, Options{})
	tx := m.Begin()
	tx.Put([]byte("k"), []byte("mine"))
	v, err := tx.Get([]byte("k"))
	if err != nil || string(v) != "mine" {
		t.Fatalf("txn Get = %q, %v", v, err)
	}
	// Not visible outside before commit.
	if _, err := e.store.Get([]byte("k")); !errors.Is(err, access.ErrNotFound) {
		t.Fatal("uncommitted write visible outside")
	}
	// Remove inside the txn hides the key from its own reads.
	if err := tx.Remove([]byte("k")); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Get([]byte("k")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after own remove = %v", err)
	}
	tx.Commit()
}

func TestUpdateRemoveRequireExistence(t *testing.T) {
	e := newEnv(t)
	m := e.openMgr(t, Options{})
	tx := m.Begin()
	if err := tx.Update([]byte("nope"), []byte("v")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Update missing = %v", err)
	}
	if err := tx.Remove([]byte("nope")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Remove missing = %v", err)
	}
	// A key put earlier in the same txn counts as existing.
	tx.Put([]byte("k"), []byte("v1"))
	if err := tx.Update([]byte("k"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	v, _ := e.store.Get([]byte("k"))
	if string(v) != "v2" {
		t.Fatalf("final value = %q", v)
	}
}

func TestRecoveryReplaysCommitted(t *testing.T) {
	fs := osal.NewMemFS()
	// Session 1: write transactions, then "crash" without applying the
	// store pages durably — we simulate by building a fresh store over
	// the same log.
	{
		f, _ := fs.Create("data.db")
		pf, _ := storage.CreatePageFile(f, 512)
		idx, _, _ := index.CreateBTree(pf, index.AllBTreeOps())
		store := access.New(idx, access.AllOps())
		m, err := Open(fs, "wal.log", store, Options{Protocol: Force{}})
		if err != nil {
			t.Fatal(err)
		}
		tx := m.Begin()
		tx.Put([]byte("committed"), []byte("yes"))
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		tx2 := m.Begin()
		tx2.Put([]byte("uncommitted"), []byte("no"))
		// tx2 never commits: crash now (do not Close; the log holds
		// only tx1's records plus nothing for tx2).
		_ = tx2
	}
	// Session 2: fresh store, recovery replays the log.
	f2, _ := fs.Create("data2.db")
	pf2, _ := storage.CreatePageFile(f2, 512)
	idx2, _, _ := index.CreateBTree(pf2, index.AllBTreeOps())
	store2 := access.New(idx2, access.AllOps())
	m2, err := Open(fs, "wal.log", store2, Options{Protocol: Force{}, Recovery: true})
	if err != nil {
		t.Fatal(err)
	}
	if m2.Recovered != 1 {
		t.Fatalf("Recovered = %d, want 1", m2.Recovered)
	}
	v, err := store2.Get([]byte("committed"))
	if err != nil || string(v) != "yes" {
		t.Fatalf("recovered value = %q, %v", v, err)
	}
	if _, err := store2.Get([]byte("uncommitted")); !errors.Is(err, access.ErrNotFound) {
		t.Fatal("uncommitted transaction leaked through recovery")
	}
}

func TestRecoveryIsIdempotent(t *testing.T) {
	fs := osal.NewMemFS()
	build := func() *access.Store {
		f, _ := fs.Create(fmt.Sprintf("d%d.db", len(mustList(t, fs))))
		pf, _ := storage.CreatePageFile(f, 512)
		idx, _, _ := index.CreateBTree(pf, index.AllBTreeOps())
		return access.New(idx, access.AllOps())
	}
	s1 := build()
	m1, _ := Open(fs, "wal.log", s1, Options{Protocol: Force{}, Recovery: true})
	tx := m1.Begin()
	tx.Put([]byte("k"), []byte("v"))
	tx.Put([]byte("gone"), []byte("x"))
	tx.Commit()
	tx2 := m1.Begin()
	tx2.Remove([]byte("gone"))
	tx2.Commit()

	// Recover twice over stores that already contain the data: applying
	// the log again must not change the outcome.
	for i := 0; i < 2; i++ {
		m, err := Open(fs, "wal.log", s1, Options{Protocol: Force{}, Recovery: true})
		if err != nil {
			t.Fatal(err)
		}
		if m.Recovered != 2 {
			t.Fatalf("Recovered = %d", m.Recovered)
		}
		v, err := s1.Get([]byte("k"))
		if err != nil || string(v) != "v" {
			t.Fatalf("pass %d: k = %q, %v", i, v, err)
		}
		if _, err := s1.Get([]byte("gone")); !errors.Is(err, access.ErrNotFound) {
			t.Fatalf("pass %d: removed key resurrected", i)
		}
	}
}

func mustList(t *testing.T, fs osal.FS) []string {
	t.Helper()
	names, err := fs.List()
	if err != nil {
		t.Fatal(err)
	}
	return names
}

func TestCheckpointTruncatesLog(t *testing.T) {
	e := newEnv(t)
	m := e.openMgr(t, Options{Recovery: true})
	for i := 0; i < 10; i++ {
		tx := m.Begin()
		tx.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v"))
		tx.Commit()
	}
	before := m.LogSize()
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if m.LogSize() >= before {
		t.Fatalf("log did not shrink: %d -> %d", before, m.LogSize())
	}
	// After checkpoint a fresh recovery finds nothing to redo but the
	// data is durable in the store.
	m2, err := Open(e.fs, "wal.log", e.store, Options{Protocol: Force{}, Recovery: true})
	if err != nil {
		t.Fatal(err)
	}
	if m2.Recovered != 0 {
		t.Fatalf("Recovered after checkpoint = %d", m2.Recovered)
	}
	if _, err := e.store.Get([]byte("k5")); err != nil {
		t.Fatalf("data lost after checkpoint: %v", err)
	}
}

func TestForceVsGroupSyncCounts(t *testing.T) {
	syncsFor := func(p Protocol) int64 {
		e := newEnv(t)
		m := e.openMgr(t, Options{Protocol: p})
		for i := 0; i < 32; i++ {
			tx := m.Begin()
			tx.Put([]byte(fmt.Sprintf("k%02d", i)), []byte("v"))
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
		}
		return m.LogSyncs()
	}
	force := syncsFor(Force{})
	group := syncsFor(&Group{BatchSize: 8})
	if force != 32 {
		t.Fatalf("force syncs = %d, want 32", force)
	}
	if group != 4 {
		t.Fatalf("group syncs = %d, want 4", group)
	}
}

func TestGroupCommitFlushForcesDurability(t *testing.T) {
	e := newEnv(t)
	g := &Group{BatchSize: 100}
	m := e.openMgr(t, Options{Protocol: g})
	tx := m.Begin()
	tx.Put([]byte("k"), []byte("v"))
	tx.Commit()
	if m.LogSyncs() != 0 {
		t.Fatalf("group synced early: %d", m.LogSyncs())
	}
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	if m.LogSyncs() != 1 {
		t.Fatalf("Flush syncs = %d", m.LogSyncs())
	}
}

func TestEmptyCommitWritesNothing(t *testing.T) {
	e := newEnv(t)
	m := e.openMgr(t, Options{})
	before := m.LogSize()
	tx := m.Begin()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if m.LogSize() != before {
		t.Fatal("empty commit appended log records")
	}
}

func TestTornLogTailIgnored(t *testing.T) {
	fs := osal.NewMemFS()
	e := &env{fs: fs}
	f, _ := fs.Create("data.db")
	e.pf, _ = storage.CreatePageFile(f, 512)
	idx, _, _ := index.CreateBTree(e.pf, index.AllBTreeOps())
	e.store = access.New(idx, access.AllOps())
	m := e.openMgr(t, Options{})
	tx := m.Begin()
	tx.Put([]byte("good"), []byte("v"))
	tx.Commit()
	m.Close()

	// Append garbage to simulate a torn write.
	lf, _ := fs.Open("wal.log")
	size, _ := lf.Size()
	lf.WriteAt([]byte{0xFF, 0x13, 0x00, 0x00, 0xAA}, size)
	lf.Close()

	idx2, _, _ := index.CreateBTree(e.pf, index.AllBTreeOps())
	store2 := access.New(idx2, access.AllOps())
	m2, err := Open(fs, "wal.log", store2, Options{Protocol: Force{}, Recovery: true})
	if err != nil {
		t.Fatalf("open over torn log: %v", err)
	}
	if m2.Recovered != 1 {
		t.Fatalf("Recovered = %d", m2.Recovered)
	}
	if _, err := store2.Get([]byte("good")); err != nil {
		t.Fatalf("good record lost: %v", err)
	}
}

func TestConcurrentTransactionsWithLocking(t *testing.T) {
	e := newEnv(t)
	m := e.openMgr(t, Options{Locking: true})
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				tx := m.Begin()
				key := []byte(fmt.Sprintf("g%d-k%d", g, i))
				if err := tx.Put(key, []byte("v")); err != nil {
					errs <- err
					return
				}
				if err := tx.Commit(); err != nil {
					errs <- err
					return
				}
				if _, err := m.Begin().Get(key); err != nil {
					errs <- fmt.Errorf("read back %s: %w", key, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	n, _ := e.store.Len()
	if n != 160 {
		t.Fatalf("Len = %d, want 160", n)
	}
}

func TestManagerClose(t *testing.T) {
	e := newEnv(t)
	m := e.openMgr(t, Options{})
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err == nil {
		t.Fatal("double close should fail")
	}
	tx := m.Begin()
	tx.Put([]byte("k"), []byte("v"))
	if err := tx.Commit(); err == nil {
		t.Fatal("commit after close should fail")
	}
}

func TestProtocolRequired(t *testing.T) {
	e := newEnv(t)
	if _, err := Open(e.fs, "wal.log", e.store, Options{}); err == nil {
		t.Fatal("missing protocol should fail")
	}
}

func TestProtocolNames(t *testing.T) {
	if (Force{}).Name() != "ForceCommit" || (&Group{}).Name() != "GroupCommit" {
		t.Fatal("protocol names wrong")
	}
}
