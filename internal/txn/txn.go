package txn

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"famedb/internal/access"
	"famedb/internal/osal"
	"famedb/internal/stats"
	"famedb/internal/storage"
	"famedb/internal/trace"
)

// Protocol is the CommitProtocol alternative of the Transaction feature
// (Fig. 2): it decides when appended commit records become durable.
type Protocol interface {
	// Name returns the feature name ("ForceCommit" or "GroupCommit").
	Name() string
	// OnCommit is called after a transaction's records (including the
	// commit record) were appended. Only the unpipelined commit path
	// uses it; with Locking composed the group-commit pipeline decides
	// durability from BatchLimit instead.
	OnCommit(w *WAL) error
	// Flush forces durability of everything appended so far.
	Flush(w *WAL) error
	// BatchLimit returns how many transactions the pipelined
	// group-commit leader may coalesce into one durable sync.
	// ForceCommit returns 1 — the degenerate one-transaction batch —
	// which preserves its sync-per-commit durability contract.
	BatchLimit() int
}

// Force syncs the log on every commit: maximal durability, one sync per
// transaction.
type Force struct{}

// Name implements Protocol.
func (Force) Name() string { return "ForceCommit" }

// OnCommit implements Protocol.
func (Force) OnCommit(w *WAL) error { return w.Sync() }

// Flush implements Protocol.
func (Force) Flush(w *WAL) error { return w.Sync() }

// BatchLimit implements Protocol: every batch is one transaction.
func (Force) BatchLimit() int { return 1 }

// Group batches commits and syncs once per BatchSize commits,
// amortizing sync cost at the price of a durability window. Commit
// returns once the records are appended; durability follows with the
// batch (call Manager.Flush to force it).
type Group struct {
	// BatchSize is the number of commits per sync (default 8).
	BatchSize int
	pending   int
}

// Name implements Protocol.
func (g *Group) Name() string { return "GroupCommit" }

// OnCommit implements Protocol.
func (g *Group) OnCommit(w *WAL) error {
	n := g.BatchSize
	if n <= 0 {
		n = 8
	}
	g.pending++
	if g.pending >= n {
		g.pending = 0
		return w.Sync()
	}
	return nil
}

// Flush implements Protocol.
func (g *Group) Flush(w *WAL) error {
	g.pending = 0
	return w.Sync()
}

// BatchLimit implements Protocol.
func (g *Group) BatchLimit() int {
	if g.BatchSize <= 0 {
		return 8
	}
	return g.BatchSize
}

// Errors of the transactional API.
var (
	// ErrTxnDone is returned when using a committed or aborted
	// transaction.
	ErrTxnDone = errors.New("txn: transaction already finished")
	// ErrNotFound mirrors access.ErrNotFound for transactional reads.
	ErrNotFound = access.ErrNotFound
	// ErrClosed is returned by operations on a closed manager.
	ErrClosed = errors.New("txn: manager is closed")
)

// Options configures the transaction manager from the product's feature
// selection.
type Options struct {
	// Protocol is the selected commit protocol (required).
	Protocol Protocol
	// Locking serializes transactions and guards reads against
	// concurrent applies; products used from a single goroutine can
	// deselect it.
	Locking bool
	// Recovery replays committed transactions from the log at Open
	// (feature Recovery).
	Recovery bool
	// SyncStore makes the underlying store durable; used by
	// Checkpoint. Optional: checkpointing is skipped when nil.
	SyncStore func() error
	// OnApply, if set, observes every committed operation as it is
	// applied to the store (in commit order, under the manager lock).
	// The Replication feature ships these to replicas. Recovery replays
	// are not observed.
	OnApply func(remove bool, key, value []byte) error
	// Metrics receives transactional and WAL counters when the
	// Statistics feature is composed; nil otherwise (recording is then a
	// no-op).
	Metrics *stats.Txn
	// Tracer records commit, WAL and group-commit handoff spans when
	// the Tracing feature is composed; nil otherwise.
	Tracer *trace.Tracer
	// Health is the engine-wide degraded-mode latch shared with the
	// page path. Once poisoned, commits, flushes and checkpoints return
	// storage.ErrDegraded while reads keep serving. Nil disables the
	// gate.
	Health *storage.Health
	// Retry bounds WAL append/sync retries on transient device errors
	// (osal.ErrTransient); the zero value means single attempts.
	Retry storage.RetryPolicy
	// Fault receives retry/degraded counters when the Statistics
	// feature is composed; nil otherwise.
	Fault *stats.Fault
	// Versions is the MVCC version table when that feature is composed;
	// nil otherwise. With it set, Begin pins the newest committed
	// version so transactional reads never take the manager lock, and
	// every commit batch publishes a new version after it applies.
	Versions VersionSource
}

// Manager coordinates transactions over a store.
type Manager struct {
	store *access.Store
	wal   *WAL
	opts  Options
	// fs and logName let the Replication feature keep its durable
	// resync marker (see ship.go) next to the log.
	fs      osal.FS
	logName string

	// mu serializes commits and guards the store during apply. It is a
	// no-op when the Locking feature is deselected.
	mu      rwLocker
	nextTxn atomic.Uint64
	closed  bool

	// gc is the leader-elected group-commit pipeline, active when the
	// Locking feature is composed (the single-goroutine products keep
	// the plain path: without concurrency there is nobody to share a
	// sync with).
	gc *groupCommit

	// Recovered reports how many committed transactions the opening
	// recovery pass replayed.
	Recovered int
}

// rwLocker lets Locking be a selectable feature: the null locker does
// nothing.
type rwLocker interface {
	Lock()
	Unlock()
	RLock()
	RUnlock()
}

type nullLocker struct{}

func (nullLocker) Lock()    {}
func (nullLocker) Unlock()  {}
func (nullLocker) RLock()   {}
func (nullLocker) RUnlock() {}

// Open creates the transaction manager, opening (and if configured,
// recovering) the log file logName on fs.
func Open(fs osal.FS, logName string, store *access.Store, opts Options) (*Manager, error) {
	if opts.Protocol == nil {
		return nil, errors.New("txn: a commit protocol must be selected")
	}
	w, err := openWAL(fs, logName)
	if err != nil {
		return nil, err
	}
	m := &Manager{store: store, wal: w, opts: opts, fs: fs, logName: logName}
	w.metrics = opts.Metrics
	w.tracer = opts.Tracer
	w.retry = opts.Retry
	w.health = opts.Health
	w.fault = opts.Fault
	if opts.Locking {
		m.mu = &sync.RWMutex{}
		m.gc = newGroupCommit(m, opts.Protocol.BatchLimit())
	} else {
		m.mu = nullLocker{}
	}
	if opts.Recovery {
		if err := m.recover(); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// recover replays the write sets of committed transactions in log
// order. The operations are idempotent, so replaying already-applied
// transactions is harmless.
func (m *Manager) recover() error {
	type op struct {
		remove bool
		key    []byte
		value  []byte
	}
	pending := map[uint64][]op{}
	var order []op
	if err := m.wal.scan(func(r logRecord) error {
		switch r.typ {
		case recPut:
			pending[r.txnID] = append(pending[r.txnID], op{key: r.key, value: r.value})
		case recRemove:
			pending[r.txnID] = append(pending[r.txnID], op{remove: true, key: r.key})
		case recCommit:
			order = append(order, pending[r.txnID]...)
			m.Recovered++
			delete(pending, r.txnID)
		case recCheckpoint:
			// Everything before the checkpoint is already in the store.
			order = order[:0]
			m.Recovered = 0
		}
		return nil
	}); err != nil {
		return err
	}
	idx := m.store.Index()
	for _, o := range order {
		if o.remove {
			if _, err := idx.Delete(o.key); err != nil {
				return fmt.Errorf("txn: recovery delete: %w", err)
			}
		} else {
			if err := idx.Insert(o.key, o.value); err != nil {
				return fmt.Errorf("txn: recovery insert: %w", err)
			}
		}
	}
	// With MVCC composed the replay mutated copy-on-write: publish the
	// recovered state as one version so the first snapshot pins it and
	// the replay's superseded pages reclaim.
	if err := m.installVersion(); err != nil {
		return fmt.Errorf("txn: recovery version install: %w", err)
	}
	return nil
}

// writeOp is one entry of a transaction's private write set.
type writeOp struct {
	remove bool
	key    []byte
	value  []byte
}

// Txn is a transaction: reads see committed state plus the
// transaction's own writes; writes stay private until Commit.
type Txn struct {
	m      *Manager
	id     uint64
	writes []writeOp
	// widx maps a key to the index of its latest entry in writes, so
	// read-your-writes lookups stay O(1) for large write sets.
	widx map[string]int
	done bool
	// snap is the pinned committed version all reads resolve against
	// when MVCC is composed; nil otherwise (reads then lock).
	snap SnapshotReader
	// readOnly marks snapshot transactions: mutations are refused.
	readOnly bool
}

// Begin starts a transaction. Allocating the ID is a single atomic, so
// concurrent Begins never contend on the commit lock. With MVCC
// composed the transaction pins the newest committed version: reads
// are then lock-free and see the begin-time state plus the
// transaction's own writes.
func (m *Manager) Begin() *Txn {
	id := m.nextTxn.Add(1)
	m.opts.Metrics.Begin()
	t := &Txn{m: m, id: id}
	if m.opts.Versions != nil {
		t.snap = m.pinVersion()
	}
	return t
}

// ID returns the transaction's identifier — the value trace spans and
// group-commit leader attribution carry.
func (t *Txn) ID() uint64 { return t.id }

// lookupWriteSet finds the latest private write for key.
func (t *Txn) lookupWriteSet(key []byte) (writeOp, bool) {
	if i, ok := t.widx[string(key)]; ok {
		return t.writes[i], true
	}
	return writeOp{}, false
}

// record appends w to the write set and indexes its key.
func (t *Txn) record(w writeOp) {
	t.writes = append(t.writes, w)
	if t.widx == nil {
		t.widx = make(map[string]int)
	}
	t.widx[string(w.key)] = len(t.writes) - 1
}

// Get reads a key: the transaction's own writes win over committed
// state. Missing keys — whether hidden by a buffered remove or absent
// from the committed state — satisfy errors.Is(err, ErrNotFound).
func (t *Txn) Get(key []byte) ([]byte, error) {
	if t.done {
		return nil, ErrTxnDone
	}
	v, ok, err := t.visible(key)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, notFound(key)
	}
	return append([]byte(nil), v...), nil
}

// Put buffers a write of value under key.
func (t *Txn) Put(key, value []byte) error {
	if t.done {
		return ErrTxnDone
	}
	if t.readOnly {
		return ErrReadOnly
	}
	if !t.m.store.Ops().Put {
		return fmt.Errorf("Put: %w", access.ErrNotComposed)
	}
	t.record(writeOp{
		key:   append([]byte(nil), key...),
		value: append([]byte(nil), value...),
	})
	return nil
}

// exists reports whether key is visible to the transaction. It shares
// the single visibility check with Get, so Update/Remove cost one lock
// acquisition at most (and none with MVCC composed).
func (t *Txn) exists(key []byte) (bool, error) {
	_, ok, err := t.visible(key)
	return ok, err
}

// Update buffers a replacement of an existing key's value.
func (t *Txn) Update(key, value []byte) error {
	if t.done {
		return ErrTxnDone
	}
	if t.readOnly {
		return ErrReadOnly
	}
	if !t.m.store.Ops().Update {
		return fmt.Errorf("Update: %w", access.ErrNotComposed)
	}
	ok, err := t.exists(key)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("txn: %q: %w", key, ErrNotFound)
	}
	t.record(writeOp{
		key:   append([]byte(nil), key...),
		value: append([]byte(nil), value...),
	})
	return nil
}

// Remove buffers a deletion of an existing key.
func (t *Txn) Remove(key []byte) error {
	if t.done {
		return ErrTxnDone
	}
	if t.readOnly {
		return ErrReadOnly
	}
	if !t.m.store.Ops().Remove {
		return fmt.Errorf("Remove: %w", access.ErrNotComposed)
	}
	ok, err := t.exists(key)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("txn: %q: %w", key, ErrNotFound)
	}
	t.record(writeOp{remove: true, key: append([]byte(nil), key...)})
	return nil
}

// encodeWriteSet appends the transaction's log frames (writes, then the
// commit record) to dst and returns the extended slice plus the frame
// count.
func (t *Txn) encodeWriteSet(dst []byte) ([]byte, int) {
	for _, w := range t.writes {
		rec := logRecord{typ: recPut, txnID: t.id, key: w.key, value: w.value}
		if w.remove {
			rec = logRecord{typ: recRemove, txnID: t.id, key: w.key}
		}
		dst = encodeFrame(dst, rec)
	}
	dst = encodeFrame(dst, logRecord{typ: recCommit, txnID: t.id})
	return dst, len(t.writes) + 1
}

// applyLocked installs a logged-and-durable write set into the store.
// The caller holds m.mu.
func (m *Manager) applyLocked(t *Txn) error {
	idx := m.store.Index()
	for _, w := range t.writes {
		if w.remove {
			if _, err := idx.Delete(w.key); err != nil {
				return err
			}
		} else {
			if err := idx.Insert(w.key, w.value); err != nil {
				return err
			}
		}
		if m.opts.OnApply != nil {
			if err := m.opts.OnApply(w.remove, w.key, w.value); err != nil {
				return err
			}
		}
	}
	m.opts.Metrics.Commit()
	return nil
}

// Commit logs the write set, makes it durable per the commit protocol,
// and applies it to the store. With Locking composed the commit goes
// through the group-commit pipeline: the write set is staged into the
// shared log buffer and one leader drains the whole batch with a single
// WriteAt and a single Sync while the latch is free.
func (t *Txn) Commit() error {
	if t.done {
		return ErrTxnDone
	}
	t.done = true
	t.releaseSnap()
	m := t.m
	start := m.opts.Metrics.StartCommit()
	if len(t.writes) == 0 {
		m.opts.Metrics.Commit()
		m.opts.Metrics.DoneCommit(start)
		return nil
	}
	sp := m.opts.Tracer.Start(trace.LayerTxn, "commit")
	sp.Txn(t.id)
	defer sp.End()
	// Degraded read-only mode refuses the commit before any log I/O.
	if err := m.opts.Health.Err(); err != nil {
		sp.Fail(err)
		return err
	}
	if m.gc != nil {
		err := m.gc.commit(t)
		if err == nil {
			m.opts.Metrics.DoneCommit(start)
		}
		sp.Fail(err)
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		sp.Fail(ErrClosed)
		return ErrClosed
	}
	// Write-ahead: records first, then the commit record, then the
	// protocol decides durability, and only then the store changes.
	scratch := getScratch()
	buf, records := t.encodeWriteSet(*scratch)
	err := m.wal.appendEncoded(buf, records, 1)
	*scratch = buf
	putScratch(scratch)
	if err != nil {
		sp.Fail(err)
		return err
	}
	if err := m.opts.Protocol.OnCommit(m.wal); err != nil {
		sp.Fail(err)
		return err
	}
	if err := m.applyLocked(t); err != nil {
		sp.Fail(err)
		return err
	}
	// Publish the new root; a failure here is only a reclamation
	// failure (the pages retry on the next install), never a commit
	// failure — the write set is durable and applied.
	_ = m.installVersion()
	m.opts.Metrics.DoneCommit(start)
	return nil
}

// Abort discards the transaction's writes.
func (t *Txn) Abort() {
	if !t.done {
		t.m.opts.Metrics.Abort()
	}
	t.done = true
	t.releaseSnap()
	t.writes = nil
}

// quiesce drains the group-commit pipeline (if any) so the caller can
// take m.mu without racing a leader, and returns the matching resume.
// It must be called BEFORE m.mu is acquired: the leader needs m.mu to
// apply its batch, so pausing after locking would deadlock.
func (m *Manager) quiesce() func() {
	if m.gc == nil {
		return func() {}
	}
	m.gc.pause()
	return m.gc.resume
}

// Flush forces durability of all committed transactions (relevant under
// GroupCommit).
func (m *Manager) Flush() error {
	if err := m.opts.Health.Err(); err != nil {
		return err
	}
	defer m.quiesce()()
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.opts.Protocol.Flush(m.wal); err != nil {
		return err
	}
	m.gc.clearDeferred()
	return nil
}

// Checkpoint makes the store durable and truncates the log. Requires
// Options.SyncStore.
func (m *Manager) Checkpoint() error {
	if err := m.opts.Health.Err(); err != nil {
		return err
	}
	defer m.quiesce()()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.opts.SyncStore == nil {
		return errors.New("txn: checkpointing requires Options.SyncStore")
	}
	if err := m.opts.Protocol.Flush(m.wal); err != nil {
		return err
	}
	if err := m.opts.SyncStore(); err != nil {
		return err
	}
	if err := m.wal.reset(); err != nil {
		return err
	}
	m.gc.clearDeferred()
	m.opts.Metrics.Checkpoint()
	return nil
}

// VerifyLog re-walks the whole WAL verifying every frame checksum —
// the log half of the engine's scrub pass (DB.Verify / shell .verify).
// The pipeline is quiesced so the scan sees a stable log.
func (m *Manager) VerifyLog() (LogVerifyReport, error) {
	defer m.quiesce()()
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.wal.verify()
}

// LogSyncs returns how many durable log syncs have happened — the
// metric the commit-protocol ablation compares.
func (m *Manager) LogSyncs() int64 { return m.wal.SyncCount() }

// LogSize returns the current log size in bytes.
func (m *Manager) LogSize() int64 { return m.wal.Size() }

// Close flushes and closes the log.
func (m *Manager) Close() error {
	defer m.quiesce()()
	m.gc.shutdown()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return errors.New("txn: manager already closed")
	}
	m.closed = true
	if m.opts.Health.Degraded() {
		// A degraded engine cannot make its tail durable — the device
		// is refusing writes. Release the handle without failing the
		// shutdown; everything unsynced was never acknowledged as
		// durable.
		return m.wal.close()
	}
	if err := m.opts.Protocol.Flush(m.wal); err != nil {
		return err
	}
	return m.wal.close()
}
