package txn

import (
	"errors"
	"fmt"
	"testing"

	"famedb/internal/access"
	"famedb/internal/index"
	"famedb/internal/osal"
	"famedb/internal/storage"
)

// faultEnv builds a transactional store over a fault-injecting
// filesystem. The data file lives on a separate (reliable) filesystem
// so only journal I/O is subject to faults.
func faultEnv(t *testing.T) (*osal.FaultFS, *Manager, *access.Store) {
	t.Helper()
	dataFS := osal.NewMemFS()
	f, err := dataFS.Create("data.db")
	if err != nil {
		t.Fatal(err)
	}
	pf, err := storage.CreatePageFile(f, 512)
	if err != nil {
		t.Fatal(err)
	}
	idx, _, err := index.CreateBTree(pf, index.AllBTreeOps())
	if err != nil {
		t.Fatal(err)
	}
	store := access.New(idx, access.AllOps())
	logFS := osal.NewFaultFS(osal.NewMemFS())
	m, err := Open(logFS, "wal.log", store, Options{Protocol: Force{}, Recovery: true})
	if err != nil {
		t.Fatal(err)
	}
	return logFS, m, store
}

func TestCommitFailsCleanlyWhenLogWriteFails(t *testing.T) {
	fs, m, store := faultEnv(t)
	// Fail the first journal write of the commit.
	fs.FailAfter(1)
	tx := m.Begin()
	if err := tx.Put([]byte("doomed"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); !errors.Is(err, osal.ErrInjected) {
		t.Fatalf("Commit = %v, want injected fault", err)
	}
	// The write set was never applied to the store.
	if _, err := store.Get([]byte("doomed")); !errors.Is(err, access.ErrNotFound) {
		t.Fatal("failed commit leaked into the store")
	}
	fs.Disarm()
	// The manager keeps working after the fault clears.
	tx2 := m.Begin()
	tx2.Put([]byte("ok"), []byte("v"))
	if err := tx2.Commit(); err != nil {
		t.Fatalf("commit after recovery from fault: %v", err)
	}
	if _, err := store.Get([]byte("ok")); err != nil {
		t.Fatal("post-fault commit lost")
	}
}

func TestCommitFailsWhenSyncFails(t *testing.T) {
	fs, m, store := faultEnv(t)
	tx := m.Begin()
	tx.Put([]byte("k"), []byte("v"))
	// Let the record writes pass (put + commit record = 2 writes) and
	// fail the durability sync.
	fs.FailAfter(3)
	if err := tx.Commit(); !errors.Is(err, osal.ErrInjected) {
		t.Fatalf("Commit = %v, want injected fault at sync", err)
	}
	// Force protocol: not durable -> not applied.
	if _, err := store.Get([]byte("k")); !errors.Is(err, access.ErrNotFound) {
		t.Fatal("unsynced commit applied to the store")
	}
}

func TestCheckpointFaultSurfaces(t *testing.T) {
	fs, _, _ := faultEnv(t)
	_ = fs
	// Build a manager with a SyncStore that itself fails.
	dataFS := osal.NewMemFS()
	f, _ := dataFS.Create("d.db")
	pf, _ := storage.CreatePageFile(f, 512)
	idx, _, _ := index.CreateBTree(pf, index.AllBTreeOps())
	store := access.New(idx, access.AllOps())
	m, err := Open(osal.NewMemFS(), "wal.log", store, Options{
		Protocol:  Force{},
		SyncStore: func() error { return osal.ErrInjected },
	})
	if err != nil {
		t.Fatal(err)
	}
	tx := m.Begin()
	tx.Put([]byte("k"), []byte("v"))
	tx.Commit()
	if err := m.Checkpoint(); !errors.Is(err, osal.ErrInjected) {
		t.Fatalf("Checkpoint = %v, want injected fault", err)
	}
	// The log was not truncated, so the committed data survives a
	// replay.
	if m.LogSize() <= int64(len("FAMEWAL1")) {
		t.Fatal("log truncated despite failed checkpoint")
	}
}

func TestCrashDuringCommitWindowRecovers(t *testing.T) {
	// Commit several transactions, then simulate a crash where the
	// last commit's records reached the log but the store apply never
	// ran (we model this with a fresh store + the surviving log).
	logFS := osal.NewMemFS()
	build := func(n string) *access.Store {
		f, _ := osal.NewMemFS().Create(n)
		pf, _ := storage.CreatePageFile(f, 512)
		idx, _, _ := index.CreateBTree(pf, index.AllBTreeOps())
		return access.New(idx, access.AllOps())
	}
	s1 := build("a")
	m1, err := Open(logFS, "wal.log", s1, Options{Protocol: Force{}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		tx := m1.Begin()
		tx.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v"))
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	// "Crash": reopen over a fresh store.
	s2 := build("b")
	m2, err := Open(logFS, "wal.log", s2, Options{Protocol: Force{}, Recovery: true})
	if err != nil {
		t.Fatal(err)
	}
	if m2.Recovered != 5 {
		t.Fatalf("Recovered = %d", m2.Recovered)
	}
	for i := 0; i < 5; i++ {
		if _, err := s2.Get([]byte(fmt.Sprintf("k%d", i))); err != nil {
			t.Fatalf("k%d lost: %v", i, err)
		}
	}
}
