package txn

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"famedb/internal/access"
	"famedb/internal/index"
	"famedb/internal/osal"
	"famedb/internal/storage"
)

// faultEnv builds a transactional store over a fault-injecting
// filesystem. The data file lives on a separate (reliable) filesystem
// so only journal I/O is subject to faults.
func faultEnv(t *testing.T) (*osal.FaultFS, *Manager, *access.Store) {
	t.Helper()
	dataFS := osal.NewMemFS()
	f, err := dataFS.Create("data.db")
	if err != nil {
		t.Fatal(err)
	}
	pf, err := storage.CreatePageFile(f, 512)
	if err != nil {
		t.Fatal(err)
	}
	idx, _, err := index.CreateBTree(pf, index.AllBTreeOps())
	if err != nil {
		t.Fatal(err)
	}
	store := access.New(idx, access.AllOps())
	logFS := osal.NewFaultFS(osal.NewMemFS())
	m, err := Open(logFS, "wal.log", store, Options{Protocol: Force{}, Recovery: true})
	if err != nil {
		t.Fatal(err)
	}
	return logFS, m, store
}

func TestCommitFailsCleanlyWhenLogWriteFails(t *testing.T) {
	fs, m, store := faultEnv(t)
	// Fail the first journal write of the commit.
	fs.FailAfter(1)
	tx := m.Begin()
	if err := tx.Put([]byte("doomed"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); !errors.Is(err, osal.ErrInjected) {
		t.Fatalf("Commit = %v, want injected fault", err)
	}
	// The write set was never applied to the store.
	if _, err := store.Get([]byte("doomed")); !errors.Is(err, access.ErrNotFound) {
		t.Fatal("failed commit leaked into the store")
	}
	fs.Disarm()
	// The manager keeps working after the fault clears.
	tx2 := m.Begin()
	tx2.Put([]byte("ok"), []byte("v"))
	if err := tx2.Commit(); err != nil {
		t.Fatalf("commit after recovery from fault: %v", err)
	}
	if _, err := store.Get([]byte("ok")); err != nil {
		t.Fatal("post-fault commit lost")
	}
}

func TestCommitFailsWhenSyncFails(t *testing.T) {
	fs, m, store := faultEnv(t)
	tx := m.Begin()
	tx.Put([]byte("k"), []byte("v"))
	// Let the record write pass (put + commit record are one coalesced
	// write) and fail the durability sync.
	fs.FailAfter(2)
	if err := tx.Commit(); !errors.Is(err, osal.ErrInjected) {
		t.Fatalf("Commit = %v, want injected fault at sync", err)
	}
	// Force protocol: not durable -> not applied.
	if _, err := store.Get([]byte("k")); !errors.Is(err, access.ErrNotFound) {
		t.Fatal("unsynced commit applied to the store")
	}
}

func TestCheckpointFaultSurfaces(t *testing.T) {
	fs, _, _ := faultEnv(t)
	_ = fs
	// Build a manager with a SyncStore that itself fails.
	dataFS := osal.NewMemFS()
	f, _ := dataFS.Create("d.db")
	pf, _ := storage.CreatePageFile(f, 512)
	idx, _, _ := index.CreateBTree(pf, index.AllBTreeOps())
	store := access.New(idx, access.AllOps())
	m, err := Open(osal.NewMemFS(), "wal.log", store, Options{
		Protocol:  Force{},
		SyncStore: func() error { return osal.ErrInjected },
	})
	if err != nil {
		t.Fatal(err)
	}
	tx := m.Begin()
	tx.Put([]byte("k"), []byte("v"))
	tx.Commit()
	if err := m.Checkpoint(); !errors.Is(err, osal.ErrInjected) {
		t.Fatalf("Checkpoint = %v, want injected fault", err)
	}
	// The log was not truncated, so the committed data survives a
	// replay.
	if m.LogSize() <= int64(len("FAMEWAL1")) {
		t.Fatal("log truncated despite failed checkpoint")
	}
}

// groupEnv builds a transactional store with the group-commit pipeline
// active (Locking + Group protocol) whose journal lives on logFS.
func groupEnv(t *testing.T, logFS osal.FS, batch int) (*Manager, *access.Store) {
	t.Helper()
	f, err := osal.NewMemFS().Create("data.db")
	if err != nil {
		t.Fatal(err)
	}
	pf, err := storage.CreatePageFile(f, 512)
	if err != nil {
		t.Fatal(err)
	}
	idx, _, err := index.CreateBTree(pf, index.AllBTreeOps())
	if err != nil {
		t.Fatal(err)
	}
	store := access.New(idx, access.AllOps())
	m, err := Open(logFS, "wal.log", store, Options{
		Protocol: &Group{BatchSize: batch},
		Locking:  true,
		Recovery: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m, store
}

func TestGroupSyncFaultFailsWholeBatch(t *testing.T) {
	logFS := osal.NewFaultFS(osal.NewMemFS())
	m, store := groupEnv(t, logFS, 4)
	// Stage two transactions into one batch by hand so the batch is
	// deterministically multi-transaction — such a batch always syncs
	// before waking its followers, which is the failure we want.
	b := &gcBatch{done: make(chan struct{})}
	keys := []string{"a", "b"}
	for _, k := range keys {
		tx := m.Begin()
		if err := tx.Put([]byte(k), []byte("v")); err != nil {
			t.Fatal(err)
		}
		buf, records := tx.encodeWriteSet(b.buf)
		b.buf = buf
		b.txns = append(b.txns, tx)
		b.errs = append(b.errs, nil)
		b.records += records
	}
	base := m.wal.offset()
	// The batch body is ONE coalesced WriteAt (op 1); fail the Sync
	// (op 2).
	logFS.FailAfter(2)
	m.gc.drain(b, 0)
	<-b.done
	for i, err := range b.errs {
		if !errors.Is(err, osal.ErrInjected) {
			t.Fatalf("waiter %d: err = %v, want injected fault", i, err)
		}
	}
	// The unacknowledged tail was cut off so recovery cannot replay it.
	if got := m.wal.offset(); got != base {
		t.Fatalf("failed batch left %d bytes in the log", got-base)
	}
	for _, k := range keys {
		if _, err := store.Get([]byte(k)); !errors.Is(err, access.ErrNotFound) {
			t.Fatalf("failed batch leaked %q into the store", k)
		}
	}
	logFS.Disarm()
	// The pipeline keeps working once the device recovers.
	tx := m.Begin()
	tx.Put([]byte("ok"), []byte("v"))
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit after fault: %v", err)
	}
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Get([]byte("ok")); err != nil {
		t.Fatal("post-fault commit lost")
	}
}

func TestConcurrentCommitFaultFailsEveryWaiter(t *testing.T) {
	logFS := osal.NewFaultFS(osal.NewMemFS())
	m, store := groupEnv(t, logFS, 4)
	// Every write-class operation fails: whatever batches the committers
	// land in, every waiter must get the batch's error, none may hang,
	// and nothing may reach the store.
	logFS.FailAfter(1)
	const workers = 8
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tx := m.Begin()
			if err := tx.Put([]byte(fmt.Sprintf("k%d", w)), []byte("v")); err != nil {
				errs[w] = err
				return
			}
			errs[w] = tx.Commit()
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if !errors.Is(err, osal.ErrInjected) {
			t.Fatalf("committer %d: err = %v, want injected fault", w, err)
		}
	}
	for w := 0; w < workers; w++ {
		k := []byte(fmt.Sprintf("k%d", w))
		if _, err := store.Get(k); !errors.Is(err, access.ErrNotFound) {
			t.Fatalf("failed commit %d leaked into the store", w)
		}
	}
	logFS.Disarm()
	tx := m.Begin()
	tx.Put([]byte("ok"), []byte("v"))
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit after fault: %v", err)
	}
}

func TestCrashWindowSkipsUnsyncedCommits(t *testing.T) {
	// GroupCommit defers the sync of uncontended commits; a power loss
	// inside that durability window must lose exactly the deferred
	// transactions — recovery may not replay records that never hit the
	// device.
	crashFS := osal.NewCrashFS(osal.NewMemFS())
	build := func() *access.Store {
		f, _ := osal.NewMemFS().Create("d.db")
		pf, _ := storage.CreatePageFile(f, 512)
		idx, _, _ := index.CreateBTree(pf, index.AllBTreeOps())
		return access.New(idx, access.AllOps())
	}
	s1 := build()
	m1, err := Open(crashFS, "wal.log", s1, Options{
		Protocol: &Group{BatchSize: 8},
		Locking:  true,
		Recovery: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	commit := func(k string) {
		tx := m1.Begin()
		if err := tx.Put([]byte(k), []byte("v")); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	// Two commits made durable by an explicit flush...
	commit("k0")
	commit("k1")
	if err := m1.Flush(); err != nil {
		t.Fatal(err)
	}
	// ...and two more left inside the deferred durability window (the
	// batch budget of 8 is not reached, so no sync happens).
	commit("k2")
	commit("k3")
	syncs := m1.LogSyncs()

	if err := crashFS.Crash(); err != nil {
		t.Fatal(err)
	}
	s2 := build()
	m2, err := Open(crashFS, "wal.log", s2, Options{
		Protocol: &Group{BatchSize: 8},
		Locking:  true,
		Recovery: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m2.Recovered != 2 {
		t.Fatalf("Recovered = %d, want 2 (synced commits only); syncs before crash = %d",
			m2.Recovered, syncs)
	}
	for _, k := range []string{"k0", "k1"} {
		if _, err := s2.Get([]byte(k)); err != nil {
			t.Fatalf("synced commit %q lost: %v", k, err)
		}
	}
	for _, k := range []string{"k2", "k3"} {
		if _, err := s2.Get([]byte(k)); !errors.Is(err, access.ErrNotFound) {
			t.Fatalf("unsynced commit %q replayed after crash", k)
		}
	}
}

func TestGroupCommitConcurrentStress(t *testing.T) {
	// Many committers racing the pipeline, with a flusher quiescing it
	// mid-flight; meant to run under -race. Every commit must land, and
	// syncs must stay sublinear in commits.
	m, store := groupEnv(t, osal.NewMemFS(), 8)
	const workers = 8
	const per = 50
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tx := m.Begin()
				key := fmt.Sprintf("w%d-k%03d", w, i)
				if err := tx.Put([]byte(key), []byte("v")); err != nil {
					errs[w] = err
					return
				}
				if err := tx.Commit(); err != nil {
					errs[w] = err
					return
				}
				if i%16 == 0 && w == 0 {
					if err := m.Flush(); err != nil {
						errs[w] = err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	for w := 0; w < workers; w++ {
		for i := 0; i < per; i++ {
			key := fmt.Sprintf("w%d-k%03d", w, i)
			if _, err := store.Get([]byte(key)); err != nil {
				t.Fatalf("%s lost: %v", key, err)
			}
		}
	}
	if syncs := m.LogSyncs(); syncs >= workers*per {
		t.Fatalf("LogSyncs = %d for %d commits; group commit is not coalescing", syncs, workers*per)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCrashDuringCommitWindowRecovers(t *testing.T) {
	// Commit several transactions, then simulate a crash where the
	// last commit's records reached the log but the store apply never
	// ran (we model this with a fresh store + the surviving log).
	logFS := osal.NewMemFS()
	build := func(n string) *access.Store {
		f, _ := osal.NewMemFS().Create(n)
		pf, _ := storage.CreatePageFile(f, 512)
		idx, _, _ := index.CreateBTree(pf, index.AllBTreeOps())
		return access.New(idx, access.AllOps())
	}
	s1 := build("a")
	m1, err := Open(logFS, "wal.log", s1, Options{Protocol: Force{}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		tx := m1.Begin()
		tx.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v"))
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	// "Crash": reopen over a fresh store.
	s2 := build("b")
	m2, err := Open(logFS, "wal.log", s2, Options{Protocol: Force{}, Recovery: true})
	if err != nil {
		t.Fatal(err)
	}
	if m2.Recovered != 5 {
		t.Fatalf("Recovered = %d", m2.Recovered)
	}
	for i := 0; i < 5; i++ {
		if _, err := s2.Get([]byte(fmt.Sprintf("k%d", i))); err != nil {
			t.Fatalf("k%d lost: %v", i, err)
		}
	}
}
