package txn

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"famedb/internal/access"
	"famedb/internal/index"
	"famedb/internal/osal"
	"famedb/internal/storage"
)

// buildStore makes a fresh in-memory transactional store.
func buildStore(t *testing.T) *access.Store {
	t.Helper()
	f, err := osal.NewMemFS().Create("data.db")
	if err != nil {
		t.Fatal(err)
	}
	pf, err := storage.CreatePageFile(f, 512)
	if err != nil {
		t.Fatal(err)
	}
	idx, _, err := index.CreateBTree(pf, index.AllBTreeOps())
	if err != nil {
		t.Fatal(err)
	}
	return access.New(idx, access.AllOps())
}

// TestRecoveryTornTailOnRecordBoundary: the torn tail ends EXACTLY on a
// frame boundary — the nastiest cut, because no partial frame flags the
// damage. Transaction B's put record survives intact but its commit
// record is gone; recovery must treat B as uncommitted and replay only
// A, and the log must scan as clean (the cut is indistinguishable from
// a log that simply ends there).
func TestRecoveryTornTailOnRecordBoundary(t *testing.T) {
	fs := osal.NewMemFS()
	s1 := buildStore(t)
	m1, err := Open(fs, "wal.log", s1, Options{Protocol: Force{}})
	if err != nil {
		t.Fatal(err)
	}
	commit := func(k string) uint64 {
		tx := m1.Begin()
		if err := tx.Put([]byte(k), []byte("v")); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		return tx.ID()
	}
	commit("a")
	bID := commit("b")

	// Cut exactly B's commit frame off the tail: the file now ends on
	// the frame boundary after B's put record.
	commitFrame := encodeFrame(nil, logRecord{typ: recCommit, txnID: bID})
	f, err := fs.Open("wal.log")
	if err != nil {
		t.Fatal(err)
	}
	size, err := f.Size()
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(size - int64(len(commitFrame))); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2 := buildStore(t)
	m2, err := Open(fs, "wal.log", s2, Options{Protocol: Force{}, Recovery: true})
	if err != nil {
		t.Fatal(err)
	}
	if m2.Recovered != 1 {
		t.Fatalf("Recovered = %d, want 1 (only A committed)", m2.Recovered)
	}
	if _, err := s2.Get([]byte("a")); err != nil {
		t.Fatalf("committed 'a' lost: %v", err)
	}
	if _, err := s2.Get([]byte("b")); !errors.Is(err, access.ErrNotFound) {
		t.Fatalf("uncommitted 'b' replayed: %v", err)
	}
	// The boundary cut is clean: a scrub finds no torn bytes, and B's
	// orphaned put record still counts as a valid frame.
	rep, err := m2.VerifyLog()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("boundary-cut log scrubbed as torn: %+v", rep)
	}
	if rep.Commits != 1 || rep.Records != 3 {
		t.Fatalf("scrub = %+v, want 3 records / 1 commit", rep)
	}
	// New commits append cleanly after the cut.
	tx := m2.Begin()
	tx.Put([]byte("c"), []byte("v"))
	if err := tx.Commit(); err != nil {
		t.Fatalf("append after boundary cut: %v", err)
	}
}

// TestRecoveryTornTailMidFrame: the complementary cut — the tail ends
// inside a frame. The scan must stop at the last whole frame and a
// scrub must report the torn bytes.
func TestRecoveryTornTailMidFrame(t *testing.T) {
	fs := osal.NewMemFS()
	s1 := buildStore(t)
	m1, err := Open(fs, "wal.log", s1, Options{Protocol: Force{}})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"a", "b"} {
		tx := m1.Begin()
		tx.Put([]byte(k), []byte("v"))
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	f, err := fs.Open("wal.log")
	if err != nil {
		t.Fatal(err)
	}
	size, _ := f.Size()
	// Tear three bytes into the tail — mid-frame with certainty (the
	// smallest frame is a 8-byte header plus payload).
	if err := f.Truncate(size - 3); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2 := buildStore(t)
	m2, err := Open(fs, "wal.log", s2, Options{Protocol: Force{}, Recovery: true})
	if err != nil {
		t.Fatal(err)
	}
	if m2.Recovered != 1 {
		t.Fatalf("Recovered = %d, want 1", m2.Recovered)
	}
	if _, err := s2.Get([]byte("b")); !errors.Is(err, access.ErrNotFound) {
		t.Fatalf("half-torn 'b' replayed: %v", err)
	}
}

// TestDoubleCrashDuringRecovery: the device dies again while recovery
// is replaying the log. The failed recovery must not mutate the log,
// and — because redo is idempotent and replay never writes the WAL — a
// third boot over the same log must recover everything.
func TestDoubleCrashDuringRecovery(t *testing.T) {
	walFS := osal.NewMemFS()
	s1 := buildStore(t)
	m1, err := Open(walFS, "wal.log", s1, Options{Protocol: Force{}})
	if err != nil {
		t.Fatal(err)
	}
	const n = 5
	for i := 0; i < n; i++ {
		tx := m1.Begin()
		tx.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v"))
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	logSize := m1.LogSize()

	// Crash #1 happened (we just reopen over a fresh store). Crash #2:
	// the store's device dies mid-replay — the third page write of
	// recovery fails terminally.
	dataFS := osal.NewFaultFS(osal.NewMemFS())
	f, err := dataFS.Create("data.db")
	if err != nil {
		t.Fatal(err)
	}
	pf, err := storage.CreatePageFile(f, 512)
	if err != nil {
		t.Fatal(err)
	}
	idx, _, err := index.CreateBTree(pf, index.AllBTreeOps())
	if err != nil {
		t.Fatal(err)
	}
	s2 := access.New(idx, access.AllOps())
	dataFS.FailAfter(3)
	_, err = Open(walFS, "wal.log", s2, Options{Protocol: Force{}, Recovery: true})
	if !errors.Is(err, osal.ErrInjected) {
		t.Fatalf("recovery over dying device = %v, want injected fault", err)
	}

	// The log is untouched by the failed replay...
	vf, err := walFS.Open("wal.log")
	if err != nil {
		t.Fatal(err)
	}
	if size, _ := vf.Size(); size != logSize {
		t.Fatalf("failed recovery changed the log: %d -> %d bytes", logSize, size)
	}
	vf.Close()

	// ...so the next boot recovers all n commits.
	s3 := buildStore(t)
	m3, err := Open(walFS, "wal.log", s3, Options{Protocol: Force{}, Recovery: true})
	if err != nil {
		t.Fatal(err)
	}
	if m3.Recovered != n {
		t.Fatalf("Recovered = %d, want %d", m3.Recovered, n)
	}
	for i := 0; i < n; i++ {
		if _, err := s3.Get([]byte(fmt.Sprintf("k%d", i))); err != nil {
			t.Fatalf("k%d lost after double crash: %v", i, err)
		}
	}
}

// TestWalRetryHealsTransient: a transient device glitch inside the
// retry budget is invisible to the committer.
func TestWalRetryHealsTransient(t *testing.T) {
	logFS := osal.NewFaultFS(osal.NewMemFS())
	s := buildStore(t)
	m, err := Open(logFS, "wal.log", s, Options{
		Protocol: Force{},
		Retry:    storage.RetryPolicy{Attempts: 3, Sleep: func(time.Duration) {}},
		Health:   storage.NewHealth(),
	})
	if err != nil {
		t.Fatal(err)
	}
	sched := osal.NewSchedule(11)
	sched.Add(osal.Rule{Class: osal.OpWrite, At: 1, Kind: osal.FaultError, Heal: 2})
	logFS.SetSchedule(sched)
	tx := m.Begin()
	tx.Put([]byte("k"), []byte("v"))
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit through transient glitch: %v", err)
	}
	if _, err := s.Get([]byte("k")); err != nil {
		t.Fatalf("committed key lost: %v", err)
	}
}

// TestWalExhaustionDegrades: a transient outage outliving the budget
// poisons the engine — later commits refuse with ErrDegraded, reads
// keep serving, and Close still succeeds.
func TestWalExhaustionDegrades(t *testing.T) {
	logFS := osal.NewFaultFS(osal.NewMemFS())
	s := buildStore(t)
	h := storage.NewHealth()
	m, err := Open(logFS, "wal.log", s, Options{
		Protocol: Force{},
		Retry:    storage.RetryPolicy{Attempts: 2, Sleep: func(time.Duration) {}},
		Health:   h,
	})
	if err != nil {
		t.Fatal(err)
	}
	commit := func(k string) error {
		tx := m.Begin()
		if err := tx.Put([]byte(k), []byte("v")); err != nil {
			return err
		}
		return tx.Commit()
	}
	if err := commit("before"); err != nil {
		t.Fatal(err)
	}
	sched := osal.NewSchedule(12)
	sched.Add(osal.Rule{Class: osal.OpWrite, At: 1, Kind: osal.FaultError, Heal: 100})
	logFS.SetSchedule(sched)
	if err := commit("doomed"); !errors.Is(err, osal.ErrTransient) {
		t.Fatalf("exhausting commit = %v, want the transient error", err)
	}
	if !h.Degraded() {
		t.Fatal("WAL retry exhaustion must poison the latch")
	}
	logFS.SetSchedule(nil)
	// Even with the device healed, the latch holds: read-only.
	if err := commit("after"); !errors.Is(err, storage.ErrDegraded) {
		t.Fatalf("degraded commit = %v, want ErrDegraded", err)
	}
	if err := m.Checkpoint(); !errors.Is(err, storage.ErrDegraded) {
		t.Fatalf("degraded checkpoint = %v, want ErrDegraded", err)
	}
	if _, err := s.Get([]byte("before")); err != nil {
		t.Fatalf("degraded read = %v, want success", err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("degraded close = %v, want success", err)
	}
}
