package txn

import (
	"sync"

	"famedb/internal/trace"
)

// This file is the leader-elected group-commit pipeline (the classic
// MySQL/etcd arrangement). Committers encode their write set OUTSIDE
// any lock, stage the frames into the open batch under a short latch,
// and the first stager becomes the batch's leader. The leader drains
// batches FIFO: one coalesced WriteAt, one Sync for the whole batch —
// both performed with the latch released, so later committers keep
// staging into the next batch while the device works — then applies the
// batch to the store under Manager.mu and wakes every follower on the
// batch's done channel. Followers just wait: their commit is durable
// (or failed) when the channel closes.
//
// ForceCommit rides the same pipeline as the degenerate case: its batch
// limit is 1, so every batch is a single transaction and every batch
// syncs — the sync-per-commit contract is untouched, but commits still
// queue FIFO instead of fighting over Manager.mu. GroupCommit batches
// up to BatchSize transactions per sync. A batch that holds just one
// transaction (no concurrency to share a sync with) keeps GroupCommit's
// historical deferred-durability behavior: the sync is postponed until
// BatchSize commits have accumulated, so single-goroutine products see
// exactly the sync counts they always did.

// gcBatch is one group of transactions sharing a WriteAt and a Sync.
type gcBatch struct {
	buf     []byte  // coalesced encoded frames, staging order
	txns    []*Txn  // committers, staging (= log) order
	errs    []error // per-committer outcome, parallel to txns
	records int     // frame count across buf, for the WAL metrics
	// leaderID is the transaction whose committer drained this batch;
	// written before done closes, so followers read it race-free after
	// their wait and can attribute the handoff in their trace span.
	leaderID uint64
	done     chan struct{}
}

// groupCommit is the pipeline state hung off a Manager when Locking is
// composed.
type groupCommit struct {
	m *Manager
	// max is the protocol's batch limit: how many transactions one sync
	// may cover, and — for singleton batches — how many commits may
	// defer durability before a sync is forced.
	max int

	mu   sync.Mutex
	cond *sync.Cond // leading/paused/closed transitions
	// tail is the open batch accepting stagers; nil when none is open.
	tail *gcBatch
	// ready holds sealed batches awaiting the leader, FIFO.
	ready []*gcBatch
	// leading is true while some committer is draining batches.
	leading bool
	// paused counts quiesce requests (Flush/Checkpoint/Close); stagers
	// block while it is non-zero.
	paused int
	// deferred counts commits appended but not yet synced — the
	// singleton-batch deferral budget against max.
	deferred int
	closed   bool
}

func newGroupCommit(m *Manager, batchLimit int) *groupCommit {
	if batchLimit <= 0 {
		batchLimit = 1
	}
	g := &groupCommit{m: m, max: batchLimit}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// commit runs one transaction through the pipeline and returns once its
// outcome is decided (durable per protocol and applied, or failed).
func (g *groupCommit) commit(t *Txn) error {
	// Encode outside every lock; staging is then a memcpy.
	scratch := getScratch()
	buf, records := t.encodeWriteSet(*scratch)

	g.mu.Lock()
	for g.paused > 0 && !g.closed {
		g.cond.Wait()
	}
	if g.closed {
		g.mu.Unlock()
		*scratch = buf
		putScratch(scratch)
		return ErrClosed
	}
	b := g.tail
	if b == nil {
		b = &gcBatch{done: make(chan struct{})}
		g.tail = b
	}
	idx := len(b.txns)
	b.buf = append(b.buf, buf...)
	b.txns = append(b.txns, t)
	b.errs = append(b.errs, nil)
	b.records += records
	if len(b.txns) >= g.max {
		// Sealed: the next stager opens a fresh batch.
		g.tail = nil
		g.ready = append(g.ready, b)
	}
	lead := !g.leading
	if lead {
		g.leading = true
	}
	g.mu.Unlock()
	*scratch = buf
	putScratch(scratch)

	if lead {
		g.lead(t.id)
		// The leader's own batch was drained by the loop above (it
		// cannot exit while any batch is open or ready).
	} else {
		stall := g.m.opts.Metrics.StartStall()
		wsp := g.m.opts.Tracer.Start(trace.LayerTxn, "follower-wait")
		wsp.Txn(t.id)
		<-b.done
		// The batch is fully drained once done closes; its size and
		// leader are final.
		wsp.Handoff(len(b.txns), b.leaderID)
		wsp.End()
		g.m.opts.Metrics.DoneStall(stall)
		return b.errs[idx]
	}
	<-b.done
	return b.errs[idx]
}

// lead drains batches FIFO until none remain, then steps down.
// leaderID is the draining committer's transaction, recorded on every
// batch it drains for follower span attribution.
func (g *groupCommit) lead(leaderID uint64) {
	for {
		g.mu.Lock()
		var b *gcBatch
		if len(g.ready) > 0 {
			b = g.ready[0]
			g.ready = g.ready[1:]
		} else if g.tail != nil {
			b = g.tail
			g.tail = nil
		} else {
			g.leading = false
			g.cond.Broadcast()
			g.mu.Unlock()
			return
		}
		g.mu.Unlock()
		g.drain(b, leaderID)
	}
}

// drain makes one batch durable and applies it: ONE WriteAt, at most
// ONE Sync, then the store apply under Manager.mu.
func (g *groupCommit) drain(b *gcBatch, leaderID uint64) {
	m := g.m
	b.leaderID = leaderID
	sp := m.opts.Tracer.Start(trace.LayerTxn, "drain")
	sp.Txn(leaderID)
	sp.Handoff(len(b.txns), leaderID)
	defer sp.End()
	base := m.wal.offset()
	commits := len(b.txns)
	err := m.wal.appendEncoded(b.buf, b.records, commits)
	if err == nil {
		// A multi-transaction batch syncs before waking its followers:
		// Commit returning implies the group is durable. A singleton
		// batch defers per the protocol's budget (ForceCommit's budget
		// is 1, so it always syncs).
		g.mu.Lock()
		g.deferred += commits
		needSync := commits > 1 || g.deferred >= g.max
		g.mu.Unlock()
		if needSync {
			if err = m.wal.Sync(); err == nil {
				g.clearDeferred()
			}
		}
	}
	if err != nil {
		// The tail past base was never acknowledged to anyone: cut it
		// off so a later recovery scan cannot replay these commits.
		m.wal.truncateTo(base, commits)
		for i := range b.errs {
			b.errs[i] = err
		}
		close(b.done)
		return
	}
	m.mu.Lock()
	if m.closed {
		for i := range b.errs {
			b.errs[i] = ErrClosed
		}
	} else {
		for i, t := range b.txns {
			b.errs[i] = m.applyLocked(t)
		}
		// One version per batch: the leader publishes the batch's final
		// root with a single atomic swap while still holding m.mu, so
		// readers pin either the whole batch or none of it. A failure is
		// only a reclamation failure and retries on the next install.
		_ = m.installVersion()
	}
	m.mu.Unlock()
	close(b.done)
}

// pause quiesces the pipeline: it blocks new stagers, waits until no
// leader is active and no batch is open or queued, and leaves the
// pipeline stopped until resume. Callers must not hold Manager.mu (the
// leader needs it to finish).
func (g *groupCommit) pause() {
	g.mu.Lock()
	g.paused++
	for g.leading || g.tail != nil || len(g.ready) > 0 {
		g.cond.Wait()
	}
	g.mu.Unlock()
}

// resume reverses one pause and wakes blocked stagers.
func (g *groupCommit) resume() {
	g.mu.Lock()
	g.paused--
	g.cond.Broadcast()
	g.mu.Unlock()
}

// clearDeferred resets the deferral budget after a durable sync. Safe
// on a nil pipeline (products without Locking).
func (g *groupCommit) clearDeferred() {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.deferred = 0
	g.mu.Unlock()
}

// shutdown makes every later commit fail with ErrClosed. Safe on a nil
// pipeline.
func (g *groupCommit) shutdown() {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.closed = true
	g.cond.Broadcast()
	g.mu.Unlock()
}
