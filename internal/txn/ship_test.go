package txn

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"testing"
)

// shipPair builds a primary manager whose durable batches feed directly
// into a fresh replica manager's applier.
type shipPair struct {
	primary *env
	replica *env
	pm, rm  *Manager
	applier *ShipApplier
	chunks  []shipChunk
}

type shipChunk struct {
	base int64
	buf  []byte
}

func newShipPair(t *testing.T) *shipPair {
	t.Helper()
	p := &shipPair{primary: newEnv(t), replica: newEnv(t)}
	p.pm = p.primary.openMgr(t, Options{Locking: true, Recovery: true})
	p.rm = p.replica.openMgr(t, Options{Locking: true, Recovery: true})
	p.applier = p.rm.ShipApplier()
	p.pm.SetOnShip(func(base int64, buf []byte) {
		p.chunks = append(p.chunks, shipChunk{base, append([]byte(nil), buf...)})
	})
	return p
}

func (p *shipPair) commit(t *testing.T, k, v string) {
	t.Helper()
	tx := p.pm.Begin()
	if err := tx.Put([]byte(k), []byte(v)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func (p *shipPair) applyAll(t *testing.T) {
	t.Helper()
	for _, c := range p.chunks {
		if err := p.applier.Apply(c.base, c.buf); err != nil {
			t.Fatalf("apply base %d: %v", c.base, err)
		}
	}
	p.chunks = nil
}

// assertPrefix checks the replica WAL is a byte-exact prefix of the
// primary's and the stores agree on every replica key.
func (p *shipPair) assertPrefix(t *testing.T) {
	t.Helper()
	re := p.rm.WALEnd()
	pe := p.pm.WALEnd()
	if re > pe {
		t.Fatalf("replica wal end %d past primary %d", re, pe)
	}
	rb := make([]byte, re)
	pb := make([]byte, re)
	if _, err := p.rm.wal.f.ReadAt(rb, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := p.pm.wal.f.ReadAt(pb, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rb, pb) {
		t.Fatalf("replica wal is not a byte-exact prefix of primary")
	}
}

func TestShipChunksReplicate(t *testing.T) {
	p := newShipPair(t)
	for i := 0; i < 10; i++ {
		p.commit(t, fmt.Sprintf("k%03d", i), fmt.Sprintf("v%d", i))
	}
	p.applyAll(t)
	p.assertPrefix(t)
	if p.rm.WALEnd() != p.pm.WALEnd() {
		t.Fatalf("replica end %d != primary end %d", p.rm.WALEnd(), p.pm.WALEnd())
	}
	for i := 0; i < 10; i++ {
		v, err := p.replica.store.Get([]byte(fmt.Sprintf("k%03d", i)))
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("replica k%03d = %q, %v", i, v, err)
		}
	}
}

func TestShipDuplicateAndGap(t *testing.T) {
	p := newShipPair(t)
	p.commit(t, "a", "1")
	p.commit(t, "b", "2")
	p.commit(t, "c", "3")
	chunks := p.chunks
	p.chunks = nil
	// Gap: applying chunk 2 before chunk 0 must be rejected.
	if err := p.applier.Apply(chunks[2].base, chunks[2].buf); !errors.Is(err, ErrShipGap) {
		t.Fatalf("gap apply: want ErrShipGap, got %v", err)
	}
	// In order works, and re-applying a chunk is a verified no-op.
	for _, c := range chunks {
		if err := p.applier.Apply(c.base, c.buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.applier.Apply(chunks[1].base, chunks[1].buf); err != nil {
		t.Fatalf("duplicate apply: %v", err)
	}
	p.assertPrefix(t)
}

func TestShipDivergedChunkRejected(t *testing.T) {
	p := newShipPair(t)
	p.commit(t, "a", "1")
	c := p.chunks[0]
	bad := append([]byte(nil), c.buf...)
	bad[len(bad)-1] ^= 0xff
	if err := p.applier.Apply(c.base, bad); !errors.Is(err, ErrShipDiverged) {
		t.Fatalf("corrupt chunk: want ErrShipDiverged, got %v", err)
	}
	// A truncated-mid-frame chunk is rejected before touching the log.
	if err := p.applier.Apply(c.base, c.buf[:len(c.buf)/2]); !errors.Is(err, ErrShipDiverged) {
		t.Fatalf("truncated chunk: want ErrShipDiverged, got %v", err)
	}
	if p.rm.WALEnd() != int64(len(walMagic)) {
		t.Fatalf("rejected chunks advanced the log to %d", p.rm.WALEnd())
	}
	// The intact chunk still applies.
	if err := p.applier.Apply(c.base, c.buf); err != nil {
		t.Fatal(err)
	}
	p.assertPrefix(t)
}

func TestShipPrefixCRCHandshake(t *testing.T) {
	p := newShipPair(t)
	p.commit(t, "a", "1")
	p.commit(t, "b", "2")
	p.applyAll(t)
	off, crc, err := p.applier.PrefixCRC()
	if err != nil {
		t.Fatal(err)
	}
	want, err := p.pm.WALPrefixCRC(off)
	if err != nil {
		t.Fatal(err)
	}
	if crc != want {
		t.Fatalf("handshake crc mismatch: replica %08x primary %08x", crc, want)
	}
	// More primary traffic, then incremental catch-up via range read.
	p.commit(t, "c", "3")
	p.commit(t, "d", "4")
	tail, err := p.pm.ReadWALRange(off, p.pm.WALEnd())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.applier.Apply(off, tail); err != nil {
		t.Fatal(err)
	}
	p.assertPrefix(t)
	if v, err := p.replica.store.Get([]byte("d")); err != nil || string(v) != "4" {
		t.Fatalf("after catch-up d = %q, %v", v, err)
	}
}

func TestShipSnapshotInstall(t *testing.T) {
	p := newShipPair(t)
	for i := 0; i < 8; i++ {
		p.commit(t, fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i))
	}
	// Replica holds unrelated junk that must be wiped.
	jtx := p.rm.Begin()
	jtx.Put([]byte("junk"), []byte("old"))
	if err := jtx.Commit(); err != nil {
		t.Fatal(err)
	}
	snap, err := p.pm.ShipSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.applier.InstallSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if p.applier.NeedsResync() {
		t.Fatal("marker survived a completed install")
	}
	p.assertPrefix(t)
	if p.rm.WALEnd() != p.pm.WALEnd() {
		t.Fatalf("replica end %d != primary end %d", p.rm.WALEnd(), p.pm.WALEnd())
	}
	if _, err := p.replica.store.Get([]byte("junk")); err == nil {
		t.Fatal("stale replica key survived the snapshot install")
	}
	for i := 0; i < 8; i++ {
		v, err := p.replica.store.Get([]byte(fmt.Sprintf("k%d", i)))
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("replica k%d = %q, %v", i, v, err)
		}
	}
	// Post-snapshot live chunks keep applying.
	p.chunks = nil
	p.commit(t, "after", "snap")
	p.applyAll(t)
	if v, err := p.replica.store.Get([]byte("after")); err != nil || string(v) != "snap" {
		t.Fatalf("post-snapshot chunk: %q, %v", v, err)
	}
}

func TestShipCheckpointRewindHealsViaSnapshot(t *testing.T) {
	p := newShipPair(t)
	p.commit(t, "a", "1")
	p.commit(t, "b", "2")
	p.applyAll(t)
	// Primary checkpoints: its log resets, the replica's handshake CRC
	// no longer matches any primary prefix at that offset.
	if err := p.pm.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	p.chunks = nil
	p.commit(t, "c", "3")
	// The post-reset chunk does not chain onto the replica's end.
	off, crc, err := p.applier.PrefixCRC()
	if err != nil {
		t.Fatal(err)
	}
	if off <= p.pm.WALEnd() {
		if want, err := p.pm.WALPrefixCRC(off); err == nil && want == crc {
			t.Fatal("handshake should have detected divergence")
		}
	}
	snap, err := p.pm.ShipSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.applier.InstallSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	p.assertPrefix(t)
	for _, kv := range [][2]string{{"a", "1"}, {"b", "2"}, {"c", "3"}} {
		v, err := p.replica.store.Get([]byte(kv[0]))
		if err != nil || string(v) != kv[1] {
			t.Fatalf("after resync %s = %q, %v", kv[0], v, err)
		}
	}
}

// TestShipApplierResumesMidBatch covers the torn-tail resume path: a
// replica whose log ends inside a batch (the put frame landed, the
// commit frame did not — what openWAL's torn-tail truncation produces)
// restarts with a FRESH applier, and the commit arrives in the next
// chunk. The new applier must have seeded the dangling records as
// pending, or the commit would apply an empty transaction.
func TestShipApplierResumesMidBatch(t *testing.T) {
	p := newShipPair(t)
	p.commit(t, "survivor", "v1")
	c := p.chunks[0]
	// Split the batch at its first frame boundary: [len][crc][payload].
	flen := int64(8 + binary.LittleEndian.Uint32(c.buf[0:4]))
	if flen >= int64(len(c.buf)) {
		t.Fatalf("batch %d bytes holds a single frame; cannot split", len(c.buf))
	}
	if err := p.applier.Apply(c.base, c.buf[:flen]); err != nil {
		t.Fatal(err)
	}
	// Restart: the dangling put is durable, its commit is not.
	fresh := p.rm.ShipApplier()
	if err := fresh.Apply(c.base+flen, c.buf[flen:]); err != nil {
		t.Fatal(err)
	}
	p.assertPrefix(t)
	v, err := p.replica.store.Get([]byte("survivor"))
	if err != nil || string(v) != "v1" {
		t.Fatalf("mid-batch resume lost the write: %q, %v", v, err)
	}
}
