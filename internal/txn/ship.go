// WAL shipping: the log-level half of the Replication feature.
//
// The unit of replication is the raw byte run of one durable append —
// exactly the buffer appendEncoded wrote, at exactly the offset it
// landed. A replica's WAL is therefore a byte-exact prefix of the
// primary's between rewinds, which makes verification trivial (compare
// bytes) and recovery free (the replica's own redo recovery already
// knows the format).
//
// The reconnect handshake is (offset, CRC of the replica's WAL bytes
// [0, offset)). The primary recomputes the CRC over its own prefix: a
// match means the replica holds a true prefix and an incremental
// catch-up from offset suffices; a mismatch — or an offset past the
// primary's end — means the logs diverged (the primary checkpointed and
// reset its log, rewound a failed batch, or shipped bytes that never
// became durable before a primary crash) and the replica needs a full
// snapshot resync. No epochs, no generation numbers: the CRC subsumes
// them.
//
// Snapshot installs are made crash-restartable by a durable resync
// marker next to the log: it is created before the replica's state is
// first touched and removed only after the install completes, so a
// replica that dies mid-install asks for a fresh snapshot on reconnect
// instead of trusting its half-rebuilt state.

package txn

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Ship errors. Both force the caller into a full snapshot resync.
var (
	// ErrShipGap means a shipped chunk starts past the replica's log
	// end — frames were lost between primary and replica.
	ErrShipGap = errors.New("txn: ship gap: chunk starts past log end")
	// ErrShipDiverged means a shipped chunk overlaps the replica's log
	// with different bytes, or holds a corrupt frame.
	ErrShipDiverged = errors.New("txn: ship diverged: chunk conflicts with log")
)

// SetOnShip installs fn as the observer of every successful WAL append:
// base is the log offset the chunk landed at, buf its raw frame bytes.
// Appends are serial, so calls arrive in base order and chain
// contiguously until the log rewinds (failed-batch truncate or
// checkpoint reset); a rewind shows up as a base that does not extend
// the last-seen end. buf is only valid during the call. Pass nil to
// detach.
func (m *Manager) SetOnShip(fn func(base int64, buf []byte)) {
	m.wal.mu.Lock()
	m.wal.onShip = fn
	m.wal.mu.Unlock()
}

// WALEnd returns the primary log's current append offset.
func (m *Manager) WALEnd() int64 { return m.wal.offset() }

// WALPrefixCRC returns the CRC32-IEEE of the log bytes [0, off). It is
// the handshake fingerprint: equal CRCs at equal offsets mean equal
// prefixes.
func (m *Manager) WALPrefixCRC(off int64) (uint32, error) {
	return walPrefixCRC(m.wal, off)
}

func walPrefixCRC(w *WAL, off int64) (uint32, error) {
	w.mu.Lock()
	end := w.end
	w.mu.Unlock()
	if off < 0 || off > end {
		return 0, fmt.Errorf("txn: prefix crc range [0,%d) outside log [0,%d)", off, end)
	}
	crc := crc32.NewIEEE()
	buf := make([]byte, 64<<10)
	for pos := int64(0); pos < off; {
		n := int64(len(buf))
		if off-pos < n {
			n = off - pos
		}
		if _, err := w.f.ReadAt(buf[:n], pos); err != nil {
			return 0, err
		}
		crc.Write(buf[:n])
		pos += n
	}
	return crc.Sum32(), nil
}

// ReadWALRange returns a copy of the raw log bytes [from, to) for
// incremental catch-up. Both bounds must be frame boundaries the caller
// learned from WALEnd or shipped bases; the bytes below end are stable
// while the pipeline is live (only a checkpoint or failed-batch rewind
// moves them, and either invalidates the handshake that led here).
func (m *Manager) ReadWALRange(from, to int64) ([]byte, error) {
	w := m.wal
	w.mu.Lock()
	end := w.end
	w.mu.Unlock()
	if from < int64(len(walMagic)) || from > to || to > end {
		return nil, fmt.Errorf("txn: wal range [%d,%d) outside log [%d,%d)", from, to, len(walMagic), end)
	}
	buf := make([]byte, to-from)
	if _, err := w.f.ReadAt(buf, from); err != nil {
		return nil, err
	}
	return buf, nil
}

// ShipSnap is a full-resync payload: a consistent key/value dump of the
// store plus the log image the dump is no newer than. Replaying the
// image's committed records over the dump is idempotent and converges
// on exactly the state at WAL offset len(WALImage).
type ShipSnap struct {
	// WALImage is the whole log file [0, end), magic included.
	WALImage []byte
	// Keys and Vals are the dump, pairwise.
	Keys [][]byte
	Vals [][]byte
}

// ShipSnapshot captures a snapshot for a full replica resync. It holds
// the manager lock for the duration, so commits stall briefly; the dump
// state is at-or-before the log image's end, which the replay on the
// replica heals.
func (m *Manager) ShipSnapshot() (*ShipSnap, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	end := m.wal.offset()
	img := make([]byte, end)
	if _, err := m.wal.f.ReadAt(img, 0); err != nil {
		return nil, err
	}
	s := &ShipSnap{WALImage: img}
	if err := m.store.Index().Scan(nil, nil, func(k, v []byte) bool {
		s.Keys = append(s.Keys, append([]byte(nil), k...))
		s.Vals = append(s.Vals, append([]byte(nil), v...))
		return true
	}); err != nil {
		return nil, err
	}
	return s, nil
}

// ShipApplier applies shipped chunks and snapshots on the replica side.
// It writes chunk bytes verbatim into the replica's own log (keeping it
// a byte-exact primary prefix), syncs, and only then redoes the
// committed records into the store — the same ordering the primary's
// own durability story relies on, so a replica crash at any point
// recovers through the ordinary redo path.
type ShipApplier struct {
	m *Manager
	// pending accumulates a transaction's records until its commit
	// record arrives, mirroring recovery; batches normally carry whole
	// transactions so it drains every chunk.
	pending map[uint64][]shipOp
}

type shipOp struct {
	remove bool
	key    []byte
	value  []byte
}

// ShipApplier returns the manager's chunk applier.
//
// The pending set is seeded from the log's uncommitted tail: a replica
// log can end mid-batch after a torn-tail truncation, leaving records
// whose commit will only arrive in a future chunk. Recovery already
// redid everything committed; the dangling records must wait in
// pending or the late commit would apply an empty transaction and the
// writes would be silently lost.
func (m *Manager) ShipApplier() *ShipApplier {
	a := &ShipApplier{m: m, pending: map[uint64][]shipOp{}}
	_ = m.wal.scan(func(r logRecord) error {
		switch r.typ {
		case recPut:
			a.pending[r.txnID] = append(a.pending[r.txnID],
				shipOp{key: append([]byte(nil), r.key...), value: append([]byte(nil), r.value...)})
		case recRemove:
			a.pending[r.txnID] = append(a.pending[r.txnID],
				shipOp{remove: true, key: append([]byte(nil), r.key...)})
		case recCommit:
			delete(a.pending, r.txnID)
		}
		return nil
	})
	return a
}

// End returns the replica log's current end offset.
func (a *ShipApplier) End() int64 { return a.m.wal.offset() }

// PrefixCRC returns the handshake pair (end, CRC of [0, end)).
func (a *ShipApplier) PrefixCRC() (int64, uint32, error) {
	end := a.m.wal.offset()
	crc, err := walPrefixCRC(a.m.wal, end)
	return end, crc, err
}

// resyncMarker is the durable flag of an in-progress snapshot install.
func (a *ShipApplier) resyncMarker() string { return a.m.logName + ".resync" }

// NeedsResync reports whether a snapshot install was interrupted — the
// replica must not trust its state and should request a full snapshot.
func (a *ShipApplier) NeedsResync() bool {
	names, err := a.m.fs.List()
	if err != nil {
		return false
	}
	for _, n := range names {
		if n == a.resyncMarker() {
			return true
		}
	}
	return false
}

// Apply ingests one shipped chunk whose bytes landed at base on the
// primary. A chunk extending the log is written, synced, and its
// committed records redone into the store; a chunk entirely below end
// is verified as a duplicate (catch-up overlap); a chunk past end
// returns ErrShipGap; conflicting bytes or a corrupt frame return
// ErrShipDiverged. Gap and divergence both mean: full snapshot resync.
func (a *ShipApplier) Apply(base int64, buf []byte) error {
	m := a.m
	m.mu.Lock()
	defer m.mu.Unlock()
	w := m.wal
	end := w.offset()
	if base > end {
		return ErrShipGap
	}
	if overlap := end - base; overlap > 0 {
		// Compare the overlapping run against what we already hold.
		n := overlap
		if int64(len(buf)) < n {
			n = int64(len(buf))
		}
		have := make([]byte, n)
		if _, err := w.f.ReadAt(have, base); err != nil {
			return err
		}
		if !bytes.Equal(have, buf[:n]) {
			return ErrShipDiverged
		}
		if int64(len(buf)) <= overlap {
			return nil // pure duplicate from a catch-up overlap
		}
		buf = buf[overlap:]
		base = end
	}
	// Validate framing before the log grows: a truncated or corrupt
	// chunk must not leave torn bytes behind.
	recs, err := decodeChunk(buf)
	if err != nil {
		return err
	}
	if _, err := w.f.WriteAt(buf, base); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.mu.Lock()
	w.end = base + int64(len(buf))
	w.syncedTo = w.end
	w.mu.Unlock()
	a.redo(recs)
	return m.installVersion()
}

// decodeChunk splits a shipped chunk into records, failing unless the
// bytes are a whole number of CRC-clean frames.
func decodeChunk(buf []byte) ([]logRecord, error) {
	var recs []logRecord
	for len(buf) > 0 {
		if len(buf) < 8 {
			return nil, ErrShipDiverged
		}
		length := binary.LittleEndian.Uint32(buf[0:4])
		sum := binary.LittleEndian.Uint32(buf[4:8])
		if length == 0 || length > 1<<24 || uint64(len(buf)-8) < uint64(length) {
			return nil, ErrShipDiverged
		}
		payload := buf[8 : 8+length]
		if crc32.ChecksumIEEE(payload) != sum {
			return nil, ErrShipDiverged
		}
		r, err := decodeRecord(payload)
		if err != nil {
			return nil, ErrShipDiverged
		}
		recs = append(recs, r)
		buf = buf[8+length:]
	}
	return recs, nil
}

// redo applies committed records to the store, mirroring recovery.
// Must run under m.mu.
func (a *ShipApplier) redo(recs []logRecord) {
	idx := a.m.store.Index()
	for _, r := range recs {
		switch r.typ {
		case recPut:
			a.pending[r.txnID] = append(a.pending[r.txnID], shipOp{key: r.key, value: r.value})
		case recRemove:
			a.pending[r.txnID] = append(a.pending[r.txnID], shipOp{remove: true, key: r.key})
		case recCommit:
			for _, o := range a.pending[r.txnID] {
				if o.remove {
					_, _ = idx.Delete(o.key)
				} else {
					_ = idx.Insert(o.key, o.value)
				}
			}
			delete(a.pending, r.txnID)
		case recCheckpoint:
			// The primary's store already held everything before this
			// point; so does ours.
		}
	}
}

// InstallSnapshot replaces the replica's entire state with snap. The
// ordering makes every crash point recoverable: the resync marker goes
// durable first, so any interruption below leaves a replica that asks
// for a fresh snapshot instead of trusting half-installed state.
func (a *ShipApplier) InstallSnapshot(snap *ShipSnap) error {
	if len(snap.WALImage) < len(walMagic) || string(snap.WALImage[:len(walMagic)]) != walMagic {
		return ErrShipDiverged
	}
	recs, err := decodeChunk(snap.WALImage[len(walMagic):])
	if err != nil {
		return err
	}
	if len(snap.Keys) != len(snap.Vals) {
		return ErrShipDiverged
	}
	m := a.m
	m.mu.Lock()
	defer m.mu.Unlock()
	// 1. Durable marker: from here until removal, a crash means resync.
	mf, err := m.fs.Create(a.resyncMarker())
	if err != nil {
		return err
	}
	if _, err := mf.WriteAt([]byte("resync"), 0); err != nil {
		return err
	}
	if err := mf.Sync(); err != nil {
		return err
	}
	if err := mf.Close(); err != nil {
		return err
	}
	// 2. Cut the old log so stale records can never replay over the
	// incoming dump.
	w := m.wal
	if err := w.f.Truncate(int64(len(walMagic))); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.mu.Lock()
	w.end = int64(len(walMagic))
	w.syncedTo = w.end
	w.commitsSince = 0
	w.mu.Unlock()
	// 3. Rebuild the store from the dump and make it durable — the new
	// checkpoint the log image replays over.
	idx := m.store.Index()
	var stale [][]byte
	if err := idx.Scan(nil, nil, func(k, _ []byte) bool {
		stale = append(stale, append([]byte(nil), k...))
		return true
	}); err != nil {
		return err
	}
	for _, k := range stale {
		if _, err := idx.Delete(k); err != nil {
			return err
		}
	}
	for i := range snap.Keys {
		if err := idx.Insert(snap.Keys[i], snap.Vals[i]); err != nil {
			return err
		}
	}
	if m.opts.SyncStore != nil {
		if err := m.opts.SyncStore(); err != nil {
			return err
		}
	}
	// 4. Adopt the primary's log image byte for byte.
	if _, err := w.f.WriteAt(snap.WALImage, 0); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.mu.Lock()
	w.end = int64(len(snap.WALImage))
	w.syncedTo = w.end
	w.mu.Unlock()
	// 5. Redo the image's committed records: the dump may lag the image
	// by an applied-but-not-dumped tail, and redo is idempotent.
	a.pending = map[uint64][]shipOp{}
	a.redo(recs)
	if err := m.installVersion(); err != nil {
		return err
	}
	// 6. Done: drop the marker.
	return m.fs.Remove(a.resyncMarker())
}
