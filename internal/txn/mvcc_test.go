package txn

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"famedb/internal/access"
	"famedb/internal/btree"
	"famedb/internal/index"
	"famedb/internal/osal"
	"famedb/internal/storage"
)

// testVersions adapts a version table to the manager's VersionSource,
// exactly as the composer does for an MVCC product.
type testVersions struct{ vt *btree.VersionTable }

func (s testVersions) Pin() SnapshotReader { return s.vt.Pin() }
func (s testVersions) Install() error      { return s.vt.Install() }

// openMvccMgr opens a manager over e with the MVCC feature composed:
// the env's B+-tree switches to copy-on-write and a version table feeds
// Options.Versions.
func (e *env) openMvccMgr(t *testing.T, opts Options) (*Manager, *btree.VersionTable) {
	t.Helper()
	vt := btree.NewVersionTable(e.store.Index().(*index.BTree).Tree())
	opts.Versions = testVersions{vt: vt}
	return e.openMgr(t, opts), vt
}

// TestNotFoundAllPaths pins the ErrNotFound contract across every read
// path of the transactional API: a key hidden by the transaction's own
// buffered remove, a key absent from the pinned snapshot, a key absent
// from the locked store (MVCC not composed), and a key absent from a
// read-only snapshot transaction all satisfy errors.Is(err, ErrNotFound).
func TestNotFoundAllPaths(t *testing.T) {
	e := newEnv(t)
	m, _ := e.openMvccMgr(t, Options{Locking: true})
	seed := m.Begin()
	if err := seed.Put([]byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := seed.Commit(); err != nil {
		t.Fatal(err)
	}

	tx := m.Begin()
	if err := tx.Remove([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Get([]byte("a")); !errors.Is(err, ErrNotFound) {
		t.Errorf("write-set-deleted key: err = %v, want ErrNotFound", err)
	}
	if _, err := tx.Get([]byte("missing")); !errors.Is(err, ErrNotFound) {
		t.Errorf("snapshot-path missing key: err = %v, want ErrNotFound", err)
	}
	if err := tx.Update([]byte("missing"), []byte("x")); !errors.Is(err, ErrNotFound) {
		t.Errorf("Update of missing key: err = %v, want ErrNotFound", err)
	}
	if err := tx.Remove([]byte("missing")); !errors.Is(err, ErrNotFound) {
		t.Errorf("Remove of missing key: err = %v, want ErrNotFound", err)
	}
	tx.Abort()

	snap, err := m.BeginSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := snap.Get([]byte("missing")); !errors.Is(err, ErrNotFound) {
		t.Errorf("snapshot txn missing key: err = %v, want ErrNotFound", err)
	}
	snap.Abort()

	// And the locked store path, with MVCC not composed.
	e2 := newEnv(t)
	m2 := e2.openMgr(t, Options{Locking: true})
	tx2 := m2.Begin()
	if _, err := tx2.Get([]byte("missing")); !errors.Is(err, ErrNotFound) {
		t.Errorf("store-path missing key: err = %v, want ErrNotFound", err)
	}
	tx2.Abort()
}

// countingLocker wraps a real RWMutex and counts acquisitions — the
// instrument behind the lock-free read-path guarantee.
type countingLocker struct {
	mu     sync.RWMutex
	locks  atomic.Int64
	rlocks atomic.Int64
}

func (c *countingLocker) Lock()    { c.locks.Add(1); c.mu.Lock() }
func (c *countingLocker) Unlock()  { c.mu.Unlock() }
func (c *countingLocker) RLock()   { c.rlocks.Add(1); c.mu.RLock() }
func (c *countingLocker) RUnlock() { c.mu.RUnlock() }

func (c *countingLocker) counts() (int64, int64) {
	return c.locks.Load(), c.rlocks.Load()
}

// TestSnapshotReadsTakeNoManagerLock is the MVCC feature's core
// promise: after Begin pins a version, no read — Get, Scan, Len, or a
// visibility check feeding Update/Remove — acquires Manager.mu in
// either mode. Begin itself takes exactly one read lock (the pin).
func TestSnapshotReadsTakeNoManagerLock(t *testing.T) {
	e := newEnv(t)
	m, _ := e.openMvccMgr(t, Options{Locking: true})
	seed := m.Begin()
	for i := 0; i < 64; i++ {
		if err := seed.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := seed.Commit(); err != nil {
		t.Fatal(err)
	}

	cl := &countingLocker{}
	m.mu = cl

	tx := m.Begin()
	snap, err := m.BeginSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if l, r := cl.counts(); l != 0 || r != 2 {
		t.Fatalf("two Begins took %d write and %d read locks, want 0 and 2 (one pin each)", l, r)
	}

	cl.locks.Store(0)
	cl.rlocks.Store(0)
	for i := 0; i < 64; i++ {
		key := []byte(fmt.Sprintf("k%03d", i))
		if _, err := tx.Get(key); err != nil {
			t.Fatal(err)
		}
		if _, err := snap.Get(key); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range []*Txn{tx, snap} {
		n := 0
		if err := r.Scan(nil, nil, func(k, v []byte) bool { n++; return true }); err != nil {
			t.Fatal(err)
		}
		if n != 64 {
			t.Fatalf("scan saw %d keys, want 64", n)
		}
		if got, err := r.Len(); err != nil || got != 64 {
			t.Fatalf("Len = %d, %v, want 64", got, err)
		}
	}
	// Update/Remove share the same single visibility check.
	if err := tx.Update([]byte("k000"), []byte("w")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Remove([]byte("k001")); err != nil {
		t.Fatal(err)
	}
	if l, r := cl.counts(); l != 0 || r != 0 {
		t.Fatalf("read path took %d write and %d read locks, want zero", l, r)
	}
	tx.Abort()
	snap.Abort()
}

// TestSnapshotSeesBeginTimeState pins the isolation contract: a
// snapshot keeps returning exactly the state at its Begin, no matter
// how many commits land after it, while a later snapshot sees them.
func TestSnapshotSeesBeginTimeState(t *testing.T) {
	e := newEnv(t)
	m, _ := e.openMvccMgr(t, Options{Locking: true})
	seed := m.Begin()
	seed.Put([]byte("a"), []byte("old"))
	if err := seed.Commit(); err != nil {
		t.Fatal(err)
	}

	snap, err := m.BeginSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	seq1, ok := snap.SnapshotSeq()
	if !ok {
		t.Fatal("snapshot transaction has no pinned version")
	}

	w := m.Begin()
	w.Update([]byte("a"), []byte("new"))
	w.Put([]byte("b"), []byte("2"))
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}

	if v, err := snap.Get([]byte("a")); err != nil || string(v) != "old" {
		t.Fatalf("snapshot Get(a) = %q, %v, want old", v, err)
	}
	if _, err := snap.Get([]byte("b")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("snapshot sees post-begin key b: %v", err)
	}
	if n, _ := snap.Len(); n != 1 {
		t.Fatalf("snapshot Len = %d, want 1", n)
	}

	snap2, err := m.BeginSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if seq2, _ := snap2.SnapshotSeq(); seq2 <= seq1 {
		t.Fatalf("later snapshot seq %d not after %d", seq2, seq1)
	}
	if v, err := snap2.Get([]byte("a")); err != nil || string(v) != "new" {
		t.Fatalf("fresh snapshot Get(a) = %q, %v, want new", v, err)
	}
	snap.Abort()
	snap2.Abort()
}

// TestSnapshotTxnIsReadOnly: mutations on a snapshot transaction are
// refused, and finishing it releases the pin so versions reclaim.
func TestSnapshotTxnIsReadOnly(t *testing.T) {
	e := newEnv(t)
	m, vt := e.openMvccMgr(t, Options{Locking: true})
	snap, err := m.BeginSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := snap.Put([]byte("x"), []byte("1")); !errors.Is(err, ErrReadOnly) {
		t.Errorf("Put on snapshot: err = %v, want ErrReadOnly", err)
	}
	if err := snap.Update([]byte("x"), []byte("1")); !errors.Is(err, ErrReadOnly) {
		t.Errorf("Update on snapshot: err = %v, want ErrReadOnly", err)
	}
	if err := snap.Remove([]byte("x")); !errors.Is(err, ErrReadOnly) {
		t.Errorf("Remove on snapshot: err = %v, want ErrReadOnly", err)
	}
	if err := snap.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, ok := snap.SnapshotSeq(); ok {
		t.Error("finished snapshot transaction still pinned")
	}
	// With the pin gone, committing writes must reclaim old versions.
	for i := 0; i < 4; i++ {
		w := m.Begin()
		w.Put([]byte{byte(i)}, []byte("v"))
		if err := w.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if live := vt.VersionsLive(); live != 1 {
		t.Errorf("VersionsLive = %d after all pins released, want 1", live)
	}
}

// TestBeginSnapshotNotComposed: without the MVCC feature the snapshot
// API refuses with the composition error.
func TestBeginSnapshotNotComposed(t *testing.T) {
	e := newEnv(t)
	m := e.openMgr(t, Options{Locking: true})
	if _, err := m.BeginSnapshot(); !errors.Is(err, access.ErrNotComposed) {
		t.Fatalf("BeginSnapshot without MVCC: err = %v, want ErrNotComposed", err)
	}
}

// TestRecoveryInstallsVersion simulates a crash of an MVCC product: the
// WAL holds committed transactions the store never saw. Reopening with
// Recovery replays them copy-on-write and publishes the recovered state
// as one version, so the first snapshot pins it.
func TestRecoveryInstallsVersion(t *testing.T) {
	fs := osal.NewMemFS()
	{
		f, _ := fs.Create("data.db")
		pf, _ := storage.CreatePageFile(f, 512)
		idx, _, _ := index.CreateBTree(pf, index.AllBTreeOps())
		store := access.New(idx, access.AllOps())
		m, err := Open(fs, "wal.log", store, Options{Protocol: Force{}, Locking: true})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			tx := m.Begin()
			tx.Put([]byte(fmt.Sprintf("r%d", i)), []byte("v"))
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
		}
		// Crash: no Close, and the second session gets a fresh store.
	}
	f2, _ := fs.Create("data2.db")
	pf2, _ := storage.CreatePageFile(f2, 512)
	idx2, _, _ := index.CreateBTree(pf2, index.AllBTreeOps())
	store2 := access.New(idx2, access.AllOps())
	vt := btree.NewVersionTable(idx2.Tree())
	m2, err := Open(fs, "wal.log", store2, Options{
		Protocol: Force{}, Locking: true, Recovery: true,
		Versions: testVersions{vt: vt},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m2.Recovered != 3 {
		t.Fatalf("Recovered = %d, want 3", m2.Recovered)
	}
	if vt.Current().Seq() == 0 {
		t.Fatal("recovery did not install a version")
	}
	snap, err := m2.BeginSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if v, err := snap.Get([]byte(fmt.Sprintf("r%d", i))); err != nil || string(v) != "v" {
			t.Fatalf("recovered key r%d = %q, %v", i, v, err)
		}
	}
	if n, _ := snap.Len(); n != 3 {
		t.Fatalf("recovered snapshot Len = %d, want 3", n)
	}
	snap.Abort()
}

// TestSnapshotAdoptsDirectStorePuts: non-transactional writes advance
// the copy-on-write root without installing a version; Begin adopts
// that state so snapshots are never stale.
func TestSnapshotAdoptsDirectStorePuts(t *testing.T) {
	e := newEnv(t)
	m, _ := e.openMvccMgr(t, Options{Locking: true})
	if err := e.store.Put([]byte("direct"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	snap, err := m.BeginSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Abort()
	if v, err := snap.Get([]byte("direct")); err != nil || string(v) != "1" {
		t.Fatalf("snapshot missed direct store put: %q, %v", v, err)
	}
}
