// Snapshot transactions: the transaction-manager half of the MVCC
// feature.
//
// With MVCC composed the B+-tree mutates copy-on-write and a version
// table retains every committed root some reader still pins. The
// manager plugs into that through two narrow interfaces below, so this
// package stays decoupled from the tree: Begin pins the newest version
// (every transactional read then resolves against an immutable root
// without touching Manager.mu), and the commit path publishes the next
// version with a single atomic root swap after the batch applies —
// readers opened before the swap keep reading their version untouched.

package txn

import (
	"fmt"

	"famedb/internal/access"
)

// SnapshotReader is a pinned, immutable view of the store at one
// committed version. Reads take no locks; Release drops the pin so the
// version's superseded pages can reclaim.
type SnapshotReader interface {
	Get(key []byte) ([]byte, bool, error)
	Scan(from, to []byte, fn func(key, value []byte) bool) error
	Len() uint64
	Seq() uint64
	Release()
}

// VersionSource is the MVCC version table: Pin opens a snapshot of the
// newest committed version, Install publishes the store's current
// state as the next version (called at the end of a commit batch,
// under Manager.mu).
type VersionSource interface {
	Pin() SnapshotReader
	Install() error
}

// ErrReadOnly is returned by mutations on a snapshot transaction.
var ErrReadOnly = fmt.Errorf("txn: snapshot transaction is read-only")

// notFound wraps a missing key uniformly: every read path of the
// transactional API — write-set delete, pinned snapshot, and locked
// store read — satisfies errors.Is(err, ErrNotFound).
func notFound(key []byte) error {
	return fmt.Errorf("txn: %q: %w", key, ErrNotFound)
}

// BeginSnapshot starts a read-only snapshot transaction pinned to the
// newest committed version. Its Get/Scan/Len run entirely against the
// pinned root — no lock is taken on the read path — and keep seeing
// the begin-time state regardless of concurrent commits. It fails when
// the MVCC feature is not composed.
func (m *Manager) BeginSnapshot() (*Txn, error) {
	if m.opts.Versions == nil {
		return nil, fmt.Errorf("BeginSnapshot: %w", access.ErrNotComposed)
	}
	id := m.nextTxn.Add(1)
	m.opts.Metrics.Begin()
	return &Txn{m: m, id: id, snap: m.pinVersion(), readOnly: true}, nil
}

// pinVersion adopts any out-of-band state and pins the newest version.
// Non-transactional writes (direct store puts in an MVCC product)
// advance the tree's root without installing a version; the install
// here publishes that state so the snapshot is not stale, and is a
// no-op whenever the last commit already installed. The read lock is
// what makes the adoption safe: a group-commit apply holds the write
// lock for its whole batch, so the root seen here is never a
// half-applied batch. Held only across Begin — every read after this
// runs against the pinned root without any lock.
func (m *Manager) pinVersion() SnapshotReader {
	m.mu.RLock()
	defer m.mu.RUnlock()
	_ = m.opts.Versions.Install() // failure = reclamation retry, never stale reads
	return m.opts.Versions.Pin()
}

// SnapshotSeq returns the commit sequence number of the version this
// transaction reads, and whether it is pinned to one (MVCC composed
// and the transaction still open).
func (t *Txn) SnapshotSeq() (uint64, bool) {
	if t.snap == nil {
		return 0, false
	}
	return t.snap.Seq(), true
}

// visible is the single visibility check every transactional read
// shares: the write set wins, then the pinned snapshot (no lock), and
// only without MVCC the store under the manager's read lock. The
// returned value aliases the write set or the index copy; callers that
// hand it out copy it.
func (t *Txn) visible(key []byte) ([]byte, bool, error) {
	if w, ok := t.lookupWriteSet(key); ok {
		if w.remove {
			return nil, false, nil
		}
		return w.value, true, nil
	}
	if t.snap != nil {
		return t.snap.Get(key)
	}
	t.m.mu.RLock()
	defer t.m.mu.RUnlock()
	return t.m.store.Index().Get(key)
}

// releaseSnap drops the transaction's version pin, if any.
func (t *Txn) releaseSnap() {
	if t.snap != nil {
		t.snap.Release()
		t.snap = nil
	}
}

// Len returns the number of visible committed entries. On a snapshot
// transaction this is the pinned version's count; otherwise the
// store's current count under the read lock. The transaction's own
// uncommitted writes are not folded in.
func (t *Txn) Len() (uint64, error) {
	if t.done {
		return 0, ErrTxnDone
	}
	if t.snap != nil {
		return t.snap.Len(), nil
	}
	t.m.mu.RLock()
	defer t.m.mu.RUnlock()
	return t.m.store.Len()
}

// Scan visits entries with from <= key < to in key order, merging the
// committed state (the pinned version under MVCC, else the store under
// the read lock) with the transaction's own writes: buffered puts and
// updates are visible, buffered removes hide their keys. Returning
// false from fn stops the scan. Requires the Get operation (the scan
// composition rule of the access layer).
func (t *Txn) Scan(from, to []byte, fn func(key, value []byte) bool) error {
	if t.done {
		return ErrTxnDone
	}
	if !t.m.store.Ops().Get {
		return fmt.Errorf("Scan: %w", access.ErrNotComposed)
	}
	overlay := t.overlayRange(from, to)
	i := 0
	stopped := false
	// step emits one committed entry, first draining every buffered
	// write that sorts before it and substituting the buffered value on
	// a key collision.
	step := func(k, v []byte) bool {
		for i < len(overlay) && string(overlay[i].key) < string(k) {
			w := overlay[i]
			i++
			if w.remove {
				continue
			}
			if !fn(w.key, w.value) {
				stopped = true
				return false
			}
		}
		if i < len(overlay) && string(overlay[i].key) == string(k) {
			w := overlay[i]
			i++
			if w.remove {
				return true
			}
			if !fn(w.key, w.value) {
				stopped = true
				return false
			}
			return true
		}
		if !fn(k, v) {
			stopped = true
			return false
		}
		return true
	}
	var err error
	if t.snap != nil {
		err = t.snap.Scan(from, to, step)
	} else {
		t.m.mu.RLock()
		err = t.m.store.Scan(from, to, step)
		t.m.mu.RUnlock()
	}
	if err != nil || stopped {
		return err
	}
	// Buffered writes past the last committed key.
	for ; i < len(overlay); i++ {
		w := overlay[i]
		if w.remove {
			continue
		}
		if !fn(w.key, w.value) {
			return nil
		}
	}
	return nil
}

// overlayRange returns the write set's latest entry per key within
// [from, to), sorted by key.
func (t *Txn) overlayRange(from, to []byte) []writeOp {
	if len(t.widx) == 0 {
		return nil
	}
	out := make([]writeOp, 0, len(t.widx))
	for k, i := range t.widx {
		if from != nil && k < string(from) {
			continue
		}
		if to != nil && k >= string(to) {
			continue
		}
		out = append(out, t.writes[i])
	}
	// Insertion sort: write sets are small and often nearly ordered.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && string(out[j-1].key) > string(out[j].key); j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// installVersion publishes the store's state as the next version at
// the end of a commit batch. The caller holds m.mu, so the version the
// atomic swap exposes is exactly the batch's final state. A failure
// here is a reclamation failure (the publish itself cannot fail): the
// affected pages stay queued and retry on the next install or release,
// so the committed transaction is not failed retroactively.
func (m *Manager) installVersion() error {
	if m.opts.Versions == nil {
		return nil
	}
	return m.opts.Versions.Install()
}
