// Package txn is the Transaction feature of FAME-DBMS (Fig. 2),
// decomposed per the paper into a small number of subfeatures: a
// write-ahead log, alternative commit protocols (ForceCommit syncs on
// every commit, GroupCommit amortizes syncs over batches), optional
// redo Recovery, and Locking.
//
// The design is buffered-update / no-steal: a transaction's writes live
// in its private write set until commit, are then logged, made durable
// according to the commit protocol, and only afterwards applied to the
// store. Recovery therefore only needs redo: it re-applies the write
// sets of committed transactions, which is idempotent.
package txn

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"

	"famedb/internal/osal"
	"famedb/internal/stats"
	"famedb/internal/storage"
	"famedb/internal/trace"
)

// WAL record types.
const (
	recPut        = 1
	recRemove     = 2
	recCommit     = 3
	recCheckpoint = 4
)

const walMagic = "FAMEWAL1"

// ErrLogCorrupt is returned when a log record fails its checksum; the
// recovery scan treats it as the end of the durable log (torn write).
var ErrLogCorrupt = errors.New("txn: corrupt log record")

// WAL is an append-only write-ahead log over an osal.File.
type WAL struct {
	f osal.File
	// mu guards the positional state below. Writers are never truly
	// concurrent (the group-commit leader is singular and maintenance
	// quiesces the pipeline first), but readers such as LogSyncs may
	// observe the log from other goroutines.
	mu  sync.Mutex
	end int64
	// syncedTo tracks durability for the commit protocols.
	syncedTo int64
	// syncs counts durable flushes, exposed via SyncCount for the
	// commit-protocol ablation.
	syncs int64
	// metrics mirrors log activity into the Statistics feature's
	// registry when composed; nil otherwise (recording is a no-op).
	metrics *stats.Txn
	// tracer records appends and syncs as spans when the Tracing
	// feature is composed; nil otherwise.
	tracer *trace.Tracer
	// commitsSince counts commit records appended since the last durable
	// sync — the group-commit batch size observed at the next Sync.
	commitsSince int
	// retry/health/fault make the append and sync paths survive
	// transient device errors with the same bounded policy as the page
	// path; zero/nil values mean single attempts and no degraded latch.
	retry  storage.RetryPolicy
	health *storage.Health
	fault  *stats.Fault
	// onShip, when set, observes every successful append for the
	// Replication feature: base is the log offset the bytes landed at.
	// Appends are serial (see mu), so calls arrive in base order, and
	// bases chain contiguously until the log rewinds (truncateTo after a
	// failed batch, or reset after a checkpoint) — consumers detect a
	// rewind as a base that does not extend their last-seen end. The
	// buffer is only valid during the call; copy it to retain it.
	onShip func(base int64, buf []byte)
}

// logRecord is the in-memory form of a WAL record.
type logRecord struct {
	typ   byte
	txnID uint64
	key   []byte
	value []byte
}

// frameScratch pools encode buffers so committing does not allocate two
// slices per record.
var frameScratch = sync.Pool{
	New: func() any { b := make([]byte, 0, 1024); return &b },
}

// getScratch borrows a zero-length encode buffer from the pool.
func getScratch() *[]byte {
	b := frameScratch.Get().(*[]byte)
	*b = (*b)[:0]
	return b
}

// putScratch returns a borrowed buffer. Oversized buffers are dropped so
// one huge write set does not pin its memory forever.
func putScratch(b *[]byte) {
	if cap(*b) <= 1<<20 {
		frameScratch.Put(b)
	}
}

// encodeFrame appends the on-disk frame of r (4-byte length, 4-byte
// CRC32, payload) to dst in place and returns the extended slice.
func encodeFrame(dst []byte, r logRecord) []byte {
	base := len(dst)
	// Reserve the header, append the payload directly behind it, then
	// backfill length and checksum — no per-record temporaries.
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0)
	dst = append(dst, r.typ)
	dst = binary.AppendUvarint(dst, r.txnID)
	dst = binary.AppendUvarint(dst, uint64(len(r.key)))
	dst = append(dst, r.key...)
	dst = binary.AppendUvarint(dst, uint64(len(r.value)))
	dst = append(dst, r.value...)
	payload := dst[base+8:]
	binary.LittleEndian.PutUint32(dst[base:base+4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[base+4:base+8], crc32.ChecksumIEEE(payload))
	return dst
}

// openWAL opens or creates the log file and positions at its end,
// truncating any torn tail.
func openWAL(fs osal.FS, name string) (*WAL, error) {
	f, err := fs.Create(name)
	if err != nil {
		return nil, err
	}
	w := &WAL{f: f}
	size, err := f.Size()
	if err != nil {
		return nil, err
	}
	if size == 0 {
		if _, err := f.WriteAt([]byte(walMagic), 0); err != nil {
			return nil, err
		}
		w.end = int64(len(walMagic))
		return w, nil
	}
	hdr := make([]byte, len(walMagic))
	if _, err := f.ReadAt(hdr, 0); err != nil {
		return nil, fmt.Errorf("txn: read log header: %w", err)
	}
	if string(hdr) != walMagic {
		return nil, fmt.Errorf("txn: bad log magic %q", hdr)
	}
	// Find the end of the valid log by scanning.
	end := int64(len(walMagic))
	for {
		_, next, err := w.readRecordAt(end)
		if err != nil {
			break
		}
		end = next
	}
	w.end = end
	w.syncedTo = end
	return w, nil
}

// appendEncoded writes an already-encoded run of frames (records record
// frames, commits of which are commit records) in ONE WriteAt. The end
// offset only advances on success, so a failed write leaves no hole:
// the torn tail is truncated away by the next recovery scan.
func (w *WAL) appendEncoded(buf []byte, records, commits int) error {
	if len(buf) == 0 {
		return nil
	}
	w.mu.Lock()
	end := w.end
	w.mu.Unlock()
	sp := w.tracer.Start(trace.LayerWAL, "append")
	if err := storage.Retry(w.retry, w.health, w.fault, "wal-append", func() error {
		_, err := w.f.WriteAt(buf, end)
		return err
	}); err != nil {
		sp.Fail(err)
		sp.End()
		return err
	}
	sp.End()
	w.mu.Lock()
	w.end = end + int64(len(buf))
	w.commitsSince += commits
	ship := w.onShip
	w.mu.Unlock()
	for i := 0; i < records; i++ {
		w.metrics.WalAppend()
	}
	if ship != nil {
		ship(end, buf)
	}
	return nil
}

// append encodes and appends a single record; durability is a separate
// Sync.
func (w *WAL) append(r logRecord) error {
	scratch := getScratch()
	buf := encodeFrame(*scratch, r)
	commits := 0
	if r.typ == recCommit {
		commits = 1
	}
	err := w.appendEncoded(buf, 1, commits)
	*scratch = buf
	putScratch(scratch)
	return err
}

// readRecordAt decodes the record at offset, returning it and the next
// offset.
func (w *WAL) readRecordAt(off int64) (logRecord, int64, error) {
	var hdr [8]byte
	if _, err := w.f.ReadAt(hdr[:], off); err != nil {
		return logRecord{}, 0, err
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	sum := binary.LittleEndian.Uint32(hdr[4:8])
	if length == 0 || length > 1<<24 {
		return logRecord{}, 0, ErrLogCorrupt
	}
	payload := make([]byte, length)
	if n, err := w.f.ReadAt(payload, off+8); err != nil || n != int(length) {
		if err == nil || err == io.EOF {
			err = ErrLogCorrupt
		}
		return logRecord{}, 0, err
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return logRecord{}, 0, ErrLogCorrupt
	}
	r, err := decodeRecord(payload)
	if err != nil {
		return logRecord{}, 0, err
	}
	return r, off + 8 + int64(length), nil
}

func decodeRecord(payload []byte) (logRecord, error) {
	if len(payload) < 2 {
		return logRecord{}, ErrLogCorrupt
	}
	r := logRecord{typ: payload[0]}
	b := payload[1:]
	var n int
	var u uint64
	if u, n = binary.Uvarint(b); n <= 0 {
		return logRecord{}, ErrLogCorrupt
	}
	r.txnID = u
	b = b[n:]
	if u, n = binary.Uvarint(b); n <= 0 || uint64(len(b)-n) < u {
		return logRecord{}, ErrLogCorrupt
	}
	r.key = append([]byte(nil), b[n:n+int(u)]...)
	b = b[n+int(u):]
	if u, n = binary.Uvarint(b); n <= 0 || uint64(len(b)-n) < u {
		return logRecord{}, ErrLogCorrupt
	}
	r.value = append([]byte(nil), b[n:n+int(u)]...)
	return r, nil
}

// Sync makes all appended records durable.
func (w *WAL) Sync() error {
	w.mu.Lock()
	if w.syncedTo == w.end {
		w.mu.Unlock()
		return nil
	}
	end := w.end
	batch := w.commitsSince
	w.mu.Unlock()
	sp := w.tracer.Start(trace.LayerWAL, "sync")
	if err := storage.Retry(w.retry, w.health, w.fault, "wal-sync", func() error {
		return w.f.Sync()
	}); err != nil {
		sp.Fail(err)
		sp.End()
		return err
	}
	sp.End()
	w.mu.Lock()
	w.syncedTo = end
	w.syncs++
	w.commitsSince -= batch
	w.mu.Unlock()
	w.metrics.WalSync(batch)
	return nil
}

// scan replays all valid records from the start, calling fn for each.
func (w *WAL) scan(fn func(r logRecord) error) error {
	off := int64(len(walMagic))
	for off < w.end {
		r, next, err := w.readRecordAt(off)
		if err != nil {
			if errors.Is(err, ErrLogCorrupt) || err == io.EOF {
				return nil // torn tail: durable prefix ends here
			}
			return err
		}
		if err := fn(r); err != nil {
			return err
		}
		off = next
	}
	return nil
}

// truncateTo discards the log tail past off after a failed batch write
// or sync, so a later recovery scan cannot replay transactions whose
// committers saw an error; commits is how many commit records the
// discarded tail held. The append cursor rolls back even when the file
// truncate itself fails (the device may still be refusing writes): the
// tail was never synced, so overwriting it is safe, and any leftover
// bytes past a shorter overwrite are cut off by the recovery scan's
// checksum.
func (w *WAL) truncateTo(off int64, commits int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if off >= w.end {
		return
	}
	_ = w.f.Truncate(off)
	w.end = off
	if w.syncedTo > off {
		w.syncedTo = off
	}
	if w.commitsSince -= commits; w.commitsSince < 0 {
		w.commitsSince = 0
	}
}

// reset truncates the log to empty (after a checkpoint).
func (w *WAL) reset() error {
	if err := w.f.Truncate(int64(len(walMagic))); err != nil {
		return err
	}
	w.mu.Lock()
	w.end = int64(len(walMagic))
	batch := w.commitsSince
	w.mu.Unlock()
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.mu.Lock()
	w.syncedTo = w.end
	w.syncs++
	w.commitsSince -= batch
	w.mu.Unlock()
	w.metrics.WalSync(batch)
	return nil
}

// LogVerifyReport summarizes a WAL scrub: every frame of the valid
// prefix re-verified its CRC; TornBytes counts trailing bytes past the
// last valid frame (0 on a healthy log — corruption at rest or a torn
// append that was never truncated shows up here).
type LogVerifyReport struct {
	// Records is the number of valid frames.
	Records int
	// Commits is how many of them are commit records.
	Commits int
	// ValidBytes is the length of the verified prefix (incl. magic).
	ValidBytes int64
	// TornBytes counts bytes past the valid prefix.
	TornBytes int64
}

// Ok reports whether the log had no torn or corrupt tail.
func (r LogVerifyReport) Ok() bool { return r.TornBytes == 0 }

// String renders the report for logs and the shell.
func (r LogVerifyReport) String() string {
	if r.Ok() {
		return fmt.Sprintf("wal: %d records (%d commits), %d bytes ok", r.Records, r.Commits, r.ValidBytes)
	}
	return fmt.Sprintf("wal: %d records (%d commits), %d bytes ok, %d bytes TORN",
		r.Records, r.Commits, r.ValidBytes, r.TornBytes)
}

// verify re-walks the log from the start, checking every frame CRC.
func (w *WAL) verify() (LogVerifyReport, error) {
	w.mu.Lock()
	end := w.end
	w.mu.Unlock()
	var rep LogVerifyReport
	off := int64(len(walMagic))
	for off < end {
		r, next, err := w.readRecordAt(off)
		if err != nil {
			if errors.Is(err, ErrLogCorrupt) || err == io.EOF {
				rep.ValidBytes = off
				rep.TornBytes = end - off
				return rep, nil
			}
			return rep, err
		}
		rep.Records++
		if r.typ == recCommit {
			rep.Commits++
		}
		off = next
	}
	rep.ValidBytes = off
	return rep, nil
}

// SyncCount returns how many durable flushes the log has performed.
func (w *WAL) SyncCount() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.syncs
}

// Size returns the current log length in bytes.
func (w *WAL) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.end
}

// offset returns the current append position.
func (w *WAL) offset() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.end
}

// unsynced reports whether the log holds records past the durable
// prefix.
func (w *WAL) unsynced() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.end != w.syncedTo
}

func (w *WAL) close() error { return w.f.Close() }
