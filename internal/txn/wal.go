// Package txn is the Transaction feature of FAME-DBMS (Fig. 2),
// decomposed per the paper into a small number of subfeatures: a
// write-ahead log, alternative commit protocols (ForceCommit syncs on
// every commit, GroupCommit amortizes syncs over batches), optional
// redo Recovery, and Locking.
//
// The design is buffered-update / no-steal: a transaction's writes live
// in its private write set until commit, are then logged, made durable
// according to the commit protocol, and only afterwards applied to the
// store. Recovery therefore only needs redo: it re-applies the write
// sets of committed transactions, which is idempotent.
package txn

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"famedb/internal/osal"
	"famedb/internal/stats"
)

// WAL record types.
const (
	recPut        = 1
	recRemove     = 2
	recCommit     = 3
	recCheckpoint = 4
)

const walMagic = "FAMEWAL1"

// ErrLogCorrupt is returned when a log record fails its checksum; the
// recovery scan treats it as the end of the durable log (torn write).
var ErrLogCorrupt = errors.New("txn: corrupt log record")

// WAL is an append-only write-ahead log over an osal.File.
type WAL struct {
	f   osal.File
	end int64
	// syncedTo tracks durability for the commit protocols.
	syncedTo int64
	// Syncs counts durable flushes, exposed for the commit-protocol
	// ablation.
	Syncs int64
	// metrics mirrors log activity into the Statistics feature's
	// registry when composed; nil otherwise (recording is a no-op).
	metrics *stats.Txn
	// commitsSince counts commit records appended since the last durable
	// sync — the group-commit batch size observed at the next Sync.
	commitsSince int
}

// logRecord is the in-memory form of a WAL record.
type logRecord struct {
	typ   byte
	txnID uint64
	key   []byte
	value []byte
}

// openWAL opens or creates the log file and positions at its end,
// truncating any torn tail.
func openWAL(fs osal.FS, name string) (*WAL, error) {
	f, err := fs.Create(name)
	if err != nil {
		return nil, err
	}
	w := &WAL{f: f}
	size, err := f.Size()
	if err != nil {
		return nil, err
	}
	if size == 0 {
		if _, err := f.WriteAt([]byte(walMagic), 0); err != nil {
			return nil, err
		}
		w.end = int64(len(walMagic))
		return w, nil
	}
	hdr := make([]byte, len(walMagic))
	if _, err := f.ReadAt(hdr, 0); err != nil {
		return nil, fmt.Errorf("txn: read log header: %w", err)
	}
	if string(hdr) != walMagic {
		return nil, fmt.Errorf("txn: bad log magic %q", hdr)
	}
	// Find the end of the valid log by scanning.
	end := int64(len(walMagic))
	for {
		_, next, err := w.readRecordAt(end)
		if err != nil {
			break
		}
		end = next
	}
	w.end = end
	w.syncedTo = end
	return w, nil
}

// append encodes and appends a record, returning nothing; durability is
// a separate Sync.
func (w *WAL) append(r logRecord) error {
	payload := make([]byte, 0, 16+len(r.key)+len(r.value))
	payload = append(payload, r.typ)
	payload = binary.AppendUvarint(payload, r.txnID)
	payload = binary.AppendUvarint(payload, uint64(len(r.key)))
	payload = append(payload, r.key...)
	payload = binary.AppendUvarint(payload, uint64(len(r.value)))
	payload = append(payload, r.value...)

	rec := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(rec[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(rec[4:8], crc32.ChecksumIEEE(payload))
	copy(rec[8:], payload)
	if _, err := w.f.WriteAt(rec, w.end); err != nil {
		return err
	}
	w.end += int64(len(rec))
	w.metrics.WalAppend()
	if r.typ == recCommit {
		w.commitsSince++
	}
	return nil
}

// readRecordAt decodes the record at offset, returning it and the next
// offset.
func (w *WAL) readRecordAt(off int64) (logRecord, int64, error) {
	var hdr [8]byte
	if _, err := w.f.ReadAt(hdr[:], off); err != nil {
		return logRecord{}, 0, err
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	sum := binary.LittleEndian.Uint32(hdr[4:8])
	if length == 0 || length > 1<<24 {
		return logRecord{}, 0, ErrLogCorrupt
	}
	payload := make([]byte, length)
	if n, err := w.f.ReadAt(payload, off+8); err != nil || n != int(length) {
		if err == nil || err == io.EOF {
			err = ErrLogCorrupt
		}
		return logRecord{}, 0, err
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return logRecord{}, 0, ErrLogCorrupt
	}
	r, err := decodeRecord(payload)
	if err != nil {
		return logRecord{}, 0, err
	}
	return r, off + 8 + int64(length), nil
}

func decodeRecord(payload []byte) (logRecord, error) {
	if len(payload) < 2 {
		return logRecord{}, ErrLogCorrupt
	}
	r := logRecord{typ: payload[0]}
	b := payload[1:]
	var n int
	var u uint64
	if u, n = binary.Uvarint(b); n <= 0 {
		return logRecord{}, ErrLogCorrupt
	}
	r.txnID = u
	b = b[n:]
	if u, n = binary.Uvarint(b); n <= 0 || uint64(len(b)-n) < u {
		return logRecord{}, ErrLogCorrupt
	}
	r.key = append([]byte(nil), b[n:n+int(u)]...)
	b = b[n+int(u):]
	if u, n = binary.Uvarint(b); n <= 0 || uint64(len(b)-n) < u {
		return logRecord{}, ErrLogCorrupt
	}
	r.value = append([]byte(nil), b[n:n+int(u)]...)
	return r, nil
}

// Sync makes all appended records durable.
func (w *WAL) Sync() error {
	if w.syncedTo == w.end {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.syncedTo = w.end
	w.Syncs++
	w.metrics.WalSync(w.commitsSince)
	w.commitsSince = 0
	return nil
}

// scan replays all valid records from the start, calling fn for each.
func (w *WAL) scan(fn func(r logRecord) error) error {
	off := int64(len(walMagic))
	for off < w.end {
		r, next, err := w.readRecordAt(off)
		if err != nil {
			if errors.Is(err, ErrLogCorrupt) || err == io.EOF {
				return nil // torn tail: durable prefix ends here
			}
			return err
		}
		if err := fn(r); err != nil {
			return err
		}
		off = next
	}
	return nil
}

// reset truncates the log to empty (after a checkpoint).
func (w *WAL) reset() error {
	if err := w.f.Truncate(int64(len(walMagic))); err != nil {
		return err
	}
	w.end = int64(len(walMagic))
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.syncedTo = w.end
	w.Syncs++
	w.metrics.WalSync(w.commitsSince)
	w.commitsSince = 0
	return nil
}

// Size returns the current log length in bytes.
func (w *WAL) Size() int64 { return w.end }

func (w *WAL) close() error { return w.f.Close() }
