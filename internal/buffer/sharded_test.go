package buffer

import (
	"bytes"
	"math/rand"
	"testing"

	"famedb/internal/storage"
)

func newShardedMgr(t *testing.T, capacity, shards int) (*ShardedManager, *storage.PageFile) {
	t.Helper()
	pf := newBase(t, 128)
	m, err := NewShardedManager(pf, capacity, shards,
		func() Policy { return NewLRU() },
		func(frames int) (Allocator, error) { return NewDynamicAllocator(128), nil })
	if err != nil {
		t.Fatal(err)
	}
	return m, pf
}

func TestShardedCapacityDistribution(t *testing.T) {
	cases := []struct {
		capacity, shards, wantShards int
	}{
		{64, 16, 16},
		{64, 5, 8}, // rounded up to a power of two
		{10, 4, 4}, // non-divisible: shards get 3,3,2,2
		{3, 8, 2},  // capacity < shards: fewer shards
		{1, 8, 1},  // degenerate: one shard of one frame
		{64, 0, DefaultShards},
		{64, 1, 1},
	}
	for _, c := range cases {
		m, _ := newShardedMgr(t, c.capacity, c.shards)
		if got := m.ShardCount(); got != c.wantShards {
			t.Errorf("capacity=%d shards=%d: ShardCount = %d, want %d",
				c.capacity, c.shards, got, c.wantShards)
		}
		total, min := 0, c.capacity+1
		for _, s := range m.shards {
			total += s.capacity
			if s.capacity < min {
				min = s.capacity
			}
		}
		if total != c.capacity {
			t.Errorf("capacity=%d shards=%d: shard capacities sum to %d",
				c.capacity, c.shards, total)
		}
		if min < 1 {
			t.Errorf("capacity=%d shards=%d: a shard owns %d frames", c.capacity, c.shards, min)
		}
		// Remainder spread: capacities differ by at most one frame.
		for _, s := range m.shards {
			if s.capacity > min+1 {
				t.Errorf("capacity=%d shards=%d: uneven split %d vs %d",
					c.capacity, c.shards, s.capacity, min)
			}
		}
	}
	if _, err := NewShardedManager(newBase(t, 128), 0, 4,
		func() Policy { return NewLRU() },
		func(int) (Allocator, error) { return NewDynamicAllocator(128), nil }); err == nil {
		t.Error("capacity 0 accepted")
	}
}

func TestShardedHashSpreadsSequentialIDs(t *testing.T) {
	m, _ := newShardedMgr(t, 64, 8)
	seen := map[*shard]int{}
	for id := storage.PageID(1); id <= 64; id++ {
		seen[m.shardFor(id)]++
	}
	if len(seen) != 8 {
		t.Fatalf("64 consecutive PageIDs landed in %d of 8 shards", len(seen))
	}
	for s, n := range seen {
		if n > 16 {
			t.Errorf("shard of capacity %d got %d of 64 consecutive IDs", s.capacity, n)
		}
	}
}

// TestShardedOneShardMatchesManager replays one deterministic trace on
// the single-latch Manager and on a one-shard ShardedManager: counters
// and final page images must agree exactly.
func TestShardedOneShardMatchesManager(t *testing.T) {
	trace := func(p storage.Pager, alloc func() (storage.PageID, error)) ([]storage.PageID, error) {
		var ids []storage.PageID
		for i := 0; i < 8; i++ {
			id, err := alloc()
			if err != nil {
				return nil, err
			}
			ids = append(ids, id)
		}
		rng := rand.New(rand.NewSource(7))
		buf := make([]byte, 128)
		for i := 0; i < 500; i++ {
			id := ids[rng.Intn(len(ids))]
			if rng.Intn(3) == 0 {
				buf[0] = byte(i)
				if err := p.WritePage(id, buf); err != nil {
					return nil, err
				}
			} else if err := p.ReadPage(id, buf); err != nil {
				return nil, err
			}
		}
		return ids, nil
	}

	single, spf := newMgr(t, 3, NewLRU())
	sIDs, err := trace(single, single.Alloc)
	if err != nil {
		t.Fatal(err)
	}
	sharded, shpf := newShardedMgr(t, 3, 1)
	hIDs, err := trace(sharded, sharded.Alloc)
	if err != nil {
		t.Fatal(err)
	}

	if ss, hs := single.Stats(), sharded.Stats(); ss != hs {
		t.Errorf("stats diverge: single %+v, one-shard sharded %+v", ss, hs)
	}
	if err := single.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := sharded.Sync(); err != nil {
		t.Fatal(err)
	}
	a, b := make([]byte, 128), make([]byte, 128)
	for i := range sIDs {
		if err := spf.ReadPage(sIDs[i], a); err != nil {
			t.Fatal(err)
		}
		if err := shpf.ReadPage(hIDs[i], b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("page %d images diverge after identical traces", i)
		}
	}
}

// TestShardedMatchesBase cross-checks the sharded cache against an
// uncached mirror of the same random workload.
func TestShardedMatchesBase(t *testing.T) {
	m, pf := newShardedMgr(t, 8, 4)
	mirror := map[storage.PageID][]byte{}
	var ids []storage.PageID
	for i := 0; i < 32; i++ {
		id, err := m.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		mirror[id] = make([]byte, 128)
	}
	rng := rand.New(rand.NewSource(11))
	buf := make([]byte, 128)
	for i := 0; i < 2000; i++ {
		id := ids[rng.Intn(len(ids))]
		if rng.Intn(2) == 0 {
			rng.Read(buf)
			copy(mirror[id], buf)
			if err := m.WritePage(id, buf); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := m.ReadPage(id, buf); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf, mirror[id]) {
				t.Fatalf("op %d: page %d content diverged from mirror", i, id)
			}
		}
	}
	st := m.Stats()
	if st.Hits+st.Misses == 0 || st.Evictions == 0 {
		t.Errorf("expected traffic and evictions, got %+v", st)
	}
	if err := m.Sync(); err != nil {
		t.Fatal(err)
	}
	for id, want := range mirror {
		if err := pf.ReadPage(id, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, want) {
			t.Errorf("page %d not durable after Sync", id)
		}
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestShardedLifecycle(t *testing.T) {
	m, _ := newShardedMgr(t, 8, 4)
	if m.PolicyName() != "LRU" {
		t.Errorf("PolicyName = %q", m.PolicyName())
	}
	if m.PageSize() != 128 {
		t.Errorf("PageSize = %d", m.PageSize())
	}
	id, err := m.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WritePage(id, fill('Z', 128)); err != nil {
		t.Fatal(err)
	}
	if got := m.Resident(); got != 1 {
		t.Errorf("Resident = %d", got)
	}
	if err := m.FlushPage(id); err != nil {
		t.Fatal(err)
	}
	if err := m.Free(id); err != nil {
		t.Fatal(err)
	}
	if got := m.Resident(); got != 0 {
		t.Errorf("Resident after Free = %d", got)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err == nil {
		t.Error("second Close succeeded")
	}
	if err := m.ReadPage(id, make([]byte, 128)); err == nil {
		t.Error("ReadPage after Close succeeded")
	}
	if _, err := m.Alloc(); err == nil {
		t.Error("Alloc after Close succeeded")
	}
}
