package buffer

import (
	"testing"

	"famedb/internal/stats"
	"famedb/internal/storage"
)

// allocPages allocates n pages from the manager.
func allocPages(t *testing.T, m *Manager, n int) []storage.PageID {
	t.Helper()
	ids := make([]storage.PageID, n)
	for i := range ids {
		id, err := m.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	return ids
}

func checkCounters(t *testing.T, reg *stats.Registry, policy string, hits, misses, evictions, writeBacks int64) {
	t.Helper()
	s := reg.Snapshot().Buffer
	if s.Policy != policy {
		t.Errorf("policy = %q, want %q", s.Policy, policy)
	}
	if s.Hits != hits || s.Misses != misses || s.Evictions != evictions || s.WriteBacks != writeBacks {
		t.Errorf("counters = hits %d misses %d evictions %d writeBacks %d, want %d/%d/%d/%d",
			s.Hits, s.Misses, s.Evictions, s.WriteBacks, hits, misses, evictions, writeBacks)
	}
}

// TestMetricsLRUTrace drives a capacity-2 LRU cache through a
// hand-computed access trace and checks every Statistics counter.
func TestMetricsLRUTrace(t *testing.T) {
	m, _ := newMgr(t, 2, NewLRU())
	reg := stats.New()
	m.SetMetrics(reg.Buffer())
	p := allocPages(t, m, 3)
	buf := make([]byte, 128)

	// Two cold writes fill the cache: 2 misses.
	if err := m.WritePage(p[0], fill('A', 128)); err != nil {
		t.Fatal(err)
	}
	if err := m.WritePage(p[1], fill('B', 128)); err != nil {
		t.Fatal(err)
	}
	// Resident read: 1 hit, and p0 becomes most recently used.
	if err := m.ReadPage(p[0], buf); err != nil {
		t.Fatal(err)
	}
	// Cold write with a full cache: miss, evicts LRU victim p1, which is
	// dirty, so 1 write-back + 1 eviction.
	if err := m.WritePage(p[2], fill('C', 128)); err != nil {
		t.Fatal(err)
	}
	// p1 is gone: miss. LRU order is p2 (just admitted), p0 — so dirty
	// p0 is the victim: second write-back + eviction.
	if err := m.ReadPage(p[1], buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 'B' {
		t.Fatalf("p1 content lost across eviction: %q", buf[0])
	}
	checkCounters(t, reg, "LRU", 1, 4, 2, 2)
}

// TestMetricsLFUTrace is the LFU counterpart: the frequently read page
// survives evictions that would have removed it under LRU.
func TestMetricsLFUTrace(t *testing.T) {
	m, _ := newMgr(t, 2, NewLFU())
	reg := stats.New()
	m.SetMetrics(reg.Buffer())
	p := allocPages(t, m, 4)
	buf := make([]byte, 128)

	// p0 admitted (miss) then read twice (2 hits): frequency 3.
	if err := m.WritePage(p[0], fill('A', 128)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := m.ReadPage(p[0], buf); err != nil {
			t.Fatal(err)
		}
	}
	// p1 admitted (miss), frequency 1.
	if err := m.WritePage(p[1], fill('B', 128)); err != nil {
		t.Fatal(err)
	}
	// p2 (miss) evicts the least frequent page p1 (dirty): write-back +
	// eviction. Under LRU the victim would have been p0.
	if err := m.WritePage(p[2], fill('C', 128)); err != nil {
		t.Fatal(err)
	}
	// p0 must still be resident: hit 3.
	if err := m.ReadPage(p[0], buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 'A' {
		t.Fatalf("p0 evicted despite highest frequency: %q", buf[0])
	}
	// p3 (miss) evicts p2 (freq 1, dirty): second write-back + eviction.
	if err := m.WritePage(p[3], fill('D', 128)); err != nil {
		t.Fatal(err)
	}
	checkCounters(t, reg, "LFU", 3, 4, 2, 2)
}

// TestMetricsNilIsNoOp runs the same workload without SetMetrics and
// checks the manager's own counters still work while no registry is
// involved (the deselected-Statistics configuration).
func TestMetricsNilIsNoOp(t *testing.T) {
	m, _ := newMgr(t, 2, NewLRU())
	p := allocPages(t, m, 1)
	if err := m.WritePage(p[0], fill('A', 128)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 128)
	if err := m.ReadPage(p[0], buf); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("internal stats = %+v, want 1 hit / 1 miss", st)
	}
}

// TestMetricsWriteBackOnFlush checks Sync and FlushPage record
// write-backs without evictions.
func TestMetricsWriteBackOnFlush(t *testing.T) {
	m, _ := newMgr(t, 4, NewLRU())
	reg := stats.New()
	m.SetMetrics(reg.Buffer())
	p := allocPages(t, m, 2)
	for i, id := range p {
		if err := m.WritePage(id, fill(byte('A'+i), 128)); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.FlushPage(p[0]); err != nil {
		t.Fatal(err)
	}
	if err := m.Sync(); err != nil {
		t.Fatal(err)
	}
	s := reg.Snapshot().Buffer
	// FlushPage wrote p0; Sync wrote the still-dirty p1 only.
	if s.WriteBacks != 2 || s.Evictions != 0 {
		t.Errorf("writeBacks %d evictions %d, want 2/0", s.WriteBacks, s.Evictions)
	}
}
