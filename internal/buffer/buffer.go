// Package buffer is the BufferManager feature of FAME-DBMS (Fig. 2): a
// write-back page cache layered between index structures and the page
// file. Its two subfeatures are alternatives in the feature model and
// alternatives here:
//
//   - Replacement: LRU or LFU victim selection.
//   - MemoryAlloc: dynamic (heap-allocated frames, grows on demand) or
//     static (one preallocated arena sized at construction — the only
//     option on deeply embedded NutOS targets, which forbid dynamic
//     allocation).
//
// A third, optional subfeature targets multi-core hosts: ShardedBuffer
// (ShardedManager in sharded.go) stripes the cache over independently
// latched shards so concurrent accesses to different pages do not
// contend and flushing never stops the whole pool.
//
// Both managers implement storage.Pager, so the index code is identical
// whether a cache is configured or not (the feature is optional: a
// product without BufferManager uses the page file directly).
package buffer

import (
	"errors"
	"fmt"
	"sync/atomic"

	"famedb/internal/stats"
	"famedb/internal/storage"
	"famedb/internal/trace"
)

// Policy selects eviction victims. Implementations are not safe for
// concurrent use; each shard serializes access to its own instance
// under the shard latch (the single-latch Manager is one shard).
type Policy interface {
	// Name returns the feature name ("LRU" or "LFU").
	Name() string
	// Admitted records that the page became resident.
	Admitted(id storage.PageID)
	// Touched records an access to a resident page.
	Touched(id storage.PageID)
	// Removed records that the page left the cache.
	Removed(id storage.PageID)
	// Victim returns the page to evict. It panics if no page is
	// resident (the Manager never asks then).
	Victim() storage.PageID
}

// --- LRU ---

type lruNode struct {
	id         storage.PageID
	prev, next *lruNode
}

// LRU evicts the least recently used page.
type LRU struct {
	nodes map[storage.PageID]*lruNode
	// head is most recent, tail least recent.
	head, tail *lruNode
}

// NewLRU returns an empty LRU policy.
func NewLRU() *LRU {
	return &LRU{nodes: map[storage.PageID]*lruNode{}}
}

// Name implements Policy.
func (l *LRU) Name() string { return "LRU" }

// Admitted implements Policy.
func (l *LRU) Admitted(id storage.PageID) {
	n := &lruNode{id: id}
	l.nodes[id] = n
	l.pushFront(n)
}

// Touched implements Policy.
func (l *LRU) Touched(id storage.PageID) {
	n := l.nodes[id]
	if n == nil {
		return
	}
	l.unlink(n)
	l.pushFront(n)
}

// Removed implements Policy.
func (l *LRU) Removed(id storage.PageID) {
	if n := l.nodes[id]; n != nil {
		l.unlink(n)
		delete(l.nodes, id)
	}
}

// Victim implements Policy.
func (l *LRU) Victim() storage.PageID {
	if l.tail == nil {
		panic("buffer: LRU victim requested from empty cache")
	}
	return l.tail.id
}

func (l *LRU) pushFront(n *lruNode) {
	n.prev, n.next = nil, l.head
	if l.head != nil {
		l.head.prev = n
	}
	l.head = n
	if l.tail == nil {
		l.tail = n
	}
}

func (l *LRU) unlink(n *lruNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		l.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		l.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

// --- LFU ---

type lfuEntry struct {
	freq uint64
	seq  uint64 // admission order, breaks frequency ties (older first)
}

// LFU evicts the least frequently used page, breaking ties by age.
type LFU struct {
	entries map[storage.PageID]*lfuEntry
	clock   uint64
}

// NewLFU returns an empty LFU policy.
func NewLFU() *LFU {
	return &LFU{entries: map[storage.PageID]*lfuEntry{}}
}

// Name implements Policy.
func (l *LFU) Name() string { return "LFU" }

// Admitted implements Policy.
func (l *LFU) Admitted(id storage.PageID) {
	l.clock++
	l.entries[id] = &lfuEntry{freq: 1, seq: l.clock}
}

// Touched implements Policy.
func (l *LFU) Touched(id storage.PageID) {
	if e := l.entries[id]; e != nil {
		e.freq++
	}
}

// Removed implements Policy.
func (l *LFU) Removed(id storage.PageID) { delete(l.entries, id) }

// Victim implements Policy.
func (l *LFU) Victim() storage.PageID {
	if len(l.entries) == 0 {
		panic("buffer: LFU victim requested from empty cache")
	}
	var best storage.PageID
	var bestE *lfuEntry
	for id, e := range l.entries {
		if bestE == nil || e.freq < bestE.freq ||
			(e.freq == bestE.freq && e.seq < bestE.seq) {
			best, bestE = id, e
		}
	}
	return best
}

// --- Allocation strategies ---

// ErrArenaExhausted is returned by the static allocator when the arena
// has no free frame left.
var ErrArenaExhausted = errors.New("buffer: static arena exhausted")

// Allocator provides page frames. The static variant models embedded
// targets without dynamic memory.
type Allocator interface {
	// Name returns the feature name ("DynamicAlloc" or "StaticAlloc").
	Name() string
	// AllocFrame returns a zeroed page-size buffer.
	AllocFrame() ([]byte, error)
	// FreeFrame returns a buffer obtained from AllocFrame.
	FreeFrame([]byte)
	// FootprintRAM is the static RAM the allocator occupies, in bytes
	// (the arena for static allocation, 0 for dynamic).
	FootprintRAM() int
}

// DynamicAllocator allocates frames from the Go heap on demand.
type DynamicAllocator struct {
	pageSize int
	// Allocs counts total frame allocations, exposed for the
	// allocation-strategy ablation benchmark.
	Allocs int64
}

// NewDynamicAllocator returns a heap-backed allocator.
func NewDynamicAllocator(pageSize int) *DynamicAllocator {
	return &DynamicAllocator{pageSize: pageSize}
}

// Name implements Allocator.
func (a *DynamicAllocator) Name() string { return "DynamicAlloc" }

// AllocFrame implements Allocator.
func (a *DynamicAllocator) AllocFrame() ([]byte, error) {
	a.Allocs++
	return make([]byte, a.pageSize), nil
}

// FreeFrame implements Allocator.
func (a *DynamicAllocator) FreeFrame([]byte) {}

// FootprintRAM implements Allocator.
func (a *DynamicAllocator) FootprintRAM() int { return 0 }

// StaticAllocator hands out frames from a fixed arena allocated once at
// construction, respecting an embedded RAM budget.
type StaticAllocator struct {
	pageSize int
	free     [][]byte
	arena    []byte
}

// NewStaticAllocator preallocates frames×pageSize bytes. It fails if
// that exceeds ramBudget (pass <= 0 for no budget).
func NewStaticAllocator(pageSize, frames, ramBudget int) (*StaticAllocator, error) {
	need := pageSize * frames
	if ramBudget > 0 && need > ramBudget {
		return nil, fmt.Errorf("buffer: arena of %d bytes exceeds RAM budget %d", need, ramBudget)
	}
	a := &StaticAllocator{pageSize: pageSize, arena: make([]byte, need)}
	for i := 0; i < frames; i++ {
		a.free = append(a.free, a.arena[i*pageSize:(i+1)*pageSize])
	}
	return a, nil
}

// Name implements Allocator.
func (a *StaticAllocator) Name() string { return "StaticAlloc" }

// AllocFrame implements Allocator.
func (a *StaticAllocator) AllocFrame() ([]byte, error) {
	if len(a.free) == 0 {
		return nil, ErrArenaExhausted
	}
	f := a.free[len(a.free)-1]
	a.free = a.free[:len(a.free)-1]
	for i := range f {
		f[i] = 0
	}
	return f, nil
}

// FreeFrame implements Allocator.
func (a *StaticAllocator) FreeFrame(f []byte) { a.free = append(a.free, f) }

// FootprintRAM implements Allocator.
func (a *StaticAllocator) FootprintRAM() int { return len(a.arena) }

// --- Manager ---

// Stats exposes cache effectiveness counters.
type Stats struct {
	Hits       int64
	Misses     int64
	Evictions  int64
	WriteBacks int64
}

// Manager is the single-latch buffer manager: a write-back cache of up
// to capacity pages over a base Pager. It implements Cache (and
// therefore storage.Pager) and is safe for concurrent use. Internally
// it is one shard of the lock-striped pool (see sharded.go), so base
// reads and dirty write-backs happen outside the latch: a slow fault
// blocks only accesses to the faulting page, not unrelated hits. The
// latch itself is still shared by all pages — the ShardedBuffer feature
// (ShardedManager) removes that bottleneck.
type Manager struct {
	base   storage.Pager
	sh     *shard
	closed atomic.Bool
	// metrics mirrors the counters into the Statistics feature's
	// registry when composed; nil otherwise (recording is a no-op).
	metrics *stats.Buffer
	// tracer records cache accesses as spans when the Tracing feature
	// is composed; nil otherwise.
	tracer *trace.Tracer
}

// SetMetrics implements Cache, labeling the metrics with the
// replacement policy in use.
func (m *Manager) SetMetrics(b *stats.Buffer) {
	m.metrics = b
	b.SetPolicy(m.sh.policy.Name())
	b.SetShards(1)
}

// SetTracer implements Cache.
func (m *Manager) SetTracer(t *trace.Tracer) {
	m.tracer = t
	m.sh.tr = t
}

// NewManager creates a buffer manager with the given capacity (in
// pages), replacement policy and allocation strategy.
func NewManager(base storage.Pager, capacity int, policy Policy, alloc Allocator) (*Manager, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("buffer: capacity %d < 1", capacity)
	}
	return &Manager{base: base, sh: newShard(capacity, policy, alloc)}, nil
}

// PageSize implements storage.Pager.
func (m *Manager) PageSize() int { return m.base.PageSize() }

// Stats returns a snapshot of the cache counters.
func (m *Manager) Stats() Stats { return m.sh.snapshot() }

// PolicyName returns the replacement feature in use.
func (m *Manager) PolicyName() string { return m.sh.policy.Name() }

// Resident returns the number of cached pages.
func (m *Manager) Resident() int { return m.sh.resident() }

// Alloc implements storage.Pager.
func (m *Manager) Alloc() (storage.PageID, error) {
	if m.closed.Load() {
		return 0, errManagerClosed
	}
	return m.base.Alloc()
}

// Free implements storage.Pager: the page leaves the cache and returns
// to the base free list.
func (m *Manager) Free(id storage.PageID) error {
	if m.closed.Load() {
		return errManagerClosed
	}
	m.sh.drop(id)
	return m.base.Free(id)
}

// ReadPage implements storage.Pager.
func (m *Manager) ReadPage(id storage.PageID, buf []byte) error {
	if m.closed.Load() {
		return errManagerClosed
	}
	sp := m.tracer.Start(trace.LayerBuffer, "read")
	sp.Page(uint32(id))
	err := m.sh.access(m.base, m.metrics, id, buf, false)
	sp.Fail(err)
	sp.End()
	return err
}

// WritePage implements storage.Pager: write-allocate, write-back.
func (m *Manager) WritePage(id storage.PageID, buf []byte) error {
	if m.closed.Load() {
		return errManagerClosed
	}
	sp := m.tracer.Start(trace.LayerBuffer, "write")
	sp.Page(uint32(id))
	err := m.sh.access(m.base, m.metrics, id, buf, true)
	sp.Fail(err)
	sp.End()
	return err
}

// FlushPage writes back one page if it is resident and dirty. Used by
// the transaction manager to honor write-ahead ordering.
func (m *Manager) FlushPage(id storage.PageID) error {
	if m.closed.Load() {
		return errManagerClosed
	}
	return m.sh.flushPage(m.base, m.metrics, id)
}

// Sync implements storage.Pager: all dirty pages are written back and
// the base pager is synced. The latch is held across the write-backs,
// so Sync on the single-latch manager stops the world — the price the
// ShardedBuffer feature exists to avoid.
func (m *Manager) Sync() error {
	if err := m.sh.flushSharp(m.base, m.metrics); err != nil {
		return err
	}
	return m.base.Sync()
}

// Close implements storage.Pager: flush, then close the base pager.
// Close is terminal even when the flush fails.
func (m *Manager) Close() error {
	if !m.closed.CompareAndSwap(false, true) {
		return errors.New("buffer: manager already closed")
	}
	if err := m.sh.flushSharp(m.base, m.metrics); err != nil {
		return err
	}
	return m.base.Close()
}
