package buffer

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"famedb/internal/osal"
	"famedb/internal/storage"
)

func newBase(t *testing.T, pageSize int) *storage.PageFile {
	t.Helper()
	f, err := osal.NewMemFS().Create("t.db")
	if err != nil {
		t.Fatal(err)
	}
	pf, err := storage.CreatePageFile(f, pageSize)
	if err != nil {
		t.Fatal(err)
	}
	return pf
}

func newMgr(t *testing.T, capacity int, policy Policy) (*Manager, *storage.PageFile) {
	t.Helper()
	pf := newBase(t, 128)
	m, err := NewManager(pf, capacity, policy, NewDynamicAllocator(128))
	if err != nil {
		t.Fatal(err)
	}
	return m, pf
}

func fill(b byte, n int) []byte { return bytes.Repeat([]byte{b}, n) }

func TestManagerReadWriteThrough(t *testing.T) {
	m, pf := newMgr(t, 4, NewLRU())
	id, err := m.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WritePage(id, fill('A', 128)); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 128)
	if err := m.ReadPage(id, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 'A' || got[127] != 'A' {
		t.Fatal("read back wrong content")
	}
	// Dirty page not yet in the base file.
	base := make([]byte, 128)
	if err := pf.ReadPage(id, base); err != nil {
		t.Fatal(err)
	}
	if base[0] == 'A' {
		t.Fatal("write-back cache wrote through eagerly")
	}
	// Sync flushes.
	if err := m.Sync(); err != nil {
		t.Fatal(err)
	}
	pf.ReadPage(id, base)
	if base[0] != 'A' {
		t.Fatal("Sync did not write back")
	}
}

func TestManagerEvictionWritesBack(t *testing.T) {
	m, pf := newMgr(t, 2, NewLRU())
	var ids []storage.PageID
	for i := 0; i < 3; i++ {
		id, _ := m.Alloc()
		ids = append(ids, id)
		if err := m.WritePage(id, fill(byte('0'+i), 128)); err != nil {
			t.Fatal(err)
		}
	}
	// Capacity 2, 3 pages written: page 0 was evicted and written back.
	st := m.Stats()
	if st.Evictions != 1 || st.WriteBacks != 1 {
		t.Fatalf("stats = %+v, want 1 eviction, 1 writeback", st)
	}
	base := make([]byte, 128)
	pf.ReadPage(ids[0], base)
	if base[0] != '0' {
		t.Fatal("evicted dirty page not written back")
	}
	// Reading the evicted page misses and reloads correctly.
	got := make([]byte, 128)
	if err := m.ReadPage(ids[0], got); err != nil {
		t.Fatal(err)
	}
	if got[0] != '0' {
		t.Fatal("reload after eviction wrong")
	}
}

func TestLRUVictimOrder(t *testing.T) {
	m, _ := newMgr(t, 2, NewLRU())
	a, _ := m.Alloc()
	b, _ := m.Alloc()
	c, _ := m.Alloc()
	buf := make([]byte, 128)
	m.WritePage(a, buf)
	m.WritePage(b, buf)
	m.ReadPage(a, buf) // a is now more recent than b
	m.WritePage(c, buf)
	// b must have been evicted, a and c resident.
	if m.Resident() != 2 {
		t.Fatalf("resident = %d", m.Resident())
	}
	st := m.Stats()
	m.ReadPage(a, buf)
	m.ReadPage(c, buf)
	if m.Stats().Hits != st.Hits+2 {
		t.Fatal("a or c was evicted; LRU order wrong")
	}
	m.ReadPage(b, buf)
	if m.Stats().Misses != st.Misses+1 {
		t.Fatal("b should have been the LRU victim")
	}
}

func TestLFUVictimOrder(t *testing.T) {
	m, _ := newMgr(t, 2, NewLFU())
	hot, _ := m.Alloc()
	cold, _ := m.Alloc()
	next, _ := m.Alloc()
	buf := make([]byte, 128)
	m.WritePage(hot, buf)
	for i := 0; i < 10; i++ {
		m.ReadPage(hot, buf)
	}
	m.WritePage(cold, buf)
	// Admitting next evicts cold (freq 1) not hot (freq 11), even
	// though cold is more recent.
	m.WritePage(next, buf)
	st := m.Stats()
	m.ReadPage(hot, buf)
	if m.Stats().Hits != st.Hits+1 {
		t.Fatal("LFU evicted the hot page")
	}
	m.ReadPage(cold, buf)
	if m.Stats().Misses != st.Misses+1 {
		t.Fatal("LFU kept the cold page")
	}
}

func TestLFUTieBreakByAge(t *testing.T) {
	l := NewLFU()
	l.Admitted(1)
	l.Admitted(2)
	if v := l.Victim(); v != 1 {
		t.Fatalf("LFU tie victim = %d, want oldest (1)", v)
	}
	l.Touched(1)
	if v := l.Victim(); v != 2 {
		t.Fatalf("LFU victim after touch = %d, want 2", v)
	}
}

func TestStaticAllocatorBudget(t *testing.T) {
	if _, err := NewStaticAllocator(4096, 100, 1024); err == nil {
		t.Fatal("arena over budget should fail")
	}
	a, err := NewStaticAllocator(128, 4, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if a.FootprintRAM() != 512 {
		t.Fatalf("FootprintRAM = %d", a.FootprintRAM())
	}
	var frames [][]byte
	for i := 0; i < 4; i++ {
		f, err := a.AllocFrame()
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, f)
	}
	if _, err := a.AllocFrame(); !errors.Is(err, ErrArenaExhausted) {
		t.Fatalf("5th frame = %v, want ErrArenaExhausted", err)
	}
	a.FreeFrame(frames[0])
	if _, err := a.AllocFrame(); err != nil {
		t.Fatalf("frame after free: %v", err)
	}
}

func TestStaticFramesZeroedOnReuse(t *testing.T) {
	a, _ := NewStaticAllocator(64, 1, 0)
	f, _ := a.AllocFrame()
	for i := range f {
		f[i] = 0xFF
	}
	a.FreeFrame(f)
	f2, _ := a.AllocFrame()
	for _, b := range f2 {
		if b != 0 {
			t.Fatal("reused static frame not zeroed")
		}
	}
}

func TestManagerWithStaticAllocator(t *testing.T) {
	pf := newBase(t, 128)
	alloc, err := NewStaticAllocator(128, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewManager(pf, 2, NewLRU(), alloc)
	if err != nil {
		t.Fatal(err)
	}
	// Work through more pages than frames: eviction must recycle the
	// arena rather than exhaust it.
	buf := make([]byte, 128)
	for i := 0; i < 20; i++ {
		id, _ := m.Alloc()
		copy(buf, fmt.Sprintf("page %d", i))
		if err := m.WritePage(id, buf); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if m.Resident() != 2 {
		t.Fatalf("resident = %d, want 2", m.Resident())
	}
}

func TestManagerFreeDropsFrame(t *testing.T) {
	m, _ := newMgr(t, 4, NewLRU())
	id, _ := m.Alloc()
	m.WritePage(id, make([]byte, 128))
	if err := m.Free(id); err != nil {
		t.Fatal(err)
	}
	if m.Resident() != 0 {
		t.Fatal("freed page still resident")
	}
}

func TestManagerInvalidCapacity(t *testing.T) {
	pf := newBase(t, 128)
	if _, err := NewManager(pf, 0, NewLRU(), NewDynamicAllocator(128)); err == nil {
		t.Fatal("capacity 0 should fail")
	}
}

func TestManagerCloseFlushes(t *testing.T) {
	f, _ := osal.NewMemFS().Create("c.db")
	pf, _ := storage.CreatePageFile(f, 128)
	m, _ := NewManager(pf, 4, NewLRU(), NewDynamicAllocator(128))
	id, _ := m.Alloc()
	m.WritePage(id, fill('Z', 128))
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen the file raw: content must be durable.
	pf2, err := storage.OpenPageFile(f)
	if err == nil {
		buf := make([]byte, 128)
		pf2.ReadPage(id, buf)
		if buf[0] != 'Z' {
			t.Fatal("close did not flush")
		}
	}
	if err := m.Close(); err == nil {
		t.Fatal("double close should fail")
	}
	if err := m.ReadPage(id, make([]byte, 128)); err == nil {
		t.Fatal("read after close should fail")
	}
}

// TestManagerEquivalence drives identical operation sequences against a
// buffered and an unbuffered pager; contents must match at the end.
func TestManagerEquivalence(t *testing.T) {
	for _, policy := range []func() Policy{
		func() Policy { return NewLRU() },
		func() Policy { return NewLFU() },
	} {
		pfDirect := newBase(t, 128)
		pfCached := newBase(t, 128)
		m, _ := NewManager(pfCached, 3, policy(), NewDynamicAllocator(128))

		rng := rand.New(rand.NewSource(5))
		var ids []storage.PageID
		for i := 0; i < 16; i++ {
			a, _ := pfDirect.Alloc()
			b, _ := m.Alloc()
			if a != b {
				t.Fatalf("alloc divergence: %d vs %d", a, b)
			}
			ids = append(ids, a)
		}
		buf := make([]byte, 128)
		for op := 0; op < 2000; op++ {
			id := ids[rng.Intn(len(ids))]
			if rng.Intn(2) == 0 {
				rng.Read(buf)
				if err := pfDirect.WritePage(id, buf); err != nil {
					t.Fatal(err)
				}
				if err := m.WritePage(id, buf); err != nil {
					t.Fatal(err)
				}
			} else {
				got1, got2 := make([]byte, 128), make([]byte, 128)
				if err := pfDirect.ReadPage(id, got1); err != nil {
					t.Fatal(err)
				}
				if err := m.ReadPage(id, got2); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got1, got2) {
					t.Fatalf("op %d: cached read diverges on page %d", op, id)
				}
			}
		}
		if err := m.Sync(); err != nil {
			t.Fatal(err)
		}
		for _, id := range ids {
			got1, got2 := make([]byte, 128), make([]byte, 128)
			pfDirect.ReadPage(id, got1)
			pfCached.ReadPage(id, got2)
			if !bytes.Equal(got1, got2) {
				t.Fatalf("after sync: base file diverges on page %d", id)
			}
		}
	}
}

func TestManagerConcurrentAccess(t *testing.T) {
	m, _ := newMgr(t, 4, NewLRU())
	var ids []storage.PageID
	for i := 0; i < 8; i++ {
		id, _ := m.Alloc()
		m.WritePage(id, fill(byte(i), 128))
		ids = append(ids, id)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make([]byte, 128)
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 500; i++ {
				id := ids[rng.Intn(len(ids))]
				if err := m.ReadPage(id, buf); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestHitRatioImprovesWithCapacity(t *testing.T) {
	// A working set of 8 pages: capacity 2 must miss more than
	// capacity 8.
	missesAt := func(capacity int) int64 {
		pf := newBase(t, 128)
		m, _ := NewManager(pf, capacity, NewLRU(), NewDynamicAllocator(128))
		var ids []storage.PageID
		for i := 0; i < 8; i++ {
			id, _ := m.Alloc()
			m.WritePage(id, make([]byte, 128))
			ids = append(ids, id)
		}
		buf := make([]byte, 128)
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 1000; i++ {
			m.ReadPage(ids[rng.Intn(len(ids))], buf)
		}
		return m.Stats().Misses
	}
	small, large := missesAt(2), missesAt(8)
	if small <= large {
		t.Fatalf("misses small=%d large=%d: larger cache should miss less", small, large)
	}
	if large > 8 {
		t.Fatalf("full-size cache missed %d times, want <= 8", large)
	}
}

func TestPolicyNames(t *testing.T) {
	if NewLRU().Name() != "LRU" || NewLFU().Name() != "LFU" {
		t.Fatal("policy names wrong")
	}
	if NewDynamicAllocator(64).Name() != "DynamicAlloc" {
		t.Fatal("dynamic allocator name wrong")
	}
	a, _ := NewStaticAllocator(64, 1, 0)
	if a.Name() != "StaticAlloc" {
		t.Fatal("static allocator name wrong")
	}
}
