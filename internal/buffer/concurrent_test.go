package buffer

// Concurrency tests for both managers. Run with -race: the CI pipeline
// executes `go test -race ./internal/buffer/...`.

import (
	"bytes"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"famedb/internal/storage"
)

// gatePager blocks base reads of one page until released — the "slow
// base pager" from the satellite regression: a miss stuck in base I/O
// must not stop unrelated pages from hitting.
type gatePager struct {
	storage.Pager
	slow    storage.PageID
	entered chan struct{} // closed when the slow read has started
	release chan struct{}
	reads   atomic.Int64
}

func (g *gatePager) ReadPage(id storage.PageID, buf []byte) error {
	g.reads.Add(1)
	if id == g.slow {
		close(g.entered)
		<-g.release
	}
	return g.Pager.ReadPage(id, buf)
}

func TestSlowBaseReadDoesNotBlockUnrelatedHits(t *testing.T) {
	for _, sharded := range []bool{false, true} {
		name := "Manager"
		if sharded {
			name = "ShardedManager"
		}
		t.Run(name, func(t *testing.T) {
			pf := newBase(t, 128)
			cold, _ := pf.Alloc()
			hot, _ := pf.Alloc()
			gate := &gatePager{
				Pager:   pf,
				slow:    cold,
				entered: make(chan struct{}),
				release: make(chan struct{}),
			}
			var m Cache
			var err error
			if sharded {
				m, err = NewShardedManager(gate, 8, 4,
					func() Policy { return NewLRU() },
					func(int) (Allocator, error) { return NewDynamicAllocator(128), nil })
			} else {
				m, err = NewManager(gate, 8, NewLRU(), NewDynamicAllocator(128))
			}
			if err != nil {
				t.Fatal(err)
			}
			// Warm the hot page, then wedge a miss in base I/O.
			if err := m.ReadPage(hot, make([]byte, 128)); err != nil {
				t.Fatal(err)
			}
			missDone := make(chan error, 1)
			go func() {
				missDone <- m.ReadPage(cold, make([]byte, 128))
			}()
			<-gate.entered

			hitDone := make(chan error, 1)
			go func() {
				hitDone <- m.ReadPage(hot, make([]byte, 128))
			}()
			select {
			case err := <-hitDone:
				if err != nil {
					t.Fatal(err)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("hit on an unrelated page blocked behind a base-pager miss")
			}

			close(gate.release)
			if err := <-missDone; err != nil {
				t.Fatal(err)
			}
			st := m.Stats()
			if st.Hits != 1 || st.Misses != 2 {
				t.Errorf("stats = %+v, want 1 hit / 2 misses", st)
			}
		})
	}
}

// TestSingleflightFault issues many concurrent reads of one cold page:
// exactly one base read may happen, the rest ride the placeholder.
func TestSingleflightFault(t *testing.T) {
	pf := newBase(t, 128)
	cold, _ := pf.Alloc()
	gate := &gatePager{
		Pager:   pf,
		slow:    cold,
		entered: make(chan struct{}),
		release: make(chan struct{}),
	}
	m, err := NewShardedManager(gate, 8, 4,
		func() Policy { return NewLRU() },
		func(int) (Allocator, error) { return NewDynamicAllocator(128), nil })
	if err != nil {
		t.Fatal(err)
	}
	const readers = 8
	var wg sync.WaitGroup
	errs := make(chan error, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- m.ReadPage(cold, make([]byte, 128))
		}()
	}
	<-gate.entered // the winning fault is in base I/O; give peers time to queue
	time.Sleep(10 * time.Millisecond)
	close(gate.release)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := gate.reads.Load(); got != 1 {
		t.Errorf("%d base reads for one page, want 1 (singleflight)", got)
	}
	st := m.Stats()
	if st.Misses != 1 || st.Hits != readers-1 {
		t.Errorf("stats = %+v, want 1 miss / %d hits", st, readers-1)
	}
}

// TestCountersMatchSequentialReplay runs a concurrent no-eviction
// workload and checks the aggregate counters against what a sequential
// replay of the same access multiset must produce: one miss per
// distinct page (singleflight), a hit for everything else, zero
// evictions — exact equality, not a tolerance.
func TestCountersMatchSequentialReplay(t *testing.T) {
	for _, sharded := range []bool{false, true} {
		name := "Manager"
		if sharded {
			name = "ShardedManager"
		}
		t.Run(name, func(t *testing.T) {
			pf := newBase(t, 128)
			const pages = 32
			var ids []storage.PageID
			for i := 0; i < pages; i++ {
				id, _ := pf.Alloc()
				if err := pf.WritePage(id, fill(byte(i), 128)); err != nil {
					t.Fatal(err)
				}
				ids = append(ids, id)
			}
			var m Cache
			var err error
			// Capacity far above the working set: even with every worker
			// faulting into one shard at once (loaded + in-flight
			// placeholders), no shard can fill, so no eviction ever fires.
			if sharded {
				m, err = NewShardedManager(pf, 8*pages, 8,
					func() Policy { return NewLRU() },
					func(int) (Allocator, error) { return NewDynamicAllocator(128), nil })
			} else {
				m, err = NewManager(pf, 8*pages, NewLRU(), NewDynamicAllocator(128))
			}
			if err != nil {
				t.Fatal(err)
			}
			const workers, perWorker = 8, 2000
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(w)))
					buf := make([]byte, 128)
					for i := 0; i < perWorker; i++ {
						id := ids[rng.Intn(pages)]
						if rng.Intn(10) == 0 {
							m.WritePage(id, buf)
						} else {
							m.ReadPage(id, buf)
						}
					}
				}(w)
			}
			wg.Wait()
			st := m.Stats()
			if st.Misses != pages {
				t.Errorf("misses = %d, want %d (one per distinct page)", st.Misses, pages)
			}
			if st.Hits != workers*perWorker-pages {
				t.Errorf("hits = %d, want %d", st.Hits, workers*perWorker-pages)
			}
			if st.Evictions != 0 || st.WriteBacks != 0 {
				t.Errorf("evictions/write-backs = %d/%d, want 0/0", st.Evictions, st.WriteBacks)
			}
			if err := m.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// slowPager charges a fixed latency per base I/O, widening the latch
// windows the stress tests race over.
type slowPager struct {
	storage.Pager
	read, write time.Duration
}

func (p *slowPager) ReadPage(id storage.PageID, buf []byte) error {
	time.Sleep(p.read)
	return p.Pager.ReadPage(id, buf)
}

func (p *slowPager) WritePage(id storage.PageID, buf []byte) error {
	time.Sleep(p.write)
	return p.Pager.WritePage(id, buf)
}

// TestConcurrentEvictionStress drives both managers through an
// eviction-heavy mix with a background checkpointer and a slow base, so
// faults, write-backs, fuzzy flushes and capacity waits all interleave.
// Content integrity is checked via self-describing page images, and the
// counters must balance: every access is exactly one hit or one miss.
func TestConcurrentEvictionStress(t *testing.T) {
	for _, sharded := range []bool{false, true} {
		name := "Manager"
		if sharded {
			name = "ShardedManager"
		}
		t.Run(name, func(t *testing.T) {
			pf := newBase(t, 128)
			const pages = 64
			var ids []storage.PageID
			stamp := func(i int) []byte { return fill(byte(i), 128) }
			for i := 0; i < pages; i++ {
				id, _ := pf.Alloc()
				if err := pf.WritePage(id, stamp(i)); err != nil {
					t.Fatal(err)
				}
				ids = append(ids, id)
			}
			base := &slowPager{Pager: pf, read: 20 * time.Microsecond, write: 50 * time.Microsecond}
			var m Cache
			var err error
			if sharded {
				m, err = NewShardedManager(base, pages/2, 8,
					func() Policy { return NewLRU() },
					func(int) (Allocator, error) { return NewDynamicAllocator(128), nil })
			} else {
				m, err = NewManager(base, pages/2, NewLRU(), NewDynamicAllocator(128))
			}
			if err != nil {
				t.Fatal(err)
			}

			stop := make(chan struct{})
			var ckptWG sync.WaitGroup
			ckptWG.Add(1)
			go func() {
				defer ckptWG.Done()
				for {
					select {
					case <-stop:
						return
					default:
						if err := m.Sync(); err != nil {
							t.Error(err)
							return
						}
					}
				}
			}()

			const workers, perWorker = 8, 2000
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(100 + w)))
					buf := make([]byte, 128)
					for i := 0; i < perWorker; i++ {
						n := rng.Intn(pages)
						if rng.Intn(10) == 0 {
							copy(buf, stamp(n))
							if err := m.WritePage(ids[n], buf); err != nil {
								t.Error(err)
								return
							}
						} else {
							if err := m.ReadPage(ids[n], buf); err != nil {
								t.Error(err)
								return
							}
							// Writers always store page n's stamp, so any
							// image but stamp(n) is a torn or misrouted read.
							if buf[0] != byte(n) || buf[127] != byte(n) {
								t.Errorf("page %d read stamp %d/%d", n, buf[0], buf[127])
								return
							}
						}
					}
				}(w)
			}
			wg.Wait()
			close(stop)
			ckptWG.Wait()

			st := m.Stats()
			if st.Hits+st.Misses != workers*perWorker {
				t.Errorf("hits %d + misses %d != %d ops", st.Hits, st.Misses, workers*perWorker)
			}
			if st.Evictions == 0 {
				t.Error("stress never evicted; capacity too large for the test to bite")
			}
			if err := m.Sync(); err != nil {
				t.Fatal(err)
			}
			// Durability: every page ends as some writer's stamp.
			buf := make([]byte, 128)
			for i, id := range ids {
				if err := pf.ReadPage(id, buf); err != nil {
					t.Fatal(err)
				}
				if buf[0] != byte(i) || buf[127] != byte(i) {
					t.Errorf("page %d persisted stamp %d/%d", i, buf[0], buf[127])
				}
			}
			if err := m.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// brickPager fails every write once bricked — the device a degraded
// engine sees after its retry budget runs out.
type brickPager struct {
	storage.Pager
	bricked atomic.Bool
	werr    error
}

func (b *brickPager) WritePage(id storage.PageID, buf []byte) error {
	if b.bricked.Load() {
		return b.werr
	}
	return b.Pager.WritePage(id, buf)
}

// TestReadSurvivesDirtyVictimWriteBackFailure pins the degraded-mode
// read contract at the pool layer: a read that draws a dirty victim
// while the device rejects writes must read through, not inherit the
// victim's write-back failure. The victim stays resident and dirty, so
// its unsynced image is not lost.
func TestReadSurvivesDirtyVictimWriteBackFailure(t *testing.T) {
	werr := errors.New("device bricked")
	for _, sharded := range []bool{false, true} {
		name := "Manager"
		if sharded {
			name = "ShardedManager"
		}
		t.Run(name, func(t *testing.T) {
			pf := newBase(t, 128)
			a, _ := pf.Alloc()
			b, _ := pf.Alloc()
			want := make([]byte, 128)
			for i := range want {
				want[i] = byte('b')
			}
			if err := pf.WritePage(b, want); err != nil {
				t.Fatal(err)
			}
			brick := &brickPager{Pager: pf, werr: werr}
			var m Cache
			var err error
			if sharded {
				// One shard of one frame: page b's fault must evict a.
				m, err = NewShardedManager(brick, 1, 1,
					func() Policy { return NewLRU() },
					func(int) (Allocator, error) { return NewDynamicAllocator(128), nil })
			} else {
				m, err = NewManager(brick, 1, NewLRU(), NewDynamicAllocator(128))
			}
			if err != nil {
				t.Fatal(err)
			}
			dirty := make([]byte, 128)
			for i := range dirty {
				dirty[i] = byte('a')
			}
			if err := m.WritePage(a, dirty); err != nil {
				t.Fatal(err)
			}
			brick.bricked.Store(true)

			got := make([]byte, 128)
			if err := m.ReadPage(b, got); err != nil {
				t.Fatalf("read with dirty victim on bricked device = %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("read-through returned wrong image")
			}
			// The dirty victim survived: heal the device, sync, and its
			// image must reach the base.
			brick.bricked.Store(false)
			if err := m.Sync(); err != nil {
				t.Fatal(err)
			}
			onDisk := make([]byte, 128)
			if err := pf.ReadPage(a, onDisk); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(onDisk, dirty) {
				t.Fatalf("dirty victim's image lost across failed eviction")
			}
			// A write access still inherits the failure.
			if err := m.WritePage(a, dirty); err != nil {
				t.Fatal(err)
			}
			brick.bricked.Store(true)
			if err := m.WritePage(b, want); !errors.Is(err, werr) {
				t.Fatalf("write with dirty victim on bricked device = %v, want brick error", err)
			}
		})
	}
}
