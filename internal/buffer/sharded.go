package buffer

// The ShardedBuffer feature: a lock-striped buffer pool. PageIDs hash
// into a power-of-two number of shards; each shard owns a slice of the
// total capacity with its own latch, frame map and replacement-policy
// instance, so the policies stay single-threaded and the Policy
// interface is unchanged.
//
// Base-pager I/O never happens under a shard latch. The fault protocol
// (shard.access/shard.fault) is:
//
//	lock shard
//	  hit            -> touch policy, copy under the latch, done
//	  fault in flight-> wait on the frame's done channel, re-evaluate
//	  write-back     -> wait on the writeback entry, re-evaluate
//	miss:
//	  insert a placeholder frame (singleflight: later accesses wait on
//	  it instead of issuing a second base read)
//	  pick a victim if the shard is full; a dirty victim registers a
//	  writeback entry
//	unlock shard
//	  write back the victim / read the faulting page from the base
//	lock shard
//	  publish the frame (or undo on error), wake waiters
//	unlock shard
//
// The invariant loaded+inflight <= capacity bounds frames and
// placeholders together, so a static arena of exactly capacity frames
// never exhausts; when every slot is an unpublished placeholder the
// fault waits on the shard's condition variable until one publishes.

import (
	"errors"
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"famedb/internal/stats"
	"famedb/internal/storage"
	"famedb/internal/trace"
)

// Cache is what the composer expects from a buffer manager: the Pager
// contract plus cache introspection. Manager (single latch) and
// ShardedManager (lock striped) both implement it.
type Cache interface {
	storage.Pager
	// Stats returns a snapshot of the cache counters.
	Stats() Stats
	// PolicyName returns the replacement feature in use.
	PolicyName() string
	// Resident returns the number of cached pages.
	Resident() int
	// FlushPage writes back one page if it is resident and dirty.
	FlushPage(id storage.PageID) error
	// SetMetrics attaches the Statistics feature's buffer metrics.
	SetMetrics(b *stats.Buffer)
	// SetTracer attaches the Tracing feature's span recorder.
	SetTracer(t *trace.Tracer)
}

var errManagerClosed = errors.New("buffer: manager is closed")

// sframe is a shard-resident page frame. Between insertion and publish
// the frame is a singleflight placeholder: loaded is false, data is nil
// and done is open; accesses to the page wait on done instead of
// issuing a second base read.
type sframe struct {
	data   []byte
	dirty  bool
	loaded bool
	// done is closed when the fault publishes the frame or gives up.
	done chan struct{}
}

// shard is one stripe of the pool. All fields below the latch are
// protected by mu; the counters are atomics so Stats() needs no latch.
type shard struct {
	mu       sync.Mutex
	cond     *sync.Cond
	capacity int
	policy   Policy
	alloc    Allocator
	frames   map[storage.PageID]*sframe
	// writeback tracks pages whose evicted dirty image is still being
	// written to the base pager; a fault on such a page waits for the
	// entry to close, or it could read stale base content.
	writeback map[storage.PageID]chan struct{}
	loaded    int // published frames
	inflight  int // placeholders (faults between insert and publish)

	// tr records the shard's wait points as spans when the Tracing
	// feature is composed; nil otherwise (every call is a no-op).
	tr *trace.Tracer

	hits, misses, evictions, writeBacks atomic.Int64
}

func newShard(capacity int, policy Policy, alloc Allocator) *shard {
	s := &shard{
		capacity:  capacity,
		policy:    policy,
		alloc:     alloc,
		frames:    map[storage.PageID]*sframe{},
		writeback: map[storage.PageID]chan struct{}{},
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

func (s *shard) snapshot() Stats {
	return Stats{
		Hits:       s.hits.Load(),
		Misses:     s.misses.Load(),
		Evictions:  s.evictions.Load(),
		WriteBacks: s.writeBacks.Load(),
	}
}

func (s *shard) resident() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.loaded
}

// access serves one read (write=false) or write-allocate (write=true).
func (s *shard) access(base storage.Pager, m *stats.Buffer, id storage.PageID, buf []byte, write bool) error {
	s.mu.Lock()
	for {
		if f, ok := s.frames[id]; ok {
			if f.loaded {
				s.hits.Add(1)
				m.Hit()
				s.policy.Touched(id)
				if write {
					copy(f.data, buf)
					f.dirty = true
				} else {
					copy(buf, f.data)
				}
				s.mu.Unlock()
				return nil
			}
			// A fault on this page is in flight; wait for it to publish
			// or give up, then re-evaluate. If it failed, the frame is
			// gone from the map and this access runs its own fault.
			done := f.done
			s.mu.Unlock()
			wsp := s.tr.Start(trace.LayerBuffer, "singleflight-wait")
			wsp.Page(uint32(id))
			<-done
			wsp.End()
			s.mu.Lock()
			continue
		}
		if ch, ok := s.writeback[id]; ok {
			s.mu.Unlock()
			wsp := s.tr.Start(trace.LayerBuffer, "writeback-wait")
			wsp.Page(uint32(id))
			<-ch
			wsp.End()
			s.mu.Lock()
			continue
		}
		retry, err := s.fault(base, m, id, buf, write)
		if retry {
			continue
		}
		return err
	}
}

// fault makes the page resident. Called with the latch held; releases
// it around the base-pager I/O and before returning — except on
// retry=true, where the latch is still held and the caller's access
// loop must re-evaluate the page's state (the fault found it changed
// while waiting for a free slot).
func (s *shard) fault(base storage.Pager, m *stats.Buffer, id storage.PageID, buf []byte, write bool) (retry bool, err error) {
	// Make room. Only published frames can be evicted (the policy knows
	// nothing else); when every slot is a placeholder, wait for one to
	// publish.
	var victimID storage.PageID
	var victim *sframe
	var victimCh chan struct{}
	for s.loaded+s.inflight >= s.capacity {
		if s.loaded == 0 {
			// Wait releases the latch, so the page may arrive — or be
			// evicted dirty — before it returns. Either way this fault
			// is void: inserting its placeholder would orphan the
			// published frame in the policy and the loaded count.
			s.cond.Wait()
			if _, ok := s.frames[id]; ok {
				return true, nil
			}
			if _, ok := s.writeback[id]; ok {
				return true, nil
			}
			continue
		}
		victimID = s.policy.Victim()
		if ch, ok := s.writeback[victimID]; ok {
			// A fuzzy-flush write of the victim is in flight. Wait it
			// out with the latch released and void this fault — the
			// shard changed meanwhile, so the access must re-evaluate.
			s.mu.Unlock()
			<-ch
			s.mu.Lock()
			return true, nil
		}
		victim = s.frames[victimID]
		s.policy.Removed(victimID)
		delete(s.frames, victimID)
		s.loaded--
		if victim.dirty {
			victimCh = make(chan struct{})
			s.writeback[victimID] = victimCh
		}
		break
	}

	// Point of no return: this access is a miss.
	s.misses.Add(1)
	m.Miss()

	f := &sframe{done: make(chan struct{})}
	s.frames[id] = f
	s.inflight++

	if victimCh != nil {
		// Dirty victim: write it back outside the latch — only accesses
		// to the victim page itself wait, on the writeback entry.
		s.mu.Unlock()
		werr := base.WritePage(victimID, victim.data)
		s.mu.Lock()
		delete(s.writeback, victimID)
		close(victimCh)
		if werr != nil {
			// The victim's frame is intact: put it back and abandon the
			// fault. A write access inherits the write-back failure —
			// but a read must not: degraded read-only mode promises
			// reads keep serving, and a reader that happens to draw a
			// dirty victim while the device rejects writes would
			// otherwise fail on someone else's write error. Read
			// through without caching instead; the victim stays
			// resident and dirty.
			s.frames[victimID] = victim
			s.policy.Admitted(victimID)
			s.loaded++
			s.abandonFault(id, f)
			if !write {
				return false, base.ReadPage(id, buf)
			}
			return false, werr
		}
		s.evictions.Add(1)
		m.Eviction()
		s.writeBacks.Add(1)
		m.WriteBack()
		s.alloc.FreeFrame(victim.data)
	} else if victim != nil {
		s.evictions.Add(1)
		m.Eviction()
		s.alloc.FreeFrame(victim.data)
	}

	// The victim's frame went back to the allocator before this request,
	// so a static arena of exactly capacity frames cannot exhaust.
	data, err := s.alloc.AllocFrame()
	if err != nil {
		s.abandonFault(id, f)
		return false, err
	}

	if write {
		// Write-allocate: the caller's image becomes the frame content;
		// no base read.
		copy(data, buf)
		s.publish(id, f, data, true)
		return false, nil
	}
	s.mu.Unlock()
	rerr := base.ReadPage(id, data)
	if rerr == nil {
		// data is still private to this fault; copy without the latch.
		copy(buf, data)
	}
	s.mu.Lock()
	if rerr != nil {
		s.alloc.FreeFrame(data)
		s.abandonFault(id, f)
		return false, rerr
	}
	s.publish(id, f, data, false)
	return false, nil
}

// publish fills a placeholder frame and wakes waiters. Called with the
// latch held; releases it.
func (s *shard) publish(id storage.PageID, f *sframe, data []byte, dirty bool) {
	f.data = data
	f.dirty = dirty
	f.loaded = true
	s.inflight--
	s.loaded++
	s.policy.Admitted(id)
	close(f.done)
	s.cond.Broadcast()
	s.mu.Unlock()
}

// abandonFault removes a failed fault's placeholder so waiters retry
// their own fault. Called with the latch held; releases it.
func (s *shard) abandonFault(id storage.PageID, f *sframe) {
	if s.frames[id] == f {
		delete(s.frames, id)
	}
	s.inflight--
	close(f.done)
	s.cond.Broadcast()
	s.mu.Unlock()
}

// drop removes a page from the shard (Pager.Free), waiting out any
// in-flight fault or write-back of that page — including a fuzzy-flush
// write, whose base I/O must not land on a page the base has freed.
func (s *shard) drop(id storage.PageID) {
	s.mu.Lock()
	for {
		if ch, ok := s.writeback[id]; ok {
			s.mu.Unlock()
			<-ch
			s.mu.Lock()
			continue
		}
		if f, ok := s.frames[id]; ok {
			if !f.loaded {
				done := f.done
				s.mu.Unlock()
				<-done
				s.mu.Lock()
				continue
			}
			s.policy.Removed(id)
			delete(s.frames, id)
			s.loaded--
			s.alloc.FreeFrame(f.data)
			s.cond.Broadcast()
		}
		break
	}
	s.mu.Unlock()
}

// claimWriteback snapshots a dirty frame's image, clears its dirty bit
// and registers the page in the writeback table, all under the latch —
// the claim that lets the base write proceed outside it. The caller
// must write the returned image and then call releaseWriteback.
func (s *shard) claimWriteback(id storage.PageID, f *sframe) ([]byte, chan struct{}) {
	img := append([]byte(nil), f.data...)
	f.dirty = false
	ch := make(chan struct{})
	s.writeback[id] = ch
	return img, ch
}

// releaseWriteback retires a claim. On a failed base write the page is
// re-dirtied if its frame is still resident, so the data is not lost.
// Called with the latch held.
func (s *shard) releaseWriteback(id storage.PageID, m *stats.Buffer, werr error) {
	ch := s.writeback[id]
	delete(s.writeback, id)
	close(ch)
	if werr != nil {
		if f, ok := s.frames[id]; ok && f.loaded {
			f.dirty = true
		}
		return
	}
	s.writeBacks.Add(1)
	m.WriteBack()
}

// flushPage writes back one page if it is resident and dirty, with the
// base I/O outside the latch under a writeback claim; a pending write
// of the same page is waited out first so images land in order.
func (s *shard) flushPage(base storage.Pager, m *stats.Buffer, id storage.PageID) error {
	s.mu.Lock()
	for {
		if ch, ok := s.writeback[id]; ok {
			s.mu.Unlock()
			<-ch
			s.mu.Lock()
			continue
		}
		f, ok := s.frames[id]
		if !ok || !f.loaded || !f.dirty {
			break
		}
		img, _ := s.claimWriteback(id, f)
		s.mu.Unlock()
		werr := base.WritePage(id, img)
		s.mu.Lock()
		s.releaseWriteback(id, m, werr)
		if werr != nil {
			s.mu.Unlock()
			return werr
		}
		break
	}
	s.mu.Unlock()
	return nil
}

// flushSharp writes back every dirty page of this shard while holding
// the latch throughout: an atomic checkpoint — no access interleaves,
// the written set is a consistent snapshot — at the price of stalling
// the shard's traffic for the whole pass. This is the sequential
// engine's semantics; the single-latch Manager syncs with it.
func (s *shard) flushSharp(base storage.Pager, m *stats.Buffer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Drain outstanding eviction write-backs first: their pages must be
	// in the base file before the caller's base.Sync.
	for len(s.writeback) > 0 {
		var ch chan struct{}
		for _, ch = range s.writeback {
			break
		}
		s.mu.Unlock()
		<-ch
		s.mu.Lock()
	}
	for id, f := range s.frames {
		if !f.loaded || !f.dirty {
			continue
		}
		if err := base.WritePage(id, f.data); err != nil {
			return err
		}
		f.dirty = false
		s.writeBacks.Add(1)
		m.WriteBack()
	}
	return nil
}

// flushFuzzy writes back every page that was dirty when the pass began,
// releasing the latch around each base write (the writeback claim keeps
// concurrent evictions, faults, drops and flushes of that page in
// order). Traffic to the shard proceeds during the I/O — a fuzzy
// checkpoint: pages re-dirtied behind the scan stay dirty for the next
// pass. ShardedManager syncs with it.
func (s *shard) flushFuzzy(base storage.Pager, m *stats.Buffer) error {
	s.mu.Lock()
	ids := make([]storage.PageID, 0, len(s.frames))
	for id, f := range s.frames {
		if f.loaded && f.dirty {
			ids = append(ids, id)
		}
	}
	for _, id := range ids {
		for {
			if ch, ok := s.writeback[id]; ok {
				s.mu.Unlock()
				<-ch
				s.mu.Lock()
				continue
			}
			f, ok := s.frames[id]
			if !ok || !f.loaded || !f.dirty {
				break // evicted or written back since the scan
			}
			img, _ := s.claimWriteback(id, f)
			s.mu.Unlock()
			werr := base.WritePage(id, img)
			s.mu.Lock()
			s.releaseWriteback(id, m, werr)
			if werr != nil {
				s.mu.Unlock()
				return werr
			}
			break
		}
	}
	// Eviction write-backs that raced the scan carry pages dirtied
	// before this pass; wait for the ones in flight right now so the
	// caller's base.Sync covers them.
	chans := make([]chan struct{}, 0, len(s.writeback))
	for _, ch := range s.writeback {
		chans = append(chans, ch)
	}
	s.mu.Unlock()
	for _, ch := range chans {
		<-ch
	}
	return nil
}

// --- ShardedManager ---

// DefaultShards is the shard count used when the product does not set
// one (the composer's CacheShards knob).
const DefaultShards = 8

// ShardedManager is the ShardedBuffer feature: a write-back page cache
// striped over power-of-two shards, each with its own latch, frame map
// and replacement-policy instance. It implements Cache (and therefore
// storage.Pager) and is safe for concurrent use; unlike Manager, hits
// on different shards never contend, and Sync flushes shard by shard
// instead of stopping the world.
type ShardedManager struct {
	base       storage.Pager
	shards     []*shard
	shift      uint
	policyName string
	closed     atomic.Bool
	// metrics mirrors the counters into the Statistics feature's
	// registry when composed; nil otherwise (recording is a no-op).
	metrics *stats.Buffer
	// tracer records cache accesses as spans when the Tracing feature
	// is composed; nil otherwise.
	tracer *trace.Tracer
}

// NewShardedManager stripes capacity pages over shards. The shard count
// is rounded up to a power of two and clamped so every shard owns at
// least one frame (capacity < shards yields fewer shards); the capacity
// remainder goes to the low shards. Each shard gets its own policy and
// allocator from the factories, keeping both single-threaded per shard.
func NewShardedManager(base storage.Pager, capacity, shards int, newPolicy func() Policy, newAlloc func(frames int) (Allocator, error)) (*ShardedManager, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("buffer: capacity %d < 1", capacity)
	}
	if newPolicy == nil || newAlloc == nil {
		return nil, errors.New("buffer: nil policy or allocator factory")
	}
	if shards < 1 {
		shards = DefaultShards
	}
	n := 1 << uint(bits.Len(uint(shards-1)))
	for n > capacity {
		n >>= 1
	}
	m := &ShardedManager{base: base, shift: uint(64 - bits.TrailingZeros(uint(n)))}
	for i := 0; i < n; i++ {
		c := capacity / n
		if i < capacity%n {
			c++
		}
		p := newPolicy()
		if i == 0 {
			m.policyName = p.Name()
		}
		a, err := newAlloc(c)
		if err != nil {
			return nil, err
		}
		m.shards = append(m.shards, newShard(c, p, a))
	}
	return m, nil
}

// shardFor maps a page to its shard with a Fibonacci multiplicative
// hash: consecutive PageIDs — the common allocation pattern — spread
// uniformly instead of clustering in one shard.
func (m *ShardedManager) shardFor(id storage.PageID) *shard {
	h := uint64(id) * 0x9e3779b97f4a7c15
	return m.shards[h>>m.shift]
}

// ShardCount returns the number of stripes actually in use.
func (m *ShardedManager) ShardCount() int { return len(m.shards) }

// SetMetrics implements Cache, labeling the metrics with the policy and
// shard count.
func (m *ShardedManager) SetMetrics(b *stats.Buffer) {
	m.metrics = b
	b.SetPolicy(m.policyName)
	b.SetShards(len(m.shards))
}

// SetTracer implements Cache.
func (m *ShardedManager) SetTracer(t *trace.Tracer) {
	m.tracer = t
	for _, s := range m.shards {
		s.tr = t
	}
}

// PageSize implements storage.Pager.
func (m *ShardedManager) PageSize() int { return m.base.PageSize() }

// PolicyName implements Cache.
func (m *ShardedManager) PolicyName() string { return m.policyName }

// Stats implements Cache: the per-shard atomics summed.
func (m *ShardedManager) Stats() Stats {
	var st Stats
	for _, s := range m.shards {
		sn := s.snapshot()
		st.Hits += sn.Hits
		st.Misses += sn.Misses
		st.Evictions += sn.Evictions
		st.WriteBacks += sn.WriteBacks
	}
	return st
}

// Resident implements Cache.
func (m *ShardedManager) Resident() int {
	total := 0
	for _, s := range m.shards {
		total += s.resident()
	}
	return total
}

// Alloc implements storage.Pager.
func (m *ShardedManager) Alloc() (storage.PageID, error) {
	if m.closed.Load() {
		return 0, errManagerClosed
	}
	return m.base.Alloc()
}

// Free implements storage.Pager: the page leaves its shard and returns
// to the base free list.
func (m *ShardedManager) Free(id storage.PageID) error {
	if m.closed.Load() {
		return errManagerClosed
	}
	m.shardFor(id).drop(id)
	return m.base.Free(id)
}

// ReadPage implements storage.Pager.
func (m *ShardedManager) ReadPage(id storage.PageID, buf []byte) error {
	if m.closed.Load() {
		return errManagerClosed
	}
	sp := m.tracer.Start(trace.LayerBuffer, "read")
	sp.Page(uint32(id))
	err := m.shardFor(id).access(m.base, m.metrics, id, buf, false)
	sp.Fail(err)
	sp.End()
	return err
}

// WritePage implements storage.Pager: write-allocate, write-back.
func (m *ShardedManager) WritePage(id storage.PageID, buf []byte) error {
	if m.closed.Load() {
		return errManagerClosed
	}
	sp := m.tracer.Start(trace.LayerBuffer, "write")
	sp.Page(uint32(id))
	err := m.shardFor(id).access(m.base, m.metrics, id, buf, true)
	sp.Fail(err)
	sp.End()
	return err
}

// FlushPage implements Cache.
func (m *ShardedManager) FlushPage(id storage.PageID) error {
	if m.closed.Load() {
		return errManagerClosed
	}
	return m.shardFor(id).flushPage(m.base, m.metrics, id)
}

// Sync implements storage.Pager: every shard is flushed in turn — one
// stripe of the pool stalls at a time, never the whole pool — and the
// base pager is synced.
func (m *ShardedManager) Sync() error {
	for _, s := range m.shards {
		if err := s.flushFuzzy(m.base, m.metrics); err != nil {
			return err
		}
	}
	return m.base.Sync()
}

// Close implements storage.Pager: flush, then close the base pager.
// Close is terminal even when the flush fails.
func (m *ShardedManager) Close() error {
	if !m.closed.CompareAndSwap(false, true) {
		return errors.New("buffer: manager already closed")
	}
	for _, s := range m.shards {
		if err := s.flushFuzzy(m.base, m.metrics); err != nil {
			return err
		}
	}
	return m.base.Close()
}
