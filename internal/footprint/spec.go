// Package footprint is the binary-size model of the reproduction: the
// ROM cost of a feature is the measured size of the Go source that
// implements it, attributed at file or function granularity, and the
// ROM cost of a product is the sum over its composed features.
//
// This substitutes for the paper's compiled-binary sizes (Fig. 1a): Go
// cannot link per-feature object files, but source-derived costs
// preserve exactly what the figure demonstrates — the ordering and
// relative deltas between configurations. See DESIGN.md §4.
//
// Two inclusion models mirror the implementation technologies:
//
//   - Fine (FeatureC++): each selected feature contributes its own
//     cost and nothing else.
//   - Coarse (original C): code can only be excluded at the granularity
//     of the historical compile flags. Features entangled with the core
//     are always included, flag units are all-or-nothing, and each
//     included unit pays a fixed glue overhead for the preprocessor
//     scattering — which is why the C bars of Fig. 1a sit slightly
//     above the FeatureC++ bars for the same configuration.
package footprint

// SourceSpec names the source code implementing one feature: a file,
// and optionally the subset of functions within it ("Func" for plain
// functions, "Recv.Func" for methods). An empty Funcs list means the
// whole file.
type SourceSpec struct {
	File  string
	Funcs []string
}

// file is shorthand for a whole-file spec.
func file(path string) SourceSpec { return SourceSpec{File: path} }

// funcs is shorthand for a function-subset spec.
func funcs(path string, names ...string) SourceSpec {
	return SourceSpec{File: path, Funcs: names}
}

// FAMECore lists the code every FAME-DBMS product contains (the root
// feature): page storage, the OS abstraction surface, and the access
// layer skeleton.
func FAMECore() []SourceSpec {
	return []SourceSpec{
		file("internal/storage/pagefile.go"),
		file("internal/storage/slotted.go"),
		file("internal/storage/heap.go"),
		// The error taxonomy and the retry/degraded-mode latch are part of
		// every product: even the tiniest node wants typed page errors and
		// the read-only fallback when its flash dies. Only the checksum
		// trailer is a selectable feature.
		file("internal/storage/errors.go"),
		file("internal/storage/retry.go"),
		funcs("internal/osal/osal.go",
			"Stats.addRead", "Stats.addWrite", "Stats.addSync", "Stats.Snapshot",
			"MemFS.Open", "MemFS.Create", "MemFS.Remove", "MemFS.Rename",
			"MemFS.List", "MemFS.Stats", "NewMemFS",
			"memFile.ReadAt", "memFile.WriteAt", "memFile.Size",
			"memFile.Truncate", "memFile.Sync", "memFile.Close"),
		funcs("internal/access/access.go", "New", "Store.Index", "Store.Ops",
			"Store.Counters", "Store.Len"),
	}
}

// FAMESources maps each concrete FAME-DBMS feature to its sources.
func FAMESources() map[string][]SourceSpec {
	return map[string][]SourceSpec{
		// OS abstraction alternatives: Linux carries the real
		// directory-backed filesystem; Win32 and NutOS are simulated
		// targets whose cost is the platform glue.
		"Linux": {funcs("internal/osal/osal.go",
			"NewDirFS", "DirFS.path", "DirFS.Open", "DirFS.Create",
			"DirFS.Remove", "DirFS.Rename", "DirFS.List", "DirFS.Stats",
			"osFile.ReadAt", "osFile.WriteAt", "osFile.Size",
			"osFile.Truncate", "osFile.Sync", "osFile.Close")},
		"Win32": {funcs("internal/osal/osal.go", "PlatformByName")},
		"NutOS": {funcs("internal/osal/osal.go", "PlatformByName")},

		"DataTypes": {file("internal/types/types.go")},

		// The B+-tree: base structure plus the fine-grained operation
		// subfeatures of Fig. 2.
		"BPlusTree": {
			file("internal/btree/node.go"),
			funcs("internal/btree/btree.go",
				"Create", "Open", "Tree.writeMeta", "Tree.Len", "Tree.MetaPage",
				"Tree.readNode", "Tree.writeNode", "maxEntrySize",
				"Tree.Insert", "Tree.insertAt", "Tree.insertLeaf",
				"Tree.leafEntries", "Tree.innerEntries", "splitPoint",
				"leafCellSize2", "innerCellSize2"),
			funcs("internal/index/index.go",
				"CreateBTree", "OpenBTree", "BTree.Name", "BTree.Insert",
				"BTree.Len", "BTree.Tree", "AllBTreeOps"),
		},
		"BTreeSearch": {
			funcs("internal/btree/btree.go",
				"Tree.Get", "Tree.descendToLeaf", "Tree.descendFrom",
				"Tree.Scan", "Tree.leftmostLeaf"),
			funcs("internal/index/index.go", "BTree.Get", "BTree.Scan"),
		},
		"BTreeUpdate": {
			funcs("internal/btree/btree.go", "Tree.Update"),
			funcs("internal/index/index.go", "BTree.Update"),
		},
		"BTreeRemove": {
			funcs("internal/btree/btree.go", "Tree.Delete", "Tree.deleteAt"),
			funcs("internal/index/index.go", "BTree.Delete"),
		},

		// The Checksums feature: CRC32 page trailers sealed on write,
		// verified on read, plus the scrub pass. Lives entirely in one
		// file, so a product without Checksums carries none of it.
		"Checksums": {file("internal/storage/checksum.go")},

		"ListIndex": {funcs("internal/index/index.go",
			"CreateList", "OpenList", "encodeEntry", "decodeEntry",
			"List.find", "List.Name", "List.Insert", "List.Get",
			"List.Delete", "List.Update", "List.Scan", "List.Len")},

		// Buffer manager and its alternatives. The shard engine in
		// sharded.go is shared code: the single-latch Manager is one
		// shard, so it belongs to BufferManager, not ShardedBuffer.
		"BufferManager": {
			funcs("internal/buffer/buffer.go",
				"NewManager", "Manager.PageSize", "Manager.Stats", "Manager.PolicyName",
				"Manager.Resident", "Manager.Alloc", "Manager.Free",
				"Manager.ReadPage", "Manager.WritePage", "Manager.FlushPage",
				"Manager.Sync", "Manager.Close"),
			funcs("internal/buffer/sharded.go",
				"newShard", "shard.snapshot", "shard.resident", "shard.access",
				"shard.fault", "shard.publish", "shard.abandonFault",
				"shard.drop", "shard.claimWriteback", "shard.releaseWriteback",
				"shard.flushPage", "shard.flushSharp", "shard.flushFuzzy"),
		},
		"ShardedBuffer": {funcs("internal/buffer/sharded.go",
			"NewShardedManager", "ShardedManager.shardFor",
			"ShardedManager.ShardCount", "ShardedManager.SetMetrics",
			"ShardedManager.PageSize", "ShardedManager.PolicyName",
			"ShardedManager.Stats", "ShardedManager.Resident",
			"ShardedManager.Alloc", "ShardedManager.Free",
			"ShardedManager.ReadPage", "ShardedManager.WritePage",
			"ShardedManager.FlushPage", "ShardedManager.Sync",
			"ShardedManager.Close")},
		"LRU": {funcs("internal/buffer/buffer.go",
			"NewLRU", "LRU.Name", "LRU.Admitted", "LRU.Touched", "LRU.Removed",
			"LRU.Victim", "LRU.pushFront", "LRU.unlink")},
		"LFU": {funcs("internal/buffer/buffer.go",
			"NewLFU", "LFU.Name", "LFU.Admitted", "LFU.Touched", "LFU.Removed",
			"LFU.Victim")},
		"DynamicAlloc": {funcs("internal/buffer/buffer.go",
			"NewDynamicAllocator", "DynamicAllocator.Name",
			"DynamicAllocator.AllocFrame", "DynamicAllocator.FreeFrame",
			"DynamicAllocator.FootprintRAM")},
		"StaticAlloc": {funcs("internal/buffer/buffer.go",
			"NewStaticAllocator", "StaticAllocator.Name",
			"StaticAllocator.AllocFrame", "StaticAllocator.FreeFrame",
			"StaticAllocator.FootprintRAM")},

		// The four access operations (Fig. 2's put/get/remove/update).
		"Put":    {funcs("internal/access/access.go", "Store.Put")},
		"Get":    {funcs("internal/access/access.go", "Store.Get", "Store.Scan")},
		"Remove": {funcs("internal/access/access.go", "Store.Remove")},
		"Update": {funcs("internal/access/access.go", "Store.Update")},

		// Transactions with commit-protocol alternatives, the optional
		// Locking feature (thread safety + the group-commit pipeline),
		// and recovery.
		"Transaction": {
			file("internal/txn/wal.go"),
			funcs("internal/txn/txn.go",
				"Open", "Manager.Begin", "Txn.lookupWriteSet", "Txn.record",
				"Txn.Get", "Txn.Put", "Txn.exists", "Txn.Update", "Txn.Remove",
				"Txn.encodeWriteSet", "Manager.applyLocked",
				"Txn.Commit", "Txn.Abort", "Manager.Flush",
				"Manager.Checkpoint", "Manager.LogSyncs", "Manager.LogSize",
				"Manager.quiesce", "Manager.Close",
				"nullLocker.Lock", "nullLocker.Unlock", "nullLocker.RLock",
				"nullLocker.RUnlock"),
			// The shared read surface of snapshot.go: every transactional
			// product resolves visibility and merges the write-set overlay
			// through these, with or without a pinned version underneath.
			funcs("internal/txn/snapshot.go",
				"notFound", "Txn.visible", "Txn.Len", "Txn.Scan",
				"Txn.overlayRange"),
		},
		"ForceCommit": {funcs("internal/txn/txn.go",
			"Force.Name", "Force.OnCommit", "Force.Flush", "Force.BatchLimit")},
		"GroupCommit": {funcs("internal/txn/txn.go",
			"Group.Name", "Group.OnCommit", "Group.Flush", "Group.BatchLimit")},
		"Locking":  {file("internal/txn/groupcommit.go")},
		"Recovery": {funcs("internal/txn/txn.go", "Manager.recover")},

		// The query stack.
		"SQLEngine": {
			file("internal/sql/lexer.go"),
			file("internal/sql/ast.go"),
			file("internal/sql/parser.go"),
			funcs("internal/sql/engine.go",
				"Create", "Open", "initEngine", "Engine.Meta", "Engine.Exec",
				"Engine.execStmt", "Engine.lockFor", "Engine.dispatch",
				"catalogKey", "encodeTableMeta", "decodeTableMeta",
				"Engine.saveTableMeta", "Engine.openTable", "Engine.Tables",
				"Engine.execCreate", "Engine.execDrop", "coerce", "table.rowKey",
				"resolveInsert", "Engine.insertRow", "Engine.execInsert",
				"scanWhere", "Engine.scanMatching", "Engine.execSelect",
				"resolveProjection", "projectRow", "sortRows",
				"Engine.execAggregates", "aggRow", "Engine.applyUpdate",
				"Engine.execUpdate", "Engine.execDelete",
				"BTreeFactory", "ListFactory"),
		},
		"Optimizer": {funcs("internal/sql/engine.go",
			"Engine.planScan", "bytesCompare")},

		// The CompiledQueries feature: prepared statements, the closure
		// compiler, and the shape-keyed plan cache. Only CompiledQueries
		// maps these two files (CI guards that), so a product derived
		// without it parses and plans every statement and carries neither
		// the compiler nor the cache.
		"CompiledQueries": {
			file("internal/sql/compile.go"),
			file("internal/sql/cache.go"),
		},

		// The QueryStats feature: EXPLAIN/ANALYZE plan rendering and the
		// per-shape profile registry with the slow-query ring. Only
		// QueryStats maps these two files (CI guards that) — Statistics
		// alone ships without per-statement observability.
		"QueryStats": {
			file("internal/sql/explain.go"),
			file("internal/stats/querystats.go"),
		},

		// The Statistics feature: the cross-cutting metrics registry with
		// its histograms and encoders.
		"Statistics": {
			file("internal/stats/stats.go"),
			file("internal/stats/histogram.go"),
			file("internal/stats/encode.go"),
			file("internal/stats/delta.go"),
		},

		// The Tracing feature: the span recorder with its ring buffer,
		// slow-op log and exporters. No other feature maps to these files
		// (CI guards that), so a product without Tracing carries none of
		// this code.
		"Tracing": {
			file("internal/trace/trace.go"),
			file("internal/trace/ring.go"),
			file("internal/trace/slow.go"),
			file("internal/trace/export.go"),
		},

		// The MVCC feature: copy-on-write shadowing, the version table
		// with epoch reclamation, and the snapshot transaction surface.
		// Only MVCC maps the cow/version files (CI guards that), so a
		// product derived without it shadows no pages, keeps no version
		// list, and exposes no snapshot API.
		"MVCC": {
			file("internal/btree/cow.go"),
			file("internal/btree/versions.go"),
			funcs("internal/txn/snapshot.go",
				"Manager.BeginSnapshot", "Txn.SnapshotSeq", "Txn.releaseSnap",
				"Manager.pinVersion", "Manager.installVersion"),
		},

		// The Monitor feature: the windowed sampler, the threshold
		// watchdog with its bounded event log, and the HTTP telemetry
		// endpoint. Only Monitor maps this package (CI guards that), so
		// a product derived without it carries no sampler goroutine, no
		// rule engine, and no HTTP server.
		"Monitor": {
			file("internal/monitor/monitor.go"),
			file("internal/monitor/watchdog.go"),
			file("internal/monitor/http.go"),
		},

		// The Replication feature: the WAL ship layer (range reads,
		// prefix CRC handshakes, the chunk applier and snapshot
		// install), the in-process replicator, and the frame fan-out.
		// Only Replication maps these files (CI guards that), so a
		// product derived without it ships nothing and carries no
		// applier.
		"Replication": {
			file("internal/txn/ship.go"),
			file("internal/repl/repl.go"),
			file("internal/repl/frames.go"),
		},

		// The Server feature: the wire protocol, the TCP listener with
		// its client and replication sessions, the client library, and
		// the replica client. Only Server maps this package (CI guards
		// that), so a product derived without it opens no sockets.
		"Server": {
			file("internal/server/proto.go"),
			file("internal/server/server.go"),
			file("internal/server/client.go"),
			file("internal/server/replica.go"),
		},
	}
}

// BDBCore lists the code every case-study product contains: the storage
// stack, the cache, the environment skeleton and the catalog.
func BDBCore() []SourceSpec {
	return []SourceSpec{
		file("internal/storage/pagefile.go"),
		file("internal/storage/slotted.go"),
		file("internal/storage/heap.go"),
		funcs("internal/osal/osal.go",
			"NewMemFS", "MemFS.Open", "MemFS.Create", "MemFS.Remove",
			"MemFS.Rename", "MemFS.List", "MemFS.Stats",
			"memFile.ReadAt", "memFile.WriteAt", "memFile.Size",
			"memFile.Truncate", "memFile.Sync", "memFile.Close"),
		funcs("internal/buffer/buffer.go",
			"NewManager", "Manager.PageSize", "Manager.Stats", "Manager.Resident",
			"Manager.Alloc", "Manager.Free", "Manager.ReadPage",
			"Manager.WritePage", "Manager.Sync", "Manager.Close",
			"NewLRU", "LRU.Name", "LRU.Admitted", "LRU.Touched", "LRU.Removed",
			"LRU.Victim", "LRU.pushFront", "LRU.unlink",
			"NewDynamicAllocator", "DynamicAllocator.Name",
			"DynamicAllocator.AllocFrame", "DynamicAllocator.FreeFrame"),
		funcs("internal/buffer/sharded.go",
			"newShard", "shard.snapshot", "shard.resident", "shard.access",
			"shard.fault", "shard.publish", "shard.abandonFault",
			"shard.drop", "shard.claimWriteback", "shard.releaseWriteback",
			"shard.flushPage", "shard.flushSharp", "shard.flushFuzzy"),
		funcs("internal/index/index.go",
			"CreateList", "OpenList", "encodeEntry", "decodeEntry",
			"List.find", "List.Insert", "List.Get", "List.Scan", "List.Len"),
		funcs("internal/bdb/engine.go",
			"Open", "Env.has", "Env.CreateDB", "Env.OpenDB",
			"Env.lookupDBLocked", "Env.openDBLocked", "Env.Databases",
			"catalogVal", "DB.Name", "DB.Method", "DB.buildPipelines",
			"routed", "splitRouted", "DB.applyPut", "DB.applyGet",
			"DB.applyDel", "DB.kvOnly", "DB.Put", "DB.Get", "DB.Delete",
			"DB.Len", "featureErr"),
		funcs("internal/bdb/features.go", "Env.Sync", "Env.Close", "copyFile"),
	}
}

// BDBSources maps each of the 24 optional case-study features to its
// sources.
func BDBSources() map[string][]SourceSpec {
	return map[string][]SourceSpec{
		"Btree": {
			file("internal/btree/node.go"),
			file("internal/btree/btree.go"),
			funcs("internal/index/index.go",
				"CreateBTree", "OpenBTree", "BTree.Name", "BTree.Insert",
				"BTree.Get", "BTree.Delete", "BTree.Update", "BTree.Scan",
				"BTree.Len", "BTree.Tree", "AllBTreeOps"),
		},
		"Hash":  {file("internal/bdb/hash.go")},
		"Queue": {file("internal/bdb/queue.go")},
		"Recno": {funcs("internal/bdb/engine.go", "DB.Append", "DB.GetRecno", "recnoKey")},

		"Locking": {
			funcs("internal/txn/txn.go",
				"nullLocker.Lock", "nullLocker.Unlock", "nullLocker.RLock",
				"nullLocker.RUnlock"),
			file("internal/txn/groupcommit.go"),
		},
		"Logging": {
			file("internal/txn/wal.go"),
			funcs("internal/txn/txn.go", "Open", "Manager.Begin",
				"Txn.Put", "Txn.Remove", "Txn.Commit", "Txn.Abort",
				"Txn.lookupWriteSet", "Txn.record", "Txn.exists",
				"Txn.encodeWriteSet", "Manager.applyLocked", "Manager.quiesce",
				"Manager.Flush", "Manager.LogSyncs", "Manager.LogSize",
				"Manager.Close", "Force.Name", "Force.OnCommit", "Force.Flush",
				"Force.BatchLimit",
				"Group.Name", "Group.OnCommit", "Group.Flush", "Group.BatchLimit"),
			funcs("internal/bdb/engine.go", "routerIndex.Name",
				"routerIndex.resolve", "routerIndex.Insert", "routerIndex.Get",
				"routerIndex.Delete", "routerIndex.Update", "routerIndex.Scan",
				"routerIndex.Len"),
		},
		"Transactions": {
			funcs("internal/txn/txn.go", "Txn.Get", "Txn.Update"),
			funcs("internal/bdb/features.go", "Env.Begin", "Tx.Put", "Tx.Get",
				"Tx.Delete", "Tx.Commit", "Tx.Abort"),
		},
		"Recovery": {funcs("internal/txn/txn.go", "Manager.recover")},
		"Checkpoint": {funcs("internal/txn/txn.go", "Manager.Checkpoint"),
			funcs("internal/bdb/features.go", "Env.Checkpoint")},

		"Crypto": {file("internal/bdb/crypto.go")},
		"Replication": {
			file("internal/repl/repl.go"),
			funcs("internal/bdb/features.go", "Env.AttachReplica",
				"replicaRouter.Name", "replicaRouter.resolve",
				"replicaRouter.Insert", "replicaRouter.Delete",
				"replicaRouter.Get", "replicaRouter.Update",
				"replicaRouter.Scan", "replicaRouter.Len"),
		},
		"Backup":   {funcs("internal/bdb/features.go", "Env.Backup")},
		"Sequence": {funcs("internal/bdb/features.go", "Env.Sequence", "Sequence.Next")},
		"Events":   {funcs("internal/bdb/engine.go", "Env.emit")},
		"CacheTuning": {funcs("internal/buffer/buffer.go",
			"NewLFU", "LFU.Name", "LFU.Admitted", "LFU.Touched", "LFU.Removed",
			"LFU.Victim")},

		"Cursors": {funcs("internal/bdb/features.go",
			"DB.Cursor", "Cursor.First", "Cursor.Next", "Cursor.Prev",
			"Cursor.Seek", "Cursor.current")},
		"Join":    {funcs("internal/bdb/features.go", "Env.Join")},
		"BulkOps": {funcs("internal/bdb/features.go", "DB.BulkPut", "DB.BulkGet")},

		"Statistics": {funcs("internal/bdb/engine.go", "Env.Stats")},
		"Verify": {
			funcs("internal/btree/btree.go", "Tree.Verify"),
			funcs("internal/btree/node.go", "node.validate"),
			funcs("internal/bdb/hash.go", "HashIndex.VerifyChains"),
			funcs("internal/bdb/features.go", "DB.Verify", "Queue.verify"),
		},
		"Compact": {
			funcs("internal/btree/btree.go", "Tree.Compact", "Tree.allPages"),
			funcs("internal/bdb/features.go", "DB.Compact"),
		},
		"Truncate":      {funcs("internal/bdb/features.go", "DB.Truncate")},
		"Diagnostic":    {funcs("internal/bdb/engine.go", "DB.buildPipelines")},
		"ErrorMessages": {funcs("internal/bdb/engine.go", "Env.Strerror")},
	}
}

// BDBCoarseUnits describes the original C code base's compile-flag
// granularity: each unit is all-or-nothing, and the entangled unit is
// always linked. This is what makes configurations 7 and 8 of Fig. 1
// inexpressible in C.
type CoarseUnit struct {
	// Name of the historical compile flag.
	Name string
	// Features removed/added together by the flag.
	Features []string
}

// BDBCoarseUnits returns the flag units of the C build.
func BDBCoarseUnits() []CoarseUnit {
	return []CoarseUnit{
		{"HAVE_BTREE", []string{"Btree"}},
		{"HAVE_HASH", []string{"Hash"}},
		{"HAVE_QUEUE", []string{"Queue"}},
		{"HAVE_RECNO", []string{"Recno"}},
		{"HAVE_CRYPTO", []string{"Crypto"}},
		{"HAVE_REPLICATION", []string{"Replication"}},
		// One flag governs the whole transactional subsystem.
		{"HAVE_TXN", []string{"Transactions", "Logging", "Locking", "Recovery", "Checkpoint"}},
		{"HAVE_SEQUENCE", []string{"Sequence"}},
		{"HAVE_BACKUP", []string{"Backup"}},
		{"HAVE_COMPACT", []string{"Compact"}},
		{"HAVE_CACHETUNE", []string{"CacheTuning"}},
		{"HAVE_DIAGNOSTIC", []string{"Diagnostic"}},
		{"HAVE_JOIN", []string{"Join", "BulkOps"}},
	}
}

// BDBEntangledFeatures are the features the C code base cannot remove:
// they are woven through the core ("remaining functionality was heavily
// entangled", Sec. 2.3) and were only separated by the FeatureC++
// refactoring.
func BDBEntangledFeatures() []string {
	return []string{"Cursors", "Statistics", "Truncate", "Verify", "Events", "ErrorMessages"}
}

// CoarseGlueBytes is the per-included-unit overhead of the preprocessor
// scattering in the C build — the reason the C bars sit slightly above
// the FeatureC++ bars for identical configurations in Fig. 1a.
const CoarseGlueBytes = 640
