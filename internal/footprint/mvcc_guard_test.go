package footprint

import (
	"testing"
)

// mvccSources are the files dedicated to the MVCC feature: the
// copy-on-write machinery and the version table. The snapshot
// transaction surface in internal/txn/snapshot.go is shared at file
// granularity (its visibility and scan-merge functions serve every
// transactional product), so it is guarded at function granularity
// below instead.
var mvccSources = map[string]bool{
	"internal/btree/cow.go":      true,
	"internal/btree/versions.go": true,
}

// TestOnlyMvccMapsMvccSources guards the MVCC feature's zero-cost
// contract on the ROM side: a product derived without MVCC must carry
// no copy-on-write shadowing and no version table, so no other feature
// and not the core may claim those sources.
func TestOnlyMvccMapsMvccSources(t *testing.T) {
	for _, spec := range FAMECore() {
		if mvccSources[spec.File] {
			t.Errorf("core claims MVCC source %s", spec.File)
		}
	}
	for feat, specs := range FAMESources() {
		for _, spec := range specs {
			if mvccSources[spec.File] && feat != "MVCC" {
				t.Errorf("feature %q claims MVCC source %s", feat, spec.File)
			}
		}
	}
	// And MVCC claims them whole-file, so its ROM cost is real.
	mapped := map[string]bool{}
	for _, spec := range FAMESources()["MVCC"] {
		if mvccSources[spec.File] {
			if len(spec.Funcs) != 0 {
				t.Errorf("MVCC maps %s partially; want whole file", spec.File)
			}
			mapped[spec.File] = true
		}
	}
	for f := range mvccSources {
		if !mapped[f] {
			t.Errorf("MVCC feature does not map %s", f)
		}
	}
}

// TestMvccSnapshotFuncsSplit guards the function-granularity split of
// internal/txn/snapshot.go: the MVCC-only entry points must map to
// MVCC, the shared visibility/scan surface to Transaction, and the two
// sets must not overlap — otherwise a product without MVCC is billed
// for version pinning (or an MVCC product gets it free).
func TestMvccSnapshotFuncsSplit(t *testing.T) {
	const file = "internal/txn/snapshot.go"
	collect := func(feat string) map[string]bool {
		out := map[string]bool{}
		for _, spec := range FAMESources()[feat] {
			if spec.File != file {
				continue
			}
			if len(spec.Funcs) == 0 {
				t.Fatalf("%s maps %s whole-file; want a function subset", feat, file)
			}
			for _, fn := range spec.Funcs {
				out[fn] = true
			}
		}
		return out
	}
	mvcc := collect("MVCC")
	txn := collect("Transaction")
	if len(mvcc) == 0 || len(txn) == 0 {
		t.Fatalf("snapshot.go split missing: MVCC=%d funcs, Transaction=%d funcs", len(mvcc), len(txn))
	}
	for fn := range mvcc {
		if txn[fn] {
			t.Errorf("function %s of %s mapped by both MVCC and Transaction", fn, file)
		}
	}
	for _, want := range []string{"Manager.BeginSnapshot", "Manager.pinVersion", "Manager.installVersion"} {
		if !mvcc[want] {
			t.Errorf("MVCC does not map %s of %s", want, file)
		}
	}
}
