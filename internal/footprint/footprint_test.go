package footprint

import (
	"strings"
	"testing"

	"famedb/internal/core"
)

func loadTable(t *testing.T, model string) *Table {
	t.Helper()
	tab, err := Load(model)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestComputeFromSourceMatchesSpecs(t *testing.T) {
	root, err := FindRepoRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, model := range []string{"FAME-DBMS", "BerkeleyDB"} {
		tab, err := Compute(root, model)
		if err != nil {
			t.Fatalf("%s: %v", model, err)
		}
		if tab.Core <= 0 {
			t.Errorf("%s: core cost %d", model, tab.Core)
		}
		for name, cost := range tab.Features {
			if cost <= 0 {
				t.Errorf("%s: feature %s has cost %d", model, name, cost)
			}
		}
	}
}

func TestEveryConcreteFeatureIsCosted(t *testing.T) {
	cases := []struct {
		model string
		fm    *core.Model
	}{
		{"FAME-DBMS", core.FAMEModel()},
		{"BerkeleyDB", core.BDBModel()},
	}
	for _, c := range cases {
		tab := loadTable(t, c.model)
		for _, f := range c.fm.ConcreteFeatures() {
			if f.IsRoot() {
				continue
			}
			if _, ok := tab.Features[f.Name]; !ok {
				t.Errorf("%s: concrete feature %q has no footprint entry", c.model, f.Name)
			}
		}
		// No costs for features that do not exist in the model.
		for name := range tab.Features {
			if c.fm.Feature(name) == nil {
				t.Errorf("%s: footprint entry %q is not a model feature", c.model, name)
			}
		}
	}
}

func TestEmbeddedDefaultsTrackSources(t *testing.T) {
	// The generated defaults may lag the sources slightly, but gross
	// drift means cmd/fame-footprint -write was forgotten.
	root, err := FindRepoRoot(".")
	if err != nil {
		t.Skip("not in the source tree")
	}
	for _, model := range []string{"FAME-DBMS", "BerkeleyDB"} {
		live, err := Compute(root, model)
		if err != nil {
			t.Fatal(err)
		}
		embedded, err := loadDefault(model)
		if err != nil {
			t.Fatal(err)
		}
		within := func(a, b int) bool {
			lo, hi := b-b/2, b+b/2
			return a >= lo && a <= hi
		}
		if !within(live.Core, embedded.Core) {
			t.Errorf("%s: core drifted: live %d, embedded %d (run go run ./cmd/fame-footprint -write)",
				model, live.Core, embedded.Core)
		}
	}
}

func TestROMFineMonotone(t *testing.T) {
	tab := loadTable(t, "FAME-DBMS")
	small, err := tab.ROMFine([]string{"NutOS", "ListIndex", "Put", "Get", "DataTypes"})
	if err != nil {
		t.Fatal(err)
	}
	big, err := tab.ROMFine([]string{
		"Linux", "BPlusTree", "BTreeSearch", "BTreeUpdate", "BTreeRemove",
		"DataTypes", "BufferManager", "LRU", "DynamicAlloc",
		"Put", "Get", "Remove", "Update",
		"Transaction", "ForceCommit", "Recovery", "SQLEngine", "Optimizer",
	})
	if err != nil {
		t.Fatal(err)
	}
	if small >= big {
		t.Fatalf("minimal product (%d) not smaller than full product (%d)", small, big)
	}
	if small <= tab.Core {
		t.Fatalf("product cost %d should exceed core %d", small, tab.Core)
	}
}

func TestROMFineIgnoresAbstract(t *testing.T) {
	tab := loadTable(t, "FAME-DBMS")
	base, _ := tab.ROMFine(nil)
	withAbstract, _ := tab.ROMFine([]string{"Storage", "Access", "API"})
	if base != withAbstract {
		t.Fatalf("abstract features changed cost: %d vs %d", base, withAbstract)
	}
}

// figure1Configs resolves the Fig. 1 configurations against the model.
func figure1Configs(t *testing.T) []core.BDBConfiguration {
	t.Helper()
	return core.BDBConfigurations()
}

func TestFigure1aShape(t *testing.T) {
	// The central footprint claims of Fig. 1a, as orderings:
	//  (1) each "without X" config is smaller than the complete one;
	//  (2) minimal C (6) is smaller than configs 1-5;
	//  (3) minimal FeatureC++ (7) is smaller than minimal C (6);
	//  (4) for identical configs, C >= FeatureC++ (glue overhead).
	tab := loadTable(t, "BerkeleyDB")
	cfgs := figure1Configs(t)
	fine := map[int]int{}
	coarse := map[int]int{}
	for _, c := range cfgs {
		f, err := tab.ROMFine(c.Features)
		if err != nil {
			t.Fatalf("config %d fine: %v", c.Num, err)
		}
		fine[c.Num] = f
		for _, m := range c.Modes {
			if m == core.ModeC {
				cc, err := tab.ROMCoarse(c.Features)
				if err != nil {
					t.Fatalf("config %d coarse: %v", c.Num, err)
				}
				coarse[c.Num] = cc
			}
		}
	}
	for n := 2; n <= 5; n++ {
		if fine[n] >= fine[1] {
			t.Errorf("config %d (%d B) not smaller than complete (%d B)", n, fine[n], fine[1])
		}
	}
	for n := 1; n <= 5; n++ {
		if coarse[6] >= coarse[n] {
			t.Errorf("minimal C (%d B) not smaller than coarse config %d (%d B)", coarse[6], n, coarse[n])
		}
	}
	if fine[7] >= coarse[6] {
		t.Errorf("minimal FeatureC++ (%d B) not smaller than minimal C (%d B)", fine[7], coarse[6])
	}
	if fine[8] >= coarse[6] {
		t.Errorf("config 8 (%d B) not smaller than minimal C (%d B)", fine[8], coarse[6])
	}
	for n := 1; n <= 6; n++ {
		if coarse[n] < fine[n] {
			t.Errorf("config %d: C build (%d B) smaller than composed (%d B)", n, coarse[n], fine[n])
		}
	}
}

func TestCoarseRejectsInexpressibleConfigs(t *testing.T) {
	tab := loadTable(t, "BerkeleyDB")
	// Config 7 is {Btree} only — in the C build Cursors etc. cannot be
	// removed... but they also need not be selected; what the C build
	// cannot express is *excluding* entangled features, which ROMCoarse
	// models by always charging them. A truly inexpressible selection
	// would name a feature outside every flag unit; all 24 features are
	// covered, so ROMCoarse({Btree}) must equal minimal C.
	minimal, err := tab.ROMCoarse([]string{"Btree"})
	if err != nil {
		t.Fatal(err)
	}
	minimalC, err := tab.ROMCoarse([]string{
		"Btree", "Cursors", "Statistics", "Truncate", "Verify", "Events", "ErrorMessages",
	})
	if err != nil {
		t.Fatal(err)
	}
	if minimal != minimalC {
		t.Fatalf("coarse {Btree} = %d, minimal C = %d: entangled features should always be charged",
			minimal, minimalC)
	}
}

func TestCoarseOnlyForBDB(t *testing.T) {
	tab := loadTable(t, "FAME-DBMS")
	if _, err := tab.ROMCoarse([]string{"Put"}); err == nil {
		t.Fatal("coarse model should be BDB-only")
	}
}

func TestRAMModel(t *testing.T) {
	dynamic := RAM(RAMParams{PageSize: 512, CachePages: 16})
	static := RAM(RAMParams{PageSize: 512, CachePages: 16, StaticArena: true})
	if static-dynamic != 16*512 {
		t.Fatalf("arena delta = %d", static-dynamic)
	}
	withLog := RAM(RAMParams{PageSize: 512, CachePages: 16, LogBuffer: 4096})
	if withLog-dynamic != 4096 {
		t.Fatalf("log delta = %d", withLog-dynamic)
	}
}

func TestReportFormat(t *testing.T) {
	tab := loadTable(t, "FAME-DBMS")
	r := tab.Report()
	if !strings.Contains(r, "(core)") || !strings.Contains(r, "BPlusTree") {
		t.Fatalf("report missing rows:\n%s", r)
	}
}

func TestFindRepoRootFailsOutsideTree(t *testing.T) {
	if _, err := FindRepoRoot("/"); err == nil {
		t.Skip("a go.mod exists above /; environment-specific")
	}
}
