package footprint

import (
	"fmt"
	"sort"
)

// ROMFine returns the fine-grained (feature-composed) ROM cost of a
// selection: the core plus exactly the selected features.
func (t *Table) ROMFine(selected []string) (int, error) {
	total := t.Core
	for _, f := range selected {
		cost, ok := t.Features[f]
		if !ok {
			// Abstract features and the root carry no code.
			continue
		}
		_ = cost
		total += cost
	}
	return total, nil
}

// ROMCoarse returns the C-build ROM cost of a selection under the
// compile-flag granularity: entangled features are always linked, a
// flag unit is included whole when any of its features is selected, and
// each included unit pays the glue overhead. Features outside any unit
// and not entangled cannot be expressed in the C build at all — they
// were only separated by the refactoring — and including them returns
// an error.
func (t *Table) ROMCoarse(selected []string) (int, error) {
	if t.Model != "BerkeleyDB" {
		return 0, fmt.Errorf("footprint: coarse model only defined for the Berkeley DB case study")
	}
	total := t.Core
	// Entangled features: always linked.
	for _, f := range BDBEntangledFeatures() {
		total += t.Features[f]
	}
	entangled := map[string]bool{}
	for _, f := range BDBEntangledFeatures() {
		entangled[f] = true
	}
	unitOf := map[string]*CoarseUnit{}
	units := BDBCoarseUnits()
	for i := range units {
		for _, f := range units[i].Features {
			unitOf[f] = &units[i]
		}
	}
	included := map[string]bool{}
	for _, f := range selected {
		if entangled[f] {
			continue // already counted
		}
		u, ok := unitOf[f]
		if !ok {
			if _, costed := t.Features[f]; !costed {
				continue // abstract
			}
			return 0, fmt.Errorf("footprint: feature %s is not separable in the C build", f)
		}
		included[u.Name] = true
	}
	for _, u := range units {
		if !included[u.Name] {
			continue
		}
		for _, f := range u.Features {
			total += t.Features[f]
		}
		total += CoarseGlueBytes
	}
	return total, nil
}

// RAMParams are the configuration parameters that determine static RAM.
type RAMParams struct {
	PageSize   int
	CachePages int
	// StaticArena reports whether the product uses the static
	// allocator (the arena is permanently reserved RAM).
	StaticArena bool
	// LogBuffer is the journal buffer size (0 without Logging).
	LogBuffer int
}

// RAM estimates the static RAM of a configuration: the buffer arena (if
// statically allocated), one page of working buffers per subsystem, and
// the log buffer.
func RAM(p RAMParams) int {
	ram := 2 * p.PageSize // working buffers
	if p.StaticArena {
		ram += p.CachePages * p.PageSize
	}
	return ram + p.LogBuffer
}

// Report renders a table sorted by cost, for the CLI.
func (t *Table) Report() string {
	type row struct {
		name string
		cost int
	}
	rows := make([]row, 0, len(t.Features))
	for n, c := range t.Features {
		rows = append(rows, row{n, c})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].cost != rows[j].cost {
			return rows[i].cost > rows[j].cost
		}
		return rows[i].name < rows[j].name
	})
	out := fmt.Sprintf("%-16s %8s\n", "feature", "bytes")
	out += fmt.Sprintf("%-16s %8d\n", "(core)", t.Core)
	for _, r := range rows {
		out += fmt.Sprintf("%-16s %8d\n", r.name, r.cost)
	}
	return out
}
