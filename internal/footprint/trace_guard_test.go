package footprint

import (
	"strings"
	"testing"
)

// TestOnlyTracingMapsTraceSources guards the Tracing feature's
// zero-cost contract on the ROM side: a product derived without Tracing
// must carry none of internal/trace, so no other feature — and not the
// core — may claim those sources.
func TestOnlyTracingMapsTraceSources(t *testing.T) {
	for _, spec := range FAMECore() {
		if strings.HasPrefix(spec.File, "internal/trace/") {
			t.Errorf("core claims trace source %s", spec.File)
		}
	}
	for feat, specs := range FAMESources() {
		for _, spec := range specs {
			if strings.HasPrefix(spec.File, "internal/trace/") && feat != "Tracing" {
				t.Errorf("feature %q claims trace source %s", feat, spec.File)
			}
		}
	}
	// And Tracing claims the whole package, so its ROM cost is real.
	var traced int
	for _, spec := range FAMESources()["Tracing"] {
		if strings.HasPrefix(spec.File, "internal/trace/") {
			traced++
		}
	}
	if traced == 0 {
		t.Fatal("Tracing feature maps no internal/trace sources")
	}
}
