package footprint

import (
	"testing"
)

// compiledSources are the files dedicated to the CompiledQueries
// feature: the closure compiler with the prepared-statement surface,
// and the shape-keyed plan cache.
var compiledSources = map[string]bool{
	"internal/sql/compile.go": true,
	"internal/sql/cache.go":   true,
}

// TestOnlyCompiledQueriesMapsCompiledSources guards the feature's
// zero-cost contract on the ROM side: a product derived without
// CompiledQueries must carry no closure compiler and no plan cache, so
// no other feature and not the core may claim those sources.
func TestOnlyCompiledQueriesMapsCompiledSources(t *testing.T) {
	for _, spec := range FAMECore() {
		if compiledSources[spec.File] {
			t.Errorf("core claims CompiledQueries source %s", spec.File)
		}
	}
	for feat, specs := range FAMESources() {
		for _, spec := range specs {
			if compiledSources[spec.File] && feat != "CompiledQueries" {
				t.Errorf("feature %q claims CompiledQueries source %s", feat, spec.File)
			}
		}
	}
	// And CompiledQueries claims them whole-file, so its ROM cost is
	// real.
	mapped := map[string]bool{}
	for _, spec := range FAMESources()["CompiledQueries"] {
		if compiledSources[spec.File] {
			if len(spec.Funcs) != 0 {
				t.Errorf("CompiledQueries maps %s partially; want whole file", spec.File)
			}
			mapped[spec.File] = true
		}
	}
	for f := range compiledSources {
		if !mapped[f] {
			t.Errorf("CompiledQueries feature does not map %s", f)
		}
	}
}

// TestCompiledQueriesOnlyMapsCompiledSources is the inverse guard: the
// feature must not reach into the shared interpreted executor — the
// one-semantics-two-drivers split keeps engine.go billed to SQLEngine.
func TestCompiledQueriesOnlyMapsCompiledSources(t *testing.T) {
	for _, spec := range FAMESources()["CompiledQueries"] {
		if !compiledSources[spec.File] {
			t.Errorf("CompiledQueries claims shared source %s", spec.File)
		}
	}
}
