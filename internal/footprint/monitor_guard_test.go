package footprint

import (
	"strings"
	"testing"
)

// TestOnlyMonitorMapsMonitorSources guards the Monitor feature's
// zero-cost contract on the ROM side: a product derived without Monitor
// must carry none of internal/monitor — no sampler, no watchdog, no
// HTTP server — so no other feature and not the core may claim those
// sources.
func TestOnlyMonitorMapsMonitorSources(t *testing.T) {
	for _, spec := range FAMECore() {
		if strings.HasPrefix(spec.File, "internal/monitor/") {
			t.Errorf("core claims monitor source %s", spec.File)
		}
	}
	for feat, specs := range FAMESources() {
		for _, spec := range specs {
			if strings.HasPrefix(spec.File, "internal/monitor/") && feat != "Monitor" {
				t.Errorf("feature %q claims monitor source %s", feat, spec.File)
			}
		}
	}
	// And Monitor claims the whole package, so its ROM cost is real.
	var mapped int
	for _, spec := range FAMESources()["Monitor"] {
		if strings.HasPrefix(spec.File, "internal/monitor/") {
			mapped++
		}
	}
	if mapped == 0 {
		t.Fatal("Monitor feature maps no internal/monitor sources")
	}
}
