package footprint

import (
	"testing"
)

// querystatsSources are the files dedicated to the QueryStats feature:
// the EXPLAIN/ANALYZE plan renderer and the per-shape profile registry
// with the slow-query ring.
var querystatsSources = map[string]bool{
	"internal/sql/explain.go":      true,
	"internal/stats/querystats.go": true,
}

// TestOnlyQueryStatsMapsQuerystatsSources guards the feature's
// zero-cost contract on the ROM side: a product derived without
// QueryStats must carry no plan renderer and no profile registry, so
// no other feature and not the core may claim those sources. In
// particular Statistics — which QueryStats requires — must not absorb
// querystats.go into its own footprint.
func TestOnlyQueryStatsMapsQuerystatsSources(t *testing.T) {
	for _, spec := range FAMECore() {
		if querystatsSources[spec.File] {
			t.Errorf("core claims QueryStats source %s", spec.File)
		}
	}
	for feat, specs := range FAMESources() {
		for _, spec := range specs {
			if querystatsSources[spec.File] && feat != "QueryStats" {
				t.Errorf("feature %q claims QueryStats source %s", feat, spec.File)
			}
		}
	}
	// And QueryStats claims them whole-file, so its ROM cost is real.
	mapped := map[string]bool{}
	for _, spec := range FAMESources()["QueryStats"] {
		if querystatsSources[spec.File] {
			if len(spec.Funcs) != 0 {
				t.Errorf("QueryStats maps %s partially; want whole file", spec.File)
			}
			mapped[spec.File] = true
		}
	}
	for f := range querystatsSources {
		if !mapped[f] {
			t.Errorf("QueryStats feature does not map %s", f)
		}
	}
}

// TestQueryStatsOnlyMapsQuerystatsSources is the inverse guard: the
// counter plumbing woven through engine.go and compile.go stays billed
// to SQLEngine and CompiledQueries — QueryStats claims only its own
// dedicated files.
func TestQueryStatsOnlyMapsQuerystatsSources(t *testing.T) {
	for _, spec := range FAMESources()["QueryStats"] {
		if !querystatsSources[spec.File] {
			t.Errorf("QueryStats claims shared source %s", spec.File)
		}
	}
}
