// Copy-on-write mode: the mutation half of the MVCC feature.
//
// With copy-on-write enabled every mutation clones the dirtied
// root-to-leaf path into fresh pages (shadow paging in the LMDB
// tradition) instead of updating nodes in place. Committed pages are
// therefore immutable until reclaimed, which lets snapshot readers
// traverse a pinned root without any locking: nothing they can reach
// is ever overwritten while they hold the pin. The pages a mutation
// replaces accumulate in the tree's superseded set; the version table
// (versions.go) collects them at install time and returns them to the
// pager's free list once the last reader of the old version releases.
//
// One structural consequence: the leaf chain cannot be maintained,
// because shadowing a leaf would leave its left sibling's next pointer
// stale inside an already-committed (immutable) page. Copy-on-write
// trees therefore keep every nextLeaf pointer invalid and scans
// descend from the root instead of walking the chain.

package btree

import (
	"bytes"
	"errors"
	"fmt"

	"famedb/internal/storage"
)

// EnableCopyOnWrite switches the tree to copy-on-write mutations. It
// must be called before the first mutation and stays on for the
// tree's lifetime; the composer records the choice in the layout file
// so a tree is copy-on-write from birth or never.
func (t *Tree) EnableCopyOnWrite() { t.cow = true }

// CopyOnWrite reports whether copy-on-write mutations are enabled.
func (t *Tree) CopyOnWrite() bool { return t.cow }

// Root returns the current root page — the root the next installed
// version will publish.
func (t *Tree) Root() storage.PageID { return t.root }

// TakeSuperseded returns the pages replaced by shadowing since the
// last call and resets the set. The version table attaches them to the
// version they belonged to and frees them when that version's last pin
// releases.
func (t *Tree) TakeSuperseded() []storage.PageID {
	s := t.superseded
	t.superseded = nil
	return s
}

// shadow clones n into a freshly allocated page when copy-on-write is
// enabled and records the replaced page in the superseded set; without
// copy-on-write it returns n unchanged. Shadowed leaves drop their
// next-leaf link (see the package comment on chains).
func (t *Tree) shadow(n node) (node, error) {
	if !t.cow {
		return n, nil
	}
	id, err := t.pager.Alloc()
	if err != nil {
		return n, err
	}
	t.superseded = append(t.superseded, n.id)
	n.id = id
	if n.isLeaf() {
		n.setNextLeaf(storage.InvalidPage)
	}
	return n, nil
}

// getFrom reads key in the tree rooted at root — the read half of a
// pinned snapshot. It takes no locks: in copy-on-write mode every page
// reachable from a committed root is immutable while pinned.
func (t *Tree) getFrom(root storage.PageID, key []byte) ([]byte, bool, error) {
	n, err := t.descendFrom(root, key)
	if err != nil {
		return nil, false, err
	}
	idx, found := n.search(key)
	if !found {
		t.release(n)
		return nil, false, nil
	}
	val := append([]byte(nil), n.leafValue(idx)...)
	t.release(n)
	return val, true, nil
}

// errScanStop threads early termination (fn returned false or the to
// bound was passed) out of the recursive descent.
var errScanStop = errors.New("btree: scan stop")

// scanFrom calls fn for each entry with from <= key < to in the tree
// rooted at root, in key order, by descending from the root (the leaf
// chain does not exist in copy-on-write mode). Semantics match Scan.
func (t *Tree) scanFrom(root storage.PageID, from, to []byte, fn func(key, value []byte) bool) error {
	err := t.scanSubtree(root, from, to, fn)
	if errors.Is(err, errScanStop) {
		return nil
	}
	return err
}

func (t *Tree) scanSubtree(id storage.PageID, from, to []byte, fn func(key, value []byte) bool) error {
	n, err := t.readNode(id)
	if err != nil {
		return err
	}
	// The node is only read within this frame (child recursion reads its
	// own pages), so the buffer recycles on every way out.
	defer t.release(n)
	if n.isLeaf() {
		for i := 0; i < n.numKeys(); i++ {
			k := n.key(i)
			if from != nil && bytes.Compare(k, from) < 0 {
				continue
			}
			if to != nil && bytes.Compare(k, to) >= 0 {
				return errScanStop
			}
			if !fn(k, n.leafValue(i)) {
				return errScanStop
			}
		}
		return nil
	}
	// The leftmost child covers keys < key[0]; cell i covers
	// [key[i], key[i+1]). Start at the child covering from and stop
	// once a child's lower bound reaches to.
	start := -1
	if from != nil {
		start = n.childIndexFor(from)
	}
	for ci := start; ci < n.numKeys(); ci++ {
		if to != nil && ci >= 0 && bytes.Compare(n.key(ci), to) >= 0 {
			return errScanStop
		}
		child := n.leftChild()
		if ci >= 0 {
			child = n.childAt(ci)
		}
		if child == storage.InvalidPage {
			return fmt.Errorf("btree: nil child in page %d: %w", n.id, ErrCorrupt)
		}
		if err := t.scanSubtree(child, from, to, fn); err != nil {
			return err
		}
	}
	return nil
}
