package btree

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"famedb/internal/buffer"
	"famedb/internal/osal"
	"famedb/internal/storage"
)

func newPager(t *testing.T, pageSize int) storage.Pager {
	t.Helper()
	f, err := osal.NewMemFS().Create("t.db")
	if err != nil {
		t.Fatal(err)
	}
	pf, err := storage.CreatePageFile(f, pageSize)
	if err != nil {
		t.Fatal(err)
	}
	return pf
}

func newTree(t *testing.T, pageSize int) *Tree {
	t.Helper()
	tr, _, err := Create(newPager(t, pageSize))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func mustInsert(t *testing.T, tr *Tree, k, v string) {
	t.Helper()
	if err := tr.Insert([]byte(k), []byte(v)); err != nil {
		t.Fatalf("Insert(%q): %v", k, err)
	}
}

func TestInsertGetSmall(t *testing.T) {
	tr := newTree(t, 256)
	mustInsert(t, tr, "b", "2")
	mustInsert(t, tr, "a", "1")
	mustInsert(t, tr, "c", "3")
	for _, kv := range []struct{ k, v string }{{"a", "1"}, {"b", "2"}, {"c", "3"}} {
		got, found, err := tr.Get([]byte(kv.k))
		if err != nil || !found || string(got) != kv.v {
			t.Fatalf("Get(%q) = %q, %v, %v", kv.k, got, found, err)
		}
	}
	if _, found, _ := tr.Get([]byte("zz")); found {
		t.Fatal("found missing key")
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestInsertOverwrites(t *testing.T) {
	tr := newTree(t, 256)
	mustInsert(t, tr, "k", "old")
	mustInsert(t, tr, "k", "new")
	got, _, _ := tr.Get([]byte("k"))
	if string(got) != "new" {
		t.Fatalf("Get = %q", got)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len after overwrite = %d", tr.Len())
	}
}

func TestEmptyKeyRejected(t *testing.T) {
	tr := newTree(t, 256)
	if err := tr.Insert(nil, []byte("v")); !errors.Is(err, ErrEmptyKey) {
		t.Fatalf("Insert(nil) = %v", err)
	}
}

func TestOversizedEntryRejected(t *testing.T) {
	tr := newTree(t, 256)
	if err := tr.Insert([]byte("k"), make([]byte, 300)); !errors.Is(err, ErrKeyTooLarge) {
		t.Fatalf("oversized insert = %v", err)
	}
}

func TestSplitsAndOrdering(t *testing.T) {
	tr := newTree(t, 256)
	const n = 500
	for i := 0; i < n; i++ {
		mustInsert(t, tr, fmt.Sprintf("key-%04d", i), fmt.Sprintf("val-%d", i))
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	if err := tr.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	for i := 0; i < n; i++ {
		got, found, err := tr.Get([]byte(fmt.Sprintf("key-%04d", i)))
		if err != nil || !found || string(got) != fmt.Sprintf("val-%d", i) {
			t.Fatalf("Get(key-%04d) = %q, %v, %v", i, got, found, err)
		}
	}
}

func TestReverseAndRandomInsertOrders(t *testing.T) {
	for _, order := range []string{"reverse", "random"} {
		tr := newTree(t, 256)
		idx := make([]int, 300)
		for i := range idx {
			idx[i] = i
		}
		if order == "reverse" {
			sort.Sort(sort.Reverse(sort.IntSlice(idx)))
		} else {
			rand.New(rand.NewSource(3)).Shuffle(len(idx), func(i, j int) {
				idx[i], idx[j] = idx[j], idx[i]
			})
		}
		for _, i := range idx {
			mustInsert(t, tr, fmt.Sprintf("k%05d", i), fmt.Sprintf("v%d", i))
		}
		if err := tr.Verify(); err != nil {
			t.Fatalf("%s: Verify: %v", order, err)
		}
		var keys []string
		tr.Scan(nil, nil, func(k, v []byte) bool {
			keys = append(keys, string(k))
			return true
		})
		if !sort.StringsAreSorted(keys) || len(keys) != 300 {
			t.Fatalf("%s: scan returned %d keys, sorted=%v", order, len(keys), sort.StringsAreSorted(keys))
		}
	}
}

func TestScanRange(t *testing.T) {
	tr := newTree(t, 256)
	for i := 0; i < 100; i++ {
		mustInsert(t, tr, fmt.Sprintf("k%03d", i), "v")
	}
	var got []string
	err := tr.Scan([]byte("k010"), []byte("k020"), func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 || got[0] != "k010" || got[9] != "k019" {
		t.Fatalf("range scan = %v", got)
	}
	// Early stop.
	count := 0
	tr.Scan(nil, nil, func(k, v []byte) bool {
		count++
		return count < 7
	})
	if count != 7 {
		t.Fatalf("early stop visited %d", count)
	}
	// Range with no matches.
	n := 0
	tr.Scan([]byte("zzz"), nil, func(k, v []byte) bool { n++; return true })
	if n != 0 {
		t.Fatalf("empty range visited %d", n)
	}
}

func TestDelete(t *testing.T) {
	tr := newTree(t, 256)
	for i := 0; i < 200; i++ {
		mustInsert(t, tr, fmt.Sprintf("k%03d", i), "v")
	}
	for i := 0; i < 200; i += 2 {
		deleted, err := tr.Delete([]byte(fmt.Sprintf("k%03d", i)))
		if err != nil || !deleted {
			t.Fatalf("Delete(k%03d) = %v, %v", i, deleted, err)
		}
	}
	if tr.Len() != 100 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if deleted, _ := tr.Delete([]byte("k000")); deleted {
		t.Fatal("double delete reported success")
	}
	if err := tr.Verify(); err != nil {
		t.Fatalf("Verify after deletes: %v", err)
	}
	for i := 0; i < 200; i++ {
		_, found, _ := tr.Get([]byte(fmt.Sprintf("k%03d", i)))
		if found != (i%2 == 1) {
			t.Fatalf("Get(k%03d) found=%v", i, found)
		}
	}
}

func TestDeleteAllThenReinsert(t *testing.T) {
	tr := newTree(t, 256)
	for i := 0; i < 100; i++ {
		mustInsert(t, tr, fmt.Sprintf("k%03d", i), "v1")
	}
	for i := 0; i < 100; i++ {
		tr.Delete([]byte(fmt.Sprintf("k%03d", i)))
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.Verify(); err != nil {
		t.Fatalf("Verify on emptied tree: %v", err)
	}
	for i := 0; i < 100; i++ {
		mustInsert(t, tr, fmt.Sprintf("k%03d", i), "v2")
	}
	got, _, _ := tr.Get([]byte("k050"))
	if string(got) != "v2" {
		t.Fatalf("reinserted value = %q", got)
	}
	if err := tr.Verify(); err != nil {
		t.Fatalf("Verify after refill: %v", err)
	}
}

func TestUpdateOnlyExisting(t *testing.T) {
	tr := newTree(t, 256)
	mustInsert(t, tr, "k", "v1")
	ok, err := tr.Update([]byte("k"), []byte("v2"))
	if err != nil || !ok {
		t.Fatalf("Update = %v, %v", ok, err)
	}
	got, _, _ := tr.Get([]byte("k"))
	if string(got) != "v2" {
		t.Fatalf("Get = %q", got)
	}
	ok, err = tr.Update([]byte("missing"), []byte("x"))
	if err != nil || ok {
		t.Fatalf("Update(missing) = %v, %v", ok, err)
	}
	if _, found, _ := tr.Get([]byte("missing")); found {
		t.Fatal("Update created a key")
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	f, _ := osal.NewMemFS().Create("p.db")
	pf, _ := storage.CreatePageFile(f, 256)
	tr, metaID, err := Create(pf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 150; i++ {
		tr.Insert([]byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	if err := pf.Sync(); err != nil {
		t.Fatal(err)
	}

	tr2, err := Open(pf, metaID)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Len() != 150 {
		t.Fatalf("reopened Len = %d", tr2.Len())
	}
	for i := 0; i < 150; i++ {
		got, found, _ := tr2.Get([]byte(fmt.Sprintf("k%03d", i)))
		if !found || string(got) != fmt.Sprintf("v%d", i) {
			t.Fatalf("reopened Get(k%03d) = %q, %v", i, got, found)
		}
	}
	if err := tr2.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenRejectsWrongPage(t *testing.T) {
	p := newPager(t, 256)
	id, _ := p.Alloc()
	if _, err := Open(p, id); err == nil {
		t.Fatal("Open on a non-meta page should fail")
	}
}

func TestVariableLengthEntries(t *testing.T) {
	tr := newTree(t, 512)
	rng := rand.New(rand.NewSource(11))
	model := map[string]string{}
	for i := 0; i < 400; i++ {
		k := fmt.Sprintf("%0*d", 1+rng.Intn(20), rng.Intn(10000))
		v := string(bytes.Repeat([]byte{byte('a' + i%26)}, rng.Intn(60)))
		if err := tr.Insert([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
		model[k] = v
	}
	if err := tr.Verify(); err != nil {
		t.Fatal(err)
	}
	if int(tr.Len()) != len(model) {
		t.Fatalf("Len = %d, model %d", tr.Len(), len(model))
	}
	for k, v := range model {
		got, found, _ := tr.Get([]byte(k))
		if !found || string(got) != v {
			t.Fatalf("Get(%q) = %q, %v", k, got, found)
		}
	}
}

// TestTreeModelEquivalence drives random operations against a map model
// and verifies Get/Scan/Len/Verify agree throughout — the main
// correctness property of the index.
func TestTreeModelEquivalence(t *testing.T) {
	for _, pageSize := range []int{128, 512, 4096} {
		t.Run(fmt.Sprintf("page%d", pageSize), func(t *testing.T) {
			tr := newTree(t, pageSize)
			rng := rand.New(rand.NewSource(int64(pageSize)))
			model := map[string]string{}
			var keys []string
			maxVal := maxEntrySize(pageSize) - 24
			if maxVal < 3 {
				maxVal = 3
			}
			for op := 0; op < 4000; op++ {
				switch rng.Intn(10) {
				case 0, 1, 2, 3, 4: // insert
					k := fmt.Sprintf("key%04d", rng.Intn(2000))
					v := fmt.Sprintf("%0*d", 1+rng.Intn(maxVal), rng.Intn(100))
					if err := tr.Insert([]byte(k), []byte(v)); err != nil {
						t.Fatalf("op %d Insert: %v", op, err)
					}
					if _, dup := model[k]; !dup {
						keys = append(keys, k)
					}
					model[k] = v
				case 5, 6: // delete
					if len(keys) == 0 {
						continue
					}
					k := keys[rng.Intn(len(keys))]
					_, inModel := model[k]
					deleted, err := tr.Delete([]byte(k))
					if err != nil {
						t.Fatalf("op %d Delete: %v", op, err)
					}
					if deleted != inModel {
						t.Fatalf("op %d Delete(%q) = %v, model %v", op, k, deleted, inModel)
					}
					delete(model, k)
				case 7, 8: // get
					k := fmt.Sprintf("key%04d", rng.Intn(2000))
					got, found, err := tr.Get([]byte(k))
					if err != nil {
						t.Fatalf("op %d Get: %v", op, err)
					}
					want, inModel := model[k]
					if found != inModel || (found && string(got) != want) {
						t.Fatalf("op %d Get(%q) = %q,%v; model %q,%v", op, k, got, found, want, inModel)
					}
				case 9: // update
					k := fmt.Sprintf("key%04d", rng.Intn(2000))
					v := fmt.Sprintf("u%d", rng.Intn(100))
					ok, err := tr.Update([]byte(k), []byte(v))
					if err != nil {
						t.Fatalf("op %d Update: %v", op, err)
					}
					if _, inModel := model[k]; ok != inModel {
						t.Fatalf("op %d Update(%q) = %v, model %v", op, k, ok, inModel)
					}
					if ok {
						model[k] = v
					}
				}
			}
			if int(tr.Len()) != len(model) {
				t.Fatalf("Len = %d, model %d", tr.Len(), len(model))
			}
			if err := tr.Verify(); err != nil {
				t.Fatal(err)
			}
			// Full scan equals sorted model.
			var wantKeys []string
			for k := range model {
				wantKeys = append(wantKeys, k)
			}
			sort.Strings(wantKeys)
			i := 0
			err := tr.Scan(nil, nil, func(k, v []byte) bool {
				if i >= len(wantKeys) || string(k) != wantKeys[i] || string(v) != model[wantKeys[i]] {
					t.Fatalf("scan position %d: got %q=%q", i, k, v)
				}
				i++
				return true
			})
			if err != nil || i != len(wantKeys) {
				t.Fatalf("scan visited %d of %d: %v", i, len(wantKeys), err)
			}
		})
	}
}

func TestCompactReclaimsPagesAndPreservesData(t *testing.T) {
	f, _ := osal.NewMemFS().Create("c.db")
	pf, _ := storage.CreatePageFile(f, 256)
	tr, _, _ := Create(pf)
	for i := 0; i < 500; i++ {
		tr.Insert([]byte(fmt.Sprintf("k%04d", i)), bytes.Repeat([]byte("v"), 20))
	}
	for i := 0; i < 500; i++ {
		if i%10 != 0 {
			tr.Delete([]byte(fmt.Sprintf("k%04d", i)))
		}
	}
	if err := tr.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Verify(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 50 {
		t.Fatalf("Len after compact = %d", tr.Len())
	}
	for i := 0; i < 500; i += 10 {
		_, found, _ := tr.Get([]byte(fmt.Sprintf("k%04d", i)))
		if !found {
			t.Fatalf("k%04d lost by compact", i)
		}
	}
	// Compaction must leave a small tree: inserting afresh into a new
	// file should need a similar page count.
	pagesAfter := pf.NumPages()
	f2, _ := osal.NewMemFS().Create("c2.db")
	pf2, _ := storage.CreatePageFile(f2, 256)
	tr2, _, _ := Create(pf2)
	for i := 0; i < 500; i += 10 {
		tr2.Insert([]byte(fmt.Sprintf("k%04d", i)), bytes.Repeat([]byte("v"), 20))
	}
	// The compacted file retains freed pages on its free list, so the
	// total file size may be larger, but live pages must be few. We
	// check by filling from the free list: allocating the difference
	// should not grow the file.
	before := pf.NumPages()
	for i := 0; i < int(before)-int(pf2.NumPages()); i++ {
		if _, err := pf.Alloc(); err != nil {
			t.Fatal(err)
		}
	}
	if pf.NumPages() != pagesAfter {
		t.Fatalf("file grew during free-list allocs: %d -> %d", pagesAfter, pf.NumPages())
	}
}

func TestTreeThroughBufferManager(t *testing.T) {
	f, _ := osal.NewMemFS().Create("b.db")
	pf, _ := storage.CreatePageFile(f, 512)
	mgr, err := buffer.NewManager(pf, 8, buffer.NewLRU(), buffer.NewDynamicAllocator(512))
	if err != nil {
		t.Fatal(err)
	}
	tr, _, err := Create(mgr)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if err := tr.Insert([]byte(fmt.Sprintf("k%04d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Verify(); err != nil {
		t.Fatalf("Verify through cache: %v", err)
	}
	if err := mgr.Sync(); err != nil {
		t.Fatal(err)
	}
	// Bypass the cache: the base file must hold the same tree.
	tr2, err := Open(pf, tr.MetaPage())
	if err != nil {
		t.Fatal(err)
	}
	if err := tr2.Verify(); err != nil {
		t.Fatalf("Verify on base file after sync: %v", err)
	}
	if tr2.Len() != 300 {
		t.Fatalf("base tree Len = %d", tr2.Len())
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	p := newPager(t, 256)
	tr, _, _ := Create(p)
	for i := 0; i < 50; i++ {
		tr.Insert([]byte(fmt.Sprintf("k%02d", i)), []byte("v"))
	}
	// Corrupt the root's key ordering by swapping two offsets.
	n, err := tr.readNode(tr.root)
	if err != nil {
		t.Fatal(err)
	}
	if n.numKeys() >= 2 {
		o0, o1 := n.offset(0), n.offset(1)
		n.setOffset(0, o1)
		n.setOffset(1, o0)
		if err := tr.writeNode(n); err != nil {
			t.Fatal(err)
		}
		if err := tr.Verify(); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Verify on corrupted tree = %v, want ErrCorrupt", err)
		}
	}
}

func TestSmallestPageSize(t *testing.T) {
	// NutOS-style 512-byte pages and even the 128-byte floor must work.
	tr := newTree(t, 128)
	for i := 0; i < 100; i++ {
		if err := tr.Insert([]byte(fmt.Sprintf("k%02d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Verify(); err != nil {
		t.Fatal(err)
	}
}
