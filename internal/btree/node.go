// Package btree implements the BPlusTree feature of FAME-DBMS: a paged
// B+-tree with variable-length keys and values over a storage.Pager.
//
// Following the paper's fine-grained decomposition of the index (Fig. 2
// shows search, update and remove as separate subfeatures of the
// B+-tree), the mutating operations are independent entry points that
// the composer wires individually; a product without BTreeRemove simply
// never links Delete.
package btree

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"

	"famedb/internal/storage"
)

// Node page layout:
//
//	[0]     node type (leafType or innerType)
//	[1]     unused flags
//	[2:4]   key count (uint16)
//	[4:6]   cell area start (uint16)
//	[6:10]  leaf: next-leaf page; inner: unused
//	[10:14] inner: leftmost child page; leaf: unused
//	[14:16] reserved
//
// After the header comes the offset array (2 bytes per key, sorted by
// key); cells grow from the page end downward.
//
// Leaf cell:  klen uvarint | vlen uvarint | key | value
// Inner cell: klen uvarint | child uint32 | key
//
// Inner-node semantics: the leftmost child holds keys < key[0]; the
// child in cell i holds keys in [key[i], key[i+1]).
const (
	leafType  = 0x21
	innerType = 0x22

	nodeHeaderSize = 16
	offsetSize     = 2
)

var (
	// ErrKeyTooLarge is returned when a key/value pair cannot ever fit.
	ErrKeyTooLarge = errors.New("btree: entry exceeds maximum size for page")
	// ErrCorrupt indicates an invariant violation found in stored data.
	ErrCorrupt = errors.New("btree: corrupt node")
)

// node wraps a page buffer with B+-tree node accessors.
type node struct {
	buf []byte
	id  storage.PageID
}

func initNode(buf []byte, typ byte) node {
	for i := range buf {
		buf[i] = 0
	}
	buf[0] = typ
	binary.LittleEndian.PutUint16(buf[4:6], uint16(len(buf)))
	return node{buf: buf}
}

func (n node) isLeaf() bool { return n.buf[0] == leafType }

func (n node) numKeys() int { return int(binary.LittleEndian.Uint16(n.buf[2:4])) }

func (n node) setNumKeys(c int) { binary.LittleEndian.PutUint16(n.buf[2:4], uint16(c)) }

func (n node) cellStart() int { return int(binary.LittleEndian.Uint16(n.buf[4:6])) }

func (n node) setCellStart(off int) { binary.LittleEndian.PutUint16(n.buf[4:6], uint16(off)) }

func (n node) nextLeaf() storage.PageID {
	return storage.PageID(binary.LittleEndian.Uint32(n.buf[6:10]))
}

func (n node) setNextLeaf(id storage.PageID) {
	binary.LittleEndian.PutUint32(n.buf[6:10], uint32(id))
}

func (n node) leftChild() storage.PageID {
	return storage.PageID(binary.LittleEndian.Uint32(n.buf[10:14]))
}

func (n node) setLeftChild(id storage.PageID) {
	binary.LittleEndian.PutUint32(n.buf[10:14], uint32(id))
}

func (n node) offset(i int) int {
	base := nodeHeaderSize + i*offsetSize
	return int(binary.LittleEndian.Uint16(n.buf[base : base+2]))
}

func (n node) setOffset(i, off int) {
	base := nodeHeaderSize + i*offsetSize
	binary.LittleEndian.PutUint16(n.buf[base:base+2], uint16(off))
}

// key returns the i-th key (aliasing the buffer).
func (n node) key(i int) []byte {
	off := n.offset(i)
	klen, sz := binary.Uvarint(n.buf[off:])
	off += sz
	if n.isLeaf() {
		_, sz2 := binary.Uvarint(n.buf[off:])
		off += sz2
	} else {
		off += 4
	}
	return n.buf[off : off+int(klen)]
}

// leafValue returns the i-th value of a leaf (aliasing the buffer).
func (n node) leafValue(i int) []byte {
	off := n.offset(i)
	klen, sz := binary.Uvarint(n.buf[off:])
	off += sz
	vlen, sz2 := binary.Uvarint(n.buf[off:])
	off += sz2 + int(klen)
	return n.buf[off : off+int(vlen)]
}

// childAt returns the child pointer of inner cell i.
func (n node) childAt(i int) storage.PageID {
	off := n.offset(i)
	_, sz := binary.Uvarint(n.buf[off:])
	return storage.PageID(binary.LittleEndian.Uint32(n.buf[off+sz : off+sz+4]))
}

// setChildAt overwrites the child pointer of inner cell i.
func (n node) setChildAt(i int, id storage.PageID) {
	off := n.offset(i)
	_, sz := binary.Uvarint(n.buf[off:])
	binary.LittleEndian.PutUint32(n.buf[off+sz:off+sz+4], uint32(id))
}

// cellSize returns the byte size of cell i.
func (n node) cellSize(i int) int {
	off := n.offset(i)
	klen, sz := binary.Uvarint(n.buf[off:])
	if n.isLeaf() {
		vlen, sz2 := binary.Uvarint(n.buf[off+sz:])
		return sz + sz2 + int(klen) + int(vlen)
	}
	return sz + 4 + int(klen)
}

// usedBytes returns cell bytes plus offset array bytes.
func (n node) usedBytes() int {
	used := 0
	for i := 0; i < n.numKeys(); i++ {
		used += n.cellSize(i) + offsetSize
	}
	return used
}

// freeBytes returns space available for one more cell + offset.
func (n node) freeBytes() int {
	return n.cellStart() - (nodeHeaderSize + n.numKeys()*offsetSize)
}

// search returns the index of key in the node and whether it was found;
// when not found, the index is the insertion position.
func (n node) search(key []byte) (int, bool) {
	lo, hi := 0, n.numKeys()
	for lo < hi {
		mid := (lo + hi) / 2
		switch bytes.Compare(n.key(mid), key) {
		case 0:
			return mid, true
		case -1:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return lo, false
}

// childIndexFor returns which child to descend into for key: -1 means
// the leftmost child, otherwise the cell index.
func (n node) childIndexFor(key []byte) int {
	idx, found := n.search(key)
	if found {
		return idx
	}
	return idx - 1 // cell idx-1 covers [key[idx-1], key[idx]); -1 = leftmost
}

// childFor resolves childIndexFor to a page ID.
func (n node) childFor(key []byte) storage.PageID {
	i := n.childIndexFor(key)
	if i < 0 {
		return n.leftChild()
	}
	return n.childAt(i)
}

// leafCellSize computes the stored size of a leaf entry.
func leafCellSize(key, value []byte) int {
	return uvarintLen(uint64(len(key))) + uvarintLen(uint64(len(value))) +
		len(key) + len(value)
}

// innerCellSize computes the stored size of an inner entry.
func innerCellSize(key []byte) int {
	return uvarintLen(uint64(len(key))) + 4 + len(key)
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// insertLeafCell inserts (key, value) at index i, assuming space was
// checked. Existing offsets shift right.
func (n node) insertLeafCell(i int, key, value []byte) {
	size := leafCellSize(key, value)
	off := n.cellStart() - size
	w := off
	w += binary.PutUvarint(n.buf[w:], uint64(len(key)))
	w += binary.PutUvarint(n.buf[w:], uint64(len(value)))
	w += copy(n.buf[w:], key)
	copy(n.buf[w:], value)
	n.setCellStart(off)
	n.shiftOffsets(i, 1)
	n.setOffset(i, off)
	n.setNumKeys(n.numKeys() + 1)
}

// insertInnerCell inserts (key, child) at index i.
func (n node) insertInnerCell(i int, key []byte, child storage.PageID) {
	size := innerCellSize(key)
	off := n.cellStart() - size
	w := off
	w += binary.PutUvarint(n.buf[w:], uint64(len(key)))
	binary.LittleEndian.PutUint32(n.buf[w:w+4], uint32(child))
	w += 4
	copy(n.buf[w:], key)
	n.setCellStart(off)
	n.shiftOffsets(i, 1)
	n.setOffset(i, off)
	n.setNumKeys(n.numKeys() + 1)
}

// removeCell deletes cell i (the cell bytes become garbage until
// compaction).
func (n node) removeCell(i int) {
	n.shiftOffsets(i+1, -1)
	n.setNumKeys(n.numKeys() - 1)
}

// shiftOffsets moves offsets [from, numKeys) by delta positions.
func (n node) shiftOffsets(from, delta int) {
	count := n.numKeys()
	if delta > 0 {
		for i := count - 1; i >= from; i-- {
			n.setOffset(i+delta, n.offset(i))
		}
	} else {
		for i := from; i < count; i++ {
			n.setOffset(i+delta, n.offset(i))
		}
	}
}

// compact rewrites the cell area dropping garbage left by removeCell /
// in-place updates.
func (n node) compact() {
	count := n.numKeys()
	type cell struct {
		off, size int
	}
	cells := make([]cell, count)
	var data []byte
	for i := 0; i < count; i++ {
		cells[i] = cell{n.offset(i), n.cellSize(i)}
		data = append(data, n.buf[cells[i].off:cells[i].off+cells[i].size]...)
	}
	write := len(n.buf)
	read := 0
	for i := 0; i < count; i++ {
		write -= cells[i].size
		copy(n.buf[write:], data[read:read+cells[i].size])
		n.setOffset(i, write)
		read += cells[i].size
	}
	n.setCellStart(write)
}

// fitsAfterCompact reports whether a cell of the given size (plus its
// offset slot) fits, possibly after compaction, and compacts if that is
// needed to make it fit.
func (n node) makeRoom(size int) bool {
	if n.freeBytes() >= size+offsetSize {
		return true
	}
	// Compaction helps when garbage exists.
	if n.cellStart()-n.liveCellBytes() > 0 {
		n.compact()
	}
	return n.freeBytes() >= size+offsetSize
}

// liveCellBytes sums the sizes of live cells.
func (n node) liveCellBytes() int {
	total := 0
	for i := 0; i < n.numKeys(); i++ {
		total += n.cellSize(i)
	}
	return total
}

// validate performs structural checks used by Verify.
func (n node) validate(pageSize int) error {
	if n.buf[0] != leafType && n.buf[0] != innerType {
		return fmt.Errorf("%w: bad type 0x%02X", ErrCorrupt, n.buf[0])
	}
	if n.cellStart() > pageSize {
		return fmt.Errorf("%w: cell start %d beyond page", ErrCorrupt, n.cellStart())
	}
	for i := 0; i < n.numKeys(); i++ {
		off := n.offset(i)
		if off < nodeHeaderSize+n.numKeys()*offsetSize || off+n.cellSize(i) > pageSize {
			return fmt.Errorf("%w: cell %d out of bounds", ErrCorrupt, i)
		}
		if i > 0 && bytes.Compare(n.key(i-1), n.key(i)) >= 0 {
			return fmt.Errorf("%w: keys %d and %d out of order", ErrCorrupt, i-1, i)
		}
	}
	return nil
}
