// The version table: the read half of the MVCC feature.
//
// Every committed batch installs one Version — an immutable (root,
// count) pair. Readers pin the newest version, traverse it without any
// locking, and release it when done. Reclamation is epoch-based: the
// pages a version's successor superseded are attached to that version
// and return to the pager's free list only once no pin at or before it
// remains, so a reader opened before a root swap keeps reading its
// version untouched for as long as it likes.

package btree

import (
	"errors"
	"sync"
	"sync/atomic"

	"famedb/internal/stats"
	"famedb/internal/storage"
)

// ErrSnapshotReleased is returned by reads on a released snapshot.
var ErrSnapshotReleased = errors.New("btree: snapshot already released")

// Version is one committed root. It is immutable after installation
// except for the pin count and the freed set, both guarded by the
// owning table's mutex.
type Version struct {
	seq   uint64
	root  storage.PageID
	count uint64
	// pins counts snapshots reading this version.
	pins int
	// freed holds the pages this version's successor superseded: they
	// are still reachable from this root (and possibly older ones), so
	// they reclaim only when no pin at or before seq remains.
	freed []storage.PageID
}

// Seq returns the version's commit sequence number.
func (v *Version) Seq() uint64 { return v.seq }

// Root returns the version's root page.
func (v *Version) Root() storage.PageID { return v.root }

// VersionTable tracks the committed roots of one copy-on-write tree.
// Its mutex guards only the version list and pin counts — it is taken
// at pin, release and install time, never during page I/O, and it is
// NOT the transaction manager's lock: snapshot reads are invisible to
// the commit path.
type VersionTable struct {
	t  *Tree
	mu sync.Mutex
	// versions holds every unreclaimed version, oldest first; the last
	// entry is current.
	versions []*Version
	// current duplicates the newest version behind an atomic pointer —
	// the single-swap root install the commit path publishes with.
	current atomic.Pointer[Version]
	nextSeq uint64
	// retry holds pages whose free failed; they are picked up again by
	// the next reclamation pass.
	retry     []storage.PageID
	reclaimed uint64
	metrics   *stats.MVCC
}

// NewVersionTable switches t to copy-on-write mutations and seeds the
// table with t's current root as version 0.
func NewVersionTable(t *Tree) *VersionTable {
	t.EnableCopyOnWrite()
	vt := &VersionTable{t: t}
	v0 := &Version{seq: 0, root: t.root, count: t.count}
	vt.versions = []*Version{v0}
	vt.current.Store(v0)
	return vt
}

// SetMetrics attaches the Statistics feature's version-table metrics.
func (vt *VersionTable) SetMetrics(m *stats.MVCC) { vt.metrics = m }

// Install publishes the tree's current root as a new version — the
// single atomic root swap at the end of a commit batch. The caller
// must hold whatever lock serializes tree mutations (the transaction
// manager's); Install itself only touches the version list. Superseded
// pages collected from the tree attach to the previous version and
// reclaim as soon as no reader pins it.
func (vt *VersionTable) Install() error {
	vt.mu.Lock()
	freed := vt.t.TakeSuperseded()
	prev := vt.versions[len(vt.versions)-1]
	if vt.t.root == prev.root && vt.t.count == prev.count && len(freed) == 0 {
		vt.mu.Unlock()
		return nil // nothing committed since the last install
	}
	prev.freed = append(prev.freed, freed...)
	vt.nextSeq++
	v := &Version{seq: vt.nextSeq, root: vt.t.root, count: vt.t.count}
	vt.versions = append(vt.versions, v)
	vt.current.Store(v)
	vt.metrics.Install()
	pages := vt.collectLocked()
	vt.updateGaugesLocked()
	vt.mu.Unlock()
	return vt.freePages(pages)
}

// collectLocked detaches the transition sets of versions no snapshot
// can reach anymore: versions are ordered, so the walk starts at the
// oldest and stops at the first pinned one (or at current, which never
// reclaims). Previously failed frees ride along. The pages are freed
// by the caller OUTSIDE the table mutex, so readers pinning and
// releasing snapshots never wait behind free-list I/O.
func (vt *VersionTable) collectLocked() []storage.PageID {
	pages := vt.retry
	vt.retry = nil
	for len(vt.versions) > 1 && vt.versions[0].pins == 0 {
		v := vt.versions[0]
		pages = append(pages, v.freed...)
		v.freed = nil
		vt.versions = vt.versions[1:]
	}
	return pages
}

// freePages returns collected pages to the pager's free list. Failed
// frees queue for the next reclamation pass; the first error is
// reported but never affects the versions already detached.
func (vt *VersionTable) freePages(pages []storage.PageID) error {
	if len(pages) == 0 {
		return nil
	}
	var firstErr error
	var failed []storage.PageID
	freed := 0
	for _, id := range pages {
		if err := vt.t.pager.Free(id); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			failed = append(failed, id)
			continue
		}
		freed++
	}
	vt.mu.Lock()
	vt.reclaimed += uint64(freed)
	vt.retry = append(vt.retry, failed...)
	vt.mu.Unlock()
	vt.metrics.Reclaimed(freed)
	return firstErr
}

func (vt *VersionTable) updateGaugesLocked() {
	if vt.metrics == nil {
		return
	}
	open := 0
	oldestPinned := vt.versions[len(vt.versions)-1].seq
	for _, v := range vt.versions {
		open += v.pins
		if v.pins > 0 && v.seq < oldestPinned {
			oldestPinned = v.seq
		}
	}
	age := vt.versions[len(vt.versions)-1].seq - oldestPinned
	vt.metrics.Gauges(int64(len(vt.versions)), int64(open), int64(age))
}

// Pin opens a snapshot of the newest committed version. The returned
// snapshot reads without any locking until Release.
func (vt *VersionTable) Pin() *Snapshot {
	vt.mu.Lock()
	v := vt.versions[len(vt.versions)-1]
	v.pins++
	vt.updateGaugesLocked()
	vt.mu.Unlock()
	return &Snapshot{vt: vt, v: v}
}

// release drops one pin and reclaims whatever became unreachable.
func (vt *VersionTable) release(v *Version) {
	vt.mu.Lock()
	v.pins--
	pages := vt.collectLocked()
	vt.updateGaugesLocked()
	vt.mu.Unlock()
	_ = vt.freePages(pages) // failed frees stay queued for the next pass
}

// Current returns the newest committed version without locking — the
// atomic pointer the commit path swaps.
func (vt *VersionTable) Current() *Version { return vt.current.Load() }

// VersionsLive returns how many versions are retained.
func (vt *VersionTable) VersionsLive() int {
	vt.mu.Lock()
	defer vt.mu.Unlock()
	return len(vt.versions)
}

// Reclaimed returns how many superseded pages were returned to the
// free list so far.
func (vt *VersionTable) Reclaimed() uint64 {
	vt.mu.Lock()
	defer vt.mu.Unlock()
	return vt.reclaimed
}

// Snapshot is a pinned, immutable view of the tree at one committed
// version. It is safe for use from the goroutine that pinned it;
// distinct snapshots are safe concurrently. Reads take no locks.
type Snapshot struct {
	vt       *VersionTable
	v        *Version
	released atomic.Bool
}

// Seq returns the pinned version's commit sequence number.
func (s *Snapshot) Seq() uint64 { return s.v.seq }

// Len returns the entry count at the pinned version.
func (s *Snapshot) Len() uint64 { return s.v.count }

// Get reads key at the pinned version.
func (s *Snapshot) Get(key []byte) ([]byte, bool, error) {
	if s.released.Load() {
		return nil, false, ErrSnapshotReleased
	}
	return s.vt.t.getFrom(s.v.root, key)
}

// Scan visits entries with from <= key < to at the pinned version, in
// key order; semantics match Tree.Scan.
func (s *Snapshot) Scan(from, to []byte, fn func(key, value []byte) bool) error {
	if s.released.Load() {
		return ErrSnapshotReleased
	}
	return s.vt.t.scanFrom(s.v.root, from, to, fn)
}

// Release drops the pin; the version's pages become reclaimable once
// no older pin remains. Release is idempotent.
func (s *Snapshot) Release() {
	if s.released.CompareAndSwap(false, true) {
		s.vt.release(s.v)
	}
}
