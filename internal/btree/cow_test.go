package btree

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

func newCowTree(t *testing.T, pageSize int) (*Tree, *VersionTable) {
	t.Helper()
	tr := newTree(t, pageSize)
	return tr, NewVersionTable(tr)
}

func install(t *testing.T, vt *VersionTable) {
	t.Helper()
	if err := vt.Install(); err != nil {
		t.Fatalf("install: %v", err)
	}
}

func TestCowSnapshotIsolation(t *testing.T) {
	tr, vt := newCowTree(t, 256)
	for i := 0; i < 50; i++ {
		mustInsert(t, tr, fmt.Sprintf("key-%03d", i), "v1")
	}
	install(t, vt)
	old := vt.Pin()
	defer old.Release()

	// Overwrite half, delete a quarter, add new keys, then install.
	for i := 0; i < 25; i++ {
		mustInsert(t, tr, fmt.Sprintf("key-%03d", i), "v2")
	}
	for i := 25; i < 37; i++ {
		if _, err := tr.Delete([]byte(fmt.Sprintf("key-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 50; i < 60; i++ {
		mustInsert(t, tr, fmt.Sprintf("key-%03d", i), "v2")
	}
	install(t, vt)

	// The old snapshot still sees exactly its begin-time state.
	if got := old.Len(); got != 50 {
		t.Fatalf("old snapshot Len = %d, want 50", got)
	}
	for i := 0; i < 50; i++ {
		v, ok, err := old.Get([]byte(fmt.Sprintf("key-%03d", i)))
		if err != nil || !ok {
			t.Fatalf("old snapshot key-%03d: ok=%v err=%v", i, ok, err)
		}
		if string(v) != "v1" {
			t.Fatalf("old snapshot key-%03d = %q, want v1", i, v)
		}
	}
	if _, ok, _ := old.Get([]byte("key-055")); ok {
		t.Fatal("old snapshot sees a key inserted after it was pinned")
	}
	var oldKeys int
	if err := old.Scan(nil, nil, func(k, v []byte) bool {
		if string(v) != "v1" {
			t.Fatalf("old snapshot scan saw %q=%q", k, v)
		}
		oldKeys++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if oldKeys != 50 {
		t.Fatalf("old snapshot scan visited %d keys, want 50", oldKeys)
	}

	// A fresh snapshot sees the new state.
	cur := vt.Pin()
	defer cur.Release()
	if got := cur.Len(); got != 48 {
		t.Fatalf("new snapshot Len = %d, want 48", got)
	}
	v, ok, err := cur.Get([]byte("key-010"))
	if err != nil || !ok || string(v) != "v2" {
		t.Fatalf("new snapshot key-010 = %q ok=%v err=%v, want v2", v, ok, err)
	}
	if _, ok, _ := cur.Get([]byte("key-030")); ok {
		t.Fatal("new snapshot sees a deleted key")
	}
	if err := tr.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestCowScanOrderAndBounds(t *testing.T) {
	tr, vt := newCowTree(t, 256)
	for i := 0; i < 200; i++ {
		mustInsert(t, tr, fmt.Sprintf("k%04d", i*2), "v")
	}
	install(t, vt)
	s := vt.Pin()
	defer s.Release()
	var prev []byte
	n := 0
	if err := s.Scan([]byte("k0100"), []byte("k0300"), func(k, v []byte) bool {
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Fatalf("scan out of order: %q after %q", k, prev)
		}
		prev = append(prev[:0], k...)
		n++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Fatalf("bounded scan visited %d keys, want 100", n)
	}
	// Early stop.
	n = 0
	if err := s.Scan(nil, nil, func(k, v []byte) bool {
		n++
		return n < 7
	}); err != nil {
		t.Fatal(err)
	}
	if n != 7 {
		t.Fatalf("early-stop scan visited %d keys, want 7", n)
	}
	// Tree.Scan in cow mode matches the snapshot.
	n = 0
	if err := tr.Scan(nil, nil, func(k, v []byte) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 200 {
		t.Fatalf("tree scan visited %d keys, want 200", n)
	}
}

func TestCowEpochReclamation(t *testing.T) {
	tr, vt := newCowTree(t, 256)
	for i := 0; i < 100; i++ {
		mustInsert(t, tr, fmt.Sprintf("key-%03d", i), "v1")
	}
	install(t, vt)
	s1 := vt.Pin()
	for i := 0; i < 100; i++ {
		mustInsert(t, tr, fmt.Sprintf("key-%03d", i), "v2")
	}
	install(t, vt)
	s2 := vt.Pin()

	// s1 pins the old version: nothing superseded after it may reclaim.
	if got := vt.VersionsLive(); got < 2 {
		t.Fatalf("versions live = %d with an old pin held, want >= 2", got)
	}
	before := vt.Reclaimed()
	s1.Release()
	if got := vt.Reclaimed(); got <= before {
		t.Fatalf("reclaimed %d -> %d after releasing the old pin, want growth", before, got)
	}
	if got := vt.VersionsLive(); got != 2 {
		// s2's version plus current (same version: s2 pinned current).
		t.Logf("versions live after release = %d", got)
	}
	s2.Release()
	if got := vt.VersionsLive(); got != 1 {
		t.Fatalf("versions live = %d after all releases, want 1", got)
	}

	// Reclaimed pages recycle: further mutations reuse the free list
	// rather than growing the file without bound.
	if err := tr.Verify(); err != nil {
		t.Fatalf("verify after reclamation: %v", err)
	}
}

func TestCowPageRecycling(t *testing.T) {
	tr, vt := newCowTree(t, 256)
	for i := 0; i < 50; i++ {
		mustInsert(t, tr, fmt.Sprintf("key-%03d", i), "v0")
	}
	install(t, vt)
	// With no pins, every overwrite round should recycle the pages the
	// previous round superseded, so the reclaim counter tracks the
	// superseded flow.
	for round := 1; round <= 10; round++ {
		for i := 0; i < 50; i++ {
			mustInsert(t, tr, fmt.Sprintf("key-%03d", i), fmt.Sprintf("v%d", round))
		}
		install(t, vt)
	}
	if vt.Reclaimed() == 0 {
		t.Fatal("no pages reclaimed across 10 unpinned overwrite rounds")
	}
	if got := vt.VersionsLive(); got != 1 {
		t.Fatalf("versions live = %d with no pins, want 1", got)
	}
	if err := tr.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestSnapshotReleasedErrors(t *testing.T) {
	tr, vt := newCowTree(t, 256)
	mustInsert(t, tr, "a", "1")
	install(t, vt)
	s := vt.Pin()
	s.Release()
	s.Release() // idempotent
	if _, _, err := s.Get([]byte("a")); !errors.Is(err, ErrSnapshotReleased) {
		t.Fatalf("Get on released snapshot: %v", err)
	}
	if err := s.Scan(nil, nil, func(k, v []byte) bool { return true }); !errors.Is(err, ErrSnapshotReleased) {
		t.Fatalf("Scan on released snapshot: %v", err)
	}
}

func TestCowCompactRoutesThroughVersionTable(t *testing.T) {
	tr, vt := newCowTree(t, 256)
	for i := 0; i < 100; i++ {
		mustInsert(t, tr, fmt.Sprintf("key-%03d", i), "v")
	}
	for i := 0; i < 90; i++ {
		if _, err := tr.Delete([]byte(fmt.Sprintf("key-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	install(t, vt)
	s := vt.Pin()
	if err := tr.Compact(); err != nil {
		t.Fatalf("compact: %v", err)
	}
	install(t, vt)
	// The pre-compaction snapshot still reads its full state.
	if got := s.Len(); got != 10 {
		t.Fatalf("snapshot Len = %d, want 10", got)
	}
	for i := 90; i < 100; i++ {
		if _, ok, err := s.Get([]byte(fmt.Sprintf("key-%03d", i))); !ok || err != nil {
			t.Fatalf("snapshot key-%03d after compact: ok=%v err=%v", i, ok, err)
		}
	}
	s.Release()
	if err := tr.Verify(); err != nil {
		t.Fatalf("verify after compact: %v", err)
	}
}
