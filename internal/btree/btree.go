package btree

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"famedb/internal/stats"
	"famedb/internal/storage"
	"famedb/internal/trace"
)

// Tree is a persistent B+-tree. All keys are unique; Insert overwrites
// (upsert), Update only touches existing keys.
//
// Deletion removes entries but never merges pages (the strategy of
// several production trees): a page whose entries are all deleted stays
// in the tree and is refilled by later inserts into its key range.
// Compact rebuilds the tree densely and reclaims such pages — in the
// product line that is part of the Compact feature.
//
// A Tree is not safe for concurrent use; in concurrent configurations
// the transaction manager (Locking feature) serializes access.
type Tree struct {
	pager    storage.Pager
	metaPage storage.PageID
	root     storage.PageID
	count    uint64
	maxEntry int
	// metrics counts structural events when the Statistics feature is
	// composed; nil otherwise (recording is then a no-op).
	metrics *stats.BTree
	// tracer records tree operations as spans when the Tracing feature
	// is composed; nil otherwise.
	tracer *trace.Tracer
	// cow switches mutations to copy-on-write path-copying (the MVCC
	// feature): dirtied nodes are cloned into fresh pages and the pages
	// they replace accumulate in superseded until the version table
	// collects them with TakeSuperseded.
	cow        bool
	superseded []storage.PageID
	// bufs recycles page buffers across read descents. A point lookup
	// or scan reads height-many nodes and needs each only until it has
	// picked the child (or copied the value out), so the read paths
	// return buffers here instead of leaving one garbage page per level
	// for the collector. Mutating paths keep nodes alive across splits
	// and recursion and never recycle.
	bufs sync.Pool
	// visits counts pages materialized by readNode for the QueryStats
	// feature's EXPLAIN ANALYZE descent accounting. countVisits gates
	// it: the counter stays off (one predictable branch per node read)
	// unless a product with QueryStats enables it, and the gate is
	// atomic because MVCC snapshot readers descend concurrently with
	// the enabling engine.
	visits      atomic.Int64
	countVisits atomic.Bool
}

// EnableVisitCounter switches on per-node-read accounting (feature
// QueryStats). It stays off by default so uninstrumented products pay
// no atomic traffic on descents.
func (t *Tree) EnableVisitCounter() { t.countVisits.Store(true) }

// PageVisits returns the number of tree pages materialized by reads
// since the counter was enabled. Monotonic; readers take deltas.
func (t *Tree) PageVisits() int64 { return t.visits.Load() }

// getBuf returns a page buffer, recycled when one is pooled.
func (t *Tree) getBuf() []byte {
	if v := t.bufs.Get(); v != nil {
		return v.([]byte)
	}
	return make([]byte, t.pager.PageSize())
}

// release returns a node's buffer to the pool. Only read paths call it,
// and only once the node's cells can no longer be referenced.
func (t *Tree) release(n node) {
	if n.buf != nil {
		t.bufs.Put(n.buf) //nolint:staticcheck // page buffers are pointer-free
	}
}

// SetTracer attaches the Tracing feature's span recorder.
func (t *Tree) SetTracer(tr *trace.Tracer) { t.tracer = tr }

// SetMetrics attaches the Statistics feature's tree metrics and reports
// the current height so the gauge is meaningful before the first split.
func (t *Tree) SetMetrics(m *stats.BTree) {
	t.metrics = m
	if m == nil {
		return
	}
	if h, err := t.height(); err == nil {
		m.ObserveHeight(h)
	}
}

// height counts the levels on the leftmost root-to-leaf path (a leaf-only
// tree has height 1).
func (t *Tree) height() (int, error) {
	h := 1
	id := t.root
	for {
		n, err := t.readNode(id)
		if err != nil {
			return 0, err
		}
		if n.isLeaf() {
			t.release(n)
			return h, nil
		}
		h++
		id = n.leftChild()
		t.release(n)
	}
}

const treeMetaMagic = "FAMEBT01"

// maxEntrySize returns the largest key+value byte total permitted for a
// page size: a quarter page minus bookkeeping, so that a split always
// produces two valid nodes.
func maxEntrySize(pageSize int) int {
	return (pageSize-nodeHeaderSize)/4 - 3*offsetSize
}

// Create initializes an empty tree on the pager and returns it together
// with the meta page ID needed to reopen it.
func Create(p storage.Pager) (*Tree, storage.PageID, error) {
	metaID, err := p.Alloc()
	if err != nil {
		return nil, 0, err
	}
	rootID, err := p.Alloc()
	if err != nil {
		return nil, 0, err
	}
	rootBuf := make([]byte, p.PageSize())
	initNode(rootBuf, leafType)
	if err := p.WritePage(rootID, rootBuf); err != nil {
		return nil, 0, err
	}
	t := &Tree{
		pager:    p,
		metaPage: metaID,
		root:     rootID,
		maxEntry: maxEntrySize(p.PageSize()),
	}
	if err := t.writeMeta(); err != nil {
		return nil, 0, err
	}
	return t, metaID, nil
}

// Open loads a tree from its meta page.
func Open(p storage.Pager, metaID storage.PageID) (*Tree, error) {
	buf := make([]byte, p.PageSize())
	if err := p.ReadPage(metaID, buf); err != nil {
		return nil, err
	}
	if string(buf[:8]) != treeMetaMagic {
		return nil, fmt.Errorf("btree: page %d is not a tree meta page", metaID)
	}
	return &Tree{
		pager:    p,
		metaPage: metaID,
		root:     storage.PageID(binary.LittleEndian.Uint32(buf[8:12])),
		count:    binary.LittleEndian.Uint64(buf[12:20]),
		maxEntry: maxEntrySize(p.PageSize()),
	}, nil
}

func (t *Tree) writeMeta() error {
	buf := make([]byte, t.pager.PageSize())
	copy(buf, treeMetaMagic)
	binary.LittleEndian.PutUint32(buf[8:12], uint32(t.root))
	binary.LittleEndian.PutUint64(buf[12:20], t.count)
	return t.pager.WritePage(t.metaPage, buf)
}

// Len returns the number of stored entries.
func (t *Tree) Len() uint64 { return t.count }

// MetaPage returns the meta page ID (persist it to reopen the tree).
func (t *Tree) MetaPage() storage.PageID { return t.metaPage }

func (t *Tree) readNode(id storage.PageID) (node, error) {
	if t.countVisits.Load() {
		t.visits.Add(1)
	}
	buf := t.getBuf()
	if err := t.pager.ReadPage(id, buf); err != nil {
		t.bufs.Put(buf) //nolint:staticcheck
		return node{}, err
	}
	n := node{buf: buf, id: id}
	if n.buf[0] != leafType && n.buf[0] != innerType {
		return node{}, fmt.Errorf("btree: page %d: %w", id, ErrCorrupt)
	}
	return n, nil
}

func (t *Tree) writeNode(n node) error { return t.pager.WritePage(n.id, n.buf) }

// Get returns the value stored under key.
func (t *Tree) Get(key []byte) ([]byte, bool, error) {
	sp := t.tracer.Start(trace.LayerBTree, "get")
	defer sp.End()
	n, err := t.descendToLeaf(key)
	if err != nil {
		sp.Fail(err)
		return nil, false, err
	}
	idx, found := n.search(key)
	if !found {
		t.release(n)
		return nil, false, nil
	}
	val := append([]byte(nil), n.leafValue(idx)...)
	t.release(n)
	return val, true, nil
}

// descendToLeaf walks from the root to the leaf covering key.
func (t *Tree) descendToLeaf(key []byte) (node, error) {
	return t.descendFrom(t.root, key)
}

// descendFrom walks from an arbitrary root (a pinned version's root in
// copy-on-write mode) to the leaf covering key.
func (t *Tree) descendFrom(root storage.PageID, key []byte) (node, error) {
	id := root
	for {
		n, err := t.readNode(id)
		if err != nil {
			return node{}, err
		}
		if n.isLeaf() {
			return n, nil
		}
		id = n.childFor(key)
		if id == storage.InvalidPage {
			return node{}, fmt.Errorf("btree: nil child in page %d: %w", n.id, ErrCorrupt)
		}
		t.release(n)
	}
}

// entry is the in-memory form of a cell used for splits and rebuilds.
type entry struct {
	key, val []byte
	child    storage.PageID
}

func (t *Tree) leafEntries(n node) []entry {
	es := make([]entry, n.numKeys())
	for i := range es {
		es[i] = entry{
			key: append([]byte(nil), n.key(i)...),
			val: append([]byte(nil), n.leafValue(i)...),
		}
	}
	return es
}

func (t *Tree) innerEntries(n node) []entry {
	es := make([]entry, n.numKeys())
	for i := range es {
		es[i] = entry{
			key:   append([]byte(nil), n.key(i)...),
			child: n.childAt(i),
		}
	}
	return es
}

// rewriteLeaf replaces n's cells with es, preserving header chaining.
func rewriteLeaf(n node, es []entry) {
	next := n.nextLeaf()
	initNode(n.buf, leafType)
	n.setNextLeaf(next)
	for i, e := range es {
		n.insertLeafCell(i, e.key, e.val)
	}
}

// rewriteInner replaces n's cells with es and sets the leftmost child.
func rewriteInner(n node, left storage.PageID, es []entry) {
	initNode(n.buf, innerType)
	n.setLeftChild(left)
	for i, e := range es {
		n.insertInnerCell(i, e.key, e.child)
	}
}

// splitResult reports a node split to the parent: sep separates the
// original (left) node from the new right node.
type splitResult struct {
	sep   []byte
	right storage.PageID
}

// ErrEmptyKey rejects empty keys, which the inner-node separator logic
// cannot represent.
var ErrEmptyKey = errors.New("btree: empty key")

// Insert stores value under key, overwriting any existing value.
func (t *Tree) Insert(key, value []byte) error {
	if len(key) == 0 {
		return ErrEmptyKey
	}
	if leafCellSize(key, value) > t.maxEntry {
		return fmt.Errorf("%w: %d > %d bytes", ErrKeyTooLarge, leafCellSize(key, value), t.maxEntry)
	}
	sp := t.tracer.Start(trace.LayerBTree, "insert")
	defer sp.End()
	newRoot, split, added, err := t.insertAt(t.root, key, value)
	if err != nil {
		sp.Fail(err)
		return err
	}
	t.root = newRoot
	if split != nil {
		// Grow a new root.
		newRootID, err := t.pager.Alloc()
		if err != nil {
			return err
		}
		buf := make([]byte, t.pager.PageSize())
		nr := node{buf: buf, id: newRootID}
		rewriteInner(nr, t.root, []entry{{key: split.sep, child: split.right}})
		if err := t.writeNode(nr); err != nil {
			return err
		}
		t.root = newRootID
		if t.metrics != nil {
			t.metrics.RootSplit()
			if h, err := t.height(); err == nil {
				t.metrics.ObserveHeight(h)
			}
		}
	}
	if added {
		t.count++
	}
	return t.writeMeta()
}

// insertAt inserts into the subtree rooted at id and returns the
// subtree's (possibly new) root page: in copy-on-write mode every
// modified node is shadowed into a fresh page, so the parent must
// re-point its child entry. Without copy-on-write the returned ID is
// always id.
func (t *Tree) insertAt(id storage.PageID, key, value []byte) (storage.PageID, *splitResult, bool, error) {
	n, err := t.readNode(id)
	if err != nil {
		return id, nil, false, err
	}
	if n.isLeaf() {
		return t.insertLeaf(n, key, value)
	}
	ci := n.childIndexFor(key)
	childID := n.leftChild()
	if ci >= 0 {
		childID = n.childAt(ci)
	}
	newChild, split, added, err := t.insertAt(childID, key, value)
	if err != nil {
		return id, nil, false, err
	}
	if newChild == childID && split == nil {
		return id, nil, added, nil
	}
	if n, err = t.shadow(n); err != nil {
		return id, nil, false, err
	}
	if newChild != childID {
		if ci < 0 {
			n.setLeftChild(newChild)
		} else {
			n.setChildAt(ci, newChild)
		}
	}
	if split == nil {
		return n.id, nil, added, t.writeNode(n)
	}
	// Insert the separator for the new right child.
	idx, found := n.search(split.sep)
	if found {
		return id, nil, false, fmt.Errorf("btree: separator %q already in inner node %d: %w",
			split.sep, n.id, ErrCorrupt)
	}
	if n.makeRoom(innerCellSize(split.sep)) {
		n.insertInnerCell(idx, split.sep, split.right)
		return n.id, nil, added, t.writeNode(n)
	}
	// Inner split: rebuild both halves from the combined entry list.
	t.metrics.InnerSplit()
	es := t.innerEntries(n)
	es = append(es[:idx:idx], append([]entry{{key: split.sep, child: split.right}}, es[idx:]...)...)
	mid := splitPoint(es, innerCellSize2)
	promoted := es[mid]
	rightID, err := t.pager.Alloc()
	if err != nil {
		return id, nil, false, err
	}
	right := node{buf: make([]byte, t.pager.PageSize()), id: rightID}
	rewriteInner(right, promoted.child, es[mid+1:])
	rewriteInner(n, n.leftChild(), es[:mid])
	if err := t.writeNode(n); err != nil {
		return id, nil, false, err
	}
	if err := t.writeNode(right); err != nil {
		return id, nil, false, err
	}
	return n.id, &splitResult{sep: promoted.key, right: rightID}, added, nil
}

func (t *Tree) insertLeaf(n node, key, value []byte) (storage.PageID, *splitResult, bool, error) {
	idx, found := n.search(key)
	added := !found
	var err error
	if n, err = t.shadow(n); err != nil {
		return n.id, nil, false, err
	}
	if found {
		n.removeCell(idx)
	}
	if n.makeRoom(leafCellSize(key, value)) {
		n.insertLeafCell(idx, key, value)
		return n.id, nil, added, t.writeNode(n)
	}
	// Leaf split.
	t.metrics.LeafSplit()
	es := t.leafEntries(n)
	es = append(es[:idx:idx], append([]entry{{key: key, val: value}}, es[idx:]...)...)
	mid := splitPoint(es, leafCellSize2)
	rightID, err := t.pager.Alloc()
	if err != nil {
		return n.id, nil, false, err
	}
	right := node{buf: make([]byte, t.pager.PageSize()), id: rightID}
	initNode(right.buf, leafType)
	if !t.cow {
		// Copy-on-write trees keep no leaf chain: a shadowed leaf would
		// leave its left sibling's pointer stale, so scans descend from
		// the root instead.
		right.setNextLeaf(n.nextLeaf())
	}
	rewriteLeaf(right, es[mid:])
	rewriteLeaf(n, es[:mid])
	if !t.cow {
		n.setNextLeaf(rightID)
	}
	if err := t.writeNode(n); err != nil {
		return n.id, nil, false, err
	}
	if err := t.writeNode(right); err != nil {
		return n.id, nil, false, err
	}
	sep := append([]byte(nil), es[mid].key...)
	return n.id, &splitResult{sep: sep, right: rightID}, added, nil
}

func leafCellSize2(e entry) int  { return leafCellSize(e.key, e.val) }
func innerCellSize2(e entry) int { return innerCellSize(e.key) }

// splitPoint returns the index m (1 <= m < len(es)) so that the byte
// sizes of es[:m] and es[m:] are as balanced as possible.
func splitPoint(es []entry, size func(entry) int) int {
	total := 0
	for _, e := range es {
		total += size(e)
	}
	acc := 0
	for i, e := range es {
		acc += size(e)
		if acc >= total/2 && i+1 < len(es) {
			return i + 1
		}
	}
	return len(es) - 1
}

// Update replaces the value of an existing key; it reports whether the
// key was present.
func (t *Tree) Update(key, value []byte) (bool, error) {
	_, found, err := t.Get(key)
	if err != nil || !found {
		return false, err
	}
	return true, t.Insert(key, value)
}

// Delete removes key and reports whether it was present.
func (t *Tree) Delete(key []byte) (bool, error) {
	if len(key) == 0 {
		return false, nil
	}
	sp := t.tracer.Start(trace.LayerBTree, "delete")
	defer sp.End()
	newRoot, deleted, err := t.deleteAt(t.root, key)
	if err != nil {
		sp.Fail(err)
		return false, err
	}
	if !deleted {
		return false, nil
	}
	t.root = newRoot
	t.count--
	return true, t.writeMeta()
}

// deleteAt removes key from the subtree rooted at id and returns the
// subtree's (possibly new) root page — fresh when copy-on-write
// shadowed the path, id itself otherwise.
func (t *Tree) deleteAt(id storage.PageID, key []byte) (storage.PageID, bool, error) {
	n, err := t.readNode(id)
	if err != nil {
		return id, false, err
	}
	if n.isLeaf() {
		idx, found := n.search(key)
		if !found {
			return id, false, nil
		}
		if n, err = t.shadow(n); err != nil {
			return id, false, err
		}
		n.removeCell(idx)
		return n.id, true, t.writeNode(n)
	}
	ci := n.childIndexFor(key)
	childID := n.leftChild()
	if ci >= 0 {
		childID = n.childAt(ci)
	}
	if childID == storage.InvalidPage {
		return id, false, fmt.Errorf("btree: nil child in page %d: %w", n.id, ErrCorrupt)
	}
	newChild, deleted, err := t.deleteAt(childID, key)
	if err != nil || !deleted || newChild == childID {
		return id, deleted, err
	}
	if n, err = t.shadow(n); err != nil {
		return id, false, err
	}
	if ci < 0 {
		n.setLeftChild(newChild)
	} else {
		n.setChildAt(ci, newChild)
	}
	return n.id, true, t.writeNode(n)
}

// Scan calls fn for each entry with from <= key < to, in key order.
// A nil from starts at the first key; a nil to runs to the end.
// Returning false from fn stops the scan. Key and value slices are only
// valid during the call.
func (t *Tree) Scan(from, to []byte, fn func(key, value []byte) bool) error {
	sp := t.tracer.Start(trace.LayerBTree, "scan")
	defer sp.End()
	if t.cow {
		// No leaf chain to follow in copy-on-write mode; descend instead.
		return t.scanFrom(t.root, from, to, fn)
	}
	var n node
	var err error
	if from == nil {
		n, err = t.leftmostLeaf()
	} else {
		n, err = t.descendToLeaf(from)
	}
	if err != nil {
		return err
	}
	for {
		for i := 0; i < n.numKeys(); i++ {
			k := n.key(i)
			if from != nil && bytes.Compare(k, from) < 0 {
				continue
			}
			if to != nil && bytes.Compare(k, to) >= 0 {
				t.release(n)
				return nil
			}
			if !fn(k, n.leafValue(i)) {
				t.release(n)
				return nil
			}
		}
		next := n.nextLeaf()
		t.release(n)
		if next == storage.InvalidPage {
			return nil
		}
		n, err = t.readNode(next)
		if err != nil {
			return err
		}
	}
}

func (t *Tree) leftmostLeaf() (node, error) {
	id := t.root
	for {
		n, err := t.readNode(id)
		if err != nil {
			return node{}, err
		}
		if n.isLeaf() {
			return n, nil
		}
		id = n.leftChild()
		t.release(n)
	}
}

// Compact rebuilds the tree densely into fresh pages and frees every
// old page. It is the online part of the product line's Compact
// feature.
func (t *Tree) Compact() error {
	type kv struct{ k, v []byte }
	var all []kv
	if err := t.Scan(nil, nil, func(k, v []byte) bool {
		all = append(all, kv{append([]byte(nil), k...), append([]byte(nil), v...)})
		return true
	}); err != nil {
		return err
	}
	// Collect old pages before rebuilding.
	old, err := t.allPages()
	if err != nil {
		return err
	}
	rootID, err := t.pager.Alloc()
	if err != nil {
		return err
	}
	buf := make([]byte, t.pager.PageSize())
	initNode(buf, leafType)
	if err := t.pager.WritePage(rootID, buf); err != nil {
		return err
	}
	t.root = rootID
	t.count = 0
	if err := t.writeMeta(); err != nil {
		return err
	}
	for _, e := range all {
		if err := t.Insert(e.k, e.v); err != nil {
			return err
		}
	}
	if t.cow {
		// Snapshots may still pin the old tree: its pages reclaim
		// through the version table once the last pin releases.
		t.superseded = append(t.superseded, old...)
	} else {
		for _, id := range old {
			if err := t.pager.Free(id); err != nil {
				return err
			}
		}
	}
	t.metrics.Compaction(len(old))
	return nil
}

// allPages returns every page of the tree except the meta page.
func (t *Tree) allPages() ([]storage.PageID, error) {
	var out []storage.PageID
	var walk func(id storage.PageID) error
	walk = func(id storage.PageID) error {
		n, err := t.readNode(id)
		if err != nil {
			return err
		}
		out = append(out, id)
		if n.isLeaf() {
			return nil
		}
		if err := walk(n.leftChild()); err != nil {
			return err
		}
		for i := 0; i < n.numKeys(); i++ {
			if err := walk(n.childAt(i)); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root); err != nil {
		return nil, err
	}
	return out, nil
}

// Verify checks the tree's structural invariants: node-local ordering,
// separator bounds, leaf-chain ordering, and that the entry count
// matches the meta page. It is the core of the case study's Verify
// feature.
func (t *Tree) Verify() error {
	var leaves []storage.PageID
	var counted uint64
	var check func(id storage.PageID, lo, hi []byte) error
	check = func(id storage.PageID, lo, hi []byte) error {
		n, err := t.readNode(id)
		if err != nil {
			return err
		}
		if err := n.validate(t.pager.PageSize()); err != nil {
			return fmt.Errorf("page %d: %w", id, err)
		}
		for i := 0; i < n.numKeys(); i++ {
			k := n.key(i)
			if lo != nil && bytes.Compare(k, lo) < 0 {
				return fmt.Errorf("page %d key %d below subtree bound: %w", id, i, ErrCorrupt)
			}
			if hi != nil && bytes.Compare(k, hi) >= 0 {
				return fmt.Errorf("page %d key %d above subtree bound: %w", id, i, ErrCorrupt)
			}
		}
		if n.isLeaf() {
			leaves = append(leaves, id)
			counted += uint64(n.numKeys())
			return nil
		}
		// Children: leftmost covers [lo, key0); cell i covers
		// [key_i, key_{i+1}).
		first := hi
		if n.numKeys() > 0 {
			first = n.key(0)
		}
		if err := check(n.leftChild(), lo, first); err != nil {
			return err
		}
		for i := 0; i < n.numKeys(); i++ {
			childHi := hi
			if i+1 < n.numKeys() {
				childHi = n.key(i + 1)
			}
			if err := check(n.childAt(i), n.key(i), childHi); err != nil {
				return err
			}
		}
		return nil
	}
	if err := check(t.root, nil, nil); err != nil {
		return err
	}
	if counted != t.count {
		return fmt.Errorf("count mismatch: meta %d, found %d: %w", t.count, counted, ErrCorrupt)
	}
	if t.cow {
		// Copy-on-write trees keep no leaf chain (a shadowed leaf would
		// leave its left sibling's pointer stale): every leaf must carry
		// an invalid next pointer instead.
		for _, id := range leaves {
			n, err := t.readNode(id)
			if err != nil {
				return err
			}
			if n.nextLeaf() != storage.InvalidPage {
				return fmt.Errorf("page %d: leaf chain link in copy-on-write tree: %w", id, ErrCorrupt)
			}
		}
		return nil
	}
	// The leaf chain must visit exactly the tree's leaves in order.
	n, err := t.leftmostLeaf()
	if err != nil {
		return err
	}
	var chain []storage.PageID
	var prevKey []byte
	for {
		chain = append(chain, n.id)
		for i := 0; i < n.numKeys(); i++ {
			k := n.key(i)
			if prevKey != nil && bytes.Compare(prevKey, k) >= 0 {
				return fmt.Errorf("leaf chain out of order at page %d: %w", n.id, ErrCorrupt)
			}
			prevKey = append(prevKey[:0], k...)
		}
		next := n.nextLeaf()
		if next == storage.InvalidPage {
			break
		}
		n, err = t.readNode(next)
		if err != nil {
			return err
		}
	}
	if len(chain) != len(leaves) {
		return fmt.Errorf("leaf chain has %d pages, tree has %d leaves: %w",
			len(chain), len(leaves), ErrCorrupt)
	}
	return nil
}
