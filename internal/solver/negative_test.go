package solver

import (
	"testing"

	"famedb/internal/core"
)

// negModel has one optional feature with a negative cost — the shape
// nfp.SignedTable produces when a feature measurably improves the
// property being minimized.
func negModel(t *testing.T) *core.Model {
	t.Helper()
	m := core.NewModel("Neg")
	m.Root().AddChild("Fast", core.Optional)
	m.Root().AddChild("Heavy", core.Optional)
	if err := m.Finalize(); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestGreedySelectsNegativeCostFeature(t *testing.T) {
	m := negModel(t)
	tab := table("Neg", 1000, map[string]int{"Fast": -400, "Heavy": 300})
	res, err := Greedy(Request{Model: m, Table: tab})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Config.Has("Fast") {
		t.Error("greedy left a latency-improving (negative-cost) feature out")
	}
	if res.Config.Has("Heavy") {
		t.Error("greedy selected a positive-cost optional feature")
	}
	if res.ROM != 600 {
		t.Errorf("ROM = %d, want 1000-400", res.ROM)
	}
}

func TestGreedyNegativeCostRespectsConstraints(t *testing.T) {
	// Fast excludes Req: selecting the negative-cost feature would
	// conflict with the requirements, so greedy must leave it out.
	m := core.NewModel("NegC")
	m.Root().AddChild("Fast", core.Optional)
	m.Root().AddChild("Req", core.Optional)
	m.AddConstraint(core.Implies(core.Ref("Fast"), core.Not(core.Ref("Req"))))
	if err := m.Finalize(); err != nil {
		t.Fatal(err)
	}
	tab := table("NegC", 100, map[string]int{"Fast": -50, "Req": 10})
	res, err := Greedy(Request{Model: m, Table: tab, Required: []string{"Req"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Config.Has("Fast") {
		t.Error("greedy selected a feature that conflicts with the requirements")
	}
	if !res.Config.Has("Req") {
		t.Error("required feature missing")
	}
}
