// Package solver implements non-functional-constrained product
// derivation (paper Sec. 3.2): finding a valid product that contains
// the stakeholder's required features while satisfying resource
// constraints (ROM budget) and minimizing footprint.
//
// The underlying problem is a constraint-satisfaction/optimization
// problem (NP-complete, as the paper notes). Two derivers are provided:
//
//   - Greedy — the paper's approach: decide features one at a time,
//     cheapest-consistent-choice first. Fast, not always optimal.
//   - BranchAndBound — exact optimum, used as the baseline the greedy
//     result is compared against (experiment E6's optimality gap).
package solver

import (
	"errors"
	"fmt"
	"math/big"
	"sort"

	"famedb/internal/core"
	"famedb/internal/footprint"
)

// Request describes a derivation problem.
type Request struct {
	// Model is the product line.
	Model *core.Model
	// Table provides per-feature ROM costs.
	Table *footprint.Table
	// Required features must be selected (the application's functional
	// requirements, e.g. from internal/analysis).
	Required []string
	// MaxROM is the ROM budget in bytes; 0 means unconstrained.
	MaxROM int
}

// Result is a derived product with its cost.
type Result struct {
	Config *core.Configuration
	ROM    int
	// Explored counts search nodes (1 for greedy), for the cost
	// comparison in E6.
	Explored int
}

// ErrInfeasible is returned when no valid product satisfies the
// constraints.
var ErrInfeasible = errors.New("solver: no product satisfies the constraints")

// cost returns a feature's ROM cost (abstract features cost 0).
func (r *Request) cost(f *core.Feature) int {
	if f.Abstract || f.IsRoot() {
		return 0
	}
	return r.Table.Features[f.Name]
}

// romOf computes a complete configuration's ROM.
func (r *Request) romOf(cfg *core.Configuration) (int, error) {
	var names []string
	for _, f := range cfg.SelectedFeatures() {
		names = append(names, f.Name)
	}
	return r.Table.ROMFine(names)
}

// baseConfig applies the required features and propagation.
func (r *Request) baseConfig() (*core.Configuration, error) {
	cfg := r.Model.NewConfiguration()
	if err := cfg.SelectAll(r.Required...); err != nil {
		return nil, fmt.Errorf("solver: required features conflict: %w", err)
	}
	return cfg, nil
}

// Greedy derives a product by deciding undecided features in ascending
// cost order, deselecting whenever the model allows it and otherwise
// selecting; among the members of a forced choice (alternative groups)
// the cheapest consistent member wins because cheaper members are
// visited first. Unlike BranchAndBound, Greedy tolerates negative costs
// (nfp.SignedTable): a feature measured to improve the property is
// selected rather than deselected.
func Greedy(r Request) (*Result, error) {
	cfg, err := r.baseConfig()
	if err != nil {
		return nil, err
	}
	// Order undecided features by ascending cost so that expensive
	// alternatives are deselected before group pressure forces a pick.
	features := append([]*core.Feature(nil), r.Model.Features()...)
	sort.SliceStable(features, func(i, j int) bool {
		return r.cost(features[i]) < r.cost(features[j])
	})
	// First pass: try to deselect every truly optional feature, most
	// expensive first (so the big savings are locked in). Negative-cost
	// features are the mirror image: selecting them is the saving.
	for i := len(features) - 1; i >= 0; i-- {
		f := features[i]
		if cfg.State(f.Name) != core.Undecided {
			continue
		}
		if r.cost(f) < 0 {
			if err := cfg.Select(f.Name); err != nil {
				// Conflicts with the requirements; fall back to the
				// deselect attempt below.
				_ = cfg.Deselect(f.Name)
			}
			continue
		}
		if err := cfg.Deselect(f.Name); err != nil {
			// Cannot be excluded right now; leave undecided, a later
			// pass settles groups.
			continue
		}
	}
	// Second pass: whatever remains undecided is group-forced; pick the
	// cheapest consistent completion.
	for _, f := range features { // ascending cost
		if cfg.State(f.Name) != core.Undecided {
			continue
		}
		if err := cfg.Select(f.Name); err != nil {
			if err := cfg.Deselect(f.Name); err != nil {
				return nil, fmt.Errorf("solver: greedy wedged on %s: %w", f.Name, err)
			}
		}
	}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("solver: greedy produced an invalid product: %w", err)
	}
	rom, err := r.romOf(cfg)
	if err != nil {
		return nil, err
	}
	if r.MaxROM > 0 && rom > r.MaxROM {
		return nil, fmt.Errorf("%w: greedy product needs %d bytes, budget %d",
			ErrInfeasible, rom, r.MaxROM)
	}
	return &Result{Config: cfg, ROM: rom, Explored: 1}, nil
}

// BranchAndBound derives the ROM-minimal product exactly. The search
// decides features in descending cost order (deselect branch first),
// prunes with the model's SAT propagation and with a lower bound of
// committed-plus-forced cost against the incumbent.
func BranchAndBound(r Request) (*Result, error) {
	base, err := r.baseConfig()
	if err != nil {
		return nil, err
	}
	// Decision order: descending cost. Deciding expensive features
	// first makes the bound effective.
	var order []*core.Feature
	for _, f := range r.Model.Features() {
		order = append(order, f)
	}
	sort.SliceStable(order, func(i, j int) bool {
		return r.cost(order[i]) > r.cost(order[j])
	})

	bestROM := -1
	var bestCfg *core.Configuration
	explored := 0

	// committedCost computes the cost of everything currently selected.
	committedCost := func(cfg *core.Configuration) int {
		total := r.Table.Core
		for _, f := range cfg.SelectedFeatures() {
			total += r.cost(f)
		}
		return total
	}

	var dfs func(cfg *core.Configuration)
	dfs = func(cfg *core.Configuration) {
		explored++
		lower := committedCost(cfg)
		if bestROM >= 0 && lower >= bestROM {
			return // bound
		}
		if r.MaxROM > 0 && lower > r.MaxROM {
			return // budget exceeded already
		}
		// Find the next undecided feature in decision order.
		var next *core.Feature
		for _, f := range order {
			if cfg.State(f.Name) == core.Undecided {
				next = f
				break
			}
		}
		if next == nil {
			if err := cfg.Validate(); err != nil {
				return
			}
			rom, err := r.romOf(cfg)
			if err != nil {
				return
			}
			if bestROM < 0 || rom < bestROM {
				bestROM, bestCfg = rom, cfg.Clone()
			}
			return
		}
		// Deselect branch first: it never increases cost.
		if c := cfg.Clone(); c.Deselect(next.Name) == nil {
			dfs(c)
		}
		if c := cfg.Clone(); c.Select(next.Name) == nil {
			dfs(c)
		}
	}
	dfs(base)

	if bestCfg == nil || (r.MaxROM > 0 && bestROM > r.MaxROM) {
		return nil, fmt.Errorf("%w (budget %d)", ErrInfeasible, r.MaxROM)
	}
	return &Result{Config: bestCfg, ROM: bestROM, Explored: explored}, nil
}

// SpaceSize reports the number of products the search space contains
// after the required features are applied — context for E6's tables.
func SpaceSize(r Request) (*big.Int, error) {
	cfg, err := r.baseConfig()
	if err != nil {
		return nil, err
	}
	return cfg.CountRemaining(), nil
}
