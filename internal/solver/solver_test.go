package solver

import (
	"errors"
	"testing"

	"famedb/internal/core"
	"famedb/internal/footprint"
)

// table builds a synthetic cost table for a model.
func table(model string, core int, costs map[string]int) *footprint.Table {
	return &footprint.Table{Model: model, Core: core, Features: costs}
}

// trapModel is a model where the greedy deriver is provably
// suboptimal: greedily deselecting the most expensive feature first
// forces two companions that together cost more.
//
//	Root
//	  optional A (100)
//	  optional B (60)
//	  optional C (60)
//	constraint !A => (B & C)
//
// Greedy deselects A (the biggest saving) and is forced into B+C = 120;
// the optimum keeps A alone at 100.
func trapModel(t *testing.T) (*core.Model, *footprint.Table) {
	t.Helper()
	m := core.NewModel("Trap")
	m.Root().AddChild("A", core.Optional)
	m.Root().AddChild("B", core.Optional)
	m.Root().AddChild("C", core.Optional)
	m.AddConstraint(core.Implies(core.Not(core.Ref("A")), core.And(core.Ref("B"), core.Ref("C"))))
	if err := m.Finalize(); err != nil {
		t.Fatal(err)
	}
	return m, table("Trap", 0, map[string]int{"A": 100, "B": 60, "C": 60})
}

func TestGreedyFindsAValidProduct(t *testing.T) {
	m, tab := trapModel(t)
	res, err := Greedy(Request{Model: m, Table: tab})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Config.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.Explored != 1 {
		t.Fatalf("greedy explored %d", res.Explored)
	}
}

func TestBranchAndBoundBeatsGreedyOnTrap(t *testing.T) {
	m, tab := trapModel(t)
	g, err := Greedy(Request{Model: m, Table: tab})
	if err != nil {
		t.Fatal(err)
	}
	e, err := BranchAndBound(Request{Model: m, Table: tab})
	if err != nil {
		t.Fatal(err)
	}
	if e.ROM > g.ROM {
		t.Fatalf("exact %d worse than greedy %d", e.ROM, g.ROM)
	}
	if e.ROM != 100 {
		t.Fatalf("exact ROM = %d, want 100 (A alone)", e.ROM)
	}
	if g.ROM != 120 {
		t.Fatalf("greedy ROM = %d, want 120 (the trap)", g.ROM)
	}
}

func TestRequiredFeaturesHonored(t *testing.T) {
	m, tab := trapModel(t)
	res, err := BranchAndBound(Request{Model: m, Table: tab, Required: []string{"B"}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Config.Has("B") {
		t.Fatalf("required selection lost: %s", res.Config)
	}
	// Optimum with B required: drop A, which forces C too: 120.
	if res.ROM != 120 {
		t.Fatalf("ROM = %d", res.ROM)
	}
}

func TestBudgetInfeasible(t *testing.T) {
	m, tab := trapModel(t)
	_, err := BranchAndBound(Request{Model: m, Table: tab, MaxROM: 90})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
	_, err = Greedy(Request{Model: m, Table: tab, Required: []string{"A", "B", "C"}, MaxROM: 200})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("greedy err = %v, want ErrInfeasible", err)
	}
}

func TestConflictingRequirements(t *testing.T) {
	m, tab := trapModel(t)
	m.Root() // model has no conflicting pair; force one via the constraint
	if _, err := Greedy(Request{Model: m, Table: tab, Required: []string{"Nonexistent"}}); err == nil {
		t.Fatal("unknown requirement should fail")
	}
}

func TestExactOnFAMEModel(t *testing.T) {
	m := core.FAMEModel()
	tab, err := footprint.Load("FAME-DBMS")
	if err != nil {
		t.Fatal(err)
	}
	req := Request{Model: m, Table: tab, Required: []string{"Put", "Get"}}
	g, err := Greedy(req)
	if err != nil {
		t.Fatal(err)
	}
	e, err := BranchAndBound(req)
	if err != nil {
		t.Fatal(err)
	}
	if e.ROM > g.ROM {
		t.Fatalf("exact %d > greedy %d", e.ROM, g.ROM)
	}
	// The ROM-minimal KV store avoids the B+-tree, SQL and transactions.
	for _, f := range []string{"SQLEngine", "Transaction", "Optimizer"} {
		if e.Config.Has(f) {
			t.Errorf("minimal product includes %s", f)
		}
	}
	if !e.Config.Has("ListIndex") {
		t.Errorf("minimal product should use the list index: %s", e.Config)
	}
	t.Logf("FAME minimal KV: greedy=%d exact=%d explored=%d", g.ROM, e.ROM, e.Explored)
}

func TestExactRespectsBudgetSweep(t *testing.T) {
	m := core.FAMEModel()
	tab, err := footprint.Load("FAME-DBMS")
	if err != nil {
		t.Fatal(err)
	}
	unconstrained, err := BranchAndBound(Request{Model: m, Table: tab, Required: []string{"Put", "Get", "Remove"}})
	if err != nil {
		t.Fatal(err)
	}
	// A budget exactly at the optimum is feasible; below it is not.
	if _, err := BranchAndBound(Request{
		Model: m, Table: tab, Required: []string{"Put", "Get", "Remove"},
		MaxROM: unconstrained.ROM,
	}); err != nil {
		t.Fatalf("budget at optimum: %v", err)
	}
	if _, err := BranchAndBound(Request{
		Model: m, Table: tab, Required: []string{"Put", "Get", "Remove"},
		MaxROM: unconstrained.ROM - 1,
	}); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("budget below optimum = %v, want ErrInfeasible", err)
	}
}

func TestSpaceSize(t *testing.T) {
	m, tab := trapModel(t)
	n, err := SpaceSize(Request{Model: m, Table: tab})
	if err != nil {
		t.Fatal(err)
	}
	// Products: A on with B,C free (4) + A off forcing B,C (1) = 5.
	if n.Int64() != 5 {
		t.Fatalf("space = %v, want 5", n)
	}
}

func TestGreedyNeverWorseThanBudgetWhenExactFits(t *testing.T) {
	// Greedy may exceed a budget the exact solver meets; make sure the
	// error reporting distinguishes that from model infeasibility.
	m, tab := trapModel(t)
	e, err := BranchAndBound(Request{Model: m, Table: tab, MaxROM: 110})
	if err != nil {
		t.Fatal(err)
	}
	if e.ROM != 100 {
		t.Fatalf("exact ROM = %d", e.ROM)
	}
	// Greedy walks into the trap and reports infeasible under this
	// budget — exactly the behavior E6 quantifies.
	if _, err := Greedy(Request{Model: m, Table: tab, MaxROM: 110}); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("greedy = %v", err)
	}
}
