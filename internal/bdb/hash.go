// Package bdb is the Berkeley DB case study of the paper (Sec. 2.2):
// an embedded database engine whose functionality is decomposed into
// the 24 optional features of core.BDBModel. An Env can be instantiated
// in two modes reproducing Figure 1's comparison: ModeComposed wires
// only the selected feature modules ("FeatureC++"), ModeC keeps every
// module linked behind runtime flag checks ("C with preprocessor
// options compiled in").
package bdb

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"

	"famedb/internal/storage"
)

// HashIndex is the Hash access method: bucket-chained hashing over
// slotted pages. Lookups cost one page chain walk; scans are unordered.
type HashIndex struct {
	pager   storage.Pager
	meta    storage.PageID
	buckets []storage.PageID
	count   uint64
}

const (
	hashMagic    = "FAMEHI01"
	hashPageType = 0x31
)

// hashBucketCount picks a directory size that fits the meta page.
func hashBucketCount(pageSize int) int {
	max := (pageSize - 8 - 8) / 4 // magic + count, 4 bytes per bucket
	n := 64
	if n > max {
		n = max
	}
	return n
}

// CreateHash creates an empty hash index; the returned meta page
// reopens it.
func CreateHash(p storage.Pager) (*HashIndex, storage.PageID, error) {
	meta, err := p.Alloc()
	if err != nil {
		return nil, 0, err
	}
	h := &HashIndex{
		pager:   p,
		meta:    meta,
		buckets: make([]storage.PageID, hashBucketCount(p.PageSize())),
	}
	if err := h.writeMeta(); err != nil {
		return nil, 0, err
	}
	return h, meta, nil
}

// OpenHash opens a hash index from its meta page.
func OpenHash(p storage.Pager, meta storage.PageID) (*HashIndex, error) {
	buf := make([]byte, p.PageSize())
	if err := p.ReadPage(meta, buf); err != nil {
		return nil, err
	}
	if string(buf[:8]) != hashMagic {
		return nil, fmt.Errorf("bdb: page %d is not a hash meta page", meta)
	}
	h := &HashIndex{
		pager:   p,
		meta:    meta,
		count:   binary.LittleEndian.Uint64(buf[8:16]),
		buckets: make([]storage.PageID, hashBucketCount(p.PageSize())),
	}
	for i := range h.buckets {
		h.buckets[i] = storage.PageID(binary.LittleEndian.Uint32(buf[16+4*i:]))
	}
	return h, nil
}

func (h *HashIndex) writeMeta() error {
	buf := make([]byte, h.pager.PageSize())
	copy(buf, hashMagic)
	binary.LittleEndian.PutUint64(buf[8:16], h.count)
	for i, b := range h.buckets {
		binary.LittleEndian.PutUint32(buf[16+4*i:], uint32(b))
	}
	return h.pager.WritePage(h.meta, buf)
}

func (h *HashIndex) bucketFor(key []byte) int {
	f := fnv.New32a()
	f.Write(key)
	return int(f.Sum32()) % len(h.buckets)
}

func encodeHashEntry(key, value []byte) []byte {
	out := binary.AppendUvarint(nil, uint64(len(key)))
	out = append(out, key...)
	return append(out, value...)
}

func decodeHashEntry(rec []byte) (key, value []byte, err error) {
	klen, sz := binary.Uvarint(rec)
	if sz <= 0 || uint64(len(rec)-sz) < klen {
		return nil, nil, errors.New("bdb: corrupt hash entry")
	}
	return rec[sz : sz+int(klen)], rec[sz+int(klen):], nil
}

// find locates key in its bucket chain: page, slot, value.
func (h *HashIndex) find(key []byte) (storage.PageID, int, []byte, error) {
	id := h.buckets[h.bucketFor(key)]
	buf := make([]byte, h.pager.PageSize())
	for id != storage.InvalidPage {
		if err := h.pager.ReadPage(id, buf); err != nil {
			return 0, 0, nil, err
		}
		sp := storage.AsSlotted(buf)
		foundSlot := -1
		var foundVal []byte
		sp.Records(func(slot int, rec []byte) bool {
			k, v, derr := decodeHashEntry(rec)
			if derr == nil && bytes.Equal(k, key) {
				foundSlot = slot
				foundVal = append([]byte(nil), v...)
				return false
			}
			return true
		})
		if foundSlot >= 0 {
			return id, foundSlot, foundVal, nil
		}
		id = sp.Next()
	}
	return storage.InvalidPage, 0, nil, nil
}

// Name implements index.Index.
func (h *HashIndex) Name() string { return "Hash" }

// Get implements index.Index.
func (h *HashIndex) Get(key []byte) ([]byte, bool, error) {
	page, _, v, err := h.find(key)
	if err != nil {
		return nil, false, err
	}
	return v, page != storage.InvalidPage, nil
}

// Insert implements index.Index (upsert).
func (h *HashIndex) Insert(key, value []byte) error {
	rec := encodeHashEntry(key, value)
	page, slot, _, err := h.find(key)
	if err != nil {
		return err
	}
	buf := make([]byte, h.pager.PageSize())
	if page != storage.InvalidPage {
		// Replace in place (relocating within the chain if needed).
		if err := h.pager.ReadPage(page, buf); err != nil {
			return err
		}
		sp := storage.AsSlotted(buf)
		if err := sp.Update(slot, rec); err == nil {
			return h.pager.WritePage(page, buf)
		} else if !errors.Is(err, storage.ErrPageFull) {
			return err
		}
		if err := sp.Delete(slot); err != nil {
			return err
		}
		if err := h.pager.WritePage(page, buf); err != nil {
			return err
		}
		h.count-- // re-inserted below
	}
	// Insert into the first chain page with room, extending the chain
	// if none.
	b := h.bucketFor(key)
	id := h.buckets[b]
	prev := storage.InvalidPage
	for id != storage.InvalidPage {
		if err := h.pager.ReadPage(id, buf); err != nil {
			return err
		}
		sp := storage.AsSlotted(buf)
		if _, err := sp.Insert(rec); err == nil {
			if err := h.pager.WritePage(id, buf); err != nil {
				return err
			}
			h.count++
			return h.writeMeta()
		} else if !errors.Is(err, storage.ErrPageFull) {
			return err
		}
		prev = id
		id = sp.Next()
	}
	newID, err := h.pager.Alloc()
	if err != nil {
		return err
	}
	np := storage.InitSlotted(buf, hashPageType)
	if _, err := np.Insert(rec); err != nil {
		return err
	}
	if err := h.pager.WritePage(newID, buf); err != nil {
		return err
	}
	if prev == storage.InvalidPage {
		h.buckets[b] = newID
	} else {
		link := make([]byte, h.pager.PageSize())
		if err := h.pager.ReadPage(prev, link); err != nil {
			return err
		}
		storage.AsSlotted(link).SetNext(newID)
		if err := h.pager.WritePage(prev, link); err != nil {
			return err
		}
	}
	h.count++
	return h.writeMeta()
}

// Delete implements index.Index.
func (h *HashIndex) Delete(key []byte) (bool, error) {
	page, slot, _, err := h.find(key)
	if err != nil || page == storage.InvalidPage {
		return false, err
	}
	buf := make([]byte, h.pager.PageSize())
	if err := h.pager.ReadPage(page, buf); err != nil {
		return false, err
	}
	if err := storage.AsSlotted(buf).Delete(slot); err != nil {
		return false, err
	}
	if err := h.pager.WritePage(page, buf); err != nil {
		return false, err
	}
	h.count--
	return true, h.writeMeta()
}

// Update implements index.Index.
func (h *HashIndex) Update(key, value []byte) (bool, error) {
	page, _, _, err := h.find(key)
	if err != nil || page == storage.InvalidPage {
		return false, err
	}
	return true, h.Insert(key, value)
}

// Scan implements index.Index. Visit order is bucket order (unordered
// by key); the [from, to) filter still applies.
func (h *HashIndex) Scan(from, to []byte, fn func(key, value []byte) bool) error {
	buf := make([]byte, h.pager.PageSize())
	for _, head := range h.buckets {
		id := head
		for id != storage.InvalidPage {
			if err := h.pager.ReadPage(id, buf); err != nil {
				return err
			}
			sp := storage.AsSlotted(buf)
			stop := false
			sp.Records(func(slot int, rec []byte) bool {
				k, v, derr := decodeHashEntry(rec)
				if derr != nil {
					return true
				}
				if from != nil && bytes.Compare(k, from) < 0 {
					return true
				}
				if to != nil && bytes.Compare(k, to) >= 0 {
					return true
				}
				if !fn(k, v) {
					stop = true
					return false
				}
				return true
			})
			if stop {
				return nil
			}
			id = sp.Next()
		}
	}
	return nil
}

// Len implements index.Index.
func (h *HashIndex) Len() (uint64, error) { return h.count, nil }

// VerifyChains checks every bucket chain page is well-typed and every
// entry hashes into its bucket — the hash part of the Verify feature.
func (h *HashIndex) VerifyChains() error {
	buf := make([]byte, h.pager.PageSize())
	var counted uint64
	for b, head := range h.buckets {
		id := head
		for id != storage.InvalidPage {
			if err := h.pager.ReadPage(id, buf); err != nil {
				return err
			}
			sp := storage.AsSlotted(buf)
			if sp.Type() != hashPageType {
				return fmt.Errorf("bdb: bucket %d chain page %d has type 0x%02X", b, id, sp.Type())
			}
			var verr error
			sp.Records(func(slot int, rec []byte) bool {
				k, _, derr := decodeHashEntry(rec)
				if derr != nil {
					verr = derr
					return false
				}
				if h.bucketFor(k) != b {
					verr = fmt.Errorf("bdb: key %q in wrong bucket %d", k, b)
					return false
				}
				counted++
				return true
			})
			if verr != nil {
				return verr
			}
			id = sp.Next()
		}
	}
	if counted != h.count {
		return fmt.Errorf("bdb: hash count mismatch: meta %d, found %d", h.count, counted)
	}
	return nil
}
