package bdb

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"famedb/internal/osal"
	"famedb/internal/storage"
)

func newRawPager(t *testing.T) storage.Pager {
	t.Helper()
	f, err := osal.NewMemFS().Create("p.db")
	if err != nil {
		t.Fatal(err)
	}
	pf, err := storage.CreatePageFile(f, 512)
	if err != nil {
		t.Fatal(err)
	}
	return pf
}

// TestHashModelEquivalence drives the hash index against a map model
// with random operations — the central correctness property of the
// Hash access method.
func TestHashModelEquivalence(t *testing.T) {
	h, _, err := CreateHash(newRawPager(t))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	model := map[string]string{}
	for op := 0; op < 3000; op++ {
		k := fmt.Sprintf("key%03d", rng.Intn(400))
		switch rng.Intn(5) {
		case 0, 1, 2: // insert (weighted: chains must grow)
			v := fmt.Sprintf("%0*d", 1+rng.Intn(40), rng.Intn(1000))
			if err := h.Insert([]byte(k), []byte(v)); err != nil {
				t.Fatalf("op %d insert: %v", op, err)
			}
			model[k] = v
		case 3: // delete
			_, inModel := model[k]
			ok, err := h.Delete([]byte(k))
			if err != nil || ok != inModel {
				t.Fatalf("op %d delete(%s) = %v,%v; model %v", op, k, ok, err, inModel)
			}
			delete(model, k)
		case 4: // get
			v, found, err := h.Get([]byte(k))
			if err != nil {
				t.Fatal(err)
			}
			want, inModel := model[k]
			if found != inModel || (found && string(v) != want) {
				t.Fatalf("op %d get(%s) = %q,%v; model %q,%v", op, k, v, found, want, inModel)
			}
		}
	}
	if n, _ := h.Len(); int(n) != len(model) {
		t.Fatalf("Len = %d, model %d", n, len(model))
	}
	if err := h.VerifyChains(); err != nil {
		t.Fatalf("VerifyChains: %v", err)
	}
	// Scan sees exactly the model.
	seen := map[string]string{}
	h.Scan(nil, nil, func(k, v []byte) bool {
		seen[string(k)] = string(v)
		return true
	})
	if len(seen) != len(model) {
		t.Fatalf("scan %d entries, model %d", len(seen), len(model))
	}
	for k, v := range model {
		if seen[k] != v {
			t.Fatalf("scan[%s] = %q, want %q", k, seen[k], v)
		}
	}
}

// TestHashReopenEquivalence verifies persistence of the hash directory
// and chains.
func TestHashReopenEquivalence(t *testing.T) {
	p := newRawPager(t)
	h, meta, _ := CreateHash(p)
	want := map[string]string{}
	for i := 0; i < 200; i++ {
		k, v := fmt.Sprintf("k%03d", i), fmt.Sprintf("v%d", i*3)
		h.Insert([]byte(k), []byte(v))
		want[k] = v
	}
	h2, err := OpenHash(p, meta)
	if err != nil {
		t.Fatal(err)
	}
	if err := h2.VerifyChains(); err != nil {
		t.Fatal(err)
	}
	for k, v := range want {
		got, found, _ := h2.Get([]byte(k))
		if !found || string(got) != v {
			t.Fatalf("reopened Get(%s) = %q,%v", k, got, found)
		}
	}
	if _, err := OpenHash(p, 2); err == nil {
		t.Fatal("OpenHash on a non-meta page should fail")
	}
}

// TestQueueModelEquivalence drives the queue against a slice model: the
// FIFO property under random interleavings of enqueue/dequeue.
func TestQueueModelEquivalence(t *testing.T) {
	q, _, err := CreateQueue(newRawPager(t))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	var model [][]byte
	seq := uint64(0)
	for op := 0; op < 4000; op++ {
		if rng.Intn(2) == 0 {
			rec := make([]byte, 1+rng.Intn(60))
			rng.Read(rec)
			got, err := q.Enqueue(rec)
			if err != nil {
				t.Fatalf("op %d enqueue: %v", op, err)
			}
			seq++
			if got != seq {
				t.Fatalf("op %d: seq %d, want %d", op, got, seq)
			}
			model = append(model, append([]byte(nil), rec...))
		} else {
			rec, ok, err := q.Dequeue()
			if err != nil {
				t.Fatalf("op %d dequeue: %v", op, err)
			}
			if ok != (len(model) > 0) {
				t.Fatalf("op %d: dequeue ok=%v, model %d", op, ok, len(model))
			}
			if ok {
				if !bytes.Equal(rec, model[0]) {
					t.Fatalf("op %d: FIFO violated: %x vs %x", op, rec, model[0])
				}
				model = model[1:]
			}
		}
		if q.Len() != uint64(len(model)) {
			t.Fatalf("op %d: Len %d, model %d", op, q.Len(), len(model))
		}
	}
	if err := q.verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	// Peek matches the model head.
	if len(model) > 0 {
		rec, ok, _ := q.Peek()
		if !ok || !bytes.Equal(rec, model[0]) {
			t.Fatal("peek mismatch")
		}
	}
}

// TestQueueReopen verifies the chain and counters survive reopen.
func TestQueueReopen(t *testing.T) {
	p := newRawPager(t)
	q, meta, _ := CreateQueue(p)
	for i := 0; i < 50; i++ {
		q.Enqueue([]byte(fmt.Sprintf("m%02d", i)))
	}
	for i := 0; i < 20; i++ {
		q.Dequeue()
	}
	q2, err := OpenQueue(p, meta)
	if err != nil {
		t.Fatal(err)
	}
	if q2.Len() != 30 {
		t.Fatalf("reopened Len = %d", q2.Len())
	}
	rec, ok, _ := q2.Dequeue()
	if !ok || string(rec) != "m20" {
		t.Fatalf("reopened Dequeue = %q, %v", rec, ok)
	}
	// Sequence numbers continue.
	seq, _ := q2.Enqueue([]byte("new"))
	if seq != 51 {
		t.Fatalf("seq after reopen = %d", seq)
	}
}

// TestCryptoPagerRoundTripQuick: decrypt(encrypt(page)) == page for
// random pages and page IDs, and ciphertext differs from plaintext.
func TestCryptoPagerRoundTripQuick(t *testing.T) {
	f := func(seed int64, passphrase string) bool {
		if passphrase == "" {
			passphrase = "p"
		}
		rng := rand.New(rand.NewSource(seed))
		base := newRawPagerQuick()
		cp, err := NewCryptoPager(base, []byte(passphrase))
		if err != nil {
			return false
		}
		id, err := cp.Alloc()
		if err != nil {
			return false
		}
		page := make([]byte, cp.PageSize())
		rng.Read(page)
		if err := cp.WritePage(id, page); err != nil {
			return false
		}
		// Raw bytes differ (encrypted)...
		raw := make([]byte, cp.PageSize())
		if err := base.ReadPage(id, raw); err != nil {
			return false
		}
		if bytes.Equal(raw, page) {
			return false
		}
		// ...and decrypt back exactly.
		got := make([]byte, cp.PageSize())
		if err := cp.ReadPage(id, got); err != nil {
			return false
		}
		return bytes.Equal(got, page)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func newRawPagerQuick() storage.Pager {
	f, _ := osal.NewMemFS().Create("q.db")
	pf, _ := storage.CreatePageFile(f, 512)
	return pf
}

// TestCryptoPagerKeysDiffer: the same plaintext under different
// passphrases yields different ciphertext.
func TestCryptoPagerKeysDiffer(t *testing.T) {
	page := bytes.Repeat([]byte("secret page content "), 26)[:512]
	read := func(pass string) []byte {
		base := newRawPagerQuick()
		cp, _ := NewCryptoPager(base, []byte(pass))
		id, _ := cp.Alloc()
		cp.WritePage(id, page)
		raw := make([]byte, 512)
		base.ReadPage(id, raw)
		return raw
	}
	if bytes.Equal(read("alpha"), read("beta")) {
		t.Fatal("different passphrases produced identical ciphertext")
	}
	if _, err := NewCryptoPager(newRawPagerQuick(), nil); err == nil {
		t.Fatal("empty passphrase should fail")
	}
}

// TestCryptoPagerPerPageStreams: identical plaintext on different pages
// encrypts differently (per-page nonce).
func TestCryptoPagerPerPageStreams(t *testing.T) {
	base := newRawPagerQuick()
	cp, _ := NewCryptoPager(base, []byte("k"))
	p1, _ := cp.Alloc()
	p2, _ := cp.Alloc()
	page := bytes.Repeat([]byte("x"), 512)
	cp.WritePage(p1, page)
	cp.WritePage(p2, page)
	r1, r2 := make([]byte, 512), make([]byte, 512)
	base.ReadPage(p1, r1)
	base.ReadPage(p2, r2)
	if bytes.Equal(r1, r2) {
		t.Fatal("same key stream reused across pages")
	}
}
