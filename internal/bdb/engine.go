package bdb

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"famedb/internal/access"
	"famedb/internal/buffer"
	"famedb/internal/core"
	"famedb/internal/index"
	"famedb/internal/osal"
	"famedb/internal/storage"
	"famedb/internal/txn"
)

// Method selects the access method of a DB (the or-group of the feature
// model: every product has at least one).
type Method byte

// The four access methods of the case study.
const (
	MethodBtree Method = 'B'
	MethodHash  Method = 'H'
	MethodRecno Method = 'R'
	MethodQueue Method = 'Q'
)

// String returns the feature name of the method.
func (m Method) String() string {
	switch m {
	case MethodBtree:
		return "Btree"
	case MethodHash:
		return "Hash"
	case MethodRecno:
		return "Recno"
	case MethodQueue:
		return "Queue"
	default:
		return fmt.Sprintf("Method(%c)", byte(m))
	}
}

// ErrFeature is wrapped by every "feature not in this product" error.
var ErrFeature = errors.New("bdb: feature not in this product")

// Error codes for Strerror (the ErrorMessages feature).
const (
	CodeOK = iota
	CodeNotFound
	CodeFeature
	CodeExists
	CodeCorrupt
	CodeIO
)

var errorTexts = map[int]string{
	CodeOK:       "success",
	CodeNotFound: "key or database not found",
	CodeFeature:  "operation requires a feature that was not composed into this product",
	CodeExists:   "database already exists",
	CodeCorrupt:  "on-disk structure failed verification",
	CodeIO:       "input/output error on the storage device",
}

// Event is an engine notification (the Events feature).
type Event struct {
	Kind   string // "open", "create-db", "checkpoint", "backup", ...
	Detail string
}

// Config assembles a case-study engine instance.
type Config struct {
	// FS is the backing filesystem (required).
	FS osal.FS
	// Mode selects Figure 1's implementation-technology axis.
	Mode core.BDBMode
	// Features lists the selected optional features (names from
	// core.BDBModel). The set is completed through the feature model,
	// so required features (e.g. Logging under Transactions) are pulled
	// in automatically.
	Features []string
	// PageSize defaults to 4096.
	PageSize int
	// CachePages and CachePolicy ("LRU"/"LFU") are honored only with
	// the CacheTuning feature; otherwise the engine uses 32 LRU pages.
	CachePages  int
	CachePolicy string
	// Passphrase enables page encryption (required with Crypto).
	Passphrase []byte
	// GroupCommitBatch tunes the Logging journal's group commit; 0
	// means force-commit on every operation.
	GroupCommitBatch int
	// OnEvent receives notifications (Events feature).
	OnEvent func(Event)
}

// Stats are the Statistics feature's counters.
type Stats struct {
	Puts, Gets, Deletes int64
	CacheHits           int64
	CacheMisses         int64
	LogSyncs            int64
}

// Env is an engine instance derived from a feature configuration.
type Env struct {
	cfg      Config
	features map[string]bool
	// Product is the completed, validated configuration this instance
	// was derived from.
	Product *core.Configuration

	pf      *storage.PageFile
	pager   storage.Pager // full stack: pagefile [+crypto] + cache
	cache   *buffer.Manager
	catalog *index.List
	mgr     *txn.Manager // nil without Logging
	repl    *replHandle
	mu      sync.RWMutex
	// catMu serializes catalog pages and the dbs map; the heap-backed
	// catalog uses a shared scratch buffer and must not be read
	// concurrently. Order: mu before catMu.
	catMu sync.Mutex
	stats Stats
	dbs   map[string]*DB
	// methods maps db name -> access method without needing mu; the
	// replica router reads it re-entrantly from inside commits.
	methods sync.Map
	closed  bool
}

// replHandle defers the repl import decision to runtime wiring.
type replHandle struct {
	ship func(remove bool, key, value []byte) error
}

const (
	dataFileName = "data.db"
	logFileName  = "journal.log"
	seqPrefix    = "\x00seq\x00"
	dbPrefix     = "\x00db\x00"
)

// Open derives an engine instance: the feature list is validated and
// completed against core.BDBModel, then exactly the selected modules
// are wired (ModeComposed) or all modules are wired behind runtime
// flags (ModeC).
func Open(cfg Config) (*Env, error) {
	if cfg.FS == nil {
		return nil, errors.New("bdb: Config.FS is required")
	}
	if cfg.PageSize == 0 {
		cfg.PageSize = 4096
	}
	model := core.BDBModel()
	product, err := model.Product(cfg.Features...)
	if err != nil {
		return nil, fmt.Errorf("bdb: invalid feature selection: %w", err)
	}
	e := &Env{cfg: cfg, Product: product, features: map[string]bool{}, dbs: map[string]*DB{}}
	for _, f := range product.SelectedFeatures() {
		e.features[f.Name] = true
	}

	// Storage stack: page file, optional encryption, cache.
	existing := true
	f, err := cfg.FS.Open(dataFileName)
	if errors.Is(err, osal.ErrNotExist) {
		existing = false
		f, err = cfg.FS.Create(dataFileName)
	}
	if err != nil {
		return nil, err
	}
	if existing {
		e.pf, err = storage.OpenPageFile(f)
	} else {
		e.pf, err = storage.CreatePageFile(f, cfg.PageSize)
	}
	if err != nil {
		return nil, err
	}
	var base storage.Pager = e.pf
	if e.has("Crypto") {
		cp, err := NewCryptoPager(base, cfg.Passphrase)
		if err != nil {
			return nil, err
		}
		base = cp
	}
	capacity, policy := 32, buffer.Policy(buffer.NewLRU())
	if e.has("CacheTuning") {
		if cfg.CachePages > 0 {
			capacity = cfg.CachePages
		}
		if cfg.CachePolicy == "LFU" {
			policy = buffer.NewLFU()
		}
	}
	e.cache, err = buffer.NewManager(base, capacity, policy, buffer.NewDynamicAllocator(cfg.PageSize))
	if err != nil {
		return nil, err
	}
	e.pager = e.cache

	// Catalog: a heap-backed list (core functionality) at page 1.
	if existing {
		e.catalog, err = index.OpenList(e.pager, 1)
	} else {
		var head storage.PageID
		e.catalog, head, err = index.CreateList(e.pager)
		if err == nil && head != 1 {
			err = fmt.Errorf("bdb: catalog landed on page %d", head)
		}
	}
	if err != nil {
		return nil, err
	}

	// Journal (Logging feature): a transaction manager over a router
	// index that dispatches prefixed keys to the owning DB, so one log
	// covers all databases and recovery spans them.
	if e.has("Logging") {
		var proto txn.Protocol = txn.Force{}
		if cfg.GroupCommitBatch > 1 {
			proto = &txn.Group{BatchSize: cfg.GroupCommitBatch}
		}
		opts := txn.Options{
			Protocol:  proto,
			Locking:   e.has("Locking"),
			Recovery:  e.has("Recovery"),
			SyncStore: e.pager.Sync,
			// Replication hangs off the commit apply path; ship is a
			// no-op until a replica is attached. The feature model
			// guarantees Logging under Replication, so every mutation
			// passes through here.
			OnApply: func(remove bool, key, value []byte) error {
				if e.repl != nil {
					return e.repl.ship(remove, key, value)
				}
				return nil
			},
		}
		store := access.New(&routerIndex{env: e}, access.AllOps())
		e.mgr, err = txn.Open(cfg.FS, logFileName, store, opts)
		if err != nil {
			return nil, err
		}
	}
	e.emit(Event{Kind: "open", Detail: fmt.Sprintf("mode=%s features=%d", cfg.Mode, len(cfg.Features))})
	return e, nil
}

// has reports whether a feature is part of this product. In ModeC every
// module is present and consults the flag map at run time; in
// ModeComposed the map was materialized at composition time and
// unselected modules are simply not wired (their entry is absent).
func (e *Env) has(feature string) bool { return e.features[feature] }

func (e *Env) emit(ev Event) {
	if e.has("Events") && e.cfg.OnEvent != nil {
		e.cfg.OnEvent(ev)
	}
}

// featureErr builds the error for calling an absent feature.
func featureErr(name string) error {
	return fmt.Errorf("%s: %w", name, ErrFeature)
}

// Strerror renders an error code. With the ErrorMessages feature the
// full text table is included in the product; without it only the
// numeric code is available.
func (e *Env) Strerror(code int) string {
	if e.has("ErrorMessages") {
		if s, ok := errorTexts[code]; ok {
			return s
		}
	}
	return fmt.Sprintf("bdb: error %d", code)
}

// Stats returns the Statistics feature's counters.
func (e *Env) Stats() (Stats, error) {
	if !e.has("Statistics") {
		return Stats{}, featureErr("Statistics")
	}
	s := Stats{
		Puts:    atomic.LoadInt64(&e.stats.Puts),
		Gets:    atomic.LoadInt64(&e.stats.Gets),
		Deletes: atomic.LoadInt64(&e.stats.Deletes),
	}
	cs := e.cache.Stats()
	s.CacheHits = cs.Hits
	s.CacheMisses = cs.Misses
	if e.mgr != nil {
		s.LogSyncs = e.mgr.LogSyncs()
	}
	return s, nil
}

// --- catalog records ---

func catalogVal(method Method, meta storage.PageID) []byte {
	var v [5]byte
	v[0] = byte(method)
	binary.LittleEndian.PutUint32(v[1:], uint32(meta))
	return v[:]
}

// CreateDB creates a database with the given access method.
func (e *Env) CreateDB(name string, method Method) (*DB, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.has(method.String()) {
		return nil, featureErr(method.String())
	}
	e.catMu.Lock()
	defer e.catMu.Unlock()
	ckey := []byte(dbPrefix + name)
	if _, found, err := e.catalog.Get(ckey); err != nil {
		return nil, err
	} else if found {
		return nil, fmt.Errorf("bdb: database %q already exists", name)
	}
	var meta storage.PageID
	var err error
	switch method {
	case MethodBtree, MethodRecno:
		_, meta, err = index.CreateBTree(e.pager, index.AllBTreeOps())
	case MethodHash:
		_, meta, err = CreateHash(e.pager)
	case MethodQueue:
		_, meta, err = CreateQueue(e.pager)
	default:
		return nil, fmt.Errorf("bdb: unknown method %v", method)
	}
	if err != nil {
		return nil, err
	}
	if err := e.catalog.Insert(ckey, catalogVal(method, meta)); err != nil {
		return nil, err
	}
	e.emit(Event{Kind: "create-db", Detail: name})
	return e.openDBLocked(name, method, meta)
}

// OpenDB opens an existing database.
func (e *Env) OpenDB(name string) (*DB, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.lookupDBLocked(name)
}

func (e *Env) lookupDBLocked(name string) (*DB, error) {
	e.catMu.Lock()
	defer e.catMu.Unlock()
	if db, ok := e.dbs[name]; ok {
		return db, nil
	}
	v, found, err := e.catalog.Get([]byte(dbPrefix + name))
	if err != nil {
		return nil, err
	}
	if !found {
		return nil, fmt.Errorf("bdb: database %q not found", name)
	}
	method := Method(v[0])
	meta := storage.PageID(binary.LittleEndian.Uint32(v[1:]))
	if !e.has(method.String()) {
		return nil, featureErr(method.String())
	}
	return e.openDBLocked(name, method, meta)
}

func (e *Env) openDBLocked(name string, method Method, meta storage.PageID) (*DB, error) {
	db := &DB{env: e, name: name, method: method, meta: meta}
	var err error
	switch method {
	case MethodBtree, MethodRecno:
		db.idx, err = index.OpenBTree(e.pager, meta, index.AllBTreeOps())
	case MethodHash:
		db.idx, err = OpenHash(e.pager, meta)
	case MethodQueue:
		db.queue, err = OpenQueue(e.pager, meta)
	}
	if err != nil {
		return nil, err
	}
	db.buildPipelines()
	e.dbs[name] = db
	e.methods.Store(name, method)
	return db, nil
}

// Databases lists the databases in the catalog.
func (e *Env) Databases() ([]string, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	e.catMu.Lock()
	defer e.catMu.Unlock()
	var names []string
	err := e.catalog.Scan(nil, nil, func(k, v []byte) bool {
		if bytes.HasPrefix(k, []byte(dbPrefix)) {
			names = append(names, string(k[len(dbPrefix):]))
		}
		return true
	})
	sort.Strings(names)
	return names, err
}

// --- the DB handle and its composed operation pipelines ---

// DB is a handle on one database.
type DB struct {
	env    *Env
	name   string
	method Method
	meta   storage.PageID
	idx    index.Index // nil for queues
	queue  *Queue      // MethodQueue only

	put func(key, value []byte) error
	get func(key []byte) ([]byte, bool, error)
	del func(key []byte) (bool, error)
}

// Name returns the database name.
func (db *DB) Name() string { return db.name }

// Method returns the access method.
func (db *DB) Method() Method { return db.method }

// buildPipelines composes the operation pipelines. This is where the
// Figure 1 modes differ:
//
//   - ModeComposed wires only the selected decorators; deselected
//     functionality does not exist on the call path at all.
//   - ModeC wires every decorator; each consults its runtime flag, the
//     cost the original preprocessor-configured C code pays for options
//     that are compiled in but switched off.
func (db *DB) buildPipelines() {
	if db.method == MethodQueue {
		return // queues use Enqueue/Dequeue instead
	}
	e := db.env
	db.put = db.applyPut
	db.get = db.applyGet
	db.del = db.applyDel

	type wrap struct {
		feature string
		put     func(next func([]byte, []byte) error) func([]byte, []byte) error
		get     func(next func([]byte) ([]byte, bool, error)) func([]byte) ([]byte, bool, error)
		del     func(next func([]byte) (bool, error)) func([]byte) (bool, error)
	}
	decorators := []wrap{
		{
			feature: "Diagnostic",
			put: func(next func([]byte, []byte) error) func([]byte, []byte) error {
				return func(k, v []byte) error {
					if err := next(k, v); err != nil {
						return err
					}
					got, found, err := db.idx.Get(k)
					if err != nil || !found || !bytes.Equal(got, v) {
						return fmt.Errorf("bdb: diagnostic: put of %q not visible (%v)", k, err)
					}
					return nil
				}
			},
		},
		{
			feature: "Statistics",
			put: func(next func([]byte, []byte) error) func([]byte, []byte) error {
				return func(k, v []byte) error {
					atomic.AddInt64(&e.stats.Puts, 1)
					return next(k, v)
				}
			},
			get: func(next func([]byte) ([]byte, bool, error)) func([]byte) ([]byte, bool, error) {
				return func(k []byte) ([]byte, bool, error) {
					atomic.AddInt64(&e.stats.Gets, 1)
					return next(k)
				}
			},
			del: func(next func([]byte) (bool, error)) func([]byte) (bool, error) {
				return func(k []byte) (bool, error) {
					atomic.AddInt64(&e.stats.Deletes, 1)
					return next(k)
				}
			},
		},
	}
	for _, d := range decorators {
		d := d
		switch e.cfg.Mode {
		case core.ModeComposed:
			if !e.has(d.feature) {
				continue
			}
			if d.put != nil {
				db.put = d.put(db.put)
			}
			if d.get != nil {
				db.get = d.get(db.get)
			}
			if d.del != nil {
				db.del = d.del(db.del)
			}
		case core.ModeC:
			// Everything is linked; each call re-checks the flag.
			if d.put != nil {
				inner := db.put
				wrapped := d.put(inner)
				db.put = func(k, v []byte) error {
					if e.has(d.feature) {
						return wrapped(k, v)
					}
					return inner(k, v)
				}
			}
			if d.get != nil {
				inner := db.get
				wrapped := d.get(inner)
				db.get = func(k []byte) ([]byte, bool, error) {
					if e.has(d.feature) {
						return wrapped(k)
					}
					return inner(k)
				}
			}
			if d.del != nil {
				inner := db.del
				wrapped := d.del(inner)
				db.del = func(k []byte) (bool, error) {
					if e.has(d.feature) {
						return wrapped(k)
					}
					return inner(k)
				}
			}
		}
	}
}

// routed builds the journal key for a DB-level key.
func routed(db string, key []byte) []byte {
	out := make([]byte, 0, len(db)+1+len(key))
	out = append(out, db...)
	out = append(out, 0)
	return append(out, key...)
}

func splitRouted(k []byte) (db string, key []byte, err error) {
	i := bytes.IndexByte(k, 0)
	if i < 0 {
		return "", nil, errors.New("bdb: unrouted journal key")
	}
	return string(k[:i]), k[i+1:], nil
}

// routerIndex lets one transaction manager journal operations on every
// database: keys are "<db>\x00<key>".
type routerIndex struct{ env *Env }

func (r *routerIndex) Name() string { return "router" }

func (r *routerIndex) resolve(k []byte) (*DB, []byte, error) {
	name, key, err := splitRouted(k)
	if err != nil {
		return nil, nil, err
	}
	db, err := r.env.lookupDBLocked(name)
	if err != nil {
		return nil, nil, err
	}
	return db, key, nil
}

func (r *routerIndex) Insert(k, v []byte) error {
	db, key, err := r.resolve(k)
	if err != nil {
		return err
	}
	return db.idx.Insert(key, v)
}

func (r *routerIndex) Get(k []byte) ([]byte, bool, error) {
	db, key, err := r.resolve(k)
	if err != nil {
		return nil, false, err
	}
	return db.idx.Get(key)
}

func (r *routerIndex) Delete(k []byte) (bool, error) {
	db, key, err := r.resolve(k)
	if err != nil {
		return false, err
	}
	return db.idx.Delete(key)
}

func (r *routerIndex) Update(k, v []byte) (bool, error) {
	db, key, err := r.resolve(k)
	if err != nil {
		return false, err
	}
	return db.idx.Update(key, v)
}

func (r *routerIndex) Scan(from, to []byte, fn func(k, v []byte) bool) error {
	return errors.New("bdb: the journal router does not scan")
}

func (r *routerIndex) Len() (uint64, error) { return 0, nil }

// applyPut is the pipeline base: journal when Logging is selected,
// otherwise mutate the index directly.
func (db *DB) applyPut(key, value []byte) error {
	if db.env.mgr != nil {
		t := db.env.mgr.Begin()
		if err := t.Put(routed(db.name, key), value); err != nil {
			return err
		}
		return t.Commit()
	}
	return db.idx.Insert(key, value)
}

func (db *DB) applyGet(key []byte) ([]byte, bool, error) {
	return db.idx.Get(key)
}

func (db *DB) applyDel(key []byte) (bool, error) {
	if db.env.mgr != nil {
		t := db.env.mgr.Begin()
		if err := t.Remove(routed(db.name, key)); err != nil {
			if errors.Is(err, txn.ErrNotFound) {
				t.Abort()
				return false, nil
			}
			return false, err
		}
		return true, t.Commit()
	}
	return db.idx.Delete(key)
}

func (db *DB) kvOnly() error {
	if db.method == MethodQueue {
		return errors.New("bdb: key/value operation on a queue database")
	}
	return nil
}

// Put stores value under key.
func (db *DB) Put(key, value []byte) error {
	if err := db.kvOnly(); err != nil {
		return err
	}
	db.env.mu.Lock()
	defer db.env.mu.Unlock()
	return db.put(key, value)
}

// Get returns the value under key.
func (db *DB) Get(key []byte) ([]byte, bool, error) {
	if err := db.kvOnly(); err != nil {
		return nil, false, err
	}
	db.env.mu.RLock()
	defer db.env.mu.RUnlock()
	return db.get(key)
}

// Delete removes key, reporting whether it existed.
func (db *DB) Delete(key []byte) (bool, error) {
	if err := db.kvOnly(); err != nil {
		return false, err
	}
	db.env.mu.Lock()
	defer db.env.mu.Unlock()
	return db.del(key)
}

// Len returns the number of entries.
func (db *DB) Len() (uint64, error) {
	if db.method == MethodQueue {
		return db.queue.Len(), nil
	}
	return db.idx.Len()
}

// --- Queue method surface ---

// Enqueue appends a record (MethodQueue only).
func (db *DB) Enqueue(rec []byte) (uint64, error) {
	if db.method != MethodQueue {
		return 0, errors.New("bdb: Enqueue on a non-queue database")
	}
	db.env.mu.Lock()
	defer db.env.mu.Unlock()
	return db.queue.Enqueue(rec)
}

// Dequeue removes the oldest record (MethodQueue only).
func (db *DB) Dequeue() ([]byte, bool, error) {
	if db.method != MethodQueue {
		return nil, false, errors.New("bdb: Dequeue on a non-queue database")
	}
	db.env.mu.Lock()
	defer db.env.mu.Unlock()
	return db.queue.Dequeue()
}

// Peek returns the oldest record without removing it (MethodQueue
// only).
func (db *DB) Peek() ([]byte, bool, error) {
	if db.method != MethodQueue {
		return nil, false, errors.New("bdb: Peek on a non-queue database")
	}
	db.env.mu.RLock()
	defer db.env.mu.RUnlock()
	return db.queue.Peek()
}

// --- Recno surface ---

// Append stores rec under the next record number (MethodRecno only)
// and returns that number.
func (db *DB) Append(rec []byte) (uint64, error) {
	if db.method != MethodRecno {
		return 0, errors.New("bdb: Append on a non-recno database")
	}
	db.env.mu.Lock()
	defer db.env.mu.Unlock()
	n, err := db.idx.Len()
	if err != nil {
		return 0, err
	}
	// Record numbers are dense on append-only use; after deletes the
	// next number continues past the largest live key.
	next := n + 1
	for {
		key := recnoKey(next)
		if _, found, err := db.idx.Get(key); err != nil {
			return 0, err
		} else if !found {
			break
		}
		next++
	}
	return next, db.put(recnoKey(next), rec)
}

// GetRecno reads record number n (MethodRecno only).
func (db *DB) GetRecno(n uint64) ([]byte, bool, error) {
	if db.method != MethodRecno {
		return nil, false, errors.New("bdb: GetRecno on a non-recno database")
	}
	db.env.mu.RLock()
	defer db.env.mu.RUnlock()
	return db.get(recnoKey(n))
}

func recnoKey(n uint64) []byte {
	var k [8]byte
	binary.BigEndian.PutUint64(k[:], n)
	return k[:]
}
