package bdb

import (
	"encoding/binary"
	"fmt"

	"famedb/internal/storage"
)

// Queue is the Queue access method: a persistent FIFO of records.
// Records are appended at the tail page and consumed from the head page
// via a per-page read cursor; fully consumed pages are recycled.
type Queue struct {
	pager storage.Pager
	meta  storage.PageID
	head  storage.PageID
	tail  storage.PageID
	count uint64
	// nextSeq numbers enqueued records for the caller.
	nextSeq uint64
}

const (
	queueMagic    = "FAMEQU01"
	queuePageType = 0x41
)

// CreateQueue creates an empty queue; the returned meta page reopens it.
func CreateQueue(p storage.Pager) (*Queue, storage.PageID, error) {
	meta, err := p.Alloc()
	if err != nil {
		return nil, 0, err
	}
	first, err := p.Alloc()
	if err != nil {
		return nil, 0, err
	}
	buf := make([]byte, p.PageSize())
	storage.InitSlotted(buf, queuePageType)
	if err := p.WritePage(first, buf); err != nil {
		return nil, 0, err
	}
	q := &Queue{pager: p, meta: meta, head: first, tail: first, nextSeq: 1}
	if err := q.writeMeta(); err != nil {
		return nil, 0, err
	}
	return q, meta, nil
}

// OpenQueue opens a queue from its meta page.
func OpenQueue(p storage.Pager, meta storage.PageID) (*Queue, error) {
	buf := make([]byte, p.PageSize())
	if err := p.ReadPage(meta, buf); err != nil {
		return nil, err
	}
	if string(buf[:8]) != queueMagic {
		return nil, fmt.Errorf("bdb: page %d is not a queue meta page", meta)
	}
	return &Queue{
		pager:   p,
		meta:    meta,
		head:    storage.PageID(binary.LittleEndian.Uint32(buf[8:12])),
		tail:    storage.PageID(binary.LittleEndian.Uint32(buf[12:16])),
		count:   binary.LittleEndian.Uint64(buf[16:24]),
		nextSeq: binary.LittleEndian.Uint64(buf[24:32]),
	}, nil
}

func (q *Queue) writeMeta() error {
	buf := make([]byte, q.pager.PageSize())
	copy(buf, queueMagic)
	binary.LittleEndian.PutUint32(buf[8:12], uint32(q.head))
	binary.LittleEndian.PutUint32(buf[12:16], uint32(q.tail))
	binary.LittleEndian.PutUint64(buf[16:24], q.count)
	binary.LittleEndian.PutUint64(buf[24:32], q.nextSeq)
	return q.pager.WritePage(q.meta, buf)
}

// Enqueue appends a record and returns its sequence number.
func (q *Queue) Enqueue(rec []byte) (uint64, error) {
	buf := make([]byte, q.pager.PageSize())
	if q.count == 0 {
		// The queue is empty: recycle all consumed pages and restart on
		// a fresh tail page.
		for q.head != q.tail {
			if err := q.pager.ReadPage(q.head, buf); err != nil {
				return 0, err
			}
			next := storage.AsSlotted(buf).Next()
			if err := q.pager.Free(q.head); err != nil {
				return 0, err
			}
			q.head = next
		}
		storage.InitSlotted(buf, queuePageType)
		if err := q.pager.WritePage(q.tail, buf); err != nil {
			return 0, err
		}
	}
	if err := q.pager.ReadPage(q.tail, buf); err != nil {
		return 0, err
	}
	sp := storage.AsSlotted(buf)
	if _, err := sp.Insert(rec); err != nil {
		// Tail full: extend the chain.
		newID, aerr := q.pager.Alloc()
		if aerr != nil {
			return 0, aerr
		}
		sp.SetNext(newID)
		if err := q.pager.WritePage(q.tail, buf); err != nil {
			return 0, err
		}
		np := storage.InitSlotted(buf, queuePageType)
		if _, err := np.Insert(rec); err != nil {
			return 0, err
		}
		q.tail = newID
		sp = np
	}
	if err := q.pager.WritePage(q.tail, buf); err != nil {
		return 0, err
	}
	seq := q.nextSeq
	q.nextSeq++
	q.count++
	return seq, q.writeMeta()
}

// Dequeue removes and returns the oldest record; ok is false when the
// queue is empty.
func (q *Queue) Dequeue() (rec []byte, ok bool, err error) {
	if q.count == 0 {
		return nil, false, nil
	}
	buf := make([]byte, q.pager.PageSize())
	for {
		if err := q.pager.ReadPage(q.head, buf); err != nil {
			return nil, false, err
		}
		sp := storage.AsSlotted(buf)
		cursor := int(sp.Extra())
		if cursor < sp.NumSlots() {
			r, rerr := sp.Read(cursor)
			if rerr != nil {
				return nil, false, rerr
			}
			out := append([]byte(nil), r...)
			sp.SetExtra(uint32(cursor + 1))
			if err := q.pager.WritePage(q.head, buf); err != nil {
				return nil, false, err
			}
			q.count--
			return out, true, q.writeMeta()
		}
		// Head page fully consumed. Records remain (count > 0), so the
		// chain must continue; a broken chain is corruption.
		if q.head == q.tail {
			return nil, false, fmt.Errorf("bdb: queue count %d but no records in chain", q.count)
		}
		next := sp.Next()
		if err := q.pager.Free(q.head); err != nil {
			return nil, false, err
		}
		q.head = next
	}
}

// Peek returns the oldest record without removing it.
func (q *Queue) Peek() (rec []byte, ok bool, err error) {
	if q.count == 0 {
		return nil, false, nil
	}
	buf := make([]byte, q.pager.PageSize())
	id := q.head
	for id != storage.InvalidPage {
		if err := q.pager.ReadPage(id, buf); err != nil {
			return nil, false, err
		}
		sp := storage.AsSlotted(buf)
		cursor := int(sp.Extra())
		if cursor < sp.NumSlots() {
			r, rerr := sp.Read(cursor)
			if rerr != nil {
				return nil, false, rerr
			}
			return append([]byte(nil), r...), true, nil
		}
		id = sp.Next()
	}
	return nil, false, nil
}

// Len returns the number of queued records.
func (q *Queue) Len() uint64 { return q.count }
