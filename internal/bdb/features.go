package bdb

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"

	"famedb/internal/index"
	"famedb/internal/osal"
	"famedb/internal/repl"
	"famedb/internal/storage"
	"famedb/internal/txn"
)

// --- Cursors ---

// Cursor iterates a database (Cursors feature). It operates on a
// snapshot taken at creation time, in key order for ordered methods and
// in storage order for Hash.
type Cursor struct {
	keys [][]byte
	vals [][]byte
	pos  int
}

// Cursor opens a cursor over the database.
func (db *DB) Cursor() (*Cursor, error) {
	if !db.env.has("Cursors") {
		return nil, featureErr("Cursors")
	}
	if err := db.kvOnly(); err != nil {
		return nil, err
	}
	db.env.mu.RLock()
	defer db.env.mu.RUnlock()
	c := &Cursor{pos: -1}
	err := db.idx.Scan(nil, nil, func(k, v []byte) bool {
		c.keys = append(c.keys, append([]byte(nil), k...))
		c.vals = append(c.vals, append([]byte(nil), v...))
		return true
	})
	return c, err
}

// First positions at the first entry.
func (c *Cursor) First() ([]byte, []byte, bool) {
	c.pos = 0
	return c.current()
}

// Next advances to the next entry.
func (c *Cursor) Next() ([]byte, []byte, bool) {
	c.pos++
	return c.current()
}

// Prev steps back.
func (c *Cursor) Prev() ([]byte, []byte, bool) {
	c.pos--
	return c.current()
}

// Seek positions at the first key >= target (ordered methods).
func (c *Cursor) Seek(target []byte) ([]byte, []byte, bool) {
	c.pos = sort.Search(len(c.keys), func(i int) bool {
		return bytes.Compare(c.keys[i], target) >= 0
	})
	return c.current()
}

func (c *Cursor) current() ([]byte, []byte, bool) {
	if c.pos < 0 || c.pos >= len(c.keys) {
		return nil, nil, false
	}
	return c.keys[c.pos], c.vals[c.pos], true
}

// --- Join ---

// Join returns the keys present in every given database (Join feature),
// in sorted order — the equality join over secondary indexes of the
// original API, reduced to its key-intersection core.
func (e *Env) Join(dbs ...*DB) ([][]byte, error) {
	if !e.has("Join") {
		return nil, featureErr("Join")
	}
	if len(dbs) == 0 {
		return nil, errors.New("bdb: join of zero databases")
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	counts := map[string]int{}
	for _, db := range dbs {
		if err := db.kvOnly(); err != nil {
			return nil, err
		}
		seen := map[string]bool{}
		err := db.idx.Scan(nil, nil, func(k, v []byte) bool {
			if !seen[string(k)] {
				seen[string(k)] = true
				counts[string(k)]++
			}
			return true
		})
		if err != nil {
			return nil, err
		}
	}
	var out [][]byte
	for k, n := range counts {
		if n == len(dbs) {
			out = append(out, []byte(k))
		}
	}
	sort.Slice(out, func(i, j int) bool { return bytes.Compare(out[i], out[j]) < 0 })
	return out, nil
}

// --- Bulk operations ---

// KV is a key/value pair for bulk operations.
type KV struct{ Key, Value []byte }

// BulkPut stores many pairs under one lock acquisition (BulkOps
// feature).
func (db *DB) BulkPut(kvs []KV) error {
	if !db.env.has("BulkOps") {
		return featureErr("BulkOps")
	}
	if err := db.kvOnly(); err != nil {
		return err
	}
	db.env.mu.Lock()
	defer db.env.mu.Unlock()
	for _, kv := range kvs {
		if err := db.put(kv.Key, kv.Value); err != nil {
			return err
		}
	}
	return nil
}

// BulkGet reads many keys under one lock acquisition (BulkOps feature).
// Missing keys yield nil values.
func (db *DB) BulkGet(keys [][]byte) ([][]byte, error) {
	if !db.env.has("BulkOps") {
		return nil, featureErr("BulkOps")
	}
	if err := db.kvOnly(); err != nil {
		return nil, err
	}
	db.env.mu.RLock()
	defer db.env.mu.RUnlock()
	out := make([][]byte, len(keys))
	for i, k := range keys {
		v, found, err := db.get(k)
		if err != nil {
			return nil, err
		}
		if found {
			out[i] = v
		}
	}
	return out, nil
}

// --- Verify / Compact / Truncate ---

// Verify checks the database's on-disk invariants (Verify feature).
func (db *DB) Verify() error {
	if !db.env.has("Verify") {
		return featureErr("Verify")
	}
	db.env.mu.RLock()
	defer db.env.mu.RUnlock()
	switch db.method {
	case MethodBtree, MethodRecno:
		return db.idx.(*index.BTree).Tree().Verify()
	case MethodHash:
		return db.idx.(*HashIndex).VerifyChains()
	case MethodQueue:
		// Queue invariants: the chain from head reaches tail and the
		// unread records match the count.
		return db.queue.verify()
	}
	return nil
}

// Compact rebuilds the database densely (Compact feature). Only the
// B-tree methods relocate pages; others are already dense.
func (db *DB) Compact() error {
	if !db.env.has("Compact") {
		return featureErr("Compact")
	}
	db.env.mu.Lock()
	defer db.env.mu.Unlock()
	switch db.method {
	case MethodBtree, MethodRecno:
		if err := db.idx.(*index.BTree).Tree().Compact(); err != nil {
			return err
		}
	}
	db.env.emit(Event{Kind: "compact", Detail: db.name})
	return nil
}

// Truncate removes every entry (Truncate feature).
func (db *DB) Truncate() error {
	if !db.env.has("Truncate") {
		return featureErr("Truncate")
	}
	db.env.mu.Lock()
	defer db.env.mu.Unlock()
	if db.method == MethodQueue {
		for {
			_, ok, err := db.queue.Dequeue()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
		}
		db.env.emit(Event{Kind: "truncate", Detail: db.name})
		return nil
	}
	var keys [][]byte
	if err := db.idx.Scan(nil, nil, func(k, v []byte) bool {
		keys = append(keys, append([]byte(nil), k...))
		return true
	}); err != nil {
		return err
	}
	for _, k := range keys {
		if _, err := db.del(k); err != nil {
			return err
		}
	}
	db.env.emit(Event{Kind: "truncate", Detail: db.name})
	return nil
}

// verify checks queue chain consistency.
func (q *Queue) verify() error {
	buf := make([]byte, q.pager.PageSize())
	id := q.head
	var unread uint64
	reachedTail := false
	for id != storage.InvalidPage {
		if err := q.pager.ReadPage(id, buf); err != nil {
			return err
		}
		sp := storage.AsSlotted(buf)
		if sp.Type() != queuePageType {
			return fmt.Errorf("bdb: queue page %d is not a queue page", id)
		}
		n := sp.NumSlots() - int(sp.Extra())
		if n > 0 {
			unread += uint64(n)
		}
		if id == q.tail {
			reachedTail = true
			break
		}
		id = sp.Next()
	}
	if !reachedTail {
		return errors.New("bdb: queue chain does not reach the tail")
	}
	if unread != q.count {
		return fmt.Errorf("bdb: queue count %d but %d unread records", q.count, unread)
	}
	return nil
}

// --- Backup ---

// Backup copies the environment's files to another filesystem (Backup
// feature). The journal is flushed and the cache written back first, so
// the copy is a consistent snapshot.
func (e *Env) Backup(dst osal.FS) error {
	if !e.has("Backup") {
		return featureErr("Backup")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.mgr != nil {
		if err := e.mgr.Flush(); err != nil {
			return err
		}
	}
	if err := e.pager.Sync(); err != nil {
		return err
	}
	names, err := e.cfg.FS.List()
	if err != nil {
		return err
	}
	for _, name := range names {
		if err := copyFile(e.cfg.FS, dst, name); err != nil {
			return err
		}
	}
	e.emit(Event{Kind: "backup", Detail: fmt.Sprintf("%d files", len(names))})
	return nil
}

func copyFile(src, dst osal.FS, name string) error {
	in, err := src.Open(name)
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := dst.Create(name)
	if err != nil {
		return err
	}
	defer out.Close()
	size, err := in.Size()
	if err != nil {
		return err
	}
	if err := out.Truncate(0); err != nil {
		return err
	}
	buf := make([]byte, 64<<10)
	var off int64
	for off < size {
		n, err := in.ReadAt(buf, off)
		if n > 0 {
			if _, werr := out.WriteAt(buf[:n], off); werr != nil {
				return werr
			}
			off += int64(n)
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
	}
	return out.Sync()
}

// --- Sequences ---

// Sequence is a persistent named counter (Sequence feature).
type Sequence struct {
	env  *Env
	name string
}

// Sequence opens (creating if missing) the named sequence.
func (e *Env) Sequence(name string) (*Sequence, error) {
	if !e.has("Sequence") {
		return nil, featureErr("Sequence")
	}
	return &Sequence{env: e, name: name}, nil
}

// Next atomically increments and returns the counter (starting at 1).
func (s *Sequence) Next() (uint64, error) {
	s.env.mu.Lock()
	defer s.env.mu.Unlock()
	s.env.catMu.Lock()
	defer s.env.catMu.Unlock()
	key := []byte(seqPrefix + s.name)
	var cur uint64
	if v, found, err := s.env.catalog.Get(key); err != nil {
		return 0, err
	} else if found {
		cur = binary.LittleEndian.Uint64(v)
	}
	cur++
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], cur)
	if err := s.env.catalog.Insert(key, buf[:]); err != nil {
		return 0, err
	}
	return cur, nil
}

// --- Transactions ---

// Tx is an explicit multi-operation transaction over one or more
// databases (Transactions feature).
type Tx struct {
	env *Env
	t   *txn.Txn
}

// Begin starts a transaction.
func (e *Env) Begin() (*Tx, error) {
	if !e.has("Transactions") {
		return nil, featureErr("Transactions")
	}
	return &Tx{env: e, t: e.mgr.Begin()}, nil
}

// Put buffers a write to db.
func (tx *Tx) Put(db *DB, key, value []byte) error {
	if err := db.kvOnly(); err != nil {
		return err
	}
	return tx.t.Put(routed(db.name, key), value)
}

// Get reads through the transaction (own writes win).
func (tx *Tx) Get(db *DB, key []byte) ([]byte, error) {
	tx.env.mu.RLock()
	defer tx.env.mu.RUnlock()
	return tx.t.Get(routed(db.name, key))
}

// Delete buffers a removal.
func (tx *Tx) Delete(db *DB, key []byte) error {
	tx.env.mu.RLock()
	defer tx.env.mu.RUnlock()
	return tx.t.Remove(routed(db.name, key))
}

// Commit makes the transaction's writes durable and visible. The
// environment lock is taken in the same order as direct operations
// (env, then journal), so transactional and direct use compose.
func (tx *Tx) Commit() error {
	tx.env.mu.Lock()
	defer tx.env.mu.Unlock()
	return tx.t.Commit()
}

// Abort discards the transaction.
func (tx *Tx) Abort() { tx.t.Abort() }

// Checkpoint flushes the store and truncates the journal (Checkpoint
// feature; requires Logging).
func (e *Env) Checkpoint() error {
	if !e.has("Checkpoint") {
		return featureErr("Checkpoint")
	}
	if err := e.mgr.Checkpoint(); err != nil {
		return err
	}
	e.emit(Event{Kind: "checkpoint"})
	return nil
}

// --- Replication ---

// AttachReplica connects another environment as a replication target
// (Replication feature). Databases are created on the replica on
// demand with the same access method. Returns the replicator for
// verification.
func (e *Env) AttachReplica(target *Env) (*repl.Replicator, error) {
	if !e.has("Replication") {
		return nil, featureErr("Replication")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	r := repl.New()
	r.Attach(&replicaRouter{src: e, dst: target})
	e.repl = &replHandle{ship: r.Ship}
	return r, nil
}

// replicaRouter applies routed operations to the target environment,
// creating databases on demand.
type replicaRouter struct {
	src *Env
	dst *Env
}

func (rr *replicaRouter) Name() string { return "replica" }

func (rr *replicaRouter) resolve(k []byte) (*DB, []byte, error) {
	name, key, err := splitRouted(k)
	if err != nil {
		return nil, nil, err
	}
	rr.dst.mu.Lock()
	db, err := rr.dst.lookupDBLocked(name)
	rr.dst.mu.Unlock()
	if err != nil {
		// Mirror the source database's method. The method registry is
		// read without the source lock: resolve runs inside the
		// source's commit path, which already holds it.
		m, ok := rr.src.methods.Load(name)
		if !ok {
			return nil, nil, fmt.Errorf("bdb: replication source has no database %q", name)
		}
		db, err = rr.dst.CreateDB(name, m.(Method))
		if err != nil {
			return nil, nil, err
		}
	}
	return db, key, nil
}

func (rr *replicaRouter) Insert(k, v []byte) error {
	db, key, err := rr.resolve(k)
	if err != nil {
		return err
	}
	rr.dst.mu.Lock()
	defer rr.dst.mu.Unlock()
	return db.put(key, v)
}

func (rr *replicaRouter) Delete(k []byte) (bool, error) {
	db, key, err := rr.resolve(k)
	if err != nil {
		return false, err
	}
	rr.dst.mu.Lock()
	defer rr.dst.mu.Unlock()
	return db.del(key)
}

func (rr *replicaRouter) Get(k []byte) ([]byte, bool, error) {
	db, key, err := rr.resolve(k)
	if err != nil {
		return nil, false, err
	}
	rr.dst.mu.RLock()
	defer rr.dst.mu.RUnlock()
	return db.get(key)
}

func (rr *replicaRouter) Update(k, v []byte) (bool, error) {
	found, err := func() (bool, error) {
		_, found, err := rr.Get(k)
		return found, err
	}()
	if err != nil || !found {
		return false, err
	}
	return true, rr.Insert(k, v)
}

func (rr *replicaRouter) Scan(from, to []byte, fn func(k, v []byte) bool) error {
	return errors.New("bdb: replica router does not scan")
}

func (rr *replicaRouter) Len() (uint64, error) { return 0, nil }

// --- lifecycle ---

// Sync makes all state durable.
func (e *Env) Sync() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.mgr != nil {
		if err := e.mgr.Flush(); err != nil {
			return err
		}
	}
	return e.pager.Sync()
}

// Close flushes and closes the environment.
func (e *Env) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return errors.New("bdb: environment already closed")
	}
	e.closed = true
	if e.mgr != nil {
		if err := e.mgr.Close(); err != nil {
			return err
		}
	}
	return e.pager.Close()
}
