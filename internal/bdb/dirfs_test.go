package bdb

import (
	"fmt"
	"testing"

	"famedb/internal/core"
	"famedb/internal/osal"
)

// TestDirFSPersistence runs the case-study engine on real files: create
// databases of several access methods, write, close, reopen from disk,
// verify — including an encrypted environment.
func TestDirFSPersistence(t *testing.T) {
	dir := t.TempDir()
	fs, err := osal.NewDirFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	feats := []string{"Btree", "Hash", "Queue", "Locking", "Logging", "Recovery", "Verify", "Crypto"}
	cfg := Config{
		FS:         fs,
		Mode:       core.ModeComposed,
		Features:   feats,
		PageSize:   512,
		Passphrase: []byte("disk-secret"),
	}
	env, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bt, err := env.CreateDB("bt", MethodBtree)
	if err != nil {
		t.Fatal(err)
	}
	hs, err := env.CreateDB("hs", MethodHash)
	if err != nil {
		t.Fatal(err)
	}
	qu, err := env.CreateDB("qu", MethodQueue)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		k := []byte(fmt.Sprintf("k%03d", i))
		if err := bt.Put(k, []byte("btv")); err != nil {
			t.Fatal(err)
		}
		if err := hs.Put(k, []byte("hsv")); err != nil {
			t.Fatal(err)
		}
		if _, err := qu.Enqueue(k); err != nil {
			t.Fatal(err)
		}
	}
	if err := env.Close(); err != nil {
		t.Fatal(err)
	}

	// Fresh process: reopen from the same directory.
	fs2, _ := osal.NewDirFS(dir)
	cfg.FS = fs2
	env2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer env2.Close()
	bt2, err := env2.OpenDB("bt")
	if err != nil {
		t.Fatal(err)
	}
	if err := bt2.Verify(); err != nil {
		t.Fatalf("btree verify from disk: %v", err)
	}
	if v, found, _ := bt2.Get([]byte("k050")); !found || string(v) != "btv" {
		t.Fatalf("btree read from disk = %q, %v", v, found)
	}
	hs2, _ := env2.OpenDB("hs")
	if err := hs2.Verify(); err != nil {
		t.Fatalf("hash verify from disk: %v", err)
	}
	qu2, _ := env2.OpenDB("qu")
	if n, _ := qu2.Len(); n != 100 {
		t.Fatalf("queue Len from disk = %d", n)
	}
	rec, ok, _ := qu2.Dequeue()
	if !ok || string(rec) != "k000" {
		t.Fatalf("queue head from disk = %q, %v", rec, ok)
	}

	// Wrong passphrase cannot read the files.
	fs3, _ := osal.NewDirFS(dir)
	bad := cfg
	bad.FS = fs3
	bad.Passphrase = []byte("WRONG")
	if env3, err := Open(bad); err == nil {
		if _, oerr := env3.OpenDB("bt"); oerr == nil {
			t.Fatal("wrong passphrase opened on-disk data")
		}
		env3.Close()
	}
}
