package bdb

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"famedb/internal/core"
	"famedb/internal/osal"
)

// allFeatures is Figure 1's configuration 1.
func allFeatures() []string { return core.BDBOptionalFeatures() }

func openEnv(t *testing.T, cfg Config) *Env {
	t.Helper()
	if cfg.FS == nil {
		cfg.FS = osal.NewMemFS()
	}
	if cfg.PageSize == 0 {
		cfg.PageSize = 512
	}
	if len(cfg.Passphrase) == 0 {
		cfg.Passphrase = []byte("test-passphrase")
	}
	e, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestMinimalProductPutGet(t *testing.T) {
	// Figure 1 configuration 7: minimal composed product using B-tree.
	e := openEnv(t, Config{Mode: core.ModeComposed, Features: []string{"Btree"}})
	db, err := e.CreateDB("main", MethodBtree)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	v, found, err := db.Get([]byte("k"))
	if err != nil || !found || string(v) != "v" {
		t.Fatalf("Get = %q, %v, %v", v, found, err)
	}
	ok, err := db.Delete([]byte("k"))
	if err != nil || !ok {
		t.Fatalf("Delete = %v, %v", ok, err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFeatureSelectionValidatedAgainstModel(t *testing.T) {
	// Unknown feature name.
	if _, err := Open(Config{FS: osal.NewMemFS(), Features: []string{"Btree", "Nonsense"}}); err == nil {
		t.Fatal("unknown feature should fail")
	}
	// Model completion: Transactions pulls in Logging and Locking.
	e := openEnv(t, Config{Features: []string{"Btree", "Transactions"}})
	if !e.has("Logging") || !e.has("Locking") {
		t.Fatal("feature-model completion did not pull in Logging/Locking")
	}
}

func TestAccessMethodGating(t *testing.T) {
	e := openEnv(t, Config{Features: []string{"Btree"}})
	if _, err := e.CreateDB("h", MethodHash); !errors.Is(err, ErrFeature) {
		t.Fatalf("Hash without feature = %v", err)
	}
	if _, err := e.CreateDB("q", MethodQueue); !errors.Is(err, ErrFeature) {
		t.Fatalf("Queue without feature = %v", err)
	}
}

func TestHashMethod(t *testing.T) {
	e := openEnv(t, Config{Features: []string{"Hash", "Verify", "Locking"}})
	db, err := e.CreateDB("h", MethodHash)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if err := db.Put([]byte(fmt.Sprintf("key-%03d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 300; i++ {
		v, found, err := db.Get([]byte(fmt.Sprintf("key-%03d", i)))
		if err != nil || !found || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get(%d) = %q, %v, %v", i, v, found, err)
		}
	}
	if err := db.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	// Overwrite and delete.
	db.Put([]byte("key-000"), []byte("replaced"))
	v, _, _ := db.Get([]byte("key-000"))
	if string(v) != "replaced" {
		t.Fatalf("overwrite = %q", v)
	}
	ok, err := db.Delete([]byte("key-001"))
	if err != nil || !ok {
		t.Fatal("delete failed")
	}
	if n, _ := db.Len(); n != 299 {
		t.Fatalf("Len = %d", n)
	}
	if err := db.Verify(); err != nil {
		t.Fatalf("Verify after mutations: %v", err)
	}
}

func TestQueueMethod(t *testing.T) {
	e := openEnv(t, Config{Features: []string{"Queue", "Btree", "Locking", "Verify"}})
	q, err := e.CreateDB("q", MethodQueue)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		seq, err := q.Enqueue([]byte(fmt.Sprintf("msg-%03d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("seq = %d, want %d", seq, i+1)
		}
	}
	if err := q.Verify(); err != nil {
		t.Fatalf("queue verify: %v", err)
	}
	if rec, ok, _ := q.Peek(); !ok || string(rec) != "msg-000" {
		t.Fatalf("Peek = %q, %v", rec, ok)
	}
	for i := 0; i < 100; i++ {
		rec, ok, err := q.Dequeue()
		if err != nil || !ok || string(rec) != fmt.Sprintf("msg-%03d", i) {
			t.Fatalf("Dequeue %d = %q, %v, %v", i, rec, ok, err)
		}
	}
	if _, ok, _ := q.Dequeue(); ok {
		t.Fatal("empty queue dequeued")
	}
	// Refill after drain works (page recycling).
	for i := 0; i < 50; i++ {
		q.Enqueue([]byte("again"))
	}
	if n, _ := q.Len(); n != 50 {
		t.Fatalf("Len = %d", n)
	}
	if err := q.Verify(); err != nil {
		t.Fatalf("queue verify after refill: %v", err)
	}
	// KV ops rejected on queues.
	if err := q.Put([]byte("k"), []byte("v")); err == nil {
		t.Fatal("Put on queue should fail")
	}
}

func TestRecnoMethod(t *testing.T) {
	e := openEnv(t, Config{Features: []string{"Recno"}})
	db, err := e.CreateDB("r", MethodRecno)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 20; i++ {
		n, err := db.Append([]byte(fmt.Sprintf("rec%d", i)))
		if err != nil || n != uint64(i) {
			t.Fatalf("Append = %d, %v", n, err)
		}
	}
	v, found, err := db.GetRecno(7)
	if err != nil || !found || string(v) != "rec7" {
		t.Fatalf("GetRecno = %q, %v, %v", v, found, err)
	}
}

func TestCryptoEncryptsPages(t *testing.T) {
	fs := osal.NewMemFS()
	e := openEnv(t, Config{FS: fs, Features: []string{"Btree", "Crypto"}, Passphrase: []byte("secret")})
	db, _ := e.CreateDB("main", MethodBtree)
	secret := bytes.Repeat([]byte("TOPSECRET-"), 10)
	db.Put([]byte("classified"), secret)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	// The raw file must not contain the plaintext.
	f, _ := fs.Open(dataFileName)
	size, _ := f.Size()
	raw := make([]byte, size)
	f.ReadAt(raw, 0)
	if bytes.Contains(raw, []byte("TOPSECRET")) {
		t.Fatal("plaintext leaked to disk with Crypto enabled")
	}
	if bytes.Contains(raw, []byte("classified")) {
		t.Fatal("key plaintext leaked to disk with Crypto enabled")
	}

	// Reopen with the right passphrase: data intact.
	e2 := openEnv(t, Config{FS: fs, Features: []string{"Btree", "Crypto"}, Passphrase: []byte("secret")})
	db2, err := e2.OpenDB("main")
	if err != nil {
		t.Fatal(err)
	}
	v, found, err := db2.Get([]byte("classified"))
	if err != nil || !found || !bytes.Equal(v, secret) {
		t.Fatalf("decrypt read = %v, %v", found, err)
	}
	e2.Close()

	// Wrong passphrase: unreadable.
	if e3, err := Open(Config{FS: fs, PageSize: 512, Features: []string{"Btree", "Crypto"}, Passphrase: []byte("WRONG")}); err == nil {
		if _, oerr := e3.OpenDB("main"); oerr == nil {
			t.Fatal("wrong passphrase opened the database")
		}
	}
}

func TestWithoutCryptoPlaintextOnDisk(t *testing.T) {
	fs := osal.NewMemFS()
	e := openEnv(t, Config{FS: fs, Features: []string{"Btree"}})
	db, _ := e.CreateDB("main", MethodBtree)
	db.Put([]byte("needle"), []byte("PLAINVALUE"))
	e.Close()
	f, _ := fs.Open(dataFileName)
	size, _ := f.Size()
	raw := make([]byte, size)
	f.ReadAt(raw, 0)
	if !bytes.Contains(raw, []byte("PLAINVALUE")) {
		t.Fatal("expected plaintext on disk without Crypto")
	}
}

func TestTransactionsCommitAbort(t *testing.T) {
	e := openEnv(t, Config{Features: []string{"Btree", "Transactions"}})
	db, _ := e.CreateDB("main", MethodBtree)
	tx, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	tx.Put(db, []byte("a"), []byte("1"))
	tx.Put(db, []byte("b"), []byte("2"))
	if v, err := tx.Get(db, []byte("a")); err != nil || string(v) != "1" {
		t.Fatalf("tx read-your-writes = %q, %v", v, err)
	}
	if _, found, _ := db.Get([]byte("a")); found {
		t.Fatal("uncommitted write visible")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, found, _ := db.Get([]byte("a")); !found {
		t.Fatal("committed write invisible")
	}

	tx2, _ := e.Begin()
	tx2.Delete(db, []byte("a"))
	tx2.Abort()
	if _, found, _ := db.Get([]byte("a")); !found {
		t.Fatal("aborted delete applied")
	}
}

func TestRecoveryAfterCrash(t *testing.T) {
	fs := osal.NewMemFS()
	feats := []string{"Btree", "Transactions", "Recovery", "Checkpoint"}
	e := openEnv(t, Config{FS: fs, Features: feats})
	db, _ := e.CreateDB("main", MethodBtree)
	db.Put([]byte("before"), []byte("checkpoint"))
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	db.Put([]byte("after"), []byte("crash"))
	// Crash: abandon the env without Close/Sync. The page cache holds
	// the 'after' write; only the journal has it durably.
	_ = e

	e2 := openEnv(t, Config{FS: fs, Features: feats})
	db2, err := e2.OpenDB("main")
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"before", "after"} {
		if _, found, err := db2.Get([]byte(k)); err != nil || !found {
			t.Fatalf("key %q lost after crash recovery (%v)", k, err)
		}
	}
}

func TestStatisticsFeature(t *testing.T) {
	e := openEnv(t, Config{Features: []string{"Btree", "Statistics"}})
	db, _ := e.CreateDB("main", MethodBtree)
	db.Put([]byte("k"), []byte("v"))
	db.Get([]byte("k"))
	db.Get([]byte("k"))
	db.Delete([]byte("k"))
	st, err := e.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Puts != 1 || st.Gets != 2 || st.Deletes != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Without the feature the call is not composed.
	e2 := openEnv(t, Config{Features: []string{"Btree"}})
	if _, err := e2.Stats(); !errors.Is(err, ErrFeature) {
		t.Fatalf("Stats without feature = %v", err)
	}
}

func TestCursorsAndJoin(t *testing.T) {
	e := openEnv(t, Config{Features: []string{"Btree", "Cursors", "Join"}})
	db, _ := e.CreateDB("main", MethodBtree)
	for _, k := range []string{"a", "b", "c", "d"} {
		db.Put([]byte(k), []byte("v-"+k))
	}
	c, err := db.Cursor()
	if err != nil {
		t.Fatal(err)
	}
	k, v, ok := c.First()
	if !ok || string(k) != "a" || string(v) != "v-a" {
		t.Fatalf("First = %q,%q,%v", k, v, ok)
	}
	k, _, _ = c.Next()
	if string(k) != "b" {
		t.Fatalf("Next = %q", k)
	}
	k, _, _ = c.Seek([]byte("c"))
	if string(k) != "c" {
		t.Fatalf("Seek = %q", k)
	}
	k, _, _ = c.Prev()
	if string(k) != "b" {
		t.Fatalf("Prev = %q", k)
	}
	if _, _, ok := c.Seek([]byte("zz")); ok {
		t.Fatal("Seek past end should report false")
	}

	other, _ := e.CreateDB("other", MethodBtree)
	other.Put([]byte("b"), []byte("x"))
	other.Put([]byte("c"), []byte("y"))
	other.Put([]byte("q"), []byte("z"))
	keys, err := e.Join(db, other)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 || string(keys[0]) != "b" || string(keys[1]) != "c" {
		t.Fatalf("Join = %q", keys)
	}
}

func TestJoinRequiresCursorsConstraint(t *testing.T) {
	// Selecting Join pulls Cursors in via the feature model.
	e := openEnv(t, Config{Features: []string{"Btree", "Join"}})
	if !e.has("Cursors") {
		t.Fatal("Join => Cursors constraint not applied")
	}
}

func TestBulkOps(t *testing.T) {
	e := openEnv(t, Config{Features: []string{"Btree", "BulkOps"}})
	db, _ := e.CreateDB("main", MethodBtree)
	kvs := []KV{{[]byte("a"), []byte("1")}, {[]byte("b"), []byte("2")}}
	if err := db.BulkPut(kvs); err != nil {
		t.Fatal(err)
	}
	got, err := db.BulkGet([][]byte{[]byte("a"), []byte("missing"), []byte("b")})
	if err != nil {
		t.Fatal(err)
	}
	if string(got[0]) != "1" || got[1] != nil || string(got[2]) != "2" {
		t.Fatalf("BulkGet = %q", got)
	}
}

func TestVerifyCompactTruncate(t *testing.T) {
	e := openEnv(t, Config{Features: []string{"Btree", "Verify", "Compact", "Truncate"}})
	db, _ := e.CreateDB("main", MethodBtree)
	for i := 0; i < 200; i++ {
		db.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v"))
	}
	if err := db.Verify(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i += 2 {
		db.Delete([]byte(fmt.Sprintf("k%03d", i)))
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := db.Verify(); err != nil {
		t.Fatalf("Verify after compact: %v", err)
	}
	if n, _ := db.Len(); n != 100 {
		t.Fatalf("Len = %d", n)
	}
	if err := db.Truncate(); err != nil {
		t.Fatal(err)
	}
	if n, _ := db.Len(); n != 0 {
		t.Fatalf("Len after truncate = %d", n)
	}
}

func TestSequenceFeature(t *testing.T) {
	fs := osal.NewMemFS()
	e := openEnv(t, Config{FS: fs, Features: []string{"Btree", "Sequence"}})
	s, err := e.Sequence("ids")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		n, err := s.Next()
		if err != nil || n != uint64(i) {
			t.Fatalf("Next = %d, %v", n, err)
		}
	}
	other, _ := e.Sequence("other")
	if n, _ := other.Next(); n != 1 {
		t.Fatalf("independent sequence = %d", n)
	}
	// Persistence across reopen.
	e.Sync()
	e.Close()
	e2 := openEnv(t, Config{FS: fs, Features: []string{"Btree", "Sequence"}})
	s2, _ := e2.Sequence("ids")
	if n, _ := s2.Next(); n != 6 {
		t.Fatalf("sequence after reopen = %d", n)
	}
}

func TestEventsFeature(t *testing.T) {
	var events []string
	e := openEnv(t, Config{
		Features: []string{"Btree", "Events", "Truncate"},
		OnEvent:  func(ev Event) { events = append(events, ev.Kind) },
	})
	db, _ := e.CreateDB("main", MethodBtree)
	db.Put([]byte("k"), []byte("v"))
	db.Truncate()
	want := []string{"open", "create-db", "truncate"}
	if len(events) != len(want) {
		t.Fatalf("events = %v", events)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("events = %v, want %v", events, want)
		}
	}
	// Without the feature no events fire even with a callback.
	var silent []string
	e2 := openEnv(t, Config{Features: []string{"Btree"}, OnEvent: func(ev Event) { silent = append(silent, ev.Kind) }})
	e2.CreateDB("x", MethodBtree)
	if len(silent) != 0 {
		t.Fatalf("events without feature: %v", silent)
	}
}

func TestErrorMessagesFeature(t *testing.T) {
	with := openEnv(t, Config{Features: []string{"Btree", "ErrorMessages"}})
	without := openEnv(t, Config{Features: []string{"Btree"}})
	if with.Strerror(CodeNotFound) == fmt.Sprintf("bdb: error %d", CodeNotFound) {
		t.Fatal("ErrorMessages product should render text")
	}
	if without.Strerror(CodeNotFound) != fmt.Sprintf("bdb: error %d", CodeNotFound) {
		t.Fatalf("product without ErrorMessages rendered %q", without.Strerror(CodeNotFound))
	}
}

func TestDiagnosticFeature(t *testing.T) {
	// Diagnostic requires ErrorMessages per the model; the put pipeline
	// re-reads each write.
	e := openEnv(t, Config{Features: []string{"Btree", "Diagnostic"}})
	if !e.has("ErrorMessages") {
		t.Fatal("Diagnostic => ErrorMessages not applied")
	}
	db, _ := e.CreateDB("main", MethodBtree)
	if err := db.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
}

func TestBackupFeature(t *testing.T) {
	src := osal.NewMemFS()
	e := openEnv(t, Config{FS: src, Features: []string{"Btree", "Backup", "Logging"}})
	db, _ := e.CreateDB("main", MethodBtree)
	for i := 0; i < 50; i++ {
		db.Put([]byte(fmt.Sprintf("k%02d", i)), []byte("v"))
	}
	dst := osal.NewMemFS()
	if err := e.Backup(dst); err != nil {
		t.Fatal(err)
	}
	// The backup opens as a standalone environment with the data.
	e2 := openEnv(t, Config{FS: dst, Features: []string{"Btree", "Logging", "Recovery"}})
	db2, err := e2.OpenDB("main")
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := db2.Len(); n != 50 {
		t.Fatalf("backup Len = %d", n)
	}
}

func TestReplicationFeature(t *testing.T) {
	primary := openEnv(t, Config{Features: []string{"Btree", "Replication"}})
	replica := openEnv(t, Config{Features: []string{"Btree"}})
	r, err := primary.AttachReplica(replica)
	if err != nil {
		t.Fatal(err)
	}
	db, _ := primary.CreateDB("main", MethodBtree)
	for i := 0; i < 30; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%02d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	db.Delete([]byte("k00"))
	if r.Shipped != 31 {
		t.Fatalf("Shipped = %d", r.Shipped)
	}
	rdb, err := replica.OpenDB("main")
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := rdb.Len(); n != 29 {
		t.Fatalf("replica Len = %d", n)
	}
	if _, found, _ := rdb.Get([]byte("k00")); found {
		t.Fatal("deleted key present on replica")
	}
	if _, found, _ := rdb.Get([]byte("k07")); !found {
		t.Fatal("replicated key missing on replica")
	}
}

func TestCacheTuningFeature(t *testing.T) {
	// With CacheTuning a tiny cache forces evictions; the untuned
	// default (32 pages) absorbs the same workload.
	run := func(features []string, cachePages int) int64 {
		e := openEnv(t, Config{Features: features, CachePages: cachePages, CachePolicy: "LFU"})
		db, _ := e.CreateDB("main", MethodBtree)
		for i := 0; i < 100; i++ {
			db.Put([]byte(fmt.Sprintf("k%03d", i)), bytes.Repeat([]byte("v"), 50))
		}
		return e.cache.Stats().Evictions
	}
	tuned := run([]string{"Btree", "CacheTuning"}, 2)
	untuned := run([]string{"Btree"}, 2) // ignored without the feature
	if tuned <= untuned {
		t.Fatalf("evictions tuned=%d untuned=%d: tuning should have shrunk the cache", tuned, untuned)
	}
}

func TestFeatureGatesAcrossTheSurface(t *testing.T) {
	e := openEnv(t, Config{Features: []string{"Btree"}})
	db, _ := e.CreateDB("main", MethodBtree)
	cases := []struct {
		name string
		call func() error
	}{
		{"Cursors", func() error { _, err := db.Cursor(); return err }},
		{"Join", func() error { _, err := e.Join(db); return err }},
		{"BulkOps", func() error { return db.BulkPut(nil) }},
		{"Verify", func() error { return db.Verify() }},
		{"Compact", func() error { return db.Compact() }},
		{"Truncate", func() error { return db.Truncate() }},
		{"Backup", func() error { return e.Backup(osal.NewMemFS()) }},
		{"Sequence", func() error { _, err := e.Sequence("s"); return err }},
		{"Transactions", func() error { _, err := e.Begin(); return err }},
		{"Checkpoint", func() error { return e.Checkpoint() }},
		{"Replication", func() error { _, err := e.AttachReplica(e); return err }},
	}
	for _, c := range cases {
		if err := c.call(); !errors.Is(err, ErrFeature) {
			t.Errorf("%s without feature = %v, want ErrFeature", c.name, err)
		}
	}
}

func TestMonolithicAndComposedBehaveIdentically(t *testing.T) {
	// Sec. 2.2's claim: the transformation does not change behavior.
	for _, feats := range [][]string{
		{"Btree"},
		allFeatures(),
		{"Btree", "Statistics", "Diagnostic"},
	} {
		var results [2][]string
		for mi, mode := range []core.BDBMode{core.ModeC, core.ModeComposed} {
			e := openEnv(t, Config{Mode: mode, Features: feats})
			db, err := e.CreateDB("main", MethodBtree)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 50; i++ {
				db.Put([]byte(fmt.Sprintf("k%02d", i)), []byte(fmt.Sprintf("v%d", i*7)))
			}
			for i := 0; i < 50; i += 3 {
				db.Delete([]byte(fmt.Sprintf("k%02d", i)))
			}
			for i := 0; i < 50; i++ {
				v, found, _ := db.Get([]byte(fmt.Sprintf("k%02d", i)))
				results[mi] = append(results[mi], fmt.Sprintf("%q/%v", v, found))
			}
		}
		for i := range results[0] {
			if results[0][i] != results[1][i] {
				t.Fatalf("features %v: divergence at %d: %s vs %s",
					feats, i, results[0][i], results[1][i])
			}
		}
	}
}

func TestAllFeaturesEndToEnd(t *testing.T) {
	// Configuration 1 with everything on, exercised concurrently.
	e := openEnv(t, Config{Mode: core.ModeComposed, Features: allFeatures()})
	db, err := e.CreateDB("main", MethodBtree)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := []byte(fmt.Sprintf("g%d-%02d", g, i))
				if err := db.Put(k, []byte("v")); err != nil {
					errs <- err
					return
				}
				if _, _, err := db.Get(k); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if n, _ := db.Len(); n != 200 {
		t.Fatalf("Len = %d", n)
	}
	if err := db.Verify(); err != nil {
		t.Fatal(err)
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	fs := osal.NewMemFS()
	feats := []string{"Btree", "Hash"}
	e := openEnv(t, Config{FS: fs, Features: feats})
	b, _ := e.CreateDB("bt", MethodBtree)
	h, _ := e.CreateDB("hs", MethodHash)
	b.Put([]byte("bk"), []byte("bv"))
	h.Put([]byte("hk"), []byte("hv"))
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	e2 := openEnv(t, Config{FS: fs, Features: feats})
	names, err := e2.Databases()
	if err != nil || len(names) != 2 {
		t.Fatalf("Databases = %v, %v", names, err)
	}
	b2, _ := e2.OpenDB("bt")
	h2, _ := e2.OpenDB("hs")
	if v, _, _ := b2.Get([]byte("bk")); string(v) != "bv" {
		t.Fatalf("btree value = %q", v)
	}
	if v, _, _ := h2.Get([]byte("hk")); string(v) != "hv" {
		t.Fatalf("hash value = %q", v)
	}
}

func TestDuplicateDBRejected(t *testing.T) {
	e := openEnv(t, Config{Features: []string{"Btree"}})
	e.CreateDB("x", MethodBtree)
	if _, err := e.CreateDB("x", MethodBtree); err == nil {
		t.Fatal("duplicate CreateDB should fail")
	}
	if _, err := e.OpenDB("missing"); err == nil {
		t.Fatal("OpenDB of missing db should fail")
	}
}

func TestMethodStrings(t *testing.T) {
	if MethodBtree.String() != "Btree" || MethodHash.String() != "Hash" ||
		MethodQueue.String() != "Queue" || MethodRecno.String() != "Recno" {
		t.Fatal("method names wrong")
	}
}
