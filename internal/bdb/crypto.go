package bdb

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"encoding/binary"
	"errors"

	"famedb/internal/storage"
)

// CryptoPager is the Crypto feature: transparent AES-CTR page
// encryption layered over any Pager. Each page uses a nonce derived
// from its page ID, so pages are independently decryptable and
// rewriting a page reuses its key stream only when the same page is
// rewritten — acceptable for an at-rest threat model and standard for
// page-level database encryption without per-write nonces.
type CryptoPager struct {
	base  storage.Pager
	block cipher.Block
}

// NewCryptoPager derives an AES-256 key from the passphrase and wraps
// the base pager.
func NewCryptoPager(base storage.Pager, passphrase []byte) (*CryptoPager, error) {
	if len(passphrase) == 0 {
		return nil, errors.New("bdb: encryption requires a passphrase")
	}
	key := sha256.Sum256(passphrase)
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, err
	}
	return &CryptoPager{base: base, block: block}, nil
}

func (c *CryptoPager) stream(id storage.PageID) cipher.Stream {
	var iv [aes.BlockSize]byte
	binary.LittleEndian.PutUint32(iv[:4], uint32(id))
	copy(iv[4:], "FAMECRYPTPAGE")
	return cipher.NewCTR(c.block, iv[:])
}

// PageSize implements storage.Pager.
func (c *CryptoPager) PageSize() int { return c.base.PageSize() }

// Alloc implements storage.Pager.
func (c *CryptoPager) Alloc() (storage.PageID, error) { return c.base.Alloc() }

// Free implements storage.Pager.
func (c *CryptoPager) Free(id storage.PageID) error { return c.base.Free(id) }

// ReadPage implements storage.Pager: read ciphertext, decrypt into buf.
func (c *CryptoPager) ReadPage(id storage.PageID, buf []byte) error {
	if err := c.base.ReadPage(id, buf); err != nil {
		return err
	}
	c.stream(id).XORKeyStream(buf, buf)
	return nil
}

// WritePage implements storage.Pager: encrypt, write ciphertext. The
// caller's buffer is not modified.
func (c *CryptoPager) WritePage(id storage.PageID, buf []byte) error {
	enc := make([]byte, len(buf))
	c.stream(id).XORKeyStream(enc, buf)
	return c.base.WritePage(id, enc)
}

// Sync implements storage.Pager.
func (c *CryptoPager) Sync() error { return c.base.Sync() }

// Close implements storage.Pager.
func (c *CryptoPager) Close() error { return c.base.Close() }
