package bench

// Benchmark B7: the MVCC feature's read concurrency and its NFP
// feedback.
//
// Two otherwise identical group-commit products — one latching reads
// through Manager.mu, one composing MVCC — run the same mixed
// reader/writer workload: each reader performs bounded range scans
// inside read transactions (re-begun every few dozen scans so the
// pinned version stays fresh), while writers overwrite keys in the
// scanned range through the group-commit pipeline for the whole
// measured phase. Under the latch every scan holds the manager's
// read lock and convoys behind the writer's exclusive apply; under
// MVCC the scan descends from a pinned copy-on-write root and takes
// no lock at all, so readers never block and never wake the futex.
// The reader/writer mix is swept: 1, 16 and 64 readers against one
// writer, plus 16 readers against 4 writers.
//
// The MVCC points also report the version table's activity — versions
// installed, pages reclaimed, versions live after the run — so the
// report shows epoch reclamation kept the superseded pages bounded
// while readers pinned old roots.
//
// The 16-reader/1-writer measurements close the paper's feedback loop:
// both variants' read throughput and latency feed the NFP store, the
// signed fitted table gives MVCC a negative read-latency weight, and
// the greedy deriver minimizing measured read latency selects MVCC on
// its own. The ROM side prices it right back out: under a budget that
// fits the transactional base product but not the copy-on-write and
// version-table code, requiring MVCC makes derivation infeasible.
// Snapshot reads are a feature with a price, and the NFP machinery
// quotes both sides of it.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"text/tabwriter"
	"time"

	"famedb/internal/composer"
	"famedb/internal/core"
	"famedb/internal/footprint"
	"famedb/internal/nfp"
	"famedb/internal/solver"
	"famedb/internal/stats"
)

// B7Config fixes the scenario.
type B7Config struct {
	ReadOps    int   // scan operations per measured point, across readers
	Seed       int64 // reserved for workload shuffling
	Keys       int   // preloaded keys the readers scan and writers rewrite
	ScanSpan   int   // keys visited per scan operation
	ValueBytes int   // payload per key
	TxnScans   int   // scans per read transaction before re-pinning
	WriterPuts int   // puts per writer transaction
}

func defaultB7Config(readOps int, seed int64) B7Config {
	if readOps < 4096 {
		readOps = 4096
	}
	return B7Config{
		ReadOps:    readOps,
		Seed:       seed,
		Keys:       4096,
		ScanSpan:   64,
		ValueBytes: 64,
		TxnScans:   64,
		// Batched writer transactions: the whole batch applies under the
		// manager's exclusive lock, which is exactly the window latched
		// readers convoy behind and snapshot readers sail through.
		WriterPuts: 64,
	}
}

// b7Mixes are the swept reader/writer populations.
var b7Mixes = [][2]int{{1, 1}, {16, 1}, {64, 1}, {16, 4}}

// B7Point is one measured (variant, readers, writers) cell.
type B7Point struct {
	Mvcc    bool `json:"mvcc"`
	Readers int  `json:"readers"`
	Writers int  `json:"writers"`
	ReadOps int  `json:"read_ops"`
	// Seconds times the reader phase; writers run throughout.
	Seconds      float64 `json:"seconds"`
	ReadsPerSec  float64 `json:"reads_per_sec"`
	WritesPerSec float64 `json:"writes_per_sec"` // committed writer txns
	// Per-scan wall-time quantiles, nanoseconds.
	ReadP50Ns float64 `json:"read_p50_ns"`
	ReadP99Ns float64 `json:"read_p99_ns"`
	// Version-table activity; zero for the latch variant.
	VersionsInstalled int64 `json:"versions_installed"`
	PagesReclaimed    int64 `json:"pages_reclaimed"`
	VersionsLive      int64 `json:"versions_live"`
}

// B7Speedup compares MVCC vs latched read throughput at one mix.
type B7Speedup struct {
	Readers       int     `json:"readers"`
	Writers       int     `json:"writers"`
	LatchReadsSec float64 `json:"latch_reads_per_sec"`
	MvccReadsSec  float64 `json:"mvcc_reads_per_sec"`
	Ratio         float64 `json:"ratio"`
}

// B7Feedback is the closed loop: measured read latency derives MVCC,
// and a tight ROM budget prices it back out.
type B7Feedback struct {
	Property         string   `json:"property"`
	MeasuredProducts int      `json:"measured_products"`
	Required         []string `json:"required"`
	DerivedFeatures  []string `json:"derived_features"`
	// SelectedMVCC reports whether the read-latency-minimizing greedy
	// deriver picked MVCC from its negative fitted weight.
	SelectedMVCC bool `json:"selected_mvcc"`
	// MVCCLatencyWeightNs is the fitted per-feature contribution of
	// MVCC to read p50 latency (negative: it helps).
	MVCCLatencyWeightNs float64 `json:"mvcc_latency_weight_ns"`
	// The ROM side: the transactional base product's footprint, MVCC's
	// footprint delta, and the budget under which requiring it fails.
	BaseROM            int  `json:"base_rom_bytes"`
	MVCCROM            int  `json:"mvcc_rom_bytes"`
	TightROMBudget     int  `json:"tight_rom_budget_bytes"`
	InfeasibleWithMVCC bool `json:"infeasible_with_mvcc"`
}

// B7Result is the machine-readable report (BENCH_7.json).
type B7Result struct {
	ReadOps    int         `json:"read_ops_per_point"`
	Seed       int64       `json:"seed"`
	Keys       int         `json:"keys"`
	ScanSpan   int         `json:"scan_span"`
	ValueBytes int         `json:"value_bytes"`
	Points     []B7Point   `json:"points"`
	Speedups   []B7Speedup `json:"speedups"`
	Feedback   B7Feedback  `json:"feedback"`
}

// b7Features is the measured product: the thread-safe group-commit
// write path under concurrent read transactions, with Statistics for
// the version-table gauges; the MVCC variant adds snapshot reads.
func b7Features(mvcc bool) []string {
	fs := []string{
		"Linux", "BPlusTree", "BufferManager", "LRU", "DynamicAlloc",
		"ShardedBuffer", "Put", "Get",
		"Transaction", "GroupCommit", "Locking", "Statistics",
	}
	if mvcc {
		fs = append(fs, "MVCC")
	}
	return fs
}

// b7Run measures one (mvcc, readers, writers) point: a sequential load
// phase, then the reader population draining cfg.ReadOps timed scans
// while the writers rewrite scanned keys through the group-commit
// pipeline until the last reader finishes.
func b7Run(cfg B7Config, mvcc bool, readers, writers int) (B7Point, error) {
	pt := B7Point{Mvcc: mvcc, Readers: readers, Writers: writers, ReadOps: cfg.ReadOps}

	// Both variants get the same generous cache so the comparison is
	// about locking, not about copy-on-write churn evicting hot pages.
	inst, err := composer.ComposeProduct(composer.Options{CachePages: 4096, CacheShards: 64}, b7Features(mvcc)...)
	if err != nil {
		return pt, err
	}
	value := make([]byte, cfg.ValueBytes)
	for i := range value {
		value[i] = byte(i)
	}
	key := func(i int) []byte { return []byte(fmt.Sprintf("k%07d", i)) }
	for i := 0; i < cfg.Keys; i++ {
		if err := inst.Store.Put(key(i), value); err != nil {
			inst.Close()
			return pt, err
		}
	}

	hist := stats.NewHistogram(stats.LatencyBounds())
	errs := make(chan error, readers+writers)
	var stop atomic.Bool
	var commits atomic.Int64
	var wwg, rwg sync.WaitGroup

	start := time.Now()
	for w := 0; w < writers; w++ {
		wwg.Add(1)
		go func(w int) {
			defer wwg.Done()
			for i := 0; !stop.Load(); i += cfg.WriterPuts {
				tx := inst.Txn.Begin()
				for p := 0; p < cfg.WriterPuts; p++ {
					// Rewrite keys inside the scanned range so every commit
					// supersedes pages the readers' pinned versions still
					// reference.
					if err := tx.Put(key((w*7919+i+p*131)%cfg.Keys), value); err != nil {
						errs <- err
						return
					}
				}
				if err := tx.Commit(); err != nil {
					errs <- err
					return
				}
				commits.Add(1)
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		n := cfg.ReadOps / readers
		if r < cfg.ReadOps%readers {
			n++
		}
		rwg.Add(1)
		go func(r, n int) {
			defer rwg.Done()
			span := cfg.ScanSpan
			for done := 0; done < n; {
				// One read transaction per batch of scans: under MVCC the
				// Begin pins the current version once and every scan inside
				// descends lock-free; under the latch every scan takes the
				// manager's read lock.
				tx := inst.Txn.Begin()
				for b := 0; b < cfg.TxnScans && done < n; b++ {
					lo := (r*2654435761 + done*97) % (cfg.Keys - span)
					got := 0
					t0 := time.Now()
					err := tx.Scan(key(lo), key(lo+span), func(_, _ []byte) bool {
						got++
						return true
					})
					hist.Observe(time.Since(t0).Nanoseconds())
					if err != nil {
						tx.Abort()
						errs <- err
						return
					}
					if got != span {
						tx.Abort()
						errs <- fmt.Errorf("scan [%d,%d) saw %d keys, want %d", lo, lo+span, got, span)
						return
					}
					done++
				}
				tx.Abort()
			}
		}(r, n)
	}
	rwg.Wait()
	elapsed := time.Since(start)
	stop.Store(true)
	wwg.Wait()
	close(errs)
	for err := range errs {
		inst.Close()
		return pt, err
	}

	snap, err := inst.Stats()
	if err != nil {
		inst.Close()
		return pt, err
	}
	if err := inst.Close(); err != nil {
		return pt, err
	}

	h := hist.Snapshot()
	pt.Seconds = elapsed.Seconds()
	pt.ReadsPerSec = float64(cfg.ReadOps) / elapsed.Seconds()
	pt.WritesPerSec = float64(commits.Load()) / elapsed.Seconds()
	pt.ReadP50Ns = h.P50()
	pt.ReadP99Ns = h.P99()
	pt.VersionsInstalled = snap.MVCC.VersionsInstalled
	pt.PagesReclaimed = snap.MVCC.PagesReclaimed
	pt.VersionsLive = snap.MVCC.VersionsLive
	return pt, nil
}

// B7 runs the MVCC read-concurrency benchmark and closes the feedback
// loop: snapshot reads are measured against latched reads across the
// reader/writer sweep, and the NFP machinery prices the MVCC feature
// under read-latency and ROM objectives.
func B7(n int, seed int64) (*B7Result, error) {
	cfg := defaultB7Config(n, seed)
	res := &B7Result{
		ReadOps: cfg.ReadOps, Seed: cfg.Seed, Keys: cfg.Keys,
		ScanSpan: cfg.ScanSpan, ValueBytes: cfg.ValueBytes,
	}

	m := core.FAMEModel()
	store := nfp.NewStore(m)
	type mixKey [2]int
	byMix := map[mixKey]*B7Speedup{}
	for _, mvcc := range []bool{false, true} {
		for _, mix := range b7Mixes {
			readers, writers := mix[0], mix[1]
			pt, err := b7Run(cfg, mvcc, readers, writers)
			if err != nil {
				return nil, fmt.Errorf("B7 mvcc=%v/%dr%dw: %w", mvcc, readers, writers, err)
			}
			res.Points = append(res.Points, pt)
			sp := byMix[mixKey(mix)]
			if sp == nil {
				sp = &B7Speedup{Readers: readers, Writers: writers}
				byMix[mixKey(mix)] = sp
			}
			if mvcc {
				sp.MvccReadsSec = pt.ReadsPerSec
			} else {
				sp.LatchReadsSec = pt.ReadsPerSec
			}
			// Feed the loop at the acceptance mix: one measurement per
			// variant, differing only in the MVCC feature, so the fitted
			// weight is exactly the measured read-latency delta.
			if readers == 16 && writers == 1 {
				err := nfp.RecordMeasurement(store, b7Features(mvcc), map[nfp.Property]float64{
					nfp.Throughput: pt.ReadsPerSec,
					nfp.LatencyP50: pt.ReadP50Ns,
					nfp.LatencyP99: pt.ReadP99Ns,
				})
				if err != nil {
					return nil, err
				}
			}
		}
	}
	for _, mix := range b7Mixes {
		sp := byMix[mixKey(mix)]
		if sp.LatchReadsSec > 0 {
			sp.Ratio = sp.MvccReadsSec / sp.LatchReadsSec
		}
		res.Speedups = append(res.Speedups, *sp)
	}

	// Latency side: the stakeholder's functional requirements are the
	// transactional stack the workload exercises; the open question is
	// whether MVCC rides along. Greedy over the signed fitted table
	// selects it on its measured (negative) read-latency weight.
	tab, err := store.SignedTable(nfp.LatencyP50)
	if err != nil {
		return nil, err
	}
	required := []string{
		"Linux", "BPlusTree", "Put", "Get",
		"Transaction", "GroupCommit", "Locking",
	}
	derived, err := solver.Greedy(solver.Request{Model: m, Table: tab, Required: required})
	if err != nil {
		return nil, err
	}
	lw, _ := store.FeatureWeight(nfp.LatencyP50, "MVCC")

	// ROM side: size a budget that fits the transactional base product
	// but not the copy-on-write and version-table code, then require
	// MVCC under it.
	rom, err := footprint.Load("FAME-DBMS")
	if err != nil {
		return nil, err
	}
	base, err := solver.BranchAndBound(solver.Request{Model: m, Table: rom, Required: required})
	if err != nil {
		return nil, err
	}
	mvccROM := rom.Features["MVCC"]
	budget := base.ROM + mvccROM/2
	_, infErr := solver.BranchAndBound(solver.Request{
		Model:    m,
		Table:    rom,
		Required: append(append([]string{}, required...), "MVCC"),
		MaxROM:   budget,
	})

	res.Feedback = B7Feedback{
		Property:            string(nfp.LatencyP50),
		MeasuredProducts:    len(store.Measurements()),
		Required:            required,
		DerivedFeatures:     derived.Config.SelectedNames(),
		SelectedMVCC:        derived.Config.Has("MVCC"),
		MVCCLatencyWeightNs: lw,
		BaseROM:             base.ROM,
		MVCCROM:             mvccROM,
		TightROMBudget:      budget,
		InfeasibleWithMVCC:  errors.Is(infErr, solver.ErrInfeasible),
	}
	if infErr != nil && !errors.Is(infErr, solver.ErrInfeasible) {
		return nil, infErr
	}
	return res, nil
}

// FormatB7 renders the B7 result as text.
func FormatB7(r *B7Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "B7 — MVCC: snapshot vs latched reads, %d-key scans against group-commit writers\n", r.ScanSpan)
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "mvcc\treaders\twriters\treads/s\tread p50 ns\tread p99 ns\tcommits/s\tversions\treclaimed\tlive")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%v\t%d\t%d\t%.0f\t%.0f\t%.0f\t%.0f\t%d\t%d\t%d\n",
			p.Mvcc, p.Readers, p.Writers, p.ReadsPerSec, p.ReadP50Ns, p.ReadP99Ns,
			p.WritesPerSec, p.VersionsInstalled, p.PagesReclaimed, p.VersionsLive)
	}
	w.Flush()
	for _, sp := range r.Speedups {
		fmt.Fprintf(&b, "read throughput at %2d readers / %d writers: %.2fx (latch %.0f/s, mvcc %.0f/s)\n",
			sp.Readers, sp.Writers, sp.Ratio, sp.LatchReadsSec, sp.MvccReadsSec)
	}
	fmt.Fprintf(&b, "feedback: min %s via greedy over %d measurements, required %v:\n  %v\n",
		r.Feedback.Property, r.Feedback.MeasuredProducts, r.Feedback.Required,
		r.Feedback.DerivedFeatures)
	fmt.Fprintf(&b, "  MVCC selected: %v (read-latency weight %+.0f ns)\n",
		r.Feedback.SelectedMVCC, r.Feedback.MVCCLatencyWeightNs)
	fmt.Fprintf(&b, "  ROM: base %d B, MVCC +%d B; requiring MVCC under a %d B budget infeasible: %v\n",
		r.Feedback.BaseROM, r.Feedback.MVCCROM, r.Feedback.TightROMBudget,
		r.Feedback.InfeasibleWithMVCC)
	return b.String()
}

// WriteJSON emits the machine-readable benchmark report (BENCH_7.json).
func (r *B7Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
