package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
	"time"

	"famedb/internal/composer"
	"famedb/internal/core"
	"famedb/internal/nfp"
	"famedb/internal/solver"
	"famedb/internal/stats"
	"famedb/internal/workload"
)

// ProductRun is one measured product of experiment B1: a configuration
// composed *with* the Statistics feature, so the run yields counters and
// latency histograms alongside throughput.
type ProductRun struct {
	Name      string   `json:"name"`
	Features  []string `json:"features"`
	Ops       int      `json:"ops"`
	Seconds   float64  `json:"seconds"`
	OpsPerSec float64  `json:"ops_per_sec"`
	// Latency quantiles from the Statistics feature's access
	// histograms, nanoseconds.
	GetP50Ns float64 `json:"get_p50_ns"`
	GetP99Ns float64 `json:"get_p99_ns"`
	PutP50Ns float64 `json:"put_p50_ns"`
	PutP99Ns float64 `json:"put_p99_ns"`
	ROM      int     `json:"rom_bytes"`
	RAM      int     `json:"ram_bytes"`
	// Stats is the full metric snapshot after the run.
	Stats stats.Snapshot `json:"stats"`
}

// withStatistics returns the feature list with Statistics selected.
func withStatistics(features []string) []string {
	for _, f := range features {
		if f == "Statistics" {
			return features
		}
	}
	return append(append([]string(nil), features...), "Statistics")
}

// RunProduct composes a product with the Statistics feature, runs the
// standard 9:1 get/put mix over it, and returns throughput together
// with the observed metric snapshot — the "measure generated products"
// step of the paper's feedback approach, fed by real instrumentation
// instead of wall-clock-only timing.
func RunProduct(name string, features []string, n int, seed int64) (*ProductRun, error) {
	features = withStatistics(features)
	inst, err := composer.ComposeProduct(composer.Options{}, features...)
	if err != nil {
		return nil, err
	}
	defer inst.Close()
	gen := workload.New(workload.Config{
		Seed:      seed,
		Keys:      2000,
		ValueSize: 32,
		Mix:       map[workload.OpKind]int{workload.OpGet: 9, workload.OpPut: 1},
	})
	for _, op := range gen.Preload() {
		if err := inst.Store.Put(op.Key, op.Value); err != nil {
			return nil, err
		}
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		op := gen.Next()
		switch op.Kind {
		case workload.OpGet:
			if _, err := inst.Store.Get(op.Key); err != nil {
				return nil, err
			}
		case workload.OpPut:
			if err := inst.Store.Put(op.Key, op.Value); err != nil {
				return nil, err
			}
		}
	}
	elapsed := time.Since(start)
	snap, err := inst.Stats()
	if err != nil {
		return nil, err
	}
	rom, err := inst.ROM()
	if err != nil {
		return nil, err
	}
	return &ProductRun{
		Name:      name,
		Features:  inst.Configuration.SelectedNames(),
		Ops:       n,
		Seconds:   elapsed.Seconds(),
		OpsPerSec: float64(n) / elapsed.Seconds(),
		GetP50Ns:  snap.Access.GetLatency.P50(),
		GetP99Ns:  snap.Access.GetLatency.P99(),
		PutP50Ns:  snap.Access.PutLatency.P50(),
		PutP99Ns:  snap.Access.PutLatency.P99(),
		ROM:       rom,
		RAM:       inst.RAM(),
		Stats:     snap,
	}, nil
}

// B1Feedback is the derivation closing the feedback loop: the measured
// latency quantiles become per-feature costs, and the solver derives
// the product predicted to minimize them.
type B1Feedback struct {
	Property         string   `json:"property"`
	MeasuredProducts int      `json:"measured_products"`
	Required         []string `json:"required"`
	DerivedFeatures  []string `json:"derived_features"`
	PredictedValue   int      `json:"predicted_value"`
}

// B1Result is the Statistics-feature benchmark: instrumented product
// runs plus the measured-NFP derivation.
type B1Result struct {
	Ops      int          `json:"ops_per_product"`
	Seed     int64        `json:"seed"`
	Products []ProductRun `json:"products"`
	Feedback B1Feedback   `json:"feedback"`
}

// B1 measures the representative FAME products with the Statistics
// feature composed, records throughput and latency quantiles into the
// NFP store, and derives the predicted-fastest product containing
// Put+Get from the fitted per-feature latency model (paper Sec. 3.2's
// feedback approach running on real measurements).
func B1(n int, seed int64) (*B1Result, error) {
	m := core.FAMEModel()
	store := nfp.NewStore(m)
	res := &B1Result{Ops: n, Seed: seed}
	for _, p := range core.FAMEProducts() {
		run, err := RunProduct(p.Name, p.Features, n, seed)
		if err != nil {
			return nil, fmt.Errorf("B1 %s: %w", p.Name, err)
		}
		res.Products = append(res.Products, *run)
		cfg, err := m.Product(run.Features...)
		if err != nil {
			return nil, err
		}
		store.Record(cfg, map[nfp.Property]float64{
			nfp.ROM:        float64(run.ROM),
			nfp.RAM:        float64(run.RAM),
			nfp.Throughput: run.OpsPerSec,
			nfp.LatencyP50: run.GetP50Ns,
			nfp.LatencyP99: run.GetP99Ns,
		})
	}

	// Closing the loop: fitted latency weights become the solver's cost
	// table, and derivation minimizes a measured property.
	required := []string{"Put", "Get"}
	tab, err := store.Table(nfp.LatencyP50)
	if err != nil {
		return nil, err
	}
	derived, err := solver.BranchAndBound(solver.Request{Model: m, Table: tab, Required: required})
	if err != nil {
		return nil, err
	}
	res.Feedback = B1Feedback{
		Property:         string(nfp.LatencyP50),
		MeasuredProducts: len(store.Measurements()),
		Required:         required,
		DerivedFeatures:  derived.Config.SelectedNames(),
		PredictedValue:   derived.ROM,
	}
	return res, nil
}

// FormatB1 renders the B1 result as text.
func FormatB1(r *B1Result) string {
	var b strings.Builder
	b.WriteString("B1 — Statistics feature: instrumented products and the measured-NFP loop\n")
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "product\tops/s\tget p50 ns\tget p99 ns\tput p50 ns\tbuffer hit%\twal syncs")
	for _, p := range r.Products {
		hitPct := "-"
		if total := p.Stats.Buffer.Hits + p.Stats.Buffer.Misses; total > 0 {
			hitPct = fmt.Sprintf("%.1f", 100*float64(p.Stats.Buffer.Hits)/float64(total))
		}
		fmt.Fprintf(w, "%s\t%.0f\t%.0f\t%.0f\t%.0f\t%s\t%d\n",
			p.Name, p.OpsPerSec, p.GetP50Ns, p.GetP99Ns, p.PutP50Ns,
			hitPct, p.Stats.Txn.WalSyncs)
	}
	w.Flush()
	fmt.Fprintf(&b, "feedback: min %s product over %d measurements, required %v:\n  %v (predicted %d ns)\n",
		r.Feedback.Property, r.Feedback.MeasuredProducts, r.Feedback.Required,
		r.Feedback.DerivedFeatures, r.Feedback.PredictedValue)
	return b.String()
}

// WriteJSON emits the machine-readable benchmark report (BENCH_1.json).
func (r *B1Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// StatsDump runs the standard mix over the full product with Statistics
// composed and returns the Prometheus text exposition of its metrics
// (the fame-bench -stats flag).
func StatsDump(n int) (string, error) {
	full := core.FAMEProducts()[len(core.FAMEProducts())-1]
	run, err := RunProduct(full.Name, full.Features, n, 23)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	if err := run.Stats.WritePrometheus(&b); err != nil {
		return "", err
	}
	return b.String(), nil
}
