package bench

// Benchmark B3: the GroupCommit feature under concurrent committers.
//
// Two transactional products — ForceCommit and GroupCommit, both with
// the Locking feature — run the same commit-heavy workload at 1, 4 and
// 16 committer goroutines over a delayed-sync device (osal.DelayFS
// charges a flash-style latency per WriteAt and a much larger one per
// Sync). ForceCommit pays one sync per transaction, so its throughput
// is pinned at 1/syncLatency no matter how many committers queue up.
// The group-commit pipeline lets the leader coalesce every staged
// transaction into ONE WriteAt and ONE Sync, so syncs grow sublinearly
// in commits and throughput scales with the batch size. The
// 16-committer measurements are fed to the NFP store so the greedy
// deriver re-derives GroupCommit from the measurements alone.

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"text/tabwriter"
	"time"

	"famedb/internal/composer"
	"famedb/internal/core"
	"famedb/internal/nfp"
	"famedb/internal/osal"
	"famedb/internal/solver"
)

// B3Config fixes the scenario; the defaults model a managed-NAND device
// (page program ~20us, flush barrier ~400us).
type B3Config struct {
	Ops        int           // transactions per measured point
	Seed       int64         // reserved for workload shuffling
	GroupBatch int           // GroupCommit batch size
	WriteDelay time.Duration // device latency per WriteAt
	SyncDelay  time.Duration // device latency per Sync
	ValueBytes int           // payload per transaction
}

func defaultB3Config(ops int, seed int64) B3Config {
	if ops < 512 {
		ops = 512
	}
	return B3Config{
		Ops:        ops,
		Seed:       seed,
		GroupBatch: 16,
		WriteDelay: 20 * time.Microsecond,
		SyncDelay:  400 * time.Microsecond,
		ValueBytes: 64,
	}
}

// B3Point is one measured (protocol, committers) cell.
type B3Point struct {
	Protocol      string  `json:"protocol"` // "ForceCommit" or "GroupCommit"
	Goroutines    int     `json:"goroutines"`
	Commits       int     `json:"commits"`
	Seconds       float64 `json:"seconds"`
	CommitsPerSec float64 `json:"commits_per_sec"`
	// LogSyncs is the durable-sync count for the whole point; the
	// sublinearity claim is LogSyncs << Commits under GroupCommit.
	LogSyncs       int64   `json:"log_syncs"`
	SyncsPerCommit float64 `json:"syncs_per_commit"`
	// BatchMean/BatchP99 summarize the commits-per-sync histogram.
	BatchMean float64 `json:"batch_mean"`
	BatchP99  float64 `json:"batch_p99"`
	// StallP99Us is the 99th percentile of how long a follower waited
	// on its group-commit leader, microseconds.
	StallP99Us float64 `json:"stall_p99_us"`
}

// B3Feedback closes the loop for the commit NFP: the 16-committer
// measurements land in an nfp.Store and the greedy deriver runs against
// the fitted signed latency table.
type B3Feedback struct {
	Property         string   `json:"property"`
	MeasuredProducts int      `json:"measured_products"`
	Required         []string `json:"required"`
	DerivedFeatures  []string `json:"derived_features"`
	// SelectedGroupCommit reports whether the deriver picked the
	// GroupCommit protocol on the strength of the measurements alone.
	SelectedGroupCommit bool `json:"selected_group_commit"`
	// GroupCommitThroughputWeight is the fitted per-feature contribution
	// of GroupCommit to commit throughput (txns/s).
	GroupCommitThroughputWeight float64 `json:"group_commit_throughput_weight"`
	// GroupCommitLatencyWeightNs is the (negative) fitted contribution
	// to mean commit latency, the signed cost the deriver minimized.
	GroupCommitLatencyWeightNs float64 `json:"group_commit_latency_weight_ns"`
}

// B3Result is the machine-readable report (BENCH_3.json).
type B3Result struct {
	Ops          int       `json:"ops_per_point"`
	Seed         int64     `json:"seed"`
	GroupBatch   int       `json:"group_batch"`
	WriteDelayUs int       `json:"write_delay_us"`
	SyncDelayUs  int       `json:"sync_delay_us"`
	Points       []B3Point `json:"points"`
	// SpeedupAt16 is GroupCommit over ForceCommit commit throughput at
	// 16 committers — the number the acceptance criterion gates on.
	SpeedupAt16 float64    `json:"speedup_at_16"`
	Feedback    B3Feedback `json:"feedback"`
}

// b3Features is the measured product for one protocol. Both products
// carry Locking (ForceCommit rides the pipeline as the degenerate
// one-transaction batch), so the fitted delta isolates the protocol.
func b3Features(group bool) []string {
	fs := []string{
		"Linux", "BPlusTree", "BufferManager", "LRU", "DynamicAlloc",
		"Put", "Get", "Transaction", "Locking", "Statistics",
	}
	if group {
		fs = append(fs, "GroupCommit")
	} else {
		fs = append(fs, "ForceCommit")
	}
	return fs
}

// b3Run measures one (protocol, committers) point: g workers share
// cfg.Ops single-put transactions over a fresh instance on the delayed
// device.
func b3Run(cfg B3Config, group bool, g int) (B3Point, error) {
	name := "ForceCommit"
	if group {
		name = "GroupCommit"
	}
	pt := B3Point{Protocol: name, Goroutines: g, Commits: cfg.Ops}

	fs := osal.NewDelayFS(osal.NewMemFS(), cfg.WriteDelay, cfg.SyncDelay)
	inst, err := composer.ComposeProduct(
		composer.Options{FS: fs, GroupCommitBatch: cfg.GroupBatch},
		b3Features(group)...)
	if err != nil {
		return pt, err
	}
	value := make([]byte, cfg.ValueBytes)
	for i := range value {
		value[i] = byte(i)
	}

	errs := make(chan error, g)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < g; w++ {
		n := cfg.Ops / g
		if w < cfg.Ops%g {
			n++
		}
		wg.Add(1)
		go func(w, n int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				tx := inst.Txn.Begin()
				key := fmt.Sprintf("w%02d-k%07d", w, i)
				if err := tx.Put([]byte(key), value); err != nil {
					errs <- err
					return
				}
				if err := tx.Commit(); err != nil {
					errs <- err
					return
				}
			}
		}(w, n)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		inst.Close()
		return pt, err
	}

	pt.LogSyncs = inst.Txn.LogSyncs()
	snap, err := inst.Stats()
	if err != nil {
		inst.Close()
		return pt, err
	}
	if err := inst.Close(); err != nil {
		return pt, err
	}

	pt.Seconds = elapsed.Seconds()
	pt.CommitsPerSec = float64(cfg.Ops) / elapsed.Seconds()
	if cfg.Ops > 0 {
		pt.SyncsPerCommit = float64(pt.LogSyncs) / float64(cfg.Ops)
	}
	pt.BatchMean = snap.Txn.CommitBatch.Mean()
	pt.BatchP99 = snap.Txn.CommitBatch.P99()
	pt.StallP99Us = snap.Txn.CommitStall.P99() / 1e3
	return pt, nil
}

// B3 runs the concurrent commit benchmark and closes the feedback loop:
// the measured 16-committer products land in an NFP store, and the
// greedy deriver picks the commit protocol minimizing measured commit
// latency.
func B3(n int, seed int64) (*B3Result, error) {
	cfg := defaultB3Config(n, seed)
	res := &B3Result{
		Ops:          cfg.Ops,
		Seed:         cfg.Seed,
		GroupBatch:   cfg.GroupBatch,
		WriteDelayUs: int(cfg.WriteDelay / time.Microsecond),
		SyncDelayUs:  int(cfg.SyncDelay / time.Microsecond),
	}

	m := core.FAMEModel()
	store := nfp.NewStore(m)
	var at16 [2]float64
	for _, group := range []bool{false, true} {
		for _, g := range []int{1, 4, 16} {
			pt, err := b3Run(cfg, group, g)
			if err != nil {
				return nil, fmt.Errorf("B3 %s/%d: %w", pt.Protocol, g, err)
			}
			res.Points = append(res.Points, pt)
			if g == 16 {
				if group {
					at16[1] = pt.CommitsPerSec
				} else {
					at16[0] = pt.CommitsPerSec
				}
				// Mean commit latency with g committers in flight is
				// g/throughput — the property the deriver minimizes.
				err := nfp.RecordMeasurement(store, b3Features(group), map[nfp.Property]float64{
					nfp.CommitThroughput: pt.CommitsPerSec,
					nfp.LatencyP50:       float64(g) / pt.CommitsPerSec * 1e9,
				})
				if err != nil {
					return nil, err
				}
			}
		}
	}
	if at16[0] > 0 {
		res.SpeedupAt16 = at16[1] / at16[0]
	}

	tab, err := store.SignedTable(nfp.LatencyP50)
	if err != nil {
		return nil, err
	}
	required := []string{"Put", "Get", "BufferManager", "Linux", "Transaction"}
	derived, err := solver.Greedy(solver.Request{Model: m, Table: tab, Required: required})
	if err != nil {
		return nil, err
	}
	if err := store.Fit(nfp.CommitThroughput); err != nil {
		return nil, err
	}
	tw, _ := store.FeatureWeight(nfp.CommitThroughput, "GroupCommit")
	lw, _ := store.FeatureWeight(nfp.LatencyP50, "GroupCommit")
	res.Feedback = B3Feedback{
		Property:                    string(nfp.LatencyP50),
		MeasuredProducts:            len(store.Measurements()),
		Required:                    required,
		DerivedFeatures:             derived.Config.SelectedNames(),
		SelectedGroupCommit:         derived.Config.Has("GroupCommit"),
		GroupCommitThroughputWeight: tw,
		GroupCommitLatencyWeightNs:  lw,
	}
	return res, nil
}

// FormatB3 renders the B3 result as text.
func FormatB3(r *B3Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "B3 — GroupCommit: pipelined commits on a delayed-sync device (batch %d, write %dus, sync %dus)\n",
		r.GroupBatch, r.WriteDelayUs, r.SyncDelayUs)
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "protocol\tcommitters\tcommits/s\tsyncs\tsyncs/commit\tbatch mean\tstall p99 us")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%s\t%d\t%.0f\t%d\t%.3f\t%.1f\t%.0f\n",
			p.Protocol, p.Goroutines, p.CommitsPerSec, p.LogSyncs,
			p.SyncsPerCommit, p.BatchMean, p.StallP99Us)
	}
	w.Flush()
	fmt.Fprintf(&b, "speedup at 16 committers: %.2fx\n", r.SpeedupAt16)
	fmt.Fprintf(&b, "feedback: min %s via greedy over %d measurements, required %v:\n  %v\n",
		r.Feedback.Property, r.Feedback.MeasuredProducts, r.Feedback.Required,
		r.Feedback.DerivedFeatures)
	fmt.Fprintf(&b, "  GroupCommit selected: %v (commit-throughput weight %+.0f txns/s, latency weight %+.0f ns)\n",
		r.Feedback.SelectedGroupCommit, r.Feedback.GroupCommitThroughputWeight,
		r.Feedback.GroupCommitLatencyWeightNs)
	return b.String()
}

// WriteJSON emits the machine-readable benchmark report (BENCH_3.json).
func (r *B3Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
