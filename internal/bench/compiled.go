package bench

// Benchmark B8: the CompiledQueries feature's statement latency and its
// NFP feedback.
//
// Two otherwise identical SQL products — one interpreting every
// statement (parse, plan, execute), one composing CompiledQueries — run
// the same read workloads over a preloaded table: point lookups by
// primary key, bounded range scans, and filtered full scans over a
// non-indexed column. The compiled product is measured twice: on the
// unprepared Exec path, where the shape-keyed plan cache normalizes
// each statement's literals away and reuses a compiled plan (clients
// still pay for building the SQL string), and on the prepared path,
// where one shared *Stmt executes closure-compiled plans with bound
// arguments — zero parsing, zero planning, and for the pk-equality
// shape a fused point lookup. Each (workload, mode) cell is swept at
// 1, 4 and 16 goroutines; the prepared cells share a single *Stmt
// across all goroutines, exercising the statement latch.
//
// The 16-goroutine point-lookup measurements close the paper's feedback
// loop: both variants' throughput and statement latency feed the NFP
// store, the signed fitted table gives CompiledQueries a negative
// statement-latency weight, and the greedy deriver minimizing measured
// statement latency selects CompiledQueries on its own. The ROM side
// prices it right back out: under a budget that fits the SQL base
// product but not the closure compiler and plan cache, requiring
// CompiledQueries makes derivation infeasible.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"text/tabwriter"
	"time"

	"famedb/internal/composer"
	"famedb/internal/core"
	"famedb/internal/footprint"
	"famedb/internal/nfp"
	"famedb/internal/solver"
	"famedb/internal/sql"
	"famedb/internal/stats"
	"famedb/internal/types"
)

// B8Config fixes the scenario.
type B8Config struct {
	Ops      int   // statements per measured point, across goroutines
	Seed     int64 // reserved for workload shuffling
	Rows     int   // preloaded table rows
	Span     int   // pk width of one range scan
	ScoreMod int   // score column values are i % ScoreMod
	ScoreMin int   // filtered scans select score > ScoreMin
}

func defaultB8Config(ops int, seed int64) B8Config {
	if ops < 2048 {
		ops = 2048
	}
	return B8Config{
		Ops:      ops,
		Seed:     seed,
		Rows:     2048,
		Span:     32,
		ScoreMod: 100,
		ScoreMin: 89, // ~10% of rows survive the filter
	}
}

// The three execution modes of the sweep.
const (
	b8Interpreted = "interpreted" // no CompiledQueries: parse+plan every Exec
	b8Cached      = "cached"      // CompiledQueries, unprepared Exec: plan-cache hits
	b8Prepared    = "prepared"    // CompiledQueries, shared Stmt.Exec: zero-parse
)

// The three read workloads.
const (
	b8Point    = "point"    // SELECT by pk equality
	b8Range    = "range"    // bounded pk range scan
	b8Filtered = "filtered" // full scan with a non-indexed predicate
)

var b8Goroutines = []int{1, 4, 16}

// B8Point is one measured (workload, mode, goroutines) cell.
type B8Point struct {
	Workload   string  `json:"workload"`
	Mode       string  `json:"mode"`
	Goroutines int     `json:"goroutines"`
	Ops        int     `json:"ops"`
	Seconds    float64 `json:"seconds"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	// Per-statement wall-time quantiles, nanoseconds.
	P50Ns float64 `json:"p50_ns"`
	P99Ns float64 `json:"p99_ns"`
	// Plan-cache traffic of the run; zero outside cached mode.
	PlanHits   int64 `json:"plan_cache_hits,omitempty"`
	PlanMisses int64 `json:"plan_cache_misses,omitempty"`
	// Access paths taken, from the Statistics registry.
	PointLookups int64 `json:"point_lookups,omitempty"`
	IndexScans   int64 `json:"index_scans,omitempty"`
	FullScans    int64 `json:"full_scans,omitempty"`
}

// B8Speedup compares the compiled modes against interpreted execution
// at one (workload, goroutines) cell.
type B8Speedup struct {
	Workload       string  `json:"workload"`
	Goroutines     int     `json:"goroutines"`
	InterpretedSec float64 `json:"interpreted_ops_per_sec"`
	CachedSec      float64 `json:"cached_ops_per_sec"`
	PreparedSec    float64 `json:"prepared_ops_per_sec"`
	CachedRatio    float64 `json:"cached_ratio"`
	PreparedRatio  float64 `json:"prepared_ratio"`
}

// B8Feedback is the closed loop: measured statement latency derives
// CompiledQueries, and a tight ROM budget prices it back out.
type B8Feedback struct {
	Property         string   `json:"property"`
	MeasuredProducts int      `json:"measured_products"`
	Required         []string `json:"required"`
	DerivedFeatures  []string `json:"derived_features"`
	// SelectedCompiled reports whether the latency-minimizing greedy
	// deriver picked CompiledQueries from its negative fitted weight.
	SelectedCompiled bool `json:"selected_compiled_queries"`
	// CompiledLatencyWeightNs is the fitted per-feature contribution of
	// CompiledQueries to statement p50 latency (negative: it helps).
	CompiledLatencyWeightNs float64 `json:"compiled_latency_weight_ns"`
	// The ROM side: the SQL base product's footprint, the feature's
	// footprint delta, and the budget under which requiring it fails.
	BaseROM                int  `json:"base_rom_bytes"`
	CompiledROM            int  `json:"compiled_queries_rom_bytes"`
	TightROMBudget         int  `json:"tight_rom_budget_bytes"`
	InfeasibleWithCompiled bool `json:"infeasible_with_compiled_queries"`
}

// B8Result is the machine-readable report (BENCH_8.json).
type B8Result struct {
	Ops      int         `json:"ops_per_point"`
	Seed     int64       `json:"seed"`
	Rows     int         `json:"rows"`
	Span     int         `json:"range_span"`
	Points   []B8Point   `json:"points"`
	Speedups []B8Speedup `json:"speedups"`
	Feedback B8Feedback  `json:"feedback"`
}

// b8Features is the measured product: the optimized SQL stack with
// Statistics for the plan counters; the compiled variant adds
// CompiledQueries.
func b8Features(compiled bool) []string {
	fs := []string{
		"Linux", "BPlusTree", "BufferManager", "LRU", "DynamicAlloc",
		"ShardedBuffer", "Put", "Get",
		"Optimizer", "SQLEngine", "Statistics",
	}
	if compiled {
		fs = append(fs, "CompiledQueries")
	}
	return fs
}

// b8Load composes one product and preloads the benchmark table.
func b8Load(cfg B8Config, compiled bool) (*composer.Instance, error) {
	inst, err := composer.ComposeProduct(
		composer.Options{CachePages: 4096, CacheShards: 64}, b8Features(compiled)...)
	if err != nil {
		return nil, err
	}
	if _, err := inst.SQL.Exec("CREATE TABLE bench (id INT PRIMARY KEY, v TEXT, score INT)"); err != nil {
		inst.Close()
		return nil, err
	}
	const batch = 64
	for lo := 0; lo < cfg.Rows; lo += batch {
		var sb strings.Builder
		sb.WriteString("INSERT INTO bench VALUES ")
		for i := lo; i < lo+batch && i < cfg.Rows; i++ {
			if i > lo {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "(%d, 'row-%07d', %d)", i, i, i%cfg.ScoreMod)
		}
		if _, err := inst.SQL.Exec(sb.String()); err != nil {
			inst.Close()
			return nil, err
		}
	}
	return inst, nil
}

// b8QueryText builds the i-th statement of one workload as SQL text
// with literals — what the interpreted and plan-cached modes execute.
func b8QueryText(cfg B8Config, workload string, g, i int) string {
	k := (g*2654435761 + i*97) % cfg.Rows
	switch workload {
	case b8Point:
		return fmt.Sprintf("SELECT v FROM bench WHERE id = %d", k)
	case b8Range:
		lo := k % (cfg.Rows - cfg.Span)
		return fmt.Sprintf("SELECT v FROM bench WHERE id >= %d AND id < %d", lo, lo+cfg.Span)
	default:
		return fmt.Sprintf("SELECT id FROM bench WHERE score > %d", cfg.ScoreMin)
	}
}

// b8PreparedText is the placeholder form of a workload's statement.
func b8PreparedText(workload string) string {
	switch workload {
	case b8Point:
		return "SELECT v FROM bench WHERE id = ?"
	case b8Range:
		return "SELECT v FROM bench WHERE id >= ? AND id < ?"
	default:
		return "SELECT id FROM bench WHERE score > ?"
	}
}

// b8Args builds the same i-th statement as bound arguments for the
// shared prepared statement.
func b8Args(cfg B8Config, workload string, g, i int) []types.Value {
	k := (g*2654435761 + i*97) % cfg.Rows
	switch workload {
	case b8Point:
		return []types.Value{types.Int(int64(k))}
	case b8Range:
		lo := k % (cfg.Rows - cfg.Span)
		return []types.Value{types.Int(int64(lo)), types.Int(int64(lo + cfg.Span))}
	default:
		return []types.Value{types.Int(int64(cfg.ScoreMin))}
	}
}

// b8Run measures one (workload, mode, goroutines) point on a fresh
// product. In prepared mode all goroutines share one *Stmt.
func b8Run(cfg B8Config, workload, mode string, goroutines int) (B8Point, error) {
	pt := B8Point{Workload: workload, Mode: mode, Goroutines: goroutines, Ops: cfg.Ops}
	inst, err := b8Load(cfg, mode != b8Interpreted)
	if err != nil {
		return pt, err
	}
	defer inst.Close()

	var stmt *sql.Stmt
	if mode == b8Prepared {
		stmt, err = inst.SQL.Prepare(b8PreparedText(workload))
		if err != nil {
			return pt, err
		}
		defer stmt.Close()
	}

	before, err := inst.Stats()
	if err != nil {
		return pt, err
	}
	hist := stats.NewHistogram(stats.LatencyBounds())
	errs := make(chan error, goroutines)
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < goroutines; g++ {
		n := cfg.Ops / goroutines
		if g < cfg.Ops%goroutines {
			n++
		}
		wg.Add(1)
		go func(g, n int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				t0 := time.Now()
				var res *sql.Result
				var err error
				if stmt != nil {
					// All goroutines share this one statement: the compiled
					// plan runs with bound arguments, no parsing, no planning.
					res, err = stmt.Exec(b8Args(cfg, workload, g, i)...)
				} else {
					res, err = inst.SQL.Exec(b8QueryText(cfg, workload, g, i))
				}
				hist.Observe(time.Since(t0).Nanoseconds())
				if err != nil {
					errs <- err
					return
				}
				if workload != b8Filtered && len(res.Rows) == 0 {
					errs <- fmt.Errorf("%s/%s: empty result", workload, mode)
					return
				}
			}
		}(g, n)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		return pt, err
	}

	after, err := inst.Stats()
	if err != nil {
		return pt, err
	}
	d := after.Sub(before)
	h := hist.Snapshot()
	pt.Seconds = elapsed.Seconds()
	pt.OpsPerSec = float64(cfg.Ops) / elapsed.Seconds()
	pt.P50Ns = h.P50()
	pt.P99Ns = h.P99()
	pt.PlanHits = d.SQL.PlanHits
	pt.PlanMisses = d.SQL.PlanMisses
	pt.PointLookups = d.SQL.PointLookups
	pt.IndexScans = d.SQL.IndexScans
	pt.FullScans = d.SQL.FullScans
	return pt, nil
}

// B8 runs the CompiledQueries benchmark and closes the feedback loop:
// prepared and plan-cached execution are measured against interpreted
// execution across workloads and goroutine counts, and the NFP
// machinery prices the CompiledQueries feature under statement-latency
// and ROM objectives.
func B8(n int, seed int64) (*B8Result, error) {
	cfg := defaultB8Config(n, seed)
	res := &B8Result{Ops: cfg.Ops, Seed: cfg.Seed, Rows: cfg.Rows, Span: cfg.Span}

	m := core.FAMEModel()
	store := nfp.NewStore(m)
	type cell struct {
		workload   string
		goroutines int
	}
	byCell := map[cell]*B8Speedup{}
	for _, workload := range []string{b8Point, b8Range, b8Filtered} {
		for _, mode := range []string{b8Interpreted, b8Cached, b8Prepared} {
			for _, g := range b8Goroutines {
				pt, err := b8Run(cfg, workload, mode, g)
				if err != nil {
					return nil, fmt.Errorf("B8 %s/%s/%dg: %w", workload, mode, g, err)
				}
				res.Points = append(res.Points, pt)
				c := cell{workload, g}
				sp := byCell[c]
				if sp == nil {
					sp = &B8Speedup{Workload: workload, Goroutines: g}
					byCell[c] = sp
				}
				switch mode {
				case b8Interpreted:
					sp.InterpretedSec = pt.OpsPerSec
				case b8Cached:
					sp.CachedSec = pt.OpsPerSec
				case b8Prepared:
					sp.PreparedSec = pt.OpsPerSec
				}
				// Feed the loop at the acceptance cell: point lookups at 16
				// goroutines, one measurement per variant, differing only in
				// the CompiledQueries feature — interpreted execution for
				// the base product, prepared execution for the compiled one.
				if workload == b8Point && g == 16 &&
					(mode == b8Interpreted || mode == b8Prepared) {
					err := nfp.RecordMeasurement(store, b8Features(mode == b8Prepared),
						map[nfp.Property]float64{
							nfp.Throughput: pt.OpsPerSec,
							nfp.LatencyP50: pt.P50Ns,
							nfp.LatencyP99: pt.P99Ns,
						})
					if err != nil {
						return nil, err
					}
				}
			}
		}
	}
	for _, workload := range []string{b8Point, b8Range, b8Filtered} {
		for _, g := range b8Goroutines {
			sp := byCell[cell{workload, g}]
			if sp.InterpretedSec > 0 {
				sp.CachedRatio = sp.CachedSec / sp.InterpretedSec
				sp.PreparedRatio = sp.PreparedSec / sp.InterpretedSec
			}
			res.Speedups = append(res.Speedups, *sp)
		}
	}

	// Latency side: the stakeholder's functional requirements are the
	// optimized SQL stack the workload exercises; the open question is
	// whether CompiledQueries rides along. Greedy over the signed fitted
	// table selects it on its measured (negative) latency weight.
	tab, err := store.SignedTable(nfp.LatencyP50)
	if err != nil {
		return nil, err
	}
	required := []string{"Linux", "BPlusTree", "Put", "Get", "Optimizer", "SQLEngine"}
	derived, err := solver.Greedy(solver.Request{Model: m, Table: tab, Required: required})
	if err != nil {
		return nil, err
	}
	lw, _ := store.FeatureWeight(nfp.LatencyP50, "CompiledQueries")

	// ROM side: size a budget that fits the SQL base product but not the
	// closure compiler and plan cache, then require CompiledQueries
	// under it.
	rom, err := footprint.Load("FAME-DBMS")
	if err != nil {
		return nil, err
	}
	base, err := solver.BranchAndBound(solver.Request{Model: m, Table: rom, Required: required})
	if err != nil {
		return nil, err
	}
	cqROM := rom.Features["CompiledQueries"]
	budget := base.ROM + cqROM/2
	_, infErr := solver.BranchAndBound(solver.Request{
		Model:    m,
		Table:    rom,
		Required: append(append([]string{}, required...), "CompiledQueries"),
		MaxROM:   budget,
	})

	res.Feedback = B8Feedback{
		Property:                string(nfp.LatencyP50),
		MeasuredProducts:        len(store.Measurements()),
		Required:                required,
		DerivedFeatures:         derived.Config.SelectedNames(),
		SelectedCompiled:        derived.Config.Has("CompiledQueries"),
		CompiledLatencyWeightNs: lw,
		BaseROM:                 base.ROM,
		CompiledROM:             cqROM,
		TightROMBudget:          budget,
		InfeasibleWithCompiled:  errors.Is(infErr, solver.ErrInfeasible),
	}
	if infErr != nil && !errors.Is(infErr, solver.ErrInfeasible) {
		return nil, infErr
	}
	return res, nil
}

// FormatB8 renders the B8 result as text.
func FormatB8(r *B8Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "B8 — CompiledQueries: interpreted vs plan-cached vs prepared execution, %d-row table\n", r.Rows)
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "workload\tmode\tgoroutines\tops/s\tp50 ns\tp99 ns\tcache hit/miss\tpoint\tindex\tfull")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%s\t%s\t%d\t%.0f\t%.0f\t%.0f\t%d/%d\t%d\t%d\t%d\n",
			p.Workload, p.Mode, p.Goroutines, p.OpsPerSec, p.P50Ns, p.P99Ns,
			p.PlanHits, p.PlanMisses, p.PointLookups, p.IndexScans, p.FullScans)
	}
	w.Flush()
	for _, sp := range r.Speedups {
		fmt.Fprintf(&b, "%8s at %2d goroutines: prepared %.2fx, cached %.2fx (interpreted %.0f/s)\n",
			sp.Workload, sp.Goroutines, sp.PreparedRatio, sp.CachedRatio, sp.InterpretedSec)
	}
	fmt.Fprintf(&b, "feedback: min %s via greedy over %d measurements, required %v:\n  %v\n",
		r.Feedback.Property, r.Feedback.MeasuredProducts, r.Feedback.Required,
		r.Feedback.DerivedFeatures)
	fmt.Fprintf(&b, "  CompiledQueries selected: %v (stmt-latency weight %+.0f ns)\n",
		r.Feedback.SelectedCompiled, r.Feedback.CompiledLatencyWeightNs)
	fmt.Fprintf(&b, "  ROM: base %d B, CompiledQueries +%d B; requiring it under a %d B budget infeasible: %v\n",
		r.Feedback.BaseROM, r.Feedback.CompiledROM, r.Feedback.TightROMBudget,
		r.Feedback.InfeasibleWithCompiled)
	return b.String()
}

// WriteJSON emits the machine-readable benchmark report (BENCH_8.json).
func (r *B8Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
