package bench

// Benchmark B6: the Monitor feature's overhead and its NFP feedback.
//
// Three otherwise identical group-commit products — Monitor off,
// Monitor sampling at 1s, Monitor sampling at 100ms — run the same
// mixed workload at 1, 4 and 16 goroutines over an in-memory device:
// each worker interleaves transactional puts (the group-commit write
// path needs Locking, which the product composes) with reads, while
// the sampler goroutine ticks concurrently and every read of the
// Statistics registry it takes contends with the workload's own
// recording. The monitored points also report the sampler's tick count
// and the watchdog's alert count, so the report shows the subsystem
// actually ran.
//
// The 16-goroutine measurements close the paper's feedback loop the
// same unflattering way as B4: Monitor's fitted latency weight is
// whatever the measurements say (usually a small positive cost), so
// the greedy deriver minimizing measured latency prices it in or out —
// and under a ROM budget tight enough for the base product alone,
// requiring Monitor makes derivation infeasible. Live observability is
// a feature with a price, and the NFP machinery quotes it.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"text/tabwriter"
	"time"

	"famedb/internal/composer"
	"famedb/internal/core"
	"famedb/internal/footprint"
	"famedb/internal/monitor"
	"famedb/internal/nfp"
	"famedb/internal/solver"
)

// B6Config fixes the scenario.
type B6Config struct {
	Ops        int   // operations per measured point (1/4 txn puts, 3/4 gets)
	Seed       int64 // reserved for workload shuffling
	ValueBytes int   // payload per put
}

func defaultB6Config(ops int, seed int64) B6Config {
	if ops < 2048 {
		ops = 2048
	}
	return B6Config{Ops: ops, Seed: seed, ValueBytes: 64}
}

// b6Intervals are the measured sampler periods: 0 composes the product
// without the Monitor feature.
var b6Intervals = []time.Duration{0, time.Second, 100 * time.Millisecond}

// B6Point is one measured (interval, goroutines) cell.
type B6Point struct {
	Monitor    bool    `json:"monitor"`
	IntervalMs float64 `json:"interval_ms"` // 0 when Monitor is off
	Goroutines int     `json:"goroutines"`
	Ops        int     `json:"ops"`
	Seconds    float64 `json:"seconds"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	// Latency quantiles from the Statistics feature's histograms,
	// nanoseconds, over the timed mixed phase.
	GetP50Ns    float64 `json:"get_p50_ns"`
	GetP99Ns    float64 `json:"get_p99_ns"`
	CommitP50Ns float64 `json:"commit_p50_ns"`
	CommitP99Ns float64 `json:"commit_p99_ns"`
	// Sampler activity during the timed phase; zero when Monitor is off.
	MonitorTicks  uint64 `json:"monitor_ticks"`
	MonitorAlerts uint64 `json:"monitor_alerts"`
}

// B6Overhead compares monitored vs unmonitored throughput at one
// concurrency.
type B6Overhead struct {
	Goroutines int     `json:"goroutines"`
	OffOpsSec  float64 `json:"off_ops_per_sec"`
	On1sOpsSec float64 `json:"on_1s_ops_per_sec"`
	On100msSec float64 `json:"on_100ms_ops_per_sec"`
	Pct1s      float64 `json:"overhead_1s_pct"`
	Pct100ms   float64 `json:"overhead_100ms_pct"`
}

// B6Feedback is the closed loop: measured latency prices Monitor in or
// out, and a tight ROM budget makes a Monitor-required derivation
// infeasible.
type B6Feedback struct {
	Property         string   `json:"property"`
	MeasuredProducts int      `json:"measured_products"`
	Required         []string `json:"required"`
	DerivedFeatures  []string `json:"derived_features"`
	// SelectedMonitor reports whether the latency-minimizing greedy
	// deriver kept Monitor.
	SelectedMonitor bool `json:"selected_monitor"`
	// MonitorLatencyWeightNs is the fitted per-feature contribution of
	// Monitor to p50 latency.
	MonitorLatencyWeightNs float64 `json:"monitor_latency_weight_ns"`
	// The ROM side: the base product's footprint, Monitor's footprint
	// delta, and the budget under which requiring Monitor fails.
	BaseROM               int  `json:"base_rom_bytes"`
	MonitorROM            int  `json:"monitor_rom_bytes"`
	TightROMBudget        int  `json:"tight_rom_budget_bytes"`
	InfeasibleWithMonitor bool `json:"infeasible_with_monitor"`
}

// B6Result is the machine-readable report (BENCH_6.json).
type B6Result struct {
	Ops        int          `json:"ops_per_point"`
	Seed       int64        `json:"seed"`
	ValueBytes int          `json:"value_bytes"`
	Points     []B6Point    `json:"points"`
	Overheads  []B6Overhead `json:"overheads"`
	Feedback   B6Feedback   `json:"feedback"`
}

// b6Features is the measured product: the thread-safe group-commit
// write path plus concurrent reads, with Statistics for the latency
// histograms and Monitor for the monitored variants.
func b6Features(monitored bool) []string {
	fs := []string{
		"Linux", "BPlusTree", "BufferManager", "LRU", "DynamicAlloc",
		"ShardedBuffer", "Put", "Get",
		"Transaction", "GroupCommit", "Locking", "Statistics",
	}
	if monitored {
		fs = append(fs, "Monitor")
	}
	return fs
}

// b6Run measures one (interval, goroutines) point: a sequential load
// phase, then g workers sharing cfg.Ops timed operations — every 4th a
// transactional put through the group-commit pipeline, the rest gets —
// with the sampler (when composed) ticking concurrently throughout.
func b6Run(cfg B6Config, interval time.Duration, g int) (B6Point, error) {
	monitored := interval > 0
	pt := B6Point{
		Monitor:    monitored,
		Goroutines: g,
		Ops:        cfg.Ops,
	}
	if monitored {
		pt.IntervalMs = float64(interval) / float64(time.Millisecond)
	}

	inst, err := composer.ComposeProduct(composer.Options{
		MonitorInterval: interval,
		// Watch the pipeline with a deliberately reachable stall rule so
		// the watchdog does real comparisons per tick, like a deployment
		// would.
		MonitorRules: monitor.Thresholds{CommitStallP99: 2 * time.Millisecond},
	}, b6Features(monitored)...)
	if err != nil {
		return pt, err
	}
	value := make([]byte, cfg.ValueBytes)
	for i := range value {
		value[i] = byte(i)
	}
	keys := cfg.Ops / 8
	if keys < 256 {
		keys = 256
	}
	for i := 0; i < keys; i++ {
		if err := inst.Store.Put([]byte(fmt.Sprintf("k%07d", i)), value); err != nil {
			inst.Close()
			return pt, err
		}
	}

	errs := make(chan error, g)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < g; w++ {
		n := cfg.Ops / g
		if w < cfg.Ops%g {
			n++
		}
		wg.Add(1)
		go func(w, n int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				if i%4 == 0 {
					// Each writer owns a disjoint key space, so reads of
					// the preloaded keys never race an in-place rewrite.
					tx := inst.Txn.Begin()
					if err := tx.Put([]byte(fmt.Sprintf("w%02d-%07d", w, i)), value); err != nil {
						errs <- err
						return
					}
					if err := tx.Commit(); err != nil {
						errs <- err
						return
					}
				} else if _, err := inst.Store.Get(
					[]byte(fmt.Sprintf("k%07d", (w*7919+i)%keys))); err != nil {
					errs <- err
					return
				}
			}
		}(w, n)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		inst.Close()
		return pt, err
	}

	snap, err := inst.Stats()
	if err != nil {
		inst.Close()
		return pt, err
	}
	if m := inst.Monitor(); m != nil {
		// One on-demand sample after the timed phase (short runs can end
		// before the first periodic tick), so the watchdog evaluated the
		// workload at least once and the tick count proves the subsystem
		// ran.
		m.Tick()
		pt.MonitorTicks = m.Ticks()
		pt.MonitorAlerts = m.Alerts()
	}
	if err := inst.Close(); err != nil {
		return pt, err
	}

	pt.Seconds = elapsed.Seconds()
	pt.OpsPerSec = float64(cfg.Ops) / elapsed.Seconds()
	pt.GetP50Ns = snap.Access.GetLatency.P50()
	pt.GetP99Ns = snap.Access.GetLatency.P99()
	pt.CommitP50Ns = snap.Txn.CommitLatency.P50()
	pt.CommitP99Ns = snap.Txn.CommitLatency.P99()
	return pt, nil
}

// B6 runs the monitoring-overhead benchmark and closes the feedback
// loop: the sampler's cost is measured at three periods and the NFP
// machinery prices the Monitor feature under latency and ROM
// objectives.
func B6(n int, seed int64) (*B6Result, error) {
	cfg := defaultB6Config(n, seed)
	res := &B6Result{Ops: cfg.Ops, Seed: cfg.Seed, ValueBytes: cfg.ValueBytes}

	m := core.FAMEModel()
	store := nfp.NewStore(m)
	byG := map[int]*B6Overhead{}
	gs := []int{1, 4, 16}
	for _, interval := range b6Intervals {
		for _, g := range gs {
			pt, err := b6Run(cfg, interval, g)
			if err != nil {
				return nil, fmt.Errorf("B6 interval=%v/%d: %w", interval, g, err)
			}
			res.Points = append(res.Points, pt)
			ov := byG[g]
			if ov == nil {
				ov = &B6Overhead{Goroutines: g}
				byG[g] = ov
			}
			switch interval {
			case 0:
				ov.OffOpsSec = pt.OpsPerSec
			case time.Second:
				ov.On1sOpsSec = pt.OpsPerSec
			default:
				ov.On100msSec = pt.OpsPerSec
			}
			// Feed the loop at the highest concurrency: one measurement
			// without Monitor, one with it sampling at full tilt. The two
			// monitored variants share a feature set, so only the faster-
			// sampling one (the worst case) is recorded.
			if g == 16 && interval != time.Second {
				err := nfp.RecordMeasurement(store, b6Features(interval > 0), map[nfp.Property]float64{
					nfp.Throughput: pt.OpsPerSec,
					nfp.LatencyP50: pt.GetP50Ns,
					nfp.LatencyP99: pt.GetP99Ns,
				})
				if err != nil {
					return nil, err
				}
			}
		}
	}
	for _, g := range gs {
		ov := byG[g]
		if ov.OffOpsSec > 0 {
			ov.Pct1s = (ov.OffOpsSec - ov.On1sOpsSec) / ov.OffOpsSec * 100
			ov.Pct100ms = (ov.OffOpsSec - ov.On100msSec) / ov.OffOpsSec * 100
		}
		res.Overheads = append(res.Overheads, *ov)
	}

	// Latency side: greedy over the signed fitted table decides whether
	// the measured sampler cost justifies carrying Monitor.
	tab, err := store.SignedTable(nfp.LatencyP50)
	if err != nil {
		return nil, err
	}
	required := []string{"Linux", "BPlusTree", "Put", "Get"}
	derived, err := solver.Greedy(solver.Request{Model: m, Table: tab, Required: required})
	if err != nil {
		return nil, err
	}
	lw, _ := store.FeatureWeight(nfp.LatencyP50, "Monitor")

	// ROM side: size a budget that fits the minimal base product but not
	// the monitoring subsystem, then require Monitor under it.
	rom, err := footprint.Load("FAME-DBMS")
	if err != nil {
		return nil, err
	}
	base, err := solver.BranchAndBound(solver.Request{Model: m, Table: rom, Required: required})
	if err != nil {
		return nil, err
	}
	monROM := rom.Features["Monitor"]
	budget := base.ROM + monROM/2
	_, infErr := solver.BranchAndBound(solver.Request{
		Model:    m,
		Table:    rom,
		Required: append(append([]string{}, required...), "Monitor"),
		MaxROM:   budget,
	})

	res.Feedback = B6Feedback{
		Property:               string(nfp.LatencyP50),
		MeasuredProducts:       len(store.Measurements()),
		Required:               required,
		DerivedFeatures:        derived.Config.SelectedNames(),
		SelectedMonitor:        derived.Config.Has("Monitor"),
		MonitorLatencyWeightNs: lw,
		BaseROM:                base.ROM,
		MonitorROM:             monROM,
		TightROMBudget:         budget,
		InfeasibleWithMonitor:  errors.Is(infErr, solver.ErrInfeasible),
	}
	if infErr != nil && !errors.Is(infErr, solver.ErrInfeasible) {
		return nil, infErr
	}
	return res, nil
}

// FormatB6 renders the B6 result as text.
func FormatB6(r *B6Result) string {
	var b strings.Builder
	fmt.Fprintln(&b, "B6 — Monitor: live-sampling overhead, group-commit mixed load (1 put : 3 gets)")
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "monitor\tinterval\tgoroutines\tops/s\tget p50 ns\tcommit p50 ns\tticks\talerts")
	for _, p := range r.Points {
		interval := "-"
		if p.Monitor {
			interval = fmt.Sprintf("%.0fms", p.IntervalMs)
		}
		fmt.Fprintf(w, "%v\t%s\t%d\t%.0f\t%.0f\t%.0f\t%d\t%d\n",
			p.Monitor, interval, p.Goroutines, p.OpsPerSec, p.GetP50Ns, p.CommitP50Ns,
			p.MonitorTicks, p.MonitorAlerts)
	}
	w.Flush()
	for _, ov := range r.Overheads {
		fmt.Fprintf(&b, "overhead at %2d goroutines: 1s sampling %+.1f%%, 100ms sampling %+.1f%%\n",
			ov.Goroutines, ov.Pct1s, ov.Pct100ms)
	}
	fmt.Fprintf(&b, "feedback: min %s via greedy over %d measurements, required %v:\n  %v\n",
		r.Feedback.Property, r.Feedback.MeasuredProducts, r.Feedback.Required,
		r.Feedback.DerivedFeatures)
	fmt.Fprintf(&b, "  Monitor selected: %v (latency weight %+.0f ns)\n",
		r.Feedback.SelectedMonitor, r.Feedback.MonitorLatencyWeightNs)
	fmt.Fprintf(&b, "  ROM: base %d B, Monitor +%d B; requiring Monitor under a %d B budget infeasible: %v\n",
		r.Feedback.BaseROM, r.Feedback.MonitorROM, r.Feedback.TightROMBudget,
		r.Feedback.InfeasibleWithMonitor)
	return b.String()
}

// WriteJSON emits the machine-readable benchmark report (BENCH_6.json).
func (r *B6Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
