package bench

import (
	"strings"
	"testing"
)

// The fault-survival harness and B5 run here with small budgets: the
// crash-point tests sweep every write op of a tiny workload, the B5
// test asserts the report's shape.

func TestCrashPointsCut(t *testing.T) {
	r, err := CrashPoints(CrashPointConfig{Commits: 6, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	if r.WriteOps < 8 {
		t.Fatalf("swept only %d crash points", r.WriteOps)
	}
	if !r.Ok() {
		t.Fatalf("invariant violations:\n%s", FormatCrashPoints(r))
	}
	if int64(r.Recovered) != r.WriteOps {
		t.Fatalf("recovered %d of %d points", r.Recovered, r.WriteOps)
	}
	if !strings.Contains(FormatCrashPoints(r), "all invariants held") {
		t.Fatal("format broken")
	}
}

func TestCrashPointsTorn(t *testing.T) {
	r, err := CrashPoints(CrashPointConfig{Commits: 6, Torn: true, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Ok() {
		t.Fatalf("invariant violations:\n%s", FormatCrashPoints(r))
	}
	// The sweep is only meaningful if tears actually fired.
	if r.Injected == 0 {
		t.Fatal("no torn write was ever injected")
	}
	if !strings.Contains(FormatCrashPoints(r), "tears fired") {
		t.Fatal("format broken")
	}
}

func TestB5Shape(t *testing.T) {
	r, err := B5(800, 23)
	if err != nil {
		t.Fatal(err)
	}
	// Two products × three sizes.
	if len(r.Points) != 6 {
		t.Fatalf("points = %d, want 6", len(r.Points))
	}
	for _, p := range r.Points {
		if p.CommitsPerSec <= 0 || p.GetsPerSec <= 0 {
			t.Errorf("point %+v: no throughput", p)
		}
		if p.RecoveredCommits != p.Records {
			t.Errorf("point checksums=%v/%d: recovered %d commits", p.Checksums, p.Records, p.RecoveredCommits)
		}
		if p.Checksums && p.ScrubbedPages == 0 {
			t.Errorf("trailered point %d scrubbed no pages", p.Records)
		}
		if !p.Checksums && p.ScrubbedPages != 0 {
			t.Errorf("plain point %d claims a scrub", p.Records)
		}
	}
	if len(r.Overheads) != len(r.Sizes) {
		t.Fatalf("overheads = %d, want %d", len(r.Overheads), len(r.Sizes))
	}
	// At these tiny sizes the measured latency delta is noise-bound, so
	// the fitted weight's SIGN can flip run to run; what must hold is
	// that the deriver's choice follows the measurement — a feature
	// priced as a cost gets excluded.
	if r.Feedback.ChecksumLatencyWeightNs > 0 && r.Feedback.SelectedChecksums {
		t.Errorf("deriver kept Checksums despite a +%.0f ns fitted weight",
			r.Feedback.ChecksumLatencyWeightNs)
	}
	if r.Feedback.ChecksumLatencyWeightNs < 0 && !r.Feedback.SelectedChecksums {
		t.Errorf("deriver dropped Checksums despite a %.0f ns fitted weight",
			r.Feedback.ChecksumLatencyWeightNs)
	}
	if !r.Feedback.InfeasibleWithChecksums {
		t.Errorf("requiring Checksums under budget %d with +%d B should be infeasible",
			r.Feedback.TightROMBudget, r.Feedback.ChecksumROM)
	}
	if r.Feedback.ChecksumROM <= 0 || r.Feedback.BaseROM <= 0 {
		t.Errorf("ROM table incomplete: %+v", r.Feedback)
	}
	if !strings.Contains(FormatB5(r), "Checksums selected:") {
		t.Fatal("format broken")
	}
}
