package bench

import (
	"strings"
	"testing"
)

// The replica crash harness is the tentpole invariant: every kill
// point must recover to a byte-exact primary prefix and catch up.

func TestReplicaCrashPointsBoundary(t *testing.T) {
	r, err := ReplicaCrashPoints(ReplicaCrashConfig{Commits: 8, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	if r.Points != r.Chunks+1 {
		t.Errorf("swept %d points for %d chunks, want every boundary", r.Points, r.Chunks)
	}
	if !r.Ok() {
		t.Fatalf("crash points failed:\n%s", FormatReplicaCrashPoints(r))
	}
	if r.Recovered != r.Points {
		t.Errorf("recovered %d of %d", r.Recovered, r.Points)
	}
	out := FormatReplicaCrashPoints(r)
	if !strings.Contains(out, "byte-exact") {
		t.Fatalf("format:\n%s", out)
	}
}

func TestReplicaCrashPointsTorn(t *testing.T) {
	r, err := ReplicaCrashPoints(ReplicaCrashConfig{Commits: 8, Torn: true, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Ok() {
		t.Fatalf("torn crash points failed:\n%s", FormatReplicaCrashPoints(r))
	}
	if r.Injected == 0 {
		t.Error("no tear ever fired; the sweep tested nothing")
	}
}

// TestB10Shape runs the full benchmark at a tiny op count and asserts
// the result's structure: all five scenarios, live replicas converged,
// the dead feed broken without stalling the workload, and the feedback
// loop pricing Replication's ROM closure.
func TestB10Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("network benchmark")
	}
	r, err := B10(4096, 23)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != len(b10Scenarios) {
		t.Fatalf("points = %d, want %d", len(r.Points), len(b10Scenarios))
	}
	byName := map[string]B10Point{}
	for _, p := range r.Points {
		byName[p.Scenario] = p
		if !p.Converged {
			t.Errorf("scenario %s did not converge", p.Scenario)
		}
	}
	if byName["2"].ShippedChunks == 0 {
		t.Error("no chunks shipped with two replicas")
	}
	if byName["1-dead"].DeadDropped == 0 {
		t.Error("dead replica dropped nothing")
	}
	if byName["no-repl"].ShippedChunks != 0 {
		t.Error("unreplicated product shipped chunks")
	}
	if !r.Feedback.InfeasibleWithReplication {
		t.Error("tight ROM budget did not exclude Replication")
	}
	if r.Feedback.ReplicationROMDelta <= 0 {
		t.Error("Replication ROM closure priced at zero")
	}
	if len(r.Crash) != 2 || !r.Ok() {
		t.Fatalf("crash sweeps: %+v", r.Crash)
	}
	out := FormatB10(r)
	for _, want := range []string{"B10", "1-dead", "crash-point harness"} {
		if !strings.Contains(out, want) {
			t.Fatalf("format missing %q:\n%s", want, out)
		}
	}
}
