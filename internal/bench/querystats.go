package bench

// Benchmark B9: the QueryStats feature's observation overhead and its
// NFP feedback.
//
// Two otherwise identical SQL products — one bare, one composing
// QueryStats — run the same mixed read workload over a preloaded
// table: each goroutine rotates through point lookups by primary key,
// bounded range scans, and filtered full scans over a non-indexed
// column. The instrumented product pays the full observation path on
// every statement: shape normalization, the striped profile registry
// (count, latency histogram, rows scanned/returned, pages visited),
// and the slow-query threshold check. Each mode is swept at 1, 4 and
// 16 goroutines; the 16-goroutine cell is the acceptance gate — the
// paper's zero-cost claim survives only if always-on statement
// profiling stays within a few percent of the bare product.
//
// The feedback loop closes both ways. Observability side: both
// variants' measurements feed the NFP store, with the unprofiled-
// statement count as the objective — the bare product leaves every
// statement unprofiled, the instrumented one none — so the signed
// fitted table gives QueryStats a negative weight and the greedy
// deriver minimizing unprofiled statements selects it on its own; the
// instrumented run also records the point-lookup shape's measured p99
// as the query_p99_ns NFP. ROM side: under a budget that fits the SQL
// base product but not the plan renderer and profile registry,
// requiring QueryStats makes derivation infeasible.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"text/tabwriter"
	"time"

	"famedb/internal/composer"
	"famedb/internal/core"
	"famedb/internal/footprint"
	"famedb/internal/nfp"
	"famedb/internal/solver"
	"famedb/internal/stats"
)

// B9Config fixes the scenario; the table layout matches B8 so the two
// benchmarks stress the same plans.
type B9Config struct {
	Ops      int   // statements per measured point, across goroutines
	Seed     int64 // reserved for workload shuffling
	Rows     int   // preloaded table rows
	Span     int   // pk width of one range scan
	ScoreMod int   // score column values are i % ScoreMod
	ScoreMin int   // filtered scans select score > ScoreMin
}

func defaultB9Config(ops int, seed int64) B9Config {
	if ops < 2048 {
		ops = 2048
	}
	return B9Config{
		Ops:      ops,
		Seed:     seed,
		Rows:     2048,
		Span:     32,
		ScoreMod: 100,
		ScoreMin: 89, // ~10% of rows survive the filter
	}
}

// The two products of the sweep.
const (
	b9Off = "off" // no QueryStats: bare execution
	b9On  = "on"  // QueryStats: every statement observed
)

var b9Goroutines = []int{1, 4, 16}

// B9Point is one measured (mode, goroutines) cell of the mixed load.
type B9Point struct {
	Mode       string  `json:"mode"`
	Goroutines int     `json:"goroutines"`
	Ops        int     `json:"ops"`
	Seconds    float64 `json:"seconds"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	// Per-statement wall-time quantiles, nanoseconds, measured by the
	// harness (not by the feature under test).
	P50Ns float64 `json:"p50_ns"`
	P99Ns float64 `json:"p99_ns"`
}

// B9Shape echoes one statement shape's profile from the instrumented
// 16-goroutine run, proving the registry attributed the whole load.
type B9Shape struct {
	Shape        string  `json:"shape"`
	Count        int64   `json:"count"`
	P99Ns        float64 `json:"p99_ns"`
	RowsScanned  int64   `json:"rows_scanned"`
	RowsReturned int64   `json:"rows_returned"`
	PagesVisited int64   `json:"pages_visited"`
}

// B9Overhead compares on vs off at one goroutine count.
type B9Overhead struct {
	Goroutines int     `json:"goroutines"`
	OffSec     float64 `json:"off_ops_per_sec"`
	OnSec      float64 `json:"on_ops_per_sec"`
	// Ratio is on/off throughput: 1.0 means free, 0.95 means the
	// observation path costs 5%.
	Ratio float64 `json:"ratio"`
}

// B9Feedback is the closed loop: the observability objective derives
// QueryStats, and a tight ROM budget prices it back out.
type B9Feedback struct {
	Property         string   `json:"property"`
	MeasuredProducts int      `json:"measured_products"`
	Required         []string `json:"required"`
	DerivedFeatures  []string `json:"derived_features"`
	// SelectedQueryStats reports whether the greedy deriver minimizing
	// unprofiled statements picked QueryStats from its fitted weight.
	SelectedQueryStats bool `json:"selected_query_stats"`
	// UnprofiledWeight is the fitted per-feature contribution of
	// QueryStats to the unprofiled-statement count (negative: with the
	// feature, nothing goes unprofiled).
	UnprofiledWeight float64 `json:"unprofiled_weight"`
	// QueryP99Ns is the point-lookup shape's p99 as measured by the
	// feature itself — the registry as an NFP sensor.
	QueryP99Ns float64 `json:"query_p99_ns"`
	// The ROM side: the SQL base product's footprint, the feature's
	// footprint delta, and the budget under which requiring it fails.
	BaseROM                  int  `json:"base_rom_bytes"`
	QueryStatsROM            int  `json:"query_stats_rom_bytes"`
	TightROMBudget           int  `json:"tight_rom_budget_bytes"`
	InfeasibleWithQueryStats bool `json:"infeasible_with_query_stats"`
}

// B9Result is the machine-readable report (BENCH_9.json).
type B9Result struct {
	Ops       int          `json:"ops_per_point"`
	Seed      int64        `json:"seed"`
	Rows      int          `json:"rows"`
	Span      int          `json:"range_span"`
	Points    []B9Point    `json:"points"`
	Overheads []B9Overhead `json:"overheads"`
	// Shapes is the per-shape attribution of the instrumented
	// 16-goroutine run, hottest first.
	Shapes   []B9Shape  `json:"shapes"`
	Slow     int        `json:"slow_queries_retained"`
	Feedback B9Feedback `json:"feedback"`
}

// b9Features is the measured product: the optimized SQL stack with
// Statistics; the instrumented variant adds QueryStats.
func b9Features(observed bool) []string {
	fs := []string{
		"Linux", "BPlusTree", "BufferManager", "LRU", "DynamicAlloc",
		"ShardedBuffer", "Put", "Get",
		"Optimizer", "SQLEngine", "Statistics",
	}
	if observed {
		fs = append(fs, "QueryStats")
	}
	return fs
}

// b9Load composes one product and preloads the benchmark table (same
// layout as B8).
func b9Load(cfg B9Config, observed bool) (*composer.Instance, error) {
	inst, err := composer.ComposeProduct(
		composer.Options{CachePages: 4096, CacheShards: 64}, b9Features(observed)...)
	if err != nil {
		return nil, err
	}
	if _, err := inst.SQL.Exec("CREATE TABLE bench (id INT PRIMARY KEY, v TEXT, score INT)"); err != nil {
		inst.Close()
		return nil, err
	}
	const batch = 64
	for lo := 0; lo < cfg.Rows; lo += batch {
		var sb strings.Builder
		sb.WriteString("INSERT INTO bench VALUES ")
		for i := lo; i < lo+batch && i < cfg.Rows; i++ {
			if i > lo {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "(%d, 'row-%07d', %d)", i, i, i%cfg.ScoreMod)
		}
		if _, err := inst.SQL.Exec(sb.String()); err != nil {
			inst.Close()
			return nil, err
		}
	}
	return inst, nil
}

// b9QueryText builds the i-th statement of the mixed load: each
// goroutine rotates point → range → filtered so every cell carries
// the same statement mix regardless of goroutine count.
func b9QueryText(cfg B9Config, g, i int) string {
	k := (g*2654435761 + i*97) % cfg.Rows
	switch i % 3 {
	case 0:
		return fmt.Sprintf("SELECT v FROM bench WHERE id = %d", k)
	case 1:
		lo := k % (cfg.Rows - cfg.Span)
		return fmt.Sprintf("SELECT v FROM bench WHERE id >= %d AND id < %d", lo, lo+cfg.Span)
	default:
		return fmt.Sprintf("SELECT id FROM bench WHERE score > %d", cfg.ScoreMin)
	}
}

// b9PointShape is the normalized shape the point lookups collapse to
// in the profile registry.
const b9PointShape = "SELECT v FROM bench WHERE id = ?"

// b9Run measures one (mode, goroutines) point on a fresh product and,
// for the instrumented product, returns its query snapshot.
func b9Run(cfg B9Config, observed bool, goroutines int) (B9Point, *stats.QuerySnapshot, error) {
	mode := b9Off
	if observed {
		mode = b9On
	}
	pt := B9Point{Mode: mode, Goroutines: goroutines, Ops: cfg.Ops}
	inst, err := b9Load(cfg, observed)
	if err != nil {
		return pt, nil, err
	}
	defer inst.Close()

	hist := stats.NewHistogram(stats.LatencyBounds())
	errs := make(chan error, goroutines)
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < goroutines; g++ {
		n := cfg.Ops / goroutines
		if g < cfg.Ops%goroutines {
			n++
		}
		wg.Add(1)
		go func(g, n int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				t0 := time.Now()
				res, err := inst.SQL.Exec(b9QueryText(cfg, g, i))
				hist.Observe(time.Since(t0).Nanoseconds())
				if err != nil {
					errs <- err
					return
				}
				if i%3 != 2 && len(res.Rows) == 0 {
					errs <- fmt.Errorf("B9 %s/%dg: empty result", mode, goroutines)
					return
				}
			}
		}(g, n)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		return pt, nil, err
	}

	h := hist.Snapshot()
	pt.Seconds = elapsed.Seconds()
	pt.OpsPerSec = float64(cfg.Ops) / elapsed.Seconds()
	pt.P50Ns = h.P50()
	pt.P99Ns = h.P99()

	var qs *stats.QuerySnapshot
	if observed {
		snap, err := inst.Stats()
		if err != nil {
			return pt, nil, err
		}
		qs = snap.Queries
		if qs == nil {
			return pt, nil, fmt.Errorf("B9: instrumented product has no query snapshot")
		}
	}
	return pt, qs, nil
}

// B9 runs the QueryStats benchmark and closes the feedback loop: the
// same mixed load with and without statement observation across
// goroutine counts, the per-shape attribution of the instrumented
// run, and the NFP machinery pricing the QueryStats feature under
// observability and ROM objectives.
func B9(n int, seed int64) (*B9Result, error) {
	cfg := defaultB9Config(n, seed)
	res := &B9Result{Ops: cfg.Ops, Seed: cfg.Seed, Rows: cfg.Rows, Span: cfg.Span}

	m := core.FAMEModel()
	store := nfp.NewStore(m)
	var queryP99 float64
	byG := map[int]*B9Overhead{}
	for _, observed := range []bool{false, true} {
		for _, g := range b9Goroutines {
			pt, qs, err := b9Run(cfg, observed, g)
			if err != nil {
				return nil, fmt.Errorf("B9 %s/%dg: %w", pt.Mode, g, err)
			}
			res.Points = append(res.Points, pt)
			ov := byG[g]
			if ov == nil {
				ov = &B9Overhead{Goroutines: g}
				byG[g] = ov
			}
			if observed {
				ov.OnSec = pt.OpsPerSec
			} else {
				ov.OffSec = pt.OpsPerSec
			}
			if observed && g == 16 {
				// Echo the registry's own attribution of the run, and read
				// the point shape's p99 off it — the feature as NFP sensor.
				for _, sh := range qs.Shapes {
					res.Shapes = append(res.Shapes, B9Shape{
						Shape:        sh.Shape,
						Count:        sh.Count,
						P99Ns:        sh.Latency.P99(),
						RowsScanned:  sh.RowsScanned,
						RowsReturned: sh.RowsReturned,
						PagesVisited: sh.PagesVisited,
					})
					if sh.Shape == b9PointShape {
						queryP99 = sh.Latency.P99()
					}
				}
				res.Slow = len(qs.Slow)
			}
			// Feed the loop at the acceptance cell: the mixed load at 16
			// goroutines, one measurement per variant, differing only in
			// QueryStats. The bare product leaves every statement
			// unprofiled; the instrumented one, none.
			if g == 16 {
				values := map[nfp.Property]float64{
					nfp.Throughput:      pt.OpsPerSec,
					nfp.LatencyP99:      pt.P99Ns,
					nfp.UnprofiledStmts: float64(cfg.Ops),
				}
				if observed {
					values[nfp.UnprofiledStmts] = 0
					values[nfp.QueryP99] = queryP99
				}
				if err := nfp.RecordMeasurement(store, b9Features(observed), values); err != nil {
					return nil, err
				}
			}
		}
	}
	for _, g := range b9Goroutines {
		ov := byG[g]
		if ov.OffSec > 0 {
			ov.Ratio = ov.OnSec / ov.OffSec
		}
		res.Overheads = append(res.Overheads, *ov)
	}

	// Observability side: the stakeholder requires the instrumented SQL
	// stack (both measured variants compose Statistics; the open
	// question is QueryStats alone) and asks the deriver to minimize
	// unprofiled statements. Greedy over the signed fitted table
	// selects QueryStats on its negative weight.
	tab, err := store.SignedTable(nfp.UnprofiledStmts)
	if err != nil {
		return nil, err
	}
	required := []string{"Linux", "BPlusTree", "Put", "Get", "Optimizer", "SQLEngine", "Statistics"}
	derived, err := solver.Greedy(solver.Request{Model: m, Table: tab, Required: required})
	if err != nil {
		return nil, err
	}
	uw, _ := store.FeatureWeight(nfp.UnprofiledStmts, "QueryStats")

	// ROM side: size a budget that fits the SQL base product but not
	// the plan renderer and profile registry, then require QueryStats
	// under it.
	rom, err := footprint.Load("FAME-DBMS")
	if err != nil {
		return nil, err
	}
	base, err := solver.BranchAndBound(solver.Request{Model: m, Table: rom, Required: required})
	if err != nil {
		return nil, err
	}
	qsROM := rom.Features["QueryStats"]
	budget := base.ROM + qsROM/2
	_, infErr := solver.BranchAndBound(solver.Request{
		Model:    m,
		Table:    rom,
		Required: append(append([]string{}, required...), "QueryStats"),
		MaxROM:   budget,
	})

	res.Feedback = B9Feedback{
		Property:                 string(nfp.UnprofiledStmts),
		MeasuredProducts:         len(store.Measurements()),
		Required:                 required,
		DerivedFeatures:          derived.Config.SelectedNames(),
		SelectedQueryStats:       derived.Config.Has("QueryStats"),
		UnprofiledWeight:         uw,
		QueryP99Ns:               queryP99,
		BaseROM:                  base.ROM,
		QueryStatsROM:            qsROM,
		TightROMBudget:           budget,
		InfeasibleWithQueryStats: errors.Is(infErr, solver.ErrInfeasible),
	}
	if infErr != nil && !errors.Is(infErr, solver.ErrInfeasible) {
		return nil, infErr
	}
	return res, nil
}

// FormatB9 renders the B9 result as text.
func FormatB9(r *B9Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "B9 — QueryStats: mixed point/range/filtered load with and without statement observation, %d-row table\n", r.Rows)
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "mode\tgoroutines\tops/s\tp50 ns\tp99 ns")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%s\t%d\t%.0f\t%.0f\t%.0f\n",
			p.Mode, p.Goroutines, p.OpsPerSec, p.P50Ns, p.P99Ns)
	}
	w.Flush()
	for _, ov := range r.Overheads {
		fmt.Fprintf(&b, "observation at %2d goroutines: %.3fx of bare throughput (%.0f vs %.0f ops/s)\n",
			ov.Goroutines, ov.Ratio, ov.OnSec, ov.OffSec)
	}
	fmt.Fprintf(&b, "per-shape attribution of the instrumented 16-goroutine run (%d slow retained):\n", r.Slow)
	sw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(sw, "  count\tp99 ns\tscanned\treturned\tpages\tshape")
	for _, sh := range r.Shapes {
		// The preload's wide INSERT shape would blow the table apart.
		shape := sh.Shape
		if len(shape) > 60 {
			shape = shape[:57] + "..."
		}
		fmt.Fprintf(sw, "  %d\t%.0f\t%d\t%d\t%d\t%s\n",
			sh.Count, sh.P99Ns, sh.RowsScanned, sh.RowsReturned, sh.PagesVisited, shape)
	}
	sw.Flush()
	fmt.Fprintf(&b, "feedback: min %s via greedy over %d measurements, required %v:\n  %v\n",
		r.Feedback.Property, r.Feedback.MeasuredProducts, r.Feedback.Required,
		r.Feedback.DerivedFeatures)
	fmt.Fprintf(&b, "  QueryStats selected: %v (unprofiled weight %+.0f, measured point p99 %.0f ns)\n",
		r.Feedback.SelectedQueryStats, r.Feedback.UnprofiledWeight, r.Feedback.QueryP99Ns)
	fmt.Fprintf(&b, "  ROM: base %d B, QueryStats +%d B; requiring it under a %d B budget infeasible: %v\n",
		r.Feedback.BaseROM, r.Feedback.QueryStatsROM, r.Feedback.TightROMBudget,
		r.Feedback.InfeasibleWithQueryStats)
	return b.String()
}

// WriteJSON emits the machine-readable benchmark report (BENCH_9.json).
func (r *B9Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
