// Package bench is the experiment harness of the reproduction: one
// runner per paper artifact (Fig. 1a, Fig. 1b, the Sec. 2.2 claims,
// Fig. 2's products, Sec. 3.1's detection experiment, Sec. 3.2's
// solver comparison). cmd/fame-bench prints the tables; bench_test.go
// wraps the same runners in testing.B benchmarks; EXPERIMENTS.md
// records the measured outcomes.
package bench

import (
	"fmt"
	"time"

	"famedb/internal/bdb"
	"famedb/internal/composer"
	"famedb/internal/core"
	"famedb/internal/osal"
	"famedb/internal/workload"
)

// RunBDB measures a Berkeley DB case-study configuration: an engine is
// opened in the given mode with the given features, preloaded, and the
// Fig. 1 benchmark mix is executed n times. It returns achieved
// operations per second.
func RunBDB(mode core.BDBMode, features []string, method bdb.Method, n int, seed int64) (float64, error) {
	env, err := bdb.Open(bdb.Config{
		FS:         osal.NewMemFS(),
		Mode:       mode,
		Features:   features,
		PageSize:   4096,
		Passphrase: []byte("bench"),
	})
	if err != nil {
		return 0, err
	}
	defer env.Close()
	db, err := env.CreateDB("bench", method)
	if err != nil {
		return 0, err
	}
	gen := workload.New(workload.Fig1Config(seed))
	for _, op := range gen.Preload() {
		if err := db.Put(op.Key, op.Value); err != nil {
			return 0, err
		}
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		op := gen.Next()
		switch op.Kind {
		case workload.OpGet:
			if _, _, err := db.Get(op.Key); err != nil {
				return 0, err
			}
		case workload.OpPut:
			if err := db.Put(op.Key, op.Value); err != nil {
				return 0, err
			}
		}
	}
	elapsed := time.Since(start)
	return float64(n) / elapsed.Seconds(), nil
}

// RunFAME measures a FAME-DBMS product: compose, preload, run a
// put/get mix, return operations per second.
func RunFAME(features []string, n int, seed int64) (float64, error) {
	inst, err := composer.ComposeProduct(composer.Options{}, features...)
	if err != nil {
		return 0, err
	}
	defer inst.Close()
	cfg := workload.Config{
		Seed:      seed,
		Keys:      2000,
		ValueSize: 32,
		Mix:       map[workload.OpKind]int{workload.OpGet: 9, workload.OpPut: 1},
	}
	gen := workload.New(cfg)
	for _, op := range gen.Preload() {
		if err := inst.Store.Put(op.Key, op.Value); err != nil {
			return 0, err
		}
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		op := gen.Next()
		switch op.Kind {
		case workload.OpGet:
			if _, err := inst.Store.Get(op.Key); err != nil {
				return 0, err
			}
		case workload.OpPut:
			if err := inst.Store.Put(op.Key, op.Value); err != nil {
				return 0, err
			}
		}
	}
	elapsed := time.Since(start)
	return float64(n) / elapsed.Seconds(), nil
}

// mops formats operations/second as the paper's "Mio. queries / s".
func mops(opsPerSec float64) string {
	return fmt.Sprintf("%.3f", opsPerSec/1e6)
}
