package bench

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"text/tabwriter"

	"famedb/internal/analysis"
	"famedb/internal/bdb"
	"famedb/internal/composer"
	"famedb/internal/core"
	"famedb/internal/footprint"
	"famedb/internal/nfp"
	"famedb/internal/solver"
)

// E1Row is one configuration of Figure 1a.
type E1Row struct {
	Num    int
	Label  string
	CBytes int // -1 when the configuration is not expressible in C
	FBytes int // FeatureC++/composed footprint
}

// E1 regenerates Figure 1a: the footprint of the eight Berkeley DB
// configurations under both implementation technologies.
func E1() ([]E1Row, error) {
	tab, err := footprint.Load("BerkeleyDB")
	if err != nil {
		return nil, err
	}
	var rows []E1Row
	for _, cfg := range core.BDBConfigurations() {
		row := E1Row{Num: cfg.Num, Label: cfg.Label, CBytes: -1}
		if row.FBytes, err = tab.ROMFine(cfg.Features); err != nil {
			return nil, err
		}
		for _, m := range cfg.Modes {
			if m == core.ModeC {
				if row.CBytes, err = tab.ROMCoarse(cfg.Features); err != nil {
					return nil, err
				}
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatE1 renders Figure 1a as text.
func FormatE1(rows []E1Row) string {
	var b strings.Builder
	b.WriteString("Figure 1a — binary size [bytes of composed implementation source]\n")
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "cfg\tC\tFeatureC++\tlabel")
	for _, r := range rows {
		c := "-"
		if r.CBytes >= 0 {
			c = fmt.Sprintf("%d", r.CBytes)
		}
		fmt.Fprintf(w, "%d\t%s\t%d\t%s\n", r.Num, c, r.FBytes, r.Label)
	}
	w.Flush()
	return b.String()
}

// E2Row is one configuration of Figure 1b.
type E2Row struct {
	Num   int
	COps  float64 // ops/s in ModeC; 0 when not expressible
	FOps  float64 // ops/s in ModeComposed
	Label string
}

// E2 regenerates Figure 1b: query throughput per configuration and
// mode. opsPerConfig controls runtime (the paper's absolute numbers are
// not reproducible; the series shape is). Each point is the best of
// three repetitions, which suppresses warmup and scheduler noise.
func E2(opsPerConfig int) ([]E2Row, error) {
	const reps = 3
	best := func(mode core.BDBMode, features []string, n int) (float64, error) {
		var top float64
		for r := 0; r < reps; r++ {
			ops, err := RunBDB(mode, features, bdb.MethodBtree, n, 42)
			if err != nil {
				return 0, err
			}
			if ops > top {
				top = ops
			}
		}
		return top, nil
	}
	var rows []E2Row
	for _, cfg := range core.BDBConfigurations() {
		if !cfg.InPerfFigure {
			continue // configuration 8 is omitted, as in the paper
		}
		row := E2Row{Num: cfg.Num, Label: cfg.Label}
		var err error
		if row.FOps, err = best(core.ModeComposed, cfg.Features, opsPerConfig/reps); err != nil {
			return nil, fmt.Errorf("config %d composed: %w", cfg.Num, err)
		}
		for _, m := range cfg.Modes {
			if m == core.ModeC {
				if row.COps, err = best(core.ModeC, cfg.Features, opsPerConfig/reps); err != nil {
					return nil, fmt.Errorf("config %d C: %w", cfg.Num, err)
				}
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatE2 renders Figure 1b as text.
func FormatE2(rows []E2Row) string {
	var b strings.Builder
	b.WriteString("Figure 1b — performance [Mio. queries / s] (config 8 omitted, as in the paper)\n")
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "cfg\tC\tFeatureC++\tlabel")
	for _, r := range rows {
		c := "-"
		if r.COps > 0 {
			c = mops(r.COps)
		}
		fmt.Fprintf(w, "%d\t%s\t%s\t%s\n", r.Num, c, mops(r.FOps), r.Label)
	}
	w.Flush()
	return b.String()
}

// E3Result captures the Sec. 2.2 claims.
type E3Result struct {
	OptionalFeatures int
	Variants         string
	// PerfRatio is composed/monolithic throughput on the complete
	// configuration; the paper's claim is "no negative impact", i.e.
	// a ratio around or above 1.
	PerfRatio float64
	// MinimalSavings is the footprint of configuration 7 relative to
	// the complete composed configuration.
	MinimalSavings float64
}

// E3 verifies the Sec. 2.2 claims.
func E3(opsPerRun int) (*E3Result, error) {
	res := &E3Result{
		OptionalFeatures: len(core.BDBOptionalFeatures()),
		Variants:         core.BDBModel().CountVariants().String(),
	}
	// Interleaved best-of-N: the two modes run alternately so load
	// spikes (parallel test packages, CI noise) hit both equally.
	complete := core.BDBOptionalFeatures()
	const reps = 4
	var mono, comp float64
	for r := 0; r < reps; r++ {
		m, err := RunBDB(core.ModeC, complete, bdb.MethodBtree, opsPerRun/reps, 7)
		if err != nil {
			return nil, err
		}
		c, err := RunBDB(core.ModeComposed, complete, bdb.MethodBtree, opsPerRun/reps, 7)
		if err != nil {
			return nil, err
		}
		if m > mono {
			mono = m
		}
		if c > comp {
			comp = c
		}
	}
	res.PerfRatio = comp / mono

	tab, err := footprint.Load("BerkeleyDB")
	if err != nil {
		return nil, err
	}
	full, err := tab.ROMFine(complete)
	if err != nil {
		return nil, err
	}
	minimal, err := tab.ROMFine([]string{"Btree"})
	if err != nil {
		return nil, err
	}
	res.MinimalSavings = 1 - float64(minimal)/float64(full)
	return res, nil
}

// FormatE3 renders the Sec. 2.2 claim check.
func FormatE3(r *E3Result) string {
	return fmt.Sprintf(`Sec. 2.2 claims
  optional features after refactoring: %d (paper: 24)
  product variants:                    %s (paper: "far more variants")
  composed/monolithic throughput:      %.2fx (paper: no negative impact)
  minimal vs complete footprint:       -%.0f%% (paper: smaller binaries)
`, r.OptionalFeatures, r.Variants, r.PerfRatio, r.MinimalSavings*100)
}

// E4Row is one representative FAME-DBMS product.
type E4Row struct {
	Name     string
	Features int
	ROM      int
	RAM      int
	Ops      float64
	Note     string
}

// E4 derives and measures the representative products of the Fig. 2
// prototype model.
func E4(opsPerRun int) ([]E4Row, string, error) {
	m := core.FAMEModel()
	variants := m.CountVariants().String()
	var rows []E4Row
	for _, p := range core.FAMEProducts() {
		cfg, err := m.Product(p.Features...)
		if err != nil {
			return nil, "", fmt.Errorf("%s: %w", p.Name, err)
		}
		inst, err := composer.Compose(cfg, composer.Options{})
		if err != nil {
			return nil, "", fmt.Errorf("%s: %w", p.Name, err)
		}
		rom, err := inst.ROM()
		if err != nil {
			inst.Close()
			return nil, "", err
		}
		row := E4Row{
			Name:     p.Name,
			Features: len(cfg.SelectedNames()),
			ROM:      rom,
			RAM:      inst.RAM(),
			Note:     p.Note,
		}
		inst.Close()
		if cfg.Has("Put") && cfg.Has("Get") && opsPerRun > 0 {
			if row.Ops, err = RunFAME(p.Features, opsPerRun, 11); err != nil {
				return nil, "", fmt.Errorf("%s: %w", p.Name, err)
			}
		}
		rows = append(rows, row)
	}
	return rows, variants, nil
}

// FormatE4 renders the product table.
func FormatE4(rows []E4Row, variants string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 2 prototype — FAME-DBMS model admits %s products\n", variants)
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "product\tfeatures\tROM[B]\tRAM[B]\tkops/s\tscenario")
	for _, r := range rows {
		ops := "-"
		if r.Ops > 0 {
			ops = fmt.Sprintf("%.0f", r.Ops/1e3)
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%s\t%s\n", r.Name, r.Features, r.ROM, r.RAM, ops, r.Note)
	}
	w.Flush()
	return b.String()
}

// E5Row is one examined feature of the Sec. 3.1 experiment.
type E5Row struct {
	Feature    string
	Derivable  bool
	Reason     string
	DetectedIn []string // corpus apps whose sources triggered the query
}

// e5Corpus is the benchmark-application corpus the queries run against:
// each app uses a distinct, known feature set.
var e5Corpus = map[string]string{
	"inventory": `package main
func main() {
	db, _ := env.CreateDB("parts", MethodBtree)
	db.Put(k, v)
	c, _ := db.Cursor()
	_ = c
	st, _ := env.Stats()
	_ = st
}`,
	"billing": `package main
func main() {
	db, _ := env.CreateDB("accounts", MethodHash)
	tx, _ := env.Begin()
	tx.Put(db, k, v)
	tx.Commit()
	env.Checkpoint()
	seq, _ := env.Sequence("invoice")
	_ = seq
}`,
	"telemetry": `package main
func main() {
	q, _ := env.CreateDB("readings", MethodQueue)
	q.Enqueue(rec)
	env.Backup(dst)
	db.Verify()
}`,
	"gateway": `package main
func openSecure() {
	env := open(Config{Passphrase: secret, Recovery: true})
	env.AttachReplica(peer)
}
func main() {
	openSecure()
	keys, _ := env.Join(left, right)
	_ = keys
	db.BulkGet(keys)
	r, _ := log.Append(rec)
	_ = r
	db.Compact()
	db.Truncate()
}`,
}

// E5 runs the Sec. 3.1 experiment: evaluate every examined query over
// the corpus and report which features are derivable and where they
// were detected.
func E5() (rows []E5Row, examined, derivable int, err error) {
	models := map[string]*analysis.AppModel{}
	var appNames []string
	for name, src := range e5Corpus {
		m, aerr := analysis.AnalyzeSource(map[string]string{"main.go": src})
		if aerr != nil {
			return nil, 0, 0, aerr
		}
		models[name] = m
		appNames = append(appNames, name)
	}
	sort.Strings(appNames)
	for _, q := range analysis.BDBQueries() {
		if !q.Examined {
			continue
		}
		row := E5Row{Feature: q.Feature, Derivable: q.Detectable, Reason: q.Reason}
		if q.Detectable {
			for _, app := range appNames {
				if q.Match(models[app]) {
					row.DetectedIn = append(row.DetectedIn, app)
				}
			}
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Feature < rows[j].Feature })
	examined, derivable = analysis.BDBExamined()
	return rows, examined, derivable, nil
}

// FormatE5 renders the detection table.
func FormatE5(rows []E5Row, examined, derivable int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sec. 3.1 — automated feature detection: %d of %d examined features derivable (paper: 15 of 18)\n",
		derivable, examined)
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "feature\tderivable\tdetected in / reason")
	for _, r := range rows {
		detail := strings.Join(r.DetectedIn, ",")
		if !r.Derivable {
			detail = r.Reason
		}
		if detail == "" {
			detail = "(unused in corpus)"
		}
		fmt.Fprintf(w, "%s\t%v\t%s\n", r.Feature, r.Derivable, detail)
	}
	w.Flush()
	return b.String()
}

// E6Row is one point of the budget sweep.
type E6Row struct {
	BudgetROM  int
	GreedyROM  int // -1 infeasible
	ExactROM   int // -1 infeasible
	GapPercent float64
	ExactNodes int
}

// E6Result is the solver-and-feedback experiment.
type E6Result struct {
	Sweep []E6Row
	// TrapGreedyROM/TrapExactROM demonstrate greedy suboptimality on a
	// synthetic model (the FAME model happens to be greedy-friendly —
	// an honest finding recorded in EXPERIMENTS.md).
	TrapGreedyROM int
	TrapExactROM  int
	// FeedbackROMError and FeedbackPerfError are leave-one-out mean
	// absolute relative errors of the additive NFP estimator.
	FeedbackROMError  float64
	FeedbackPerfError float64
	MeasuredProducts  int
}

// E6 runs the Sec. 3.2 experiment: a ROM-budget sweep comparing the
// greedy deriver against branch-and-bound, plus the feedback-approach
// estimation accuracy over measured products.
func E6(opsPerMeasurement int) (*E6Result, error) {
	m := core.FAMEModel()
	tab, err := footprint.Load("FAME-DBMS")
	if err != nil {
		return nil, err
	}
	required := []string{"Put", "Get", "Remove"}
	unconstrained, err := solver.BranchAndBound(solver.Request{Model: m, Table: tab, Required: required})
	if err != nil {
		return nil, err
	}
	full, err := tab.ROMFine(featureUniverse(m))
	if err != nil {
		return nil, err
	}
	res := &E6Result{}
	for _, budget := range budgetSweep(unconstrained.ROM, full) {
		row := E6Row{BudgetROM: budget, GreedyROM: -1, ExactROM: -1}
		if g, err := solver.Greedy(solver.Request{Model: m, Table: tab, Required: required, MaxROM: budget}); err == nil {
			row.GreedyROM = g.ROM
		}
		if e, err := solver.BranchAndBound(solver.Request{Model: m, Table: tab, Required: required, MaxROM: budget}); err == nil {
			row.ExactROM = e.ROM
			row.ExactNodes = e.Explored
		}
		if row.GreedyROM > 0 && row.ExactROM > 0 {
			row.GapPercent = 100 * float64(row.GreedyROM-row.ExactROM) / float64(row.ExactROM)
		}
		res.Sweep = append(res.Sweep, row)
	}

	// Greedy suboptimality demo on a synthetic model with a constraint
	// trap (the FAME model itself is greedy-friendly).
	trapModel, trapTable := trap()
	if g, err := solver.Greedy(solver.Request{Model: trapModel, Table: trapTable}); err == nil {
		res.TrapGreedyROM = g.ROM
	}
	if e, err := solver.BranchAndBound(solver.Request{Model: trapModel, Table: trapTable}); err == nil {
		res.TrapExactROM = e.ROM
	}

	// Feedback approach: measure the representative products plus a
	// sample of random valid products, then cross-validate the additive
	// estimator.
	store := nfp.NewStore(m)
	products := core.FAMEProducts()
	// Sample enough random products to keep the additive fit
	// determined as the model grows: one per concrete feature, at
	// least a dozen.
	samples := len(m.ConcreteFeatures())
	if samples < 12 {
		samples = 12
	}
	for _, features := range sampleProducts(m, samples, 99) {
		products = append(products, core.NamedProduct{Name: "sample", Features: features})
	}
	for _, p := range products {
		cfg, err := m.Product(p.Features...)
		if err != nil {
			return nil, err
		}
		inst, err := composer.Compose(cfg, composer.Options{})
		if err != nil {
			return nil, err
		}
		rom, err := inst.ROM()
		if err != nil {
			inst.Close()
			return nil, err
		}
		values := map[nfp.Property]float64{nfp.ROM: float64(rom), nfp.RAM: float64(inst.RAM())}
		inst.Close()
		if cfg.Has("Put") && cfg.Has("Get") && opsPerMeasurement > 0 {
			ops, err := RunFAME(p.Features, opsPerMeasurement, 23)
			if err != nil {
				return nil, err
			}
			values[nfp.Throughput] = ops
		}
		store.Record(cfg, values)
		res.MeasuredProducts++
	}
	if e, n, err := store.CrossValidate(nfp.ROM); err == nil && n > 0 {
		res.FeedbackROMError = e
	}
	if e, n, err := store.CrossValidate(nfp.Throughput); err == nil && n > 0 {
		res.FeedbackPerfError = e
	}
	return res, nil
}

// trap builds the synthetic greedy-trap model: deselecting the most
// expensive feature forces two companions that cost more together.
func trap() (*core.Model, *footprint.Table) {
	m := core.NewModel("Trap")
	m.Root().AddChild("A", core.Optional)
	m.Root().AddChild("B", core.Optional)
	m.Root().AddChild("C", core.Optional)
	m.AddConstraint(core.Implies(core.Not(core.Ref("A")), core.And(core.Ref("B"), core.Ref("C"))))
	if err := m.Finalize(); err != nil {
		panic(err)
	}
	return m, &footprint.Table{
		Model:    "Trap",
		Features: map[string]int{"A": 100, "B": 60, "C": 60},
	}
}

// sampleProducts derives n random valid products that include Put and
// Get (so throughput is measurable), deterministically from seed.
func sampleProducts(m *core.Model, n int, seed int64) [][]string {
	rng := rand.New(rand.NewSource(seed))
	seen := map[string]bool{}
	var out [][]string
	for len(out) < n {
		cfg := m.NewConfiguration()
		if err := cfg.SelectAll("Put", "Get"); err != nil {
			break
		}
		for _, f := range m.ConcreteFeatures() {
			if cfg.State(f.Name) != core.Undecided {
				continue
			}
			if rng.Intn(2) == 0 {
				if cfg.Select(f.Name) != nil {
					cfg.Deselect(f.Name)
				}
			} else {
				if cfg.Deselect(f.Name) != nil {
					cfg.Select(f.Name)
				}
			}
		}
		if err := cfg.Complete(core.PreferDeselect); err != nil {
			continue
		}
		key := cfg.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		var names []string
		for _, f := range cfg.SelectedFeatures() {
			if !f.Abstract && !f.IsRoot() {
				names = append(names, f.Name)
			}
		}
		out = append(out, names)
	}
	return out
}

// featureUniverse returns every concrete feature name (for a "what if
// everything were selected" cost ceiling — not a valid product, just a
// sweep upper bound).
func featureUniverse(m *core.Model) []string {
	var names []string
	for _, f := range m.ConcreteFeatures() {
		if !f.IsRoot() {
			names = append(names, f.Name)
		}
	}
	return names
}

// budgetSweep produces budgets from just-below-feasible to generous.
func budgetSweep(min, max int) []int {
	return []int{
		min - 1, // infeasible by one byte
		min,
		min + (max-min)/4,
		min + (max-min)/2,
		max,
	}
}

// FormatE6 renders the sweep and feedback results.
func FormatE6(r *E6Result) string {
	var b strings.Builder
	b.WriteString("Sec. 3.2 — NFP-constrained derivation (required: Put, Get, Remove)\n")
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "ROM budget\tgreedy\texact\tgap\texact nodes")
	for _, row := range r.Sweep {
		g, e := "infeasible", "infeasible"
		if row.GreedyROM >= 0 {
			g = fmt.Sprintf("%d", row.GreedyROM)
		}
		if row.ExactROM >= 0 {
			e = fmt.Sprintf("%d", row.ExactROM)
		}
		fmt.Fprintf(w, "%d\t%s\t%s\t%.1f%%\t%d\n", row.BudgetROM, g, e, row.GapPercent, row.ExactNodes)
	}
	w.Flush()
	fmt.Fprintf(&b, "greedy-trap (synthetic model): greedy %d B vs exact %d B (gap %.0f%%)\n",
		r.TrapGreedyROM, r.TrapExactROM,
		100*float64(r.TrapGreedyROM-r.TrapExactROM)/float64(r.TrapExactROM))
	fmt.Fprintf(&b, "feedback estimator (LOO over %d measured products): ROM err %.1f%%, throughput err %.1f%%\n",
		r.MeasuredProducts, r.FeedbackROMError*100, r.FeedbackPerfError*100)
	return b.String()
}
