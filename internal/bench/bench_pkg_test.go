package bench

import (
	"strings"
	"testing"
)

// The experiment tests run with small op counts: they assert the
// *shape* of each result, not absolute numbers.

func TestE1Shape(t *testing.T) {
	rows, err := E1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(rows))
	}
	byNum := map[int]E1Row{}
	for _, r := range rows {
		byNum[r.Num] = r
	}
	// Configurations 1-6 exist in C; 7-8 do not.
	for n := 1; n <= 6; n++ {
		if byNum[n].CBytes < 0 {
			t.Errorf("config %d missing C footprint", n)
		}
	}
	for n := 7; n <= 8; n++ {
		if byNum[n].CBytes >= 0 {
			t.Errorf("config %d should be FeatureC++-only", n)
		}
	}
	// Paper orderings.
	for n := 2; n <= 6; n++ {
		if byNum[n].FBytes >= byNum[1].FBytes {
			t.Errorf("config %d (%d) not smaller than complete (%d)", n, byNum[n].FBytes, byNum[1].FBytes)
		}
	}
	if byNum[7].FBytes >= byNum[6].CBytes {
		t.Errorf("minimal composed (%d) not smaller than minimal C (%d)", byNum[7].FBytes, byNum[6].CBytes)
	}
	for n := 1; n <= 6; n++ {
		if byNum[n].CBytes < byNum[n].FBytes {
			t.Errorf("config %d: C (%d) smaller than composed (%d)", n, byNum[n].CBytes, byNum[n].FBytes)
		}
	}
	out := FormatE1(rows)
	if !strings.Contains(out, "Figure 1a") || !strings.Contains(out, "complete configuration") {
		t.Fatalf("format:\n%s", out)
	}
}

func TestE2Shape(t *testing.T) {
	rows, err := E2(3000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d, want 7 (config 8 omitted)", len(rows))
	}
	for _, r := range rows {
		if r.FOps <= 0 {
			t.Errorf("config %d: no composed throughput", r.Num)
		}
		if r.Num <= 6 && r.COps <= 0 {
			t.Errorf("config %d: no C throughput", r.Num)
		}
		if r.Num >= 7 && r.COps != 0 {
			t.Errorf("config %d: unexpected C throughput", r.Num)
		}
	}
	out := FormatE2(rows)
	if !strings.Contains(out, "Figure 1b") {
		t.Fatalf("format:\n%s", out)
	}
}

func TestE3Claims(t *testing.T) {
	r, err := E3(12000)
	if err != nil {
		t.Fatal(err)
	}
	if r.OptionalFeatures != 24 {
		t.Errorf("optional features = %d, want 24", r.OptionalFeatures)
	}
	// "No negative impact": composed must not be dramatically slower
	// than monolithic. Allow generous noise margins in CI.
	if r.PerfRatio < 0.5 {
		t.Errorf("composed/monolithic = %.2f: transformation hurt performance", r.PerfRatio)
	}
	if r.MinimalSavings <= 0.2 {
		t.Errorf("minimal product saves only %.0f%%", r.MinimalSavings*100)
	}
	if !strings.Contains(FormatE3(r), "24") {
		t.Fatal("format broken")
	}
}

func TestE4Products(t *testing.T) {
	rows, variants, err := E4(2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	if variants == "" || variants == "0" {
		t.Fatalf("variants = %q", variants)
	}
	byName := map[string]E4Row{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	sensor, full := byName["sensor-node"], byName["full"]
	if sensor.ROM >= full.ROM {
		t.Errorf("sensor ROM %d >= full ROM %d", sensor.ROM, full.ROM)
	}
	if sensor.RAM >= full.RAM {
		t.Errorf("sensor RAM %d >= full RAM %d", sensor.RAM, full.RAM)
	}
	if sensor.Features >= full.Features {
		t.Errorf("sensor features %d >= full features %d", sensor.Features, full.Features)
	}
	if !strings.Contains(FormatE4(rows, variants), "sensor-node") {
		t.Fatal("format broken")
	}
}

func TestE5Detection(t *testing.T) {
	rows, examined, derivable, err := E5()
	if err != nil {
		t.Fatal(err)
	}
	if examined != 18 || derivable != 15 {
		t.Fatalf("examined/derivable = %d/%d, want 18/15", examined, derivable)
	}
	if len(rows) != 18 {
		t.Fatalf("rows = %d", len(rows))
	}
	detected := 0
	for _, r := range rows {
		if r.Derivable && len(r.DetectedIn) > 0 {
			detected++
		}
		if !r.Derivable && r.Reason == "" {
			t.Errorf("%s: underivable without reason", r.Feature)
		}
	}
	// The corpus exercises every derivable feature at least once.
	if detected != derivable {
		t.Errorf("corpus detected %d of %d derivable features", detected, derivable)
	}
	if !strings.Contains(FormatE5(rows, examined, derivable), "15 of 18") {
		t.Fatal("format broken")
	}
}

func TestE6SolverAndFeedback(t *testing.T) {
	r, err := E6(2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Sweep) < 4 {
		t.Fatalf("sweep = %d points", len(r.Sweep))
	}
	first := r.Sweep[0]
	if first.GreedyROM != -1 || first.ExactROM != -1 {
		t.Errorf("budget below optimum should be infeasible for both: %+v", first)
	}
	for _, row := range r.Sweep[1:] {
		if row.ExactROM < 0 {
			t.Errorf("budget %d: exact infeasible", row.BudgetROM)
			continue
		}
		if row.GreedyROM >= 0 && row.GreedyROM < row.ExactROM {
			t.Errorf("budget %d: greedy (%d) beat exact (%d)", row.BudgetROM, row.GreedyROM, row.ExactROM)
		}
	}
	if r.MeasuredProducts < 10 {
		t.Errorf("measured products = %d", r.MeasuredProducts)
	}
	// ROM is additive by construction, so with a dozen measured
	// products the additive estimator must predict it closely.
	if r.FeedbackROMError > 0.10 {
		t.Errorf("feedback ROM error = %.2f", r.FeedbackROMError)
	}
	// The synthetic trap shows the greedy gap the paper's CSP
	// discussion anticipates.
	if r.TrapGreedyROM <= r.TrapExactROM {
		t.Errorf("trap: greedy %d, exact %d — no gap demonstrated", r.TrapGreedyROM, r.TrapExactROM)
	}
	if !strings.Contains(FormatE6(r), "feedback estimator") {
		t.Fatal("format broken")
	}
}

func TestRunBDBRejectsBadFeatures(t *testing.T) {
	if _, err := RunBDB(0, []string{"NoSuchFeature"}, 'B', 10, 1); err == nil {
		t.Fatal("bad features should fail")
	}
}

func TestRunFAMEWorks(t *testing.T) {
	ops, err := RunFAME([]string{"Linux", "BPlusTree", "Put", "Get"}, 2000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if ops <= 0 {
		t.Fatalf("ops = %f", ops)
	}
}

func TestE7Pipeline(t *testing.T) {
	r, err := E7()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"SQLEngine": true, "Optimizer": true, "Transaction": true, "Put": true}
	for _, d := range r.Detected {
		delete(want, d)
	}
	if len(want) != 0 {
		t.Fatalf("calendar analysis missed %v (got %v)", want, r.Detected)
	}
	if len(r.Forced) == 0 || len(r.Open) == 0 {
		t.Fatalf("pipeline incomplete: forced=%v open=%v", r.Forced, r.Open)
	}
	if r.ProductROM <= 0 {
		t.Fatalf("ROM = %d", r.ProductROM)
	}
	if !strings.Contains(FormatE7(r), "detected from sources") {
		t.Fatal("format broken")
	}
}
