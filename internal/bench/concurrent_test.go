package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestB2Shape(t *testing.T) {
	r, err := B2(300, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 6 {
		t.Fatalf("points = %d, want 2 pools x 3 goroutine counts", len(r.Points))
	}
	for _, p := range r.Points {
		if p.OpsPerSec <= 0 {
			t.Errorf("%s/%d: ops/s = %f", p.Pool, p.Goroutines, p.OpsPerSec)
		}
		if p.HitRate <= 0.5 {
			t.Errorf("%s/%d: hit rate %f on a hit-heavy mix", p.Pool, p.Goroutines, p.HitRate)
		}
	}
	if r.SpeedupAt16 <= 0 {
		t.Errorf("speedup = %f", r.SpeedupAt16)
	}
	if r.Feedback.MeasuredProducts != 2 {
		t.Errorf("measured products = %d, want both pools", r.Feedback.MeasuredProducts)
	}

	out := FormatB2(r)
	for _, want := range []string{"B2", "single-latch", "sharded", "speedup at 16 goroutines", "ShardedBuffer selected"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatB2 output missing %q:\n%s", want, out)
		}
	}

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back B2Result
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Points) != 6 || back.Shards != r.Shards {
		t.Errorf("JSON round trip lost data: %+v", back)
	}
}
