package bench

// Benchmark B2: the ShardedBuffer feature under concurrent traffic.
//
// Both buffer managers run the same workload — parallel get/put page
// mixes at 1, 4 and 16 goroutines over a cache-hit-heavy working set —
// while a background checkpointer flushes the pool on a fixed cadence
// and the base pager charges a flash-style latency per physical page
// I/O. The single-latch manager holds its one latch across the whole
// flush, stalling every worker; the sharded pool flushes stripe by
// stripe, so at most 1/N of the traffic waits. The resulting throughput
// delta is what the feature buys, and it is fed to the NFP store
// (nfp.RecordMeasurement) so the greedy deriver selects ShardedBuffer
// from measurements rather than from folklore.

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"text/tabwriter"
	"time"

	"famedb/internal/buffer"
	"famedb/internal/core"
	"famedb/internal/nfp"
	"famedb/internal/osal"
	"famedb/internal/solver"
	"famedb/internal/storage"
)

// delayPager wraps a Pager and charges a fixed latency per physical
// page read/write — a flash device model. The sleep happens in the
// wrapper, outside the base pager's own mutex, so independent I/Os
// overlap like requests queued on a real device.
type delayPager struct {
	base  storage.Pager
	read  time.Duration
	write time.Duration
}

func (d *delayPager) PageSize() int                  { return d.base.PageSize() }
func (d *delayPager) Alloc() (storage.PageID, error) { return d.base.Alloc() }
func (d *delayPager) Free(id storage.PageID) error   { return d.base.Free(id) }
func (d *delayPager) Sync() error                    { return d.base.Sync() }
func (d *delayPager) Close() error                   { return d.base.Close() }

func (d *delayPager) ReadPage(id storage.PageID, buf []byte) error {
	time.Sleep(d.read)
	return d.base.ReadPage(id, buf)
}

func (d *delayPager) WritePage(id storage.PageID, buf []byte) error {
	time.Sleep(d.write)
	return d.base.WritePage(id, buf)
}

// B2Config fixes the scenario; the defaults model a NAND flash device
// (reads ~50us, page programs ~200us) under a 1ms checkpoint cadence.
// The capacity exceeds the working set so the steady state is pure
// cache hits for both pools — what separates them is the flush: the
// single latch stalls every worker for the whole write-back pass, the
// sharded pool one stripe at a time.
type B2Config struct {
	Ops        int           // operations per measured point
	Seed       int64         // workload RNG seed
	Pages      int           // hot working set, pages
	CachePages int           // pool capacity (>= Pages: hit-heavy)
	Shards     int           // stripe count for the sharded pool
	ReadDelay  time.Duration // base-pager read latency
	WriteDelay time.Duration // base-pager write latency
	Checkpoint time.Duration // background Sync cadence
	WriteFrac  int           // writes per 100 operations
}

func defaultB2Config(ops int, seed int64) B2Config {
	return B2Config{
		Ops:        ops,
		Seed:       seed,
		Pages:      64,
		CachePages: 256,
		Shards:     16,
		ReadDelay:  50 * time.Microsecond,
		WriteDelay: 200 * time.Microsecond,
		Checkpoint: time.Millisecond,
		WriteFrac:  10,
	}
}

// B2Point is one measured (pool, goroutines) cell.
type B2Point struct {
	Pool        string  `json:"pool"` // "single-latch" or "sharded"
	Goroutines  int     `json:"goroutines"`
	Ops         int     `json:"ops"`
	Seconds     float64 `json:"seconds"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	HitRate     float64 `json:"hit_rate"`
	Evictions   int64   `json:"evictions"`
	WriteBacks  int64   `json:"write_backs"`
	Checkpoints int64   `json:"checkpoints"`
}

// B2Feedback closes the loop for the concurrency NFP: the 16-goroutine
// measurements are recorded into an nfp.Store and the greedy deriver
// runs against the fitted signed latency table.
type B2Feedback struct {
	Property         string   `json:"property"`
	MeasuredProducts int      `json:"measured_products"`
	Required         []string `json:"required"`
	DerivedFeatures  []string `json:"derived_features"`
	// SelectedSharded reports whether the deriver picked ShardedBuffer
	// on the strength of the measurements alone.
	SelectedSharded bool `json:"selected_sharded"`
	// ShardedThroughputWeight is the fitted per-feature contribution of
	// ShardedBuffer to throughput (ops/s) — the measured delta.
	ShardedThroughputWeight float64 `json:"sharded_throughput_weight"`
	// ShardedLatencyWeightNs is the (negative) fitted contribution to
	// mean per-op latency, the signed cost the deriver minimized.
	ShardedLatencyWeightNs float64 `json:"sharded_latency_weight_ns"`
}

// B2Result is the machine-readable report (BENCH_2.json).
type B2Result struct {
	Ops          int       `json:"ops_per_point"`
	Seed         int64     `json:"seed"`
	Pages        int       `json:"pages"`
	CachePages   int       `json:"cache_pages"`
	Shards       int       `json:"shards"`
	ReadDelayUs  int       `json:"read_delay_us"`
	WriteDelayUs int       `json:"write_delay_us"`
	CheckpointMs float64   `json:"checkpoint_every_ms"`
	Points       []B2Point `json:"points"`
	// SpeedupAt16 is sharded over single-latch throughput at 16
	// goroutines — the number the acceptance criterion gates on.
	SpeedupAt16 float64    `json:"speedup_at_16"`
	Feedback    B2Feedback `json:"feedback"`
}

// b2Pool builds one of the two pools over a fresh delayed page file and
// returns the manager plus the working set's page IDs, prewritten and
// warmed into the cache.
func b2Pool(cfg B2Config, sharded bool) (buffer.Cache, []storage.PageID, error) {
	f, err := osal.NewMemFS().Create("b2.db")
	if err != nil {
		return nil, nil, err
	}
	pf, err := storage.CreatePageFile(f, 4096)
	if err != nil {
		return nil, nil, err
	}
	ids := make([]storage.PageID, cfg.Pages)
	page := make([]byte, pf.PageSize())
	for i := range ids {
		if ids[i], err = pf.Alloc(); err != nil {
			return nil, nil, err
		}
		page[0] = byte(i)
		if err := pf.WritePage(ids[i], page); err != nil {
			return nil, nil, err
		}
	}
	base := &delayPager{base: pf, read: cfg.ReadDelay, write: cfg.WriteDelay}
	var mgr buffer.Cache
	if sharded {
		mgr, err = buffer.NewShardedManager(base, cfg.CachePages, cfg.Shards,
			func() buffer.Policy { return buffer.NewLRU() },
			func(frames int) (buffer.Allocator, error) {
				return buffer.NewDynamicAllocator(4096), nil
			})
	} else {
		mgr, err = buffer.NewManager(base, cfg.CachePages, buffer.NewLRU(), buffer.NewDynamicAllocator(4096))
	}
	if err != nil {
		return nil, nil, err
	}
	// Warm the cache so the measured phase is hit-heavy.
	for _, id := range ids {
		if err := mgr.ReadPage(id, page); err != nil {
			return nil, nil, err
		}
	}
	return mgr, ids, nil
}

// b2Run measures one (pool, goroutines) point: g workers share cfg.Ops
// operations while a checkpointer calls Sync every cfg.Checkpoint.
func b2Run(cfg B2Config, sharded bool, g int) (B2Point, error) {
	name := "single-latch"
	if sharded {
		name = "sharded"
	}
	pt := B2Point{Pool: name, Goroutines: g, Ops: cfg.Ops}

	mgr, ids, err := b2Pool(cfg, sharded)
	if err != nil {
		return pt, err
	}
	warm := mgr.Stats()

	stop := make(chan struct{})
	var ckpts int64
	var ckptErr atomic.Value
	var ckptWG sync.WaitGroup
	ckptWG.Add(1)
	go func() {
		defer ckptWG.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(cfg.Checkpoint):
				if err := mgr.Sync(); err != nil {
					ckptErr.Store(err)
					return
				}
				atomic.AddInt64(&ckpts, 1)
			}
		}
	}()

	errs := make(chan error, g)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < g; w++ {
		n := cfg.Ops / g
		if w < cfg.Ops%g {
			n++
		}
		wg.Add(1)
		go func(w, n int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)))
			buf := make([]byte, mgr.PageSize())
			for i := 0; i < n; i++ {
				id := ids[rng.Intn(len(ids))]
				if rng.Intn(100) < cfg.WriteFrac {
					buf[1] = byte(i)
					if err := mgr.WritePage(id, buf); err != nil {
						errs <- err
						return
					}
				} else if err := mgr.ReadPage(id, buf); err != nil {
					errs <- err
					return
				}
			}
		}(w, n)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(stop)
	ckptWG.Wait()
	close(errs)
	for err := range errs {
		return pt, err
	}
	if err, _ := ckptErr.Load().(error); err != nil {
		return pt, err
	}
	st := mgr.Stats()
	if err := mgr.Close(); err != nil {
		return pt, err
	}

	pt.Seconds = elapsed.Seconds()
	pt.OpsPerSec = float64(cfg.Ops) / elapsed.Seconds()
	hits := st.Hits - warm.Hits
	misses := st.Misses - warm.Misses
	if hits+misses > 0 {
		pt.HitRate = float64(hits) / float64(hits+misses)
	}
	pt.Evictions = st.Evictions
	pt.WriteBacks = st.WriteBacks
	pt.Checkpoints = atomic.LoadInt64(&ckpts)
	return pt, nil
}

// b2Features are the products the 16-goroutine points are recorded as.
func b2Features(sharded bool) []string {
	fs := []string{"Linux", "BPlusTree", "BufferManager", "LRU", "DynamicAlloc", "Put", "Get"}
	if sharded {
		fs = append(fs, "ShardedBuffer")
	}
	return fs
}

// B2 runs the concurrent buffer benchmark and closes the feedback loop:
// the measured 16-goroutine products land in an NFP store, and the
// greedy deriver — which, unlike branch-and-bound, accepts the signed
// cost table — picks the product minimizing measured per-op latency.
func B2(n int, seed int64) (*B2Result, error) {
	cfg := defaultB2Config(n, seed)
	res := &B2Result{
		Ops:          cfg.Ops,
		Seed:         cfg.Seed,
		Pages:        cfg.Pages,
		CachePages:   cfg.CachePages,
		Shards:       cfg.Shards,
		ReadDelayUs:  int(cfg.ReadDelay / time.Microsecond),
		WriteDelayUs: int(cfg.WriteDelay / time.Microsecond),
		CheckpointMs: float64(cfg.Checkpoint) / float64(time.Millisecond),
	}

	m := core.FAMEModel()
	store := nfp.NewStore(m)
	var at16 [2]float64
	for _, sharded := range []bool{false, true} {
		for _, g := range []int{1, 4, 16} {
			pt, err := b2Run(cfg, sharded, g)
			if err != nil {
				return nil, fmt.Errorf("B2 %s/%d: %w", pt.Pool, g, err)
			}
			res.Points = append(res.Points, pt)
			if g == 16 {
				if sharded {
					at16[1] = pt.OpsPerSec
				} else {
					at16[0] = pt.OpsPerSec
				}
				// Mean per-op latency with g workers in flight is
				// g/throughput — the property the deriver minimizes.
				err := nfp.RecordMeasurement(store, b2Features(sharded), map[nfp.Property]float64{
					nfp.Throughput: pt.OpsPerSec,
					nfp.LatencyP50: float64(g) / pt.OpsPerSec * 1e9,
				})
				if err != nil {
					return nil, err
				}
			}
		}
	}
	if at16[0] > 0 {
		res.SpeedupAt16 = at16[1] / at16[0]
	}

	tab, err := store.SignedTable(nfp.LatencyP50)
	if err != nil {
		return nil, err
	}
	required := []string{"Put", "Get", "BufferManager", "Linux"}
	derived, err := solver.Greedy(solver.Request{Model: m, Table: tab, Required: required})
	if err != nil {
		return nil, err
	}
	if err := store.Fit(nfp.Throughput); err != nil {
		return nil, err
	}
	tw, _ := store.FeatureWeight(nfp.Throughput, "ShardedBuffer")
	lw, _ := store.FeatureWeight(nfp.LatencyP50, "ShardedBuffer")
	res.Feedback = B2Feedback{
		Property:                string(nfp.LatencyP50),
		MeasuredProducts:        len(store.Measurements()),
		Required:                required,
		DerivedFeatures:         derived.Config.SelectedNames(),
		SelectedSharded:         derived.Config.Has("ShardedBuffer"),
		ShardedThroughputWeight: tw,
		ShardedLatencyWeightNs:  lw,
	}
	return res, nil
}

// FormatB2 renders the B2 result as text.
func FormatB2(r *B2Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "B2 — ShardedBuffer: concurrent get/put under checkpointing (%d pages, %d frames, %d shards, write %dus)\n",
		r.Pages, r.CachePages, r.Shards, r.WriteDelayUs)
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "pool\tgoroutines\tops/s\thit%\twrite-backs\tcheckpoints")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%s\t%d\t%.0f\t%.1f\t%d\t%d\n",
			p.Pool, p.Goroutines, p.OpsPerSec, 100*p.HitRate, p.WriteBacks, p.Checkpoints)
	}
	w.Flush()
	fmt.Fprintf(&b, "speedup at 16 goroutines: %.2fx\n", r.SpeedupAt16)
	fmt.Fprintf(&b, "feedback: min %s via greedy over %d measurements, required %v:\n  %v\n",
		r.Feedback.Property, r.Feedback.MeasuredProducts, r.Feedback.Required,
		r.Feedback.DerivedFeatures)
	fmt.Fprintf(&b, "  ShardedBuffer selected: %v (throughput weight %+.0f ops/s, latency weight %+.0f ns)\n",
		r.Feedback.SelectedSharded, r.Feedback.ShardedThroughputWeight,
		r.Feedback.ShardedLatencyWeightNs)
	return b.String()
}

// WriteJSON emits the machine-readable benchmark report (BENCH_2.json).
func (r *B2Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
