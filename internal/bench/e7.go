package bench

import (
	"fmt"
	"path/filepath"
	"strings"

	"famedb/internal/analysis"
	"famedb/internal/core"
	"famedb/internal/footprint"
)

// E7Result is the end-to-end analysis-pipeline experiment (Fig. 3): the
// calendar example's sources run through the application model, the
// model queries, and constraint closure.
type E7Result struct {
	App      string
	Detected []string
	Forced   []string
	Open     []string
	// ProductROM is the footprint of the ROM-minimal completion.
	ProductROM int
}

// E7 analyzes the calendar example application and derives its product.
func E7() (*E7Result, error) {
	root, err := footprint.FindRepoRoot(".")
	if err != nil {
		return nil, fmt.Errorf("E7 needs the source tree: %w", err)
	}
	appDir := filepath.Join(root, "examples", "calendar")
	app, err := analysis.AnalyzeDir(appDir)
	if err != nil {
		return nil, err
	}
	fm := core.FAMEModel()
	cfg, detected, open, err := analysis.Derive(fm, app, analysis.FAMEQueries())
	if err != nil {
		return nil, err
	}
	res := &E7Result{App: appDir, Detected: detected, Open: open}
	for _, d := range cfg.Log() {
		if d.Cause == core.ByPropagation && d.State == core.Selected {
			res.Forced = append(res.Forced, d.Feature.Name)
		}
	}
	// Complete minimally and cost the result.
	if err := cfg.Complete(core.PreferDeselect); err != nil {
		return nil, err
	}
	tab, err := footprint.Load("FAME-DBMS")
	if err != nil {
		return nil, err
	}
	if res.ProductROM, err = tab.ROMFine(cfg.SelectedNames()); err != nil {
		return nil, err
	}
	return res, nil
}

// FormatE7 renders the pipeline result.
func FormatE7(r *E7Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 3 pipeline — %s\n", r.App)
	fmt.Fprintf(&b, "  detected from sources: %s\n", strings.Join(r.Detected, ", "))
	fmt.Fprintf(&b, "  forced by constraints: %s\n", strings.Join(r.Forced, ", "))
	fmt.Fprintf(&b, "  open decisions:        %s\n", strings.Join(r.Open, ", "))
	fmt.Fprintf(&b, "  minimal completion:    %d bytes ROM\n", r.ProductROM)
	return b.String()
}
