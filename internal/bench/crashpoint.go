package bench

// Crash-point recovery harness, after the ALICE school of crash-state
// exploration: run a fixed transactional workload and crash it at EVERY
// write-class operation index in turn, then reopen, let redo recovery
// run, and check the survival invariants — no acknowledged commit lost,
// no torn page silently visible, B+-tree structurally valid, page and
// journal scrubs clean.
//
// Two complementary crash models bracket what a real power loss can do:
//
//   - cut: the workload dies at write op i with an injected error and
//     the device reverts to its last-synced images (osal.CrashFS) — the
//     "least persisted" extreme, nothing unsynced survives.
//   - torn: write op i silently persists only a prefix (an osal
//     Schedule torn-write rule) and the op after it fails — the "most
//     persisted" extreme, everything reaches the device but one write
//     tore. The commit in flight when the tear happens is treated as
//     unacknowledged: in reality the power died mid-write, so no ack
//     ever reached the application.
//
// A point passes when the recomposed instance serves every
// acknowledged commit with the exact written value, no read returns
// garbage (missing or typed corruption are the only alternatives — and
// in practice recovery repairs even those), and the verify scrub comes
// back clean.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
	"time"

	"famedb/internal/composer"
	"famedb/internal/index"
	"famedb/internal/osal"
	"famedb/internal/storage"
)

// CrashPointConfig fixes the harness scenario.
type CrashPointConfig struct {
	// Commits is the number of committed transactions in the workload
	// (a checkpoint runs after the first half).
	Commits int
	// Torn selects the torn-write crash model instead of clean cuts.
	Torn bool
	// Seed drives the torn-prefix lengths for exact replay.
	Seed int64
}

// CrashPointReport is the harness outcome.
type CrashPointReport struct {
	Mode    string `json:"mode"` // "cut" or "torn"
	Commits int    `json:"commits"`
	// WriteOps is the number of write-class operations the clean
	// workload performs — the number of crash points swept.
	WriteOps int64 `json:"write_ops"`
	// Recovered counts points where recovery restored every invariant.
	Recovered int `json:"recovered"`
	// Injected counts torn points whose tear actually fired (a tear
	// scheduled past the workload's op count never happens).
	Injected int `json:"injected"`
	// Failures lists invariant violations, one line per failed point.
	Failures []string `json:"failures,omitempty"`
}

// Ok reports whether every crash point recovered.
func (r *CrashPointReport) Ok() bool { return len(r.Failures) == 0 }

// cpFeatures is the harnessed product: transactional with Recovery and
// Checksums, so torn pages surface as typed corruption rather than
// garbage keys.
var cpFeatures = []string{
	"Linux", "BPlusTree", "BufferManager", "LRU", "DynamicAlloc",
	"Put", "Get", "Transaction", "ForceCommit", "Recovery", "Checksums",
}

func cpCompose(fs osal.FS) (*composer.Instance, error) {
	return composer.ComposeProduct(composer.Options{
		FS: fs,
		// A tiny cache forces evictions, so data-file page writes land
		// inside the crash windows, not just at checkpoints.
		CachePages: 4,
		Retry:      storage.RetryPolicy{Attempts: 2, Sleep: func(time.Duration) {}},
	}, cpFeatures...)
}

// cpStep is one workload step: a keyed committed transaction, or the
// mid-workload checkpoint (empty key).
type cpStep struct {
	key string
	run func(inst *composer.Instance) error
}

func cpValue(key string) []byte { return []byte("value-of-" + key) }

func cpSteps(commits int) []cpStep {
	var steps []cpStep
	commitStep := func(key string) cpStep {
		return cpStep{key: key, run: func(inst *composer.Instance) error {
			tx := inst.Txn.Begin()
			if err := tx.Put([]byte(key), cpValue(key)); err != nil {
				tx.Abort()
				return err
			}
			return tx.Commit()
		}}
	}
	for i := 0; i < commits/2; i++ {
		steps = append(steps, commitStep(fmt.Sprintf("a%03d", i)))
	}
	steps = append(steps, cpStep{run: func(inst *composer.Instance) error {
		return inst.Txn.Checkpoint()
	}})
	for i := commits / 2; i < commits; i++ {
		steps = append(steps, commitStep(fmt.Sprintf("b%03d", i)))
	}
	return steps
}

// cpRunWorkload executes steps until the first error or (torn mode)
// until the tear has fired, returning the acknowledged keys. A step
// that was running when the fault fired is never acknowledged.
func cpRunWorkload(inst *composer.Instance, steps []cpStep, sched *osal.Schedule) (acked []string) {
	for _, st := range steps {
		err := st.run(inst)
		torn := sched != nil && len(sched.Injections()) > 0
		if err != nil || torn {
			return acked
		}
		if st.key != "" {
			acked = append(acked, st.key)
		}
	}
	return acked
}

// cpCheck recomposes over the crashed filesystem and checks every
// survival invariant, returning a failure description or "".
func cpCheck(fs osal.FS, acked []string, commits int) string {
	inst, err := cpCompose(fs)
	if err != nil {
		return fmt.Sprintf("recompose: %v", err)
	}
	defer inst.Close()

	// 1. No acknowledged commit lost, byte-exact.
	for _, key := range acked {
		v, err := inst.Store.Get([]byte(key))
		if err != nil {
			return fmt.Sprintf("acked commit %q lost: %v", key, err)
		}
		if string(v) != string(cpValue(key)) {
			return fmt.Sprintf("acked commit %q corrupt: %q", key, v)
		}
	}
	// 2. No key reads as garbage: unacknowledged keys are either absent
	// or hold exactly the value their commit would have written.
	for i := 0; i < commits; i++ {
		prefix := "a"
		if i >= commits/2 {
			prefix = "b"
		}
		key := fmt.Sprintf("%s%03d", prefix, i)
		v, err := inst.Store.Get([]byte(key))
		switch {
		case err == nil:
			if string(v) != string(cpValue(key)) {
				return fmt.Sprintf("key %q reads garbage %q", key, v)
			}
		case errors.Is(err, storage.ErrPageCorrupt):
			return fmt.Sprintf("key %q reads torn page: %v", key, err)
		}
		// Absent is fine for unacked keys; checked acked above.
	}
	// 3. The B+-tree's structural invariants hold.
	if bt, ok := inst.Store.Index().(*index.BTree); ok {
		if err := bt.Tree().Verify(); err != nil {
			return fmt.Sprintf("tree invariants: %v", err)
		}
	}
	// 4. Page trailers and journal frames scrub clean.
	rep, err := inst.Verify()
	if err != nil {
		return fmt.Sprintf("scrub: %v", err)
	}
	if !rep.Ok() {
		return fmt.Sprintf("scrub found damage: %s", rep)
	}
	return ""
}

// CrashPoints sweeps the crash harness over every write-class op index.
func CrashPoints(cfg CrashPointConfig) (*CrashPointReport, error) {
	if cfg.Commits < 4 {
		cfg.Commits = 4
	}
	rep := &CrashPointReport{Mode: "cut", Commits: cfg.Commits}
	if cfg.Torn {
		rep.Mode = "torn"
	}
	steps := cpSteps(cfg.Commits)

	// Probe run: count the clean workload's write-class ops, which is
	// the sweep width. The schedule-free FaultFS just counts.
	probeFS := osal.NewFaultFS(osal.NewCrashFS(osal.NewMemFS()))
	inst, err := cpCompose(probeFS)
	if err != nil {
		return nil, err
	}
	probeSched := osal.NewSchedule(cfg.Seed)
	probeFS.SetSchedule(probeSched)
	before := probeFS.WriteOps
	for _, st := range steps {
		if err := st.run(inst); err != nil {
			inst.Close()
			return nil, fmt.Errorf("probe workload: %w", err)
		}
	}
	if cfg.Torn {
		rep.WriteOps = probeSched.Counts()[osal.OpWrite]
	} else {
		rep.WriteOps = probeFS.WriteOps - before
	}
	if err := inst.Close(); err != nil {
		return nil, err
	}
	if rep.WriteOps < 8 {
		return nil, fmt.Errorf("crashpoint: workload performs only %d write ops; sweep pointless", rep.WriteOps)
	}

	for i := int64(1); i <= rep.WriteOps; i++ {
		if cfg.Torn {
			fs := osal.NewFaultFS(osal.NewMemFS())
			inst, err := cpCompose(fs)
			if err != nil {
				return nil, err
			}
			// Write op i tears; the next write fails until "the power
			// returns" (schedule removed after the crash).
			sched := osal.NewSchedule(cfg.Seed + i)
			sched.Add(osal.Rule{Class: osal.OpWrite, At: i, Kind: osal.FaultTorn})
			sched.Add(osal.Rule{Class: osal.OpWrite, At: i + 1, Kind: osal.FaultError, Heal: 1 << 30})
			fs.SetSchedule(sched)
			acked := cpRunWorkload(inst, steps, sched)
			if len(sched.Injections()) > 0 {
				rep.Injected++
			}
			fs.SetSchedule(nil)
			// Crash: abandon the instance, never Close.
			if fail := cpCheck(fs, acked, cfg.Commits); fail != "" {
				rep.Failures = append(rep.Failures, fmt.Sprintf("torn@%d: %s", i, fail))
				continue
			}
		} else {
			crash := osal.NewCrashFS(osal.NewMemFS())
			fs := osal.NewFaultFS(crash)
			inst, err := cpCompose(fs)
			if err != nil {
				return nil, err
			}
			fs.FailAfter(i)
			acked := cpRunWorkload(inst, steps, nil)
			fs.Disarm()
			// Power loss: everything unsynced vanishes; the instance is
			// abandoned, never Closed.
			if err := crash.Crash(); err != nil {
				return nil, err
			}
			if fail := cpCheck(fs, acked, cfg.Commits); fail != "" {
				rep.Failures = append(rep.Failures, fmt.Sprintf("cut@%d: %s", i, fail))
				continue
			}
		}
		rep.Recovered++
	}
	return rep, nil
}

// FormatCrashPoints renders the harness report as text.
func FormatCrashPoints(r *CrashPointReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "crash-point harness (%s): %d commits, %d write-op crash points\n",
		r.Mode, r.Commits, r.WriteOps)
	fmt.Fprintf(&b, "  recovered: %d/%d", r.Recovered, r.WriteOps)
	if r.Mode == "torn" {
		fmt.Fprintf(&b, " (tears fired: %d)", r.Injected)
	}
	fmt.Fprintln(&b)
	for _, f := range r.Failures {
		fmt.Fprintf(&b, "  FAIL %s\n", f)
	}
	if r.Ok() {
		fmt.Fprintln(&b, "  all invariants held at every crash point")
	}
	return b.String()
}

// WriteJSON emits the machine-readable harness report.
func (r *CrashPointReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
