package bench

// Benchmark B4: the Tracing feature's overhead and its NFP feedback.
//
// Two otherwise identical products — with and without the Tracing
// feature — run the same workload at 1, 4 and 16 goroutines over an
// in-memory device: a sequential instrumented put load, then a timed
// concurrent get phase, so every nanosecond of span bookkeeping shows
// up in the measured throughput and latency quantiles instead of
// hiding behind I/O. The traced points also report the span ring's gauges
// (occupancy, recorded, dropped) via the Statistics bridge.
//
// The 16-goroutine measurements close the paper's feedback loop the
// unflattering way round: Tracing's fitted latency weight is positive,
// so the greedy deriver minimizing measured latency EXCLUDES it — and
// under a ROM budget tight enough for the base product alone, requiring
// Tracing makes derivation infeasible. Observability is a feature you
// pay for, and the NFP machinery prices it.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"text/tabwriter"
	"time"

	"famedb/internal/composer"
	"famedb/internal/core"
	"famedb/internal/footprint"
	"famedb/internal/nfp"
	"famedb/internal/solver"
)

// B4Config fixes the scenario.
type B4Config struct {
	Ops        int   // operations per measured point (half puts, half gets)
	Seed       int64 // reserved for workload shuffling
	ValueBytes int   // payload per put
	TraceSpans int   // ring capacity of the traced product
}

func defaultB4Config(ops int, seed int64) B4Config {
	if ops < 2048 {
		ops = 2048
	}
	return B4Config{Ops: ops, Seed: seed, ValueBytes: 64, TraceSpans: 4096}
}

// B4Point is one measured (tracing, goroutines) cell.
type B4Point struct {
	Tracing    bool    `json:"tracing"`
	Goroutines int     `json:"goroutines"`
	Ops        int     `json:"ops"` // timed gets; puts load the store beforehand
	Seconds    float64 `json:"seconds"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	// Latency quantiles from the Statistics feature's access
	// histograms, nanoseconds. Gets are the timed concurrent phase;
	// puts are the instrumented sequential load phase.
	GetP50Ns float64 `json:"get_p50_ns"`
	GetP99Ns float64 `json:"get_p99_ns"`
	PutP50Ns float64 `json:"put_p50_ns"`
	PutP99Ns float64 `json:"put_p99_ns"`
	// Span-ring gauges via the stats/trace bridge; zero when Tracing
	// is not composed.
	RingOccupancy int64 `json:"ring_occupancy"`
	RecordedSpans int64 `json:"recorded_spans"`
	DroppedSpans  int64 `json:"dropped_spans"`
}

// B4Overhead compares traced vs untraced throughput at one concurrency.
type B4Overhead struct {
	Goroutines  int     `json:"goroutines"`
	PlainOpsSec float64 `json:"plain_ops_per_sec"`
	TraceOpsSec float64 `json:"traced_ops_per_sec"`
	// OverheadPct is (plain - traced) / plain in percent; the cost of
	// the Tracing feature when composed and enabled.
	OverheadPct float64 `json:"overhead_pct"`
}

// B4Feedback is the closed loop: measured latency prices Tracing out,
// and a tight ROM budget makes a Tracing-required derivation
// infeasible.
type B4Feedback struct {
	Property         string   `json:"property"`
	MeasuredProducts int      `json:"measured_products"`
	Required         []string `json:"required"`
	DerivedFeatures  []string `json:"derived_features"`
	// SelectedTracing reports whether the latency-minimizing greedy
	// deriver kept Tracing; the whole point is that it does not.
	SelectedTracing bool `json:"selected_tracing"`
	// TracingLatencyWeightNs is the fitted per-feature contribution of
	// Tracing to p50 latency — the positive cost the deriver avoided.
	TracingLatencyWeightNs float64 `json:"tracing_latency_weight_ns"`
	// The ROM side: the base product's footprint, Tracing's footprint
	// delta, and the budget under which requiring Tracing fails.
	BaseROM               int  `json:"base_rom_bytes"`
	TracingROM            int  `json:"tracing_rom_bytes"`
	TightROMBudget        int  `json:"tight_rom_budget_bytes"`
	InfeasibleWithTracing bool `json:"infeasible_with_tracing"`
}

// B4Result is the machine-readable report (BENCH_4.json).
type B4Result struct {
	Ops        int          `json:"ops_per_point"`
	Seed       int64        `json:"seed"`
	ValueBytes int          `json:"value_bytes"`
	TraceSpans int          `json:"trace_spans"`
	Points     []B4Point    `json:"points"`
	Overheads  []B4Overhead `json:"overheads"`
	Feedback   B4Feedback   `json:"feedback"`
}

// b4Features is the measured product: the concurrent read path
// (ShardedBuffer) with Statistics for the latency histograms, plus
// Tracing for the traced variant.
func b4Features(traced bool) []string {
	fs := []string{
		"Linux", "BPlusTree", "BufferManager", "LRU", "DynamicAlloc",
		"ShardedBuffer", "Put", "Get", "Statistics",
	}
	if traced {
		fs = append(fs, "Tracing")
	}
	return fs
}

// b4Run measures one (tracing, goroutines) point. The store is loaded
// with an instrumented sequential put phase (the B+-tree has no
// internal latching without the Locking feature, so writes stay on one
// goroutine — as in B2, which drives the buffer pool directly for the
// same reason), then g workers share cfg.Ops timed gets over the loaded
// keys. Both phases run the full span stack when Tracing is composed;
// the timed phase is the concurrent read path the overhead numbers
// quote.
func b4Run(cfg B4Config, traced bool, g int) (B4Point, error) {
	pt := B4Point{Tracing: traced, Goroutines: g, Ops: cfg.Ops}

	inst, err := composer.ComposeProduct(
		composer.Options{TraceSpans: cfg.TraceSpans},
		b4Features(traced)...)
	if err != nil {
		return pt, err
	}
	value := make([]byte, cfg.ValueBytes)
	for i := range value {
		value[i] = byte(i)
	}
	keys := cfg.Ops / 8
	if keys < 256 {
		keys = 256
	}
	for i := 0; i < keys; i++ {
		if err := inst.Store.Put([]byte(fmt.Sprintf("k%07d", i)), value); err != nil {
			inst.Close()
			return pt, err
		}
	}

	errs := make(chan error, g)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < g; w++ {
		n := cfg.Ops / g
		if w < cfg.Ops%g {
			n++
		}
		wg.Add(1)
		go func(w, n int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				key := []byte(fmt.Sprintf("k%07d", (w*7919+i)%keys))
				if _, err := inst.Store.Get(key); err != nil {
					errs <- err
					return
				}
			}
		}(w, n)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		inst.Close()
		return pt, err
	}

	snap, err := inst.Stats()
	if err != nil {
		inst.Close()
		return pt, err
	}
	if err := inst.Close(); err != nil {
		return pt, err
	}

	pt.Seconds = elapsed.Seconds()
	pt.OpsPerSec = float64(cfg.Ops) / elapsed.Seconds()
	pt.GetP50Ns = snap.Access.GetLatency.P50()
	pt.GetP99Ns = snap.Access.GetLatency.P99()
	pt.PutP50Ns = snap.Access.PutLatency.P50()
	pt.PutP99Ns = snap.Access.PutLatency.P99()
	pt.RingOccupancy = snap.Trace.RingOccupancy
	pt.RecordedSpans = snap.Trace.RecordedSpans
	pt.DroppedSpans = snap.Trace.DroppedSpans
	return pt, nil
}

// B4 runs the tracing-overhead benchmark and closes the feedback loop:
// the greedy deriver minimizing measured latency excludes Tracing, and
// a tight ROM budget makes requiring it infeasible.
func B4(n int, seed int64) (*B4Result, error) {
	cfg := defaultB4Config(n, seed)
	res := &B4Result{
		Ops:        cfg.Ops,
		Seed:       cfg.Seed,
		ValueBytes: cfg.ValueBytes,
		TraceSpans: cfg.TraceSpans,
	}

	m := core.FAMEModel()
	store := nfp.NewStore(m)
	at16 := map[bool]float64{}
	byG := map[int]*B4Overhead{}
	for _, traced := range []bool{false, true} {
		for _, g := range []int{1, 4, 16} {
			pt, err := b4Run(cfg, traced, g)
			if err != nil {
				return nil, fmt.Errorf("B4 traced=%v/%d: %w", traced, g, err)
			}
			res.Points = append(res.Points, pt)
			ov := byG[g]
			if ov == nil {
				ov = &B4Overhead{Goroutines: g}
				byG[g] = ov
				res.Overheads = append(res.Overheads, B4Overhead{})
			}
			if traced {
				ov.TraceOpsSec = pt.OpsPerSec
			} else {
				ov.PlainOpsSec = pt.OpsPerSec
			}
			if g == 16 {
				at16[traced] = pt.OpsPerSec
				err := nfp.RecordMeasurement(store, b4Features(traced), map[nfp.Property]float64{
					nfp.Throughput: pt.OpsPerSec,
					nfp.LatencyP50: (pt.GetP50Ns + pt.PutP50Ns) / 2,
					nfp.LatencyP99: (pt.GetP99Ns + pt.PutP99Ns) / 2,
				})
				if err != nil {
					return nil, err
				}
			}
		}
	}
	for i, g := range []int{1, 4, 16} {
		ov := byG[g]
		if ov.PlainOpsSec > 0 {
			ov.OverheadPct = (ov.PlainOpsSec - ov.TraceOpsSec) / ov.PlainOpsSec * 100
		}
		res.Overheads[i] = *ov
	}

	// Latency side: greedy over the signed fitted table. Tracing's
	// weight is positive (it only costs), so the deriver leaves it out.
	tab, err := store.SignedTable(nfp.LatencyP50)
	if err != nil {
		return nil, err
	}
	required := []string{"Linux", "BPlusTree", "Put", "Get"}
	derived, err := solver.Greedy(solver.Request{Model: m, Table: tab, Required: required})
	if err != nil {
		return nil, err
	}
	lw, _ := store.FeatureWeight(nfp.LatencyP50, "Tracing")

	// ROM side: size a budget that fits the minimal base product but
	// not the span recorder, then require Tracing under it.
	rom, err := footprint.Load("FAME-DBMS")
	if err != nil {
		return nil, err
	}
	base, err := solver.BranchAndBound(solver.Request{Model: m, Table: rom, Required: required})
	if err != nil {
		return nil, err
	}
	tracingROM := rom.Features["Tracing"]
	budget := base.ROM + tracingROM/2
	_, infErr := solver.BranchAndBound(solver.Request{
		Model:    m,
		Table:    rom,
		Required: append(append([]string{}, required...), "Tracing"),
		MaxROM:   budget,
	})

	res.Feedback = B4Feedback{
		Property:               string(nfp.LatencyP50),
		MeasuredProducts:       len(store.Measurements()),
		Required:               required,
		DerivedFeatures:        derived.Config.SelectedNames(),
		SelectedTracing:        derived.Config.Has("Tracing"),
		TracingLatencyWeightNs: lw,
		BaseROM:                base.ROM,
		TracingROM:             tracingROM,
		TightROMBudget:         budget,
		InfeasibleWithTracing:  errors.Is(infErr, solver.ErrInfeasible),
	}
	if infErr != nil && !errors.Is(infErr, solver.ErrInfeasible) {
		return nil, infErr
	}
	return res, nil
}

// FormatB4 renders the B4 result as text.
func FormatB4(r *B4Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "B4 — Tracing: span-recording overhead, in-memory load + concurrent gets (ring %d spans)\n",
		r.TraceSpans)
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "tracing\tgoroutines\tops/s\tget p50 ns\tput p50 ns\tring occ\trecorded\tdropped")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%v\t%d\t%.0f\t%.0f\t%.0f\t%d\t%d\t%d\n",
			p.Tracing, p.Goroutines, p.OpsPerSec, p.GetP50Ns, p.PutP50Ns,
			p.RingOccupancy, p.RecordedSpans, p.DroppedSpans)
	}
	w.Flush()
	for _, ov := range r.Overheads {
		fmt.Fprintf(&b, "overhead at %2d goroutines: %+.1f%%\n", ov.Goroutines, ov.OverheadPct)
	}
	fmt.Fprintf(&b, "feedback: min %s via greedy over %d measurements, required %v:\n  %v\n",
		r.Feedback.Property, r.Feedback.MeasuredProducts, r.Feedback.Required,
		r.Feedback.DerivedFeatures)
	fmt.Fprintf(&b, "  Tracing selected: %v (latency weight %+.0f ns)\n",
		r.Feedback.SelectedTracing, r.Feedback.TracingLatencyWeightNs)
	fmt.Fprintf(&b, "  ROM: base %d B, Tracing +%d B; requiring Tracing under a %d B budget infeasible: %v\n",
		r.Feedback.BaseROM, r.Feedback.TracingROM, r.Feedback.TightROMBudget,
		r.Feedback.InfeasibleWithTracing)
	return b.String()
}

// WriteJSON emits the machine-readable benchmark report (BENCH_4.json).
func (r *B4Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
