package bench

// Benchmark B5: the Checksums feature's overhead and the cost of
// surviving a crash, at three database sizes.
//
// Two otherwise identical transactional products — with and without the
// Checksums feature — run the same load over an in-memory device: a
// committed put phase (every put is a forced commit, so each one pays
// the trailer seal on its journal pages), a timed read phase over the
// loaded keys, and for the trailered product a timed verify scrub of
// every allocated page. Then the instance is crashed (abandoned without
// Close) and the reopen is timed: redo recovery replays every commit
// from the journal, re-verifying each page trailer as it goes — the
// recovery-time numbers are what an embedded node pays at power-on.
//
// The feedback loop closes the same way B4's does for Tracing: the
// measured latency prices Checksums as a pure cost, so the greedy
// deriver minimizing p50 EXCLUDES it — and under a ROM budget sized
// between the base product and base+Checksums, requiring the feature is
// infeasible. Integrity, like observability, is a feature the NFP
// machinery prices rather than hides.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
	"time"

	"famedb/internal/composer"
	"famedb/internal/core"
	"famedb/internal/footprint"
	"famedb/internal/nfp"
	"famedb/internal/osal"
	"famedb/internal/solver"
)

// B5Config fixes the scenario.
type B5Config struct {
	// Sizes are the three database sizes, in committed records.
	Sizes      []int
	Seed       int64
	ValueBytes int
}

func defaultB5Config(ops int, seed int64) B5Config {
	base := ops / 8
	if base < 256 {
		base = 256
	}
	return B5Config{Sizes: []int{base, base * 4, base * 16}, Seed: seed, ValueBytes: 64}
}

// B5Point is one measured (checksums, size) cell.
type B5Point struct {
	Checksums bool `json:"checksums"`
	Records   int  `json:"records"`
	// Load phase: one forced commit per record.
	LoadSeconds   float64 `json:"load_seconds"`
	CommitsPerSec float64 `json:"commits_per_sec"`
	// Read phase: records timed gets over the loaded keys.
	ReadSeconds float64 `json:"read_seconds"`
	GetsPerSec  float64 `json:"gets_per_sec"`
	// Latency quantiles from the Statistics histograms, nanoseconds.
	GetP50Ns float64 `json:"get_p50_ns"`
	GetP99Ns float64 `json:"get_p99_ns"`
	PutP50Ns float64 `json:"put_p50_ns"`
	PutP99Ns float64 `json:"put_p99_ns"`
	// Verify scrub of every allocated page; zero without Checksums.
	VerifySeconds float64 `json:"verify_seconds,omitempty"`
	ScrubbedPages int     `json:"scrubbed_pages,omitempty"`
	// Power-on: the reopen replays every commit from the journal.
	RecoverySeconds   float64 `json:"recovery_seconds"`
	RecoveredCommits  int     `json:"recovered_commits"`
	RecoveryPerCommit float64 `json:"recovery_us_per_commit"`
}

// B5Overhead compares trailered vs plain at one size.
type B5Overhead struct {
	Records int `json:"records"`
	// Throughput cost of the trailer on the commit and read paths,
	// (plain - checksummed) / plain in percent.
	CommitOverheadPct float64 `json:"commit_overhead_pct"`
	ReadOverheadPct   float64 `json:"read_overhead_pct"`
	// Recovery-time ratio, checksummed / plain.
	RecoveryRatio float64 `json:"recovery_ratio"`
}

// B5Feedback is the closed loop: measured latency prices Checksums out,
// and a tight ROM budget makes requiring it infeasible.
type B5Feedback struct {
	Property         string   `json:"property"`
	MeasuredProducts int      `json:"measured_products"`
	Required         []string `json:"required"`
	DerivedFeatures  []string `json:"derived_features"`
	// SelectedChecksums reports whether the latency-minimizing greedy
	// deriver kept Checksums; pure costs get priced out.
	SelectedChecksums bool `json:"selected_checksums"`
	// ChecksumLatencyWeightNs is the fitted per-feature contribution of
	// Checksums to p50 latency.
	ChecksumLatencyWeightNs float64 `json:"checksum_latency_weight_ns"`
	BaseROM                 int     `json:"base_rom_bytes"`
	ChecksumROM             int     `json:"checksum_rom_bytes"`
	TightROMBudget          int     `json:"tight_rom_budget_bytes"`
	InfeasibleWithChecksums bool    `json:"infeasible_with_checksums"`
}

// B5Result is the machine-readable report (BENCH_5.json).
type B5Result struct {
	Sizes      []int        `json:"sizes"`
	Seed       int64        `json:"seed"`
	ValueBytes int          `json:"value_bytes"`
	Points     []B5Point    `json:"points"`
	Overheads  []B5Overhead `json:"overheads"`
	Feedback   B5Feedback   `json:"feedback"`
}

// b5Features is the measured product: transactional with Recovery (the
// reopen must replay) and Statistics for the latency histograms.
func b5Features(checksums bool) []string {
	fs := []string{
		"Linux", "BPlusTree", "BufferManager", "LRU", "DynamicAlloc",
		"Put", "Get", "Transaction", "ForceCommit", "Recovery", "Statistics",
	}
	if checksums {
		fs = append(fs, "Checksums")
	}
	return fs
}

// b5Run measures one (checksums, size) point.
func b5Run(cfg B5Config, checksums bool, records int) (B5Point, error) {
	pt := B5Point{Checksums: checksums, Records: records}
	fs := osal.NewMemFS()
	inst, err := composer.ComposeProduct(composer.Options{FS: fs}, b5Features(checksums)...)
	if err != nil {
		return pt, err
	}
	value := make([]byte, cfg.ValueBytes)
	for i := range value {
		value[i] = byte(i)
	}

	// Load: one forced commit per record.
	start := time.Now()
	for i := 0; i < records; i++ {
		tx := inst.Txn.Begin()
		if err := tx.Put([]byte(fmt.Sprintf("k%07d", i)), value); err != nil {
			inst.Close()
			return pt, err
		}
		if err := tx.Commit(); err != nil {
			inst.Close()
			return pt, err
		}
	}
	load := time.Since(start)
	pt.LoadSeconds = load.Seconds()
	pt.CommitsPerSec = float64(records) / load.Seconds()

	// Read: every key once, shuffled stride.
	start = time.Now()
	for i := 0; i < records; i++ {
		key := []byte(fmt.Sprintf("k%07d", (i*7919+int(cfg.Seed))%records))
		if _, err := inst.Store.Get(key); err != nil {
			inst.Close()
			return pt, err
		}
	}
	read := time.Since(start)
	pt.ReadSeconds = read.Seconds()
	pt.GetsPerSec = float64(records) / read.Seconds()

	snap, err := inst.Stats()
	if err != nil {
		inst.Close()
		return pt, err
	}
	pt.GetP50Ns = snap.Access.GetLatency.P50()
	pt.GetP99Ns = snap.Access.GetLatency.P99()
	pt.PutP50Ns = snap.Access.PutLatency.P50()
	pt.PutP99Ns = snap.Access.PutLatency.P99()

	if checksums {
		start = time.Now()
		rep, err := inst.Verify()
		if err != nil {
			inst.Close()
			return pt, err
		}
		pt.VerifySeconds = time.Since(start).Seconds()
		if rep.Pages == nil || !rep.Pages.Ok() {
			inst.Close()
			return pt, fmt.Errorf("B5: fresh store failed its scrub: %s", rep)
		}
		pt.ScrubbedPages = rep.Pages.PagesChecked
	}

	// Crash: abandon the instance without Close, then time the reopen —
	// recovery replays every commit from the journal.
	start = time.Now()
	inst2, err := composer.ComposeProduct(composer.Options{FS: fs}, b5Features(checksums)...)
	if err != nil {
		return pt, fmt.Errorf("B5 recovery: %w", err)
	}
	pt.RecoverySeconds = time.Since(start).Seconds()
	pt.RecoveredCommits = inst2.Txn.Recovered
	if pt.RecoveredCommits > 0 {
		pt.RecoveryPerCommit = pt.RecoverySeconds / float64(pt.RecoveredCommits) * 1e6
	}
	if pt.RecoveredCommits != records {
		inst2.Close()
		return pt, fmt.Errorf("B5: recovered %d commits, want %d", pt.RecoveredCommits, records)
	}
	if err := inst2.Close(); err != nil {
		return pt, err
	}
	return pt, nil
}

// B5 runs the checksum-overhead and recovery-time benchmark and closes
// the feedback loop.
func B5(n int, seed int64) (*B5Result, error) {
	cfg := defaultB5Config(n, seed)
	res := &B5Result{Sizes: cfg.Sizes, Seed: cfg.Seed, ValueBytes: cfg.ValueBytes}

	m := core.FAMEModel()
	store := nfp.NewStore(m)
	largest := cfg.Sizes[len(cfg.Sizes)-1]
	byRecords := map[int]*B5Overhead{}
	for _, checksums := range []bool{false, true} {
		for _, records := range cfg.Sizes {
			pt, err := b5Run(cfg, checksums, records)
			if err != nil {
				return nil, fmt.Errorf("B5 checksums=%v/%d: %w", checksums, records, err)
			}
			res.Points = append(res.Points, pt)
			ov := byRecords[records]
			if ov == nil {
				ov = &B5Overhead{Records: records}
				byRecords[records] = ov
			}
			if checksums {
				if plain := findB5(res.Points, false, records); plain != nil {
					ov.CommitOverheadPct = (plain.CommitsPerSec - pt.CommitsPerSec) / plain.CommitsPerSec * 100
					ov.ReadOverheadPct = (plain.GetsPerSec - pt.GetsPerSec) / plain.GetsPerSec * 100
					if plain.RecoverySeconds > 0 {
						ov.RecoveryRatio = pt.RecoverySeconds / plain.RecoverySeconds
					}
				}
			}
			if records == largest {
				err := nfp.RecordMeasurement(store, b5Features(checksums), map[nfp.Property]float64{
					nfp.Throughput:       pt.GetsPerSec,
					nfp.CommitThroughput: pt.CommitsPerSec,
					nfp.LatencyP50:       (pt.GetP50Ns + pt.PutP50Ns) / 2,
					nfp.LatencyP99:       (pt.GetP99Ns + pt.PutP99Ns) / 2,
				})
				if err != nil {
					return nil, err
				}
			}
		}
	}
	for _, records := range cfg.Sizes {
		res.Overheads = append(res.Overheads, *byRecords[records])
	}

	// Latency side: greedy over the signed fitted table leaves the pure
	// cost out.
	tab, err := store.SignedTable(nfp.LatencyP50)
	if err != nil {
		return nil, err
	}
	required := []string{"Linux", "BPlusTree", "Put", "Get"}
	derived, err := solver.Greedy(solver.Request{Model: m, Table: tab, Required: required})
	if err != nil {
		return nil, err
	}
	cw, _ := store.FeatureWeight(nfp.LatencyP50, "Checksums")

	// ROM side: a budget that fits the base product but not the trailer
	// pager makes requiring Checksums infeasible.
	rom, err := footprint.Load("FAME-DBMS")
	if err != nil {
		return nil, err
	}
	base, err := solver.BranchAndBound(solver.Request{Model: m, Table: rom, Required: required})
	if err != nil {
		return nil, err
	}
	checksumROM := rom.Features["Checksums"]
	budget := base.ROM + checksumROM/2
	_, infErr := solver.BranchAndBound(solver.Request{
		Model:    m,
		Table:    rom,
		Required: append(append([]string{}, required...), "Checksums"),
		MaxROM:   budget,
	})
	res.Feedback = B5Feedback{
		Property:                string(nfp.LatencyP50),
		MeasuredProducts:        len(store.Measurements()),
		Required:                required,
		DerivedFeatures:         derived.Config.SelectedNames(),
		SelectedChecksums:       derived.Config.Has("Checksums"),
		ChecksumLatencyWeightNs: cw,
		BaseROM:                 base.ROM,
		ChecksumROM:             checksumROM,
		TightROMBudget:          budget,
		InfeasibleWithChecksums: errors.Is(infErr, solver.ErrInfeasible),
	}
	if infErr != nil && !errors.Is(infErr, solver.ErrInfeasible) {
		return nil, infErr
	}
	return res, nil
}

func findB5(pts []B5Point, checksums bool, records int) *B5Point {
	for i := range pts {
		if pts[i].Checksums == checksums && pts[i].Records == records {
			return &pts[i]
		}
	}
	return nil
}

// FormatB5 renders the B5 result as text.
func FormatB5(r *B5Result) string {
	var b strings.Builder
	fmt.Fprintln(&b, "B5 — Checksums: CRC-trailer overhead and crash-recovery time at three DB sizes")
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "checksums\trecords\tcommits/s\tgets/s\tget p50 ns\tscrub s\tscrubbed\trecovery s\tus/commit")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%v\t%d\t%.0f\t%.0f\t%.0f\t%.4f\t%d\t%.4f\t%.1f\n",
			p.Checksums, p.Records, p.CommitsPerSec, p.GetsPerSec, p.GetP50Ns,
			p.VerifySeconds, p.ScrubbedPages, p.RecoverySeconds, p.RecoveryPerCommit)
	}
	w.Flush()
	for _, ov := range r.Overheads {
		fmt.Fprintf(&b, "overhead at %6d records: commit %+.1f%%, read %+.1f%%, recovery ×%.2f\n",
			ov.Records, ov.CommitOverheadPct, ov.ReadOverheadPct, ov.RecoveryRatio)
	}
	fmt.Fprintf(&b, "feedback: min %s via greedy over %d measurements, required %v:\n  %v\n",
		r.Feedback.Property, r.Feedback.MeasuredProducts, r.Feedback.Required,
		r.Feedback.DerivedFeatures)
	fmt.Fprintf(&b, "  Checksums selected: %v (latency weight %+.0f ns)\n",
		r.Feedback.SelectedChecksums, r.Feedback.ChecksumLatencyWeightNs)
	fmt.Fprintf(&b, "  ROM: base %d B, Checksums +%d B; requiring Checksums under a %d B budget infeasible: %v\n",
		r.Feedback.BaseROM, r.Feedback.ChecksumROM, r.Feedback.TightROMBudget,
		r.Feedback.InfeasibleWithChecksums)
	return b.String()
}

// WriteJSON emits the machine-readable benchmark report (BENCH_5.json).
func (r *B5Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
