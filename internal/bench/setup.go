package bench

import (
	"famedb/internal/bdb"
	"famedb/internal/composer"
	"famedb/internal/core"
	"famedb/internal/osal"
	"famedb/internal/workload"
)

// Step executes one pre-generated workload operation.
type Step func() error

// SetupBDB opens a preloaded case-study engine and returns a step
// function executing the Fig. 1 mix, for use inside testing.B loops
// (setup cost excluded by the caller via b.ResetTimer).
func SetupBDB(mode core.BDBMode, features []string, method bdb.Method, seed int64) (Step, func() error, error) {
	env, err := bdb.Open(bdb.Config{
		FS:         osal.NewMemFS(),
		Mode:       mode,
		Features:   features,
		PageSize:   4096,
		Passphrase: []byte("bench"),
	})
	if err != nil {
		return nil, nil, err
	}
	db, err := env.CreateDB("bench", method)
	if err != nil {
		env.Close()
		return nil, nil, err
	}
	gen := workload.New(workload.Fig1Config(seed))
	for _, op := range gen.Preload() {
		if err := db.Put(op.Key, op.Value); err != nil {
			env.Close()
			return nil, nil, err
		}
	}
	step := func() error {
		op := gen.Next()
		switch op.Kind {
		case workload.OpGet:
			_, _, err := db.Get(op.Key)
			return err
		case workload.OpPut:
			return db.Put(op.Key, op.Value)
		}
		return nil
	}
	return step, env.Close, nil
}

// SetupFAME composes a preloaded FAME-DBMS product and returns a step
// function executing the given workload config.
func SetupFAME(features []string, cfg workload.Config, opts composer.Options) (Step, func() error, error) {
	inst, err := composer.ComposeProduct(opts, features...)
	if err != nil {
		return nil, nil, err
	}
	gen := workload.New(cfg)
	for _, op := range gen.Preload() {
		if err := inst.Store.Put(op.Key, op.Value); err != nil {
			inst.Close()
			return nil, nil, err
		}
	}
	step := func() error {
		op := gen.Next()
		switch op.Kind {
		case workload.OpGet:
			_, err := inst.Store.Get(op.Key)
			return err
		case workload.OpPut:
			return inst.Store.Put(op.Key, op.Value)
		case workload.OpUpdate:
			return inst.Store.Update(op.Key, op.Value)
		case workload.OpScan:
			n := 0
			return inst.Store.Scan(op.Key, nil, func(k, v []byte) bool {
				n++
				return n < 20
			})
		}
		return nil
	}
	return step, inst.Close, nil
}
