package bench

// Benchmark B10: the Replication + Server features' cost and the
// replica crash-point harness.
//
// Throughput side: the same pipelined put workload — cfg.Clients wire
// clients, each keeping a window of requests in flight over loopback
// TCP — runs against five primaries: the Server product without the
// Replication feature at all, the replicated product with 0, 1 and 2
// live replicas streaming its WAL, and the replicated product with one
// DEAD replica (a subscribed feed nobody consumes — the exact
// primary-side shape of a replica that froze mid-stream). The dead
// point is the robustness claim in numbers: the shipper drops frames
// and marks the feed broken instead of blocking, so throughput stays
// within noise of the no-replica baseline while the drop counter shows
// the failure was real. Live replicas are checked for byte-exact
// convergence (prefix CRC equality) and index equality after the run.
//
// The measurements close the paper's feedback loop like B1-B9: the
// with/without-Replication products' commit latency feeds the NFP
// store, the fitted table prices the feature, and the footprint side
// sizes a ROM budget under which requiring Replication is infeasible.
//
// Crash side: ReplicaCrashPoints kills a replica at EVERY shipped-frame
// boundary (power-cut model: unsynced state reverts) and, in torn mode,
// at every device write op with a torn tail (most-persisted model).
// After each kill the replica is recomposed over the crashed
// filesystem, ordinary redo recovery runs, and the invariants are
// checked: the recovered log is a byte-exact prefix of the primary's
// (CRC over [0,end)), an incremental catch-up from that offset
// converges to the primary's full log, the replicated index equals the
// primary's pair for pair, and the page/journal scrub comes back clean.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"text/tabwriter"
	"time"

	"famedb/internal/composer"
	"famedb/internal/core"
	"famedb/internal/footprint"
	"famedb/internal/nfp"
	"famedb/internal/osal"
	"famedb/internal/repl"
	"famedb/internal/server"
	"famedb/internal/solver"
)

// B10Config fixes the scenario.
type B10Config struct {
	Ops        int   // puts per measured point, split across clients
	Clients    int   // concurrent wire clients
	Window     int   // pipelined requests in flight per client
	ValueBytes int   // payload per put
	Seed       int64 // drives the crash harness sweeps
	// CrashCommits is the committed-transaction count for the crash
	// harness workload (boundary sweep width follows from it).
	CrashCommits int
}

func defaultB10Config(ops int, seed int64) B10Config {
	if ops < 4096 {
		ops = 4096
	}
	return B10Config{
		Ops: ops, Clients: 16, Window: 32, ValueBytes: 64,
		Seed: seed, CrashCommits: 16,
	}
}

// b10Features is the measured product: the concurrent group-commit
// stack behind the TCP front end, with or without WAL shipping.
func b10Features(replicated bool) []string {
	fs := []string{
		"Linux", "BPlusTree", "BufferManager", "LRU", "DynamicAlloc",
		"Put", "Get", "Update", "Remove",
		"Transaction", "GroupCommit", "Locking", "Recovery",
		"Statistics", "Server",
	}
	if replicated {
		fs = append(fs, "Replication")
	}
	return fs
}

// B10Point is one measured primary configuration.
type B10Point struct {
	Scenario    string  `json:"scenario"` // "no-repl", "0", "1", "2", "1-dead"
	Replicated  bool    `json:"replicated"`
	Replicas    int     `json:"replicas"`
	Dead        int     `json:"dead_replicas"`
	Ops         int     `json:"ops"`
	Seconds     float64 `json:"seconds"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	CommitP50Ns float64 `json:"commit_p50_ns"`
	CommitP99Ns float64 `json:"commit_p99_ns"`
	// Shipping counters from the Statistics registry; zero for no-repl.
	ShippedChunks int64 `json:"shipped_chunks"`
	ShippedBytes  int64 `json:"shipped_bytes"`
	Drops         int64 `json:"drops"`
	MaxLagBytes   int64 `json:"max_lag_bytes"`
	// Converged reports every live replica caught up to the primary's
	// exact log (prefix CRC equality) with an identical index.
	Converged bool `json:"converged"`
	// DeadDropped is the dead feed's drop count — proof the failure
	// happened and was absorbed rather than blocking commits.
	DeadDropped int64 `json:"dead_dropped,omitempty"`
}

// B10Feedback prices Replication via the measured NFP loop and the
// footprint table, B6-style.
type B10Feedback struct {
	Property         string   `json:"property"`
	MeasuredProducts int      `json:"measured_products"`
	Required         []string `json:"required"`
	DerivedFeatures  []string `json:"derived_features"`
	// SelectedReplication reports whether the latency-minimizing greedy
	// deriver kept Replication.
	SelectedReplication bool `json:"selected_replication"`
	// ReplicationLatencyWeightNs is the fitted per-feature contribution
	// of Replication to commit p50 latency.
	ReplicationLatencyWeightNs float64 `json:"replication_latency_weight_ns"`
	// ROM side: the base product, the delta for carrying Replication
	// (with its implied Transaction+Recovery closure), and the budget
	// under which requiring it fails.
	BaseROM                   int  `json:"base_rom_bytes"`
	ReplicationROMDelta       int  `json:"replication_rom_delta_bytes"`
	TightROMBudget            int  `json:"tight_rom_budget_bytes"`
	InfeasibleWithReplication bool `json:"infeasible_with_replication"`
}

// B10Result is the machine-readable report (BENCH_10.json).
type B10Result struct {
	Ops        int        `json:"ops_per_point"`
	Clients    int        `json:"clients"`
	Window     int        `json:"window"`
	ValueBytes int        `json:"value_bytes"`
	Seed       int64      `json:"seed"`
	Points     []B10Point `json:"points"`
	// DeadVsZeroPct is the acceptance number: throughput loss of the
	// one-dead-replica primary relative to the replicated-but-idle
	// baseline, percent (positive = slower with the dead replica).
	DeadVsZeroPct float64     `json:"dead_vs_zero_pct"`
	Feedback      B10Feedback `json:"feedback"`
	// Crash holds the replica crash-point sweeps (boundary and torn).
	Crash []*ReplicaCrashReport `json:"crash"`
}

// b10Scenario describes one measured primary configuration.
type b10Scenario struct {
	name     string
	repl     bool
	replicas int
	dead     int
}

var b10Scenarios = []b10Scenario{
	{"no-repl", false, 0, 0},
	{"0", true, 0, 0},
	{"1", true, 1, 0},
	{"2", true, 2, 0},
	{"1-dead", true, 0, 1},
}

// b10Run measures one scenario: compose the primary, serve it, attach
// the replicas (live ones stream, a dead one subscribes and never
// consumes), then hammer it with pipelined puts and check convergence.
func b10Run(cfg B10Config, sc b10Scenario) (B10Point, error) {
	pt := B10Point{
		Scenario: sc.name, Replicated: sc.repl,
		Replicas: sc.replicas, Dead: sc.dead, Ops: cfg.Ops,
	}
	primary, err := composer.ComposeProduct(composer.Options{}, b10Features(sc.repl)...)
	if err != nil {
		return pt, err
	}
	defer primary.Close()
	srv, err := primary.Serve("127.0.0.1:0")
	if err != nil {
		return pt, err
	}

	type liveReplica struct {
		inst *composer.Instance
		rep  *server.Replica
	}
	var live []liveReplica
	defer func() {
		for _, r := range live {
			r.rep.Stop()
			r.inst.Close()
		}
	}()
	for i := 0; i < sc.replicas; i++ {
		inst, err := composer.ComposeProduct(composer.Options{}, b10Features(true)...)
		if err != nil {
			return pt, err
		}
		rep, err := inst.ReplicateFrom(srv.Addr())
		if err != nil {
			inst.Close()
			return pt, err
		}
		live = append(live, liveReplica{inst, rep})
	}
	// A dead replica, seen from the primary: a feed that was subscribed
	// (the session handshake succeeded) and is never drained again. The
	// shipper must drop and mark it broken, never block a commit.
	var deadFeed *repl.Feed
	if sc.dead > 0 {
		deadFeed = primary.Shipper().Subscribe()
		defer primary.Shipper().Unsubscribe(deadFeed)
	}

	value := make([]byte, cfg.ValueBytes)
	for i := range value {
		value[i] = byte(i)
	}
	errs := make(chan error, cfg.Clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < cfg.Clients; c++ {
		n := cfg.Ops / cfg.Clients
		if c < cfg.Ops%cfg.Clients {
			n++
		}
		wg.Add(1)
		go func(c, n int) {
			defer wg.Done()
			cl, err := server.DialClient(srv.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			sent := 0
			for done := 0; done < n; {
				for sent-done < cfg.Window && sent < n {
					if err := cl.QueuePut(
						fmt.Appendf(nil, "c%02d-%07d", c, sent), value); err != nil {
						errs <- err
						return
					}
					sent++
				}
				if err := cl.Flush(); err != nil {
					errs <- err
					return
				}
				for done < sent {
					if err := cl.AwaitOK(); err != nil {
						errs <- err
						return
					}
					done++
				}
			}
		}(c, n)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		return pt, err
	}
	pt.Seconds = elapsed.Seconds()
	pt.OpsPerSec = float64(cfg.Ops) / elapsed.Seconds()

	// Convergence: every live replica catches up to the primary's exact
	// log bytes and holds an identical index.
	pt.Converged = true
	end := primary.Txn.WALEnd()
	for _, r := range live {
		if !r.rep.WaitFor(end, 30*time.Second) {
			return pt, fmt.Errorf("replica stuck at %d of %d", r.rep.Offset(), end)
		}
		ap, err := r.inst.ShipApplier()
		if err != nil {
			return pt, err
		}
		rEnd, rCRC, err := ap.PrefixCRC()
		if err != nil {
			return pt, err
		}
		pCRC, err := primary.Txn.WALPrefixCRC(rEnd)
		if err != nil || rEnd != end || rCRC != pCRC {
			pt.Converged = false
		}
		if err := repl.VerifyIndexes(primary.Store.Index(), r.inst.Store.Index()); err != nil {
			pt.Converged = false
		}
	}
	if deadFeed != nil {
		pt.DeadDropped = deadFeed.Dropped()
		if !deadFeed.Broken() || pt.DeadDropped == 0 {
			return pt, fmt.Errorf("dead feed not broken (dropped %d): the workload was too small to overflow it", pt.DeadDropped)
		}
	}

	snap, err := primary.Stats()
	if err != nil {
		return pt, err
	}
	pt.CommitP50Ns = snap.Txn.CommitLatency.P50()
	pt.CommitP99Ns = snap.Txn.CommitLatency.P99()
	pt.ShippedChunks = snap.Repl.ShippedChunks
	pt.ShippedBytes = snap.Repl.ShippedBytes
	pt.Drops = snap.Repl.Drops
	pt.MaxLagBytes = snap.Repl.MaxLagBytes
	return pt, nil
}

// B10 runs the replication benchmark: throughput across the five
// primary configurations, the NFP/ROM feedback loop for the
// Replication feature, and both replica crash-point sweeps.
func B10(n int, seed int64) (*B10Result, error) {
	cfg := defaultB10Config(n, seed)
	res := &B10Result{
		Ops: cfg.Ops, Clients: cfg.Clients, Window: cfg.Window,
		ValueBytes: cfg.ValueBytes, Seed: cfg.Seed,
	}

	m := core.FAMEModel()
	store := nfp.NewStore(m)
	var zero, dead float64
	for _, sc := range b10Scenarios {
		pt, err := b10Run(cfg, sc)
		if err != nil {
			return nil, fmt.Errorf("B10 %s: %w", sc.name, err)
		}
		res.Points = append(res.Points, pt)
		switch sc.name {
		case "0":
			zero = pt.OpsPerSec
		case "1-dead":
			dead = pt.OpsPerSec
		}
		// Feed the loop from the configurations whose feature sets
		// differ only in Replication: the plain Server product and the
		// replicated product actually streaming to a replica.
		if sc.name == "no-repl" || sc.name == "1" {
			err := nfp.RecordMeasurement(store, b10Features(sc.repl), map[nfp.Property]float64{
				nfp.Throughput: pt.OpsPerSec,
				nfp.LatencyP50: pt.CommitP50Ns,
				nfp.LatencyP99: pt.CommitP99Ns,
			})
			if err != nil {
				return nil, err
			}
		}
	}
	if zero > 0 {
		res.DeadVsZeroPct = (zero - dead) / zero * 100
	}

	// Latency side: the fitted table decides whether the measured
	// shipping cost justifies carrying Replication.
	tab, err := store.SignedTable(nfp.LatencyP50)
	if err != nil {
		return nil, err
	}
	required := []string{"Linux", "BPlusTree", "Put", "Get"}
	derived, err := solver.Greedy(solver.Request{Model: m, Table: tab, Required: required})
	if err != nil {
		return nil, err
	}
	lw, _ := store.FeatureWeight(nfp.LatencyP50, "Replication")

	// ROM side: Replication's real price includes its implied closure
	// (Transaction, Recovery), so size the budget between the minimal
	// base product and the minimal replicated one.
	rom, err := footprint.Load("FAME-DBMS")
	if err != nil {
		return nil, err
	}
	base, err := solver.BranchAndBound(solver.Request{Model: m, Table: rom, Required: required})
	if err != nil {
		return nil, err
	}
	withRepl, err := solver.BranchAndBound(solver.Request{
		Model: m, Table: rom,
		Required: append(append([]string{}, required...), "Replication"),
	})
	if err != nil {
		return nil, err
	}
	delta := withRepl.ROM - base.ROM
	budget := base.ROM + delta/2
	_, infErr := solver.BranchAndBound(solver.Request{
		Model: m, Table: rom,
		Required: append(append([]string{}, required...), "Replication"),
		MaxROM:   budget,
	})
	if infErr != nil && !errors.Is(infErr, solver.ErrInfeasible) {
		return nil, infErr
	}
	res.Feedback = B10Feedback{
		Property:                   string(nfp.LatencyP50),
		MeasuredProducts:           len(store.Measurements()),
		Required:                   required,
		DerivedFeatures:            derived.Config.SelectedNames(),
		SelectedReplication:        derived.Config.Has("Replication"),
		ReplicationLatencyWeightNs: lw,
		BaseROM:                    base.ROM,
		ReplicationROMDelta:        delta,
		TightROMBudget:             budget,
		InfeasibleWithReplication:  errors.Is(infErr, solver.ErrInfeasible),
	}

	for _, torn := range []bool{false, true} {
		r, err := ReplicaCrashPoints(ReplicaCrashConfig{
			Commits: cfg.CrashCommits, Torn: torn, Seed: cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		res.Crash = append(res.Crash, r)
	}
	return res, nil
}

// Ok reports whether every replica crash point recovered and every
// live replica converged.
func (r *B10Result) Ok() bool {
	for _, p := range r.Points {
		if !p.Converged {
			return false
		}
	}
	for _, c := range r.Crash {
		if !c.Ok() {
			return false
		}
	}
	return true
}

// FormatB10 renders the B10 result as text.
func FormatB10(r *B10Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "B10 — Replication: pipelined puts over TCP, %d clients, window %d\n",
		r.Clients, r.Window)
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "scenario\tops/s\tcommit p50 ns\tshipped chunks\tdrops\tmax lag B\tconverged")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%s\t%.0f\t%.0f\t%d\t%d\t%d\t%v\n",
			p.Scenario, p.OpsPerSec, p.CommitP50Ns, p.ShippedChunks, p.Drops,
			p.MaxLagBytes, p.Converged)
	}
	w.Flush()
	fmt.Fprintf(&b, "one dead replica costs %+.1f%% vs the idle replicated baseline\n",
		r.DeadVsZeroPct)
	fmt.Fprintf(&b, "feedback: min %s via greedy over %d measurements, required %v:\n  %v\n",
		r.Feedback.Property, r.Feedback.MeasuredProducts, r.Feedback.Required,
		r.Feedback.DerivedFeatures)
	fmt.Fprintf(&b, "  Replication selected: %v (latency weight %+.0f ns)\n",
		r.Feedback.SelectedReplication, r.Feedback.ReplicationLatencyWeightNs)
	fmt.Fprintf(&b, "  ROM: base %d B, Replication closure +%d B; requiring it under a %d B budget infeasible: %v\n",
		r.Feedback.BaseROM, r.Feedback.ReplicationROMDelta, r.Feedback.TightROMBudget,
		r.Feedback.InfeasibleWithReplication)
	for _, c := range r.Crash {
		b.WriteString(FormatReplicaCrashPoints(c))
	}
	return b.String()
}

// WriteJSON emits the machine-readable benchmark report (BENCH_10.json).
func (r *B10Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ---------------------------------------------------------------------
// Replica crash-point harness.

// ReplicaCrashConfig fixes the crash sweep scenario.
type ReplicaCrashConfig struct {
	// Commits is the number of committed transactions the primary ships
	// (each becomes at least one frame boundary).
	Commits int
	// Torn selects the torn-write sweep over every device write op
	// instead of the power-cut sweep over every frame boundary.
	Torn bool
	// Seed drives the torn-prefix lengths for exact replay.
	Seed int64
}

// ReplicaCrashReport is the sweep outcome.
type ReplicaCrashReport struct {
	Mode    string `json:"mode"` // "boundary" or "torn"
	Commits int    `json:"commits"`
	// Chunks is the number of shipped frames the primary produced.
	Chunks int `json:"chunks"`
	// Points is the number of crash points swept.
	Points int `json:"points"`
	// Recovered counts points where every invariant held after the
	// kill: byte-exact prefix, clean catch-up, equal indexes, clean
	// scrub.
	Recovered int `json:"recovered"`
	// Injected counts torn points whose tear actually fired.
	Injected int `json:"injected"`
	// Failures lists invariant violations, one line per failed point.
	Failures []string `json:"failures,omitempty"`
}

// Ok reports whether every crash point recovered.
func (r *ReplicaCrashReport) Ok() bool { return len(r.Failures) == 0 }

// rcpFeatures is the harnessed node: transactional with Recovery (the
// redo path the applier shares) and Checksums (so torn pages surface as
// typed corruption). Replication itself is not composed — the harness
// drives the ship applier directly, standing in for the network layer.
var rcpFeatures = []string{
	"Linux", "BPlusTree", "BufferManager", "LRU", "DynamicAlloc",
	"Put", "Get", "Remove", "Transaction", "Recovery", "Checksums",
}

func rcpCompose(fs osal.FS) (*composer.Instance, error) {
	return composer.ComposeProduct(composer.Options{
		FS: fs,
		// A tiny cache forces evictions, so replica index pages land on
		// the device inside the crash windows, not only at close.
		CachePages: 4,
	}, rcpFeatures...)
}

// rcpChunk is one shipped frame: the raw bytes of one durable primary
// append at its log offset.
type rcpChunk struct {
	base int64
	buf  []byte
}

// rcpPrimary builds the shipping primary: a workload of puts and
// removes, every durable append captured as a chunk.
func rcpPrimary(commits int) (*composer.Instance, []rcpChunk, error) {
	inst, err := rcpCompose(osal.NewMemFS())
	if err != nil {
		return nil, nil, err
	}
	var chunks []rcpChunk
	inst.Txn.SetOnShip(func(base int64, buf []byte) {
		chunks = append(chunks, rcpChunk{base, append([]byte(nil), buf...)})
	})
	for i := 0; i < commits; i++ {
		tx := inst.Txn.Begin()
		key := fmt.Appendf(nil, "k%04d", i)
		if err := tx.Put(key, fmt.Appendf(nil, "value-of-k%04d", i)); err != nil {
			inst.Close()
			return nil, nil, err
		}
		// Every fourth transaction also retracts an earlier key, so the
		// replayed stream exercises the remove path.
		if i%4 == 3 {
			if err := tx.Remove(fmt.Appendf(nil, "k%04d", i-2)); err != nil {
				inst.Close()
				return nil, nil, err
			}
		}
		if err := tx.Commit(); err != nil {
			inst.Close()
			return nil, nil, err
		}
	}
	return inst, chunks, nil
}

// rcpCheck verifies a recovered replica against the primary: byte-exact
// prefix at its recovered end, catch-up convergence to the full log,
// index equality, and a clean scrub. Returns a failure description or "".
func rcpCheck(primary *composer.Instance, fs osal.FS) string {
	inst, err := rcpCompose(fs)
	if err != nil {
		return fmt.Sprintf("recompose: %v", err)
	}
	defer inst.Close()
	ap := inst.Txn.ShipApplier()
	if ap.NeedsResync() {
		return "recovered replica demands a snapshot resync (marker left behind)"
	}
	end, crc, err := ap.PrefixCRC()
	if err != nil {
		return fmt.Sprintf("replica prefix crc: %v", err)
	}
	walEnd := primary.Txn.WALEnd()
	if end > walEnd {
		return fmt.Sprintf("replica log end %d past primary end %d", end, walEnd)
	}
	pcrc, err := primary.Txn.WALPrefixCRC(end)
	if err != nil {
		return fmt.Sprintf("primary prefix crc at %d: %v", end, err)
	}
	if crc != pcrc {
		return fmt.Sprintf("recovered log is not a byte-exact primary prefix at %d", end)
	}
	// Incremental catch-up from exactly where recovery left the log —
	// the reconnect handshake's happy path.
	if end < walEnd {
		buf, err := primary.Txn.ReadWALRange(end, walEnd)
		if err != nil {
			return fmt.Sprintf("catch-up read [%d,%d): %v", end, walEnd, err)
		}
		if err := ap.Apply(end, buf); err != nil {
			return fmt.Sprintf("catch-up apply at %d: %v", end, err)
		}
	}
	end2, crc2, err := ap.PrefixCRC()
	if err != nil {
		return fmt.Sprintf("caught-up prefix crc: %v", err)
	}
	fullCRC, err := primary.Txn.WALPrefixCRC(walEnd)
	if err != nil {
		return fmt.Sprintf("primary full crc: %v", err)
	}
	if end2 != walEnd || crc2 != fullCRC {
		return fmt.Sprintf("catch-up did not converge: end %d of %d", end2, walEnd)
	}
	if err := repl.VerifyIndexes(primary.Store.Index(), inst.Store.Index()); err != nil {
		return fmt.Sprintf("replicated index verify: %v", err)
	}
	rep, err := inst.Verify()
	if err != nil {
		return fmt.Sprintf("scrub: %v", err)
	}
	if !rep.Ok() {
		return fmt.Sprintf("scrub found damage: %s", rep)
	}
	return ""
}

// ReplicaCrashPoints sweeps replica kills across the shipped stream.
//
// Boundary mode composes a replica over a crash-consistent filesystem,
// applies the first i chunks, then pulls the power (everything unsynced
// reverts — the applier's own WAL syncs are all that survive) for every
// i in [0, chunks]. Torn mode instead schedules a torn write at every
// device write op the full apply performs, so the kill lands INSIDE an
// apply and recovery must truncate the torn tail back to a frame
// boundary.
func ReplicaCrashPoints(cfg ReplicaCrashConfig) (*ReplicaCrashReport, error) {
	if cfg.Commits < 8 {
		cfg.Commits = 8
	}
	rep := &ReplicaCrashReport{Mode: "boundary", Commits: cfg.Commits}
	if cfg.Torn {
		rep.Mode = "torn"
	}
	primary, chunks, err := rcpPrimary(cfg.Commits)
	if err != nil {
		return nil, err
	}
	defer primary.Close()
	rep.Chunks = len(chunks)
	if len(chunks) < cfg.Commits {
		return nil, fmt.Errorf("replica crashpoints: only %d chunks shipped for %d commits", len(chunks), cfg.Commits)
	}

	if !cfg.Torn {
		for i := 0; i <= len(chunks); i++ {
			rep.Points++
			crash := osal.NewCrashFS(osal.NewMemFS())
			inst, err := rcpCompose(crash)
			if err != nil {
				return nil, err
			}
			ap := inst.Txn.ShipApplier()
			applyErr := ""
			for _, c := range chunks[:i] {
				if err := ap.Apply(c.base, c.buf); err != nil {
					applyErr = fmt.Sprintf("apply at %d: %v", c.base, err)
					break
				}
			}
			// Power loss: unsynced state reverts, the instance is
			// abandoned, never Closed.
			if err := crash.Crash(); err != nil {
				return nil, err
			}
			if applyErr == "" {
				applyErr = rcpCheck(primary, crash)
			}
			if applyErr != "" {
				rep.Failures = append(rep.Failures, fmt.Sprintf("boundary@%d: %s", i, applyErr))
				continue
			}
			rep.Recovered++
		}
		return rep, nil
	}

	// Probe run: count the device write ops one full clean apply
	// performs — the torn sweep's width.
	probeFS := osal.NewFaultFS(osal.NewMemFS())
	inst, err := rcpCompose(probeFS)
	if err != nil {
		return nil, err
	}
	probeSched := osal.NewSchedule(cfg.Seed)
	probeFS.SetSchedule(probeSched)
	ap := inst.Txn.ShipApplier()
	for _, c := range chunks {
		if err := ap.Apply(c.base, c.buf); err != nil {
			inst.Close()
			return nil, fmt.Errorf("probe apply at %d: %w", c.base, err)
		}
	}
	writeOps := probeSched.Counts()[osal.OpWrite]
	if err := inst.Close(); err != nil {
		return nil, err
	}
	if writeOps < 8 {
		return nil, fmt.Errorf("replica crashpoints: full apply performs only %d write ops; sweep pointless", writeOps)
	}

	for t := int64(1); t <= writeOps; t++ {
		rep.Points++
		fs := osal.NewFaultFS(osal.NewMemFS())
		inst, err := rcpCompose(fs)
		if err != nil {
			return nil, err
		}
		// Write op t tears; every later write fails until "the power
		// returns" (schedule removed after the crash).
		sched := osal.NewSchedule(cfg.Seed + t)
		sched.Add(osal.Rule{Class: osal.OpWrite, At: t, Kind: osal.FaultTorn})
		sched.Add(osal.Rule{Class: osal.OpWrite, At: t + 1, Kind: osal.FaultError, Heal: 1 << 30})
		fs.SetSchedule(sched)
		ap := inst.Txn.ShipApplier()
		for _, c := range chunks {
			if err := ap.Apply(c.base, c.buf); err != nil {
				break
			}
			if len(sched.Injections()) > 0 {
				break
			}
		}
		if len(sched.Injections()) > 0 {
			rep.Injected++
		}
		fs.SetSchedule(nil)
		// Crash: abandon the instance, never Close.
		if fail := rcpCheck(primary, fs); fail != "" {
			rep.Failures = append(rep.Failures, fmt.Sprintf("torn@%d: %s", t, fail))
			continue
		}
		rep.Recovered++
	}
	return rep, nil
}

// FormatReplicaCrashPoints renders the sweep report as text.
func FormatReplicaCrashPoints(r *ReplicaCrashReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "replica crash-point harness (%s): %d commits shipped as %d frames, %d kill points\n",
		r.Mode, r.Commits, r.Chunks, r.Points)
	fmt.Fprintf(&b, "  recovered byte-exact and caught up: %d/%d", r.Recovered, r.Points)
	if r.Mode == "torn" {
		fmt.Fprintf(&b, " (tears fired: %d)", r.Injected)
	}
	fmt.Fprintln(&b)
	for _, f := range r.Failures {
		fmt.Fprintf(&b, "  FAIL %s\n", f)
	}
	if r.Ok() {
		fmt.Fprintln(&b, "  every kill recovered to a byte-exact prefix and converged")
	}
	return b.String()
}

// WriteJSON emits the machine-readable sweep report.
func (r *ReplicaCrashReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
