package stats

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"
)

// fmtTotalNs renders a nanosecond total compactly for Format.
func fmtTotalNs(ns int64) string { return time.Duration(ns).String() }

// Snapshot is a point-in-time copy of every metric of a Registry: plain
// values, safe to retain, serialize, and compare after the product is
// closed.
type Snapshot struct {
	Buffer BufferSnapshot `json:"buffer"`
	Pager  PagerSnapshot  `json:"pager"`
	BTree  BTreeSnapshot  `json:"btree"`
	Txn    TxnSnapshot    `json:"txn"`
	SQL    SQLSnapshot    `json:"sql"`
	Access AccessSnapshot `json:"access"`
	Trace  TraceSnapshot  `json:"trace"`
	Fault  FaultSnapshot  `json:"fault"`
	MVCC   MVCCSnapshot   `json:"mvcc"`
	Repl   ReplSnapshot   `json:"repl"`
	// Queries is the QueryStats feature's per-shape profile section;
	// nil when that feature is not composed.
	Queries *QuerySnapshot `json:"queries,omitempty"`
}

// BufferSnapshot copies the buffer-manager counters.
type BufferSnapshot struct {
	Policy string `json:"policy,omitempty"`
	// Shards is the pool's lock-stripe count: 1 for the single-latch
	// manager, >1 with the ShardedBuffer feature, 0 without a cache.
	Shards     int64 `json:"shards,omitempty"`
	Hits       int64 `json:"hits"`
	Misses     int64 `json:"misses"`
	Evictions  int64 `json:"evictions"`
	WriteBacks int64 `json:"write_backs"`
}

// PagerSnapshot copies the page-file counters.
type PagerSnapshot struct {
	Reads  int64 `json:"reads"`
	Writes int64 `json:"writes"`
	Allocs int64 `json:"allocs"`
	Frees  int64 `json:"frees"`
	Syncs  int64 `json:"syncs"`
}

// BTreeSnapshot copies the B+-tree counters.
type BTreeSnapshot struct {
	LeafSplits  int64 `json:"leaf_splits"`
	InnerSplits int64 `json:"inner_splits"`
	RootSplits  int64 `json:"root_splits"`
	Compactions int64 `json:"compactions"`
	PagesFreed  int64 `json:"pages_freed"`
	Height      int64 `json:"height"`
}

// TxnSnapshot copies the transaction and WAL counters.
type TxnSnapshot struct {
	Begins        int64             `json:"begins"`
	Commits       int64             `json:"commits"`
	Aborts        int64             `json:"aborts"`
	Checkpoints   int64             `json:"checkpoints"`
	WalAppends    int64             `json:"wal_appends"`
	WalSyncs      int64             `json:"wal_syncs"`
	CommitLatency HistogramSnapshot `json:"commit_latency_ns"`
	CommitBatch   HistogramSnapshot `json:"commit_batch"`
	CommitStall   HistogramSnapshot `json:"commit_stall_ns"`
}

// SQLSnapshot copies the query-engine counters.
type SQLSnapshot struct {
	Creates      int64 `json:"creates"`
	Drops        int64 `json:"drops"`
	Inserts      int64 `json:"inserts"`
	Selects      int64 `json:"selects"`
	Updates      int64 `json:"updates"`
	Deletes      int64 `json:"deletes"`
	IndexScans   int64 `json:"index_scans"`
	FullScans    int64 `json:"full_scans"`
	PointLookups int64 `json:"point_lookups"`
	// CompiledQueries feature: prepared statements, compilations and the
	// shape-keyed plan cache. All zero on products without the feature.
	Prepares        int64             `json:"prepares"`
	Compiles        int64             `json:"compiles"`
	PlanHits        int64             `json:"plan_cache_hits"`
	PlanMisses      int64             `json:"plan_cache_misses"`
	PlanEvictions   int64             `json:"plan_cache_evictions"`
	PlanInvalidated int64             `json:"plans_invalidated"`
	StmtLatency     HistogramSnapshot `json:"stmt_latency_ns"`
}

// AccessSnapshot copies the record-access latency histograms.
type AccessSnapshot struct {
	GetLatency HistogramSnapshot `json:"get_latency_ns"`
	PutLatency HistogramSnapshot `json:"put_latency_ns"`
}

// TraceSnapshot copies the Tracing feature's ring-recorder gauges; all
// zero unless both Statistics and Tracing are composed (the bridge).
type TraceSnapshot struct {
	RingCapacity  int64 `json:"ring_capacity"`
	RingOccupancy int64 `json:"ring_occupancy"`
	RecordedSpans int64 `json:"recorded_spans"`
	DroppedSpans  int64 `json:"dropped_spans"`
	SlowOps       int64 `json:"slow_ops"`
	SlowEvicted   int64 `json:"slow_evicted"`
}

// FaultSnapshot copies the fault-survival counters.
type FaultSnapshot struct {
	Transients       int64 `json:"transients"`
	Retries          int64 `json:"retries"`
	ChecksumFailures int64 `json:"checksum_failures"`
	ScrubbedPages    int64 `json:"scrubbed_pages"`
	// Degraded reports whether the engine poisoned into read-only mode;
	// DegradedReason carries the first poisoning cause.
	Degraded       bool   `json:"degraded"`
	DegradedReason string `json:"degraded_reason,omitempty"`
}

// MVCCSnapshot copies the version-table metrics; all zero unless the
// MVCC feature is composed.
type MVCCSnapshot struct {
	VersionsInstalled int64 `json:"versions_installed"`
	PagesReclaimed    int64 `json:"pages_reclaimed"`
	// VersionsLive retains superseded roots for pinned readers;
	// SnapshotAge is how many versions the oldest pinned snapshot lags
	// the current root.
	VersionsLive  int64 `json:"versions_live"`
	SnapshotsOpen int64 `json:"snapshots_open"`
	SnapshotAge   int64 `json:"snapshot_age"`
}

// ReplSnapshot copies the Replication shipping metrics; all zero unless
// the Replication feature is composed.
type ReplSnapshot struct {
	ShippedChunks int64 `json:"shipped_chunks"`
	ShippedBytes  int64 `json:"shipped_bytes"`
	Acks          int64 `json:"acks"`
	CatchUps      int64 `json:"catchups"`
	Snapshots     int64 `json:"snapshot_resyncs"`
	Drops         int64 `json:"drops"`
	StaleMarks    int64 `json:"stale_marks"`
	// Connected and MaxLagBytes are the replica-health gauges the
	// Monitor watchdog alerts on.
	Connected   int64 `json:"replicas_connected"`
	MaxLagBytes int64 `json:"replica_max_lag_bytes"`
}

// Snapshot copies every metric. Safe on a nil registry (zero snapshot).
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	var s Snapshot
	if p, ok := r.buffer.policy.Load().(string); ok {
		s.Buffer.Policy = p
	}
	s.Buffer.Shards = load(&r.buffer.shards)
	s.Buffer.Hits = load(&r.buffer.hits)
	s.Buffer.Misses = load(&r.buffer.misses)
	s.Buffer.Evictions = load(&r.buffer.evictions)
	s.Buffer.WriteBacks = load(&r.buffer.writeBacks)

	s.Pager.Reads = load(&r.pager.reads)
	s.Pager.Writes = load(&r.pager.writes)
	s.Pager.Allocs = load(&r.pager.allocs)
	s.Pager.Frees = load(&r.pager.frees)
	s.Pager.Syncs = load(&r.pager.syncs)

	s.BTree.LeafSplits = load(&r.btree.leafSplits)
	s.BTree.InnerSplits = load(&r.btree.innerSplits)
	s.BTree.RootSplits = load(&r.btree.rootSplits)
	s.BTree.Compactions = load(&r.btree.compactions)
	s.BTree.PagesFreed = load(&r.btree.pagesFreed)
	s.BTree.Height = load(&r.btree.height)

	s.Txn.Begins = load(&r.txn.begins)
	s.Txn.Commits = load(&r.txn.commits)
	s.Txn.Aborts = load(&r.txn.aborts)
	s.Txn.Checkpoints = load(&r.txn.checkpoints)
	s.Txn.WalAppends = load(&r.txn.walAppends)
	s.Txn.WalSyncs = load(&r.txn.walSyncs)
	s.Txn.CommitLatency = r.txn.CommitLatency.Snapshot()
	s.Txn.CommitBatch = r.txn.CommitBatch.Snapshot()
	s.Txn.CommitStall = r.txn.CommitStall.Snapshot()

	s.SQL.Creates = load(&r.sql.creates)
	s.SQL.Drops = load(&r.sql.drops)
	s.SQL.Inserts = load(&r.sql.inserts)
	s.SQL.Selects = load(&r.sql.selects)
	s.SQL.Updates = load(&r.sql.updates)
	s.SQL.Deletes = load(&r.sql.deletes)
	s.SQL.IndexScans = load(&r.sql.indexScans)
	s.SQL.FullScans = load(&r.sql.fullScans)
	s.SQL.PointLookups = load(&r.sql.pointLookups)
	s.SQL.Prepares = load(&r.sql.prepares)
	s.SQL.Compiles = load(&r.sql.compiles)
	s.SQL.PlanHits = load(&r.sql.planHits)
	s.SQL.PlanMisses = load(&r.sql.planMisses)
	s.SQL.PlanEvictions = load(&r.sql.planEvicts)
	s.SQL.PlanInvalidated = load(&r.sql.planInvalid)
	s.SQL.StmtLatency = r.sql.StmtLatency.Snapshot()

	s.Access.GetLatency = r.access.GetLatency.Snapshot()
	s.Access.PutLatency = r.access.PutLatency.Snapshot()

	s.Trace.RingCapacity = load(&r.trace.ringCapacity)
	s.Trace.RingOccupancy = load(&r.trace.ringOccupancy)
	s.Trace.RecordedSpans = load(&r.trace.recordedSpans)
	s.Trace.DroppedSpans = load(&r.trace.droppedSpans)
	s.Trace.SlowOps = load(&r.trace.slowOps)
	s.Trace.SlowEvicted = load(&r.trace.slowEvicted)

	s.Fault.Transients = load(&r.fault.transients)
	s.Fault.Retries = load(&r.fault.retries)
	s.Fault.ChecksumFailures = load(&r.fault.checksumFailures)
	s.Fault.ScrubbedPages = load(&r.fault.scrubbedPages)
	s.Fault.Degraded = load(&r.fault.degraded) != 0
	if reason, ok := r.fault.reason.Load().(string); ok {
		s.Fault.DegradedReason = reason
	}

	s.MVCC.VersionsInstalled = load(&r.mvcc.versionsInstalled)
	s.MVCC.PagesReclaimed = load(&r.mvcc.pagesReclaimed)
	s.MVCC.VersionsLive = load(&r.mvcc.versionsLive)
	s.MVCC.SnapshotsOpen = load(&r.mvcc.snapshotsOpen)
	s.MVCC.SnapshotAge = load(&r.mvcc.snapshotAge)

	s.Repl.ShippedChunks = load(&r.repl.shippedChunks)
	s.Repl.ShippedBytes = load(&r.repl.shippedBytes)
	s.Repl.Acks = load(&r.repl.acks)
	s.Repl.CatchUps = load(&r.repl.catchups)
	s.Repl.Snapshots = load(&r.repl.snapshots)
	s.Repl.Drops = load(&r.repl.drops)
	s.Repl.StaleMarks = load(&r.repl.staleMarks)
	s.Repl.Connected = load(&r.repl.connected)
	s.Repl.MaxLagBytes = load(&r.repl.maxLagBytes)

	s.Queries = r.query.snapshot()
	return s
}

// WriteJSON writes the snapshot as indented JSON (expvar style).
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format, all metrics prefixed famedb_.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	labels := ""
	if s.Buffer.Policy != "" {
		labels = fmt.Sprintf("{policy=%q}", s.Buffer.Policy)
	}
	counter := func(name, help string, v int64, lbl string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s%s %d\n", name, help, name, name, lbl, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	hist := func(name, help string, h HistogramSnapshot) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
		var cum int64
		for i, c := range h.Counts {
			cum += c
			le := "+Inf"
			if i < len(h.Bounds) {
				le = fmt.Sprintf("%d", h.Bounds[i])
			}
			fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", name, le, cum)
		}
		fmt.Fprintf(&b, "%s_sum %d\n%s_count %d\n", name, h.Sum, name, h.Count)
	}

	if s.Buffer.Shards > 0 {
		fmt.Fprintf(&b, "# HELP famedb_buffer_shards Buffer pool lock stripes.\n# TYPE famedb_buffer_shards gauge\nfamedb_buffer_shards%s %d\n",
			labels, s.Buffer.Shards)
	}
	counter("famedb_buffer_hits_total", "Buffer cache hits.", s.Buffer.Hits, labels)
	counter("famedb_buffer_misses_total", "Buffer cache misses.", s.Buffer.Misses, labels)
	counter("famedb_buffer_evictions_total", "Buffer cache evictions.", s.Buffer.Evictions, labels)
	counter("famedb_buffer_write_backs_total", "Dirty pages written back.", s.Buffer.WriteBacks, labels)

	counter("famedb_pager_reads_total", "Physical page reads.", s.Pager.Reads, "")
	counter("famedb_pager_writes_total", "Physical page writes.", s.Pager.Writes, "")
	counter("famedb_pager_allocs_total", "Pages allocated.", s.Pager.Allocs, "")
	counter("famedb_pager_frees_total", "Pages freed.", s.Pager.Frees, "")
	counter("famedb_pager_syncs_total", "Page file syncs.", s.Pager.Syncs, "")

	counter("famedb_btree_leaf_splits_total", "B+-tree leaf splits.", s.BTree.LeafSplits, "")
	counter("famedb_btree_inner_splits_total", "B+-tree inner splits.", s.BTree.InnerSplits, "")
	counter("famedb_btree_root_splits_total", "B+-tree root splits.", s.BTree.RootSplits, "")
	counter("famedb_btree_compactions_total", "B+-tree compactions.", s.BTree.Compactions, "")
	counter("famedb_btree_pages_freed_total", "Pages freed by compaction.", s.BTree.PagesFreed, "")
	gauge("famedb_btree_height", "Tallest instrumented B+-tree.", s.BTree.Height)

	counter("famedb_txn_begins_total", "Transactions begun.", s.Txn.Begins, "")
	counter("famedb_txn_commits_total", "Transactions committed.", s.Txn.Commits, "")
	counter("famedb_txn_aborts_total", "Transactions aborted.", s.Txn.Aborts, "")
	counter("famedb_txn_checkpoints_total", "Checkpoints taken.", s.Txn.Checkpoints, "")
	counter("famedb_wal_appends_total", "WAL records appended.", s.Txn.WalAppends, "")
	counter("famedb_wal_syncs_total", "Durable WAL syncs.", s.Txn.WalSyncs, "")
	hist("famedb_txn_commit_latency_ns", "Commit latency in nanoseconds.", s.Txn.CommitLatency)
	hist("famedb_txn_commit_batch", "Commits per durable sync.", s.Txn.CommitBatch)
	hist("famedb_txn_commit_stall_ns", "Follower wait on the group-commit leader in nanoseconds.", s.Txn.CommitStall)

	counter("famedb_sql_statements_total", "SQL statements by verb.", s.SQL.Creates, `{verb="create"}`)
	counter("famedb_sql_statements_total", "SQL statements by verb.", s.SQL.Drops, `{verb="drop"}`)
	counter("famedb_sql_statements_total", "SQL statements by verb.", s.SQL.Inserts, `{verb="insert"}`)
	counter("famedb_sql_statements_total", "SQL statements by verb.", s.SQL.Selects, `{verb="select"}`)
	counter("famedb_sql_statements_total", "SQL statements by verb.", s.SQL.Updates, `{verb="update"}`)
	counter("famedb_sql_statements_total", "SQL statements by verb.", s.SQL.Deletes, `{verb="delete"}`)
	counter("famedb_sql_plans_total", "Chosen access paths.", s.SQL.IndexScans, `{plan="index-scan"}`)
	counter("famedb_sql_plans_total", "Chosen access paths.", s.SQL.FullScans, `{plan="full-scan"}`)
	counter("famedb_sql_plans_total", "Chosen access paths.", s.SQL.PointLookups, `{plan="point-lookup"}`)
	if s.SQL.Prepares > 0 || s.SQL.Compiles > 0 || s.SQL.PlanHits > 0 || s.SQL.PlanMisses > 0 {
		counter("famedb_sql_prepares_total", "Prepared statements created.", s.SQL.Prepares, "")
		counter("famedb_sql_compiles_total", "Plan compilations (initial and after invalidation).", s.SQL.Compiles, "")
		counter("famedb_sql_plan_cache_total", "Plan-cache lookups by outcome.", s.SQL.PlanHits, `{outcome="hit"}`)
		counter("famedb_sql_plan_cache_total", "Plan-cache lookups by outcome.", s.SQL.PlanMisses, `{outcome="miss"}`)
		counter("famedb_sql_plan_cache_evictions_total", "Plans evicted from the bounded cache.", s.SQL.PlanEvictions, "")
		counter("famedb_sql_plans_invalidated_total", "Stale compiled plans recompiled after DDL.", s.SQL.PlanInvalidated, "")
	}
	hist("famedb_sql_stmt_latency_ns", "Statement latency in nanoseconds.", s.SQL.StmtLatency)

	hist("famedb_access_get_latency_ns", "Get latency in nanoseconds.", s.Access.GetLatency)
	hist("famedb_access_put_latency_ns", "Put latency in nanoseconds.", s.Access.PutLatency)

	if s.Trace.RingCapacity > 0 {
		gauge("famedb_trace_ring_capacity", "Trace ring slot count.", s.Trace.RingCapacity)
		gauge("famedb_trace_ring_occupancy", "Spans currently held in the trace ring.", s.Trace.RingOccupancy)
		counter("famedb_trace_recorded_spans_total", "Spans ever recorded.", s.Trace.RecordedSpans, "")
		counter("famedb_trace_dropped_spans_total", "Spans overwritten (oldest-first) in the trace ring.", s.Trace.DroppedSpans, "")
		gauge("famedb_trace_slow_ops", "Span trees held in the slow-op log.", s.Trace.SlowOps)
		counter("famedb_trace_slow_evicted_total", "Slow-op trees evicted by worse ones.", s.Trace.SlowEvicted, "")
	}

	counter("famedb_fault_transients_total", "Transient storage faults observed.", s.Fault.Transients, "")
	counter("famedb_fault_retries_total", "Retries spent on transient faults.", s.Fault.Retries, "")
	counter("famedb_fault_checksum_failures_total", "Pages failing CRC verification.", s.Fault.ChecksumFailures, "")
	counter("famedb_fault_scrubbed_pages_total", "Pages checked by verify passes.", s.Fault.ScrubbedPages, "")
	degraded := int64(0)
	if s.Fault.Degraded {
		degraded = 1
	}
	gauge("famedb_degraded", "1 when the engine is in degraded read-only mode.", degraded)

	if s.MVCC.VersionsInstalled > 0 {
		counter("famedb_mvcc_versions_installed_total", "Committed roots installed in the version table.", s.MVCC.VersionsInstalled, "")
		counter("famedb_mvcc_pages_reclaimed_total", "Superseded pages returned to the free list.", s.MVCC.PagesReclaimed, "")
		gauge("famedb_mvcc_versions_live", "Versions retained for pinned readers.", s.MVCC.VersionsLive)
		gauge("famedb_mvcc_snapshots_open", "Snapshots currently pinned.", s.MVCC.SnapshotsOpen)
		gauge("famedb_mvcc_snapshot_age", "Versions the oldest pinned snapshot lags the current root.", s.MVCC.SnapshotAge)
	}

	if s.Repl.ShippedChunks > 0 || s.Repl.Connected > 0 || s.Repl.Snapshots > 0 {
		counter("famedb_repl_shipped_chunks_total", "WAL chunks shipped to replica feeds.", s.Repl.ShippedChunks, "")
		counter("famedb_repl_shipped_bytes_total", "WAL bytes shipped to replica feeds.", s.Repl.ShippedBytes, "")
		counter("famedb_repl_acks_total", "Replica acknowledgements received.", s.Repl.Acks, "")
		counter("famedb_repl_catchups_total", "Incremental catch-ups served from the WAL.", s.Repl.CatchUps, "")
		counter("famedb_repl_snapshot_resyncs_total", "Full snapshot resyncs served.", s.Repl.Snapshots, "")
		counter("famedb_repl_drops_total", "Ops or chunks dropped on bounded replica feeds.", s.Repl.Drops, "")
		counter("famedb_repl_stale_marks_total", "Replicas marked stale by feed overflow.", s.Repl.StaleMarks, "")
		gauge("famedb_repl_replicas_connected", "Replicas currently connected.", s.Repl.Connected)
		gauge("famedb_repl_max_lag_bytes", "Worst per-replica lag in WAL bytes.", s.Repl.MaxLagBytes)
	}

	// QueryStats feature: per-shape statement profiles. One labeled
	// series per shape would repeat the HELP/TYPE header, so the shape
	// loop emits headers once and label lines per shape.
	if s.Queries != nil {
		shapeSeries := func(name, help string, value func(QueryShapeSnapshot) int64) {
			fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
			for _, sh := range s.Queries.Shapes {
				fmt.Fprintf(&b, "%s{shape=\"%s\"} %d\n", name, promLabel(sh.Shape), value(sh))
			}
		}
		shapeSeries("famedb_query_execs_total", "Statement executions by normalized shape.",
			func(sh QueryShapeSnapshot) int64 { return sh.Count })
		shapeSeries("famedb_query_errors_total", "Failed executions by shape.",
			func(sh QueryShapeSnapshot) int64 { return sh.Errors })
		shapeSeries("famedb_query_time_ns_total", "Total execution time by shape.",
			func(sh QueryShapeSnapshot) int64 { return sh.TotalNs })
		shapeSeries("famedb_query_rows_scanned_total", "Rows scanned by shape.",
			func(sh QueryShapeSnapshot) int64 { return sh.RowsScanned })
		shapeSeries("famedb_query_rows_returned_total", "Rows returned by shape.",
			func(sh QueryShapeSnapshot) int64 { return sh.RowsReturned })
		shapeSeries("famedb_query_plan_cache_hits_total", "Plan-cache hits by shape.",
			func(sh QueryShapeSnapshot) int64 { return sh.PlanHits })
		gauge("famedb_query_shapes", "Distinct statement shapes profiled.", int64(len(s.Queries.Shapes)))
		counter("famedb_query_slow_dropped_total", "Slow-query ring entries overwritten before reading.", int64(s.Queries.SlowDropped), "")
	}

	_, err := io.WriteString(w, b.String())
	return err
}

// promLabel escapes a string for use as a Prometheus label value
// (backslash, double quote and newline per the exposition format; %q
// would escape non-ASCII too, which the format does not want).
func promLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// Format pretty-prints the snapshot for humans (the REPL's .stats).
// Layers with no activity are omitted.
func (s Snapshot) Format() string {
	var b strings.Builder
	row := func(name string, v int64) { fmt.Fprintf(&b, "  %-24s %12d\n", name, v) }
	lat := func(name string, h HistogramSnapshot) {
		if h.Count == 0 {
			return
		}
		fmt.Fprintf(&b, "  %-24s %12d   mean %.0fns  p50 %.0fns  p99 %.0fns\n",
			name, h.Count, round1(h.Mean()), round1(h.P50()), round1(h.P99()))
	}

	if s.Buffer.Hits+s.Buffer.Misses > 0 {
		title := "buffer"
		if s.Buffer.Policy != "" {
			title = "buffer (" + s.Buffer.Policy + ")"
		}
		if s.Buffer.Shards > 1 {
			title += fmt.Sprintf(", %d shards", s.Buffer.Shards)
		}
		fmt.Fprintf(&b, "%s\n", title)
		row("hits", s.Buffer.Hits)
		row("misses", s.Buffer.Misses)
		row("evictions", s.Buffer.Evictions)
		row("write-backs", s.Buffer.WriteBacks)
	}
	if s.Pager.Reads+s.Pager.Writes+s.Pager.Allocs > 0 {
		b.WriteString("pager\n")
		row("page reads", s.Pager.Reads)
		row("page writes", s.Pager.Writes)
		row("page allocs", s.Pager.Allocs)
		row("page frees", s.Pager.Frees)
		row("syncs", s.Pager.Syncs)
	}
	if s.BTree.Height > 0 {
		b.WriteString("btree\n")
		row("leaf splits", s.BTree.LeafSplits)
		row("inner splits", s.BTree.InnerSplits)
		row("root splits", s.BTree.RootSplits)
		row("compactions", s.BTree.Compactions)
		row("height", s.BTree.Height)
	}
	if s.Txn.Begins > 0 {
		b.WriteString("txn\n")
		row("begins", s.Txn.Begins)
		row("commits", s.Txn.Commits)
		row("aborts", s.Txn.Aborts)
		row("checkpoints", s.Txn.Checkpoints)
		row("wal appends", s.Txn.WalAppends)
		row("wal syncs", s.Txn.WalSyncs)
		lat("commit latency", s.Txn.CommitLatency)
		lat("commit stall", s.Txn.CommitStall)
		if s.Txn.CommitBatch.Count > 0 {
			fmt.Fprintf(&b, "  %-24s %12.1f per sync\n", "commit batch (mean)", s.Txn.CommitBatch.Mean())
		}
	}
	stmts := s.SQL.Creates + s.SQL.Drops + s.SQL.Inserts + s.SQL.Selects + s.SQL.Updates + s.SQL.Deletes
	if stmts > 0 {
		b.WriteString("sql\n")
		row("create", s.SQL.Creates)
		row("drop", s.SQL.Drops)
		row("insert", s.SQL.Inserts)
		row("select", s.SQL.Selects)
		row("update", s.SQL.Updates)
		row("delete", s.SQL.Deletes)
		row("index scans", s.SQL.IndexScans)
		row("full scans", s.SQL.FullScans)
		row("point lookups", s.SQL.PointLookups)
		if s.SQL.Prepares+s.SQL.Compiles+s.SQL.PlanHits+s.SQL.PlanMisses > 0 {
			row("prepares", s.SQL.Prepares)
			row("compiles", s.SQL.Compiles)
			row("plan cache hits", s.SQL.PlanHits)
			row("plan cache misses", s.SQL.PlanMisses)
			row("plan cache evictions", s.SQL.PlanEvictions)
			row("plans invalidated", s.SQL.PlanInvalidated)
		}
		lat("stmt latency", s.SQL.StmtLatency)
	}
	if s.Access.GetLatency.Count+s.Access.PutLatency.Count > 0 {
		b.WriteString("access\n")
		lat("get", s.Access.GetLatency)
		lat("put", s.Access.PutLatency)
	}
	if s.Trace.RingCapacity > 0 {
		b.WriteString("trace\n")
		row("ring capacity", s.Trace.RingCapacity)
		row("ring occupancy", s.Trace.RingOccupancy)
		row("recorded spans", s.Trace.RecordedSpans)
		row("dropped spans", s.Trace.DroppedSpans)
		row("slow ops kept", s.Trace.SlowOps)
	}
	if s.Fault.Transients+s.Fault.Retries+s.Fault.ChecksumFailures+s.Fault.ScrubbedPages > 0 || s.Fault.Degraded {
		b.WriteString("fault\n")
		row("transient faults", s.Fault.Transients)
		row("retries", s.Fault.Retries)
		row("checksum failures", s.Fault.ChecksumFailures)
		row("scrubbed pages", s.Fault.ScrubbedPages)
		if s.Fault.Degraded {
			fmt.Fprintf(&b, "  %-24s %12s   %s\n", "degraded", "yes", s.Fault.DegradedReason)
		}
	}
	if s.MVCC.VersionsInstalled > 0 {
		b.WriteString("mvcc\n")
		row("versions installed", s.MVCC.VersionsInstalled)
		row("pages reclaimed", s.MVCC.PagesReclaimed)
		row("versions live", s.MVCC.VersionsLive)
		row("snapshots open", s.MVCC.SnapshotsOpen)
		row("snapshot age", s.MVCC.SnapshotAge)
	}
	if s.Repl.ShippedChunks+s.Repl.Snapshots+s.Repl.Drops > 0 || s.Repl.Connected > 0 {
		b.WriteString("repl\n")
		row("shipped chunks", s.Repl.ShippedChunks)
		row("shipped bytes", s.Repl.ShippedBytes)
		row("acks", s.Repl.Acks)
		row("catch-ups", s.Repl.CatchUps)
		row("snapshot resyncs", s.Repl.Snapshots)
		row("drops", s.Repl.Drops)
		row("stale marks", s.Repl.StaleMarks)
		row("replicas connected", s.Repl.Connected)
		row("max lag bytes", s.Repl.MaxLagBytes)
	}
	if s.Queries != nil && len(s.Queries.Shapes) > 0 {
		fmt.Fprintf(&b, "queries (%d shapes, slowest first)\n", len(s.Queries.Shapes))
		for i, sh := range s.Queries.Shapes {
			if i == 8 {
				fmt.Fprintf(&b, "  ... %d more shapes\n", len(s.Queries.Shapes)-i)
				break
			}
			fmt.Fprintf(&b, "  %dx %-10s %8s total  p99 %.0fns  %s\n",
				sh.Count, sh.Verb, fmtTotalNs(sh.TotalNs), round1(sh.Latency.P99()), sh.Shape)
		}
		if len(s.Queries.Slow) > 0 || s.Queries.SlowDropped > 0 {
			fmt.Fprintf(&b, "  %-24s %12d   (%d overwritten)\n", "slow queries retained",
				int64(len(s.Queries.Slow)), int64(s.Queries.SlowDropped))
		}
	}
	if b.Len() == 0 {
		return "(no recorded activity)\n"
	}
	return b.String()
}
