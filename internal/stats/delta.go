package stats

// Snapshot deltas: the windowed-observation API of the Monitor feature.
// A snapshot is cumulative since composition; the sampler takes one
// every tick and differences consecutive (or window-spanning) pairs to
// derive rates and per-window latency quantiles. Counters and histogram
// buckets are monotonic, so the difference is exact: a histogram delta
// holds precisely the observations that landed between the two
// snapshots, and Quantile/P50/P99 on it are the *windowed* quantiles.
//
// Underflow guard: counters only move backwards when the process (and
// registry) restarted between the two snapshots. Like Prometheus rate(),
// Sub then treats the current value as the whole delta instead of
// producing a negative count.

// subCounter differences one monotonic counter with the restart guard:
// cur - prev when non-negative, else cur (counter reset).
func subCounter(cur, prev int64) int64 {
	if d := cur - prev; d >= 0 {
		return d
	}
	return cur
}

// Sub returns the histogram activity between prev and s: per-bucket
// count differences with the underflow guard applied bucket-wise. A
// zero-value prev (nil slices — e.g. the feature owning the histogram
// was not composed when prev was taken) or a prev with different bucket
// bounds yields s unchanged. The result shares s's Bounds slice; the
// quantile and mean helpers work on it like on any snapshot.
func (s HistogramSnapshot) Sub(prev HistogramSnapshot) HistogramSnapshot {
	if len(s.Counts) == 0 ||
		len(prev.Counts) != len(s.Counts) || len(prev.Bounds) != len(s.Bounds) {
		return s
	}
	d := HistogramSnapshot{
		Bounds: s.Bounds,
		Counts: make([]int64, len(s.Counts)),
		Sum:    subCounter(s.Sum, prev.Sum),
	}
	for i := range s.Counts {
		c := subCounter(s.Counts[i], prev.Counts[i])
		d.Counts[i] = c
		d.Count += c
	}
	return d
}

// Sub returns the activity between prev and s: every counter and
// histogram is differenced with the monotonic underflow guard, while
// gauges (buffer policy and shard count, tree height, trace-ring
// capacity/occupancy, slow-op log size, the degraded latch) keep s's
// current value — a gauge difference has no meaning in a window.
// Sub(Snapshot{}) is s itself, so a zero-value baseline reads as
// "everything since composition".
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	d := s // gauges (and slice-free fields) start as the current values

	d.Buffer.Hits = subCounter(s.Buffer.Hits, prev.Buffer.Hits)
	d.Buffer.Misses = subCounter(s.Buffer.Misses, prev.Buffer.Misses)
	d.Buffer.Evictions = subCounter(s.Buffer.Evictions, prev.Buffer.Evictions)
	d.Buffer.WriteBacks = subCounter(s.Buffer.WriteBacks, prev.Buffer.WriteBacks)

	d.Pager.Reads = subCounter(s.Pager.Reads, prev.Pager.Reads)
	d.Pager.Writes = subCounter(s.Pager.Writes, prev.Pager.Writes)
	d.Pager.Allocs = subCounter(s.Pager.Allocs, prev.Pager.Allocs)
	d.Pager.Frees = subCounter(s.Pager.Frees, prev.Pager.Frees)
	d.Pager.Syncs = subCounter(s.Pager.Syncs, prev.Pager.Syncs)

	d.BTree.LeafSplits = subCounter(s.BTree.LeafSplits, prev.BTree.LeafSplits)
	d.BTree.InnerSplits = subCounter(s.BTree.InnerSplits, prev.BTree.InnerSplits)
	d.BTree.RootSplits = subCounter(s.BTree.RootSplits, prev.BTree.RootSplits)
	d.BTree.Compactions = subCounter(s.BTree.Compactions, prev.BTree.Compactions)
	d.BTree.PagesFreed = subCounter(s.BTree.PagesFreed, prev.BTree.PagesFreed)
	// Height is a gauge: keep s's value.

	d.Txn.Begins = subCounter(s.Txn.Begins, prev.Txn.Begins)
	d.Txn.Commits = subCounter(s.Txn.Commits, prev.Txn.Commits)
	d.Txn.Aborts = subCounter(s.Txn.Aborts, prev.Txn.Aborts)
	d.Txn.Checkpoints = subCounter(s.Txn.Checkpoints, prev.Txn.Checkpoints)
	d.Txn.WalAppends = subCounter(s.Txn.WalAppends, prev.Txn.WalAppends)
	d.Txn.WalSyncs = subCounter(s.Txn.WalSyncs, prev.Txn.WalSyncs)
	d.Txn.CommitLatency = s.Txn.CommitLatency.Sub(prev.Txn.CommitLatency)
	d.Txn.CommitBatch = s.Txn.CommitBatch.Sub(prev.Txn.CommitBatch)
	d.Txn.CommitStall = s.Txn.CommitStall.Sub(prev.Txn.CommitStall)

	d.SQL.Creates = subCounter(s.SQL.Creates, prev.SQL.Creates)
	d.SQL.Drops = subCounter(s.SQL.Drops, prev.SQL.Drops)
	d.SQL.Inserts = subCounter(s.SQL.Inserts, prev.SQL.Inserts)
	d.SQL.Selects = subCounter(s.SQL.Selects, prev.SQL.Selects)
	d.SQL.Updates = subCounter(s.SQL.Updates, prev.SQL.Updates)
	d.SQL.Deletes = subCounter(s.SQL.Deletes, prev.SQL.Deletes)
	d.SQL.IndexScans = subCounter(s.SQL.IndexScans, prev.SQL.IndexScans)
	d.SQL.FullScans = subCounter(s.SQL.FullScans, prev.SQL.FullScans)
	d.SQL.PointLookups = subCounter(s.SQL.PointLookups, prev.SQL.PointLookups)
	d.SQL.Prepares = subCounter(s.SQL.Prepares, prev.SQL.Prepares)
	d.SQL.Compiles = subCounter(s.SQL.Compiles, prev.SQL.Compiles)
	d.SQL.PlanHits = subCounter(s.SQL.PlanHits, prev.SQL.PlanHits)
	d.SQL.PlanMisses = subCounter(s.SQL.PlanMisses, prev.SQL.PlanMisses)
	d.SQL.PlanEvictions = subCounter(s.SQL.PlanEvictions, prev.SQL.PlanEvictions)
	d.SQL.PlanInvalidated = subCounter(s.SQL.PlanInvalidated, prev.SQL.PlanInvalidated)
	d.SQL.StmtLatency = s.SQL.StmtLatency.Sub(prev.SQL.StmtLatency)

	d.Access.GetLatency = s.Access.GetLatency.Sub(prev.Access.GetLatency)
	d.Access.PutLatency = s.Access.PutLatency.Sub(prev.Access.PutLatency)

	// Trace: RecordedSpans/DroppedSpans/SlowEvicted grow monotonically;
	// capacity, occupancy and the slow-op log size are gauges.
	d.Trace.RecordedSpans = subCounter(s.Trace.RecordedSpans, prev.Trace.RecordedSpans)
	d.Trace.DroppedSpans = subCounter(s.Trace.DroppedSpans, prev.Trace.DroppedSpans)
	d.Trace.SlowEvicted = subCounter(s.Trace.SlowEvicted, prev.Trace.SlowEvicted)

	// Queries (feature QueryStats): per-shape counters difference by
	// shape text; nil when the feature is not composed.
	d.Queries = s.Queries.Sub(prev.Queries)

	d.Fault.Transients = subCounter(s.Fault.Transients, prev.Fault.Transients)
	d.Fault.Retries = subCounter(s.Fault.Retries, prev.Fault.Retries)
	d.Fault.ChecksumFailures = subCounter(s.Fault.ChecksumFailures, prev.Fault.ChecksumFailures)
	d.Fault.ScrubbedPages = subCounter(s.Fault.ScrubbedPages, prev.Fault.ScrubbedPages)
	// Degraded/DegradedReason are the latch's current state.

	d.Repl.ShippedChunks = subCounter(s.Repl.ShippedChunks, prev.Repl.ShippedChunks)
	d.Repl.ShippedBytes = subCounter(s.Repl.ShippedBytes, prev.Repl.ShippedBytes)
	d.Repl.Acks = subCounter(s.Repl.Acks, prev.Repl.Acks)
	d.Repl.CatchUps = subCounter(s.Repl.CatchUps, prev.Repl.CatchUps)
	d.Repl.Snapshots = subCounter(s.Repl.Snapshots, prev.Repl.Snapshots)
	d.Repl.Drops = subCounter(s.Repl.Drops, prev.Repl.Drops)
	d.Repl.StaleMarks = subCounter(s.Repl.StaleMarks, prev.Repl.StaleMarks)
	// Connected/MaxLagBytes are gauges: keep s's values.

	return d
}
