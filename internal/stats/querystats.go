package stats

import (
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// QueryStats is the QueryStats feature's per-shape statement registry:
// execution profiles keyed on the normalized statement shape (literals
// replaced by `?`), plus a bounded ring of the slowest recent
// statements. It is attached to the Registry only when the feature is
// composed; a nil *QueryStats makes every method a no-op, so the SQL
// engine's recording sites cost nothing in products without the
// feature.
//
// The registry is lock-striped: a shape's profile lives in the stripe
// its hash selects, so concurrent executors of different shapes do not
// contend. The shape population is bounded (MaxShapes); once the bound
// is reached, new shapes accumulate into the shared overflow profile
// (shape QueryOverflowShape) instead of growing the map, which keeps
// per-shape sums reconcilable with the global counters even under
// shape-explosion workloads.
type QueryStats struct {
	maxShapes int
	slowNs    int64
	// shapeCount is the number of distinct shapes admitted so far,
	// bumped optimistically before insertion (and rolled back when the
	// bound rejects), so the bound holds across stripes without a
	// global lock.
	shapeCount atomic.Int64
	stripes    [qsStripes]qsStripe
	slow       slowRing
}

const qsStripes = 8

// QueryOverflowShape is the pseudo-shape that absorbs executions of
// statements beyond the registry's shape bound.
const QueryOverflowShape = "~overflow"

// Default sizing for the QueryStats feature.
const (
	DefaultMaxShapes     = 128
	DefaultSlowQueryCap  = 32
	defaultSlowThreshold = time.Millisecond
)

type qsStripe struct {
	mu sync.Mutex
	m  map[string]*shapeProfile
}

// shapeProfile accumulates one shape's execution history. All fields
// are guarded by the owning stripe's mutex except the latency
// histogram, which is internally atomic.
type shapeProfile struct {
	verb         string
	plan         string
	count        int64
	errs         int64
	totalNs      int64
	rowsScanned  int64
	rowsReturned int64
	pagesVisited int64
	planHits     int64
	planMisses   int64
	planEvicts   int64
	latency      *Histogram
	lastErr      string
	lastUnixNs   int64
}

// QueryStatsConfig sizes a QueryStats registry; zero values compose
// the defaults.
type QueryStatsConfig struct {
	// MaxShapes bounds the number of distinct shapes profiled
	// (default DefaultMaxShapes); later shapes share the overflow
	// profile.
	MaxShapes int
	// SlowThreshold is the latency at or above which an execution is
	// retained in the slow-query ring (default 1ms).
	SlowThreshold time.Duration
	// SlowCap bounds the slow-query ring in entries (default
	// DefaultSlowQueryCap); a full ring overwrites oldest-first and
	// counts the overwrites.
	SlowCap int
}

// NewQueryStats creates a registry for the QueryStats feature.
func NewQueryStats(cfg QueryStatsConfig) *QueryStats {
	if cfg.MaxShapes <= 0 {
		cfg.MaxShapes = DefaultMaxShapes
	}
	if cfg.SlowThreshold <= 0 {
		cfg.SlowThreshold = defaultSlowThreshold
	}
	if cfg.SlowCap <= 0 {
		cfg.SlowCap = DefaultSlowQueryCap
	}
	q := &QueryStats{maxShapes: cfg.MaxShapes, slowNs: int64(cfg.SlowThreshold)}
	for i := range q.stripes {
		q.stripes[i].m = make(map[string]*shapeProfile)
	}
	q.slow.buf = make([]SlowQuery, cfg.SlowCap)
	return q
}

func (q *QueryStats) stripeFor(shape string) *qsStripe {
	h := fnv.New32a()
	h.Write([]byte(shape))
	return &q.stripes[h.Sum32()%qsStripes]
}

// profile returns the profile for shape with its stripe locked,
// creating it while the shape bound allows and redirecting to the
// overflow profile otherwise. The caller must unlock the returned
// stripe.
func (q *QueryStats) profile(shape string) (*shapeProfile, *qsStripe) {
	st := q.stripeFor(shape)
	st.mu.Lock()
	if p, ok := st.m[shape]; ok {
		return p, st
	}
	if q.shapeCount.Add(1) > int64(q.maxShapes) {
		q.shapeCount.Add(-1)
		st.mu.Unlock()
		return q.adoptOverflow()
	}
	p := &shapeProfile{latency: NewHistogram(LatencyBounds())}
	st.m[shape] = p
	return p, st
}

// adoptOverflow returns the overflow profile (creating it outside the
// shape bound) with its stripe locked.
func (q *QueryStats) adoptOverflow() (*shapeProfile, *qsStripe) {
	st := q.stripeFor(QueryOverflowShape)
	st.mu.Lock()
	p, ok := st.m[QueryOverflowShape]
	if !ok {
		p = &shapeProfile{latency: NewHistogram(LatencyBounds())}
		st.m[QueryOverflowShape] = p
	}
	return p, st
}

// QueryExec is one statement execution as observed by the engine —
// the unit the registry accumulates.
type QueryExec struct {
	Shape        string
	Verb         string
	Plan         string
	DurNs        int64
	RowsScanned  int64
	RowsReturned int64
	PagesVisited int64
	// TraceRoot is the statement's root span ID when the Tracing
	// feature is composed; 0 otherwise.
	TraceRoot uint64
	Err       error
}

// Observe records one execution into the shape's profile and, when it
// crosses the slow threshold, into the slow-query ring. No-op on nil.
func (q *QueryStats) Observe(e QueryExec) {
	if q == nil || e.Shape == "" {
		return
	}
	now := time.Now().UnixNano()
	p, st := q.profile(e.Shape)
	p.count++
	p.totalNs += e.DurNs
	p.rowsScanned += e.RowsScanned
	p.rowsReturned += e.RowsReturned
	p.pagesVisited += e.PagesVisited
	if e.Verb != "" {
		p.verb = e.Verb
	}
	if e.Plan != "" {
		p.plan = e.Plan
	}
	if e.Err != nil {
		p.errs++
		p.lastErr = e.Err.Error()
	}
	p.lastUnixNs = now
	hist := p.latency
	st.mu.Unlock()
	hist.Observe(e.DurNs)
	if e.DurNs >= q.slowNs {
		errText := ""
		if e.Err != nil {
			errText = e.Err.Error()
		}
		q.slow.push(SlowQuery{
			Shape:        e.Shape,
			Verb:         e.Verb,
			Plan:         e.Plan,
			DurNs:        e.DurNs,
			RowsScanned:  e.RowsScanned,
			RowsReturned: e.RowsReturned,
			TraceRoot:    e.TraceRoot,
			UnixNs:       now,
			Err:          errText,
		})
	}
}

// CacheHit attributes one plan-cache hit to shape. No-op on nil.
func (q *QueryStats) CacheHit(shape string) {
	if q == nil || shape == "" {
		return
	}
	p, st := q.profile(shape)
	p.planHits++
	st.mu.Unlock()
}

// CacheMiss attributes one plan-cache miss to shape. No-op on nil.
func (q *QueryStats) CacheMiss(shape string) {
	if q == nil || shape == "" {
		return
	}
	p, st := q.profile(shape)
	p.planMisses++
	st.mu.Unlock()
}

// CacheEvict attributes one plan-cache eviction to the shape whose
// plan was evicted. The profile outlives the cached plan: that is the
// point — eviction churn per shape is visible after the plan is gone.
// No-op on nil.
func (q *QueryStats) CacheEvict(shape string) {
	if q == nil || shape == "" {
		return
	}
	p, st := q.profile(shape)
	p.planEvicts++
	st.mu.Unlock()
}

// SlowThresholdNs returns the latency at or above which executions
// enter the slow-query ring (0 on nil).
func (q *QueryStats) SlowThresholdNs() int64 {
	if q == nil {
		return 0
	}
	return q.slowNs
}

// SlowQueries returns the retained slow executions oldest-first plus
// how many older ones the bounded ring overwrote, without clearing
// the ring.
func (q *QueryStats) SlowQueries() ([]SlowQuery, uint64) {
	if q == nil {
		return nil, 0
	}
	return q.slow.snapshot()
}

// DrainSlowQueries returns the retained slow executions oldest-first
// and empties the ring; the overwrite counter keeps accumulating.
func (q *QueryStats) DrainSlowQueries() ([]SlowQuery, uint64) {
	if q == nil {
		return nil, 0
	}
	return q.slow.drain()
}

// snapshot copies the registry into an exportable QuerySnapshot,
// shapes ordered by total time descending (ties by shape text, so the
// order is deterministic).
func (q *QueryStats) snapshot() *QuerySnapshot {
	if q == nil {
		return nil
	}
	snap := &QuerySnapshot{SlowThresholdNs: q.slowNs, MaxShapes: q.maxShapes}
	for i := range q.stripes {
		st := &q.stripes[i]
		st.mu.Lock()
		for shape, p := range st.m {
			snap.Shapes = append(snap.Shapes, QueryShapeSnapshot{
				Shape:        shape,
				Verb:         p.verb,
				Plan:         p.plan,
				Count:        p.count,
				Errors:       p.errs,
				TotalNs:      p.totalNs,
				RowsScanned:  p.rowsScanned,
				RowsReturned: p.rowsReturned,
				PagesVisited: p.pagesVisited,
				PlanHits:     p.planHits,
				PlanMisses:   p.planMisses,
				PlanEvicts:   p.planEvicts,
				Latency:      p.latency.Snapshot(),
				LastError:    p.lastErr,
				LastUnixNs:   p.lastUnixNs,
			})
		}
		st.mu.Unlock()
	}
	sort.Slice(snap.Shapes, func(i, j int) bool {
		if snap.Shapes[i].TotalNs != snap.Shapes[j].TotalNs {
			return snap.Shapes[i].TotalNs > snap.Shapes[j].TotalNs
		}
		return snap.Shapes[i].Shape < snap.Shapes[j].Shape
	})
	snap.Slow, snap.SlowDropped = q.slow.snapshot()
	return snap
}

// SlowQuery is one retained slow execution: the normalized statement
// (literals already redacted to `?` by shape normalization), what the
// plan did, and — when the Tracing feature is composed — the root
// span ID whose subtree in the trace ring details the execution.
type SlowQuery struct {
	Shape        string `json:"shape"`
	Verb         string `json:"verb,omitempty"`
	Plan         string `json:"plan,omitempty"`
	DurNs        int64  `json:"dur_ns"`
	RowsScanned  int64  `json:"rows_scanned"`
	RowsReturned int64  `json:"rows_returned"`
	TraceRoot    uint64 `json:"trace_root,omitempty"`
	UnixNs       int64  `json:"unix_ns"`
	Err          string `json:"error,omitempty"`
}

// slowRing is the bounded slow-query ring: oldest entries are
// overwritten when full, and overwrites are counted so the drain
// reader knows what it lost.
type slowRing struct {
	mu      sync.Mutex
	buf     []SlowQuery
	next    int
	filled  int
	dropped uint64
}

func (r *slowRing) push(s SlowQuery) {
	r.mu.Lock()
	if r.filled == len(r.buf) {
		r.dropped++
	} else {
		r.filled++
	}
	r.buf[r.next] = s
	r.next = (r.next + 1) % len(r.buf)
	r.mu.Unlock()
}

// oldestFirstLocked copies the retained entries in arrival order.
func (r *slowRing) oldestFirstLocked() []SlowQuery {
	if r.filled == 0 {
		return nil
	}
	out := make([]SlowQuery, 0, r.filled)
	start := (r.next - r.filled + len(r.buf)) % len(r.buf)
	for i := 0; i < r.filled; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}

func (r *slowRing) snapshot() ([]SlowQuery, uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.oldestFirstLocked(), r.dropped
}

func (r *slowRing) drain() ([]SlowQuery, uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := r.oldestFirstLocked()
	r.next, r.filled = 0, 0
	return out, r.dropped
}

// QueryShapeSnapshot is one shape's accumulated profile in a
// Snapshot.
type QueryShapeSnapshot struct {
	Shape        string            `json:"shape"`
	Verb         string            `json:"verb,omitempty"`
	Plan         string            `json:"plan,omitempty"`
	Count        int64             `json:"count"`
	Errors       int64             `json:"errors,omitempty"`
	TotalNs      int64             `json:"total_ns"`
	RowsScanned  int64             `json:"rows_scanned"`
	RowsReturned int64             `json:"rows_returned"`
	PagesVisited int64             `json:"pages_visited"`
	PlanHits     int64             `json:"plan_cache_hits"`
	PlanMisses   int64             `json:"plan_cache_misses"`
	PlanEvicts   int64             `json:"plan_cache_evictions"`
	Latency      HistogramSnapshot `json:"latency_ns"`
	LastError    string            `json:"last_error,omitempty"`
	LastUnixNs   int64             `json:"last_unix_ns,omitempty"`
}

// QuerySnapshot is the QueryStats feature's section of a Snapshot:
// per-shape profiles (total time descending) plus the slow-query
// ring. Present only when the feature is composed.
type QuerySnapshot struct {
	Shapes          []QueryShapeSnapshot `json:"shapes"`
	Slow            []SlowQuery          `json:"slow,omitempty"`
	SlowDropped     uint64               `json:"slow_dropped,omitempty"`
	SlowThresholdNs int64                `json:"slow_threshold_ns"`
	MaxShapes       int                  `json:"max_shapes"`
}

// Sub returns the delta snapshot cur − prev, matching shapes by text.
// Shapes absent from prev are kept whole; the slow ring and gauges
// keep cur's values. Used by the Monitor's windowed sampler.
func (s *QuerySnapshot) Sub(prev *QuerySnapshot) *QuerySnapshot {
	if s == nil {
		return nil
	}
	if prev == nil {
		cp := *s
		return &cp
	}
	prevBy := make(map[string]*QueryShapeSnapshot, len(prev.Shapes))
	for i := range prev.Shapes {
		prevBy[prev.Shapes[i].Shape] = &prev.Shapes[i]
	}
	out := &QuerySnapshot{
		Slow:            s.Slow,
		SlowDropped:     s.SlowDropped,
		SlowThresholdNs: s.SlowThresholdNs,
		MaxShapes:       s.MaxShapes,
	}
	for _, sh := range s.Shapes {
		if p, ok := prevBy[sh.Shape]; ok {
			sh.Count = subCounter(sh.Count, p.Count)
			sh.Errors = subCounter(sh.Errors, p.Errors)
			sh.TotalNs = subCounter(sh.TotalNs, p.TotalNs)
			sh.RowsScanned = subCounter(sh.RowsScanned, p.RowsScanned)
			sh.RowsReturned = subCounter(sh.RowsReturned, p.RowsReturned)
			sh.PagesVisited = subCounter(sh.PagesVisited, p.PagesVisited)
			sh.PlanHits = subCounter(sh.PlanHits, p.PlanHits)
			sh.PlanMisses = subCounter(sh.PlanMisses, p.PlanMisses)
			sh.PlanEvicts = subCounter(sh.PlanEvicts, p.PlanEvicts)
			sh.Latency = sh.Latency.Sub(p.Latency)
		}
		out.Shapes = append(out.Shapes, sh)
	}
	return out
}
