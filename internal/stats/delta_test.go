package stats

import (
	"testing"
	"time"
)

func TestHistogramSnapshotSubBuckets(t *testing.T) {
	h := NewHistogram([]int64{10, 100, 1000})
	for _, v := range []int64{5, 50, 50, 500} {
		h.Observe(v)
	}
	prev := h.Snapshot()
	for _, v := range []int64{7, 70, 5000, 5000, 5000} {
		h.Observe(v)
	}
	d := h.Snapshot().Sub(prev)

	if d.Count != 5 {
		t.Fatalf("delta count = %d, want 5", d.Count)
	}
	want := []int64{1, 1, 0, 3} // le10, le100, le1000, +Inf
	for i, c := range d.Counts {
		if c != want[i] {
			t.Errorf("delta bucket %d = %d, want %d", i, c, want[i])
		}
	}
	if d.Sum != 7+70+3*5000 {
		t.Errorf("delta sum = %d, want %d", d.Sum, 7+70+3*5000)
	}
	// The windowed quantile sees only the new observations: p50 lands in
	// the +Inf bucket, reported as the last finite bound.
	if got := d.P50(); got != 1000 {
		t.Errorf("windowed p50 = %.0f, want 1000", got)
	}
}

// TestHistogramSnapshotSubZeroPrev covers the nil-slice contract: a
// zero-value prev (the histogram's feature was not composed, or the
// baseline predates the registry) must yield the current snapshot
// unchanged instead of panicking on the nil Counts.
func TestHistogramSnapshotSubZeroPrev(t *testing.T) {
	h := NewHistogram(LatencyBounds())
	h.Observe(300)
	cur := h.Snapshot()

	d := cur.Sub(HistogramSnapshot{})
	if d.Count != cur.Count || d.Sum != cur.Sum {
		t.Fatalf("Sub(zero) = %+v, want the current snapshot", d)
	}
	// And the fully-zero case stays zero on both sides.
	z := HistogramSnapshot{}.Sub(HistogramSnapshot{})
	if z.Count != 0 || z.Counts != nil {
		t.Fatalf("zero.Sub(zero) = %+v, want zero", z)
	}
	// Mismatched bounds (a recomposed registry with different buckets):
	// the current snapshot wins whole.
	other := NewHistogram([]int64{1, 2}).Snapshot()
	if d := cur.Sub(other); d.Count != cur.Count {
		t.Fatalf("Sub(mismatched bounds) count = %d, want %d", d.Count, cur.Count)
	}
}

func TestSnapshotSubCountersAndGauges(t *testing.T) {
	r := New()
	r.Buffer().SetPolicy("LRU")
	r.Buffer().SetShards(4)
	r.Buffer().Hit()
	r.Buffer().Miss()
	r.Txn().Begin()
	r.Txn().Commit()
	r.BTree().ObserveHeight(2)
	prev := r.Snapshot()

	r.Buffer().Hit()
	r.Buffer().Hit()
	r.Txn().Begin()
	r.Txn().Commit()
	r.Txn().Commit()
	r.BTree().ObserveHeight(3)
	d := r.Snapshot().Sub(prev)

	if d.Buffer.Hits != 2 || d.Buffer.Misses != 0 {
		t.Errorf("buffer delta = %+v, want 2 hits, 0 misses", d.Buffer)
	}
	if d.Txn.Begins != 1 || d.Txn.Commits != 2 {
		t.Errorf("txn delta = %+v, want 1 begin, 2 commits", d.Txn)
	}
	// Gauges carry the current value, not a difference.
	if d.Buffer.Policy != "LRU" || d.Buffer.Shards != 4 {
		t.Errorf("buffer gauges = %q/%d, want LRU/4", d.Buffer.Policy, d.Buffer.Shards)
	}
	if d.BTree.Height != 3 {
		t.Errorf("height gauge = %d, want current value 3", d.BTree.Height)
	}
}

// TestSnapshotSubUnderflowGuard: a counter moving backwards (registry
// restarted between samples) must report the current value, never a
// negative delta.
func TestSnapshotSubUnderflowGuard(t *testing.T) {
	prev := Snapshot{}
	prev.Pager.Reads = 1000
	prev.Trace.DroppedSpans = 50

	var cur Snapshot
	cur.Pager.Reads = 7 // fresh registry: restarted below prev
	cur.Trace.DroppedSpans = 3

	d := cur.Sub(prev)
	if d.Pager.Reads != 7 {
		t.Errorf("underflowed pager reads delta = %d, want 7", d.Pager.Reads)
	}
	if d.Trace.DroppedSpans != 3 {
		t.Errorf("underflowed dropped-spans delta = %d, want 3", d.Trace.DroppedSpans)
	}
	if sub := subCounter(10, 4); sub != 6 {
		t.Errorf("subCounter(10,4) = %d, want 6", sub)
	}
}

// TestSnapshotSubZeroBaseline: differencing against the zero snapshot
// is the identity on counters and histograms — the Monitor feature's
// "window since composition" case.
func TestSnapshotSubZeroBaseline(t *testing.T) {
	r := New()
	start := r.Access().Start()
	time.Sleep(time.Microsecond)
	r.Access().DoneGet(start)
	r.SQL().Statement("select")
	cur := r.Snapshot()

	d := cur.Sub(Snapshot{})
	if d.SQL.Selects != cur.SQL.Selects {
		t.Errorf("selects = %d, want %d", d.SQL.Selects, cur.SQL.Selects)
	}
	if d.Access.GetLatency.Count != cur.Access.GetLatency.Count {
		t.Errorf("get latency count = %d, want %d",
			d.Access.GetLatency.Count, cur.Access.GetLatency.Count)
	}
}
