// Package stats is the Statistics feature of FAME-DBMS: cross-cutting
// runtime instrumentation, following the paper's rule (Sec. 2.3) that
// cross-cutting concerns become optional features of mixed granularity.
// Every engine layer carries a nil-able pointer to its metric struct;
// the composer points them at one shared Registry when the Statistics
// feature is selected and leaves them nil otherwise. All recording
// methods are safe on nil receivers and reduce to a single branch then,
// so a product derived without Statistics pays no allocation and no
// atomic traffic on the hot path — the Go analog of instrumentation
// code that was never composed into the FeatureC++ binary.
//
// Counters and histogram buckets are updated with atomic adds (no
// locks), so instrumentation never serializes the layers it observes.
package stats

import (
	"sync/atomic"
	"time"
)

// Registry aggregates the per-layer metrics of one composed product.
// The layer accessors are safe on a nil Registry and return nil, which
// the layers' nil-safe recording methods turn into no-ops — composition
// therefore needs no conditionals at the call sites.
type Registry struct {
	buffer Buffer
	pager  Pager
	btree  BTree
	txn    Txn
	sql    SQL
	access Access
	trace  Trace
	fault  Fault
	mvcc   MVCC
	repl   Repl
	// query is the QueryStats feature's per-shape profile registry;
	// nil unless that feature is composed on top of Statistics.
	query *QueryStats
}

// New creates a registry with all histograms initialized.
func New() *Registry {
	r := &Registry{}
	r.access.GetLatency = NewHistogram(LatencyBounds())
	r.access.PutLatency = NewHistogram(LatencyBounds())
	r.txn.CommitLatency = NewHistogram(LatencyBounds())
	r.txn.CommitBatch = NewHistogram(BatchBounds())
	r.txn.CommitStall = NewHistogram(LatencyBounds())
	r.sql.StmtLatency = NewHistogram(LatencyBounds())
	return r
}

// Buffer returns the buffer-manager metrics (nil on a nil registry).
func (r *Registry) Buffer() *Buffer {
	if r == nil {
		return nil
	}
	return &r.buffer
}

// Pager returns the page-file metrics (nil on a nil registry).
func (r *Registry) Pager() *Pager {
	if r == nil {
		return nil
	}
	return &r.pager
}

// BTree returns the B+-tree metrics (nil on a nil registry).
func (r *Registry) BTree() *BTree {
	if r == nil {
		return nil
	}
	return &r.btree
}

// Txn returns the transaction/WAL metrics (nil on a nil registry).
func (r *Registry) Txn() *Txn {
	if r == nil {
		return nil
	}
	return &r.txn
}

// SQL returns the query-engine metrics (nil on a nil registry).
func (r *Registry) SQL() *SQL {
	if r == nil {
		return nil
	}
	return &r.sql
}

// Access returns the record-access metrics (nil on a nil registry).
func (r *Registry) Access() *Access {
	if r == nil {
		return nil
	}
	return &r.access
}

// Trace returns the trace-recorder gauges (nil on a nil registry).
// They are populated only when the Tracing feature is also composed —
// the stats/trace bridge.
func (r *Registry) Trace() *Trace {
	if r == nil {
		return nil
	}
	return &r.trace
}

// Fault returns the fault-survival counters (nil on a nil registry).
func (r *Registry) Fault() *Fault {
	if r == nil {
		return nil
	}
	return &r.fault
}

// MVCC returns the version-table metrics (nil on a nil registry). They
// are populated only when the MVCC feature is also composed.
func (r *Registry) MVCC() *MVCC {
	if r == nil {
		return nil
	}
	return &r.mvcc
}

// Repl returns the Replication metrics (nil on a nil registry).
func (r *Registry) Repl() *Repl {
	if r == nil {
		return nil
	}
	return &r.repl
}

// Query returns the QueryStats feature's per-shape profile registry,
// or nil when that feature (or the whole Statistics registry) is not
// composed — the same nil-discipline as the per-layer metric structs.
func (r *Registry) Query() *QueryStats {
	if r == nil {
		return nil
	}
	return r.query
}

// SetQueryStats attaches the QueryStats feature's registry; the
// composer calls it only when that feature is selected. No-op on a
// nil registry.
func (r *Registry) SetQueryStats(q *QueryStats) {
	if r != nil {
		r.query = q
	}
}

// --- MVCC version table ---

// MVCC observes the copy-on-write version table: how many versions were
// installed and are still live (retained for pinned readers), how many
// superseded pages epoch reclamation returned to the free list, how
// many snapshots are open, and how far (in versions) the oldest pinned
// snapshot lags the current root.
type MVCC struct {
	versionsInstalled int64
	pagesReclaimed    int64
	versionsLive      int64 // gauge
	snapshotsOpen     int64 // gauge
	snapshotAge       int64 // gauge: current seq - oldest pinned seq
}

// Install records one version installed.
func (m *MVCC) Install() {
	if m != nil {
		atomic.AddInt64(&m.versionsInstalled, 1)
	}
}

// Reclaimed records superseded pages returned to the free list.
func (m *MVCC) Reclaimed(pages int) {
	if m != nil {
		atomic.AddInt64(&m.pagesReclaimed, int64(pages))
	}
}

// Gauges replaces the version-table gauges: live versions, open
// snapshots, and the oldest pinned snapshot's age in versions.
func (m *MVCC) Gauges(live, open, age int64) {
	if m == nil {
		return
	}
	atomic.StoreInt64(&m.versionsLive, live)
	atomic.StoreInt64(&m.snapshotsOpen, open)
	atomic.StoreInt64(&m.snapshotAge, age)
}

// --- Replication ---

// Repl counts the Replication feature's shipping activity on the
// primary: chunks and bytes shipped, replica acknowledgements, resync
// events, and the two health gauges the Monitor watchdog watches —
// connected replicas and the worst per-replica lag in WAL bytes.
type Repl struct {
	shippedChunks int64
	shippedBytes  int64
	acks          int64
	catchups      int64
	snapshots     int64
	drops         int64
	staleMarks    int64
	connected     int64 // gauge
	maxLagBytes   int64 // gauge
}

// Shipped records one chunk of n bytes handed to replica feeds.
func (p *Repl) Shipped(n int) {
	if p != nil {
		atomic.AddInt64(&p.shippedChunks, 1)
		atomic.AddInt64(&p.shippedBytes, int64(n))
	}
}

// Ack records one replica acknowledgement.
func (p *Repl) Ack() {
	if p != nil {
		atomic.AddInt64(&p.acks, 1)
	}
}

// CatchUp records one incremental catch-up served from the WAL.
func (p *Repl) CatchUp() {
	if p != nil {
		atomic.AddInt64(&p.catchups, 1)
	}
}

// SnapshotResync records one full snapshot resync.
func (p *Repl) SnapshotResync() {
	if p != nil {
		atomic.AddInt64(&p.snapshots, 1)
	}
}

// Dropped records ops or chunks dropped on a replica's bounded feed.
func (p *Repl) Dropped(n int) {
	if p != nil {
		atomic.AddInt64(&p.drops, int64(n))
	}
}

// StaleMark records one replica marked stale (overflowed feed — it must
// fully resync before it can stream again).
func (p *Repl) StaleMark() {
	if p != nil {
		atomic.AddInt64(&p.staleMarks, 1)
	}
}

// Gauges replaces the replica-health gauges: replicas currently
// connected and the worst per-replica lag in WAL bytes.
func (p *Repl) Gauges(connected, maxLagBytes int64) {
	if p == nil {
		return
	}
	atomic.StoreInt64(&p.connected, connected)
	atomic.StoreInt64(&p.maxLagBytes, maxLagBytes)
}

// --- Fault survival ---

// Fault counts the storage-fault survival layer's activity: transient
// errors seen, retries spent on them, checksum verification failures,
// and whether the engine has poisoned into degraded read-only mode
// (with the reason, so an operator scraping stats learns why writes
// started returning ErrDegraded).
type Fault struct {
	transients       int64
	retries          int64
	checksumFailures int64
	scrubbedPages    int64
	degraded         int64        // gauge: 0 healthy, 1 degraded
	reason           atomic.Value // string
}

// Transient records one transient fault observed by the retry layer.
func (f *Fault) Transient() {
	if f != nil {
		atomic.AddInt64(&f.transients, 1)
	}
}

// Retry records one retry attempt spent on a transient fault.
func (f *Fault) Retry() {
	if f != nil {
		atomic.AddInt64(&f.retries, 1)
	}
}

// ChecksumFailure records one page whose CRC trailer did not match.
func (f *Fault) ChecksumFailure() {
	if f != nil {
		atomic.AddInt64(&f.checksumFailures, 1)
	}
}

// Scrubbed records pages checked by a verify pass.
func (f *Fault) Scrubbed(pages int64) {
	if f != nil {
		atomic.AddInt64(&f.scrubbedPages, pages)
	}
}

// Degrade latches the degraded gauge with the poisoning reason. The
// first reason wins.
func (f *Fault) Degrade(reason string) {
	if f == nil {
		return
	}
	if atomic.CompareAndSwapInt64(&f.degraded, 0, 1) {
		f.reason.Store(reason)
	}
}

// --- Trace recorder (the stats/trace bridge) ---

// Trace gauges the Tracing feature's ring recorder, so a product that
// composes both observability features can see — through its ordinary
// stats snapshots — whether the trace ring is overwriting spans and how
// many slow ops were kept. Dropped observability data is itself
// observable.
type Trace struct {
	ringCapacity  int64
	ringOccupancy int64
	recordedSpans int64
	droppedSpans  int64
	slowOps       int64
	slowEvicted   int64
}

// Set replaces the trace gauges with the recorder's current accounting.
func (t *Trace) Set(capacity, occupancy, recorded, dropped, slowOps, slowEvicted int64) {
	if t == nil {
		return
	}
	atomic.StoreInt64(&t.ringCapacity, capacity)
	atomic.StoreInt64(&t.ringOccupancy, occupancy)
	atomic.StoreInt64(&t.recordedSpans, recorded)
	atomic.StoreInt64(&t.droppedSpans, dropped)
	atomic.StoreInt64(&t.slowOps, slowOps)
	atomic.StoreInt64(&t.slowEvicted, slowEvicted)
}

// load is shorthand for an atomic counter read.
func load(p *int64) int64 { return atomic.LoadInt64(p) }

// --- Buffer manager ---

// Buffer counts page-cache effectiveness, labeled with the composed
// replacement policy and, for the ShardedBuffer feature, the number of
// lock stripes.
type Buffer struct {
	policy     atomic.Value // string
	shards     int64
	hits       int64
	misses     int64
	evictions  int64
	writeBacks int64
}

// SetPolicy records the replacement feature in use ("LRU" or "LFU").
func (b *Buffer) SetPolicy(name string) {
	if b != nil {
		b.policy.Store(name)
	}
}

// SetShards records the buffer pool's shard count (1 for the
// single-latch manager).
func (b *Buffer) SetShards(n int) {
	if b != nil {
		atomic.StoreInt64(&b.shards, int64(n))
	}
}

// Hit records a cache hit.
func (b *Buffer) Hit() {
	if b != nil {
		atomic.AddInt64(&b.hits, 1)
	}
}

// Miss records a cache miss.
func (b *Buffer) Miss() {
	if b != nil {
		atomic.AddInt64(&b.misses, 1)
	}
}

// Eviction records a victim leaving the cache.
func (b *Buffer) Eviction() {
	if b != nil {
		atomic.AddInt64(&b.evictions, 1)
	}
}

// WriteBack records a dirty page written to the base pager.
func (b *Buffer) WriteBack() {
	if b != nil {
		atomic.AddInt64(&b.writeBacks, 1)
	}
}

// --- Page file ---

// Pager counts physical page traffic at the page-file level (below the
// buffer manager, so with a cache composed these are device I/Os).
type Pager struct {
	reads  int64
	writes int64
	allocs int64
	frees  int64
	syncs  int64
}

// Read records a physical page read.
func (p *Pager) Read() {
	if p != nil {
		atomic.AddInt64(&p.reads, 1)
	}
}

// Write records a physical page write.
func (p *Pager) Write() {
	if p != nil {
		atomic.AddInt64(&p.writes, 1)
	}
}

// Alloc records a page allocation.
func (p *Pager) Alloc() {
	if p != nil {
		atomic.AddInt64(&p.allocs, 1)
	}
}

// Free records a page returned to the free list.
func (p *Pager) Free() {
	if p != nil {
		atomic.AddInt64(&p.frees, 1)
	}
}

// Sync records a durable flush of the page file.
func (p *Pager) Sync() {
	if p != nil {
		atomic.AddInt64(&p.syncs, 1)
	}
}

// --- B+-tree ---

// BTree counts structural events of the instrumented trees. With the
// SQL engine composed, several trees (catalog plus one per table) share
// these counters; Height then tracks the tallest instrumented tree.
type BTree struct {
	leafSplits  int64
	innerSplits int64
	rootSplits  int64
	compactions int64
	pagesFreed  int64
	height      int64
}

// LeafSplit records a leaf page split.
func (t *BTree) LeafSplit() {
	if t != nil {
		atomic.AddInt64(&t.leafSplits, 1)
	}
}

// InnerSplit records an inner page split.
func (t *BTree) InnerSplit() {
	if t != nil {
		atomic.AddInt64(&t.innerSplits, 1)
	}
}

// RootSplit records the root splitting (the tree growing one level).
func (t *BTree) RootSplit() {
	if t != nil {
		atomic.AddInt64(&t.rootSplits, 1)
	}
}

// Compaction records a Compact rebuild that freed n pages.
func (t *BTree) Compaction(pagesFreed int) {
	if t != nil {
		atomic.AddInt64(&t.compactions, 1)
		atomic.AddInt64(&t.pagesFreed, int64(pagesFreed))
	}
}

// ObserveHeight folds in a tree's current height; the gauge keeps the
// maximum across instrumented trees.
func (t *BTree) ObserveHeight(h int) {
	if t == nil {
		return
	}
	for {
		cur := atomic.LoadInt64(&t.height)
		if int64(h) <= cur || atomic.CompareAndSwapInt64(&t.height, cur, int64(h)) {
			return
		}
	}
}

// --- Transactions / WAL ---

// Txn counts transactional events and the write-ahead log's durability
// behavior, including the group-commit batch-size distribution.
type Txn struct {
	begins      int64
	commits     int64
	aborts      int64
	checkpoints int64
	walAppends  int64
	walSyncs    int64

	// CommitLatency observes wall time of Commit (append + protocol
	// durability + apply). CommitBatch observes commits per durable
	// sync — 1 under ForceCommit, the batch size under GroupCommit.
	// CommitStall observes how long a pipelined committer waited for
	// its group-commit leader to make the batch durable.
	CommitLatency *Histogram
	CommitBatch   *Histogram
	CommitStall   *Histogram
}

// Begin records a transaction start.
func (t *Txn) Begin() {
	if t != nil {
		atomic.AddInt64(&t.begins, 1)
	}
}

// Commit records a successful commit.
func (t *Txn) Commit() {
	if t != nil {
		atomic.AddInt64(&t.commits, 1)
	}
}

// Abort records an abort.
func (t *Txn) Abort() {
	if t != nil {
		atomic.AddInt64(&t.aborts, 1)
	}
}

// Checkpoint records a checkpoint.
func (t *Txn) Checkpoint() {
	if t != nil {
		atomic.AddInt64(&t.checkpoints, 1)
	}
}

// WalAppend records one log record appended.
func (t *Txn) WalAppend() {
	if t != nil {
		atomic.AddInt64(&t.walAppends, 1)
	}
}

// WalSync records one durable log sync covering batch commits.
func (t *Txn) WalSync(batch int) {
	if t == nil {
		return
	}
	atomic.AddInt64(&t.walSyncs, 1)
	if batch > 0 {
		t.CommitBatch.Observe(int64(batch))
	}
}

// StartCommit begins timing a commit; pass the result to DoneCommit.
// Returns 0 (and skips the clock read) when disabled.
func (t *Txn) StartCommit() int64 {
	if t == nil {
		return 0
	}
	return time.Now().UnixNano()
}

// DoneCommit finishes timing a commit started with StartCommit.
func (t *Txn) DoneCommit(start int64) {
	if t == nil || start == 0 {
		return
	}
	t.CommitLatency.Observe(time.Now().UnixNano() - start)
}

// StartStall begins timing a follower's wait on its group-commit
// leader; pass the result to DoneStall.
func (t *Txn) StartStall() int64 {
	if t == nil {
		return 0
	}
	return time.Now().UnixNano()
}

// DoneStall finishes timing a wait started with StartStall.
func (t *Txn) DoneStall(start int64) {
	if t == nil || start == 0 {
		return
	}
	t.CommitStall.Observe(time.Now().UnixNano() - start)
}

// --- SQL engine ---

// SQL counts statements by verb and the optimizer's plan choices.
type SQL struct {
	creates int64
	drops   int64
	inserts int64
	selects int64
	updates int64
	deletes int64

	indexScans   int64
	fullScans    int64
	pointLookups int64

	// CompiledQueries feature: prepared statements, plan compilations,
	// and the shape-keyed plan cache.
	prepares    int64
	compiles    int64
	planHits    int64
	planMisses  int64
	planEvicts  int64
	planInvalid int64

	// StmtLatency observes wall time per executed statement.
	StmtLatency *Histogram
}

// Statement records one executed statement by verb ("create", "drop",
// "insert", "select", "update", "delete"). Unknown verbs are ignored.
func (s *SQL) Statement(verb string) {
	if s == nil {
		return
	}
	switch verb {
	case "create":
		atomic.AddInt64(&s.creates, 1)
	case "drop":
		atomic.AddInt64(&s.drops, 1)
	case "insert":
		atomic.AddInt64(&s.inserts, 1)
	case "select":
		atomic.AddInt64(&s.selects, 1)
	case "update":
		atomic.AddInt64(&s.updates, 1)
	case "delete":
		atomic.AddInt64(&s.deletes, 1)
	}
}

// Plan records the access path of one table scan ("point-lookup",
// "index-scan" or "full-scan").
func (s *SQL) Plan(plan string) {
	if s == nil {
		return
	}
	switch plan {
	case "point-lookup":
		atomic.AddInt64(&s.pointLookups, 1)
	case "index-scan":
		atomic.AddInt64(&s.indexScans, 1)
	default:
		atomic.AddInt64(&s.fullScans, 1)
	}
}

// Prepare records one Engine.Prepare call (CompiledQueries feature).
func (s *SQL) Prepare() {
	if s == nil {
		return
	}
	atomic.AddInt64(&s.prepares, 1)
}

// Compile records one plan compilation — initial or after a DDL
// invalidation (CompiledQueries feature).
func (s *SQL) Compile() {
	if s == nil {
		return
	}
	atomic.AddInt64(&s.compiles, 1)
}

// CacheHit records a plan-cache hit on the unprepared Exec path.
func (s *SQL) CacheHit() {
	if s == nil {
		return
	}
	atomic.AddInt64(&s.planHits, 1)
}

// CacheMiss records a plan-cache miss on the unprepared Exec path.
func (s *SQL) CacheMiss() {
	if s == nil {
		return
	}
	atomic.AddInt64(&s.planMisses, 1)
}

// CacheEvict records one plan evicted from the bounded plan cache.
func (s *SQL) CacheEvict() {
	if s == nil {
		return
	}
	atomic.AddInt64(&s.planEvicts, 1)
}

// PlanInvalidate records a compiled plan found stale (DDL moved the
// engine epoch) and recompiled before execution.
func (s *SQL) PlanInvalidate() {
	if s == nil {
		return
	}
	atomic.AddInt64(&s.planInvalid, 1)
}

// Start begins timing a statement; pass the result to Done.
func (s *SQL) Start() int64 {
	if s == nil {
		return 0
	}
	return time.Now().UnixNano()
}

// Done finishes timing a statement started with Start.
func (s *SQL) Done(start int64) {
	if s == nil || start == 0 {
		return
	}
	s.StmtLatency.Observe(time.Now().UnixNano() - start)
}

// --- Record access ---

// Access observes per-operation latency at the record-store API. The
// histogram counts double as operation counts.
type Access struct {
	GetLatency *Histogram
	PutLatency *Histogram
}

// Start begins timing an operation; pass the result to DoneGet/DonePut.
func (a *Access) Start() int64 {
	if a == nil {
		return 0
	}
	return time.Now().UnixNano()
}

// DoneGet finishes timing a Get started with Start.
func (a *Access) DoneGet(start int64) {
	if a == nil || start == 0 {
		return
	}
	a.GetLatency.Observe(time.Now().UnixNano() - start)
}

// DonePut finishes timing a Put started with Start.
func (a *Access) DonePut(start int64) {
	if a == nil || start == 0 {
		return
	}
	a.PutLatency.Observe(time.Now().UnixNano() - start)
}
