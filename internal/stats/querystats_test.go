package stats

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestQueryStatsObserveAccumulates checks one shape's profile folds
// every counter of its executions.
func TestQueryStatsObserveAccumulates(t *testing.T) {
	q := NewQueryStats(QueryStatsConfig{})
	for i := 0; i < 3; i++ {
		q.Observe(QueryExec{
			Shape:        "SELECT v FROM t WHERE id = ?",
			Verb:         "select",
			Plan:         "point-lookup",
			DurNs:        100,
			RowsScanned:  2,
			RowsReturned: 1,
			PagesVisited: 4,
		})
	}
	q.Observe(QueryExec{
		Shape: "SELECT v FROM t WHERE id = ?",
		DurNs: 50,
		Err:   errors.New("boom"),
	})
	snap := q.snapshot()
	if len(snap.Shapes) != 1 {
		t.Fatalf("shapes = %d, want 1", len(snap.Shapes))
	}
	sh := snap.Shapes[0]
	if sh.Count != 4 || sh.TotalNs != 350 || sh.RowsScanned != 6 ||
		sh.RowsReturned != 3 || sh.PagesVisited != 12 {
		t.Fatalf("profile = %+v", sh)
	}
	if sh.Errors != 1 || sh.LastError != "boom" {
		t.Fatalf("errors = %d lastErr = %q", sh.Errors, sh.LastError)
	}
	if sh.Verb != "select" || sh.Plan != "point-lookup" {
		t.Fatalf("verb/plan = %q/%q", sh.Verb, sh.Plan)
	}
	if sh.Latency.Count != 4 {
		t.Fatalf("latency count = %d, want 4", sh.Latency.Count)
	}
}

// TestQueryStatsOverflowKeepsSumsExact drives more distinct shapes
// than the bound admits and checks the overflow pseudo-shape absorbs
// the excess so per-shape sums still equal the work done.
func TestQueryStatsOverflowKeepsSumsExact(t *testing.T) {
	const bound, total = 4, 20
	q := NewQueryStats(QueryStatsConfig{MaxShapes: bound})
	for i := 0; i < total; i++ {
		q.Observe(QueryExec{Shape: fmt.Sprintf("SELECT %d", i), DurNs: 1, RowsScanned: 3})
	}
	snap := q.snapshot()
	// bound distinct shapes plus the overflow pseudo-shape.
	if len(snap.Shapes) != bound+1 {
		t.Fatalf("shapes = %d, want %d", len(snap.Shapes), bound+1)
	}
	var count, scanned int64
	overflow := false
	for _, sh := range snap.Shapes {
		count += sh.Count
		scanned += sh.RowsScanned
		if sh.Shape == QueryOverflowShape {
			overflow = true
			if sh.Count != total-bound {
				t.Fatalf("overflow count = %d, want %d", sh.Count, total-bound)
			}
		}
	}
	if !overflow {
		t.Fatal("no overflow pseudo-shape")
	}
	if count != total || scanned != 3*total {
		t.Fatalf("sums = %d execs / %d scanned, want %d / %d", count, scanned, total, 3*total)
	}
}

// TestQueryStatsSlowRing checks threshold gating, bounded retention
// with drop counting, and that drain clears exactly once.
func TestQueryStatsSlowRing(t *testing.T) {
	q := NewQueryStats(QueryStatsConfig{SlowThreshold: 100, SlowCap: 4})
	q.Observe(QueryExec{Shape: "fast", DurNs: 99})
	for i := 0; i < 6; i++ {
		q.Observe(QueryExec{Shape: fmt.Sprintf("slow-%d", i), DurNs: 100 + int64(i), TraceRoot: uint64(i + 1)})
	}
	slow, dropped := q.SlowQueries()
	if len(slow) != 4 || dropped != 2 {
		t.Fatalf("ring = %d entries, %d dropped; want 4, 2", len(slow), dropped)
	}
	// Oldest-first: the two oldest slow entries were overwritten.
	if slow[0].Shape != "slow-2" || slow[3].Shape != "slow-5" {
		t.Fatalf("order = %q .. %q", slow[0].Shape, slow[3].Shape)
	}
	if slow[0].TraceRoot != 3 {
		t.Fatalf("trace root = %d, want 3", slow[0].TraceRoot)
	}
	// Reading did not drain.
	if again, _ := q.SlowQueries(); len(again) != 4 {
		t.Fatalf("second read = %d entries, want 4", len(again))
	}
	drained, _ := q.DrainSlowQueries()
	if len(drained) != 4 {
		t.Fatalf("drain = %d entries, want 4", len(drained))
	}
	if after, _ := q.SlowQueries(); len(after) != 0 {
		t.Fatalf("ring after drain = %d entries, want 0", len(after))
	}
}

// TestQueryStatsCacheAttribution checks hit/miss/evict land on the
// right shape profiles.
func TestQueryStatsCacheAttribution(t *testing.T) {
	q := NewQueryStats(QueryStatsConfig{})
	q.CacheMiss("a")
	q.CacheHit("a")
	q.CacheHit("a")
	q.CacheMiss("b")
	q.CacheEvict("a")
	snap := q.snapshot()
	by := map[string]QueryShapeSnapshot{}
	for _, sh := range snap.Shapes {
		by[sh.Shape] = sh
	}
	a, b := by["a"], by["b"]
	if a.PlanHits != 2 || a.PlanMisses != 1 || a.PlanEvicts != 1 {
		t.Fatalf("shape a cache = %d/%d/%d", a.PlanHits, a.PlanMisses, a.PlanEvicts)
	}
	if b.PlanHits != 0 || b.PlanMisses != 1 || b.PlanEvicts != 0 {
		t.Fatalf("shape b cache = %d/%d/%d", b.PlanHits, b.PlanMisses, b.PlanEvicts)
	}
}

// TestQueryStatsNilSafe checks the uncomposed (nil) registry absorbs
// every call, which is what makes the engine's recording sites free.
func TestQueryStatsNilSafe(t *testing.T) {
	var q *QueryStats
	q.Observe(QueryExec{Shape: "x", DurNs: 1})
	q.CacheHit("x")
	q.CacheMiss("x")
	q.CacheEvict("x")
	if ns := q.SlowThresholdNs(); ns != 0 {
		t.Fatalf("nil threshold = %d", ns)
	}
	if slow, dropped := q.SlowQueries(); slow != nil || dropped != 0 {
		t.Fatal("nil SlowQueries not empty")
	}
	if slow, dropped := q.DrainSlowQueries(); slow != nil || dropped != 0 {
		t.Fatal("nil DrainSlowQueries not empty")
	}
	if q.snapshot() != nil {
		t.Fatal("nil snapshot not nil")
	}
}

// TestQueryStatsConcurrentObserve hammers the striped registry from
// many goroutines (run under -race) and checks nothing is lost.
func TestQueryStatsConcurrentObserve(t *testing.T) {
	q := NewQueryStats(QueryStatsConfig{MaxShapes: 8, SlowThreshold: time.Nanosecond})
	const workers, per = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			shape := fmt.Sprintf("shape-%d", w%4)
			for i := 0; i < per; i++ {
				q.Observe(QueryExec{Shape: shape, DurNs: int64(i + 1)})
				q.CacheHit(shape)
			}
		}(w)
	}
	wg.Wait()
	snap := q.snapshot()
	var count, hits int64
	for _, sh := range snap.Shapes {
		count += sh.Count
		hits += sh.PlanHits
	}
	if count != workers*per || hits != workers*per {
		t.Fatalf("count = %d hits = %d, want %d", count, hits, workers*per)
	}
}
