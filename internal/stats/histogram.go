package stats

import (
	"math"
	"sync/atomic"
)

// Histogram is a fixed-bucket histogram with exponentially growing
// upper bounds, safe for concurrent use. Observations land in the first
// bucket whose upper bound is >= the value (Prometheus "le" semantics);
// values above the last bound land in the implicit +Inf bucket.
//
// The bucket layout is fixed at construction and never reallocated, so
// Observe performs two atomic adds and no allocation — cheap enough for
// per-operation latencies on the hot path.
type Histogram struct {
	bounds []int64
	counts []int64 // len(bounds)+1; last is +Inf
	sum    int64
}

// NewHistogram creates a histogram over the given ascending upper
// bounds. The +Inf bucket is implicit.
func NewHistogram(bounds []int64) *Histogram {
	return &Histogram{
		bounds: bounds,
		counts: make([]int64, len(bounds)+1),
	}
}

// LatencyBounds are the default bucket upper bounds for operation
// latencies, in nanoseconds: 250ns doubling to ~4ms, which brackets
// everything from a buffer-cache hit to a durable fsync.
func LatencyBounds() []int64 {
	bounds := make([]int64, 15)
	b := int64(250)
	for i := range bounds {
		bounds[i] = b
		b *= 2
	}
	return bounds
}

// BatchBounds are the bucket upper bounds for group-commit batch sizes:
// 1, 2, 4, ... 256 commits per durable sync.
func BatchBounds() []int64 {
	return []int64{1, 2, 4, 8, 16, 32, 64, 128, 256}
}

// Observe records one value. Safe on a nil histogram (no-op).
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	atomic.AddInt64(&h.counts[i], 1)
	atomic.AddInt64(&h.sum, v)
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; Counts has one extra entry
	// for the +Inf bucket.
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"`
	Count  int64   `json:"count"`
	Sum    int64   `json:"sum"`
}

// Snapshot copies the current bucket counts. Safe on a nil histogram
// (returns a zero snapshot).
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Sum:    atomic.LoadInt64(&h.sum),
	}
	for i := range h.counts {
		c := atomic.LoadInt64(&h.counts[i])
		s.Counts[i] = c
		s.Count += c
	}
	return s
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear
// interpolation within the containing bucket. The +Inf bucket reports
// the last finite bound. Returns 0 for an empty histogram.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Counts) == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		next := cum + float64(c)
		if next >= rank && c > 0 {
			if i >= len(s.Bounds) {
				return float64(s.Bounds[len(s.Bounds)-1])
			}
			lo := float64(0)
			if i > 0 {
				lo = float64(s.Bounds[i-1])
			}
			hi := float64(s.Bounds[i])
			frac := (rank - cum) / float64(c)
			return lo + frac*(hi-lo)
		}
		cum = next
	}
	return float64(s.Bounds[len(s.Bounds)-1])
}

// Mean returns the average observed value, or 0 when empty.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// P50 and P99 are the quantiles the benchmark harness reports.
func (s HistogramSnapshot) P50() float64 { return s.Quantile(0.50) }

// P99 estimates the 99th percentile.
func (s HistogramSnapshot) P99() float64 { return s.Quantile(0.99) }

// round1 rounds to one decimal for display.
func round1(v float64) float64 { return math.Round(v*10) / 10 }
