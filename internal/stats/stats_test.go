package stats

import (
	"strings"
	"testing"
)

func TestLatencyBounds(t *testing.T) {
	b := LatencyBounds()
	if len(b) != 15 {
		t.Fatalf("len = %d, want 15", len(b))
	}
	if b[0] != 250 {
		t.Fatalf("first bound = %d, want 250", b[0])
	}
	for i := 1; i < len(b); i++ {
		if b[i] != 2*b[i-1] {
			t.Fatalf("bound %d = %d, want double of %d", i, b[i], b[i-1])
		}
	}
}

// TestHistogramBucketBoundaries pins down the "le" semantics: a value
// equal to a bucket's upper bound lands in that bucket, one above lands
// in the next, and values beyond the last bound land in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]int64{10, 20, 40})
	cases := []struct {
		v      int64
		bucket int
	}{
		{0, 0},  // below everything
		{1, 0},  // inside first
		{10, 0}, // exactly on bound: le semantics, same bucket
		{11, 1}, // one above: next bucket
		{20, 1},
		{21, 2},
		{40, 2},
		{41, 3},   // above last bound: +Inf
		{9999, 3}, // way above: +Inf
	}
	for _, c := range cases {
		h.Observe(c.v)
	}
	s := h.Snapshot()
	want := make([]int64, 4)
	for _, c := range cases {
		want[c.bucket]++
	}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d count = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != int64(len(cases)) {
		t.Errorf("Count = %d, want %d", s.Count, len(cases))
	}
	var sum int64
	for _, c := range cases {
		sum += c.v
	}
	if s.Sum != sum {
		t.Errorf("Sum = %d, want %d", s.Sum, sum)
	}
}

func TestHistogramQuantile(t *testing.T) {
	// 10 observations of 5 (bucket le=10), 10 of 15 (bucket le=20):
	// p50 sits exactly at the end of the first bucket, p99 near the top
	// of the second.
	h := NewHistogram([]int64{10, 20})
	for i := 0; i < 10; i++ {
		h.Observe(5)
		h.Observe(15)
	}
	s := h.Snapshot()
	if got := s.Quantile(0.5); got != 10 {
		t.Errorf("p50 = %v, want 10 (end of first bucket)", got)
	}
	// rank 0.99*20 = 19.8 → 9.8/10 through the (10,20] bucket.
	if got := s.Quantile(0.99); got != 19.8 {
		t.Errorf("p99 = %v, want 19.8", got)
	}
	if got := s.Mean(); got != 10 {
		t.Errorf("mean = %v, want 10", got)
	}
}

func TestHistogramQuantileEdge(t *testing.T) {
	var empty HistogramSnapshot
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
	// All mass in +Inf reports the last finite bound.
	h := NewHistogram([]int64{10, 20})
	h.Observe(1000)
	if got := h.Snapshot().Quantile(0.5); got != 20 {
		t.Errorf("+Inf quantile = %v, want last bound 20", got)
	}
}

// TestNilSafety exercises every recording method through nil receivers —
// the deselected-Statistics configuration — and checks none allocates.
func TestNilSafety(t *testing.T) {
	var r *Registry
	if r.Buffer() != nil || r.Pager() != nil || r.BTree() != nil ||
		r.Txn() != nil || r.SQL() != nil || r.Access() != nil {
		t.Fatal("nil registry must hand out nil layer metrics")
	}
	allocs := testing.AllocsPerRun(100, func() {
		var b *Buffer
		b.SetPolicy("LRU")
		b.Hit()
		b.Miss()
		b.Eviction()
		b.WriteBack()
		var p *Pager
		p.Read()
		p.Write()
		p.Alloc()
		p.Free()
		p.Sync()
		var bt *BTree
		bt.LeafSplit()
		bt.InnerSplit()
		bt.RootSplit()
		bt.Compaction(3)
		bt.ObserveHeight(5)
		var tx *Txn
		tx.Begin()
		tx.Commit()
		tx.Abort()
		tx.Checkpoint()
		tx.WalAppend()
		tx.WalSync(4)
		tx.DoneCommit(tx.StartCommit())
		var s *SQL
		s.Statement("select")
		s.Plan("index-scan")
		s.Done(s.Start())
		var a *Access
		a.DoneGet(a.Start())
		a.DonePut(a.Start())
		var h *Histogram
		h.Observe(42)
	})
	if allocs != 0 {
		t.Errorf("nil-receiver recording allocated %v times per run, want 0", allocs)
	}
	snap := r.Snapshot()
	if snap.Buffer.Hits != 0 || snap.Access.GetLatency.Count != 0 {
		t.Error("nil registry snapshot must be zero")
	}
}

func TestEnabledRecordingAllocates(t *testing.T) {
	r := New()
	allocs := testing.AllocsPerRun(100, func() {
		r.Buffer().Hit()
		r.Pager().Read()
		r.Access().DoneGet(r.Access().Start())
	})
	if allocs != 0 {
		t.Errorf("enabled recording allocated %v times per run, want 0 (atomics only)", allocs)
	}
}

func TestRegistrySnapshot(t *testing.T) {
	r := New()
	r.Buffer().SetPolicy("LFU")
	for i := 0; i < 3; i++ {
		r.Buffer().Hit()
	}
	r.Buffer().Miss()
	r.Buffer().Eviction()
	r.BTree().LeafSplit()
	r.BTree().ObserveHeight(2)
	r.BTree().ObserveHeight(3)
	r.BTree().ObserveHeight(1) // gauge keeps the max
	r.Txn().Begin()
	r.Txn().Commit()
	r.Txn().WalAppend()
	r.Txn().WalSync(4)
	r.SQL().Statement("insert")
	r.SQL().Statement("select")
	r.SQL().Statement("select")
	r.SQL().Plan("index-scan")
	r.SQL().Plan("full-scan")

	s := r.Snapshot()
	if s.Buffer.Policy != "LFU" {
		t.Errorf("policy = %q, want LFU", s.Buffer.Policy)
	}
	if s.Buffer.Hits != 3 || s.Buffer.Misses != 1 || s.Buffer.Evictions != 1 {
		t.Errorf("buffer counters = %+v", s.Buffer)
	}
	if s.BTree.LeafSplits != 1 || s.BTree.Height != 3 {
		t.Errorf("btree counters = %+v", s.BTree)
	}
	if s.Txn.Begins != 1 || s.Txn.Commits != 1 || s.Txn.WalAppends != 1 || s.Txn.WalSyncs != 1 {
		t.Errorf("txn counters = %+v", s.Txn)
	}
	if s.Txn.CommitBatch.Count != 1 || s.Txn.CommitBatch.Sum != 4 {
		t.Errorf("commit batch = %+v", s.Txn.CommitBatch)
	}
	if s.SQL.Inserts != 1 || s.SQL.Selects != 2 || s.SQL.IndexScans != 1 || s.SQL.FullScans != 1 {
		t.Errorf("sql counters = %+v", s.SQL)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := New()
	r.Buffer().SetPolicy("LRU")
	r.Buffer().Hit()
	r.Buffer().Hit()
	r.Access().GetLatency.Observe(100)
	r.Access().GetLatency.Observe(300)

	var b strings.Builder
	if err := r.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE famedb_buffer_hits_total counter",
		`famedb_buffer_hits_total{policy="LRU"} 2`,
		"# TYPE famedb_access_get_latency_ns histogram",
		`famedb_access_get_latency_ns_bucket{le="250"} 1`,
		// Buckets are cumulative: the 500ns bucket includes the 250ns one.
		`famedb_access_get_latency_ns_bucket{le="500"} 2`,
		`famedb_access_get_latency_ns_bucket{le="+Inf"} 2`,
		"famedb_access_get_latency_ns_sum 400",
		"famedb_access_get_latency_ns_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Prometheus output missing %q", want)
		}
	}
}

func TestWriteJSON(t *testing.T) {
	r := New()
	r.Pager().Alloc()
	var b strings.Builder
	if err := r.Snapshot().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"allocs": 1`) {
		t.Errorf("JSON output missing pager allocs: %s", b.String())
	}
}
