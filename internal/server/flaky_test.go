package server

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"famedb/internal/osal"
	"famedb/internal/stats"
)

// flakyDialer wraps each replica connection in a seeded FlakyConn until
// heal() is called; after that connections are clean, so convergence is
// guaranteed once the fault window closes.
type flakyDialer struct {
	seed   int64
	rules  func(attempt int64) []osal.NetRule
	dials  atomic.Int64
	healed atomic.Bool
	faulty atomic.Int64
}

func (d *flakyDialer) dial(addr string) (net.Conn, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	n := d.dials.Add(1)
	if d.healed.Load() {
		return conn, nil
	}
	d.faulty.Add(1)
	return osal.NewFlakyConn(conn, d.seed+n, d.rules(n)...), nil
}

func (d *flakyDialer) heal() { d.healed.Store(true) }

// TestReplicaResyncUnderFlakyConn is the satellite-3 scenario: the
// replica's transport drops mid-frame while the primary keeps
// committing; every reconnect handshakes with the WAL fingerprint, the
// missed range is detected, and the catch-up resync converges to a
// byte-exact prefix with identical indexes.
func TestReplicaResyncUnderFlakyConn(t *testing.T) {
	reg := stats.New()
	primary, srv, _ := primaryNode(t, reg)

	dialer := &flakyDialer{
		seed: 42,
		rules: func(attempt int64) []osal.NetRule {
			// Each session survives a few frame reads, then the
			// connection drops partway through the next one.
			return []osal.NetRule{{Class: osal.NetRead, At: 4 + attempt, Kind: osal.NetDrop}}
		},
	}
	rn := newNode(t)
	r, err := StartReplica(ReplicaConfig{
		Addr:        srv.Addr(),
		Applier:     rn.mgr.ShipApplier(),
		Dial:        dialer.dial,
		Seed:        7,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()

	for i := 0; i < 60; i++ {
		tx := primary.mgr.Begin()
		tx.Put(fmt.Appendf(nil, "flaky-%03d", i), fmt.Appendf(nil, "v%03d", i))
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	// Close the fault window so the tail can land, then require full
	// convergence.
	dialer.heal()
	if !r.WaitFor(primary.mgr.WALEnd(), 10*time.Second) {
		t.Fatalf("replica stuck at %d of %d after faults healed",
			r.Offset(), primary.mgr.WALEnd())
	}
	assertReplicated(t, primary, rn)

	if dialer.faulty.Load() == 0 || dialer.dials.Load() < 2 {
		t.Fatalf("fault schedule never engaged: %d dials, %d faulty",
			dialer.dials.Load(), dialer.faulty.Load())
	}
	snap := reg.Snapshot()
	if snap.Repl.CatchUps+snap.Repl.Snapshots < 2 {
		t.Fatalf("expected repeated resyncs across reconnects, got %+v", snap.Repl)
	}
}

// TestReplicaPartitionedThenHeals uses the partition fault (timeouts
// instead of clean drops): the replica's reads stall, its session dies
// on the wedged transport, and backoff+retry still converge.
func TestReplicaPartitionedThenHeals(t *testing.T) {
	reg := stats.New()
	primary, srv, _ := primaryNode(t, reg)

	dialer := &flakyDialer{
		seed: 99,
		rules: func(attempt int64) []osal.NetRule {
			return []osal.NetRule{{Class: osal.NetRead, At: 3, Kind: osal.NetPartition, Heal: 2}}
		},
	}
	rn := newNode(t)
	r, err := StartReplica(ReplicaConfig{
		Addr:        srv.Addr(),
		Applier:     rn.mgr.ShipApplier(),
		Dial:        dialer.dial,
		Seed:        8,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()

	for i := 0; i < 20; i++ {
		tx := primary.mgr.Begin()
		tx.Put(fmt.Appendf(nil, "part-%02d", i), []byte("v"))
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	dialer.heal()
	if !r.WaitFor(primary.mgr.WALEnd(), 10*time.Second) {
		t.Fatalf("replica stuck at %d after partition healed", r.Offset())
	}
	assertReplicated(t, primary, rn)
}

// TestServerStress is the CI race target: 16 pipelined clients hammer
// the primary while two replicas stream, one of them through a faulty
// transport. Run with -race.
func TestServerStress(t *testing.T) {
	reg := stats.New()
	primary, srv, _ := primaryNode(t, reg)

	const (
		clients       = 16
		opsPerClient  = 40
		pipelineDepth = 10
	)

	// Replica 1: clean transport. Replica 2: drops on a schedule.
	r1n := newNode(t)
	r1, err := StartReplica(ReplicaConfig{Addr: srv.Addr(), Applier: r1n.mgr.ShipApplier(), Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	defer r1.Stop()
	dialer := &flakyDialer{
		seed: 1234,
		rules: func(attempt int64) []osal.NetRule {
			return []osal.NetRule{{Class: osal.NetRead, At: 6 + 3*attempt, Kind: osal.NetDrop}}
		},
	}
	r2n := newNode(t)
	r2, err := StartReplica(ReplicaConfig{
		Addr:        srv.Addr(),
		Applier:     r2n.mgr.ShipApplier(),
		Dial:        dialer.dial,
		Seed:        12,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Stop()

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := DialClient(srv.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			cl.Timeout = 30 * time.Second
			for base := 0; base < opsPerClient; base += pipelineDepth {
				for i := 0; i < pipelineDepth; i++ {
					k := fmt.Appendf(nil, "c%02d-%03d", c, base+i)
					if err := cl.QueuePut(k, fmt.Appendf(nil, "v-%d", base+i)); err != nil {
						errs <- err
						return
					}
				}
				if err := cl.Flush(); err != nil {
					errs <- err
					return
				}
				for i := 0; i < pipelineDepth; i++ {
					if err := cl.AwaitOK(); err != nil {
						errs <- fmt.Errorf("client %d: %w", c, err)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	dialer.heal()
	target := primary.mgr.WALEnd()
	if !r1.WaitFor(target, 15*time.Second) {
		t.Fatalf("clean replica stuck at %d of %d", r1.Offset(), target)
	}
	if !r2.WaitFor(target, 15*time.Second) {
		t.Fatalf("faulty replica stuck at %d of %d", r2.Offset(), target)
	}
	assertReplicated(t, primary, r1n)
	assertReplicated(t, primary, r2n)

	// Spot-check the data actually written, through the wire.
	cl, err := DialClient(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for c := 0; c < clients; c++ {
		v, err := cl.Get(fmt.Appendf(nil, "c%02d-%03d", c, opsPerClient-1))
		if err != nil {
			t.Fatalf("client %d last key: %v", c, err)
		}
		if want := fmt.Sprintf("v-%d", opsPerClient-1); string(v) != want {
			t.Fatalf("client %d last key = %q, want %q", c, v, want)
		}
	}
}
