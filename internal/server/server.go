package server

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"famedb/internal/repl"
	"famedb/internal/stats"
	"famedb/internal/txn"
)

// Defaults for Config zero values.
const (
	DefaultMaxInflight  = 64
	DefaultReadTimeout  = 30 * time.Second
	DefaultWriteTimeout = 10 * time.Second
)

// Config wires a Server to a composed product.
type Config struct {
	// Mgr executes every client command as a transaction, so writes go
	// through the WAL (and group commit, when composed). The Store fast
	// path is deliberately not exposed over the wire: it bypasses both
	// the log and the lock table.
	Mgr *txn.Manager
	// Shipper fans shipped WAL frames out to replication sessions. Nil
	// disables replication sessions (Server without Replication).
	Shipper *repl.Shipper
	// Metrics is the stats Repl section; nil-safe.
	Metrics *stats.Repl
	// MaxInflight bounds how many pipelined requests one connection may
	// stage ahead of execution. The reader stops pulling frames once
	// the bound is hit, so backpressure reaches the client through TCP.
	MaxInflight int
	// ReadTimeout bounds the wait for each inbound frame once a session
	// is active; an idle or wedged peer is cut off. Zero means
	// DefaultReadTimeout; negative disables the deadline.
	ReadTimeout time.Duration
	// WriteTimeout bounds each outbound frame write.
	WriteTimeout time.Duration
}

func (c Config) inflight() int {
	if c.MaxInflight > 0 {
		return c.MaxInflight
	}
	return DefaultMaxInflight
}

func (c Config) readTimeout() time.Duration {
	if c.ReadTimeout == 0 {
		return DefaultReadTimeout
	}
	if c.ReadTimeout < 0 {
		return 0
	}
	return c.ReadTimeout
}

func (c Config) writeTimeout() time.Duration {
	if c.WriteTimeout == 0 {
		return DefaultWriteTimeout
	}
	if c.WriteTimeout < 0 {
		return 0
	}
	return c.WriteTimeout
}

// Server accepts client and replication sessions on one listener. The
// first frame of a connection picks the session kind: a command starts
// a client session, a replHello starts a replication session.
type Server struct {
	cfg Config
	ln  net.Listener

	mu      sync.Mutex
	conns   map[net.Conn]struct{}
	acked   map[*replSession]int64
	closed  bool
	accepts int64

	wg sync.WaitGroup
}

// Serve binds addr and starts accepting. The listener is bound
// synchronously, so Addr is valid on return.
func Serve(addr string, cfg Config) (*Server, error) {
	if cfg.Mgr == nil {
		return nil, errors.New("server: Config.Mgr is required")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("server: listen %s: %w", addr, err)
	}
	s := &Server{
		cfg:   cfg,
		ln:    ln,
		conns: make(map[net.Conn]struct{}),
		acked: make(map[*replSession]int64),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener, severs every session, and waits for the
// session goroutines to drain. Safe to call twice.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.accepts++
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) dropConn(conn net.Conn) {
	conn.Close()
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// serveConn reads the first frame and dispatches on its type.
func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer s.dropConn(conn)
	if d := s.cfg.readTimeout(); d > 0 {
		conn.SetReadDeadline(time.Now().Add(d))
	}
	typ, payload, err := readFrame(conn)
	if err != nil {
		return
	}
	if typ == replHello {
		s.serveRepl(conn, payload)
		return
	}
	s.serveClient(conn, typ, payload)
}

// request is one staged client frame.
type request struct {
	typ     byte
	payload []byte
}

// serveClient runs a client session: a reader goroutine stages frames
// into a bounded queue (the admission bound) while the session
// goroutine executes them in order and writes in-order responses, so a
// client may pipeline up to MaxInflight requests ahead.
func (s *Server) serveClient(conn net.Conn, typ byte, payload []byte) {
	queue := make(chan request, s.cfg.inflight())
	queue <- request{typ, payload}
	go func() {
		defer close(queue)
		for {
			if d := s.cfg.readTimeout(); d > 0 {
				conn.SetReadDeadline(time.Now().Add(d))
			}
			typ, payload, err := readFrame(conn)
			if err != nil {
				return
			}
			queue <- request{typ, payload}
		}
	}()
	for req := range queue {
		rtyp, rpayload := s.execute(req.typ, req.payload)
		if d := s.cfg.writeTimeout(); d > 0 {
			conn.SetWriteDeadline(time.Now().Add(d))
		}
		if err := writeFrame(conn, rtyp, rpayload); err != nil {
			break
		}
	}
	// Sever the transport, then drain the queue: the reader may be
	// blocked on a full queue send, and draining unblocks it so its next
	// read fails and it closes the channel.
	conn.Close()
	for range queue {
	}
}

// execute runs one client command as a transaction and returns the
// response frame. Protocol-level garbage gets a respErr; the connection
// survives unless the transport itself failed.
func (s *Server) execute(typ byte, payload []byte) (byte, []byte) {
	switch typ {
	case cmdPing:
		return respOK, nil

	case cmdGet:
		key, rest, err := takeBytes(payload)
		if err != nil || len(rest) != 0 {
			return respErr, []byte("malformed get")
		}
		tx := s.cfg.Mgr.Begin()
		val, err := tx.Get(key)
		tx.Abort()
		if errors.Is(err, txn.ErrNotFound) {
			return respNotFound, nil
		}
		if err != nil {
			return respErr, []byte(err.Error())
		}
		return respValue, val

	case cmdPut, cmdUpdate:
		key, val, err := decodeKV(payload)
		if err != nil {
			return respErr, []byte("malformed put")
		}
		tx := s.cfg.Mgr.Begin()
		if typ == cmdPut {
			err = tx.Put(key, val)
		} else {
			err = tx.Update(key, val)
		}
		if err == nil {
			err = tx.Commit()
		} else {
			tx.Abort()
		}
		if errors.Is(err, txn.ErrNotFound) {
			return respNotFound, nil
		}
		if err != nil {
			return respErr, []byte(err.Error())
		}
		return respOK, nil

	case cmdRemove:
		key, rest, err := takeBytes(payload)
		if err != nil || len(rest) != 0 {
			return respErr, []byte("malformed remove")
		}
		tx := s.cfg.Mgr.Begin()
		err = tx.Remove(key)
		if err == nil {
			err = tx.Commit()
		} else {
			tx.Abort()
		}
		if errors.Is(err, txn.ErrNotFound) {
			return respNotFound, nil
		}
		if err != nil {
			return respErr, []byte(err.Error())
		}
		return respOK, nil

	case cmdBatch:
		ops, err := decodeBatch(payload)
		if err != nil {
			return respErr, []byte("malformed batch")
		}
		tx := s.cfg.Mgr.Begin()
		for _, op := range ops {
			if op.Remove {
				err = tx.Remove(op.Key)
			} else {
				err = tx.Put(op.Key, op.Value)
			}
			if err != nil {
				break
			}
		}
		if err == nil {
			err = tx.Commit()
		} else {
			tx.Abort()
		}
		if err != nil {
			return respErr, []byte(err.Error())
		}
		return respOK, nil

	default:
		return respErr, []byte(fmt.Sprintf("unknown command %d", typ))
	}
}

// replSession is one connected replica, tracked for the lag gauges.
// The id keeps the struct non-zero-sized so each session allocates a
// distinct map key.
type replSession struct{ id int64 }

// updateGauges recomputes the replica-health gauges from the per-
// session ack table. Called on connect, disconnect, and every ack.
func (s *Server) updateGauges() {
	end := s.cfg.Mgr.WALEnd()
	s.mu.Lock()
	connected := int64(len(s.acked))
	var maxLag int64
	for _, off := range s.acked {
		if lag := end - off; lag > maxLag {
			maxLag = lag
		}
	}
	s.mu.Unlock()
	s.cfg.Metrics.Gauges(connected, maxLag)
}

// serveRepl runs a replication session. Ordering matters and mirrors
// the in-process ship layer's contract: subscribe the feed FIRST, then
// capture the catch-up range (or snapshot), then stream — frames that
// arrive in the feed while the catch-up is in flight overlap the range
// and are deduplicated byte-exactly by the replica's applier.
func (s *Server) serveRepl(conn net.Conn, payload []byte) {
	if s.cfg.Shipper == nil {
		writeFrame(conn, respErr, []byte("replication not composed"))
		return
	}
	h, err := decodeHello(payload)
	if err != nil {
		return
	}

	s.mu.Lock()
	sess := &replSession{id: s.accepts}
	s.acked[sess] = h.Offset
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.acked, sess)
		s.mu.Unlock()
		s.updateGauges()
	}()
	s.updateGauges()

	feed := s.cfg.Shipper.Subscribe()
	defer s.cfg.Shipper.Unsubscribe(feed)

	// Decide catch-up vs snapshot. A fingerprint match on the replica's
	// offset means its WAL is a byte-exact prefix of ours: ship the
	// missing range. Anything else — offset past our end (we rewound),
	// CRC mismatch (divergence), or an explicit forceSnap after an
	// interrupted install — gets a full snapshot.
	var seq uint64
	snapshot := h.ForceSnap
	if !snapshot {
		crc, err := s.cfg.Mgr.WALPrefixCRC(h.Offset)
		snapshot = err != nil || crc != h.CRC
	}
	if snapshot {
		snap, err := s.cfg.Mgr.ShipSnapshot()
		if err != nil {
			return
		}
		if err := s.writeRepl(conn, replSnapBegin, nil); err != nil {
			return
		}
		for i := range snap.Keys {
			if err := s.writeRepl(conn, replSnapKV, encodeKV(snap.Keys[i], snap.Vals[i])); err != nil {
				return
			}
		}
		if err := s.writeRepl(conn, replSnapEnd, snap.WALImage); err != nil {
			return
		}
		s.cfg.Metrics.SnapshotResync()
	} else if end := s.cfg.Mgr.WALEnd(); end > h.Offset {
		chunk, err := s.cfg.Mgr.ReadWALRange(h.Offset, end)
		if err != nil {
			return
		}
		seq++
		msg := encodeFrameMsg(frameMsg{Seq: seq, Base: h.Offset, Bytes: chunk})
		if err := s.writeRepl(conn, replFrames, msg); err != nil {
			return
		}
		s.cfg.Metrics.CatchUp()
	}

	// Ack reader: consumes replAck frames until the peer goes away,
	// updating the lag table. Its exit tears the connection down, which
	// in turn unblocks the streaming loop's writes.
	ackDone := make(chan struct{})
	go func() {
		defer close(ackDone)
		for {
			if d := s.cfg.readTimeout(); d > 0 {
				conn.SetReadDeadline(time.Now().Add(d))
			}
			typ, p, err := readFrame(conn)
			if err != nil {
				conn.Close()
				return
			}
			if typ != replAck {
				conn.Close()
				return
			}
			off, _, err := takeUvarint(p)
			if err != nil {
				conn.Close()
				return
			}
			s.mu.Lock()
			s.acked[sess] = int64(off)
			s.mu.Unlock()
			s.cfg.Metrics.Ack()
			s.updateGauges()
		}
	}()

	// Stream live frames. Frames already covered by the catch-up or
	// snapshot are forwarded anyway: the applier's
	// overlap verification drops exact duplicates and applies partial
	// suffixes. Sequence numbers are renumbered per session so the
	// replica's gap detector sees a contiguous stream regardless of how
	// many sessions the shipper has served. The ticker catches a feed
	// broken while idle (rewind or overflow delivers no further frames,
	// so a blocked receive would never notice on its own).
	brokenPoll := time.NewTicker(250 * time.Millisecond)
	defer brokenPoll.Stop()
	for {
		select {
		case <-brokenPoll.C:
			if feed.Broken() {
				conn.Close()
				<-ackDone
				return
			}
		case f, ok := <-feed.C():
			if !ok {
				// Shipper closed, or the WAL rewound and broke the feed:
				// end the session; the reconnect handshake sorts it out.
				conn.Close()
				<-ackDone
				return
			}
			seq++
			msg := encodeFrameMsg(frameMsg{Seq: seq, Base: f.Base, Bytes: f.Bytes})
			if err := s.writeRepl(conn, replFrames, msg); err != nil {
				conn.Close()
				<-ackDone
				return
			}
			if feed.Broken() {
				conn.Close()
				<-ackDone
				return
			}
		case <-ackDone:
			return
		}
	}
}

func (s *Server) writeRepl(conn net.Conn, typ byte, payload []byte) error {
	if d := s.cfg.writeTimeout(); d > 0 {
		conn.SetWriteDeadline(time.Now().Add(d))
	}
	return writeFrame(conn, typ, payload)
}
