package server

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"famedb/internal/access"
	"famedb/internal/index"
	"famedb/internal/osal"
	"famedb/internal/repl"
	"famedb/internal/stats"
	"famedb/internal/storage"
	"famedb/internal/txn"
)

// node is one in-process database: store, index, and transaction
// manager over a MemFS — the same stack the composer builds for a
// Replication product.
type node struct {
	fs  osal.FS
	idx index.Index
	mgr *txn.Manager
}

func newNode(t *testing.T) *node {
	t.Helper()
	fs := osal.NewMemFS()
	f, err := fs.Create("p.db")
	if err != nil {
		t.Fatal(err)
	}
	pf, err := storage.CreatePageFile(f, 512)
	if err != nil {
		t.Fatal(err)
	}
	idx, _, err := index.CreateBTree(pf, index.AllBTreeOps())
	if err != nil {
		t.Fatal(err)
	}
	store := access.New(idx, access.AllOps())
	mgr, err := txn.Open(fs, "wal.log", store, txn.Options{
		Protocol: txn.Force{},
		Locking:  true,
		Recovery: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mgr.Close() })
	return &node{fs: fs, idx: idx, mgr: mgr}
}

// primaryNode wires a node to a Shipper and serves it.
func primaryNode(t *testing.T, reg *stats.Registry) (*node, *Server, *repl.Shipper) {
	t.Helper()
	n := newNode(t)
	shipper := repl.NewShipper(repl.DefaultFeedDepth, reg.Repl())
	n.mgr.SetOnShip(shipper.OnShip)
	srv, err := Serve("127.0.0.1:0", Config{
		Mgr:     n.mgr,
		Shipper: shipper,
		Metrics: reg.Repl(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		shipper.Close()
	})
	return n, srv, shipper
}

// assertPrefix asserts the replica WAL is a byte-exact prefix of the
// primary's (via the same CRC fingerprint the handshake uses) and the
// two indexes hold identical data.
func assertReplicated(t *testing.T, primary, replica *node) {
	t.Helper()
	end, crc, err := replica.mgr.ShipApplier().PrefixCRC()
	if err != nil {
		t.Fatal(err)
	}
	if end != primary.mgr.WALEnd() {
		t.Fatalf("replica wal end %d, primary %d", end, primary.mgr.WALEnd())
	}
	pcrc, err := primary.mgr.WALPrefixCRC(end)
	if err != nil {
		t.Fatal(err)
	}
	if crc != pcrc {
		t.Fatalf("replica wal prefix crc %08x, primary %08x", crc, pcrc)
	}
	if err := repl.VerifyIndexes(primary.idx, replica.idx); err != nil {
		t.Fatalf("index verify: %v", err)
	}
}

func TestProtoRoundTrip(t *testing.T) {
	ops := []Op{
		{Key: []byte("a"), Value: []byte("1")},
		{Remove: true, Key: []byte("b")},
		{Key: []byte(""), Value: bytes.Repeat([]byte("x"), 300)},
	}
	got, err := decodeBatch(encodeBatch(ops))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ops) {
		t.Fatalf("decoded %d ops, want %d", len(got), len(ops))
	}
	for i := range ops {
		if got[i].Remove != ops[i].Remove ||
			!bytes.Equal(got[i].Key, ops[i].Key) ||
			!bytes.Equal(got[i].Value, ops[i].Value) {
			t.Fatalf("op %d mismatch: %+v vs %+v", i, got[i], ops[i])
		}
	}
	h := hello{Offset: 12345, CRC: 0xdeadbeef, ForceSnap: true}
	hd, err := decodeHello(encodeHello(h))
	if err != nil {
		t.Fatal(err)
	}
	if hd != h {
		t.Fatalf("hello %+v round-tripped to %+v", h, hd)
	}
	f := frameMsg{Seq: 7, Base: 99, Bytes: []byte("chunk")}
	fd, err := decodeFrameMsg(encodeFrameMsg(f))
	if err != nil {
		t.Fatal(err)
	}
	if fd.Seq != f.Seq || fd.Base != f.Base || !bytes.Equal(fd.Bytes, f.Bytes) {
		t.Fatalf("frame %+v round-tripped to %+v", f, fd)
	}
	// Malformed inputs must error, not panic.
	for _, bad := range [][]byte{nil, {0xff}, {3, 1}} {
		if _, err := decodeBatch(bad); err == nil {
			t.Fatalf("decodeBatch(%v) accepted garbage", bad)
		}
		if _, err := decodeHello(bad); err == nil {
			t.Fatalf("decodeHello(%v) accepted garbage", bad)
		}
	}
}

func TestClientServerBasic(t *testing.T) {
	n := newNode(t)
	srv, err := Serve("127.0.0.1:0", Config{Mgr: n.mgr})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := DialClient(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Timeout = 5 * time.Second

	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := c.Put([]byte("k1"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get([]byte("k1"))
	if err != nil || !bytes.Equal(got, []byte("v1")) {
		t.Fatalf("Get k1 = %q, %v", got, err)
	}
	if _, err := c.Get([]byte("nope")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get missing = %v, want ErrNotFound", err)
	}
	if err := c.Update([]byte("nope"), []byte("x")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Update missing = %v, want ErrNotFound", err)
	}
	if err := c.Update([]byte("k1"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if err := c.Remove([]byte("nope")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Remove missing = %v, want ErrNotFound", err)
	}
	if err := c.Batch([]Op{
		{Key: []byte("b1"), Value: []byte("1")},
		{Key: []byte("b2"), Value: []byte("2")},
	}); err != nil {
		t.Fatal(err)
	}
	// A batch that fails midway aborts wholesale: b3 must not appear.
	err = c.Batch([]Op{
		{Key: []byte("b3"), Value: []byte("3")},
		{Remove: true, Key: []byte("missing")},
	})
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("failing batch = %v, want RemoteError", err)
	}
	if _, err := c.Get([]byte("b3")); !errors.Is(err, ErrNotFound) {
		t.Fatal("aborted batch leaked b3")
	}
	if err := c.Remove([]byte("k1")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get([]byte("k1")); !errors.Is(err, ErrNotFound) {
		t.Fatal("Remove did not remove k1")
	}
}

func TestClientPipelining(t *testing.T) {
	n := newNode(t)
	srv, err := Serve("127.0.0.1:0", Config{Mgr: n.mgr, MaxInflight: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := DialClient(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Timeout = 10 * time.Second

	// Queue far more than MaxInflight: the admission bound must
	// backpressure, not drop or deadlock.
	const N = 200
	for i := 0; i < N; i++ {
		if err := c.QueuePut(fmt.Appendf(nil, "key-%03d", i), fmt.Appendf(nil, "val-%03d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < N; i++ {
		if err := c.AwaitOK(); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	for i := 0; i < N; i++ {
		if err := c.QueueGet(fmt.Appendf(nil, "key-%03d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < N; i++ {
		v, err := c.AwaitValue()
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		if want := fmt.Sprintf("val-%03d", i); string(v) != want {
			t.Fatalf("get %d = %q, want %q (responses out of order?)", i, v, want)
		}
	}
}

func TestServerReadDeadlineReapsIdleClient(t *testing.T) {
	n := newNode(t)
	srv, err := Serve("127.0.0.1:0", Config{Mgr: n.mgr, ReadTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Say nothing. The server must cut us off, observable as EOF.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	var one [1]byte
	if _, err := conn.Read(one[:]); err == nil {
		t.Fatal("idle connection survived the read deadline")
	}
}

func TestReplicationEndToEnd(t *testing.T) {
	reg := stats.New()
	primary, srv, _ := primaryNode(t, reg)

	// Seed some state before any replica exists: the first handshake
	// catches up from offset 0 (empty-log CRC matches — it is a valid
	// prefix).
	for i := 0; i < 10; i++ {
		tx := primary.mgr.Begin()
		tx.Put(fmt.Appendf(nil, "seed-%02d", i), []byte("s"))
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}

	r1n, r2n := newNode(t), newNode(t)
	r1, err := StartReplica(ReplicaConfig{Addr: srv.Addr(), Applier: r1n.mgr.ShipApplier(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer r1.Stop()
	r2, err := StartReplica(ReplicaConfig{Addr: srv.Addr(), Applier: r2n.mgr.ShipApplier(), Seed: 2})
	if err != nil {
		t.Fatal(err)
	}

	// Live commits while both replicas stream.
	for i := 0; i < 40; i++ {
		tx := primary.mgr.Begin()
		tx.Put(fmt.Appendf(nil, "live-%02d", i), fmt.Appendf(nil, "v%02d", i))
		if i%5 == 0 {
			tx.Remove(fmt.Appendf(nil, "seed-%02d", i/5))
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	target := primary.mgr.WALEnd()
	if !r1.WaitFor(target, 5*time.Second) {
		t.Fatalf("replica 1 stuck at %d, want %d", r1.Offset(), target)
	}
	if !r2.WaitFor(target, 5*time.Second) {
		t.Fatalf("replica 2 stuck at %d, want %d", r2.Offset(), target)
	}
	assertReplicated(t, primary, r1n)
	assertReplicated(t, primary, r2n)

	snap := reg.Snapshot()
	if snap.Repl.Connected != 2 {
		t.Fatalf("connected gauge = %d, want 2", snap.Repl.Connected)
	}
	if snap.Repl.ShippedChunks == 0 {
		t.Fatalf("repl counters flat: %+v", snap.Repl)
	}
	// WaitFor returns once the replica has applied and *sent* its ack;
	// the primary may not have read it yet, so poll the counter.
	ackDeadline := time.Now().Add(5 * time.Second)
	for reg.Snapshot().Repl.Acks == 0 {
		if time.Now().After(ackDeadline) {
			t.Fatalf("repl ack counter flat: %+v", reg.Snapshot().Repl)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Losing a replica updates the gauge without disturbing the other.
	r2.Stop()
	deadline := time.Now().Add(5 * time.Second)
	for reg.Snapshot().Repl.Connected != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("connected gauge stuck at %d after replica stop", reg.Snapshot().Repl.Connected)
		}
		time.Sleep(5 * time.Millisecond)
	}
	tx := primary.mgr.Begin()
	tx.Put([]byte("after-loss"), []byte("ok"))
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit with one dead replica: %v", err)
	}
	if !r1.WaitFor(primary.mgr.WALEnd(), 5*time.Second) {
		t.Fatal("surviving replica stopped streaming")
	}
	assertReplicated(t, primary, r1n)
}

func TestReplicaSnapshotResyncOnDivergence(t *testing.T) {
	reg := stats.New()
	primary, srv, _ := primaryNode(t, reg)

	for i := 0; i < 20; i++ {
		tx := primary.mgr.Begin()
		tx.Put(fmt.Appendf(nil, "p-%02d", i), []byte("v"))
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}

	// The replica node carries unrelated local history: its WAL is not a
	// prefix of the primary's, so the handshake CRC mismatches and the
	// primary must ship a full snapshot (wiping the junk key).
	rn := newNode(t)
	tx := rn.mgr.Begin()
	tx.Put([]byte("junk"), []byte("divergent"))
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	r, err := StartReplica(ReplicaConfig{Addr: srv.Addr(), Applier: rn.mgr.ShipApplier(), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()

	if !r.WaitFor(primary.mgr.WALEnd(), 5*time.Second) {
		t.Fatalf("replica stuck at %d", r.Offset())
	}
	assertReplicated(t, primary, rn)
	if _, ok, _ := rn.idx.Get([]byte("junk")); ok {
		t.Fatal("snapshot resync left divergent key behind")
	}
	if reg.Snapshot().Repl.Snapshots == 0 {
		t.Fatal("no snapshot resync recorded")
	}

	// And the resynced replica streams live traffic afterwards.
	tx = primary.mgr.Begin()
	tx.Put([]byte("post-snap"), []byte("v"))
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if !r.WaitFor(primary.mgr.WALEnd(), 5*time.Second) {
		t.Fatal("replica not streaming after snapshot resync")
	}
	assertReplicated(t, primary, rn)
}

// TestReplicaSeqGapForcesSnapshot drives the replica client against a
// fake primary that skips a sequence number; the reconnect handshake
// must carry ForceSnap per the robustness contract.
func TestReplicaSeqGapForcesSnapshot(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	forceSnap := make(chan bool, 2)
	go func() {
		for i := 0; i < 2; i++ {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			typ, payload, err := readFrame(conn)
			if err != nil || typ != replHello {
				conn.Close()
				continue
			}
			h, err := decodeHello(payload)
			if err != nil {
				conn.Close()
				continue
			}
			forceSnap <- h.ForceSnap
			if i == 0 {
				// Ship seq 1 then 3: a gap. The chunk bytes are empty,
				// so the gap check is all that fires. Then drain acks
				// until the replica hangs up — closing early could fail
				// the replica's ack before it even reads the gap frame.
				writeFrame(conn, replFrames, encodeFrameMsg(frameMsg{Seq: 1, Base: 8, Bytes: nil}))
				writeFrame(conn, replFrames, encodeFrameMsg(frameMsg{Seq: 3, Base: 8, Bytes: nil}))
				for {
					if _, _, err := readFrame(conn); err != nil {
						break
					}
				}
			}
			conn.Close()
		}
	}()

	rn := newNode(t)
	r, err := StartReplica(ReplicaConfig{Addr: ln.Addr().String(), Applier: rn.mgr.ShipApplier(), Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()

	if got := <-forceSnap; got {
		t.Fatal("first handshake already forced a snapshot")
	}
	select {
	case got := <-forceSnap:
		if !got {
			t.Fatal("post-gap handshake did not force a snapshot")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("replica never reconnected after sequence gap")
	}
}

func TestServerWithoutShipperRefusesRepl(t *testing.T) {
	n := newNode(t)
	srv, err := Serve("127.0.0.1:0", Config{Mgr: n.mgr})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := writeFrame(conn, replHello, encodeHello(hello{})); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := readFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if typ != respErr {
		t.Fatalf("response %d %q, want respErr", typ, payload)
	}
}
