package server

import (
	"encoding/binary"
	"errors"
	"math/rand"
	"net"
	"sync"
	"time"

	"famedb/internal/txn"
)

// Replica-client defaults.
const (
	DefaultBaseBackoff = 10 * time.Millisecond
	DefaultMaxBackoff  = time.Second
	DefaultAckInterval = 5 * time.Second
)

// ReplicaConfig wires a replica client to a primary.
type ReplicaConfig struct {
	// Addr is the primary's listen address.
	Addr string
	// Applier is the local manager's ship applier; it owns the replica
	// WAL and store.
	Applier *txn.ShipApplier
	// Dial opens the transport; nil means plain TCP. Tests inject a
	// FlakyConn-wrapping dialer here.
	Dial func(addr string) (net.Conn, error)
	// Seed drives the reconnect jitter, so fault tests replay exactly.
	Seed int64
	// BaseBackoff and MaxBackoff bound the capped exponential reconnect
	// backoff. Zero means the defaults.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// AckInterval is the keepalive cadence: the replica re-acks its
	// current offset even when no frames arrive, so the primary's read
	// deadline does not reap an idle-but-healthy session. Zero means
	// DefaultAckInterval.
	AckInterval time.Duration
}

func (c ReplicaConfig) base() time.Duration {
	if c.BaseBackoff > 0 {
		return c.BaseBackoff
	}
	return DefaultBaseBackoff
}

func (c ReplicaConfig) max() time.Duration {
	if c.MaxBackoff > 0 {
		return c.MaxBackoff
	}
	return DefaultMaxBackoff
}

func (c ReplicaConfig) ackEvery() time.Duration {
	if c.AckInterval > 0 {
		return c.AckInterval
	}
	return DefaultAckInterval
}

// Replica is a running replica client: it dials the primary, handshakes
// with its WAL fingerprint, applies shipped frames (or a full snapshot
// when the fingerprint does not match), and keeps reconnecting with
// capped exponential backoff until Stop. A lost primary never blocks
// the replica's local reads, and a lost replica never blocks the
// primary's commits — the two ends are glued only by this loop.
type Replica struct {
	cfg ReplicaConfig
	rng *rand.Rand

	mu     sync.Mutex
	conn   net.Conn
	closed bool

	stop chan struct{}
	done chan struct{}
}

// StartReplica validates cfg and starts the replication loop. If the
// local log carries a resync marker (a snapshot install was interrupted
// by a crash), the first handshake forces a fresh snapshot.
func StartReplica(cfg ReplicaConfig) (*Replica, error) {
	if cfg.Applier == nil {
		return nil, errors.New("server: ReplicaConfig.Applier is required")
	}
	if cfg.Addr == "" {
		return nil, errors.New("server: ReplicaConfig.Addr is required")
	}
	if cfg.Dial == nil {
		cfg.Dial = func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, 5*time.Second)
		}
	}
	r := &Replica{
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go r.loop()
	return r, nil
}

// Offset returns the replica WAL's applied end offset.
func (r *Replica) Offset() int64 { return r.cfg.Applier.End() }

// WaitFor polls until the replica WAL reaches at least target bytes or
// the timeout expires, reporting success. A convenience for tests and
// the CLI's catch-up wait.
func (r *Replica) WaitFor(target int64, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		if r.Offset() >= target {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
}

// Stop ends the loop and severs any live connection.
func (r *Replica) Stop() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		<-r.done
		return
	}
	r.closed = true
	conn := r.conn
	r.mu.Unlock()
	close(r.stop)
	if conn != nil {
		conn.Close()
	}
	<-r.done
}

func (r *Replica) stopping() bool {
	select {
	case <-r.stop:
		return true
	default:
		return false
	}
}

// loop is the reconnect driver: dial, run one session, back off, redo.
// A session that made progress (applied at least one frame or a
// snapshot) resets the backoff.
func (r *Replica) loop() {
	defer close(r.done)
	forceSnap := r.cfg.Applier.NeedsResync()
	attempt := 0
	for !r.stopping() {
		conn, err := r.cfg.Dial(r.cfg.Addr)
		if err != nil {
			attempt++
			if !r.sleep(attempt) {
				return
			}
			continue
		}
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			conn.Close()
			return
		}
		r.conn = conn
		r.mu.Unlock()

		progress, nextSnap := r.session(conn, forceSnap)
		conn.Close()
		r.mu.Lock()
		r.conn = nil
		r.mu.Unlock()

		forceSnap = nextSnap
		if progress {
			attempt = 0
		} else {
			attempt++
		}
		if !r.sleep(attempt) {
			return
		}
	}
}

// sleep applies the capped exponential backoff with seeded jitter
// (half fixed, half random) and reports false when Stop fired.
func (r *Replica) sleep(attempt int) bool {
	d := r.cfg.base()
	for i := 1; i < attempt && d < r.cfg.max(); i++ {
		d *= 2
	}
	if d > r.cfg.max() {
		d = r.cfg.max()
	}
	d = d/2 + time.Duration(r.rng.Int63n(int64(d/2)+1))
	select {
	case <-r.stop:
		return false
	case <-time.After(d):
		return true
	}
}

// session runs one connection: handshake, then apply whatever the
// primary streams. It returns whether any state was applied and
// whether the next handshake must force a snapshot (sequence gap,
// divergence, or a failed install).
func (r *Replica) session(conn net.Conn, forceSnap bool) (progress, nextSnap bool) {
	end, crc, err := r.cfg.Applier.PrefixCRC()
	if err != nil {
		// Cannot fingerprint the local log; a snapshot rebuilds it.
		forceSnap, end, crc = true, 0, 0
	}
	var wmu sync.Mutex // hello + acks interleave with the keepalive
	send := func(typ byte, payload []byte) error {
		wmu.Lock()
		defer wmu.Unlock()
		conn.SetWriteDeadline(time.Now().Add(DefaultWriteTimeout))
		return writeFrame(conn, typ, payload)
	}
	ack := func() error {
		return send(replAck, binary.AppendUvarint(nil, uint64(r.cfg.Applier.End())))
	}
	if err := send(replHello, encodeHello(hello{Offset: end, CRC: crc, ForceSnap: forceSnap})); err != nil {
		return false, forceSnap
	}

	// Keepalive: re-ack periodically so the primary's per-connection
	// read deadline does not cut an idle session.
	kaDone := make(chan struct{})
	defer close(kaDone)
	go func() {
		t := time.NewTicker(r.cfg.ackEvery())
		defer t.Stop()
		for {
			select {
			case <-kaDone:
				return
			case <-t.C:
				if ack() != nil {
					return
				}
			}
		}
	}()

	var snap *txn.ShipSnap
	var lastSeq uint64
	for {
		typ, payload, err := readFrame(conn)
		if err != nil {
			return progress, false
		}
		switch typ {
		case replFrames:
			f, err := decodeFrameMsg(payload)
			if err != nil {
				return progress, false
			}
			if f.Seq != lastSeq+1 {
				// Lost frames on this session: the local log may be
				// arbitrarily behind a stream we cannot rejoin. Per the
				// robustness contract a gap forces a full snapshot.
				return progress, true
			}
			lastSeq = f.Seq
			if err := r.cfg.Applier.Apply(f.Base, f.Bytes); err != nil {
				// Gap or divergence against the local log: resync.
				return progress, true
			}
			progress = true
			if ack() != nil {
				return progress, false
			}
		case replSnapBegin:
			snap = &txn.ShipSnap{}
		case replSnapKV:
			if snap == nil {
				return progress, false
			}
			k, v, err := decodeKV(payload)
			if err != nil {
				return progress, false
			}
			snap.Keys = append(snap.Keys, k)
			snap.Vals = append(snap.Vals, v)
		case replSnapEnd:
			if snap == nil {
				return progress, false
			}
			snap.WALImage = payload
			if err := r.cfg.Applier.InstallSnapshot(snap); err != nil {
				return progress, true
			}
			snap = nil
			progress = true
			if ack() != nil {
				return progress, false
			}
		case respErr:
			// The primary refused the session (e.g. replication not
			// composed there). Back off and retry; the operator may fix
			// the primary without touching the replica.
			return progress, forceSnap
		default:
			return progress, false
		}
	}
}
