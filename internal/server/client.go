package server

import (
	"bufio"
	"fmt"
	"net"
	"time"

	"famedb/internal/txn"
)

// ErrNotFound aliases the transactional not-found sentinel, so callers
// use one errors.Is check whether they hit the store directly or over
// the wire.
var ErrNotFound = txn.ErrNotFound

// RemoteError is a respErr from the server: the command failed on the
// primary (constraint violation, storage error, malformed frame).
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return "server: remote error: " + e.Msg }

// Client speaks the client side of the protocol. The synchronous
// methods (Put, Get, ...) are one round trip each; the Queue*/Flush/
// AwaitOK methods pipeline: queue up to the server's admission bound,
// flush once, then collect the in-order responses. A Client is not
// safe for concurrent use — one goroutine per connection, like the
// server's one session per connection.
type Client struct {
	conn net.Conn
	bw   *bufio.Writer
	br   *bufio.Reader
	// Timeout bounds each blocking read and queued write; zero means
	// no deadline.
	Timeout time.Duration
}

// DialClient connects a Client over TCP.
func DialClient(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("server: dial %s: %w", addr, err)
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection (tests wrap a FlakyConn).
func NewClient(conn net.Conn) *Client {
	return &Client{
		conn: conn,
		bw:   bufio.NewWriter(conn),
		br:   bufio.NewReader(conn),
	}
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) deadlines() {
	if c.Timeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.Timeout))
	}
}

// queue stages one frame without flushing.
func (c *Client) queue(typ byte, payload []byte) error {
	c.deadlines()
	return writeFrame(c.bw, typ, payload)
}

// Flush pushes every queued frame to the server.
func (c *Client) Flush() error {
	c.deadlines()
	return c.bw.Flush()
}

// recv reads one response frame.
func (c *Client) recv() (byte, []byte, error) {
	c.deadlines()
	return readFrame(c.br)
}

// AwaitOK consumes one pipelined response and maps it exactly like the
// synchronous methods: nil for respOK, ErrNotFound, or a RemoteError.
func (c *Client) AwaitOK() error {
	typ, payload, err := c.recv()
	if err != nil {
		return err
	}
	switch typ {
	case respOK, respValue:
		return nil
	case respNotFound:
		return ErrNotFound
	case respErr:
		return &RemoteError{Msg: string(payload)}
	default:
		return fmt.Errorf("%w: unexpected response %d", ErrProto, typ)
	}
}

// QueuePut pipelines a put without waiting for its response.
func (c *Client) QueuePut(key, value []byte) error {
	return c.queue(cmdPut, encodeKV(key, value))
}

// QueueGet pipelines a get; pair with AwaitValue.
func (c *Client) QueueGet(key []byte) error {
	return c.queue(cmdGet, appendBytes(nil, key))
}

// QueueBatch pipelines a multi-op transaction.
func (c *Client) QueueBatch(ops []Op) error {
	return c.queue(cmdBatch, encodeBatch(ops))
}

// AwaitValue consumes one pipelined get response.
func (c *Client) AwaitValue() ([]byte, error) {
	typ, payload, err := c.recv()
	if err != nil {
		return nil, err
	}
	switch typ {
	case respValue:
		return payload, nil
	case respNotFound:
		return nil, ErrNotFound
	case respErr:
		return nil, &RemoteError{Msg: string(payload)}
	default:
		return nil, fmt.Errorf("%w: unexpected response %d", ErrProto, typ)
	}
}

func (c *Client) roundTrip(typ byte, payload []byte) error {
	if err := c.queue(typ, payload); err != nil {
		return err
	}
	if err := c.Flush(); err != nil {
		return err
	}
	return c.AwaitOK()
}

// Ping round-trips an empty command.
func (c *Client) Ping() error { return c.roundTrip(cmdPing, nil) }

// Put stores key=value in one transaction on the primary.
func (c *Client) Put(key, value []byte) error {
	return c.roundTrip(cmdPut, encodeKV(key, value))
}

// Update overwrites an existing key; ErrNotFound if absent.
func (c *Client) Update(key, value []byte) error {
	return c.roundTrip(cmdUpdate, encodeKV(key, value))
}

// Remove deletes a key; ErrNotFound if absent.
func (c *Client) Remove(key []byte) error {
	return c.roundTrip(cmdRemove, appendBytes(nil, key))
}

// Batch runs ops as one transaction: all or nothing.
func (c *Client) Batch(ops []Op) error {
	return c.roundTrip(cmdBatch, encodeBatch(ops))
}

// Get fetches a key's value; ErrNotFound if absent.
func (c *Client) Get(key []byte) ([]byte, error) {
	if err := c.queue(cmdGet, appendBytes(nil, key)); err != nil {
		return nil, err
	}
	if err := c.Flush(); err != nil {
		return nil, err
	}
	return c.AwaitValue()
}
