// Package server is the Server feature of FAME-DBMS: a TCP front end
// over a composed product. One length-prefixed binary protocol carries
// two kinds of sessions on the same listener:
//
//   - client sessions pipeline Put/Get/Remove/Update/Batch commands;
//     writes stage straight into the existing transaction manager (and
//     so into the group-commit pipeline when composed);
//   - replication sessions (feature Replication) open with a Hello
//     carrying the replica's WAL offset and prefix CRC, then stream
//     shipped WAL frames, snapshot resyncs, and acks.
//
// Frame layout (both directions):
//
//	[4-byte big-endian length n][1-byte type][n-1 bytes payload]
//
// The length covers type+payload and is bounded by MaxFrame; anything
// larger (or a length of zero) is a protocol error and closes the
// connection. Keys and values inside payloads are uvarint-length-
// prefixed byte strings.
package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// MaxFrame bounds one protocol frame (type byte + payload). Snapshot
// WAL images ride in a single frame, so this is also the largest
// shippable log; 64 MiB is far past the embedded targets.
const MaxFrame = 64 << 20

// Frame types. Client commands and their responses sit below 32;
// replication messages at 32 and above.
const (
	cmdPut    = byte(1) // key value -> respOK | respErr
	cmdGet    = byte(2) // key -> respValue | respNotFound | respErr
	cmdRemove = byte(3) // key -> respOK | respNotFound | respErr
	cmdUpdate = byte(4) // key value -> respOK | respNotFound | respErr
	cmdBatch  = byte(5) // op list, one transaction -> respOK | respErr
	cmdPing   = byte(6) // -> respOK

	respOK       = byte(16)
	respValue    = byte(17) // value
	respNotFound = byte(18)
	respErr      = byte(19) // error text

	replHello     = byte(32) // uvarint offset, 4-byte crc, 1-byte forceSnap
	replFrames    = byte(33) // uvarint seq, uvarint base, raw WAL chunk
	replSnapBegin = byte(34) // (empty) snapshot resync starts
	replSnapKV    = byte(35) // key value (one dump entry)
	replSnapEnd   = byte(36) // raw WAL image
	replAck       = byte(37) // uvarint acked replica WAL offset
)

// ErrProto is wrapped by every malformed-frame error.
var ErrProto = errors.New("server: protocol error")

// writeFrame writes one frame. The payload is not retained.
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	n := 1 + len(payload)
	if n > MaxFrame {
		return fmt.Errorf("%w: frame of %d bytes exceeds max %d", ErrProto, n, MaxFrame)
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(n))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) == 0 {
		return nil
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame, returning its type and payload. The
// payload is freshly allocated and owned by the caller.
func readFrame(r io.Reader) (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n == 0 || n > MaxFrame {
		return 0, nil, fmt.Errorf("%w: frame length %d", ErrProto, n)
	}
	payload := make([]byte, n-1)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[4], payload, nil
}

// appendBytes appends a uvarint-length-prefixed byte string.
func appendBytes(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// takeBytes consumes one uvarint-length-prefixed byte string.
func takeBytes(b []byte) (val, rest []byte, err error) {
	n, k := binary.Uvarint(b)
	if k <= 0 || uint64(len(b)-k) < n {
		return nil, nil, fmt.Errorf("%w: truncated byte string", ErrProto)
	}
	return b[k : k+int(n)], b[k+int(n):], nil
}

// takeUvarint consumes one uvarint.
func takeUvarint(b []byte) (uint64, []byte, error) {
	v, k := binary.Uvarint(b)
	if k <= 0 {
		return 0, nil, fmt.Errorf("%w: truncated uvarint", ErrProto)
	}
	return v, b[k:], nil
}

// Op is one operation of a cmdBatch payload.
type Op struct {
	Remove bool
	Key    []byte
	Value  []byte
}

// encodeBatch builds a cmdBatch payload.
func encodeBatch(ops []Op) []byte {
	b := binary.AppendUvarint(nil, uint64(len(ops)))
	for _, op := range ops {
		kind := byte(0)
		if op.Remove {
			kind = 1
		}
		b = append(b, kind)
		b = appendBytes(b, op.Key)
		if !op.Remove {
			b = appendBytes(b, op.Value)
		}
	}
	return b
}

// decodeBatch parses a cmdBatch payload.
func decodeBatch(b []byte) ([]Op, error) {
	count, b, err := takeUvarint(b)
	if err != nil {
		return nil, err
	}
	if count > 1<<20 {
		return nil, fmt.Errorf("%w: batch of %d ops", ErrProto, count)
	}
	ops := make([]Op, 0, count)
	for i := uint64(0); i < count; i++ {
		if len(b) == 0 {
			return nil, fmt.Errorf("%w: truncated batch", ErrProto)
		}
		kind := b[0]
		b = b[1:]
		var op Op
		op.Key, b, err = takeBytes(b)
		if err != nil {
			return nil, err
		}
		op.Key = append([]byte(nil), op.Key...)
		if kind == 0 {
			op.Value, b, err = takeBytes(b)
			if err != nil {
				return nil, err
			}
			op.Value = append([]byte(nil), op.Value...)
		} else {
			op.Remove = true
		}
		ops = append(ops, op)
	}
	return ops, nil
}

// hello is the replication handshake.
type hello struct {
	// Offset and CRC fingerprint the replica's WAL prefix [0, Offset).
	Offset int64
	CRC    uint32
	// ForceSnap requests a full snapshot regardless of the fingerprint
	// (set after an interrupted install or a detected gap).
	ForceSnap bool
}

func encodeHello(h hello) []byte {
	b := binary.AppendUvarint(nil, uint64(h.Offset))
	b = binary.BigEndian.AppendUint32(b, h.CRC)
	if h.ForceSnap {
		return append(b, 1)
	}
	return append(b, 0)
}

func decodeHello(b []byte) (hello, error) {
	var h hello
	off, b, err := takeUvarint(b)
	if err != nil {
		return h, err
	}
	if len(b) != 5 {
		return h, fmt.Errorf("%w: hello tail of %d bytes", ErrProto, len(b))
	}
	h.Offset = int64(off)
	h.CRC = binary.BigEndian.Uint32(b[:4])
	h.ForceSnap = b[4] != 0
	return h, nil
}

// frameMsg is one replFrames message: a shipped WAL chunk with the
// session's sequence number for gap detection.
type frameMsg struct {
	Seq   uint64
	Base  int64
	Bytes []byte
}

func encodeFrameMsg(f frameMsg) []byte {
	b := binary.AppendUvarint(nil, f.Seq)
	b = binary.AppendUvarint(b, uint64(f.Base))
	return append(b, f.Bytes...)
}

func decodeFrameMsg(b []byte) (frameMsg, error) {
	var f frameMsg
	var err error
	f.Seq, b, err = takeUvarint(b)
	if err != nil {
		return f, err
	}
	base, b, err := takeUvarint(b)
	if err != nil {
		return f, err
	}
	f.Base = int64(base)
	f.Bytes = b
	return f, nil
}

// encodeKV builds a key/value payload (cmdPut, cmdUpdate, replSnapKV).
func encodeKV(key, value []byte) []byte {
	return appendBytes(appendBytes(nil, key), value)
}

func decodeKV(b []byte) (key, value []byte, err error) {
	key, b, err = takeBytes(b)
	if err != nil {
		return nil, nil, err
	}
	value, b, err = takeBytes(b)
	if err != nil {
		return nil, nil, err
	}
	if len(b) != 0 {
		return nil, nil, fmt.Errorf("%w: %d trailing bytes", ErrProto, len(b))
	}
	return key, value, nil
}
