package shell

import (
	"strings"
	"testing"
)

func TestShellShardedBufferProduct(t *testing.T) {
	s, out := newShell(t,
		"Linux", "BPlusTree", "BufferManager", "LRU", "ShardedBuffer",
		"Put", "Get", "Statistics")

	s.Execute(".features")
	if !strings.Contains(out.String(), "ShardedBuffer") {
		t.Errorf(".features output %q missing ShardedBuffer", out.String())
	}

	out.Reset()
	for _, line := range []string{"put k 1", "get k"} {
		s.Execute(line)
	}
	if got := out.String(); !strings.Contains(got, "ok\n1\n") {
		t.Errorf("kv transcript = %q", got)
	}

	// The striped pool reports its shard count through the stats layer.
	out.Reset()
	s.Execute(".stats")
	if got := out.String(); !strings.Contains(got, "shards") {
		t.Errorf(".stats output %q missing shard count", got)
	}
}
