package shell

import (
	"strings"
	"testing"
	"time"
)

// replFeatures is the network console product: transactional stack,
// shipping, and the TCP front end, plus Statistics so .repl status can
// show the shipping counters.
var replFeatures = []string{
	"Linux", "BPlusTree", "BufferManager", "LRU", "DynamicAlloc",
	"Put", "Get", "Update", "Remove",
	"Transaction", "GroupCommit", "Locking", "Recovery",
	"Statistics", "Replication", "Server",
}

func TestShellRepl(t *testing.T) {
	primary, pout := newShell(t, replFeatures...)
	replica, rout := newShell(t, replFeatures...)

	primary.Execute(".repl serve 127.0.0.1:0")
	got := pout.String()
	if !strings.Contains(got, "serving on 127.0.0.1:") {
		t.Fatalf(".repl serve output = %q", got)
	}
	addr := strings.TrimSpace(strings.TrimPrefix(got, "serving on "))

	pout.Reset()
	primary.Execute(".repl serve 127.0.0.1:0")
	if !strings.Contains(pout.String(), "already serving") {
		t.Errorf("second serve output = %q", pout.String())
	}

	replica.Execute(".repl from " + addr)
	if !strings.Contains(rout.String(), "replicating from "+addr) {
		t.Fatalf(".repl from output = %q", rout.String())
	}

	// Replication ships the WAL, so only transactional writes travel:
	// commit through the facade rather than the console's direct put.
	tx, err := primary.db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Put([]byte("city"), []byte("dresden")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		rout.Reset()
		replica.Execute("get city")
		if strings.Contains(rout.String(), "dresden") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica never saw the put; last get = %q", rout.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	pout.Reset()
	primary.Execute(".repl status")
	status := pout.String()
	for _, want := range []string{"serving   " + addr, "shipped", "replicas  1 connected"} {
		if !strings.Contains(status, want) {
			t.Errorf(".repl status output %q missing %q", status, want)
		}
	}

	rout.Reset()
	replica.Execute(".repl status")
	if !strings.Contains(rout.String(), "applied through offset") {
		t.Errorf("replica .repl status output = %q", rout.String())
	}

	rout.Reset()
	replica.Execute(".repl stop")
	if !strings.Contains(rout.String(), "replication stopped at offset") {
		t.Errorf(".repl stop output = %q", rout.String())
	}
	rout.Reset()
	replica.Execute(".repl stop")
	if !strings.Contains(rout.String(), "not replicating") {
		t.Errorf("second .repl stop output = %q", rout.String())
	}
}

func TestShellReplNotComposed(t *testing.T) {
	s, out := newShell(t, "Linux", "BPlusTree", "BufferManager", "LRU", "Put", "Get")

	s.Execute(".repl serve 127.0.0.1:0")
	if !strings.Contains(out.String(), "Server feature not composed") {
		t.Errorf(".repl serve output = %q", out.String())
	}
	out.Reset()
	s.Execute(".repl from 127.0.0.1:1")
	if !strings.Contains(out.String(), "Replication feature not composed") {
		t.Errorf(".repl from output = %q", out.String())
	}
	out.Reset()
	s.Execute(".repl bogus")
	if !strings.Contains(out.String(), "usage: .repl") {
		t.Errorf(".repl bogus output = %q", out.String())
	}
}
