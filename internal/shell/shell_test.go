package shell

import (
	"strings"
	"testing"

	fame "famedb"
)

func newShell(t *testing.T, features ...string) (*Shell, *strings.Builder) {
	t.Helper()
	db, err := fame.Open(fame.Options{}, features...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	var out strings.Builder
	return New(db, &out), &out
}

func TestShellKVAndStats(t *testing.T) {
	s, out := newShell(t,
		"Linux", "BPlusTree", "BufferManager", "LRU", "Put", "Get", "Remove", "Statistics")

	for _, line := range []string{"put a 1", "put b 2", "get a", "del b"} {
		if done := s.Execute(line); done {
			t.Fatalf("%q terminated the shell", line)
		}
	}
	if got := out.String(); !strings.Contains(got, "ok\nok\n1\nok\n") {
		t.Errorf("kv transcript = %q", got)
	}

	out.Reset()
	s.Execute(".features")
	if !strings.Contains(out.String(), "Statistics") {
		t.Errorf(".features output %q missing Statistics", out.String())
	}

	out.Reset()
	s.Execute(".stats")
	if !strings.Contains(out.String(), "buffer (LRU)") {
		t.Errorf(".stats output %q missing buffer section", out.String())
	}

	out.Reset()
	s.Execute(".stats prom")
	if !strings.Contains(out.String(), "famedb_buffer_hits_total") {
		t.Errorf(".stats prom output %q missing Prometheus metric", out.String())
	}

	out.Reset()
	s.Execute(".stats json")
	if !strings.Contains(out.String(), `"buffer"`) {
		t.Errorf(".stats json output %q missing buffer key", out.String())
	}

	if !s.Execute(".quit") {
		t.Error(".quit did not terminate the shell")
	}
}

func TestShellStatsNotComposed(t *testing.T) {
	s, out := newShell(t, "Linux", "BPlusTree", "Put", "Get")
	s.Execute(".stats")
	if !strings.Contains(out.String(), "not composed") {
		t.Errorf(".stats on uninstrumented product printed %q, want not-composed error", out.String())
	}
}

func TestShellSQLPassThrough(t *testing.T) {
	s, out := newShell(t,
		"Linux", "BPlusTree", "Put", "Get", "Remove", "Update", "SQLEngine", "Optimizer")
	for _, line := range []string{
		"CREATE TABLE t (id INT PRIMARY KEY, name TEXT)",
		"INSERT INTO t (id, name) VALUES (1, 'ada')",
	} {
		s.Execute(line)
	}
	out.Reset()
	s.Execute("SELECT name FROM t WHERE id = 1")
	got := out.String()
	if !strings.Contains(got, "ada") || !strings.Contains(got, "(1 rows") {
		t.Errorf("select transcript = %q", got)
	}
}

func TestShellRun(t *testing.T) {
	s, out := newShell(t, "Linux", "BPlusTree", "Put", "Get")
	in := strings.NewReader("put k v\nget k\n.quit\n")
	if err := s.Run(in); err != nil {
		t.Fatal(err)
	}
	if got := out.String(); !strings.Contains(got, "ok\nfame> v\n") {
		t.Errorf("transcript = %q", got)
	}
}

func TestShellUnknownAndUsage(t *testing.T) {
	s, out := newShell(t, "Linux", "BPlusTree", "Put", "Get")
	s.Execute(".bogus")
	if !strings.Contains(out.String(), "unknown command") {
		t.Errorf("unknown dot-command transcript = %q", out.String())
	}
	out.Reset()
	s.Execute("put onlykey")
	if !strings.Contains(out.String(), "usage: put") {
		t.Errorf("usage transcript = %q", out.String())
	}
}

func TestShellHelpGeneratedFromCommandTable(t *testing.T) {
	s, out := newShell(t, "Linux", "BPlusTree", "Put", "Get")
	s.Execute(".help")
	got := out.String()
	for _, c := range commands {
		if !strings.Contains(got, c.name) || !strings.Contains(got, c.help) {
			t.Errorf(".help missing %q (%q):\n%s", c.name, c.help, got)
		}
	}
	if !strings.Contains(got, "<sql statement>") {
		t.Errorf(".help missing SQL fallback:\n%s", got)
	}
}

func TestShellTrace(t *testing.T) {
	s, out := newShell(t,
		"Linux", "BPlusTree", "BufferManager", "LRU", "Put", "Get", "Tracing")
	s.Execute("put k v")
	s.Execute("get k")

	out.Reset()
	s.Execute(".trace dump")
	if got := out.String(); !strings.Contains(got, "access.put") || !strings.Contains(got, "access.get") {
		t.Errorf(".trace dump = %q, want span tree", got)
	}

	out.Reset()
	s.Execute(".trace dump chrome")
	if !strings.Contains(out.String(), `"traceEvents"`) {
		t.Errorf(".trace dump chrome = %q", out.String())
	}

	out.Reset()
	s.Execute(".trace slow")
	if !strings.Contains(out.String(), "slow ops") {
		t.Errorf(".trace slow = %q", out.String())
	}

	out.Reset()
	s.Execute(".trace off")
	s.Execute("put k2 v2")
	s.Execute(".trace on")
	if !strings.Contains(out.String(), "tracing off") || !strings.Contains(out.String(), "tracing on") {
		t.Errorf("toggle transcript = %q", out.String())
	}

	out.Reset()
	s.Execute(".trace")
	if !strings.Contains(out.String(), "usage: .trace") {
		t.Errorf("bare .trace = %q, want usage", out.String())
	}
}

func TestShellTraceNotComposed(t *testing.T) {
	s, out := newShell(t, "Linux", "BPlusTree", "Put", "Get")
	for _, line := range []string{".trace on", ".trace dump", ".trace slow"} {
		out.Reset()
		s.Execute(line)
		if !strings.Contains(out.String(), "not composed") {
			t.Errorf("%q on untraced product printed %q, want not-composed error", line, out.String())
		}
	}
}

func TestShellVerify(t *testing.T) {
	s, out := newShell(t,
		"Linux", "BPlusTree", "BufferManager", "LRU",
		"Put", "Get", "Checksums",
		"Transaction", "ForceCommit")
	s.Execute("put a 1")
	s.Execute(".flush")
	out.Reset()
	s.Execute(".verify")
	got := out.String()
	if !strings.Contains(got, "pages: ") || !strings.Contains(got, "log: ") {
		t.Errorf(".verify transcript %q missing scrub sections", got)
	}
	if !strings.Contains(got, "ok\n") || strings.Contains(got, "CORRUPTION") {
		t.Errorf(".verify transcript %q not clean", got)
	}
}

func TestShellVerifyNotComposed(t *testing.T) {
	s, out := newShell(t, "Linux", "ListIndex", "Put", "Get")
	s.Execute(".verify")
	if !strings.Contains(out.String(), "not composed") {
		t.Errorf(".verify on a bare product = %q", out.String())
	}
}

func TestShellMonitor(t *testing.T) {
	s, out := newShell(t,
		"Linux", "BPlusTree", "BufferManager", "LRU",
		"Put", "Get", "Statistics", "Monitor")

	for _, line := range []string{"put a 1", "put b 2", "get a", "get b"} {
		s.Execute(line)
	}
	out.Reset()
	s.Execute(".monitor")
	got := out.String()
	for _, want := range []string{"window", "health   ok", "rates", "watchdog"} {
		if !strings.Contains(got, want) {
			t.Errorf(".monitor output %q missing %q", got, want)
		}
	}

	out.Reset()
	s.Execute(".monitor events")
	if !strings.Contains(out.String(), "no operational events") {
		t.Errorf(".monitor events on a quiet product printed %q", out.String())
	}

	out.Reset()
	s.Execute(".help")
	if !strings.Contains(out.String(), ".monitor") {
		t.Errorf(".help output %q missing .monitor", out.String())
	}
}

func TestShellMonitorNotComposed(t *testing.T) {
	s, out := newShell(t, "Linux", "BPlusTree", "Put", "Get", "Statistics")
	s.Execute(".monitor")
	if !strings.Contains(out.String(), "not composed") ||
		!strings.Contains(out.String(), "Monitor") {
		t.Errorf(".monitor on a product without Monitor printed %q, want not-composed guidance",
			out.String())
	}
}

func TestShellSnapshot(t *testing.T) {
	s, out := newShell(t,
		"Linux", "BPlusTree", "BufferManager", "LRU", "DynamicAlloc",
		"Put", "Get", "Update", "Transaction", "GroupCommit", "Locking", "MVCC")

	s.Execute("put k old")
	out.Reset()
	s.Execute(".snapshot begin")
	if got := out.String(); !strings.Contains(got, "pinned") || !strings.Contains(got, "1 entries") {
		t.Fatalf(".snapshot begin output = %q", got)
	}

	// The live store moves on; the snapshot must not.
	s.Execute("update k new")
	out.Reset()
	s.Execute(".snapshot get k")
	if got := out.String(); !strings.Contains(got, "old") {
		t.Errorf("snapshot get after update = %q, want begin-time old", got)
	}
	out.Reset()
	s.Execute("get k")
	if got := out.String(); !strings.Contains(got, "new") {
		t.Errorf("live get = %q, want new", got)
	}

	out.Reset()
	s.Execute(".snapshot scan")
	if got := out.String(); !strings.Contains(got, "k = old") || !strings.Contains(got, "(1 rows)") {
		t.Errorf(".snapshot scan output = %q", got)
	}

	out.Reset()
	s.Execute(".snapshot")
	if got := out.String(); !strings.Contains(got, "open") {
		t.Errorf("bare .snapshot output = %q", got)
	}

	out.Reset()
	s.Execute(".snapshot end")
	if got := out.String(); !strings.Contains(got, "released") {
		t.Errorf(".snapshot end output = %q", got)
	}
	out.Reset()
	s.Execute(".snapshot get k")
	if got := out.String(); !strings.Contains(got, "no snapshot open") {
		t.Errorf("read after end = %q", got)
	}
}

func TestShellSnapshotNotComposed(t *testing.T) {
	s, out := newShell(t,
		"Linux", "BPlusTree", "BufferManager", "LRU", "DynamicAlloc",
		"Put", "Get", "Transaction", "ForceCommit")
	s.Execute(".snapshot begin")
	if got := out.String(); !strings.Contains(got, "MVCC feature not composed") {
		t.Errorf(".snapshot without MVCC = %q", got)
	}
}

func TestShellPrepareExec(t *testing.T) {
	s, out := newShell(t,
		"Linux", "BPlusTree", "BTreeUpdate", "BTreeRemove",
		"Put", "Get", "Remove", "Update", "SQLEngine", "Optimizer", "CompiledQueries")

	s.Execute("CREATE TABLE t (id INT PRIMARY KEY, name TEXT)")
	s.Execute("INSERT INTO t VALUES (1, 'one'), (2, 'two')")

	out.Reset()
	s.Execute(".prepare byid SELECT name FROM t WHERE id = ?")
	if !strings.Contains(out.String(), "prepared byid (1 params)") {
		t.Errorf(".prepare output = %q", out.String())
	}

	out.Reset()
	s.Execute(".exec byid 2")
	if got := out.String(); !strings.Contains(got, "two") || !strings.Contains(got, "point-lookup") {
		t.Errorf(".exec output = %q", got)
	}

	// String args: quoted and bare both reach the engine as text.
	out.Reset()
	s.Execute(".prepare ins INSERT INTO t VALUES (?, ?)")
	s.Execute(".exec ins 3 'three'")
	s.Execute(".exec byid 3")
	if !strings.Contains(out.String(), "three") {
		t.Errorf("insert-then-select transcript = %q", out.String())
	}

	// Bare .prepare lists, close retires.
	out.Reset()
	s.Execute(".prepare")
	if got := out.String(); !strings.Contains(got, "byid") || !strings.Contains(got, "ins") {
		t.Errorf(".prepare listing = %q", got)
	}
	out.Reset()
	s.Execute(".prepare close ins")
	s.Execute(".exec ins 4 'four'")
	if got := out.String(); !strings.Contains(got, "closed") || !strings.Contains(got, `no prepared statement "ins"`) {
		t.Errorf("close transcript = %q", got)
	}

	out.Reset()
	s.Execute(".exec nope 1")
	if !strings.Contains(out.String(), `no prepared statement "nope"`) {
		t.Errorf(".exec unknown = %q", out.String())
	}
}

func TestShellPrepareNotComposed(t *testing.T) {
	s, out := newShell(t,
		"Linux", "BPlusTree", "BTreeUpdate", "BTreeRemove",
		"Put", "Get", "Remove", "Update", "SQLEngine", "Optimizer")
	s.Execute(".prepare q SELECT 1")
	if !strings.Contains(out.String(), "CompiledQueries feature not composed") {
		t.Errorf(".prepare without feature = %q", out.String())
	}
}
