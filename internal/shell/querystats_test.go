package shell

import (
	"strings"
	"testing"
	"time"

	fame "famedb"
)

// observedShell builds a console over a product with QueryStats and a
// 1ns slow threshold, so every statement lands in the slow ring.
func observedShell(t *testing.T) (*Shell, *strings.Builder) {
	t.Helper()
	db, err := fame.Open(fame.Options{SlowQueryThreshold: time.Nanosecond},
		"Linux", "BPlusTree", "BTreeUpdate", "BTreeRemove",
		"Put", "Get", "Remove", "Update",
		"SQLEngine", "Optimizer", "Statistics", "QueryStats")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	var out strings.Builder
	return New(db, &out), &out
}

func TestShellExplainAndQueries(t *testing.T) {
	s, out := observedShell(t)
	s.Execute("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
	s.Execute("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
	out.Reset()

	s.Execute(".explain SELECT v FROM t WHERE id = 1")
	got := out.String()
	for _, want := range []string{"explain select on t", "access:", "source: interpreted"} {
		if !strings.Contains(got, want) {
			t.Fatalf(".explain output missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "executed:") {
		t.Fatalf("plain .explain executed the statement:\n%s", got)
	}

	out.Reset()
	s.Execute(".explain analyze SELECT v FROM t WHERE id = 1")
	if got := out.String(); !strings.Contains(got, "executed:") || !strings.Contains(got, "returned=1") {
		t.Fatalf(".explain analyze output missing counters:\n%s", got)
	}

	out.Reset()
	s.Execute(".queries")
	got = out.String()
	if !strings.Contains(got, "shape") || !strings.Contains(got, "SELECT v FROM t WHERE id = ?") {
		t.Fatalf(".queries output missing profiles:\n%s", got)
	}
	if !strings.Contains(got, "slow ring:") {
		t.Fatalf(".queries output missing slow-ring summary:\n%s", got)
	}

	out.Reset()
	s.Execute(".queries top 1")
	if got := out.String(); !strings.Contains(got, "more shapes") {
		t.Fatalf(".queries top 1 did not truncate:\n%s", got)
	}

	out.Reset()
	s.Execute(".queries slow")
	if got := out.String(); !strings.Contains(got, "SELECT") {
		t.Fatalf(".queries slow printed no entries:\n%s", got)
	}

	out.Reset()
	s.Execute(".explain")
	if got := out.String(); !strings.Contains(got, "usage: .explain") {
		t.Fatalf("bare .explain printed %q, want usage", got)
	}
}

func TestShellExplainNotComposed(t *testing.T) {
	s, out := newShell(t,
		"Linux", "BPlusTree", "BTreeUpdate", "BTreeRemove",
		"Put", "Get", "Remove", "Update", "SQLEngine", "Optimizer")
	s.Execute("CREATE TABLE t (id INT PRIMARY KEY)")
	out.Reset()
	s.Execute(".explain SELECT * FROM t")
	if got := out.String(); !strings.Contains(got, "QueryStats feature not composed") {
		t.Fatalf(".explain printed %q, want QueryStats guidance", got)
	}
	out.Reset()
	s.Execute(".queries")
	if got := out.String(); !strings.Contains(got, "not composed") {
		t.Fatalf(".queries printed %q, want not-composed guidance", got)
	}
}

func TestShellHelpListsQueryCommands(t *testing.T) {
	s, out := observedShell(t)
	s.Execute(".help")
	got := out.String()
	for _, want := range []string{".explain", ".queries", "feature QueryStats"} {
		if !strings.Contains(got, want) {
			t.Fatalf(".help missing %q:\n%s", want, got)
		}
	}
}
