// Package shell is the interactive console for a derived FAME-DBMS
// product (cmd/fame-repl): key/value commands, SQL pass-through for
// products with the SQLEngine feature, and dot-commands for
// introspection — notably .stats, which dumps the Statistics feature's
// counters and latency histograms.
//
// The console operates strictly on the public facade, so it can only do
// what the derived product composed: absent features answer with
// ErrNotComposed like any other client would see.
package shell

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	fame "famedb"
)

// Shell wraps a derived product with a line-oriented command loop.
type Shell struct {
	db  *fame.DB
	out io.Writer
}

// New creates a shell over an open product, writing output to out.
func New(db *fame.DB, out io.Writer) *Shell {
	return &Shell{db: db, out: out}
}

// Run reads commands from r until EOF or .quit.
func (s *Shell) Run(r io.Reader) error {
	sc := bufio.NewScanner(r)
	fmt.Fprint(s.out, "fame> ")
	for sc.Scan() {
		if s.Execute(sc.Text()) {
			return nil
		}
		fmt.Fprint(s.out, "fame> ")
	}
	return sc.Err()
}

// Execute runs one command line and reports whether the shell should
// exit.
func (s *Shell) Execute(line string) (done bool) {
	line = strings.TrimSpace(line)
	switch {
	case line == "":
		return false
	case strings.HasPrefix(line, "."):
		return s.dotCommand(line)
	}
	fields := strings.Fields(line)
	switch strings.ToLower(fields[0]) {
	case "put":
		if len(fields) != 3 {
			fmt.Fprintln(s.out, "usage: put <key> <value>")
			return false
		}
		s.report(s.db.Put([]byte(fields[1]), []byte(fields[2])))
	case "get":
		if len(fields) != 2 {
			fmt.Fprintln(s.out, "usage: get <key>")
			return false
		}
		v, err := s.db.Get([]byte(fields[1]))
		if err != nil {
			fmt.Fprintln(s.out, "error:", err)
			return false
		}
		fmt.Fprintln(s.out, string(v))
	case "del":
		if len(fields) != 2 {
			fmt.Fprintln(s.out, "usage: del <key>")
			return false
		}
		s.report(s.db.Remove([]byte(fields[1])))
	case "update":
		if len(fields) != 3 {
			fmt.Fprintln(s.out, "usage: update <key> <value>")
			return false
		}
		s.report(s.db.Update([]byte(fields[1]), []byte(fields[2])))
	case "scan":
		var from, to []byte
		if len(fields) > 1 {
			from = []byte(fields[1])
		}
		if len(fields) > 2 {
			to = []byte(fields[2])
		}
		n := 0
		err := s.db.Scan(from, to, func(k, v []byte) bool {
			fmt.Fprintf(s.out, "%s = %s\n", k, v)
			n++
			return true
		})
		if err != nil {
			fmt.Fprintln(s.out, "error:", err)
			return false
		}
		fmt.Fprintf(s.out, "(%d rows)\n", n)
	default:
		// Anything else is handed to the SQL engine.
		res, err := s.db.Exec(line)
		if err != nil {
			fmt.Fprintln(s.out, "error:", err)
			return false
		}
		s.printResult(res)
	}
	return false
}

// dotCommand handles the introspection commands.
func (s *Shell) dotCommand(line string) (done bool) {
	fields := strings.Fields(line)
	switch fields[0] {
	case ".quit", ".exit":
		return true
	case ".help":
		fmt.Fprint(s.out, `commands:
  put <key> <value>     store a value (feature Put)
  get <key>             read a value (feature Get)
  del <key>             delete a key (feature Remove)
  update <key> <value>  replace an existing value (feature Update)
  scan [from [to]]      list entries (feature Get)
  <sql statement>       execute SQL (feature SQLEngine)
  .features             show the product's selected features
  .stats [prom|json]    dump runtime metrics (feature Statistics)
  .flush                force all state durable (drains pending group commits)
  .help                 this text
  .quit                 exit
`)
	case ".flush":
		// Under GroupCommit a singleton commit may sit in the deferred
		// durability window; .flush quiesces the pipeline and syncs.
		if err := s.db.Sync(); err != nil {
			fmt.Fprintln(s.out, "error:", err)
			return false
		}
		fmt.Fprintln(s.out, "flushed")
	case ".features":
		feats := s.db.Features()
		sort.Strings(feats)
		fmt.Fprintln(s.out, strings.Join(feats, " "))
	case ".stats":
		snap, err := s.db.Stats()
		if err != nil {
			fmt.Fprintln(s.out, "error:", err)
			return false
		}
		format := ""
		if len(fields) > 1 {
			format = fields[1]
		}
		switch format {
		case "prom":
			if err := snap.WritePrometheus(s.out); err != nil {
				fmt.Fprintln(s.out, "error:", err)
			}
		case "json":
			if err := snap.WriteJSON(s.out); err != nil {
				fmt.Fprintln(s.out, "error:", err)
			}
		default:
			fmt.Fprint(s.out, snap.Format())
		}
	default:
		fmt.Fprintf(s.out, "unknown command %s (try .help)\n", fields[0])
	}
	return false
}

func (s *Shell) report(err error) {
	if err != nil {
		fmt.Fprintln(s.out, "error:", err)
		return
	}
	fmt.Fprintln(s.out, "ok")
}

func (s *Shell) printResult(res *fame.Result) {
	if len(res.Columns) > 0 {
		fmt.Fprintln(s.out, strings.Join(res.Columns, " | "))
		for _, row := range res.Rows {
			cells := make([]string, len(row))
			for i, v := range row {
				cells[i] = v.String()
			}
			fmt.Fprintln(s.out, strings.Join(cells, " | "))
		}
		fmt.Fprintf(s.out, "(%d rows, %s)\n", len(res.Rows), res.Plan)
		return
	}
	fmt.Fprintf(s.out, "ok (%d affected)\n", res.Affected)
}
