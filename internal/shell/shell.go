// Package shell is the interactive console for a derived FAME-DBMS
// product (cmd/fame-repl): key/value commands, SQL pass-through for
// products with the SQLEngine feature, and dot-commands for
// introspection — .stats dumps the Statistics feature's counters and
// latency histograms, .trace the Tracing feature's span ring and
// slow-op log, .monitor the Monitor feature's windowed rates and
// watchdog events, .prepare/.exec drive the CompiledQueries feature's
// prepared statements.
//
// The console operates strictly on the public facade, so it can only do
// what the derived product composed: absent features answer with
// ErrNotComposed like any other client would see.
package shell

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	fame "famedb"
)

// Shell wraps a derived product with a line-oriented command loop.
type Shell struct {
	db  *fame.DB
	out io.Writer
	// snap is the console's open snapshot transaction (feature MVCC):
	// .snapshot begin pins the newest committed version, reads via
	// .snapshot get/scan keep seeing exactly that state no matter what
	// the put/del commands change, and .snapshot end releases the pin.
	snap *fame.Tx
	// stmts holds the console's named prepared statements (feature
	// CompiledQueries): .prepare compiles once, .exec binds and runs.
	stmts map[string]*fame.Stmt
	// server and replica are the console's network roles (features
	// Server, Replication): .repl serve exposes this product on the wire
	// protocol, .repl from streams another primary's WAL into it.
	server  *fame.Server
	replica *fame.Replica
}

// New creates a shell over an open product, writing output to out.
func New(db *fame.DB, out io.Writer) *Shell {
	return &Shell{db: db, out: out}
}

// command is one console command: the .help text is generated from
// this table, so usage strings and the command list cannot drift apart.
type command struct {
	name string // leading "." marks a dot-command
	args string
	help string
	run  func(s *Shell, fields []string) (done bool)
}

// commands is the single source of truth for the console, in .help
// order. The SQL fallback (any line that is not a command) is appended
// to the help text separately since it has no name to dispatch on.
// Populated in init: .help walks the table, which Go's initializer
// cycle check cannot see through for a composite literal.
var commands []command

func init() {
	commands = []command{
		{"put", "<key> <value>", "store a value (feature Put)", (*Shell).cmdPut},
		{"get", "<key>", "read a value (feature Get)", (*Shell).cmdGet},
		{"del", "<key>", "delete a key (feature Remove)", (*Shell).cmdDel},
		{"update", "<key> <value>", "replace an existing value (feature Update)", (*Shell).cmdUpdate},
		{"scan", "[from [to]]", "list entries (feature Get)", (*Shell).cmdScan},
		{".features", "", "show the product's selected features", (*Shell).cmdFeatures},
		{".stats", "[prom|json]", "dump runtime metrics (feature Statistics)", (*Shell).cmdStats},
		{".trace", "on|off|dump|slow", "control span recording (feature Tracing)", (*Shell).cmdTrace},
		{".monitor", "[events [n]]", "show windowed rates and watchdog state (feature Monitor)", (*Shell).cmdMonitor},
		{".snapshot", "[begin|get <key>|scan [from [to]]|end]", "read a pinned committed version (feature MVCC)", (*Shell).cmdSnapshot},
		{".prepare", "[<name> <sql with ?>|close <name>]", "compile a named statement (feature CompiledQueries)", (*Shell).cmdPrepare},
		{".exec", "<name> [arg...]", "run a prepared statement with bound args", (*Shell).cmdExec},
		{".explain", "[analyze] <sql>", "show a statement's plan tree (feature QueryStats)", (*Shell).cmdExplain},
		{".queries", "[top <n>|slow]", "per-shape statement profiles and the slow-query log (feature QueryStats)", (*Shell).cmdQueries},
		{".repl", "serve <addr>|from <addr>|status|stop", "network serving and WAL-shipping replication (features Server, Replication)", (*Shell).cmdRepl},
		{".flush", "", "force all state durable (drains pending group commits)", (*Shell).cmdFlush},
		{".verify", "", "scrub pages and journal (features Checksums, Transaction)", (*Shell).cmdVerify},
		{".help", "", "this text", (*Shell).cmdHelp},
		{".quit", "", "exit", (*Shell).cmdQuit},
	}
}

// Run reads commands from r until EOF or .quit.
func (s *Shell) Run(r io.Reader) error {
	sc := bufio.NewScanner(r)
	fmt.Fprint(s.out, "fame> ")
	for sc.Scan() {
		if s.Execute(sc.Text()) {
			return nil
		}
		fmt.Fprint(s.out, "fame> ")
	}
	return sc.Err()
}

// Execute runs one command line and reports whether the shell should
// exit.
func (s *Shell) Execute(line string) (done bool) {
	line = strings.TrimSpace(line)
	if line == "" {
		return false
	}
	fields := strings.Fields(line)
	name := fields[0]
	if !strings.HasPrefix(name, ".") {
		name = strings.ToLower(name)
	}
	if name == ".exit" { // undocumented alias
		name = ".quit"
	}
	for i := range commands {
		if commands[i].name == name {
			return commands[i].run(s, fields)
		}
	}
	if strings.HasPrefix(name, ".") {
		fmt.Fprintf(s.out, "unknown command %s (try .help)\n", name)
		return false
	}
	// Anything else is handed to the SQL engine.
	res, err := s.db.Exec(line)
	if err != nil {
		fmt.Fprintln(s.out, "error:", err)
		return false
	}
	s.printResult(res)
	return false
}

func (s *Shell) cmdHelp(fields []string) bool {
	fmt.Fprintln(s.out, "commands:")
	width := len("<sql statement>")
	for _, c := range commands {
		if n := len(c.name) + 1 + len(c.args); n > width {
			width = n
		}
	}
	for _, c := range commands {
		sig := c.name
		if c.args != "" {
			sig += " " + c.args
		}
		fmt.Fprintf(s.out, "  %-*s  %s\n", width, sig, c.help)
	}
	fmt.Fprintf(s.out, "  %-*s  %s\n", width, "<sql statement>", "execute SQL (feature SQLEngine)")
	return false
}

func (s *Shell) cmdQuit([]string) bool {
	if s.snap != nil {
		s.snap.Abort()
		s.snap = nil
	}
	for name, st := range s.stmts {
		st.Close()
		delete(s.stmts, name)
	}
	return true
}

// cmdPrepare compiles one SQL statement (with optional `?`
// placeholders) under a console-local name. Bare ".prepare" lists the
// open statements; "close <name>" retires one.
func (s *Shell) cmdPrepare(fields []string) bool {
	switch {
	case len(fields) == 1:
		if len(s.stmts) == 0 {
			fmt.Fprintln(s.out, "no prepared statements (try .prepare <name> <sql>)")
			return false
		}
		names := make([]string, 0, len(s.stmts))
		for name := range s.stmts {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(s.out, "%s (%d params)\n", name, s.stmts[name].NumParams())
		}
	case fields[1] == "close":
		if len(fields) != 3 {
			fmt.Fprintln(s.out, "usage: .prepare close <name>")
			return false
		}
		st, ok := s.stmts[fields[2]]
		if !ok {
			fmt.Fprintf(s.out, "no prepared statement %q\n", fields[2])
			return false
		}
		st.Close()
		delete(s.stmts, fields[2])
		fmt.Fprintln(s.out, "closed")
	case len(fields) >= 3:
		name := fields[1]
		st, err := s.db.Prepare(strings.Join(fields[2:], " "))
		if err != nil {
			s.featureErr("CompiledQueries", ".prepare", err)
			return false
		}
		if old, ok := s.stmts[name]; ok {
			old.Close()
		}
		if s.stmts == nil {
			s.stmts = make(map[string]*fame.Stmt)
		}
		s.stmts[name] = st
		fmt.Fprintf(s.out, "prepared %s (%d params)\n", name, st.NumParams())
	default:
		fmt.Fprintln(s.out, "usage: .prepare [<name> <sql with ?>|close <name>]")
	}
	return false
}

// cmdExec binds positional arguments to a statement prepared with
// .prepare and runs its compiled plan — no parsing, no planning.
// Arguments parse as int, then float, then true/false, else text;
// quote with '...' to force text.
func (s *Shell) cmdExec(fields []string) bool {
	if len(fields) < 2 {
		fmt.Fprintln(s.out, "usage: .exec <name> [arg...]")
		return false
	}
	st, ok := s.stmts[fields[1]]
	if !ok {
		fmt.Fprintf(s.out, "no prepared statement %q (try .prepare)\n", fields[1])
		return false
	}
	args := make([]fame.Value, len(fields)-2)
	for i, f := range fields[2:] {
		args[i] = parseArg(f)
	}
	res, err := st.Exec(args...)
	if err != nil {
		fmt.Fprintln(s.out, "error:", err)
		return false
	}
	s.printResult(res)
	return false
}

// parseArg converts one console token into a typed SQL value.
func parseArg(tok string) fame.Value {
	if strings.HasPrefix(tok, "'") && strings.HasSuffix(tok, "'") && len(tok) >= 2 {
		return fame.StringValue(tok[1 : len(tok)-1])
	}
	if n, err := strconv.ParseInt(tok, 10, 64); err == nil {
		return fame.IntValue(n)
	}
	if f, err := strconv.ParseFloat(tok, 64); err == nil {
		return fame.FloatValue(f)
	}
	if b, err := strconv.ParseBool(tok); err == nil {
		return fame.BoolValue(b)
	}
	return fame.StringValue(tok)
}

func (s *Shell) cmdPut(fields []string) bool {
	if len(fields) != 3 {
		fmt.Fprintln(s.out, "usage: put <key> <value>")
		return false
	}
	s.report(s.db.Put([]byte(fields[1]), []byte(fields[2])))
	return false
}

func (s *Shell) cmdGet(fields []string) bool {
	if len(fields) != 2 {
		fmt.Fprintln(s.out, "usage: get <key>")
		return false
	}
	v, err := s.db.Get([]byte(fields[1]))
	if err != nil {
		fmt.Fprintln(s.out, "error:", err)
		return false
	}
	fmt.Fprintln(s.out, string(v))
	return false
}

func (s *Shell) cmdDel(fields []string) bool {
	if len(fields) != 2 {
		fmt.Fprintln(s.out, "usage: del <key>")
		return false
	}
	s.report(s.db.Remove([]byte(fields[1])))
	return false
}

func (s *Shell) cmdUpdate(fields []string) bool {
	if len(fields) != 3 {
		fmt.Fprintln(s.out, "usage: update <key> <value>")
		return false
	}
	s.report(s.db.Update([]byte(fields[1]), []byte(fields[2])))
	return false
}

func (s *Shell) cmdScan(fields []string) bool {
	var from, to []byte
	if len(fields) > 1 {
		from = []byte(fields[1])
	}
	if len(fields) > 2 {
		to = []byte(fields[2])
	}
	n := 0
	err := s.db.Scan(from, to, func(k, v []byte) bool {
		fmt.Fprintf(s.out, "%s = %s\n", k, v)
		n++
		return true
	})
	if err != nil {
		fmt.Fprintln(s.out, "error:", err)
		return false
	}
	fmt.Fprintf(s.out, "(%d rows)\n", n)
	return false
}

// cmdSnapshot drives the MVCC feature's snapshot API from the console.
// "begin" pins the newest committed version; "get" and "scan" then read
// against that pin — lock-free and isolated from every later commit —
// until "end" releases it. Bare ".snapshot" reports the open pin.
func (s *Shell) cmdSnapshot(fields []string) bool {
	sub := ""
	if len(fields) > 1 {
		sub = fields[1]
	}
	switch sub {
	case "begin":
		if s.snap != nil {
			s.snap.Abort()
			s.snap = nil
		}
		tx, err := s.db.BeginSnapshot()
		if err != nil {
			s.featureErr("MVCC", ".snapshot", err)
			return false
		}
		s.snap = tx
		s.printSnapStatus("pinned")
	case "get":
		if len(fields) != 3 {
			fmt.Fprintln(s.out, "usage: .snapshot get <key>")
			return false
		}
		if s.snap == nil {
			fmt.Fprintln(s.out, "no snapshot open (try .snapshot begin)")
			return false
		}
		v, err := s.snap.Get([]byte(fields[2]))
		if err != nil {
			fmt.Fprintln(s.out, "error:", err)
			return false
		}
		fmt.Fprintln(s.out, string(v))
	case "scan":
		if s.snap == nil {
			fmt.Fprintln(s.out, "no snapshot open (try .snapshot begin)")
			return false
		}
		var from, to []byte
		if len(fields) > 2 {
			from = []byte(fields[2])
		}
		if len(fields) > 3 {
			to = []byte(fields[3])
		}
		n := 0
		err := s.snap.Scan(from, to, func(k, v []byte) bool {
			fmt.Fprintf(s.out, "%s = %s\n", k, v)
			n++
			return true
		})
		if err != nil {
			fmt.Fprintln(s.out, "error:", err)
			return false
		}
		fmt.Fprintf(s.out, "(%d rows)\n", n)
	case "end":
		if s.snap == nil {
			fmt.Fprintln(s.out, "no snapshot open")
			return false
		}
		seq, _ := s.snap.SnapshotSeq()
		s.snap.Abort()
		s.snap = nil
		fmt.Fprintf(s.out, "snapshot v%d released\n", seq)
	case "":
		if s.snap == nil {
			fmt.Fprintln(s.out, "no snapshot open (try .snapshot begin)")
			return false
		}
		s.printSnapStatus("open")
	default:
		fmt.Fprintln(s.out, "usage: .snapshot [begin|get <key>|scan [from [to]]|end]")
	}
	return false
}

// printSnapStatus prints the open snapshot's version and entry count.
func (s *Shell) printSnapStatus(verb string) {
	seq, _ := s.snap.SnapshotSeq()
	if n, err := s.snap.Len(); err == nil {
		fmt.Fprintf(s.out, "snapshot v%d %s (%d entries)\n", seq, verb, n)
	} else {
		fmt.Fprintf(s.out, "snapshot v%d %s\n", seq, verb)
	}
}

func (s *Shell) cmdFlush(fields []string) bool {
	// Under GroupCommit a singleton commit may sit in the deferred
	// durability window; .flush quiesces the pipeline and syncs.
	if err := s.db.Sync(); err != nil {
		fmt.Fprintln(s.out, "error:", err)
		return false
	}
	fmt.Fprintln(s.out, "flushed")
	return false
}

func (s *Shell) cmdVerify(fields []string) bool {
	rep, err := s.db.Verify()
	if err != nil {
		if errors.Is(err, fame.ErrNotComposed) {
			s.featureErr("Checksums or Transaction", ".verify", err)
		} else {
			fmt.Fprintln(s.out, "error:", err)
		}
		return false
	}
	fmt.Fprintln(s.out, rep.String())
	if s.db.Degraded() {
		fmt.Fprintln(s.out, "warning: engine is degraded (read-only)")
	}
	if rep.Ok() {
		fmt.Fprintln(s.out, "ok")
	} else {
		fmt.Fprintln(s.out, "CORRUPTION FOUND")
	}
	return false
}

func (s *Shell) cmdFeatures(fields []string) bool {
	feats := s.db.Features()
	sort.Strings(feats)
	fmt.Fprintln(s.out, strings.Join(feats, " "))
	return false
}

func (s *Shell) cmdStats(fields []string) bool {
	snap, err := s.db.Stats()
	if err != nil {
		s.featureErr("Statistics", ".stats", err)
		return false
	}
	format := ""
	if len(fields) > 1 {
		format = fields[1]
	}
	switch format {
	case "prom":
		if err := snap.WritePrometheus(s.out); err != nil {
			fmt.Fprintln(s.out, "error:", err)
		}
	case "json":
		if err := snap.WriteJSON(s.out); err != nil {
			fmt.Fprintln(s.out, "error:", err)
		}
	default:
		fmt.Fprint(s.out, snap.Format())
	}
	return false
}

func (s *Shell) cmdTrace(fields []string) bool {
	sub := ""
	if len(fields) > 1 {
		sub = fields[1]
	}
	switch sub {
	case "on", "off":
		if err := s.db.SetTracing(sub == "on"); err != nil {
			s.featureErr("Tracing", ".trace", err)
			return false
		}
		fmt.Fprintln(s.out, "tracing", sub)
	case "dump", "slow":
		snap, err := s.db.Trace()
		if err != nil {
			s.featureErr("Tracing", ".trace", err)
			return false
		}
		var werr error
		switch {
		case sub == "slow":
			werr = snap.WriteSlow(s.out)
		case len(fields) > 2 && fields[2] == "chrome":
			werr = snap.WriteChrome(s.out)
		case len(fields) > 2 && fields[2] == "json":
			werr = snap.WriteJSON(s.out)
		default:
			werr = snap.WriteText(s.out)
		}
		if werr != nil {
			fmt.Fprintln(s.out, "error:", werr)
		}
	default:
		fmt.Fprintln(s.out, "usage: .trace on|off|dump [chrome|json]|slow")
	}
	return false
}

// cmdExplain prepends EXPLAIN to the rest of the line and runs it, so
// ".explain SELECT ..." shows the plan tree without executing and
// ".explain analyze SELECT ..." executes and appends true counters.
func (s *Shell) cmdExplain(fields []string) bool {
	if len(fields) < 2 {
		fmt.Fprintln(s.out, "usage: .explain [analyze] <sql statement>")
		return false
	}
	res, err := s.db.Exec("EXPLAIN " + strings.Join(fields[1:], " "))
	if err != nil {
		s.featureErr("QueryStats", ".explain", err)
		return false
	}
	for _, row := range res.Rows {
		for _, v := range row {
			fmt.Fprintln(s.out, v.String())
		}
	}
	return false
}

// cmdQueries prints the QueryStats feature's per-shape statement
// profiles, hottest (by cumulative time) first. ".queries top <n>"
// bounds the listing, ".queries slow" prints the slow-query ring
// without draining it.
func (s *Shell) cmdQueries(fields []string) bool {
	snap, err := s.db.Stats()
	if err != nil {
		s.featureErr("Statistics", ".queries", err)
		return false
	}
	q := snap.Queries
	if q == nil {
		s.featureErr("QueryStats", ".queries", fmt.Errorf("query profiles: %w", fame.ErrNotComposed))
		return false
	}
	if len(fields) > 1 && fields[1] == "slow" {
		if q.SlowDropped > 0 {
			fmt.Fprintf(s.out, "(%d older slow queries dropped)\n", q.SlowDropped)
		}
		if len(q.Slow) == 0 {
			fmt.Fprintf(s.out, "no statements over %s\n", fmtNs(float64(q.SlowThresholdNs)))
			return false
		}
		for _, e := range q.Slow {
			line := fmt.Sprintf("%-9s %s  scanned=%d returned=%d", fmtNs(float64(e.DurNs)), e.Shape, e.RowsScanned, e.RowsReturned)
			if e.TraceRoot != 0 {
				line += fmt.Sprintf("  trace=%d", e.TraceRoot)
			}
			if e.Err != "" {
				line += "  error=" + e.Err
			}
			fmt.Fprintln(s.out, line)
		}
		return false
	}
	n := len(q.Shapes)
	if len(fields) > 2 && fields[1] == "top" {
		if v, err := strconv.Atoi(fields[2]); err == nil && v < n {
			n = v
		}
	}
	if n == 0 {
		fmt.Fprintln(s.out, "no statements profiled yet")
		return false
	}
	fmt.Fprintf(s.out, "%-7s %-9s %-9s %-8s %-8s %-5s %s\n",
		"count", "total", "p99", "scanned", "returned", "hits", "shape")
	for _, sh := range q.Shapes[:n] {
		fmt.Fprintf(s.out, "%-7d %-9s %-9s %-8d %-8d %-5d %s\n",
			sh.Count, fmtNs(float64(sh.TotalNs)), fmtNs(sh.Latency.P99()),
			sh.RowsScanned, sh.RowsReturned, sh.PlanHits, sh.Shape)
		if sh.LastError != "" {
			fmt.Fprintf(s.out, "        last error: %s\n", sh.LastError)
		}
	}
	if dropped := len(q.Shapes) - n; dropped > 0 {
		fmt.Fprintf(s.out, "(%d more shapes; .queries top %d to widen)\n", dropped, len(q.Shapes))
	}
	fmt.Fprintf(s.out, "slow ring: %d retained over %s (.queries slow)\n",
		len(q.Slow), fmtNs(float64(q.SlowThresholdNs)))
	return false
}

// cmdMonitor prints the Monitor feature's live picture: one windowed
// reading (rates, hit rate, latency quantiles), the currently-firing
// watchdog rules, and the tail of the operational event log.
// ".monitor events [n]" lists just the last n events (default 10).
func (s *Shell) cmdMonitor(fields []string) bool {
	w, err := s.db.MonitorWindow()
	if err != nil {
		s.featureErr("Monitor", ".monitor", err)
		return false
	}
	events, dropped, err := s.db.MonitorEvents()
	if err != nil {
		s.featureErr("Monitor", ".monitor", err)
		return false
	}

	if len(fields) > 1 && fields[1] == "events" {
		n := 10
		if len(fields) > 2 {
			fmt.Sscanf(fields[2], "%d", &n)
		}
		if len(events) > n {
			events = events[len(events)-n:]
		}
		if dropped > 0 {
			fmt.Fprintf(s.out, "(%d older events dropped)\n", dropped)
		}
		if len(events) == 0 {
			fmt.Fprintln(s.out, "no operational events")
		}
		for _, e := range events {
			fmt.Fprintln(s.out, e)
		}
		return false
	}

	fmt.Fprintf(s.out, "window   %.1fs over %d samples\n", w.Seconds, w.Samples)
	health := "ok"
	if w.Degraded {
		health = "DEGRADED: " + w.DegradedReason
	}
	fmt.Fprintf(s.out, "health   %s\n", health)
	fmt.Fprintf(s.out, "rates    get %.1f/s  put %.1f/s  commit %.1f/s  stmt %.1f/s\n",
		w.GetsPerSec, w.PutsPerSec, w.CommitsPerSec, w.StmtsPerSec)
	if w.HitRate >= 0 {
		fmt.Fprintf(s.out, "cache    hit rate %.3f\n", w.HitRate)
	} else {
		fmt.Fprintln(s.out, "cache    no traffic in window")
	}
	fmt.Fprintf(s.out, "latency  get p50/p99 %s/%s  put p50/p99 %s/%s\n",
		fmtNs(w.GetP50Ns), fmtNs(w.GetP99Ns), fmtNs(w.PutP50Ns), fmtNs(w.PutP99Ns))
	if w.CommitsPerSec > 0 || w.CommitP99Ns > 0 {
		fmt.Fprintf(s.out, "commit   p99 %s  stall p50/p99 %s/%s  wal growth %d bytes\n",
			fmtNs(w.CommitP99Ns), fmtNs(w.StallP50Ns), fmtNs(w.StallP99Ns), w.WALGrowthBytes)
	}
	alerts := 0
	for _, e := range events {
		if e.Alert() {
			alerts++
		}
	}
	fmt.Fprintf(s.out, "watchdog %d events retained (%d alerts, %d dropped)\n",
		len(events)+int(dropped), alerts, dropped)
	if n := len(events); n > 0 {
		fmt.Fprintln(s.out, "last:   ", events[n-1])
	}
	return false
}

// cmdRepl drives the product's network roles. ".repl serve <addr>"
// starts the wire-protocol server (feature Server), ".repl from
// <addr>" streams the primary at addr into this product (feature
// Replication), ".repl status" shows both roles plus the shipping
// counters, ".repl stop" detaches the replica stream.
func (s *Shell) cmdRepl(fields []string) bool {
	sub := "status"
	if len(fields) > 1 {
		sub = fields[1]
	}
	switch sub {
	case "serve":
		if len(fields) < 3 {
			fmt.Fprintln(s.out, "usage: .repl serve <addr>")
			return false
		}
		if s.server != nil {
			fmt.Fprintf(s.out, "already serving on %s\n", s.server.Addr())
			return false
		}
		srv, err := s.db.Serve(fields[2])
		if err != nil {
			s.featureErr("Server", ".repl serve", err)
			return false
		}
		s.server = srv
		fmt.Fprintf(s.out, "serving on %s\n", srv.Addr())
	case "from":
		if len(fields) < 3 {
			fmt.Fprintln(s.out, "usage: .repl from <addr>")
			return false
		}
		if s.replica != nil {
			fmt.Fprintln(s.out, "already replicating (.repl stop first)")
			return false
		}
		rep, err := s.db.ReplicateFrom(fields[2])
		if err != nil {
			s.featureErr("Replication", ".repl from", err)
			return false
		}
		s.replica = rep
		fmt.Fprintf(s.out, "replicating from %s\n", fields[2])
	case "stop":
		if s.replica == nil {
			fmt.Fprintln(s.out, "not replicating")
			return false
		}
		s.replica.Stop()
		fmt.Fprintf(s.out, "replication stopped at offset %d\n", s.replica.Offset())
		s.replica = nil
	case "status":
		if s.server != nil {
			fmt.Fprintf(s.out, "serving   %s\n", s.server.Addr())
		} else {
			fmt.Fprintln(s.out, "serving   no (.repl serve <addr>)")
		}
		if s.replica != nil {
			fmt.Fprintf(s.out, "replica   applied through offset %d\n", s.replica.Offset())
		} else {
			fmt.Fprintln(s.out, "replica   no (.repl from <addr>)")
		}
		snap, err := s.db.Stats()
		if err != nil {
			// Shipping counters need the Statistics feature; the roles
			// above still work without it.
			return false
		}
		r := snap.Repl
		fmt.Fprintf(s.out, "shipped   %d chunks / %d bytes  acks %d\n",
			r.ShippedChunks, r.ShippedBytes, r.Acks)
		fmt.Fprintf(s.out, "resync    catch-ups %d  snapshots %d  drops %d  stale marks %d\n",
			r.CatchUps, r.Snapshots, r.Drops, r.StaleMarks)
		fmt.Fprintf(s.out, "replicas  %d connected, max lag %d bytes\n",
			r.Connected, r.MaxLagBytes)
	default:
		fmt.Fprintln(s.out, "usage: .repl serve <addr>|from <addr>|status|stop")
	}
	return false
}

// fmtNs renders a nanosecond quantity with time.Duration's formatting,
// "-" when the window saw no observations.
func fmtNs(ns float64) string {
	if ns <= 0 {
		return "-"
	}
	return time.Duration(int64(ns)).String()
}

// featureErr prints a one-line explanation when an introspection
// command's backing feature is absent from the derived product.
func (s *Shell) featureErr(feature, cmd string, err error) {
	if errors.Is(err, fame.ErrNotComposed) {
		fmt.Fprintf(s.out, "%s feature not composed into this product: derive it with %q to use %s\n",
			feature, feature, cmd)
		return
	}
	fmt.Fprintln(s.out, "error:", err)
}

func (s *Shell) report(err error) {
	if err != nil {
		fmt.Fprintln(s.out, "error:", err)
		return
	}
	fmt.Fprintln(s.out, "ok")
}

func (s *Shell) printResult(res *fame.Result) {
	if len(res.Columns) > 0 {
		fmt.Fprintln(s.out, strings.Join(res.Columns, " | "))
		for _, row := range res.Rows {
			cells := make([]string, len(row))
			for i, v := range row {
				cells[i] = v.String()
			}
			fmt.Fprintln(s.out, strings.Join(cells, " | "))
		}
		fmt.Fprintf(s.out, "(%d rows, %s)\n", len(res.Rows), res.Plan)
		return
	}
	fmt.Fprintf(s.out, "ok (%d affected)\n", res.Affected)
}
