package osal

// FlakyConn: the network sibling of FaultFS. Where the storage fault
// devices model a dying flash chip, FlakyConn models the wire between a
// primary and its replicas — connections that drop mid-stream, freeze
// into a partition, deliver late, or truncate a frame halfway and then
// die. Every decision derives from the seeded plan, never from time or
// scheduling, so a replication test that failed replays exactly.
//
// The wrapper counts reads and writes per connection (1-based, like
// Schedule's per-class op indexes) and fires the first matching rule:
//
//	NetDrop      the operation fails with ErrConnDropped and the
//	             underlying connection closes — a peer reset.
//	NetTruncate  a Write delivers only a seeded prefix of the buffer,
//	             then the connection closes — the classic
//	             truncate-mid-frame kill that leaves the receiver with
//	             half a length-prefixed frame.
//	NetPartition the operation (and the next Heal-1 of its class)
//	             fails with a timeout error without closing the
//	             connection — a silent partition the dialer's backoff
//	             has to ride out.
//	NetDelay     the operation succeeds after a short seeded delay —
//	             a congested or distant link.

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// ErrConnDropped is the injected error of NetDrop and NetTruncate
// rules.
var ErrConnDropped = errors.New("osal: connection dropped (injected)")

// NetFaultKind is what a network rule does when it fires.
type NetFaultKind int

const (
	// NetDrop closes the connection with ErrConnDropped.
	NetDrop NetFaultKind = iota
	// NetTruncate writes a seeded prefix of the buffer, then closes.
	NetTruncate
	// NetPartition fails the op with a timeout error; Heal bounds how
	// many consecutive ops of the class stay partitioned.
	NetPartition
	// NetDelay sleeps a seeded duration (≤ MaxDelay) before the op.
	NetDelay
)

// String returns the fault-kind name.
func (k NetFaultKind) String() string {
	switch k {
	case NetDrop:
		return "drop"
	case NetTruncate:
		return "truncate"
	case NetPartition:
		return "partition"
	case NetDelay:
		return "delay"
	default:
		return fmt.Sprintf("netfault(%d)", int(k))
	}
}

// NetOpClass classifies connection operations for fault planning.
type NetOpClass int

// The op classes a network plan can target.
const (
	NetRead NetOpClass = iota
	NetWrite
)

// NetRule is one planned network fault: the At-th operation of Class on
// this connection (1-based) suffers Kind.
type NetRule struct {
	Class NetOpClass
	// At is the 1-based index among operations of Class.
	At   int64
	Kind NetFaultKind
	// Heal bounds a NetPartition: the timeout repeats for Heal
	// consecutive operations of the class, then the link heals. Zero
	// partitions a single operation.
	Heal int64
}

// netTimeoutError satisfies net.Error with Timeout() true, so callers
// treat a partition like any deadline expiry.
type netTimeoutError struct{}

func (netTimeoutError) Error() string   { return "osal: partitioned (injected timeout)" }
func (netTimeoutError) Timeout() bool   { return true }
func (netTimeoutError) Temporary() bool { return true }

// ErrPartitioned is the injected timeout of NetPartition rules.
var ErrPartitioned net.Error = netTimeoutError{}

// FlakyConn wraps a net.Conn with a deterministic seeded fault plan.
// It is safe for one concurrent reader plus one concurrent writer (the
// usual net.Conn contract).
type FlakyConn struct {
	net.Conn

	mu     sync.Mutex
	rng    *rand.Rand
	rules  []NetRule
	counts [2]int64 // per-class op counters
	// healAt[class] > 0 partitions ops of the class until the counter
	// passes it.
	healAt [2]int64
	closed bool
	// injected records every fired rule for test assertions.
	injected []NetRule
	// MaxDelay bounds NetDelay sleeps (default 2ms — enough to reorder
	// goroutines, short enough for tests).
	MaxDelay time.Duration
}

// NewFlakyConn wraps conn with the seeded plan. Rules fire on their
// 1-based per-class op index; a connection with no matching rules
// behaves exactly like conn.
func NewFlakyConn(conn net.Conn, seed int64, rules ...NetRule) *FlakyConn {
	return &FlakyConn{
		Conn:     conn,
		rng:      rand.New(rand.NewSource(seed)),
		rules:    rules,
		MaxDelay: 2 * time.Millisecond,
	}
}

// Injected returns the rules that have fired so far, in firing order.
func (c *FlakyConn) Injected() []NetRule {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]NetRule(nil), c.injected...)
}

// decide advances the class counter and returns the firing rule, the
// seeded truncation prefix (NetTruncate) and delay (NetDelay).
func (c *FlakyConn) decide(class NetOpClass, bufLen int) (rule *NetRule, prefix int, delay time.Duration, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, 0, 0, ErrConnDropped
	}
	c.counts[class]++
	at := c.counts[class]
	if h := c.healAt[class]; h > 0 {
		if at <= h {
			return nil, 0, 0, ErrPartitioned
		}
		c.healAt[class] = 0
	}
	for i := range c.rules {
		r := &c.rules[i]
		if r.Class != class || r.At != at {
			continue
		}
		c.injected = append(c.injected, *r)
		switch r.Kind {
		case NetDrop:
			c.closed = true
			return r, 0, 0, ErrConnDropped
		case NetTruncate:
			c.closed = true
			if bufLen > 1 {
				prefix = 1 + c.rng.Intn(bufLen-1)
			}
			return r, prefix, 0, nil
		case NetPartition:
			heal := r.Heal
			if heal < 1 {
				heal = 1
			}
			c.healAt[class] = at + heal - 1
			return r, 0, 0, ErrPartitioned
		case NetDelay:
			d := c.MaxDelay
			if d > 0 {
				d = time.Duration(c.rng.Int63n(int64(d))) + 1
			}
			return r, 0, d, nil
		}
	}
	return nil, 0, 0, nil
}

// Read implements net.Conn with the fault plan applied.
func (c *FlakyConn) Read(b []byte) (int, error) {
	rule, _, delay, err := c.decide(NetRead, len(b))
	if err != nil {
		if errors.Is(err, ErrConnDropped) {
			c.Conn.Close()
		}
		return 0, err
	}
	if rule != nil && rule.Kind == NetDelay {
		time.Sleep(delay)
	}
	return c.Conn.Read(b)
}

// Write implements net.Conn with the fault plan applied.
func (c *FlakyConn) Write(b []byte) (int, error) {
	rule, prefix, delay, err := c.decide(NetWrite, len(b))
	if err != nil {
		if errors.Is(err, ErrConnDropped) {
			c.Conn.Close()
		}
		return 0, err
	}
	if rule != nil {
		switch rule.Kind {
		case NetTruncate:
			n, _ := c.Conn.Write(b[:prefix])
			c.Conn.Close()
			return n, ErrConnDropped
		case NetDelay:
			time.Sleep(delay)
		}
	}
	return c.Conn.Write(b)
}

// Close closes the underlying connection.
func (c *FlakyConn) Close() error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	return c.Conn.Close()
}
