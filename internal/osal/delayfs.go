package osal

import "time"

// DelayFS wraps a filesystem and charges a fixed latency per write and
// per sync — a flash-device model for benchmarking the commit path. The
// sleeps happen in the wrapper, outside the inner filesystem's locks,
// so independent operations overlap like requests queued on a real
// device; a sync, in particular, costs its full latency regardless of
// how many commits it covers — which is exactly what group commit
// amortizes.
type DelayFS struct {
	inner FS
	// WriteDelay is charged per WriteAt; SyncDelay per Sync.
	WriteDelay time.Duration
	SyncDelay  time.Duration
}

// NewDelayFS wraps fs with the given per-operation latencies.
func NewDelayFS(fs FS, write, sync time.Duration) *DelayFS {
	return &DelayFS{inner: fs, WriteDelay: write, SyncDelay: sync}
}

// Open implements FS.
func (d *DelayFS) Open(name string) (File, error) {
	f, err := d.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &delayFile{f: f, fs: d}, nil
}

// Create implements FS.
func (d *DelayFS) Create(name string) (File, error) {
	f, err := d.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &delayFile{f: f, fs: d}, nil
}

// Remove implements FS.
func (d *DelayFS) Remove(name string) error { return d.inner.Remove(name) }

// Rename implements FS.
func (d *DelayFS) Rename(oldName, newName string) error { return d.inner.Rename(oldName, newName) }

// List implements FS.
func (d *DelayFS) List() ([]string, error) { return d.inner.List() }

// Stats implements FS.
func (d *DelayFS) Stats() *Stats { return d.inner.Stats() }

type delayFile struct {
	f  File
	fs *DelayFS
}

func (df *delayFile) ReadAt(p []byte, off int64) (int, error) { return df.f.ReadAt(p, off) }

func (df *delayFile) WriteAt(p []byte, off int64) (int, error) {
	if df.fs.WriteDelay > 0 {
		time.Sleep(df.fs.WriteDelay)
	}
	return df.f.WriteAt(p, off)
}

func (df *delayFile) Size() (int64, error) { return df.f.Size() }

func (df *delayFile) Truncate(size int64) error { return df.f.Truncate(size) }

func (df *delayFile) Sync() error {
	if df.fs.SyncDelay > 0 {
		time.Sleep(df.fs.SyncDelay)
	}
	return df.f.Sync()
}

func (df *delayFile) Close() error { return df.f.Close() }
