package osal

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"
)

// fsUnderTest runs a subtest against both filesystem implementations.
func fsUnderTest(t *testing.T, fn func(t *testing.T, fs FS)) {
	t.Helper()
	t.Run("MemFS", func(t *testing.T) { fn(t, NewMemFS()) })
	t.Run("DirFS", func(t *testing.T) {
		fs, err := NewDirFS(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		fn(t, fs)
	})
}

func TestCreateWriteReadBack(t *testing.T) {
	fsUnderTest(t, func(t *testing.T, fs FS) {
		f, err := fs.Create("data.db")
		if err != nil {
			t.Fatal(err)
		}
		payload := []byte("hello, embedded world")
		if _, err := f.WriteAt(payload, 100); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, len(payload))
		if _, err := f.ReadAt(got, 100); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("read back %q, want %q", got, payload)
		}
		// The hole before offset 100 reads as zeros.
		hole := make([]byte, 100)
		if _, err := f.ReadAt(hole, 0); err != nil {
			t.Fatal(err)
		}
		for _, b := range hole {
			if b != 0 {
				t.Fatal("hole not zero-filled")
			}
		}
		if size, _ := f.Size(); size != 121 {
			t.Fatalf("Size = %d, want 121", size)
		}
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestOpenMissing(t *testing.T) {
	fsUnderTest(t, func(t *testing.T, fs FS) {
		if _, err := fs.Open("missing"); !errors.Is(err, ErrNotExist) {
			t.Fatalf("Open(missing) = %v, want ErrNotExist", err)
		}
		if err := fs.Remove("missing"); !errors.Is(err, ErrNotExist) {
			t.Fatalf("Remove(missing) = %v, want ErrNotExist", err)
		}
		if err := fs.Rename("missing", "x"); !errors.Is(err, ErrNotExist) {
			t.Fatalf("Rename(missing) = %v, want ErrNotExist", err)
		}
	})
}

func TestCreatePreservesContent(t *testing.T) {
	fsUnderTest(t, func(t *testing.T, fs FS) {
		f, _ := fs.Create("f")
		if _, err := f.WriteAt([]byte("abc"), 0); err != nil {
			t.Fatal(err)
		}
		f.Close()
		f2, err := fs.Create("f")
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 3)
		if _, err := f2.ReadAt(got, 0); err != nil {
			t.Fatal(err)
		}
		if string(got) != "abc" {
			t.Fatalf("Create truncated existing file: %q", got)
		}
	})
}

func TestRemoveAndList(t *testing.T) {
	fsUnderTest(t, func(t *testing.T, fs FS) {
		for _, n := range []string{"b", "a", "c"} {
			f, err := fs.Create(n)
			if err != nil {
				t.Fatal(err)
			}
			f.Close()
		}
		names, err := fs.List()
		if err != nil {
			t.Fatal(err)
		}
		if len(names) != 3 || names[0] != "a" || names[1] != "b" || names[2] != "c" {
			t.Fatalf("List = %v", names)
		}
		if err := fs.Remove("b"); err != nil {
			t.Fatal(err)
		}
		names, _ = fs.List()
		if len(names) != 2 {
			t.Fatalf("List after remove = %v", names)
		}
		if _, err := fs.Open("b"); !errors.Is(err, ErrNotExist) {
			t.Fatal("removed file still opens")
		}
	})
}

func TestRename(t *testing.T) {
	fsUnderTest(t, func(t *testing.T, fs FS) {
		f, _ := fs.Create("old")
		f.WriteAt([]byte("x"), 0)
		f.Close()
		if err := fs.Rename("old", "new"); err != nil {
			t.Fatal(err)
		}
		if _, err := fs.Open("old"); !errors.Is(err, ErrNotExist) {
			t.Fatal("old name still exists")
		}
		nf, err := fs.Open("new")
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 1)
		nf.ReadAt(got, 0)
		if got[0] != 'x' {
			t.Fatal("content lost in rename")
		}
	})
}

func TestTruncate(t *testing.T) {
	fsUnderTest(t, func(t *testing.T, fs FS) {
		f, _ := fs.Create("f")
		f.WriteAt([]byte("0123456789"), 0)
		if err := f.Truncate(4); err != nil {
			t.Fatal(err)
		}
		if size, _ := f.Size(); size != 4 {
			t.Fatalf("Size after shrink = %d", size)
		}
		if err := f.Truncate(8); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 8)
		if _, err := f.ReadAt(got, 0); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, []byte{'0', '1', '2', '3', 0, 0, 0, 0}) {
			t.Fatalf("grow after shrink = %q", got)
		}
		if err := f.Truncate(-1); err == nil {
			t.Fatal("negative truncate should fail")
		}
	})
}

func TestReadPastEOF(t *testing.T) {
	fsUnderTest(t, func(t *testing.T, fs FS) {
		f, _ := fs.Create("f")
		f.WriteAt([]byte("abc"), 0)
		buf := make([]byte, 10)
		n, err := f.ReadAt(buf, 0)
		if n != 3 || err != io.EOF {
			t.Fatalf("short read = (%d, %v), want (3, EOF)", n, err)
		}
		if _, err := f.ReadAt(buf, 100); err != io.EOF {
			t.Fatalf("read past EOF = %v, want EOF", err)
		}
	})
}

func TestClosedFileErrors(t *testing.T) {
	fs := NewMemFS()
	f, _ := fs.Create("f")
	f.Close()
	if _, err := f.WriteAt([]byte("x"), 0); err == nil {
		t.Fatal("write after close should fail")
	}
	if _, err := f.ReadAt(make([]byte, 1), 0); err == nil {
		t.Fatal("read after close should fail")
	}
	if err := f.Sync(); err == nil {
		t.Fatal("sync after close should fail")
	}
	if err := f.Close(); err == nil {
		t.Fatal("double close should fail")
	}
}

func TestStatsCounting(t *testing.T) {
	fs := NewMemFS()
	f, _ := fs.Create("f")
	f.WriteAt(make([]byte, 100), 0)
	f.ReadAt(make([]byte, 40), 0)
	f.Sync()
	reads, writes, syncs, br, bw := fs.Stats().Snapshot()
	if reads != 1 || writes != 1 || syncs != 1 || br != 40 || bw != 100 {
		t.Fatalf("stats = %d %d %d %d %d", reads, writes, syncs, br, bw)
	}
}

func TestNegativeOffsets(t *testing.T) {
	fs := NewMemFS()
	f, _ := fs.Create("f")
	if _, err := f.ReadAt(make([]byte, 1), -1); err == nil {
		t.Fatal("negative read offset should fail")
	}
	if _, err := f.WriteAt([]byte("x"), -1); err == nil {
		t.Fatal("negative write offset should fail")
	}
}

func TestPlatforms(t *testing.T) {
	for _, name := range []string{"Linux", "Win32", "NutOS"} {
		p, err := PlatformByName(name)
		if err != nil {
			t.Fatalf("PlatformByName(%s): %v", name, err)
		}
		if p.Name != name || p.PageSize <= 0 || p.RAMBudget <= 0 {
			t.Fatalf("platform %s misconfigured: %+v", name, p)
		}
	}
	if _, err := PlatformByName("BeOS"); err == nil {
		t.Fatal("unknown platform should fail")
	}
	if NutOS.PageSize >= Linux.PageSize {
		t.Fatal("NutOS pages should be smaller than Linux pages")
	}
	if NutOS.RAMBudget >= Win32.RAMBudget {
		t.Fatal("NutOS RAM budget should be smallest")
	}
}

// TestWriteReadQuick checks the fundamental property: reading back any
// written region returns exactly the written bytes.
func TestWriteReadQuick(t *testing.T) {
	fs := NewMemFS()
	f, _ := fs.Create("q")
	property := func(data []byte, off uint16) bool {
		if len(data) == 0 {
			return true
		}
		if _, err := f.WriteAt(data, int64(off)); err != nil {
			return false
		}
		got := make([]byte, len(data))
		if _, err := f.ReadAt(got, int64(off)); err != nil && err != io.EOF {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMemFSConcurrentAccess(t *testing.T) {
	fs := NewMemFS()
	f, _ := fs.Create("c")
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			buf := []byte{byte(g)}
			for i := 0; i < 100; i++ {
				if _, err := f.WriteAt(buf, int64(g*100+i)); err != nil {
					done <- err
					return
				}
				if _, err := f.ReadAt(buf, int64(g*100)); err != nil && err != io.EOF {
					done <- err
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
