// Package osal is the OS-Abstraction feature of the FAME-DBMS product
// line (Fig. 2): a minimal filesystem and storage-device interface with
// one implementation per platform target.
//
// The paper's targets are Linux, Win32 and NutOS (a deeply embedded
// operating system). We cannot run on the original hardware, so the
// targets are simulated: each Platform fixes the parameters that drive
// feature selection and non-functional properties — page size, RAM
// budget for caches, and the relative cost of durable writes. The Linux
// target can also be backed by a real directory for persistence tests.
package osal

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Platform describes a simulated hardware/OS target of the product line.
type Platform struct {
	// Name is the feature name in the FAME-DBMS model: "Linux", "Win32"
	// or "NutOS".
	Name string
	// PageSize is the natural storage page size in bytes.
	PageSize int
	// RAMBudget is the memory available for data-management buffers in
	// bytes; the static allocator refuses to exceed it.
	RAMBudget int
	// SyncCost is a dimensionless relative cost of a durable sync,
	// used by the NFP estimator (flash on a sensor node is far slower
	// than a desktop disk cache).
	SyncCost int
}

// The three platform targets of Figure 2.
var (
	Linux = Platform{Name: "Linux", PageSize: 4096, RAMBudget: 16 << 20, SyncCost: 1}
	Win32 = Platform{Name: "Win32", PageSize: 4096, RAMBudget: 8 << 20, SyncCost: 2}
	NutOS = Platform{Name: "NutOS", PageSize: 512, RAMBudget: 32 << 10, SyncCost: 20}
)

// PlatformByName returns the platform for a feature name.
func PlatformByName(name string) (Platform, error) {
	switch name {
	case "Linux":
		return Linux, nil
	case "Win32":
		return Win32, nil
	case "NutOS":
		return NutOS, nil
	default:
		return Platform{}, fmt.Errorf("osal: unknown platform %q", name)
	}
}

// ErrNotExist is returned when opening a file that does not exist.
var ErrNotExist = errors.New("osal: file does not exist")

// File is a random-access storage file.
type File interface {
	io.ReaderAt
	io.WriterAt
	// Size returns the current file size in bytes.
	Size() (int64, error)
	// Truncate sets the file size.
	Truncate(size int64) error
	// Sync makes previous writes durable.
	Sync() error
	// Close releases the file. Writes after Close are errors.
	Close() error
}

// FS is the filesystem surface the DBMS uses.
type FS interface {
	// Open opens an existing file; ErrNotExist if missing.
	Open(name string) (File, error)
	// Create opens a file, creating it empty if missing (existing
	// content is preserved — the caller decides whether to truncate).
	Create(name string) (File, error)
	// Remove deletes a file. Removing a missing file is an error.
	Remove(name string) error
	// Rename atomically renames a file.
	Rename(oldName, newName string) error
	// List returns the names of all files, sorted.
	List() ([]string, error)
	// Stats returns cumulative I/O statistics.
	Stats() *Stats
}

// Stats counts I/O operations, for tests and the NFP measurement
// harness. Counters are not reset by Close.
type Stats struct {
	mu           sync.Mutex
	Reads        int64
	Writes       int64
	Syncs        int64
	BytesRead    int64
	BytesWritten int64
}

func (s *Stats) addRead(n int) {
	s.mu.Lock()
	s.Reads++
	s.BytesRead += int64(n)
	s.mu.Unlock()
}

func (s *Stats) addWrite(n int) {
	s.mu.Lock()
	s.Writes++
	s.BytesWritten += int64(n)
	s.mu.Unlock()
}

func (s *Stats) addSync() {
	s.mu.Lock()
	s.Syncs++
	s.mu.Unlock()
}

// Snapshot returns a copy of the counters, safe to compare.
func (s *Stats) Snapshot() (reads, writes, syncs, bytesRead, bytesWritten int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.Reads, s.Writes, s.Syncs, s.BytesRead, s.BytesWritten
}

// MemFS is an in-memory filesystem: the default backing store for the
// simulated platforms and all tests. It is safe for concurrent use.
type MemFS struct {
	mu    sync.Mutex
	files map[string]*memData
	stats Stats
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{files: map[string]*memData{}}
}

type memData struct {
	mu   sync.Mutex
	data []byte
}

// memFile is a handle onto a memData.
type memFile struct {
	fs     *MemFS
	d      *memData
	closed bool
}

// Open implements FS.
func (fs *MemFS) Open(name string) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	d, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("osal: open %q: %w", name, ErrNotExist)
	}
	return &memFile{fs: fs, d: d}, nil
}

// Create implements FS.
func (fs *MemFS) Create(name string) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	d, ok := fs.files[name]
	if !ok {
		d = &memData{}
		fs.files[name] = d
	}
	return &memFile{fs: fs, d: d}, nil
}

// Remove implements FS.
func (fs *MemFS) Remove(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[name]; !ok {
		return fmt.Errorf("osal: remove %q: %w", name, ErrNotExist)
	}
	delete(fs.files, name)
	return nil
}

// Rename implements FS.
func (fs *MemFS) Rename(oldName, newName string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	d, ok := fs.files[oldName]
	if !ok {
		return fmt.Errorf("osal: rename %q: %w", oldName, ErrNotExist)
	}
	delete(fs.files, oldName)
	fs.files[newName] = d
	return nil
}

// List implements FS.
func (fs *MemFS) List() ([]string, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	names := make([]string, 0, len(fs.files))
	for n := range fs.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// Stats implements FS.
func (fs *MemFS) Stats() *Stats { return &fs.stats }

var errClosed = errors.New("osal: file is closed")

func (f *memFile) ReadAt(p []byte, off int64) (int, error) {
	if f.closed {
		return 0, errClosed
	}
	f.d.mu.Lock()
	defer f.d.mu.Unlock()
	if off < 0 {
		return 0, fmt.Errorf("osal: negative offset %d", off)
	}
	if off >= int64(len(f.d.data)) {
		return 0, io.EOF
	}
	n := copy(p, f.d.data[off:])
	f.fs.stats.addRead(n)
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *memFile) WriteAt(p []byte, off int64) (int, error) {
	if f.closed {
		return 0, errClosed
	}
	f.d.mu.Lock()
	defer f.d.mu.Unlock()
	if off < 0 {
		return 0, fmt.Errorf("osal: negative offset %d", off)
	}
	if need := off + int64(len(p)); need > int64(len(f.d.data)) {
		if need <= int64(cap(f.d.data)) {
			f.d.data = f.d.data[:need]
		} else {
			// Amortized growth: doubling keeps append-heavy writers
			// (the WAL) linear.
			newCap := int64(cap(f.d.data)) * 2
			if newCap < need {
				newCap = need
			}
			grown := make([]byte, need, newCap)
			copy(grown, f.d.data)
			f.d.data = grown
		}
	}
	copy(f.d.data[off:], p)
	f.fs.stats.addWrite(len(p))
	return len(p), nil
}

func (f *memFile) Size() (int64, error) {
	if f.closed {
		return 0, errClosed
	}
	f.d.mu.Lock()
	defer f.d.mu.Unlock()
	return int64(len(f.d.data)), nil
}

func (f *memFile) Truncate(size int64) error {
	if f.closed {
		return errClosed
	}
	f.d.mu.Lock()
	defer f.d.mu.Unlock()
	switch {
	case size < 0:
		return fmt.Errorf("osal: negative truncate size %d", size)
	case size <= int64(len(f.d.data)):
		f.d.data = f.d.data[:size]
	default:
		grown := make([]byte, size)
		copy(grown, f.d.data)
		f.d.data = grown
	}
	return nil
}

func (f *memFile) Sync() error {
	if f.closed {
		return errClosed
	}
	f.fs.stats.addSync()
	return nil
}

func (f *memFile) Close() error {
	if f.closed {
		return errClosed
	}
	f.closed = true
	return nil
}

// DirFS is a directory-backed filesystem for the Linux target, used by
// persistence and recovery tests and the example applications.
type DirFS struct {
	dir   string
	stats Stats
}

// NewDirFS returns a filesystem rooted at dir, creating it if needed.
func NewDirFS(dir string) (*DirFS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("osal: %w", err)
	}
	return &DirFS{dir: dir}, nil
}

func (fs *DirFS) path(name string) string { return filepath.Join(fs.dir, name) }

// Open implements FS.
func (fs *DirFS) Open(name string) (File, error) {
	f, err := os.OpenFile(fs.path(name), os.O_RDWR, 0o644)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("osal: open %q: %w", name, ErrNotExist)
		}
		return nil, fmt.Errorf("osal: %w", err)
	}
	return &osFile{f: f, stats: &fs.stats}, nil
}

// Create implements FS.
func (fs *DirFS) Create(name string) (File, error) {
	f, err := os.OpenFile(fs.path(name), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("osal: %w", err)
	}
	return &osFile{f: f, stats: &fs.stats}, nil
}

// Remove implements FS.
func (fs *DirFS) Remove(name string) error {
	if err := os.Remove(fs.path(name)); err != nil {
		if os.IsNotExist(err) {
			return fmt.Errorf("osal: remove %q: %w", name, ErrNotExist)
		}
		return fmt.Errorf("osal: %w", err)
	}
	return nil
}

// Rename implements FS.
func (fs *DirFS) Rename(oldName, newName string) error {
	if err := os.Rename(fs.path(oldName), fs.path(newName)); err != nil {
		if os.IsNotExist(err) {
			return fmt.Errorf("osal: rename %q: %w", oldName, ErrNotExist)
		}
		return fmt.Errorf("osal: %w", err)
	}
	return nil
}

// List implements FS.
func (fs *DirFS) List() ([]string, error) {
	entries, err := os.ReadDir(fs.dir)
	if err != nil {
		return nil, fmt.Errorf("osal: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// Stats implements FS.
func (fs *DirFS) Stats() *Stats { return &fs.stats }

type osFile struct {
	f     *os.File
	stats *Stats
}

func (f *osFile) ReadAt(p []byte, off int64) (int, error) {
	n, err := f.f.ReadAt(p, off)
	f.stats.addRead(n)
	return n, err
}

func (f *osFile) WriteAt(p []byte, off int64) (int, error) {
	n, err := f.f.WriteAt(p, off)
	f.stats.addWrite(n)
	return n, err
}

func (f *osFile) Size() (int64, error) {
	info, err := f.f.Stat()
	if err != nil {
		return 0, err
	}
	return info.Size(), nil
}

func (f *osFile) Truncate(size int64) error { return f.f.Truncate(size) }

func (f *osFile) Sync() error {
	f.stats.addSync()
	return f.f.Sync()
}

func (f *osFile) Close() error { return f.f.Close() }
