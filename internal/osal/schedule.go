package osal

// Programmable fault schedules: a deterministic, seedable plan of
// storage faults for the FaultFS wrapper. Where the legacy countdown
// (FailAfter) models a device that dies cleanly at one point, a
// Schedule models the failure spectrum of real embedded storage —
// torn page writes that persist only a prefix, short writes, single-bit
// flips on the read path or at rest, and transient errors that heal
// after a few operations.
//
// Every decision a schedule makes derives from its explicit rules plus
// its seed, never from wall-clock time or map order, so a failing run
// replays exactly: the crash-point harness (internal/bench) records the
// op index of each injection and can re-arm the identical plan.

import (
	"fmt"
	"sync"
)

// OpClass classifies file operations for fault scheduling. Read-class
// operations participate too (the historic FaultFS gap): bit rot is a
// read-path phenomenon.
type OpClass int

// The op classes a schedule can target.
const (
	OpRead OpClass = iota
	OpWrite
	OpSync
	OpTruncate
	OpRemove
	OpRename
)

// String returns the op-class name.
func (c OpClass) String() string {
	switch c {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	case OpTruncate:
		return "truncate"
	case OpRemove:
		return "remove"
	case OpRename:
		return "rename"
	default:
		return fmt.Sprintf("opclass(%d)", int(c))
	}
}

// FaultKind is what a schedule rule does when it fires.
type FaultKind int

const (
	// FaultError fails the operation with an injected error. With
	// Rule.Heal > 0 the error is transient (osal.ErrTransient): it
	// repeats for Heal consecutive matching operations, then the device
	// recovers on its own.
	FaultError FaultKind = iota
	// FaultTorn persists only a prefix of a WriteAt and reports full
	// success — the classic torn page write. The surviving prefix length
	// derives deterministically from the schedule seed.
	FaultTorn
	// FaultPartial persists a prefix of a WriteAt and returns the short
	// count with a transient error, like an interrupted write syscall.
	FaultPartial
	// FaultFlipRead flips one bit in the buffer returned by ReadAt and
	// reports success — bit rot surfacing on the read path. The stored
	// data is untouched.
	FaultFlipRead
	// FaultFlipAtRest lets a WriteAt succeed, then flips one bit of the
	// just-written range in the file — silent corruption at rest.
	FaultFlipAtRest
)

// String returns the fault-kind name.
func (k FaultKind) String() string {
	switch k {
	case FaultError:
		return "error"
	case FaultTorn:
		return "torn"
	case FaultPartial:
		return "partial"
	case FaultFlipRead:
		return "flip-read"
	case FaultFlipAtRest:
		return "flip-at-rest"
	default:
		return fmt.Sprintf("faultkind(%d)", int(k))
	}
}

// Rule is one planned fault: the At-th operation of Class (1-based,
// counted per class across all files) suffers Kind. FaultError rules
// with Heal > 0 are transient — they also fail the next Heal-1
// operations of the class, then stop.
type Rule struct {
	Class OpClass
	// At is the 1-based index among operations of Class.
	At   int64
	Kind FaultKind
	// Heal makes a FaultError transient: the error repeats for Heal
	// consecutive operations of the class, then the fault heals. Zero
	// (or FaultKind != FaultError) means the single operation At fails
	// permanently-typed (plain ErrInjected).
	Heal int64
}

// Injection records one fault a schedule actually delivered, for the
// crash-point harness's bookkeeping: which op, which file, which bytes.
type Injection struct {
	// OpIndex is the per-class 1-based operation index that fired.
	OpIndex int64
	Class   OpClass
	Kind    FaultKind
	// File is the name the faulted handle was opened under.
	File string
	// Off/Len locate the affected bytes for write-path faults: the
	// surviving prefix for torn/partial writes, the flipped byte for bit
	// flips. Zero for plain errors.
	Off int64
	Len int
	// Bit is the flipped bit position within the byte at Off, for the
	// flip kinds.
	Bit int
}

// String renders the injection for logs.
func (i Injection) String() string {
	return fmt.Sprintf("%s #%d %s %s off=%d len=%d bit=%d",
		i.Class, i.OpIndex, i.Kind, i.File, i.Off, i.Len, i.Bit)
}

// Schedule is a deterministic fault plan. It is safe for concurrent
// use; the per-class operation counters are shared across every file of
// the FaultFS it is installed on.
type Schedule struct {
	mu    sync.Mutex
	seed  int64
	rules []Rule
	// counts is the per-class operation counter.
	counts map[OpClass]int64
	// injections logs every delivered fault in firing order.
	injections []Injection
}

// NewSchedule creates an empty plan. The seed drives the deterministic
// choices a rule leaves open (torn-prefix length, flipped bit), so two
// schedules with equal seeds and rules inject byte-identical faults.
func NewSchedule(seed int64) *Schedule {
	return &Schedule{seed: seed, counts: map[OpClass]int64{}}
}

// Add appends a rule and returns the schedule for chaining.
func (s *Schedule) Add(r Rule) *Schedule {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rules = append(s.rules, r)
	return s
}

// Seed returns the schedule's seed.
func (s *Schedule) Seed() int64 { return s.seed }

// Injections returns a copy of the delivered-fault log in firing order.
func (s *Schedule) Injections() []Injection {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Injection(nil), s.injections...)
}

// Counts returns how many operations of each class the schedule has
// observed, for planning fault points (the schedule analog of
// FaultFS.WriteOps).
func (s *Schedule) Counts() map[OpClass]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[OpClass]int64, len(s.counts))
	for c, n := range s.counts {
		out[c] = n
	}
	return out
}

// step consumes one operation of class and returns the matching rule,
// if any, plus the operation's per-class index. Transient FaultError
// rules match a window [At, At+Heal).
func (s *Schedule) step(class OpClass) (Rule, int64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.counts[class]++
	n := s.counts[class]
	for _, r := range s.rules {
		if r.Class != class {
			continue
		}
		if r.Kind == FaultError && r.Heal > 0 {
			if n >= r.At && n < r.At+r.Heal {
				return r, n, true
			}
			continue
		}
		if n == r.At {
			return r, n, true
		}
	}
	return Rule{}, n, false
}

// record logs a delivered fault.
func (s *Schedule) record(inj Injection) {
	s.mu.Lock()
	s.injections = append(s.injections, inj)
	s.mu.Unlock()
}

// mix is a splitmix64-style hash: the deterministic entropy source for
// torn-prefix lengths and flipped-bit positions. Seed and op index in,
// uniform 64 bits out — no global RNG state, so replays agree.
func mix(seed, n int64) uint64 {
	z := uint64(seed)*0x9e3779b97f4a7c15 + uint64(n)*0xbf58476d1ce4e5b9
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// tornPrefix returns how many of n bytes a torn write persists: at
// least 1 and strictly less than n (for n > 1), derived from the seed.
func (s *Schedule) tornPrefix(opIndex int64, n int) int {
	if n <= 1 {
		return 0
	}
	return 1 + int(mix(s.seed, opIndex)%uint64(n-1))
}

// flipPos picks the byte offset and bit to flip within an n-byte range.
func (s *Schedule) flipPos(opIndex int64, n int) (off int, bit int) {
	if n <= 0 {
		return 0, 0
	}
	h := mix(s.seed, opIndex)
	return int(h % uint64(n)), int((h >> 32) % 8)
}
