package osal

import (
	"bytes"
	"errors"
	"testing"
)

func schedFS(t *testing.T, seed int64) (*FaultFS, *Schedule) {
	t.Helper()
	ffs := NewFaultFS(NewMemFS())
	s := NewSchedule(seed)
	ffs.SetSchedule(s)
	return ffs, s
}

func writeFile(t *testing.T, fs FS, name string, data []byte) {
	t.Helper()
	f, err := fs.Create(name)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestScheduleReadError(t *testing.T) {
	ffs, _ := schedFS(t, 1)
	writeFile(t, ffs, "a", []byte("hello world"))
	f, err := ffs.Open("a")
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer f.Close()
	buf := make([]byte, 5)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatalf("read 1 should pass: %v", err)
	}
	ffs.Schedule().Add(Rule{Class: OpRead, At: 2, Kind: FaultError})
	if _, err := f.ReadAt(buf, 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("read 2 should fail injected, got %v", err)
	}
	if errorsIsTransient(err) {
		t.Fatalf("permanent rule must not be transient")
	}
	class, ok := ffs.TrippedClass()
	if !ok || class != OpRead {
		t.Fatalf("TrippedClass = %v,%v; want read,true", class, ok)
	}
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatalf("read 3 should pass again: %v", err)
	}
}

func errorsIsTransient(err error) bool { return errors.Is(err, ErrTransient) }

func TestScheduleTransientHeals(t *testing.T) {
	ffs, s := schedFS(t, 2)
	s.Add(Rule{Class: OpWrite, At: 2, Kind: FaultError, Heal: 3})
	f, err := ffs.Create("a")
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	defer f.Close()
	data := []byte("xyz")
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	for i := 2; i <= 4; i++ {
		_, err := f.WriteAt(data, 0)
		if !errors.Is(err, ErrTransient) {
			t.Fatalf("write %d: want ErrTransient, got %v", i, err)
		}
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("write %d: transient must also match ErrInjected", i)
		}
	}
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatalf("write 5 should heal: %v", err)
	}
	if got := len(s.Injections()); got != 3 {
		t.Fatalf("injection log length = %d, want 3", got)
	}
}

func TestScheduleTornWrite(t *testing.T) {
	ffs, s := schedFS(t, 3)
	s.Add(Rule{Class: OpWrite, At: 1, Kind: FaultTorn})
	f, err := ffs.Create("a")
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	defer f.Close()
	page := bytes.Repeat([]byte{0xAB}, 256)
	n, err := f.WriteAt(page, 0)
	if err != nil || n != len(page) {
		t.Fatalf("torn write must report success, got n=%d err=%v", n, err)
	}
	inj := s.Injections()
	if len(inj) != 1 || inj[0].Kind != FaultTorn {
		t.Fatalf("injection log = %v", inj)
	}
	if inj[0].Len <= 0 || inj[0].Len >= len(page) {
		t.Fatalf("torn prefix %d out of (0,%d)", inj[0].Len, len(page))
	}
	size, err := f.Size()
	if err != nil {
		t.Fatalf("Size: %v", err)
	}
	if size != int64(inj[0].Len) {
		t.Fatalf("persisted %d bytes, injection says %d", size, inj[0].Len)
	}
	got := make([]byte, inj[0].Len)
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if !bytes.Equal(got, page[:inj[0].Len]) {
		t.Fatalf("surviving prefix differs from written prefix")
	}
}

func TestSchedulePartialWrite(t *testing.T) {
	ffs, s := schedFS(t, 4)
	s.Add(Rule{Class: OpWrite, At: 1, Kind: FaultPartial})
	f, err := ffs.Create("a")
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	defer f.Close()
	page := bytes.Repeat([]byte{0x5C}, 128)
	n, err := f.WriteAt(page, 0)
	if !errors.Is(err, ErrTransient) {
		t.Fatalf("partial write must be transient, got %v", err)
	}
	if n <= 0 || n >= len(page) {
		t.Fatalf("short count %d out of (0,%d)", n, len(page))
	}
	// Retrying the same write must succeed and complete the page.
	if m, err := f.WriteAt(page, 0); err != nil || m != len(page) {
		t.Fatalf("retry: n=%d err=%v", m, err)
	}
	got := make([]byte, len(page))
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if !bytes.Equal(got, page) {
		t.Fatalf("page content differs after retry")
	}
}

func TestScheduleFlipRead(t *testing.T) {
	ffs, s := schedFS(t, 5)
	data := bytes.Repeat([]byte{0x00}, 64)
	writeFile(t, ffs, "a", data)
	s.Add(Rule{Class: OpRead, At: 1, Kind: FaultFlipRead})
	f, err := ffs.Open("a")
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer f.Close()
	got := make([]byte, len(data))
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if bytes.Equal(got, data) {
		t.Fatalf("flip-read returned pristine data")
	}
	diff := 0
	for i := range got {
		if got[i] != data[i] {
			diff++
			if b := got[i] ^ data[i]; b&(b-1) != 0 {
				t.Fatalf("byte %d differs by more than one bit: %02x", i, b)
			}
		}
	}
	if diff != 1 {
		t.Fatalf("%d bytes differ, want exactly 1", diff)
	}
	// The stored data is untouched: a second read is clean.
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatalf("ReadAt 2: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("flip-read must not corrupt at rest")
	}
}

func TestScheduleFlipAtRest(t *testing.T) {
	ffs, s := schedFS(t, 6)
	s.Add(Rule{Class: OpWrite, At: 1, Kind: FaultFlipAtRest})
	f, err := ffs.Create("a")
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	defer f.Close()
	data := bytes.Repeat([]byte{0xFF}, 64)
	if n, err := f.WriteAt(data, 0); err != nil || n != len(data) {
		t.Fatalf("WriteAt: n=%d err=%v", n, err)
	}
	// Remove the schedule so reads are clean; corruption must persist.
	ffs.SetSchedule(nil)
	got := make([]byte, len(data))
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if bytes.Equal(got, data) {
		t.Fatalf("flip-at-rest left data pristine")
	}
	inj := s.Injections()
	if len(inj) != 1 || inj[0].Kind != FaultFlipAtRest || inj[0].Len != 1 {
		t.Fatalf("injection log = %v", inj)
	}
	if got[inj[0].Off] != data[inj[0].Off]^(1<<inj[0].Bit) {
		t.Fatalf("injection log does not describe the actual flip")
	}
}

// TestScheduleReplayDeterminism: two runs with equal seeds and rules
// deliver byte-identical injections; a different seed differs.
func TestScheduleReplayDeterminism(t *testing.T) {
	run := func(seed int64) []Injection {
		ffs, s := schedFS(t, seed)
		s.Add(Rule{Class: OpWrite, At: 1, Kind: FaultTorn})
		s.Add(Rule{Class: OpWrite, At: 3, Kind: FaultFlipAtRest})
		s.Add(Rule{Class: OpRead, At: 2, Kind: FaultFlipRead})
		f, err := ffs.Create("a")
		if err != nil {
			t.Fatalf("Create: %v", err)
		}
		defer f.Close()
		page := bytes.Repeat([]byte{0x42}, 512)
		buf := make([]byte, 512)
		for i := 0; i < 4; i++ {
			f.WriteAt(page, int64(i)*512)
		}
		for i := 0; i < 3; i++ {
			f.ReadAt(buf, 0)
		}
		return s.Injections()
	}
	a, b := run(99), run(99)
	if len(a) != 3 || len(b) != 3 {
		t.Fatalf("injection counts = %d,%d; want 3,3", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := run(100)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatalf("different seeds produced identical torn/flip choices")
	}
}

// TestScheduleMetadataClasses: sync/truncate/remove/rename rules fire
// on their own counters.
func TestScheduleMetadataClasses(t *testing.T) {
	ffs, s := schedFS(t, 7)
	s.Add(Rule{Class: OpSync, At: 1, Kind: FaultError, Heal: 1})
	s.Add(Rule{Class: OpRemove, At: 1, Kind: FaultError})
	f, err := ffs.Create("a")
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrTransient) {
		t.Fatalf("sync 1: want transient, got %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync 2 should heal: %v", err)
	}
	f.Close()
	if err := ffs.Remove("a"); !errors.Is(err, ErrInjected) {
		t.Fatalf("remove: want injected, got %v", err)
	}
	counts := s.Counts()
	if counts[OpSync] != 2 || counts[OpRemove] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

// TestLegacyCountdownIgnoresReads pins the historic contract: without a
// schedule, FailAfter never touches the read path.
func TestLegacyCountdownIgnoresReads(t *testing.T) {
	ffs := NewFaultFS(NewMemFS())
	writeFile(t, ffs, "a", []byte("data"))
	ffs.FailAfter(1)
	f, err := ffs.Open("a")
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer f.Close()
	buf := make([]byte, 4)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatalf("read under armed countdown must pass: %v", err)
	}
	if _, err := f.WriteAt(buf, 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("write must trip: %v", err)
	}
	if class, ok := ffs.TrippedClass(); !ok || class != OpWrite {
		t.Fatalf("TrippedClass = %v,%v; want write,true", class, ok)
	}
}
