package osal

import (
	"errors"
	"net"
	"testing"
)

// pipeConns returns the two ends of an in-memory full-duplex pipe.
func pipeConns() (net.Conn, net.Conn) {
	return net.Pipe()
}

func TestFlakyConnDropOnNthWrite(t *testing.T) {
	a, b := pipeConns()
	defer b.Close()
	fc := NewFlakyConn(a, 1, NetRule{Class: NetWrite, At: 2, Kind: NetDrop})

	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 16)
		b.Read(buf)
	}()
	if _, err := fc.Write([]byte("frame-one")); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	<-done
	if _, err := fc.Write([]byte("frame-two")); !errors.Is(err, ErrConnDropped) {
		t.Fatalf("write 2: want ErrConnDropped, got %v", err)
	}
	// Dropped connections stay dead.
	if _, err := fc.Write([]byte("x")); !errors.Is(err, ErrConnDropped) {
		t.Fatalf("write 3: want ErrConnDropped, got %v", err)
	}
	if got := fc.Injected(); len(got) != 1 || got[0].Kind != NetDrop {
		t.Fatalf("injected = %+v", got)
	}
}

func TestFlakyConnTruncateWritesPrefixThenCloses(t *testing.T) {
	a, b := pipeConns()
	defer b.Close()
	fc := NewFlakyConn(a, 7, NetRule{Class: NetWrite, At: 1, Kind: NetTruncate})

	frame := []byte("0123456789abcdef")
	got := make(chan int, 1)
	go func() {
		buf := make([]byte, len(frame))
		n, _ := b.Read(buf)
		got <- n
	}()
	n, err := fc.Write(frame)
	if !errors.Is(err, ErrConnDropped) {
		t.Fatalf("want ErrConnDropped, got %v", err)
	}
	if n <= 0 || n >= len(frame) {
		t.Fatalf("truncate wrote %d of %d bytes; want a strict prefix", n, len(frame))
	}
	if delivered := <-got; delivered != n {
		t.Fatalf("receiver saw %d bytes, sender reported %d", delivered, n)
	}
}

func TestFlakyConnPartitionHeals(t *testing.T) {
	a, b := pipeConns()
	defer b.Close()
	fc := NewFlakyConn(a, 3, NetRule{Class: NetWrite, At: 1, Kind: NetPartition, Heal: 2})

	for i := 0; i < 2; i++ {
		_, err := fc.Write([]byte("x"))
		var ne net.Error
		if !errors.As(err, &ne) || !ne.Timeout() {
			t.Fatalf("op %d: want timeout net.Error, got %v", i+1, err)
		}
	}
	// Healed: the third write goes through.
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 4)
		b.Read(buf)
	}()
	if _, err := fc.Write([]byte("ok")); err != nil {
		t.Fatalf("after heal: %v", err)
	}
	<-done
}

func TestFlakyConnDeterministicReplay(t *testing.T) {
	run := func() (int, error) {
		a, b := pipeConns()
		defer a.Close()
		defer b.Close()
		fc := NewFlakyConn(a, 42, NetRule{Class: NetWrite, At: 1, Kind: NetTruncate})
		go func() {
			buf := make([]byte, 64)
			b.Read(buf)
		}()
		return fc.Write(make([]byte, 64))
	}
	n1, err1 := run()
	n2, err2 := run()
	if n1 != n2 || !errors.Is(err1, ErrConnDropped) || !errors.Is(err2, ErrConnDropped) {
		t.Fatalf("non-deterministic: (%d,%v) vs (%d,%v)", n1, err1, n2, err2)
	}
}

func TestFlakyConnCleanPassThrough(t *testing.T) {
	a, b := pipeConns()
	defer b.Close()
	fc := NewFlakyConn(a, 1)
	go func() {
		fc.Write([]byte("hello"))
	}()
	buf := make([]byte, 5)
	n, err := b.Read(buf)
	if err != nil || string(buf[:n]) != "hello" {
		t.Fatalf("read = %q, %v", buf[:n], err)
	}
}
