package osal

import (
	"errors"
	"sync"
)

// ErrInjected is the error returned by FaultFS-triggered failures.
var ErrInjected = errors.New("osal: injected fault")

// FaultFS wraps a filesystem and injects failures, for exercising error
// paths and crash windows in the storage and transaction layers. The
// countdown counts write-class operations (WriteAt, Sync, Truncate)
// across all files: when it reaches zero, that operation and every
// subsequent write-class operation fail until the countdown is reset.
// Reads always succeed (a crashed write does not damage reads here;
// torn-write simulation is done by truncating files directly).
type FaultFS struct {
	inner FS

	mu        sync.Mutex
	countdown int64 // -1 = disarmed
	tripped   bool
	// WriteOps counts write-class operations observed, for planning
	// fault points.
	WriteOps int64
}

// NewFaultFS wraps fs with fault injection disarmed.
func NewFaultFS(fs FS) *FaultFS {
	return &FaultFS{inner: fs, countdown: -1}
}

// FailAfter arms the injector: the n-th write-class operation from now
// (1-based) and all later ones fail.
func (f *FaultFS) FailAfter(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.countdown = n
	f.tripped = false
}

// Disarm stops injecting failures.
func (f *FaultFS) Disarm() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.countdown = -1
	f.tripped = false
}

// Tripped reports whether a fault has fired since the last arm/disarm.
func (f *FaultFS) Tripped() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.tripped
}

// allowWrite consumes one write-class operation.
func (f *FaultFS) allowWrite() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.WriteOps++
	if f.countdown < 0 {
		return nil
	}
	if f.countdown > 1 {
		f.countdown--
		return nil
	}
	f.countdown = 1 // stay tripped
	f.tripped = true
	return ErrInjected
}

// Open implements FS.
func (f *FaultFS) Open(name string) (File, error) {
	file, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: file, fs: f}, nil
}

// Create implements FS.
func (f *FaultFS) Create(name string) (File, error) {
	file, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: file, fs: f}, nil
}

// Remove implements FS.
func (f *FaultFS) Remove(name string) error {
	if err := f.allowWrite(); err != nil {
		return err
	}
	return f.inner.Remove(name)
}

// Rename implements FS.
func (f *FaultFS) Rename(oldName, newName string) error {
	if err := f.allowWrite(); err != nil {
		return err
	}
	return f.inner.Rename(oldName, newName)
}

// List implements FS.
func (f *FaultFS) List() ([]string, error) { return f.inner.List() }

// Stats implements FS.
func (f *FaultFS) Stats() *Stats { return f.inner.Stats() }

type faultFile struct {
	f  File
	fs *FaultFS
}

func (ff *faultFile) ReadAt(p []byte, off int64) (int, error) { return ff.f.ReadAt(p, off) }

func (ff *faultFile) WriteAt(p []byte, off int64) (int, error) {
	if err := ff.fs.allowWrite(); err != nil {
		return 0, err
	}
	return ff.f.WriteAt(p, off)
}

func (ff *faultFile) Size() (int64, error) { return ff.f.Size() }

func (ff *faultFile) Truncate(size int64) error {
	if err := ff.fs.allowWrite(); err != nil {
		return err
	}
	return ff.f.Truncate(size)
}

func (ff *faultFile) Sync() error {
	if err := ff.fs.allowWrite(); err != nil {
		return err
	}
	return ff.f.Sync()
}

func (ff *faultFile) Close() error { return ff.f.Close() }

// CrashFS wraps a filesystem and models power loss: writes reach the
// live file immediately, but only the content present at the last Sync
// of a file survives Crash(). This is the tool for testing the
// durability window of deferred commit protocols — records appended
// but never synced must vanish at the crash, exactly as they would on
// real hardware. Metadata operations (Remove, Rename) are modeled as
// immediately durable.
type CrashFS struct {
	inner FS

	mu      sync.Mutex
	durable map[string][]byte // per-file image as of its last Sync
	seen    map[string]bool   // every file opened or created through us
}

// NewCrashFS wraps fs with power-loss simulation.
func NewCrashFS(fs FS) *CrashFS {
	return &CrashFS{inner: fs, durable: map[string][]byte{}, seen: map[string]bool{}}
}

// Crash reverts every file to its last synced image (files never synced
// become empty). The filesystem keeps working afterwards, so a test can
// reopen its structures "after the power returns".
func (c *CrashFS) Crash() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for name := range c.seen {
		f, err := c.inner.Open(name)
		if errors.Is(err, ErrNotExist) {
			continue
		}
		if err != nil {
			return err
		}
		img := c.durable[name]
		if err := f.Truncate(int64(len(img))); err != nil {
			f.Close()
			return err
		}
		if len(img) > 0 {
			if _, err := f.WriteAt(img, 0); err != nil {
				f.Close()
				return err
			}
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

func (c *CrashFS) track(name string) {
	c.mu.Lock()
	c.seen[name] = true
	c.mu.Unlock()
}

// snapshot records a file's content as durable (called under no locks
// but serialized by the caller's Sync).
func (c *CrashFS) snapshot(name string, f File) error {
	size, err := f.Size()
	if err != nil {
		return err
	}
	img := make([]byte, size)
	if size > 0 {
		if _, err := f.ReadAt(img, 0); err != nil {
			return err
		}
	}
	c.mu.Lock()
	c.durable[name] = img
	c.mu.Unlock()
	return nil
}

// Open implements FS.
func (c *CrashFS) Open(name string) (File, error) {
	f, err := c.inner.Open(name)
	if err != nil {
		return nil, err
	}
	c.track(name)
	return &crashFile{f: f, fs: c, name: name}, nil
}

// Create implements FS.
func (c *CrashFS) Create(name string) (File, error) {
	f, err := c.inner.Create(name)
	if err != nil {
		return nil, err
	}
	c.track(name)
	return &crashFile{f: f, fs: c, name: name}, nil
}

// Remove implements FS.
func (c *CrashFS) Remove(name string) error {
	c.mu.Lock()
	delete(c.durable, name)
	delete(c.seen, name)
	c.mu.Unlock()
	return c.inner.Remove(name)
}

// Rename implements FS.
func (c *CrashFS) Rename(oldName, newName string) error {
	if err := c.inner.Rename(oldName, newName); err != nil {
		return err
	}
	c.mu.Lock()
	if img, ok := c.durable[oldName]; ok {
		c.durable[newName] = img
		delete(c.durable, oldName)
	}
	if c.seen[oldName] {
		c.seen[newName] = true
		delete(c.seen, oldName)
	}
	c.mu.Unlock()
	return nil
}

// List implements FS.
func (c *CrashFS) List() ([]string, error) { return c.inner.List() }

// Stats implements FS.
func (c *CrashFS) Stats() *Stats { return c.inner.Stats() }

type crashFile struct {
	f    File
	fs   *CrashFS
	name string
}

func (cf *crashFile) ReadAt(p []byte, off int64) (int, error)  { return cf.f.ReadAt(p, off) }
func (cf *crashFile) WriteAt(p []byte, off int64) (int, error) { return cf.f.WriteAt(p, off) }
func (cf *crashFile) Size() (int64, error)                     { return cf.f.Size() }
func (cf *crashFile) Truncate(size int64) error                { return cf.f.Truncate(size) }

func (cf *crashFile) Sync() error {
	if err := cf.f.Sync(); err != nil {
		return err
	}
	return cf.fs.snapshot(cf.name, cf.f)
}

func (cf *crashFile) Close() error { return cf.f.Close() }
