package osal

import (
	"errors"
	"fmt"
	"sync"
)

// ErrInjected is the error returned by FaultFS-triggered failures.
var ErrInjected = errors.New("osal: injected fault")

// ErrTransient marks injected faults that heal on their own after a few
// operations (Schedule rules with Heal > 0, and partial writes). Every
// transient error also matches ErrInjected; callers with retry policies
// should retry on ErrTransient and treat a bare ErrInjected as terminal.
var ErrTransient = errors.New("osal: transient injected fault")

// injectedErr builds the error for one scheduled fault. Transient
// errors match both ErrTransient and ErrInjected under errors.Is.
func injectedErr(class OpClass, n int64, transient bool) error {
	if transient {
		return fmt.Errorf("osal: %s op %d: %w: %w", class, n, ErrTransient, ErrInjected)
	}
	return fmt.Errorf("osal: %s op %d: %w", class, n, ErrInjected)
}

// FaultFS wraps a filesystem and injects failures, for exercising error
// paths and crash windows in the storage and transaction layers. Two
// mechanisms coexist:
//
// The legacy countdown (FailAfter) counts write-class operations
// (WriteAt, Sync, Truncate, Remove, Rename) across all files: when it
// reaches zero, that operation and every subsequent write-class
// operation fail until the countdown is reset. Under the countdown
// alone, reads always succeed — its job is clean, terminal device
// death for crash-window sweeps.
//
// A Schedule (SetSchedule) adds programmable faults over every op
// class including reads: torn and partial writes, single-bit flips on
// read or at rest, and transient errors that heal. Both mechanisms may
// be armed at once; the countdown is checked first.
type FaultFS struct {
	inner FS

	mu        sync.Mutex
	countdown int64 // -1 = disarmed
	tripped   bool
	// trippedBy remembers the op class of the first fault since the
	// last arm/disarm (valid while tripped).
	trippedBy OpClass
	schedule  *Schedule
	// WriteOps counts write-class operations observed, for planning
	// fault points.
	WriteOps int64
}

// NewFaultFS wraps fs with fault injection disarmed.
func NewFaultFS(fs FS) *FaultFS {
	return &FaultFS{inner: fs, countdown: -1}
}

// FailAfter arms the injector: the n-th write-class operation from now
// (1-based) and all later ones fail.
func (f *FaultFS) FailAfter(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.countdown = n
	f.tripped = false
}

// Disarm stops injecting failures: the countdown is reset and any
// installed schedule is removed.
func (f *FaultFS) Disarm() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.countdown = -1
	f.schedule = nil
	f.tripped = false
}

// SetSchedule installs (or, with nil, removes) a programmable fault
// plan. The schedule's per-class op counters start from their current
// values, so a fresh schedule should be installed fresh.
func (f *FaultFS) SetSchedule(s *Schedule) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.schedule = s
	f.tripped = false
}

// Schedule returns the installed fault plan, or nil.
func (f *FaultFS) Schedule() *Schedule {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.schedule
}

// Tripped reports whether a fault has fired since the last arm/disarm.
func (f *FaultFS) Tripped() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.tripped
}

// TrippedClass reports which op class the first fault since the last
// arm/disarm fired on. ok is false if nothing has tripped.
func (f *FaultFS) TrippedClass() (class OpClass, ok bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.trippedBy, f.tripped
}

// sched returns the installed schedule without consuming anything.
func (f *FaultFS) sched() *Schedule {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.schedule
}

// trip records the first faulting op class.
func (f *FaultFS) trip(class OpClass) {
	f.mu.Lock()
	if !f.tripped {
		f.tripped = true
		f.trippedBy = class
	}
	f.mu.Unlock()
}

// allowWrite consumes one write-class operation against the legacy
// countdown.
func (f *FaultFS) allowWrite(class OpClass) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.WriteOps++
	if f.countdown < 0 {
		return nil
	}
	if f.countdown > 1 {
		f.countdown--
		return nil
	}
	f.countdown = 1 // stay tripped
	if !f.tripped {
		f.tripped = true
		f.trippedBy = class
	}
	return ErrInjected
}

// scheduleErr consumes one operation of class against the schedule and
// returns an error if a FaultError rule fires. Only FaultError rules
// apply to the metadata classes (sync, truncate, remove, rename); data
// faults (torn, partial, flips) are handled inline by faultFile.
func (f *FaultFS) scheduleErr(class OpClass) error {
	s := f.sched()
	if s == nil {
		return nil
	}
	r, n, hit := s.step(class)
	if !hit || r.Kind != FaultError {
		return nil
	}
	f.trip(class)
	s.record(Injection{OpIndex: n, Class: class, Kind: r.Kind})
	return injectedErr(class, n, r.Heal > 0)
}

// Open implements FS.
func (f *FaultFS) Open(name string) (File, error) {
	file, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: file, fs: f, name: name}, nil
}

// Create implements FS.
func (f *FaultFS) Create(name string) (File, error) {
	file, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: file, fs: f, name: name}, nil
}

// Remove implements FS.
func (f *FaultFS) Remove(name string) error {
	if err := f.allowWrite(OpRemove); err != nil {
		return err
	}
	if err := f.scheduleErr(OpRemove); err != nil {
		return err
	}
	return f.inner.Remove(name)
}

// Rename implements FS.
func (f *FaultFS) Rename(oldName, newName string) error {
	if err := f.allowWrite(OpRename); err != nil {
		return err
	}
	if err := f.scheduleErr(OpRename); err != nil {
		return err
	}
	return f.inner.Rename(oldName, newName)
}

// List implements FS.
func (f *FaultFS) List() ([]string, error) { return f.inner.List() }

// Stats implements FS.
func (f *FaultFS) Stats() *Stats { return f.inner.Stats() }

type faultFile struct {
	f    File
	fs   *FaultFS
	name string
}

func (ff *faultFile) ReadAt(p []byte, off int64) (int, error) {
	s := ff.fs.sched()
	if s == nil {
		return ff.f.ReadAt(p, off)
	}
	r, opIdx, hit := s.step(OpRead)
	if !hit {
		return ff.f.ReadAt(p, off)
	}
	switch r.Kind {
	case FaultError:
		ff.fs.trip(OpRead)
		s.record(Injection{OpIndex: opIdx, Class: OpRead, Kind: r.Kind, File: ff.name, Off: off, Len: len(p)})
		return 0, injectedErr(OpRead, opIdx, r.Heal > 0)
	case FaultFlipRead:
		n, err := ff.f.ReadAt(p, off)
		if err != nil || n == 0 {
			return n, err
		}
		bo, bit := s.flipPos(opIdx, n)
		p[bo] ^= 1 << bit
		ff.fs.trip(OpRead)
		s.record(Injection{OpIndex: opIdx, Class: OpRead, Kind: r.Kind, File: ff.name, Off: off + int64(bo), Len: 1, Bit: bit})
		return n, nil
	default:
		// Write-path kinds make no sense on reads; pass through.
		return ff.f.ReadAt(p, off)
	}
}

func (ff *faultFile) WriteAt(p []byte, off int64) (int, error) {
	if err := ff.fs.allowWrite(OpWrite); err != nil {
		return 0, err
	}
	s := ff.fs.sched()
	if s == nil {
		return ff.f.WriteAt(p, off)
	}
	r, opIdx, hit := s.step(OpWrite)
	if !hit {
		return ff.f.WriteAt(p, off)
	}
	switch r.Kind {
	case FaultError:
		ff.fs.trip(OpWrite)
		s.record(Injection{OpIndex: opIdx, Class: OpWrite, Kind: r.Kind, File: ff.name, Off: off, Len: len(p)})
		return 0, injectedErr(OpWrite, opIdx, r.Heal > 0)
	case FaultTorn:
		// Persist a prefix, report complete success: silent corruption.
		k := s.tornPrefix(opIdx, len(p))
		if k > 0 {
			if _, err := ff.f.WriteAt(p[:k], off); err != nil {
				return 0, err
			}
		}
		ff.fs.trip(OpWrite)
		s.record(Injection{OpIndex: opIdx, Class: OpWrite, Kind: r.Kind, File: ff.name, Off: off, Len: k})
		return len(p), nil
	case FaultPartial:
		// Persist a prefix, report the short count with a transient
		// error, like an interrupted write syscall.
		k := s.tornPrefix(opIdx, len(p))
		if k > 0 {
			if _, err := ff.f.WriteAt(p[:k], off); err != nil {
				return 0, err
			}
		}
		ff.fs.trip(OpWrite)
		s.record(Injection{OpIndex: opIdx, Class: OpWrite, Kind: r.Kind, File: ff.name, Off: off, Len: k})
		return k, injectedErr(OpWrite, opIdx, true)
	case FaultFlipAtRest:
		// The write succeeds, then one stored bit rots.
		n, err := ff.f.WriteAt(p, off)
		if err != nil {
			return n, err
		}
		bo, bit := s.flipPos(opIdx, len(p))
		var b [1]byte
		if _, err := ff.f.ReadAt(b[:], off+int64(bo)); err != nil {
			return n, nil
		}
		b[0] ^= 1 << bit
		if _, err := ff.f.WriteAt(b[:], off+int64(bo)); err != nil {
			return n, nil
		}
		ff.fs.trip(OpWrite)
		s.record(Injection{OpIndex: opIdx, Class: OpWrite, Kind: r.Kind, File: ff.name, Off: off + int64(bo), Len: 1, Bit: bit})
		return n, nil
	default:
		return ff.f.WriteAt(p, off)
	}
}

func (ff *faultFile) Size() (int64, error) { return ff.f.Size() }

func (ff *faultFile) Truncate(size int64) error {
	if err := ff.fs.allowWrite(OpTruncate); err != nil {
		return err
	}
	if err := ff.fs.scheduleErr(OpTruncate); err != nil {
		return err
	}
	return ff.f.Truncate(size)
}

func (ff *faultFile) Sync() error {
	if err := ff.fs.allowWrite(OpSync); err != nil {
		return err
	}
	if err := ff.fs.scheduleErr(OpSync); err != nil {
		return err
	}
	return ff.f.Sync()
}

func (ff *faultFile) Close() error { return ff.f.Close() }

// CrashFS wraps a filesystem and models power loss: writes reach the
// live file immediately, but only the content present at the last Sync
// of a file survives Crash(). This is the tool for testing the
// durability window of deferred commit protocols — records appended
// but never synced must vanish at the crash, exactly as they would on
// real hardware. Metadata operations (Remove, Rename) are modeled as
// immediately durable.
type CrashFS struct {
	inner FS

	mu      sync.Mutex
	durable map[string][]byte // per-file image as of its last Sync
	seen    map[string]bool   // every file opened or created through us
}

// NewCrashFS wraps fs with power-loss simulation.
func NewCrashFS(fs FS) *CrashFS {
	return &CrashFS{inner: fs, durable: map[string][]byte{}, seen: map[string]bool{}}
}

// Crash reverts every file to its last synced image (files never synced
// become empty). The filesystem keeps working afterwards, so a test can
// reopen its structures "after the power returns".
func (c *CrashFS) Crash() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for name := range c.seen {
		f, err := c.inner.Open(name)
		if errors.Is(err, ErrNotExist) {
			continue
		}
		if err != nil {
			return err
		}
		img := c.durable[name]
		if err := f.Truncate(int64(len(img))); err != nil {
			f.Close()
			return err
		}
		if len(img) > 0 {
			if _, err := f.WriteAt(img, 0); err != nil {
				f.Close()
				return err
			}
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

func (c *CrashFS) track(name string) {
	c.mu.Lock()
	c.seen[name] = true
	c.mu.Unlock()
}

// snapshot records a file's content as durable (called under no locks
// but serialized by the caller's Sync).
func (c *CrashFS) snapshot(name string, f File) error {
	size, err := f.Size()
	if err != nil {
		return err
	}
	img := make([]byte, size)
	if size > 0 {
		if _, err := f.ReadAt(img, 0); err != nil {
			return err
		}
	}
	c.mu.Lock()
	c.durable[name] = img
	c.mu.Unlock()
	return nil
}

// Open implements FS.
func (c *CrashFS) Open(name string) (File, error) {
	f, err := c.inner.Open(name)
	if err != nil {
		return nil, err
	}
	c.track(name)
	return &crashFile{f: f, fs: c, name: name}, nil
}

// Create implements FS.
func (c *CrashFS) Create(name string) (File, error) {
	f, err := c.inner.Create(name)
	if err != nil {
		return nil, err
	}
	c.track(name)
	return &crashFile{f: f, fs: c, name: name}, nil
}

// Remove implements FS.
func (c *CrashFS) Remove(name string) error {
	c.mu.Lock()
	delete(c.durable, name)
	delete(c.seen, name)
	c.mu.Unlock()
	return c.inner.Remove(name)
}

// Rename implements FS.
func (c *CrashFS) Rename(oldName, newName string) error {
	if err := c.inner.Rename(oldName, newName); err != nil {
		return err
	}
	c.mu.Lock()
	if img, ok := c.durable[oldName]; ok {
		c.durable[newName] = img
		delete(c.durable, oldName)
	}
	if c.seen[oldName] {
		c.seen[newName] = true
		delete(c.seen, oldName)
	}
	c.mu.Unlock()
	return nil
}

// List implements FS.
func (c *CrashFS) List() ([]string, error) { return c.inner.List() }

// Stats implements FS.
func (c *CrashFS) Stats() *Stats { return c.inner.Stats() }

type crashFile struct {
	f    File
	fs   *CrashFS
	name string
}

func (cf *crashFile) ReadAt(p []byte, off int64) (int, error)  { return cf.f.ReadAt(p, off) }
func (cf *crashFile) WriteAt(p []byte, off int64) (int, error) { return cf.f.WriteAt(p, off) }
func (cf *crashFile) Size() (int64, error)                     { return cf.f.Size() }
func (cf *crashFile) Truncate(size int64) error                { return cf.f.Truncate(size) }

func (cf *crashFile) Sync() error {
	if err := cf.f.Sync(); err != nil {
		return err
	}
	return cf.fs.snapshot(cf.name, cf.f)
}

func (cf *crashFile) Close() error { return cf.f.Close() }
