package osal

import (
	"errors"
	"sync"
)

// ErrInjected is the error returned by FaultFS-triggered failures.
var ErrInjected = errors.New("osal: injected fault")

// FaultFS wraps a filesystem and injects failures, for exercising error
// paths and crash windows in the storage and transaction layers. The
// countdown counts write-class operations (WriteAt, Sync, Truncate)
// across all files: when it reaches zero, that operation and every
// subsequent write-class operation fail until the countdown is reset.
// Reads always succeed (a crashed write does not damage reads here;
// torn-write simulation is done by truncating files directly).
type FaultFS struct {
	inner FS

	mu        sync.Mutex
	countdown int64 // -1 = disarmed
	tripped   bool
	// WriteOps counts write-class operations observed, for planning
	// fault points.
	WriteOps int64
}

// NewFaultFS wraps fs with fault injection disarmed.
func NewFaultFS(fs FS) *FaultFS {
	return &FaultFS{inner: fs, countdown: -1}
}

// FailAfter arms the injector: the n-th write-class operation from now
// (1-based) and all later ones fail.
func (f *FaultFS) FailAfter(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.countdown = n
	f.tripped = false
}

// Disarm stops injecting failures.
func (f *FaultFS) Disarm() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.countdown = -1
	f.tripped = false
}

// Tripped reports whether a fault has fired since the last arm/disarm.
func (f *FaultFS) Tripped() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.tripped
}

// allowWrite consumes one write-class operation.
func (f *FaultFS) allowWrite() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.WriteOps++
	if f.countdown < 0 {
		return nil
	}
	if f.countdown > 1 {
		f.countdown--
		return nil
	}
	f.countdown = 1 // stay tripped
	f.tripped = true
	return ErrInjected
}

// Open implements FS.
func (f *FaultFS) Open(name string) (File, error) {
	file, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: file, fs: f}, nil
}

// Create implements FS.
func (f *FaultFS) Create(name string) (File, error) {
	file, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: file, fs: f}, nil
}

// Remove implements FS.
func (f *FaultFS) Remove(name string) error {
	if err := f.allowWrite(); err != nil {
		return err
	}
	return f.inner.Remove(name)
}

// Rename implements FS.
func (f *FaultFS) Rename(oldName, newName string) error {
	if err := f.allowWrite(); err != nil {
		return err
	}
	return f.inner.Rename(oldName, newName)
}

// List implements FS.
func (f *FaultFS) List() ([]string, error) { return f.inner.List() }

// Stats implements FS.
func (f *FaultFS) Stats() *Stats { return f.inner.Stats() }

type faultFile struct {
	f  File
	fs *FaultFS
}

func (ff *faultFile) ReadAt(p []byte, off int64) (int, error) { return ff.f.ReadAt(p, off) }

func (ff *faultFile) WriteAt(p []byte, off int64) (int, error) {
	if err := ff.fs.allowWrite(); err != nil {
		return 0, err
	}
	return ff.f.WriteAt(p, off)
}

func (ff *faultFile) Size() (int64, error) { return ff.f.Size() }

func (ff *faultFile) Truncate(size int64) error {
	if err := ff.fs.allowWrite(); err != nil {
		return err
	}
	return ff.f.Truncate(size)
}

func (ff *faultFile) Sync() error {
	if err := ff.fs.allowWrite(); err != nil {
		return err
	}
	return ff.f.Sync()
}

func (ff *faultFile) Close() error { return ff.f.Close() }
