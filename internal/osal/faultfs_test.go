package osal

import (
	"errors"
	"testing"
)

func TestFaultFSDisarmedPassesThrough(t *testing.T) {
	fs := NewFaultFS(NewMemFS())
	f, err := fs.Create("x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("ok"), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if fs.Tripped() {
		t.Fatal("tripped while disarmed")
	}
	if fs.WriteOps != 2 {
		t.Fatalf("WriteOps = %d", fs.WriteOps)
	}
}

func TestFaultFSFailsAtCountdown(t *testing.T) {
	fs := NewFaultFS(NewMemFS())
	f, _ := fs.Create("x")
	fs.FailAfter(3)
	if _, err := f.WriteAt([]byte("1"), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("2"), 1); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("3"), 2); !errors.Is(err, ErrInjected) {
		t.Fatalf("third write = %v, want ErrInjected", err)
	}
	// Stays failed until disarmed.
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync after trip = %v", err)
	}
	if !fs.Tripped() {
		t.Fatal("not reported as tripped")
	}
	fs.Disarm()
	if _, err := f.WriteAt([]byte("4"), 3); err != nil {
		t.Fatalf("write after disarm: %v", err)
	}
	// Reads never fail.
	fs.FailAfter(1)
	if _, err := f.ReadAt(make([]byte, 1), 0); err != nil {
		t.Fatalf("read while armed: %v", err)
	}
}

func TestFaultFSCoversAllWriteOps(t *testing.T) {
	fs := NewFaultFS(NewMemFS())
	f, _ := fs.Create("x")
	f.WriteAt([]byte("data"), 0)
	cases := []func() error{
		func() error { return f.Truncate(1) },
		func() error { return f.Sync() },
		func() error { return fs.Remove("x") },
		func() error { return fs.Rename("x", "y") },
	}
	for i, op := range cases {
		fs.FailAfter(1)
		if err := op(); !errors.Is(err, ErrInjected) {
			t.Errorf("case %d = %v, want ErrInjected", i, err)
		}
		fs.Disarm()
	}
}
