package composer

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"famedb/internal/access"
	"famedb/internal/osal"
	"famedb/internal/trace"
)

func TestTraceNotComposedErrors(t *testing.T) {
	inst, err := ComposeProduct(Options{}, "Linux", "BPlusTree", "Put", "Get")
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	if inst.Tracer() != nil {
		t.Fatal("product without Tracing has a tracer")
	}
	if _, err := inst.Trace(); !errors.Is(err, access.ErrNotComposed) {
		t.Fatalf("Trace() = %v, want ErrNotComposed", err)
	}
	if err := inst.SetTracing(true); !errors.Is(err, access.ErrNotComposed) {
		t.Fatalf("SetTracing() = %v, want ErrNotComposed", err)
	}
}

// TestTracePutDecomposesAcrossLayers is the acceptance scenario: with a
// cache too small to hold the working set, one put's span tree reaches
// from the access layer down to the pager.
func TestTracePutDecomposesAcrossLayers(t *testing.T) {
	inst, err := ComposeProduct(Options{CachePages: 2},
		"Linux", "BPlusTree", "BufferManager", "LRU", "DynamicAlloc",
		"Put", "Get", "Tracing")
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()

	// Grow the tree past the cache so later puts fault pages back in.
	value := make([]byte, 256)
	for i := 0; i < 64; i++ {
		if err := inst.Store.Put([]byte(fmt.Sprintf("warm%04d", i)), value); err != nil {
			t.Fatal(err)
		}
	}
	// The measured put: a fresh tree in the snapshot.
	if err := inst.Store.Put([]byte("probe"), value); err != nil {
		t.Fatal(err)
	}

	snap, err := inst.Trace()
	if err != nil {
		t.Fatal(err)
	}
	trees := snap.Trees()
	var probe *trace.Tree
	for i := range trees {
		if trees[i].Root.Layer == trace.LayerAccess && trees[i].Root.Op == "put" {
			probe = &trees[i] // keep the newest access.put tree
		}
	}
	if probe == nil {
		t.Fatal("no access.put root span recorded")
	}
	layers := map[string]bool{probe.Root.Layer: true}
	for _, r := range probe.Spans {
		if r.Root != probe.Root.ID {
			t.Fatalf("span %d grouped under root %d, want %d", r.ID, r.Root, probe.Root.ID)
		}
		layers[r.Layer] = true
	}
	for _, want := range []string{trace.LayerAccess, trace.LayerBTree, trace.LayerBuffer, trace.LayerPager} {
		if !layers[want] {
			t.Fatalf("put tree misses layer %q; got %v (%d spans)", want, layers, len(probe.Spans))
		}
	}
	if len(layers) < 4 {
		t.Fatalf("put decomposed into %d layers, want >= 4", len(layers))
	}
}

func TestTraceStatsBridge(t *testing.T) {
	inst, err := ComposeProduct(Options{TraceSpans: 64},
		"Linux", "BPlusTree", "Put", "Get", "Statistics", "Tracing")
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	for i := 0; i < 300; i++ {
		if err := inst.Store.Put([]byte(fmt.Sprintf("k%04d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := inst.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Trace.RingCapacity != 64 {
		t.Fatalf("ring capacity gauge = %d, want 64", snap.Trace.RingCapacity)
	}
	if snap.Trace.RingOccupancy != 64 || snap.Trace.DroppedSpans == 0 {
		t.Fatalf("occupancy=%d dropped=%d, want full ring with drops",
			snap.Trace.RingOccupancy, snap.Trace.DroppedSpans)
	}
	// The bridge also stamps histogram buckets onto recorded spans.
	tsnap, err := inst.Trace()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tsnap.Spans {
		if r.Bucket < 0 {
			t.Fatalf("span %d bucket = %d, want bridged bucket >= 0", r.ID, r.Bucket)
		}
	}
}

// TestTraceRaceStress drives 16 committers through the sharded buffer
// and the group-commit pipeline with tracing on (run under -race in
// CI): every commit span must carry its own transaction's ID, follower
// handoffs must name a real leader, and the ring must have evicted
// strictly oldest-first.
func TestTraceRaceStress(t *testing.T) {
	// The ring holds the whole commit phase, so follower spans cannot be
	// evicted before the attribution checks; a later get phase overflows
	// it for the eviction check. Syncs are slowed so the leader's fsync
	// opens a batching window — on an instant MemFS every commit drains
	// alone and no follower handoffs would form.
	fs := osal.NewDelayFS(osal.NewMemFS(), 0, 200*time.Microsecond)
	inst, err := ComposeProduct(Options{FS: fs, TraceSpans: 16384, GroupCommitBatch: 8},
		"Linux", "BPlusTree", "BufferManager", "LRU", "DynamicAlloc",
		"ShardedBuffer", "Put", "Get", "Transaction", "GroupCommit",
		"Locking", "Statistics", "Tracing")
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()

	const workers = 16
	const txPerWorker = 40
	var mu sync.Mutex
	committed := map[uint64]bool{} // every txn ID any worker committed
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < txPerWorker; i++ {
				tx := inst.Txn.Begin()
				id := tx.ID()
				key := fmt.Sprintf("w%02d-k%04d", w, i)
				if err := tx.Put([]byte(key), []byte("v")); err != nil {
					errs <- err
					return
				}
				if err := tx.Commit(); err != nil {
					errs <- err
					return
				}
				mu.Lock()
				committed[id] = true
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := inst.Txn.Flush(); err != nil {
		t.Fatal(err)
	}

	snap, err := inst.Trace()
	if err != nil {
		t.Fatal(err)
	}
	var commitSpans, followerSpans int
	for _, r := range snap.Spans {
		if r.Layer != trace.LayerTxn {
			continue
		}
		switch r.Op {
		case "commit":
			commitSpans++
			if !committed[r.Txn] {
				t.Fatalf("commit span names txn %d, which no worker committed", r.Txn)
			}
		case "follower-wait":
			followerSpans++
			if !committed[r.Txn] {
				t.Fatalf("follower span names txn %d, which no worker committed", r.Txn)
			}
			if r.Batch < 1 || !committed[r.Leader] {
				t.Fatalf("follower handoff batch=%d leader=%d invalid", r.Batch, r.Leader)
			}
			if r.Leader == r.Txn {
				t.Fatalf("follower span %d claims to be its own leader", r.ID)
			}
		case "drain":
			if r.Batch < 1 {
				t.Fatalf("drain span batch = %d", r.Batch)
			}
		}
	}
	if commitSpans == 0 {
		t.Fatal("no commit spans survived in the ring")
	}
	if followerSpans == 0 {
		t.Fatal("no follower-wait spans recorded despite 16 concurrent committers")
	}

	// Phase 2: concurrent reads until the ring has wrapped, then check
	// eviction was strictly oldest-first — the surviving seqs are the
	// newest `capacity` tickets, ascending and contiguous.
	for {
		capacity, _, recorded, _, _, _ := inst.Tracer().RingStats()
		if recorded > uint64(capacity) {
			break
		}
		var rwg sync.WaitGroup
		for w := 0; w < workers; w++ {
			rwg.Add(1)
			go func(w int) {
				defer rwg.Done()
				for i := 0; i < 100; i++ {
					key := fmt.Sprintf("w%02d-k%04d", w, i%txPerWorker)
					if _, err := inst.Store.Get([]byte(key)); err != nil {
						t.Error(err)
						return
					}
				}
			}(w)
		}
		rwg.Wait()
		if t.Failed() {
			t.FailNow()
		}
	}
	snap, err = inst.Trace()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Spans) != snap.Capacity {
		t.Fatalf("snapshot holds %d spans, want full ring of %d", len(snap.Spans), snap.Capacity)
	}
	first := snap.Recorded - uint64(snap.Capacity)
	for i, r := range snap.Spans {
		if want := first + uint64(i); r.Seq != want {
			t.Fatalf("spans[%d].Seq = %d, want %d (oldest-first eviction violated)", i, r.Seq, want)
		}
	}
}
