package composer

import (
	"errors"
	"fmt"
	"testing"

	"famedb/internal/osal"
)

// txnFeatures is a transactional product with Recovery.
var txnFeatures = []string{
	"Linux", "BPlusTree", "BufferManager", "LRU", "DynamicAlloc",
	"Put", "Get", "Transaction", "ForceCommit", "Recovery",
}

// commitN commits n keyed writes through the instance.
func commitN(t *testing.T, inst *Instance, prefix string, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		tx := inst.Txn.Begin()
		if err := tx.Put([]byte(fmt.Sprintf("%s%03d", prefix, i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
}

// expectAll verifies the committed keys are visible.
func expectAll(t *testing.T, inst *Instance, prefix string, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("%s%03d", prefix, i)
		if _, err := inst.Store.Get([]byte(k)); err != nil {
			t.Fatalf("key %s lost: %v", k, err)
		}
	}
}

// TestCheckpointFaultWindows arms a fault at every write operation
// inside Checkpoint in turn; after each failed checkpoint a recomposed
// instance must still hold every committed record (old checkpoint
// image + full journal replay).
func TestCheckpointFaultWindows(t *testing.T) {
	// First, count how many write ops a successful checkpoint needs, so
	// the sweep covers every window.
	probeFS := osal.NewFaultFS(osal.NewMemFS())
	inst, err := ComposeProduct(Options{FS: probeFS}, txnFeatures...)
	if err != nil {
		t.Fatal(err)
	}
	commitN(t, inst, "k", 5)
	before := probeFS.WriteOps
	if err := inst.Txn.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	windows := probeFS.WriteOps - before
	if windows < 3 {
		t.Fatalf("checkpoint took only %d write ops; sweep pointless", windows)
	}
	inst.Close()

	for w := int64(1); w <= windows; w++ {
		t.Run(fmt.Sprintf("fault-at-op-%d", w), func(t *testing.T) {
			fs := osal.NewFaultFS(osal.NewMemFS())
			inst, err := ComposeProduct(Options{FS: fs}, txnFeatures...)
			if err != nil {
				t.Fatal(err)
			}
			commitN(t, inst, "k", 5)
			fs.FailAfter(w)
			err = inst.Txn.Checkpoint()
			fs.Disarm()
			if err == nil {
				// Some window ops may be reads in this run; a clean
				// checkpoint is fine — data must still be there.
				t.Log("checkpoint survived (window was not a write)")
			} else if !errors.Is(err, osal.ErrInjected) {
				t.Fatalf("checkpoint failed with foreign error: %v", err)
			}
			// Crash now (no Close); recompose and verify.
			inst2, err := ComposeProduct(Options{FS: fs}, txnFeatures...)
			if err != nil {
				t.Fatalf("recompose after faulted checkpoint: %v", err)
			}
			defer inst2.Close()
			expectAll(t, inst2, "k", 5)
		})
	}
}

// TestCommitFaultThenRecovery: a commit that fails mid-journal is
// invisible after recomposition; earlier commits survive.
func TestCommitFaultThenRecovery(t *testing.T) {
	fs := osal.NewFaultFS(osal.NewMemFS())
	inst, err := ComposeProduct(Options{FS: fs}, txnFeatures...)
	if err != nil {
		t.Fatal(err)
	}
	commitN(t, inst, "good", 3)
	fs.FailAfter(1)
	tx := inst.Txn.Begin()
	tx.Put([]byte("doomed"), []byte("v"))
	if err := tx.Commit(); !errors.Is(err, osal.ErrInjected) {
		t.Fatalf("Commit = %v", err)
	}
	fs.Disarm()

	inst2, err := ComposeProduct(Options{FS: fs}, txnFeatures...)
	if err != nil {
		t.Fatal(err)
	}
	defer inst2.Close()
	expectAll(t, inst2, "good", 3)
	if _, err := inst2.Store.Get([]byte("doomed")); err == nil {
		t.Fatal("failed commit resurrected by recovery")
	}
}

// TestRepeatedCrashRecoverCycles: commit, crash, recover, repeat — the
// instance accumulates all committed data across many generations.
func TestRepeatedCrashRecoverCycles(t *testing.T) {
	fs := osal.NewMemFS()
	const gens = 6
	for g := 0; g < gens; g++ {
		inst, err := ComposeProduct(Options{FS: fs}, txnFeatures...)
		if err != nil {
			t.Fatalf("gen %d: %v", g, err)
		}
		commitN(t, inst, fmt.Sprintf("g%d-", g), 4)
		if g%2 == 0 {
			// Even generations checkpoint before crashing.
			if err := inst.Txn.Checkpoint(); err != nil {
				t.Fatalf("gen %d checkpoint: %v", g, err)
			}
		}
		// Crash: never Close.
	}
	final, err := ComposeProduct(Options{FS: fs}, txnFeatures...)
	if err != nil {
		t.Fatal(err)
	}
	defer final.Close()
	for g := 0; g < gens; g++ {
		expectAll(t, final, fmt.Sprintf("g%d-", g), 4)
	}
	n, _ := final.Store.Len()
	if n != gens*4 {
		t.Fatalf("Len = %d, want %d", n, gens*4)
	}
}
