package composer

import (
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"famedb/internal/access"
	"famedb/internal/repl"
)

// serverFeatures is the canonical network product: the concurrent
// transactional stack, WAL shipping, and the TCP front end.
var serverFeatures = []string{
	"Linux", "BPlusTree", "BufferManager", "LRU", "DynamicAlloc",
	"Put", "Get", "Update", "Remove",
	"Transaction", "GroupCommit", "Locking", "Recovery",
	"Statistics", "Replication", "Server",
}

func TestComposeServerReplication(t *testing.T) {
	primary, err := ComposeProduct(Options{}, serverFeatures...)
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	if primary.Shipper() == nil {
		t.Fatal("Replication product has no shipper")
	}
	srv, err := primary.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	replica, err := ComposeProduct(Options{}, serverFeatures...)
	if err != nil {
		t.Fatal(err)
	}
	defer replica.Close()
	rep, err := replica.ReplicateFrom(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Stop()

	for i := 0; i < 25; i++ {
		tx := primary.Txn.Begin()
		tx.Put(fmt.Appendf(nil, "k%02d", i), fmt.Appendf(nil, "v%02d", i))
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if !rep.WaitFor(primary.Txn.WALEnd(), 10*time.Second) {
		t.Fatalf("replica stuck at %d of %d", rep.Offset(), primary.Txn.WALEnd())
	}
	if err := repl.VerifyIndexes(primary.Store.Index(), replica.Store.Index()); err != nil {
		t.Fatalf("replicated index verify: %v", err)
	}
	if v, err := replica.Store.Get([]byte("k07")); err != nil || string(v) != "v07" {
		t.Fatalf("replica read = %q, %v", v, err)
	}

	snap, err := primary.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Repl.ShippedChunks == 0 || snap.Repl.Connected != 1 {
		t.Fatalf("repl stats not wired: %+v", snap.Repl)
	}
}

func TestServerReplicationGating(t *testing.T) {
	// Without the features, the accessors refuse with ErrNotComposed
	// (feature-oriented gating, like Stats/Trace/Monitor).
	inst, err := ComposeProduct(Options{}, mvccFeatures...)
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	if inst.Shipper() != nil {
		t.Fatal("Shipper composed without the Replication feature")
	}
	if _, err := inst.ShipApplier(); !errors.Is(err, access.ErrNotComposed) {
		t.Fatalf("ShipApplier = %v, want ErrNotComposed", err)
	}
	if _, err := inst.Serve("127.0.0.1:0"); !errors.Is(err, access.ErrNotComposed) {
		t.Fatalf("Serve = %v, want ErrNotComposed", err)
	}
	if _, err := inst.ReplicateFrom("127.0.0.1:1"); !errors.Is(err, access.ErrNotComposed) {
		t.Fatalf("ReplicateFrom = %v, want ErrNotComposed", err)
	}
}

func TestServerClosesWithInstance(t *testing.T) {
	inst, err := ComposeProduct(Options{}, serverFeatures...)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := inst.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	if err := inst.Close(); err != nil {
		t.Fatal(err)
	}
	// The listener must be gone: Close owns Server-feature listeners.
	if c, err := net.DialTimeout("tcp", addr, time.Second); err == nil {
		c.Close()
		t.Fatal("server still accepting after instance Close")
	}
}
