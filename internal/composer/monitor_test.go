package composer

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"famedb/internal/access"
	"famedb/internal/monitor"
	"famedb/internal/osal"
	"famedb/internal/stats"
	"famedb/internal/storage"
)

// monitorFeatures is a group-commit product with live monitoring: the
// deployment the ROADMAP's network-server item is heading toward.
var monitorFeatures = []string{
	"Linux", "BPlusTree", "BTreeUpdate", "BTreeRemove",
	"BufferManager", "LRU", "DynamicAlloc",
	"Put", "Get", "Remove", "Update",
	"Transaction", "GroupCommit", "Locking",
	"Statistics", "Monitor",
}

func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body)
}

func TestComposeMonitorRequiresStatistics(t *testing.T) {
	// Selecting Monitor alone must pull Statistics in by propagation.
	inst, err := ComposeProduct(Options{}, "Linux", "BPlusTree", "Put", "Get", "Monitor")
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	if !inst.Configuration.Has("Statistics") {
		t.Fatal("Monitor did not pull in Statistics")
	}
	if inst.Monitor() == nil {
		t.Fatal("Monitor feature selected but no monitor composed")
	}
	if _, err := inst.MonitorWindow(); err != nil {
		t.Fatal(err)
	}
}

func TestMonitorNotComposed(t *testing.T) {
	inst, err := ComposeProduct(Options{}, "Linux", "BPlusTree", "Put", "Get", "Statistics")
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	if inst.Monitor() != nil {
		t.Fatal("monitor composed without the Monitor feature")
	}
	if _, err := inst.MonitorWindow(); !errors.Is(err, access.ErrNotComposed) {
		t.Fatalf("MonitorWindow = %v, want ErrNotComposed", err)
	}
	if _, _, err := inst.MonitorEvents(); !errors.Is(err, access.ErrNotComposed) {
		t.Fatalf("MonitorEvents = %v, want ErrNotComposed", err)
	}
	if _, err := inst.ServeMonitor("127.0.0.1:0"); !errors.Is(err, access.ErrNotComposed) {
		t.Fatalf("ServeMonitor = %v, want ErrNotComposed", err)
	}
}

// TestMonitorEndpointLive is the acceptance-criteria scrape: a live
// telemetry endpoint over a real composed product. /metrics must be
// well-formed Prometheus exposition, /varz must carry the product's
// features and a fresh window, /healthz reads 200 while healthy.
func TestMonitorEndpointLive(t *testing.T) {
	inst, err := ComposeProduct(Options{
		MonitorInterval: time.Hour, // sampling driven by /varz ticks
	}, monitorFeatures...)
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()

	for i := 0; i < 50; i++ {
		k := fmt.Sprintf("key-%04d", i)
		if err := inst.Store.Put([]byte(k), []byte("value of "+k)); err != nil {
			t.Fatal(err)
		}
		if _, err := inst.Store.Get([]byte(k)); err != nil {
			t.Fatal(err)
		}
	}

	srv, err := inst.ServeMonitor("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	if code, body := httpGet(t, srv.URL()+"/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q, want 200 ok", code, body)
	}

	code, body := httpGet(t, srv.URL()+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	parsePrometheus(t, body)
	for _, want := range []string{
		"famedb_access_get_latency_ns_bucket", "famedb_txn_commits_total",
		"famedb_monitor_ticks_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}

	code, body = httpGet(t, srv.URL()+"/varz")
	if code != 200 {
		t.Fatalf("/varz = %d", code)
	}
	var v monitor.Varz
	if err := json.Unmarshal([]byte(body), &v); err != nil {
		t.Fatalf("/varz is not JSON: %v\n%s", err, body)
	}
	hasMonitor := false
	for _, f := range v.Features {
		if f == "Monitor" {
			hasMonitor = true
		}
	}
	if !hasMonitor {
		t.Errorf("/varz features = %v, missing Monitor", v.Features)
	}
	if v.Window.Samples == 0 {
		t.Errorf("/varz window has no samples: %+v", v.Window)
	}
	// The 50 puts and gets above landed inside the first window.
	if v.Window.PutsPerSec <= 0 || v.Window.GetsPerSec <= 0 {
		t.Errorf("window rates = %+v, want positive put/get rates", v.Window)
	}
}

// parsePrometheus asserts the exposition format line by line: samples
// are `name[{labels}] value` and every sample has TYPE metadata.
func parsePrometheus(t *testing.T, body string) {
	t.Helper()
	typed := map[string]bool{}
	samples := 0
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		switch {
		case line == "":
		case strings.HasPrefix(line, "# TYPE "):
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			typed[f[2]] = true
		case strings.HasPrefix(line, "#"):
		default:
			f := strings.Fields(line)
			if len(f) != 2 {
				t.Fatalf("malformed sample line: %q", line)
			}
			var val float64
			if _, err := fmt.Sscanf(f[1], "%g", &val); err != nil {
				t.Fatalf("non-numeric value in %q: %v", line, err)
			}
			name := f[0]
			if i := strings.IndexByte(name, '{'); i >= 0 {
				name = name[:i]
			}
			base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(
				name, "_bucket"), "_sum"), "_count")
			if !typed[name] && !typed[base] {
				t.Fatalf("sample %q has no TYPE metadata", name)
			}
			samples++
		}
	}
	if samples == 0 {
		t.Fatal("no samples in exposition")
	}
}

// TestMonitorDegradedAlert drives the engine into degraded mode via
// transient-fault exhaustion (the osal fault schedule) and asserts the
// full observability chain: the watchdog's degraded rule fires into the
// event log and the OnAlert hook, and /healthz flips to 503 with the
// poison reason.
func TestMonitorDegradedAlert(t *testing.T) {
	ffs := osal.NewFaultFS(osal.NewMemFS())
	var hookMu sync.Mutex
	var hooked []monitor.Event
	inst, err := ComposeProduct(Options{
		FS:              ffs,
		CachePages:      4,
		Retry:           storage.RetryPolicy{Attempts: 2, Sleep: func(time.Duration) {}},
		MonitorInterval: time.Hour, // tick manually for determinism
		MonitorOnAlert: func(e monitor.Event) {
			hookMu.Lock()
			hooked = append(hooked, e)
			hookMu.Unlock()
		},
	}, monitorFeatures...)
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()

	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("key-%04d", i)
		if err := inst.Store.Put([]byte(k), []byte("value of "+k)); err != nil {
			t.Fatal(err)
		}
	}
	if err := inst.Sync(); err != nil {
		t.Fatal(err)
	}

	srv, err := inst.ServeMonitor("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if code, _ := httpGet(t, srv.URL()+"/healthz"); code != 200 {
		t.Fatalf("healthy /healthz = %d", code)
	}

	// Every device write fails transiently from here on; flushing until
	// the retry budget runs out poisons the health latch.
	sched := osal.NewSchedule(7)
	sched.Add(osal.Rule{Class: osal.OpWrite, At: 1, Kind: osal.FaultError, Heal: 1 << 30})
	ffs.SetSchedule(sched)
	for i := 0; !inst.Degraded() && i < 100; i++ {
		inst.Store.Put([]byte(fmt.Sprintf("w-%d", i)), []byte("x"))
		inst.Sync()
	}
	if !inst.Degraded() {
		t.Fatal("retry exhaustion did not degrade the engine")
	}

	// The next sample sees the latch; the watchdog fires.
	w, err := inst.MonitorWindow()
	if err != nil {
		t.Fatal(err)
	}
	if !w.Degraded || w.DegradedReason == "" {
		t.Fatalf("window = %+v, want degraded with reason", w)
	}
	events, _, err := inst.MonitorEvents()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range events {
		if e.Rule == "degraded" && e.Alert() {
			found = true
		}
	}
	if !found {
		t.Fatalf("events = %+v, want a degraded alert", events)
	}
	hookMu.Lock()
	hookFired := len(hooked) > 0 && hooked[0].Rule == "degraded"
	hookMu.Unlock()
	if !hookFired {
		t.Fatal("OnAlert hook did not see the degraded alert")
	}

	if code, body := httpGet(t, srv.URL()+"/healthz"); code != 503 ||
		!strings.Contains(body, "degraded") {
		t.Fatalf("/healthz after degrade = %d %q, want 503", code, body)
	}
}

// TestMonitorCommitStallAlert injects commit stalls with a DelayFS (the
// group-commit leader's fsync is slowed, so followers wait) and asserts
// the stall rule's alert reaches the /events endpoint — the acceptance
// criterion's injected-stall scrape.
func TestMonitorCommitStallAlert(t *testing.T) {
	fs := osal.NewDelayFS(osal.NewMemFS(), 0, 2*time.Millisecond)
	inst, err := ComposeProduct(Options{
		FS:              fs,
		MonitorInterval: time.Hour,
		MonitorRules:    monitor.Thresholds{CommitStallP99: time.Millisecond},
	}, monitorFeatures...)
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	if _, err := inst.MonitorWindow(); err != nil { // baseline sample
		t.Fatal(err)
	}

	// Concurrent committers: followers stall on the leader's delayed
	// fsync, pushing the windowed stall p99 over the 1ms threshold.
	const committers = 8
	var wg sync.WaitGroup
	for g := 0; g < committers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				tx := inst.Txn.Begin()
				k := fmt.Sprintf("key-%d-%d", g, i)
				if err := tx.Put([]byte(k), []byte("v")); err != nil {
					t.Error(err)
					return
				}
				if err := tx.Commit(); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	if _, err := inst.MonitorWindow(); err != nil { // sample the stalls
		t.Fatal(err)
	}

	srv, err := inst.ServeMonitor("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	code, body := httpGet(t, srv.URL()+"/events")
	if code != 200 {
		t.Fatalf("/events = %d", code)
	}
	var doc struct {
		Events []monitor.Event `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/events is not JSON: %v", err)
	}
	found := false
	for _, e := range doc.Events {
		if e.Rule == "commit-stall-p99" && e.Alert() {
			found = true
		}
	}
	if !found {
		t.Fatalf("/events = %s, want a commit-stall-p99 alert", body)
	}
}

// TestMonitorRaceStress runs the sampler at full speed against a
// group-commit write load with concurrent window/event readers and
// /varz scrapes — the -race satellite. The assertions are weak on
// purpose; the race detector is the judge.
func TestMonitorRaceStress(t *testing.T) {
	inst, err := ComposeProduct(Options{
		MonitorInterval: time.Millisecond,
		MonitorRules: monitor.Thresholds{
			CommitStallP99: time.Millisecond,
			HitRateFloor:   0.5,
		},
	}, monitorFeatures...)
	if err != nil {
		t.Fatal(err)
	}

	srv, err := inst.ServeMonitor("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Group-commit writers.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				tx := inst.Txn.Begin()
				tx.Put([]byte(fmt.Sprintf("k-%d-%d", g, i%256)), []byte("v"))
				if err := tx.Commit(); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	// Window and event readers alongside the sampler goroutine.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				inst.MonitorWindow()
				inst.MonitorEvents()
			}
		}()
	}
	// One HTTP scraper.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := http.Get(srv.URL() + "/varz")
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
	}()

	time.Sleep(150 * time.Millisecond)
	close(stop)
	wg.Wait()
	srv.Close()

	if m := inst.Monitor(); m.Ticks() == 0 {
		t.Error("sampler took no ticks under load")
	}
	var snap stats.Snapshot
	if snap, err = inst.Stats(); err != nil || snap.Txn.Commits == 0 {
		t.Errorf("stress produced no commits: %v %+v", err, snap.Txn)
	}
	if err := inst.Close(); err != nil {
		t.Fatal(err)
	}
}
