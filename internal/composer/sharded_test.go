package composer

import (
	"testing"
)

func TestComposeShardedBuffer(t *testing.T) {
	inst, err := ComposeProduct(Options{},
		"Linux", "BPlusTree", "BufferManager", "LRU", "DynamicAlloc",
		"ShardedBuffer", "Put", "Get")
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	if inst.CacheShards() < 2 {
		t.Fatalf("CacheShards = %d, want a striped pool", inst.CacheShards())
	}
	if err := inst.Store.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if v, err := inst.Store.Get([]byte("k")); err != nil || string(v) != "v" {
		t.Fatalf("Get = %q, %v", v, err)
	}
}

func TestComposeShardedBufferShardKnob(t *testing.T) {
	inst, err := ComposeProduct(Options{CacheShards: 4},
		"Linux", "BPlusTree", "BufferManager", "LRU", "DynamicAlloc",
		"ShardedBuffer", "Put", "Get")
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	if inst.CacheShards() != 4 {
		t.Fatalf("CacheShards = %d, want 4", inst.CacheShards())
	}
	// The knob rounds to a power of two.
	inst2, err := ComposeProduct(Options{CacheShards: 3},
		"Linux", "BPlusTree", "BufferManager", "LRU", "DynamicAlloc",
		"ShardedBuffer", "Put", "Get")
	if err != nil {
		t.Fatal(err)
	}
	defer inst2.Close()
	if inst2.CacheShards() != 4 {
		t.Fatalf("CacheShards(3 requested) = %d, want 4", inst2.CacheShards())
	}
}

func TestComposeSingleLatchReportsOneShard(t *testing.T) {
	inst, err := ComposeProduct(Options{},
		"Linux", "BPlusTree", "BufferManager", "LRU", "DynamicAlloc", "Put", "Get")
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	if inst.CacheShards() != 1 {
		t.Fatalf("CacheShards = %d, want 1 for the single-latch manager", inst.CacheShards())
	}
}

func TestNutOSExcludesShardedBuffer(t *testing.T) {
	_, err := ComposeProduct(Options{},
		"NutOS", "BPlusTree", "BufferManager", "LRU", "StaticAlloc",
		"ShardedBuffer", "Put", "Get")
	if err == nil {
		t.Fatal("NutOS composed with ShardedBuffer despite the model constraint")
	}
}
