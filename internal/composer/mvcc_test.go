package composer

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"famedb/internal/access"
	"famedb/internal/osal"
)

// mvccFeatures is the canonical MVCC product: the concurrent
// transactional stack plus version history. MVCC is last so tests can
// slice it off for the plain variant.
var mvccFeatures = []string{
	"Linux", "BPlusTree", "BufferManager", "LRU", "DynamicAlloc",
	"Put", "Get", "Update", "Remove",
	"Transaction", "GroupCommit", "Locking", "Recovery",
	"Statistics", "MVCC",
}

func TestComposeMvccSnapshots(t *testing.T) {
	inst, err := ComposeProduct(Options{}, mvccFeatures...)
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	if inst.Versions() == nil {
		t.Fatal("MVCC product has no version table")
	}

	tx := inst.Txn.Begin()
	tx.Put([]byte("k"), []byte("v1"))
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	snap, err := inst.BeginSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Abort()
	w := inst.Txn.Begin()
	w.Update([]byte("k"), []byte("v2"))
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	if v, err := snap.Get([]byte("k")); err != nil || string(v) != "v1" {
		t.Fatalf("snapshot Get = %q, %v, want begin-time v1", v, err)
	}
	if v, err := inst.Store.Get([]byte("k")); err != nil || string(v) != "v2" {
		t.Fatalf("live Get = %q, %v, want v2", v, err)
	}

	s, err := inst.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if s.MVCC.VersionsInstalled == 0 {
		t.Error("stats report no versions installed")
	}
	if s.MVCC.SnapshotsOpen != 1 {
		t.Errorf("SnapshotsOpen = %d, want 1", s.MVCC.SnapshotsOpen)
	}
}

func TestBeginSnapshotRequiresMvcc(t *testing.T) {
	plain := mvccFeatures[:len(mvccFeatures)-1]
	inst, err := ComposeProduct(Options{}, plain...)
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	if _, err := inst.BeginSnapshot(); !errors.Is(err, access.ErrNotComposed) {
		t.Fatalf("BeginSnapshot without MVCC: err = %v, want ErrNotComposed", err)
	}
	// And without Transaction at all.
	inst2, err := ComposeProduct(Options{}, "Linux", "BPlusTree", "Put", "Get")
	if err != nil {
		t.Fatal(err)
	}
	defer inst2.Close()
	if _, err := inst2.BeginSnapshot(); !errors.Is(err, access.ErrNotComposed) {
		t.Fatalf("BeginSnapshot without Transaction: err = %v, want ErrNotComposed", err)
	}
}

func TestComposeMvccLayoutMismatch(t *testing.T) {
	fs := osal.NewMemFS()
	inst, err := ComposeProduct(Options{FS: fs}, mvccFeatures...)
	if err != nil {
		t.Fatal(err)
	}
	inst.Store.Put([]byte("k"), []byte("v"))
	inst.Close()

	// A copy-on-write store holds superseded page chains a plain product
	// would never reclaim; reopening without MVCC must refuse.
	plain := mvccFeatures[:len(mvccFeatures)-1]
	if _, err := ComposeProduct(Options{FS: fs}, plain...); err == nil {
		t.Fatal("recompose without MVCC over a versioned store must fail")
	}

	// Converse: an in-place store reopened with MVCC must refuse too.
	fs2 := osal.NewMemFS()
	inst2, err := ComposeProduct(Options{FS: fs2}, plain...)
	if err != nil {
		t.Fatal(err)
	}
	inst2.Store.Put([]byte("k"), []byte("v"))
	inst2.Close()
	if _, err := ComposeProduct(Options{FS: fs2}, mvccFeatures...); err == nil {
		t.Fatal("recompose with MVCC over an in-place store must fail")
	}
}

// TestMvccCrashRecoverySnapshot crashes an MVCC product (no Close, the
// cache never synced) and recomposes over the same filesystem: recovery
// replays the WAL copy-on-write, installs the recovered state as a
// version, and the first snapshot pins exactly that state.
func TestMvccCrashRecoverySnapshot(t *testing.T) {
	fs := osal.NewMemFS()
	features := append([]string(nil), mvccFeatures...)
	for i, f := range features {
		if f == "GroupCommit" {
			features[i] = "ForceCommit" // every commit durable before the crash
		}
	}
	inst, err := ComposeProduct(Options{FS: fs}, features...)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		tx := inst.Txn.Begin()
		tx.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v"))
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	// Crash: no Close.
	inst2, err := ComposeProduct(Options{FS: fs}, features...)
	if err != nil {
		t.Fatal(err)
	}
	defer inst2.Close()
	if inst2.Txn.Recovered == 0 {
		t.Fatal("recovery replayed nothing")
	}
	if inst2.Versions().Current().Seq() == 0 {
		t.Fatal("recovery did not install a version")
	}
	snap, err := inst2.BeginSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Abort()
	if n, _ := snap.Len(); n != 20 {
		t.Fatalf("recovered snapshot Len = %d, want 20", n)
	}
	got := 0
	if err := snap.Scan(nil, nil, func(k, v []byte) bool { got++; return true }); err != nil {
		t.Fatal(err)
	}
	if got != 20 {
		t.Fatalf("recovered snapshot scan saw %d keys, want 20", got)
	}
}

// TestMvccSnapshotStress is the -race stress of the MVCC feature: 16
// snapshot readers full-range-scan while group-commit batches land.
// Each writer transaction commits a PAIR of keys (a<id> and b<id>), so
// every snapshot must observe both or neither — a half pair means a
// reader saw a mid-batch root. Repeating the scan on the same snapshot
// must return the identical result, and Len must match the scan.
func TestMvccSnapshotStress(t *testing.T) {
	inst, err := ComposeProduct(Options{GroupCommitBatch: 8}, mvccFeatures...)
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()

	const (
		writers      = 2
		txnsPerWrite = 120
		readers      = 16
	)
	var nextID atomic.Int64
	var done atomic.Bool
	var wg, writersWg sync.WaitGroup
	errs := make(chan error, writers+readers)

	for w := 0; w < writers; w++ {
		wg.Add(1)
		writersWg.Add(1)
		go func() {
			defer wg.Done()
			defer writersWg.Done()
			for i := 0; i < txnsPerWrite; i++ {
				id := nextID.Add(1)
				tx := inst.Txn.Begin()
				tx.Put([]byte(fmt.Sprintf("a%06d", id)), []byte("1"))
				tx.Put([]byte(fmt.Sprintf("b%06d", id)), []byte("1"))
				if err := tx.Commit(); err != nil {
					errs <- fmt.Errorf("commit %d: %w", id, err)
					return
				}
			}
		}()
	}

	readSnapshot := func(r int) error {
		snap, err := inst.BeginSnapshot()
		if err != nil {
			return err
		}
		defer snap.Abort()
		scan := func() (map[string]bool, error) {
			seen := map[string]bool{}
			err := snap.Scan(nil, nil, func(k, v []byte) bool {
				seen[string(k)] = true
				return true
			})
			return seen, err
		}
		first, err := scan()
		if err != nil {
			return err
		}
		for k := range first {
			pair := "b" + k[1:]
			if k[0] == 'b' {
				pair = "a" + k[1:]
			}
			if !first[pair] {
				return fmt.Errorf("reader %d: snapshot has %s without its pair %s", r, k, pair)
			}
		}
		if n, _ := snap.Len(); int(n) != len(first) {
			return fmt.Errorf("reader %d: Len = %d but scan saw %d", r, n, len(first))
		}
		second, err := scan()
		if err != nil {
			return err
		}
		if len(second) != len(first) {
			return fmt.Errorf("reader %d: repeated scan saw %d keys, first saw %d",
				r, len(second), len(first))
		}
		return nil
	}

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for !done.Load() {
				if err := readSnapshot(r); err != nil {
					errs <- err
					return
				}
			}
		}(r)
	}

	// Stop the readers once every writer transaction has committed.
	go func() {
		writersWg.Wait()
		done.Store(true)
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Everything committed must now be visible to a fresh snapshot.
	snap, err := inst.BeginSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Abort()
	if n, _ := snap.Len(); int(n) != 2*writers*txnsPerWrite {
		t.Fatalf("final snapshot Len = %d, want %d", n, 2*writers*txnsPerWrite)
	}
}
