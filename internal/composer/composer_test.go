package composer

import (
	"errors"
	"fmt"
	"testing"

	"famedb/internal/access"
	"famedb/internal/core"
	"famedb/internal/index"
	"famedb/internal/osal"
)

func TestComposeMinimalSensorNode(t *testing.T) {
	inst, err := ComposeProduct(Options{}, "NutOS", "ListIndex", "Put", "Get")
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	if inst.Platform.Name != "NutOS" {
		t.Fatalf("platform = %s", inst.Platform.Name)
	}
	if inst.Txn != nil || inst.SQL != nil {
		t.Fatal("minimal product composed optional subsystems")
	}
	if err := inst.Store.Put([]byte("r1"), []byte("23.5")); err != nil {
		t.Fatal(err)
	}
	v, err := inst.Store.Get([]byte("r1"))
	if err != nil || string(v) != "23.5" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	// Remove and Update are not part of this product.
	if err := inst.Store.Remove([]byte("r1")); !errors.Is(err, access.ErrNotComposed) {
		t.Fatalf("Remove = %v", err)
	}
	if err := inst.Store.Update([]byte("r1"), []byte("x")); !errors.Is(err, access.ErrNotComposed) {
		t.Fatalf("Update = %v", err)
	}
}

func TestComposeFullProduct(t *testing.T) {
	inst, err := ComposeProduct(Options{},
		"Linux", "BPlusTree", "BTreeUpdate", "BTreeRemove",
		"BufferManager", "LFU", "DynamicAlloc",
		"Put", "Get", "Remove", "Update",
		"Transaction", "GroupCommit", "Recovery",
		"Optimizer", "SQLEngine")
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	if inst.Txn == nil || inst.SQL == nil {
		t.Fatal("full product missing subsystems")
	}
	// KV path.
	tx := inst.Txn.Begin()
	tx.Put([]byte("k"), []byte("v"))
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if v, err := inst.Store.Get([]byte("k")); err != nil || string(v) != "v" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	// SQL path with the optimizer.
	if _, err := inst.SQL.Exec("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := inst.SQL.Exec("INSERT INTO t VALUES (1, 'one'), (2, 'two')"); err != nil {
		t.Fatal(err)
	}
	r, err := inst.SQL.Exec("SELECT v FROM t WHERE id = 2")
	if err != nil || len(r.Rows) != 1 || r.Rows[0][0].Str != "two" {
		t.Fatalf("SQL = %v, %v", r, err)
	}
	if r.Plan != "index-scan" {
		t.Fatalf("plan = %q, want index-scan with Optimizer", r.Plan)
	}
	if _, ok := inst.CacheStats(); !ok {
		t.Fatal("buffer manager missing")
	}
}

func TestComposeRejectsInvalidConfig(t *testing.T) {
	m := core.FAMEModel()
	c := m.NewConfiguration()
	// Incomplete configuration.
	if _, err := Compose(c, Options{}); err == nil {
		t.Fatal("incomplete configuration should fail")
	}
	// Wrong model.
	bc, err := core.BDBModel().Product("Btree")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compose(bc, Options{}); err == nil {
		t.Fatal("foreign model should fail")
	}
}

func TestComposeFineGrainedBTreeOps(t *testing.T) {
	// Remove selected (forces BTreeRemove), Update not selected.
	inst, err := ComposeProduct(Options{}, "Linux", "BPlusTree", "Put", "Get", "Remove")
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	inst.Store.Put([]byte("k"), []byte("v"))
	if err := inst.Store.Remove([]byte("k")); err != nil {
		t.Fatalf("Remove with BTreeRemove: %v", err)
	}
	// Update was never selected: both the access op and the tree op
	// are absent.
	err = inst.Store.Update([]byte("k"), []byte("v2"))
	if !errors.Is(err, access.ErrNotComposed) && !errors.Is(err, index.ErrOpNotComposed) {
		t.Fatalf("Update = %v", err)
	}
}

func TestNutOSGetsStaticArenaAndSmallPages(t *testing.T) {
	inst, err := ComposeProduct(Options{}, "NutOS", "BPlusTree", "BufferManager", "Put", "Get")
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	if inst.Platform.PageSize != 512 {
		t.Fatalf("page size = %d", inst.Platform.PageSize)
	}
	if !inst.Configuration.Has("StaticAlloc") {
		t.Fatal("NutOS+BufferManager must propagate StaticAlloc")
	}
	if inst.RAM() > osal.NutOS.RAMBudget {
		t.Fatalf("RAM %d exceeds the NutOS budget %d", inst.RAM(), osal.NutOS.RAMBudget)
	}
}

func TestROMOrdering(t *testing.T) {
	small, err := ComposeProduct(Options{}, "NutOS", "ListIndex", "Put", "Get")
	if err != nil {
		t.Fatal(err)
	}
	defer small.Close()
	big, err := ComposeProduct(Options{},
		"Linux", "BPlusTree", "BTreeUpdate", "BTreeRemove",
		"BufferManager", "LRU", "DynamicAlloc",
		"Put", "Get", "Remove", "Update",
		"Transaction", "ForceCommit", "Recovery", "SQLEngine", "Optimizer")
	if err != nil {
		t.Fatal(err)
	}
	defer big.Close()
	sr, err := small.ROM()
	if err != nil {
		t.Fatal(err)
	}
	br, err := big.ROM()
	if err != nil {
		t.Fatal(err)
	}
	if sr >= br {
		t.Fatalf("sensor node ROM %d >= full product ROM %d", sr, br)
	}
	if small.RAM() >= big.RAM() {
		t.Fatalf("sensor node RAM %d >= full product RAM %d", small.RAM(), big.RAM())
	}
}

func TestRecomposeOverExistingFilesystem(t *testing.T) {
	fs := osal.NewMemFS()
	features := []string{"Linux", "BPlusTree", "BTreeRemove", "Put", "Get", "Remove", "SQLEngine"}
	inst, err := ComposeProduct(Options{FS: fs}, features...)
	if err != nil {
		t.Fatal(err)
	}
	inst.Store.Put([]byte("persist"), []byte("me"))
	if _, err := inst.SQL.Exec("CREATE TABLE t (id INT PRIMARY KEY)"); err != nil {
		t.Fatal(err)
	}
	if _, err := inst.SQL.Exec("INSERT INTO t VALUES (7)"); err != nil {
		t.Fatal(err)
	}
	if err := inst.Close(); err != nil {
		t.Fatal(err)
	}

	inst2, err := ComposeProduct(Options{FS: fs}, features...)
	if err != nil {
		t.Fatal(err)
	}
	defer inst2.Close()
	v, err := inst2.Store.Get([]byte("persist"))
	if err != nil || string(v) != "me" {
		t.Fatalf("Get after recompose = %q, %v", v, err)
	}
	r, err := inst2.SQL.Exec("SELECT * FROM t")
	if err != nil || len(r.Rows) != 1 || r.Rows[0][0].Int != 7 {
		t.Fatalf("SQL after recompose = %v, %v", r, err)
	}
}

func TestRecomposeWithDifferentIndexRejected(t *testing.T) {
	fs := osal.NewMemFS()
	inst, err := ComposeProduct(Options{FS: fs}, "Linux", "BPlusTree", "Put", "Get")
	if err != nil {
		t.Fatal(err)
	}
	inst.Close()
	if _, err := ComposeProduct(Options{FS: fs}, "Linux", "ListIndex", "Put", "Get"); err == nil {
		t.Fatal("index mismatch should be rejected")
	}
}

func TestTransactionRecoveryThroughComposition(t *testing.T) {
	fs := osal.NewMemFS()
	features := []string{
		"Linux", "BPlusTree", "BufferManager", "LRU", "DynamicAlloc",
		"Put", "Get", "Transaction", "ForceCommit", "Recovery",
	}
	inst, err := ComposeProduct(Options{FS: fs}, features...)
	if err != nil {
		t.Fatal(err)
	}
	tx := inst.Txn.Begin()
	tx.Put([]byte("durable"), []byte("yes"))
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// Crash: no Close, cache contents lost (never synced to the file).
	inst2, err := ComposeProduct(Options{FS: fs}, features...)
	if err != nil {
		t.Fatal(err)
	}
	defer inst2.Close()
	v, err := inst2.Store.Get([]byte("durable"))
	if err != nil || string(v) != "yes" {
		t.Fatalf("recovered value = %q, %v", v, err)
	}
}

func TestGroupCommitComposition(t *testing.T) {
	inst, err := ComposeProduct(Options{GroupCommitBatch: 4},
		"Linux", "BPlusTree", "BufferManager", "LRU", "DynamicAlloc",
		"Put", "Get", "Transaction", "GroupCommit")
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	for i := 0; i < 8; i++ {
		tx := inst.Txn.Begin()
		tx.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v"))
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if syncs := inst.Txn.LogSyncs(); syncs != 2 {
		t.Fatalf("group commit syncs = %d, want 2", syncs)
	}
}

func TestEveryFAMEProductComposes(t *testing.T) {
	m := core.FAMEModel()
	for _, p := range core.FAMEProducts() {
		cfg, err := m.Product(p.Features...)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		inst, err := Compose(cfg, Options{})
		if err != nil {
			t.Fatalf("%s: compose: %v", p.Name, err)
		}
		// Smoke-test whatever the product can do.
		if cfg.Has("Put") {
			if err := inst.Store.Put([]byte("k"), []byte("v")); err != nil {
				t.Errorf("%s: Put: %v", p.Name, err)
			}
		}
		if cfg.Has("Get") && cfg.Has("Put") {
			if v, err := inst.Store.Get([]byte("k")); err != nil || string(v) != "v" {
				t.Errorf("%s: Get = %q, %v", p.Name, v, err)
			}
		}
		if err := inst.Close(); err != nil {
			t.Errorf("%s: close: %v", p.Name, err)
		}
	}
}
