// Package composer performs product derivation for the FAME-DBMS
// product line: given a valid configuration of core.FAMEModel, it wires
// exactly the selected feature modules into a runnable engine instance.
// Unselected functionality is not reachable from the instance — the Go
// analog of FeatureC++ static composition.
package composer

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"famedb/internal/access"
	"famedb/internal/btree"
	"famedb/internal/buffer"
	"famedb/internal/core"
	"famedb/internal/footprint"
	"famedb/internal/index"
	"famedb/internal/monitor"
	"famedb/internal/osal"
	"famedb/internal/repl"
	"famedb/internal/server"
	"famedb/internal/sql"
	"famedb/internal/stats"
	"famedb/internal/storage"
	"famedb/internal/trace"
	"famedb/internal/txn"
)

// Options tune composition beyond the feature selection.
type Options struct {
	// FS is the backing filesystem; nil composes over a fresh MemFS.
	FS osal.FS
	// CachePages overrides the buffer capacity derived from the
	// platform's RAM budget.
	CachePages int
	// CacheShards overrides the ShardedBuffer feature's stripe count
	// (default buffer.DefaultShards; rounded to a power of two and
	// capped at one frame per shard). Ignored without ShardedBuffer.
	CacheShards int
	// GroupCommitBatch tunes the GroupCommit protocol (default 8).
	GroupCommitBatch int
	// TraceSpans overrides the Tracing feature's ring capacity in spans
	// (default 4096). Ignored without Tracing.
	TraceSpans int
	// TraceSlowOp overrides the Tracing feature's slow-op threshold
	// (default 1ms). Ignored without Tracing.
	TraceSlowOp time.Duration
	// TraceDisabled composes the tracer switched off; recording can be
	// enabled later with Instance.SetTracing. Ignored without Tracing.
	TraceDisabled bool
	// Retry bounds how hard the engine fights transient device faults
	// before poisoning into degraded read-only mode. The zero value
	// (Attempts == 0) composes storage.DefaultRetryPolicy.
	Retry storage.RetryPolicy
	// MonitorInterval is the Monitor feature's sampler period (default
	// 1s). Ignored without Monitor.
	MonitorInterval time.Duration
	// MonitorWindow is how much history the monitor's sample ring spans
	// (default 60 intervals). Ignored without Monitor.
	MonitorWindow time.Duration
	// MonitorRules are the watchdog thresholds; the zero value watches
	// only the degraded latch. Ignored without Monitor.
	MonitorRules monitor.Thresholds
	// MonitorOnAlert, when set, receives every watchdog event (alerts
	// and clears) as it is emitted. Ignored without Monitor.
	MonitorOnAlert func(monitor.Event)
	// PlanCacheSize bounds the CompiledQueries feature's plan cache in
	// entries (default 256). Ignored without CompiledQueries.
	PlanCacheSize int
	// QueryStatsShapes bounds the QueryStats feature's per-shape profile
	// registry (default 128); excess shapes collapse into the overflow
	// pseudo-shape. Ignored without QueryStats.
	QueryStatsShapes int
	// SlowQueryThreshold is the statement latency at which QueryStats
	// records an execution into the slow-query ring (default 1ms).
	// Ignored without QueryStats.
	SlowQueryThreshold time.Duration
	// SlowQueryCap bounds the slow-query ring in entries (default 32).
	// Ignored without QueryStats.
	SlowQueryCap int
}

// Instance is a derived FAME-DBMS product.
type Instance struct {
	// Configuration is the validated product this instance was derived
	// from.
	Configuration *core.Configuration
	// Platform is the selected OS-abstraction target.
	Platform osal.Platform
	// Store is the record store with the composed Access operations.
	Store *access.Store
	// Txn is the transaction manager; nil unless the Transaction
	// feature is selected.
	Txn *txn.Manager
	// SQL is the query engine; nil unless the SQLEngine feature is
	// selected.
	SQL *sql.Engine

	fs          osal.FS
	pf          *storage.PageFile
	pager       storage.Pager
	cache       buffer.Cache
	cachePages  int
	cacheShards int
	// ck is the Checksums feature's CRC-trailer pager; nil unless the
	// feature is selected.
	ck *storage.ChecksumPager
	// health is the engine-wide degraded-mode latch shared by the page
	// path and the WAL. Always composed.
	health *storage.Health
	// stats is the Statistics feature's registry; nil unless the feature
	// is selected, in which case every layer records into it.
	stats *stats.Registry
	// tracer is the Tracing feature's span recorder; nil unless the
	// feature is selected, in which case every layer records into it.
	tracer *trace.Tracer
	// mon is the Monitor feature's live-observation subsystem (sampler,
	// watchdog, telemetry handler); nil unless the feature is selected.
	mon *monitor.Monitor
	// versions is the MVCC feature's table of committed copy-on-write
	// roots; nil unless the feature is selected.
	versions *btree.VersionTable
	// shipper is the Replication feature's WAL fan-out: every durable
	// append is offered to subscribed feeds (network replication
	// sessions, in-process replicas); nil unless the feature is
	// selected.
	shipper *repl.Shipper
	// servers tracks Server-feature listeners started via Serve so
	// Close tears them down before the layers they execute against.
	servers []*server.Server
}

// mvccSource adapts the version table to the transaction manager's
// narrow interface, keeping the txn package decoupled from the tree.
type mvccSource struct{ vt *btree.VersionTable }

func (s mvccSource) Pin() txn.SnapshotReader { return s.vt.Pin() }
func (s mvccSource) Install() error          { return s.vt.Install() }

// layout records where the persistent structures live, so an instance
// can be recomposed over an existing filesystem.
type layout struct {
	StoreMeta uint32 `json:"store_meta"`
	SQLMeta   uint32 `json:"sql_meta"`
	Index     string `json:"index"`
	// Checksums records whether pages carry CRC trailers: a page file
	// written with trailers is unreadable without them and vice versa.
	Checksums bool `json:"checksums,omitempty"`
	// Mvcc records whether the tree mutates copy-on-write: such a tree
	// keeps no leaf chain, so it cannot be reopened by a configuration
	// without MVCC (and an in-place tree cannot gain snapshots
	// retroactively — its chain pointers would be stale the moment a
	// leaf is shadowed).
	Mvcc bool `json:"mvcc,omitempty"`
}

const (
	dataFile   = "fame.db"
	layoutFile = "fame.layout"
	walFile    = "fame.wal"
	ckptFile   = "fame.ckpt"
)

// Recovery semantics: with the Recovery feature, the durable state of
// an instance is "last checkpoint image + committed journal since".
// Composing restores the data file from the checkpoint shadow copy and
// the transaction manager replays the journal; checkpoints atomically
// refresh the shadow copy (write to temp, rename) and truncate the
// journal. This is no-steal crash consistency without page-image
// logging — appropriate for embedded-scale data sets, and the write-back
// cache means the live data file is never trusted across a crash.

// Compose derives an instance from a complete, valid configuration.
// Composing over a filesystem that already holds an instance reopens
// it; the stored layout must have been produced by a configuration with
// the same index structure.
func Compose(cfg *core.Configuration, opts Options) (*Instance, error) {
	if cfg.Model().Name != "FAME-DBMS" {
		return nil, fmt.Errorf("composer: configuration is for model %q", cfg.Model().Name)
	}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("composer: %w", err)
	}
	inst := &Instance{Configuration: cfg}

	// Statistics feature: one registry shared by every layer. When the
	// feature is deselected the registry stays nil, the layers' metric
	// pointers stay nil, and all recording collapses to no-ops.
	if cfg.Has("Statistics") {
		inst.stats = stats.New()
	}

	// Tracing feature: one span recorder shared by every layer; same
	// nil-discipline as the stats registry. When Statistics is also
	// composed the tracer learns the histogram bucket bounds, so spans
	// carry the bucket their duration landed in (the stats/trace
	// bridge).
	if cfg.Has("Tracing") {
		inst.tracer = trace.New(trace.Config{
			Capacity:      opts.TraceSpans,
			SlowThreshold: opts.TraceSlowOp,
			Disabled:      opts.TraceDisabled,
		})
		if inst.stats != nil {
			inst.tracer.SetLatencyBounds(stats.LatencyBounds())
		}
	}

	// OS abstraction: platform target and filesystem.
	for _, name := range []string{"Linux", "Win32", "NutOS"} {
		if cfg.Has(name) {
			inst.Platform, _ = osal.PlatformByName(name)
		}
	}
	inst.fs = opts.FS
	if inst.fs == nil {
		inst.fs = osal.NewMemFS()
	}

	// With Recovery, restore the data file from the last checkpoint
	// image before opening; the journal replay below reconstructs
	// everything committed since.
	if cfg.Has("Recovery") {
		if err := restoreCheckpoint(inst.fs); err != nil {
			return nil, err
		}
	}

	// Page file on the platform's page size.
	existing := true
	f, err := inst.fs.Open(dataFile)
	if errors.Is(err, osal.ErrNotExist) {
		existing = false
		f, err = inst.fs.Create(dataFile)
	}
	if err != nil {
		return nil, err
	}
	if existing {
		inst.pf, err = storage.OpenPageFile(f)
	} else {
		inst.pf, err = storage.CreatePageFile(f, inst.Platform.PageSize)
	}
	if err != nil {
		return nil, err
	}
	inst.pf.SetMetrics(inst.stats.Pager())
	inst.pf.SetTracer(inst.tracer)
	inst.pager = inst.pf

	// Checksums feature: a CRC32-trailer pager between the page file and
	// everything above it, so every read re-verifies the page and torn
	// writes surface as storage.ErrPageCorrupt instead of garbage keys.
	if cfg.Has("Checksums") {
		ck, err := storage.NewChecksumPager(inst.pf)
		if err != nil {
			return nil, err
		}
		ck.SetMetrics(inst.stats.Fault())
		inst.ck = ck
		inst.pager = ck
	}

	// Retry/degrade is part of every product: transient device faults
	// are retried under the policy, and exhaustion poisons the shared
	// health latch — the engine keeps answering reads after its device
	// stops taking writes. The latch feeds the Statistics fault counters
	// and emits one trace span the moment it poisons.
	inst.health = storage.NewHealth()
	retry := opts.Retry
	if retry.Attempts == 0 {
		def := storage.DefaultRetryPolicy()
		retry.Attempts = def.Attempts
		if retry.Backoff == 0 {
			retry.Backoff = def.Backoff
		}
	}
	rp := storage.NewRetryPager(inst.pager, retry, inst.health)
	rp.SetMetrics(inst.stats.Fault())
	inst.pager = rp
	inst.health.OnDegrade(func(reason error) {
		inst.stats.Fault().Degrade(reason.Error())
		if inst.tracer != nil {
			sp := inst.tracer.Start(trace.LayerPager, "degrade")
			sp.Fail(reason)
			sp.End()
		}
	})

	// Buffer manager feature.
	if cfg.Has("BufferManager") {
		capacity := opts.CachePages
		if capacity <= 0 {
			// Half the platform RAM budget for the page cache, at
			// least 2 frames.
			capacity = inst.Platform.RAMBudget / inst.Platform.PageSize / 2
			if capacity < 2 {
				capacity = 2
			}
			if capacity > 256 {
				capacity = 256
			}
		}
		inst.cachePages = capacity
		newPolicy := func() buffer.Policy {
			if cfg.Has("LFU") {
				return buffer.NewLFU()
			}
			return buffer.NewLRU()
		}
		// Per-shard allocator factory: a static product splits one
		// RAM-budgeted arena figure across the shards, so the aggregate
		// arena equals the unsharded one. Frames are logical-page sized:
		// with Checksums the CRC trailer stays below the cache.
		pageSize := inst.pager.PageSize()
		newAlloc := func(frames int) (buffer.Allocator, error) {
			if cfg.Has("StaticAlloc") {
				return buffer.NewStaticAllocator(pageSize, frames, 0)
			}
			return buffer.NewDynamicAllocator(pageSize), nil
		}
		if cfg.Has("StaticAlloc") && inst.Platform.RAMBudget > 0 && capacity*pageSize > inst.Platform.RAMBudget {
			return nil, fmt.Errorf("composer: static arena of %d bytes exceeds the %s RAM budget %d",
				capacity*pageSize, inst.Platform.Name, inst.Platform.RAMBudget)
		}
		if cfg.Has("ShardedBuffer") {
			sharded, err := buffer.NewShardedManager(inst.pager, capacity, opts.CacheShards, newPolicy, newAlloc)
			if err != nil {
				return nil, err
			}
			inst.cache = sharded
			inst.cacheShards = sharded.ShardCount()
		} else {
			alloc, err := newAlloc(capacity)
			if err != nil {
				return nil, err
			}
			single, err := buffer.NewManager(inst.pager, capacity, newPolicy(), alloc)
			if err != nil {
				return nil, err
			}
			inst.cache = single
			inst.cacheShards = 1
		}
		inst.cache.SetMetrics(inst.stats.Buffer())
		inst.cache.SetTracer(inst.tracer)
		inst.pager = inst.cache
	}

	// Index feature (and its fine-grained operations).
	btOps := index.BTreeOps{
		Search: cfg.Has("BTreeSearch"),
		Update: cfg.Has("BTreeUpdate"),
		Remove: cfg.Has("BTreeRemove"),
	}
	indexName := "ListIndex"
	if cfg.Has("BPlusTree") {
		indexName = "BPlusTree"
	}

	var lay layout
	var idx index.Index
	if existing {
		if lay, err = readLayout(inst.fs); err != nil {
			return nil, err
		}
		if lay.Index != indexName {
			return nil, fmt.Errorf("composer: filesystem holds a %s instance, configuration selects %s",
				lay.Index, indexName)
		}
		if lay.Checksums != cfg.Has("Checksums") {
			with, without := "with", "without"
			if !lay.Checksums {
				with, without = without, with
			}
			return nil, fmt.Errorf("composer: filesystem holds an instance %s Checksums, configuration selects %s",
				with, without)
		}
		if lay.Mvcc != cfg.Has("MVCC") {
			with, without := "with", "without"
			if !lay.Mvcc {
				with, without = without, with
			}
			return nil, fmt.Errorf("composer: filesystem holds an instance %s MVCC, configuration selects %s",
				with, without)
		}
		if indexName == "BPlusTree" {
			idx, err = index.OpenBTree(inst.pager, storage.PageID(lay.StoreMeta), btOps)
		} else {
			idx, err = index.OpenList(inst.pager, storage.PageID(lay.StoreMeta))
		}
		if err != nil {
			return nil, err
		}
	} else {
		var meta storage.PageID
		if indexName == "BPlusTree" {
			idx, meta, err = index.CreateBTree(inst.pager, btOps)
		} else {
			idx, meta, err = index.CreateList(inst.pager)
		}
		if err != nil {
			return nil, err
		}
		lay = layout{StoreMeta: uint32(meta), Index: indexName,
			Checksums: cfg.Has("Checksums"), Mvcc: cfg.Has("MVCC")}
	}

	if bt, ok := idx.(*index.BTree); ok {
		if inst.stats != nil {
			bt.Tree().SetMetrics(inst.stats.BTree())
		}
		bt.Tree().SetTracer(inst.tracer)
	}

	// MVCC feature: switch the tree to copy-on-write mutations and seed
	// the version table with the opening root — before the transaction
	// manager opens, so a recovery replay already shadows and its
	// superseded pages reclaim through the table. The model guarantees
	// MVCC => BPlusTree.
	if cfg.Has("MVCC") {
		bt, ok := idx.(*index.BTree)
		if !ok {
			return nil, fmt.Errorf("composer: MVCC requires the BPlusTree index")
		}
		inst.versions = btree.NewVersionTable(bt.Tree())
		inst.versions.SetMetrics(inst.stats.MVCC())
	}

	// Access feature: exactly the selected operations.
	ops := access.Ops{
		Put:    cfg.Has("Put"),
		Get:    cfg.Has("Get"),
		Remove: cfg.Has("Remove"),
		Update: cfg.Has("Update"),
	}
	inst.Store = access.New(idx, ops)
	inst.Store.SetMetrics(inst.stats.Access())
	inst.Store.SetTracer(inst.tracer)

	// Transaction feature.
	if cfg.Has("Transaction") {
		var versions txn.VersionSource
		if inst.versions != nil {
			versions = mvccSource{vt: inst.versions}
		}
		var proto txn.Protocol = txn.Force{}
		if cfg.Has("GroupCommit") {
			batch := opts.GroupCommitBatch
			if batch <= 0 {
				batch = 8
			}
			proto = &txn.Group{BatchSize: batch}
		}
		inst.Txn, err = txn.Open(inst.fs, walFile, inst.Store, txn.Options{
			Protocol: proto,
			// The Locking feature buys thread safety plus the pipelined
			// group commit; single-threaded products deselect it and
			// keep the lock-free plain path (GroupCommit implies it).
			Locking:  cfg.Has("Locking"),
			Recovery: cfg.Has("Recovery"),
			// Checkpointing = flush the cache, then atomically refresh
			// the shadow copy the next recovery will restore from.
			SyncStore: func() error {
				if err := inst.pager.Sync(); err != nil {
					return err
				}
				if cfg.Has("Recovery") {
					return writeCheckpoint(inst.fs)
				}
				return nil
			},
			Metrics: inst.stats.Txn(),
			Tracer:  inst.tracer,
			// The WAL shares the page path's retry policy and degraded
			// latch: a dying log device poisons the same engine-wide
			// health the pagers consult.
			Health: inst.health,
			Retry:  retry,
			Fault:  inst.stats.Fault(),
			// MVCC feature: Begin pins the newest committed version and
			// every commit batch installs the next one.
			Versions: versions,
		})
		if err != nil {
			return nil, err
		}
	}

	// SQL engine and optimizer features.
	if cfg.Has("SQLEngine") {
		factory := sql.ListFactory()
		if cfg.Has("BPlusTree") {
			factory = sql.BTreeFactory(btOps)
		}
		if (inst.stats != nil || inst.tracer != nil) && cfg.Has("BPlusTree") {
			// Instrument the catalog and per-table trees too; they share
			// the registry's tree counters, and the height gauge tracks
			// the tallest instrumented tree.
			factory = instrumentFactory(factory, inst.stats, inst.tracer)
		}
		sqlCfg := sql.Config{
			Pager:     inst.pager,
			Factory:   factory,
			Ops:       ops,
			Optimizer: cfg.Has("Optimizer"),
			// CompiledQueries feature: Prepare/Stmt plus the shape-keyed
			// plan cache on the unprepared Exec path.
			Compiled:      cfg.Has("CompiledQueries"),
			PlanCacheSize: opts.PlanCacheSize,
			Metrics:       inst.stats.SQL(),
			Tracer:        inst.tracer,
		}
		// QueryStats feature: the per-shape statement profile registry,
		// the slow-query ring and EXPLAIN support. The model requires
		// Statistics alongside it, so inst.stats is non-nil here and the
		// registry rides on its snapshot/encoding surfaces.
		if cfg.Has("QueryStats") {
			qs := stats.NewQueryStats(stats.QueryStatsConfig{
				MaxShapes:     opts.QueryStatsShapes,
				SlowThreshold: opts.SlowQueryThreshold,
				SlowCap:       opts.SlowQueryCap,
			})
			inst.stats.SetQueryStats(qs)
			sqlCfg.Query = qs
		}
		if existing {
			inst.SQL, err = sql.Open(sqlCfg, storage.PageID(lay.SQLMeta))
		} else {
			var meta storage.PageID
			inst.SQL, meta, err = sql.Create(sqlCfg)
			lay.SQLMeta = uint32(meta)
		}
		if err != nil {
			return nil, err
		}
	}

	// Replication feature: fan every durable WAL append out to
	// subscriber feeds. The hook runs on the commit path but never
	// blocks it — a slow or dead subscriber gets its feed broken and
	// must snapshot-resync. The model guarantees Transaction here.
	if cfg.Has("Replication") {
		inst.shipper = repl.NewShipper(repl.DefaultFeedDepth, inst.stats.Repl())
		inst.Txn.SetOnShip(inst.shipper.OnShip)
	}

	// Monitor feature: the live-observation subsystem over everything
	// composed above. Its source closures read the Statistics registry
	// (model constraint: Monitor => Statistics), the health latch, the
	// WAL size, and — when Tracing is composed — the span ring, so the
	// monitor itself stays decoupled from the layers it watches. The
	// sampler goroutine starts immediately and Close stops it.
	if cfg.Has("Monitor") {
		src := monitor.Source{
			Snapshot: func() stats.Snapshot {
				s, _ := inst.Stats() // refreshes the trace-ring gauges
				return s
			},
			Health: inst.health,
		}
		if inst.Txn != nil {
			src.LogSize = inst.Txn.LogSize
		}
		if inst.tracer != nil {
			src.Trace = inst.Trace
		}
		for _, f := range cfg.SelectedFeatures() {
			src.Features = append(src.Features, f.Name)
		}
		inst.mon = monitor.New(monitor.Config{
			Interval: opts.MonitorInterval,
			Window:   opts.MonitorWindow,
			Rules:    opts.MonitorRules,
			OnAlert:  opts.MonitorOnAlert,
		}, src)
		inst.mon.Start()
	}

	if !existing {
		if err := writeLayout(inst.fs, lay); err != nil {
			return nil, err
		}
		if cfg.Has("Recovery") {
			// Seed the checkpoint image with the freshly created
			// (empty) structures.
			if err := inst.pager.Sync(); err != nil {
				return nil, err
			}
			if err := writeCheckpoint(inst.fs); err != nil {
				return nil, err
			}
		}
	}
	return inst, nil
}

// instrumentFactory wraps an IndexFactory so every index it produces
// records into the Statistics registry and/or the Tracing recorder.
func instrumentFactory(base sql.IndexFactory, reg *stats.Registry, tr *trace.Tracer) sql.IndexFactory {
	observe := func(idx index.Index) {
		bt, ok := idx.(*index.BTree)
		if !ok {
			return
		}
		if reg != nil {
			bt.Tree().SetMetrics(reg.BTree())
		}
		bt.Tree().SetTracer(tr)
	}
	wrapped := base
	wrapped.Create = func(p storage.Pager) (index.Index, storage.PageID, error) {
		idx, meta, err := base.Create(p)
		if err == nil {
			observe(idx)
		}
		return idx, meta, err
	}
	wrapped.Open = func(p storage.Pager, meta storage.PageID) (index.Index, error) {
		idx, err := base.Open(p, meta)
		if err == nil {
			observe(idx)
		}
		return idx, err
	}
	return wrapped
}

// writeCheckpoint copies the synced data file to a temporary file and
// atomically renames it over the checkpoint image. The copy is read
// back and compared before the rename: a device that silently tears the
// copy (acknowledging a partial write) must not get its damage adopted
// as the image every future recovery restores from.
func writeCheckpoint(fs osal.FS) error {
	if err := copyFSFile(fs, dataFile, ckptFile+".tmp"); err != nil {
		return err
	}
	if err := compareFSFiles(fs, dataFile, ckptFile+".tmp"); err != nil {
		return err
	}
	return fs.Rename(ckptFile+".tmp", ckptFile)
}

// compareFSFiles errors unless the two files hold identical bytes.
func compareFSFiles(fs osal.FS, a, b string) error {
	fa, err := fs.Open(a)
	if err != nil {
		return err
	}
	defer fa.Close()
	fb, err := fs.Open(b)
	if err != nil {
		return err
	}
	defer fb.Close()
	sa, err := fa.Size()
	if err != nil {
		return err
	}
	sb, err := fb.Size()
	if err != nil {
		return err
	}
	if sa != sb {
		return fmt.Errorf("composer: checkpoint image size %d != data file size %d", sb, sa)
	}
	bufA := make([]byte, 64<<10)
	bufB := make([]byte, 64<<10)
	var off int64
	for off < sa {
		n := len(bufA)
		if rem := sa - off; rem < int64(n) {
			n = int(rem)
		}
		if _, err := fa.ReadAt(bufA[:n], off); err != nil {
			return err
		}
		if _, err := fb.ReadAt(bufB[:n], off); err != nil {
			return err
		}
		if !bytes.Equal(bufA[:n], bufB[:n]) {
			return fmt.Errorf("composer: checkpoint image diverges from data file at offset %d (torn copy?)", off)
		}
		off += int64(n)
	}
	return nil
}

// restoreCheckpoint replaces the data file with the checkpoint image,
// if one exists.
func restoreCheckpoint(fs osal.FS) error {
	if _, err := fs.Open(ckptFile); errors.Is(err, osal.ErrNotExist) {
		return nil
	}
	// Copy (not rename) so the image survives for the next crash.
	return copyFSFile(fs, ckptFile, dataFile)
}

// copyFSFile copies src over dst within one filesystem.
func copyFSFile(fs osal.FS, src, dst string) error {
	in, err := fs.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := fs.Create(dst)
	if err != nil {
		return err
	}
	defer out.Close()
	if err := out.Truncate(0); err != nil {
		return err
	}
	size, err := in.Size()
	if err != nil {
		return err
	}
	buf := make([]byte, 64<<10)
	var off int64
	for off < size {
		n := len(buf)
		if rem := size - off; rem < int64(n) {
			n = int(rem)
		}
		if _, err := in.ReadAt(buf[:n], off); err != nil {
			return err
		}
		if _, err := out.WriteAt(buf[:n], off); err != nil {
			return err
		}
		off += int64(n)
	}
	return out.Sync()
}

// ComposeProduct is the convenience path: derive a product from feature
// names and compose it.
func ComposeProduct(opts Options, features ...string) (*Instance, error) {
	cfg, err := core.FAMEModel().Product(features...)
	if err != nil {
		return nil, err
	}
	return Compose(cfg, opts)
}

func readLayout(fs osal.FS) (layout, error) {
	var lay layout
	f, err := fs.Open(layoutFile)
	if err != nil {
		return lay, err
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		return lay, err
	}
	buf := make([]byte, size)
	if _, err := f.ReadAt(buf, 0); err != nil {
		return lay, err
	}
	return lay, json.Unmarshal(buf, &lay)
}

func writeLayout(fs osal.FS, lay layout) error {
	f, err := fs.Create(layoutFile)
	if err != nil {
		return err
	}
	defer f.Close()
	buf, err := json.Marshal(lay)
	if err != nil {
		return err
	}
	if _, err := f.WriteAt(buf, 0); err != nil {
		return err
	}
	return f.Sync()
}

// ROM returns the instance's code footprint under the fine-grained
// model.
func (i *Instance) ROM() (int, error) {
	tab, err := footprint.Load("FAME-DBMS")
	if err != nil {
		return 0, err
	}
	var names []string
	for _, f := range i.Configuration.SelectedFeatures() {
		names = append(names, f.Name)
	}
	return tab.ROMFine(names)
}

// RAM returns the instance's static memory footprint.
func (i *Instance) RAM() int {
	logBuf := 0
	if i.Txn != nil {
		logBuf = 4096
	}
	return footprint.RAM(footprint.RAMParams{
		PageSize:    i.Platform.PageSize,
		CachePages:  i.cachePages,
		StaticArena: i.Configuration.Has("StaticAlloc"),
		LogBuffer:   logBuf,
	})
}

// Stats returns a snapshot of the Statistics feature's metrics, or
// access.ErrNotComposed when the product was derived without the
// Statistics feature. With Tracing also composed, the snapshot's trace
// section carries the ring's occupancy and dropped-span gauges — so
// dropped observability data is itself observable.
func (i *Instance) Stats() (stats.Snapshot, error) {
	if i.stats == nil {
		return stats.Snapshot{}, fmt.Errorf("Stats: %w", access.ErrNotComposed)
	}
	if i.tracer != nil {
		capacity, occ, recorded, dropped, slowOps, slowEvicted := i.tracer.RingStats()
		i.stats.Trace().Set(int64(capacity), int64(occ), int64(recorded), int64(dropped), int64(slowOps), slowEvicted)
	}
	return i.stats.Snapshot(), nil
}

// Tracer returns the live Tracing recorder, or nil when the feature is
// not composed.
func (i *Instance) Tracer() *trace.Tracer { return i.tracer }

// Trace returns a snapshot of the Tracing feature's span recorder, or
// access.ErrNotComposed when the product was derived without Tracing.
func (i *Instance) Trace() (trace.Snapshot, error) {
	if i.tracer == nil {
		return trace.Snapshot{}, fmt.Errorf("Trace: %w", access.ErrNotComposed)
	}
	return i.tracer.Snapshot(), nil
}

// SetTracing switches span recording on or off at runtime. It fails
// with access.ErrNotComposed when the product was derived without the
// Tracing feature.
func (i *Instance) SetTracing(on bool) error {
	if i.tracer == nil {
		return fmt.Errorf("SetTracing: %w", access.ErrNotComposed)
	}
	i.tracer.SetEnabled(on)
	return nil
}

// Monitor returns the live Monitor subsystem, or nil when the feature
// is not composed.
func (i *Instance) Monitor() *monitor.Monitor { return i.mon }

// Versions returns the MVCC feature's version table; nil unless the
// feature is selected.
func (i *Instance) Versions() *btree.VersionTable { return i.versions }

// BeginSnapshot starts a read-only snapshot transaction pinned to the
// newest committed version; its reads take no locks and keep seeing
// the begin-time state. It fails with ErrNotComposed unless both the
// Transaction and MVCC features are selected.
func (i *Instance) BeginSnapshot() (*txn.Txn, error) {
	if i.Txn == nil {
		return nil, fmt.Errorf("BeginSnapshot: %w", access.ErrNotComposed)
	}
	return i.Txn.BeginSnapshot()
}

// MonitorWindow ticks the monitor's sampler and returns the current
// windowed reading, or access.ErrNotComposed when the product was
// derived without the Monitor feature.
func (i *Instance) MonitorWindow() (monitor.Window, error) {
	if i.mon == nil {
		return monitor.Window{}, fmt.Errorf("MonitorWindow: %w", access.ErrNotComposed)
	}
	i.mon.Tick()
	return i.mon.Window(), nil
}

// MonitorEvents returns the monitor's retained operational events
// (oldest first) and how many older ones its bounded log dropped, or
// access.ErrNotComposed without the Monitor feature.
func (i *Instance) MonitorEvents() ([]monitor.Event, uint64, error) {
	if i.mon == nil {
		return nil, 0, fmt.Errorf("MonitorEvents: %w", access.ErrNotComposed)
	}
	events, dropped := i.mon.Events()
	return events, dropped, nil
}

// ServeMonitor binds addr and serves the Monitor feature's telemetry
// endpoint (/metrics, /healthz, /varz, /events, /trace, /debug/pprof/)
// until the returned server is closed. Fails with access.ErrNotComposed
// when the product was derived without the Monitor feature.
func (i *Instance) ServeMonitor(addr string) (*monitor.Server, error) {
	if i.mon == nil {
		return nil, fmt.Errorf("ServeMonitor: %w", access.ErrNotComposed)
	}
	return i.mon.Serve(addr)
}

// Shipper returns the Replication feature's WAL fan-out, or nil when
// the feature is not composed. In-process replicas subscribe to it
// directly; network replication sessions subscribe through Serve.
func (i *Instance) Shipper() *repl.Shipper { return i.shipper }

// ShipApplier returns a replica-side chunk applier over this instance's
// own WAL and store, or access.ErrNotComposed when the product was
// derived without the Replication feature. An instance acting as a
// replica applies shipped frames (and snapshot resyncs) through it.
func (i *Instance) ShipApplier() (*txn.ShipApplier, error) {
	if i.shipper == nil {
		return nil, fmt.Errorf("ShipApplier: %w", access.ErrNotComposed)
	}
	return i.Txn.ShipApplier(), nil
}

// Serve binds addr and runs the Server feature's TCP front end: client
// sessions execute pipelined commands as transactions; replication
// sessions (when Replication is also composed) stream shipped WAL
// frames. Fails with access.ErrNotComposed when the product was derived
// without the Server feature. The listener is owned by the instance:
// Close shuts it down.
func (i *Instance) Serve(addr string) (*server.Server, error) {
	if !i.Configuration.Has("Server") {
		return nil, fmt.Errorf("Serve: %w", access.ErrNotComposed)
	}
	srv, err := server.Serve(addr, server.Config{
		Mgr:     i.Txn,
		Shipper: i.shipper,
		Metrics: i.stats.Repl(),
	})
	if err != nil {
		return nil, err
	}
	i.servers = append(i.servers, srv)
	return srv, nil
}

// ReplicateFrom starts a replica client that streams this instance from
// the primary at addr (reconnecting with capped backoff and resyncing
// via snapshot when diverged). Fails with access.ErrNotComposed when
// the product was derived without the Replication feature.
func (i *Instance) ReplicateFrom(addr string) (*server.Replica, error) {
	applier, err := i.ShipApplier()
	if err != nil {
		return nil, fmt.Errorf("ReplicateFrom: %w", access.ErrNotComposed)
	}
	return server.StartReplica(server.ReplicaConfig{Addr: addr, Applier: applier})
}

// StatsRegistry returns the live Statistics registry, or nil when the
// feature is not composed. Benchmark harnesses use it to read
// histograms without going through snapshots.
func (i *Instance) StatsRegistry() *stats.Registry { return i.stats }

// CacheStats returns buffer-manager statistics, or false when no
// buffer manager is composed.
func (i *Instance) CacheStats() (buffer.Stats, bool) {
	if i.cache == nil {
		return buffer.Stats{}, false
	}
	return i.cache.Stats(), true
}

// CacheShards returns the buffer pool's lock-stripe count: 0 without a
// buffer manager, 1 for the single-latch manager, and the (power-of-
// two) stripe count with the ShardedBuffer feature.
func (i *Instance) CacheShards() int { return i.cacheShards }

// FS returns the instance's filesystem.
func (i *Instance) FS() osal.FS { return i.fs }

// Health returns the engine-wide degraded-mode latch.
func (i *Instance) Health() *storage.Health { return i.health }

// Degraded reports whether the instance has poisoned into read-only
// mode after exhausting the retry budget on a transient device fault.
func (i *Instance) Degraded() bool { return i.health.Degraded() }

// VerifyReport is the outcome of a full-instance scrub.
type VerifyReport struct {
	// Pages is the page-file scrub; nil when the product was derived
	// without the Checksums feature (no trailers to check against).
	Pages *storage.VerifyReport
	// Log is the write-ahead-log scrub; nil when the product was derived
	// without the Transaction feature.
	Log *txn.LogVerifyReport
}

// Ok reports whether every scrubbed structure checked out clean.
func (r VerifyReport) Ok() bool {
	if r.Pages != nil && !r.Pages.Ok() {
		return false
	}
	if r.Log != nil && !r.Log.Ok() {
		return false
	}
	return true
}

// String renders the report for human output.
func (r VerifyReport) String() string {
	parts := ""
	if r.Pages != nil {
		parts += "pages: " + r.Pages.String()
	}
	if r.Log != nil {
		if parts != "" {
			parts += "\n"
		}
		parts += "log: " + r.Log.String()
	}
	if parts == "" {
		return "nothing to verify (no Checksums, no Transaction)"
	}
	return parts
}

// Verify scrubs the instance's persistent structures: every allocated
// page against its CRC trailer (feature Checksums) and every journal
// frame against its record checksum (feature Transaction). A healthy
// instance flushes its cache first so the scrub sees the current image;
// a degraded one scrubs the last image the device accepted. Products
// with neither feature return access.ErrNotComposed.
func (i *Instance) Verify() (VerifyReport, error) {
	var rep VerifyReport
	if i.ck == nil && i.Txn == nil {
		return rep, fmt.Errorf("Verify: %w", access.ErrNotComposed)
	}
	if i.ck != nil {
		if !i.health.Degraded() {
			if err := i.pager.Sync(); err != nil {
				return rep, err
			}
		}
		pr, err := i.ck.Verify()
		if err != nil {
			return rep, err
		}
		rep.Pages = &pr
	}
	if i.Txn != nil {
		lr, err := i.Txn.VerifyLog()
		if err != nil {
			return rep, err
		}
		rep.Log = &lr
	}
	return rep, nil
}

// Sync makes all state durable.
func (i *Instance) Sync() error {
	if i.Txn != nil {
		if err := i.Txn.Flush(); err != nil {
			return err
		}
	}
	return i.pager.Sync()
}

// Close flushes and closes the instance. A degraded instance closes
// without flushing: the device refuses writes, and nothing unflushed
// was ever acknowledged durable.
func (i *Instance) Close() error {
	if i.mon != nil {
		// Stop the sampler before tearing down the layers it reads.
		i.mon.Stop()
	}
	// Server sessions execute against the transaction manager: sever
	// them first. Then close the shipper so replication feeds drain.
	for _, s := range i.servers {
		s.Close()
	}
	i.servers = nil
	if i.shipper != nil {
		i.shipper.Close()
	}
	if i.Txn != nil {
		if err := i.Txn.Close(); err != nil {
			return err
		}
	}
	if i.health.Degraded() {
		// Skip the cache's write-back (it would just bounce off the
		// degraded gate) and release the file handle directly.
		return i.pf.Close()
	}
	return i.pager.Close()
}
