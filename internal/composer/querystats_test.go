package composer

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"famedb/internal/access"
)

// querystatsFeatures is the canonical observed-SQL product; QueryStats
// is last so tests can slice it off for the bare variant.
var querystatsFeatures = []string{
	"Linux", "BPlusTree", "Put", "Get",
	"Optimizer", "SQLEngine", "Statistics", "QueryStats",
}

func TestComposeQueryStats(t *testing.T) {
	inst, err := ComposeProduct(Options{
		QueryStatsShapes:   16,
		SlowQueryThreshold: time.Nanosecond,
		SlowQueryCap:       8,
	}, querystatsFeatures...)
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()

	if inst.StatsRegistry().Query() == nil {
		t.Fatal("QueryStats product has no query registry")
	}
	if _, err := inst.SQL.Exec("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := inst.SQL.Exec(fmt.Sprintf("INSERT INTO t VALUES (%d, 'v%d')", i, i)); err != nil {
			t.Fatal(err)
		}
	}
	r, err := inst.SQL.Exec("EXPLAIN ANALYZE SELECT v FROM t WHERE id = 2")
	if err != nil {
		t.Fatalf("EXPLAIN on the composed product: %v", err)
	}
	if len(r.Rows) == 0 {
		t.Fatal("EXPLAIN produced no plan lines")
	}

	snap, err := inst.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Queries == nil {
		t.Fatal("snapshot has no query section")
	}
	if snap.Queries.MaxShapes != 16 || snap.Queries.SlowThresholdNs != 1 {
		t.Fatalf("options not applied: %+v", snap.Queries)
	}
	var count int64
	for _, sh := range snap.Queries.Shapes {
		count += sh.Count
	}
	if count != 6 { // CREATE + 4 INSERTs + EXPLAIN ANALYZE
		t.Fatalf("profiled %d executions, want 6", count)
	}
	// Every statement crossed the 1ns threshold: the bounded ring (cap
	// 8) retained some of them.
	if len(snap.Queries.Slow) == 0 {
		t.Fatal("slow ring empty despite 1ns threshold")
	}
}

// TestQueryStatsNotComposed: the same product minus QueryStats answers
// EXPLAIN with ErrNotComposed and exposes no query section.
func TestQueryStatsNotComposed(t *testing.T) {
	bare := querystatsFeatures[:len(querystatsFeatures)-1]
	inst, err := ComposeProduct(Options{}, bare...)
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()

	if inst.StatsRegistry().Query() != nil {
		t.Fatal("bare product has a query registry")
	}
	if _, err := inst.SQL.Exec("CREATE TABLE t (id INT PRIMARY KEY)"); err != nil {
		t.Fatal(err)
	}
	if _, err := inst.SQL.Exec("EXPLAIN SELECT * FROM t"); !errors.Is(err, access.ErrNotComposed) {
		t.Fatalf("EXPLAIN without QueryStats = %v, want ErrNotComposed", err)
	}
	snap, err := inst.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Queries != nil {
		t.Fatal("bare product's snapshot has a query section")
	}
}

// TestQueryStatsTraceLink: with Tracing composed, slow-query entries
// carry the statement's root span ID so an operator can jump from the
// slow log into the span ring.
func TestQueryStatsTraceLink(t *testing.T) {
	feats := append(append([]string{}, querystatsFeatures...), "Tracing")
	inst, err := ComposeProduct(Options{SlowQueryThreshold: time.Nanosecond}, feats...)
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()

	if _, err := inst.SQL.Exec("CREATE TABLE t (id INT PRIMARY KEY)"); err != nil {
		t.Fatal(err)
	}
	if _, err := inst.SQL.Exec("INSERT INTO t VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	slow, _ := inst.StatsRegistry().Query().SlowQueries()
	if len(slow) == 0 {
		t.Fatal("no slow entries despite 1ns threshold")
	}
	for _, s := range slow {
		if s.TraceRoot == 0 {
			t.Fatalf("slow entry %q has no trace root with Tracing composed", s.Shape)
		}
	}
	// The drain hands the entries over exactly once.
	drained, _ := inst.StatsRegistry().Query().DrainSlowQueries()
	if len(drained) != len(slow) {
		t.Fatalf("drained %d, want %d", len(drained), len(slow))
	}
	if again, _ := inst.StatsRegistry().Query().SlowQueries(); len(again) != 0 {
		t.Fatalf("ring still holds %d entries after drain", len(again))
	}
}
