package composer

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"famedb/internal/access"
	"famedb/internal/osal"
	"famedb/internal/storage"
	"famedb/internal/trace"
)

// checksumFeatures is a persistent Checksums product with a cache, so
// the trailer pager sits under real write-back traffic.
var checksumFeatures = []string{
	"Linux", "BPlusTree", "BTreeUpdate", "BTreeRemove",
	"BufferManager", "LRU", "DynamicAlloc",
	"Put", "Get", "Remove", "Update", "Checksums",
}

func TestComposeChecksumsRoundTrip(t *testing.T) {
	fs := osal.NewMemFS()
	inst, err := ComposeProduct(Options{FS: fs}, checksumFeatures...)
	if err != nil {
		t.Fatal(err)
	}
	// The trailer steals 4 bytes from every page.
	if got, want := inst.pager.PageSize(), inst.Platform.PageSize-storage.ChecksumSize; got != want {
		t.Fatalf("logical page size = %d, want %d", got, want)
	}
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("key-%04d", i)
		if err := inst.Store.Put([]byte(k), []byte("value of "+k)); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := inst.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() || rep.Pages == nil {
		t.Fatalf("fresh instance fails scrub: %s", rep)
	}
	if err := inst.Close(); err != nil {
		t.Fatal(err)
	}

	// Recompose over the same filesystem: every page re-verifies.
	inst2, err := ComposeProduct(Options{FS: fs}, checksumFeatures...)
	if err != nil {
		t.Fatal(err)
	}
	defer inst2.Close()
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("key-%04d", i)
		v, err := inst2.Store.Get([]byte(k))
		if err != nil || string(v) != "value of "+k {
			t.Fatalf("Get(%s) = %q, %v", k, v, err)
		}
	}
}

func TestComposeChecksumsLayoutMismatch(t *testing.T) {
	fs := osal.NewMemFS()
	inst, err := ComposeProduct(Options{FS: fs}, checksumFeatures...)
	if err != nil {
		t.Fatal(err)
	}
	inst.Store.Put([]byte("k"), []byte("v"))
	inst.Close()

	// Reopening without Checksums must refuse: the pages carry trailers
	// a plain product would hand to the tree as payload.
	plain := checksumFeatures[:len(checksumFeatures)-1]
	if _, err := ComposeProduct(Options{FS: fs}, plain...); err == nil {
		t.Fatal("recompose without Checksums over a trailered store must fail")
	}

	// And the converse: a plain store must not be scrubbed as trailered.
	fs2 := osal.NewMemFS()
	inst2, err := ComposeProduct(Options{FS: fs2}, plain...)
	if err != nil {
		t.Fatal(err)
	}
	inst2.Store.Put([]byte("k"), []byte("v"))
	inst2.Close()
	if _, err := ComposeProduct(Options{FS: fs2}, checksumFeatures...); err == nil {
		t.Fatal("recompose with Checksums over a plain store must fail")
	}
}

func TestComposeChecksumsCatchAtRestCorruption(t *testing.T) {
	fs := osal.NewMemFS()
	inst, err := ComposeProduct(Options{FS: fs}, checksumFeatures...)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("key-%04d", i)
		if err := inst.Store.Put([]byte(k), []byte("value of "+k)); err != nil {
			t.Fatal(err)
		}
	}
	inst.Close()

	// Bit rot while the engine is down: flip one bit in the middle of
	// the data file.
	f, err := fs.Open("fame.db")
	if err != nil {
		t.Fatal(err)
	}
	size, _ := f.Size()
	var b [1]byte
	if _, err := f.ReadAt(b[:], size/2); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x10
	if _, err := f.WriteAt(b[:], size/2); err != nil {
		t.Fatal(err)
	}
	f.Close()

	inst2, err := ComposeProduct(Options{FS: fs}, checksumFeatures...)
	if err != nil {
		// The flip may land in a page the reopen itself reads (meta or
		// root): then composition is the detector.
		if !errors.Is(err, storage.ErrPageCorrupt) {
			t.Fatalf("recompose = %v, want ErrPageCorrupt", err)
		}
		return
	}
	defer inst2.Close()
	rep, err := inst2.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ok() || rep.Pages == nil || len(rep.Pages.Corrupt) == 0 {
		t.Fatalf("scrub missed the at-rest flip: %s", rep)
	}
	// The damaged page is named, so an operator can map it back.
	var perr *storage.PageError
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("key-%04d", i)
		if _, err := inst2.Store.Get([]byte(k)); errors.Is(err, storage.ErrPageCorrupt) {
			if !errors.As(err, &perr) || perr.Page != rep.Pages.Corrupt[0] {
				t.Fatalf("read error %v does not name scrubbed page %d", err, rep.Pages.Corrupt[0])
			}
			return
		}
	}
	// The flip may sit on a free page or non-key bytes; the scrub
	// finding it is the contract.
}

// TestComposeDegradedTransitionConcurrentReads drives the engine into
// degraded mode while readers hammer it — run under -race in CI. The
// contract: reads never block or corrupt, writes fail with ErrDegraded
// after the poison, and the stats/trace plumbing reports the reason.
func TestComposeDegradedTransitionConcurrentReads(t *testing.T) {
	ffs := osal.NewFaultFS(osal.NewMemFS())
	inst, err := ComposeProduct(Options{
		FS:         ffs,
		CachePages: 4, // tiny cache: reads fault pages in from the device
		Retry:      storage.RetryPolicy{Attempts: 2, Sleep: func(time.Duration) {}},
	}, append(checksumFeatures, "Statistics", "Tracing")...)
	if err != nil {
		t.Fatal(err)
	}
	const n = 300
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key-%04d", i)
		if err := inst.Store.Put([]byte(k), []byte("value of "+k)); err != nil {
			t.Fatal(err)
		}
	}
	if err := inst.Sync(); err != nil {
		t.Fatal(err)
	}

	// Every device write from now on fails transiently, forever.
	sched := osal.NewSchedule(7)
	sched.Add(osal.Rule{Class: osal.OpWrite, At: 1, Kind: osal.FaultError, Heal: 1 << 30})
	ffs.SetSchedule(sched)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := fmt.Sprintf("key-%04d", (seed*37+i)%n)
				v, err := inst.Store.Get([]byte(k))
				if err != nil {
					t.Errorf("read during degrade transition: %v", err)
					return
				}
				if string(v) != "value of "+k {
					t.Errorf("Get(%s) = %q", k, v)
					return
				}
			}
		}(r)
	}

	// Writer side: dirty pages and flush until the retry budget runs
	// out and the latch poisons.
	for i := 0; !inst.Degraded() && i < 100; i++ {
		inst.Store.Put([]byte(fmt.Sprintf("w-%d", i)), []byte("x"))
		inst.Sync()
	}
	close(stop)
	wg.Wait()
	if !inst.Degraded() {
		t.Fatal("retry exhaustion did not degrade the engine")
	}
	if err := inst.Sync(); !errors.Is(err, storage.ErrDegraded) {
		t.Fatalf("degraded Sync = %v, want ErrDegraded", err)
	}

	// The poison reason lands in the stats counters...
	snap, err := inst.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Fault.Degraded || snap.Fault.DegradedReason == "" {
		t.Fatalf("stats fault section = %+v, want degraded with reason", snap.Fault)
	}
	if snap.Fault.Transients == 0 || snap.Fault.Retries == 0 {
		t.Fatalf("stats fault counters = %+v, want transients and retries", snap.Fault)
	}
	// ...and in exactly one trace span.
	ts, err := inst.Trace()
	if err != nil {
		t.Fatal(err)
	}
	degradeSpans := 0
	for _, sp := range ts.Spans {
		if sp.Op == "degrade" && sp.Layer == trace.LayerPager {
			degradeSpans++
			if !sp.Err {
				t.Error("degrade span not marked failed")
			}
		}
	}
	if degradeSpans != 1 {
		t.Fatalf("%d degrade spans, want 1", degradeSpans)
	}

	// Reads still serve after the dust settles; Close succeeds.
	if _, err := inst.Store.Get([]byte("key-0000")); err != nil {
		t.Fatalf("degraded read = %v", err)
	}
	ffs.SetSchedule(nil)
	if err := inst.Close(); err != nil {
		t.Fatalf("degraded close = %v", err)
	}
}

// TestComposeVerifyNotComposed: a product with neither Checksums nor
// Transaction has nothing to scrub.
func TestComposeVerifyNotComposed(t *testing.T) {
	inst, err := ComposeProduct(Options{}, "NutOS", "ListIndex", "Put", "Get")
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	if _, err := inst.Verify(); !errors.Is(err, access.ErrNotComposed) {
		t.Fatalf("Verify = %v, want ErrNotComposed", err)
	}
}

// TestComposeVerifyCoversJournal: without Checksums but with
// Transaction, Verify still scrubs the WAL.
func TestComposeVerifyCoversJournal(t *testing.T) {
	inst, err := ComposeProduct(Options{},
		"Linux", "BPlusTree", "BufferManager", "LRU", "DynamicAlloc",
		"Put", "Get", "Transaction", "ForceCommit")
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	tx := inst.Txn.Begin()
	tx.Put([]byte("k"), []byte("v"))
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	rep, err := inst.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pages != nil {
		t.Fatal("page scrub composed without Checksums")
	}
	if rep.Log == nil || !rep.Log.Ok() || rep.Log.Commits != 1 {
		t.Fatalf("journal scrub = %v", rep.Log)
	}
}
