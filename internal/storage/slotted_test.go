package storage

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

func TestSlottedInsertRead(t *testing.T) {
	buf := make([]byte, 256)
	p := InitSlotted(buf, 7)
	if p.Type() != 7 || p.NumSlots() != 0 || p.NumRecords() != 0 {
		t.Fatal("fresh page state wrong")
	}
	s1, err := p.Insert([]byte("alpha"))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := p.Insert([]byte("beta"))
	if err != nil {
		t.Fatal(err)
	}
	if s1 == s2 {
		t.Fatal("duplicate slots")
	}
	r1, _ := p.Read(s1)
	r2, _ := p.Read(s2)
	if string(r1) != "alpha" || string(r2) != "beta" {
		t.Fatalf("read back %q, %q", r1, r2)
	}
	if p.NumRecords() != 2 {
		t.Fatalf("NumRecords = %d", p.NumRecords())
	}
}

func TestSlottedDeleteAndReuse(t *testing.T) {
	p := InitSlotted(make([]byte, 256), 1)
	s1, _ := p.Insert([]byte("one"))
	s2, _ := p.Insert([]byte("two"))
	if err := p.Delete(s1); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Read(s1); !errors.Is(err, ErrNoRecord) {
		t.Fatalf("read deleted = %v, want ErrNoRecord", err)
	}
	if err := p.Delete(s1); !errors.Is(err, ErrNoRecord) {
		t.Fatalf("double delete = %v, want ErrNoRecord", err)
	}
	// The tombstone slot is reused.
	s3, _ := p.Insert([]byte("three"))
	if s3 != s1 {
		t.Fatalf("tombstone not reused: got %d, want %d", s3, s1)
	}
	// Existing record untouched.
	r2, _ := p.Read(s2)
	if string(r2) != "two" {
		t.Fatal("neighbor record damaged")
	}
}

func TestSlottedPageFull(t *testing.T) {
	p := InitSlotted(make([]byte, 128), 1)
	rec := bytes.Repeat([]byte("x"), 20)
	var n int
	for {
		if _, err := p.Insert(rec); err != nil {
			if !errors.Is(err, ErrPageFull) {
				t.Fatalf("unexpected error: %v", err)
			}
			break
		}
		n++
	}
	// 128-byte page, 16-byte header: each record costs 20+4=24 bytes.
	if n < 4 {
		t.Fatalf("only %d records fit", n)
	}
	// Oversized record rejected outright.
	if _, err := p.Insert(make([]byte, 1024)); !errors.Is(err, ErrPageFull) {
		t.Fatal("oversized insert should report ErrPageFull")
	}
}

func TestSlottedCompactReclaimsSpace(t *testing.T) {
	p := InitSlotted(make([]byte, 256), 1)
	var slots []int
	rec := bytes.Repeat([]byte("d"), 30)
	for i := 0; i < 7; i++ {
		s, err := p.Insert(rec)
		if err != nil {
			t.Fatal(err)
		}
		slots = append(slots, s)
	}
	// Delete all but one, compact implicitly via a big insert.
	for _, s := range slots[1:] {
		p.Delete(s)
	}
	big := bytes.Repeat([]byte("B"), 150)
	s, err := p.Insert(big)
	if err != nil {
		t.Fatalf("insert after deletes should compact and fit: %v", err)
	}
	got, _ := p.Read(s)
	if !bytes.Equal(got, big) {
		t.Fatal("big record corrupted by compaction")
	}
	kept, _ := p.Read(slots[0])
	if !bytes.Equal(kept, rec) {
		t.Fatal("survivor record corrupted by compaction")
	}
}

func TestSlottedUpdateInPlace(t *testing.T) {
	p := InitSlotted(make([]byte, 256), 1)
	s, _ := p.Insert([]byte("longrecord"))
	if err := p.Update(s, []byte("short")); err != nil {
		t.Fatal(err)
	}
	r, _ := p.Read(s)
	if string(r) != "short" {
		t.Fatalf("in-place shrink = %q", r)
	}
}

func TestSlottedUpdateGrow(t *testing.T) {
	p := InitSlotted(make([]byte, 256), 1)
	s, _ := p.Insert([]byte("ab"))
	other, _ := p.Insert([]byte("other"))
	grown := bytes.Repeat([]byte("G"), 60)
	if err := p.Update(s, grown); err != nil {
		t.Fatal(err)
	}
	r, _ := p.Read(s)
	if !bytes.Equal(r, grown) {
		t.Fatalf("grown update = %q", r)
	}
	ro, _ := p.Read(other)
	if string(ro) != "other" {
		t.Fatal("neighbor damaged by grow")
	}
	if p.NumRecords() != 2 {
		t.Fatalf("NumRecords = %d after grow", p.NumRecords())
	}
}

func TestSlottedUpdateTooBigRollsBack(t *testing.T) {
	p := InitSlotted(make([]byte, 128), 1)
	s, _ := p.Insert([]byte("keepme"))
	err := p.Update(s, make([]byte, 500))
	if !errors.Is(err, ErrPageFull) {
		t.Fatalf("oversized update = %v, want ErrPageFull", err)
	}
	r, rerr := p.Read(s)
	if rerr != nil || string(r) != "keepme" {
		t.Fatalf("record lost by failed update: %q, %v", r, rerr)
	}
	if p.NumRecords() != 1 {
		t.Fatalf("NumRecords = %d after failed update", p.NumRecords())
	}
}

func TestSlottedHeaderFields(t *testing.T) {
	p := InitSlotted(make([]byte, 128), 3)
	p.SetFlags(0x5A)
	p.SetNext(77)
	p.SetExtra(0xDEADBEEF)
	if p.Flags() != 0x5A || p.Next() != 77 || p.Extra() != 0xDEADBEEF {
		t.Fatal("header round trip failed")
	}
	p.SetType(9)
	if p.Type() != 9 {
		t.Fatal("type round trip failed")
	}
}

func TestSlottedRecordsIteration(t *testing.T) {
	p := InitSlotted(make([]byte, 256), 1)
	s0, _ := p.Insert([]byte("a"))
	p.Insert([]byte("b"))
	p.Insert([]byte("c"))
	p.Delete(s0)
	var got []string
	p.Records(func(slot int, rec []byte) bool {
		got = append(got, string(rec))
		return true
	})
	if len(got) != 2 || got[0] != "b" || got[1] != "c" {
		t.Fatalf("Records = %v", got)
	}
	// Early stop.
	count := 0
	p.Records(func(slot int, rec []byte) bool {
		count++
		return false
	})
	if count != 1 {
		t.Fatalf("early stop visited %d", count)
	}
}

// TestSlottedRandomOps compares the page against a map model under a
// random operation sequence — the core property test of the record
// layout.
func TestSlottedRandomOps(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := InitSlotted(make([]byte, 1024), 1)
	model := map[int][]byte{} // slot -> content
	for op := 0; op < 3000; op++ {
		switch rng.Intn(3) {
		case 0: // insert
			rec := make([]byte, 1+rng.Intn(40))
			for i := range rec {
				rec[i] = byte(rng.Intn(256))
			}
			s, err := p.Insert(rec)
			if errors.Is(err, ErrPageFull) {
				continue
			}
			if err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
			if _, taken := model[s]; taken {
				t.Fatalf("op %d: slot %d double-allocated", op, s)
			}
			model[s] = rec
		case 1: // delete random known slot
			for s := range model {
				if err := p.Delete(s); err != nil {
					t.Fatalf("op %d: delete: %v", op, err)
				}
				delete(model, s)
				break
			}
		case 2: // update random known slot
			for s := range model {
				rec := make([]byte, 1+rng.Intn(60))
				for i := range rec {
					rec[i] = byte(rng.Intn(256))
				}
				err := p.Update(s, rec)
				if errors.Is(err, ErrPageFull) {
					break
				}
				if err != nil {
					t.Fatalf("op %d: update: %v", op, err)
				}
				model[s] = rec
				break
			}
		}
		// Validate model equivalence periodically.
		if op%100 == 0 {
			if p.NumRecords() != len(model) {
				t.Fatalf("op %d: NumRecords %d != model %d", op, p.NumRecords(), len(model))
			}
			for s, want := range model {
				got, err := p.Read(s)
				if err != nil || !bytes.Equal(got, want) {
					t.Fatalf("op %d: slot %d: got %x err %v, want %x", op, s, got, err, want)
				}
			}
		}
	}
}

func TestSlottedFreeSpaceMonotonic(t *testing.T) {
	p := InitSlotted(make([]byte, 512), 1)
	prev := p.FreeSpace()
	for i := 0; i < 10; i++ {
		rec := []byte(fmt.Sprintf("record-%02d", i))
		if _, err := p.Insert(rec); err != nil {
			t.Fatal(err)
		}
		cur := p.FreeSpace()
		if cur >= prev {
			t.Fatalf("free space did not shrink: %d -> %d", prev, cur)
		}
		prev = cur
	}
}
