package storage

// Retry-with-backoff and the degraded-mode latch. Transient device
// errors (osal.ErrTransient — an interrupted write, a bus glitch that
// heals) are retried a bounded number of times with exponential
// backoff; permanent errors propagate untouched on the first attempt.
// When a transient fault outlives the retry budget the shared Health
// latch poisons the engine into degraded read-only mode: write-class
// operations return ErrDegraded from then on, reads keep serving, and
// the reason lands in the stats counters and a trace span — an
// embedded node that cannot flash-write anymore should keep answering
// queries rather than die.

import (
	"errors"
	"sync"
	"time"

	"famedb/internal/osal"
	"famedb/internal/stats"
)

// RetryPolicy bounds how hard the engine fights transient faults.
type RetryPolicy struct {
	// Attempts is the total tries per operation, including the first.
	// Values < 1 mean 1 (no retries).
	Attempts int
	// Backoff is the sleep before the first retry; it doubles each
	// further retry. Zero retries without sleeping.
	Backoff time.Duration
	// Sleep is the clock used between attempts; nil means time.Sleep.
	// Tests inject a recording clock here.
	Sleep func(time.Duration)
}

// DefaultRetryPolicy is the composer's default: three attempts with a
// short doubling backoff.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{Attempts: 3, Backoff: time.Millisecond}
}

func (p RetryPolicy) attempts() int {
	if p.Attempts < 1 {
		return 1
	}
	return p.Attempts
}

func (p RetryPolicy) sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	if p.Sleep != nil {
		p.Sleep(d)
		return
	}
	time.Sleep(d)
}

// Health is the engine-wide degraded-mode latch, shared by the page
// path (RetryPager) and the WAL (txn.Manager). All methods are safe on
// a nil receiver (never-degraded) and for concurrent use.
type Health struct {
	mu       sync.Mutex
	degraded bool
	reason   error
	onceFns  []func(error)
}

// NewHealth returns a healthy latch.
func NewHealth() *Health { return &Health{} }

// OnDegrade registers fn to run once when the latch poisons (the
// composer hooks stats counters and a trace span here). If the latch is
// already poisoned, fn runs immediately.
func (h *Health) OnDegrade(fn func(error)) {
	if h == nil {
		return
	}
	h.mu.Lock()
	if h.degraded {
		reason := h.reason
		h.mu.Unlock()
		fn(reason)
		return
	}
	h.onceFns = append(h.onceFns, fn)
	h.mu.Unlock()
}

// Poison latches degraded mode with the given reason. The first reason
// wins; later calls are no-ops.
func (h *Health) Poison(reason error) {
	if h == nil {
		return
	}
	h.mu.Lock()
	if h.degraded {
		h.mu.Unlock()
		return
	}
	h.degraded = true
	h.reason = reason
	fns := h.onceFns
	h.onceFns = nil
	h.mu.Unlock()
	for _, fn := range fns {
		fn(reason)
	}
}

// Degraded reports whether the latch has poisoned.
func (h *Health) Degraded() bool {
	if h == nil {
		return false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.degraded
}

// Reason returns the poisoning cause, or nil while healthy.
func (h *Health) Reason() error {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.reason
}

// Err returns nil while healthy, or ErrDegraded (wrapping the reason)
// once poisoned — the gate write paths consult before touching the
// device.
func (h *Health) Err() error {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.degraded {
		return nil
	}
	return &degradedError{reason: h.reason}
}

// degradedError wraps ErrDegraded with the poisoning reason.
type degradedError struct{ reason error }

func (e *degradedError) Error() string {
	if e.reason == nil {
		return ErrDegraded.Error()
	}
	return ErrDegraded.Error() + ": " + e.reason.Error()
}

func (e *degradedError) Is(target error) bool { return target == ErrDegraded }

func (e *degradedError) Unwrap() error { return e.reason }

// RetryPager wraps any Pager with the retry policy and the degraded
// gate. It composes above ChecksumPager (so a retried read re-verifies
// the trailer) and below the buffer pools.
type RetryPager struct {
	base   Pager
	policy RetryPolicy
	health *Health
	// metrics observes transients and retries when Statistics is
	// composed; nil otherwise.
	metrics *stats.Fault
}

// NewRetryPager wraps base. health may be nil (no degraded gate — every
// exhaustion just returns its error).
func NewRetryPager(base Pager, policy RetryPolicy, health *Health) *RetryPager {
	return &RetryPager{base: base, policy: policy, health: health}
}

// SetMetrics attaches the Statistics feature's fault counters.
func (rp *RetryPager) SetMetrics(m *stats.Fault) { rp.metrics = m }

// Health returns the shared degraded-mode latch.
func (rp *RetryPager) Health() *Health { return rp.health }

// Base returns the wrapped pager.
func (rp *RetryPager) Base() Pager { return rp.base }

// Retry runs fn under the policy: transient errors are retried with
// doubling backoff; exhaustion poisons health. Exported so the WAL can
// share the exact policy semantics on its append/sync path.
func Retry(policy RetryPolicy, health *Health, metrics *stats.Fault, op string, fn func() error) error {
	backoff := policy.Backoff
	tries := policy.attempts()
	var err error
	for attempt := 1; ; attempt++ {
		err = fn()
		if err == nil || !errors.Is(err, osal.ErrTransient) {
			return err
		}
		metrics.Transient()
		if attempt >= tries {
			break
		}
		metrics.Retry()
		policy.sleep(backoff)
		backoff *= 2
	}
	health.Poison(&PageError{Op: op, Err: err})
	return err
}

func (rp *RetryPager) retry(op string, fn func() error) error {
	return Retry(rp.policy, rp.health, rp.metrics, op, fn)
}

// PageSize implements Pager.
func (rp *RetryPager) PageSize() int { return rp.base.PageSize() }

// Alloc implements Pager: gated by degraded mode, retried on transient
// faults.
func (rp *RetryPager) Alloc() (PageID, error) {
	if err := rp.health.Err(); err != nil {
		return 0, err
	}
	var id PageID
	err := rp.retry("alloc", func() error {
		var e error
		id, e = rp.base.Alloc()
		return e
	})
	return id, err
}

// Free implements Pager: gated by degraded mode, retried on transient
// faults.
func (rp *RetryPager) Free(id PageID) error {
	if err := rp.health.Err(); err != nil {
		return err
	}
	return rp.retry("free", func() error { return rp.base.Free(id) })
}

// ReadPage implements Pager: never gated — degraded mode keeps serving
// reads — but transient read errors are retried.
func (rp *RetryPager) ReadPage(id PageID, buf []byte) error {
	return rp.retry("read", func() error { return rp.base.ReadPage(id, buf) })
}

// WritePage implements Pager: gated by degraded mode, retried on
// transient faults.
func (rp *RetryPager) WritePage(id PageID, buf []byte) error {
	if err := rp.health.Err(); err != nil {
		return err
	}
	return rp.retry("write", func() error { return rp.base.WritePage(id, buf) })
}

// Sync implements Pager: gated by degraded mode, retried on transient
// faults.
func (rp *RetryPager) Sync() error {
	if err := rp.health.Err(); err != nil {
		return err
	}
	return rp.retry("sync", func() error { return rp.base.Sync() })
}

// Close implements Pager. Never gated: a degraded engine must still
// release its file handle. A transient close-time sync failure is not
// retried — the data either made it by now or never will.
func (rp *RetryPager) Close() error { return rp.base.Close() }
