// Package storage is the storage-management substrate of FAME-DBMS:
// page files with free-page management, slotted pages, and heap files
// with record identifiers. Index structures (internal/btree,
// internal/index) and the buffer manager (internal/buffer) are built on
// the Pager interface defined here.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"famedb/internal/osal"
	"famedb/internal/stats"
	"famedb/internal/trace"
)

// PageID identifies a page within a page file. Page 0 is the file
// header; 0 is therefore also the "no page" sentinel for user data.
type PageID uint32

// InvalidPage is the zero PageID, never a data page.
const InvalidPage PageID = 0

// Pager is the page-granular storage interface. PageFile implements it
// directly; the buffer manager wraps any Pager and implements it again,
// so index structures are oblivious to whether a cache is configured
// (the BufferManager feature is optional in the product line).
type Pager interface {
	// PageSize returns the fixed page size in bytes.
	PageSize() int
	// Alloc allocates a page and returns its ID. Fresh pages are
	// zeroed.
	Alloc() (PageID, error)
	// Free returns a page to the free list.
	Free(PageID) error
	// ReadPage fills buf (len == PageSize) with the page contents.
	ReadPage(id PageID, buf []byte) error
	// WritePage stores buf (len == PageSize) as the page contents.
	WritePage(id PageID, buf []byte) error
	// Sync makes all written pages durable.
	Sync() error
	// Close flushes and releases resources.
	Close() error
}

const (
	fileMagic   = "FAMEPG01"
	headerSize  = 8 + 4 + 4 + 4 // magic + pageSize + pageCount + freeHead
	minPageSize = 64
	maxPageSize = 64 << 10
)

// ErrBadPage is returned for out-of-range or unallocated page accesses.
var ErrBadPage = errors.New("storage: invalid page access")

// PageFile manages fixed-size pages in an osal.File with a free list.
// It is safe for concurrent use: an internal mutex protects the header
// state and the scratch buffer, so the sharded buffer manager may issue
// reads and write-backs from several shards at once.
type PageFile struct {
	mu       sync.Mutex
	f        osal.File
	pageSize int
	// pageCount counts all pages including the header page 0.
	pageCount uint32
	// freeHead is the first page of the free list (0 = empty). Freed
	// pages store the next free PageID in their first 4 bytes.
	freeHead PageID
	dirtyHdr bool
	closed   bool
	scratch  []byte
	// metrics observes physical page traffic when the Statistics
	// feature is composed; nil otherwise (recording is then a no-op).
	metrics *stats.Pager
	// tracer records per-I/O spans when the Tracing feature is
	// composed; nil otherwise.
	tracer *trace.Tracer
}

// SetMetrics attaches the Statistics feature's page-traffic metrics.
func (pf *PageFile) SetMetrics(m *stats.Pager) { pf.metrics = m }

// SetTracer attaches the Tracing feature's span recorder.
func (pf *PageFile) SetTracer(t *trace.Tracer) { pf.tracer = t }

// CreatePageFile initializes a new page file in f with the given page
// size, overwriting any existing content.
func CreatePageFile(f osal.File, pageSize int) (*PageFile, error) {
	if pageSize < minPageSize || pageSize > maxPageSize || pageSize%2 != 0 {
		return nil, fmt.Errorf("storage: unsupported page size %d", pageSize)
	}
	if err := f.Truncate(0); err != nil {
		return nil, err
	}
	pf := &PageFile{f: f, pageSize: pageSize, pageCount: 1, scratch: make([]byte, pageSize)}
	if err := pf.writeHeader(); err != nil {
		return nil, err
	}
	return pf, nil
}

// OpenPageFile opens an existing page file and validates its header.
func OpenPageFile(f osal.File) (*PageFile, error) {
	hdr := make([]byte, headerSize)
	if _, err := f.ReadAt(hdr, 0); err != nil {
		return nil, fmt.Errorf("storage: read header: %w", err)
	}
	if string(hdr[:8]) != fileMagic {
		return nil, fmt.Errorf("storage: bad magic %q", hdr[:8])
	}
	pageSize := int(binary.LittleEndian.Uint32(hdr[8:12]))
	if pageSize < minPageSize || pageSize > maxPageSize {
		return nil, fmt.Errorf("storage: corrupt page size %d", pageSize)
	}
	pf := &PageFile{
		f:         f,
		pageSize:  pageSize,
		pageCount: binary.LittleEndian.Uint32(hdr[12:16]),
		freeHead:  PageID(binary.LittleEndian.Uint32(hdr[16:20])),
		scratch:   make([]byte, pageSize),
	}
	if pf.pageCount == 0 {
		return nil, errors.New("storage: corrupt page count 0")
	}
	return pf, nil
}

func (pf *PageFile) writeHeader() error {
	hdr := make([]byte, headerSize)
	copy(hdr, fileMagic)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(pf.pageSize))
	binary.LittleEndian.PutUint32(hdr[12:16], pf.pageCount)
	binary.LittleEndian.PutUint32(hdr[16:20], uint32(pf.freeHead))
	if _, err := pf.f.WriteAt(hdr, 0); err != nil {
		return fmt.Errorf("storage: write header: %w", err)
	}
	pf.dirtyHdr = false
	return nil
}

// PageSize implements Pager.
func (pf *PageFile) PageSize() int { return pf.pageSize }

// NumPages returns the number of allocated pages including the header.
func (pf *PageFile) NumPages() uint32 {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	return pf.pageCount
}

func (pf *PageFile) offset(id PageID) int64 { return int64(id) * int64(pf.pageSize) }

// Alloc implements Pager. Errors are wrapped in *PageError carrying
// the page ID being allocated and the "alloc" operation.
func (pf *PageFile) Alloc() (PageID, error) {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	if pf.closed {
		return 0, errors.New("storage: page file is closed")
	}
	pf.metrics.Alloc()
	if pf.freeHead != InvalidPage {
		id := pf.freeHead
		var next [4]byte
		if _, err := pf.f.ReadAt(next[:], pf.offset(id)); err != nil {
			return 0, pageErr("alloc", id, fmt.Errorf("read free list: %w", err))
		}
		pf.freeHead = PageID(binary.LittleEndian.Uint32(next[:]))
		pf.dirtyHdr = true
		// Hand out zeroed pages regardless of history.
		for i := range pf.scratch {
			pf.scratch[i] = 0
		}
		if _, err := pf.f.WriteAt(pf.scratch, pf.offset(id)); err != nil {
			return 0, pageErr("alloc", id, err)
		}
		return id, nil
	}
	id := PageID(pf.pageCount)
	pf.pageCount++
	pf.dirtyHdr = true
	for i := range pf.scratch {
		pf.scratch[i] = 0
	}
	if _, err := pf.f.WriteAt(pf.scratch, pf.offset(id)); err != nil {
		return 0, pageErr("alloc", id, err)
	}
	return id, nil
}

// Free implements Pager. The page joins the free list and may be handed
// out again by Alloc. Errors are wrapped in *PageError carrying the
// page ID and the "free" operation.
func (pf *PageFile) Free(id PageID) error {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	if err := pf.check("free", id); err != nil {
		return err
	}
	pf.metrics.Free()
	var next [4]byte
	binary.LittleEndian.PutUint32(next[:], uint32(pf.freeHead))
	if _, err := pf.f.WriteAt(next[:], pf.offset(id)); err != nil {
		return pageErr("free", id, err)
	}
	pf.freeHead = id
	pf.dirtyHdr = true
	return nil
}

// check rejects accesses to page 0 and to pages past NumPages with a
// *PageError wrapping ErrBadPage.
func (pf *PageFile) check(op string, id PageID) error {
	if pf.closed {
		return errors.New("storage: page file is closed")
	}
	if id == InvalidPage || uint32(id) >= pf.pageCount {
		return pageErr(op, id, fmt.Errorf("out of range [1,%d): %w", pf.pageCount, ErrBadPage))
	}
	return nil
}

// FreePages walks the free list and returns the IDs on it, in list
// order. A cycle or out-of-range link is reported as a *PageError
// wrapping ErrBadPage — a corrupt free list must not loop a scrub pass
// forever.
func (pf *PageFile) FreePages() ([]PageID, error) {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	if pf.closed {
		return nil, errors.New("storage: page file is closed")
	}
	var out []PageID
	seen := make(map[PageID]bool)
	for id := pf.freeHead; id != InvalidPage; {
		if seen[id] || uint32(id) >= pf.pageCount {
			return nil, pageErr("free-list", id, fmt.Errorf("corrupt free list link: %w", ErrBadPage))
		}
		seen[id] = true
		out = append(out, id)
		var next [4]byte
		if _, err := pf.f.ReadAt(next[:], pf.offset(id)); err != nil {
			return nil, pageErr("free-list", id, err)
		}
		id = PageID(binary.LittleEndian.Uint32(next[:]))
	}
	return out, nil
}

// ReadPage implements Pager.
func (pf *PageFile) ReadPage(id PageID, buf []byte) error {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	if err := pf.check("read", id); err != nil {
		return err
	}
	if len(buf) != pf.pageSize {
		return fmt.Errorf("storage: buffer size %d != page size %d", len(buf), pf.pageSize)
	}
	pf.metrics.Read()
	sp := pf.tracer.Start(trace.LayerPager, "read")
	sp.Page(uint32(id))
	if _, err := pf.f.ReadAt(buf, pf.offset(id)); err != nil {
		sp.Fail(err)
		sp.End()
		return pageErr("read", id, err)
	}
	sp.End()
	return nil
}

// WritePage implements Pager.
func (pf *PageFile) WritePage(id PageID, buf []byte) error {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	if err := pf.check("write", id); err != nil {
		return err
	}
	if len(buf) != pf.pageSize {
		return fmt.Errorf("storage: buffer size %d != page size %d", len(buf), pf.pageSize)
	}
	pf.metrics.Write()
	sp := pf.tracer.Start(trace.LayerPager, "write")
	sp.Page(uint32(id))
	if _, err := pf.f.WriteAt(buf, pf.offset(id)); err != nil {
		sp.Fail(err)
		sp.End()
		return pageErr("write", id, err)
	}
	sp.End()
	return nil
}

// Sync implements Pager: the header is flushed first, then the file is
// made durable.
func (pf *PageFile) Sync() error {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	return pf.syncLocked()
}

func (pf *PageFile) syncLocked() error {
	if pf.closed {
		return errors.New("storage: page file is closed")
	}
	if pf.dirtyHdr {
		if err := pf.writeHeader(); err != nil {
			return err
		}
	}
	pf.metrics.Sync()
	sp := pf.tracer.Start(trace.LayerPager, "sync")
	err := pf.f.Sync()
	sp.Fail(err)
	sp.End()
	return err
}

// Close implements Pager.
func (pf *PageFile) Close() error {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	if pf.closed {
		return errors.New("storage: page file already closed")
	}
	if err := pf.syncLocked(); err != nil {
		return err
	}
	pf.closed = true
	return pf.f.Close()
}
