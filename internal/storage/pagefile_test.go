package storage

import (
	"bytes"
	"errors"
	"testing"

	"famedb/internal/osal"
)

func newTestFile(t *testing.T) osal.File {
	t.Helper()
	f, err := osal.NewMemFS().Create("test.db")
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestCreateOpenPageFile(t *testing.T) {
	f := newTestFile(t)
	pf, err := CreatePageFile(f, 512)
	if err != nil {
		t.Fatal(err)
	}
	if pf.PageSize() != 512 || pf.NumPages() != 1 {
		t.Fatalf("fresh file: size %d pages %d", pf.PageSize(), pf.NumPages())
	}
	id, err := pf.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	page := make([]byte, 512)
	copy(page, "page-content")
	if err := pf.WritePage(id, page); err != nil {
		t.Fatal(err)
	}
	if err := pf.Sync(); err != nil {
		t.Fatal(err)
	}

	// Reopen and read back.
	pf2, err := OpenPageFile(f)
	if err != nil {
		t.Fatal(err)
	}
	if pf2.PageSize() != 512 || pf2.NumPages() != 2 {
		t.Fatalf("reopened: size %d pages %d", pf2.PageSize(), pf2.NumPages())
	}
	got := make([]byte, 512)
	if err := pf2.ReadPage(id, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, page) {
		t.Fatal("page content lost across reopen")
	}
}

func TestPageFileBadPageSize(t *testing.T) {
	for _, size := range []int{0, 63, 65, 1 << 20} {
		if _, err := CreatePageFile(newTestFile(t), size); err == nil {
			t.Errorf("CreatePageFile(%d) should fail", size)
		}
	}
}

func TestOpenPageFileBadMagic(t *testing.T) {
	f := newTestFile(t)
	f.WriteAt([]byte("NOTAFILE............"), 0)
	if _, err := OpenPageFile(f); err == nil {
		t.Fatal("bad magic should fail")
	}
}

func TestAllocZeroesFreedPages(t *testing.T) {
	f := newTestFile(t)
	pf, _ := CreatePageFile(f, 128)
	id, _ := pf.Alloc()
	dirty := make([]byte, 128)
	for i := range dirty {
		dirty[i] = 0xAA
	}
	pf.WritePage(id, dirty)
	if err := pf.Free(id); err != nil {
		t.Fatal(err)
	}
	id2, err := pf.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if id2 != id {
		t.Fatalf("free list did not reuse page: got %d, want %d", id2, id)
	}
	got := make([]byte, 128)
	pf.ReadPage(id2, got)
	for _, b := range got {
		if b != 0 {
			t.Fatal("reused page not zeroed")
		}
	}
	// No growth: page count unchanged after free+alloc cycle.
	if pf.NumPages() != 2 {
		t.Fatalf("NumPages = %d, want 2", pf.NumPages())
	}
}

func TestFreeListSurvivesReopen(t *testing.T) {
	f := newTestFile(t)
	pf, _ := CreatePageFile(f, 128)
	a, _ := pf.Alloc()
	b, _ := pf.Alloc()
	pf.Free(a)
	pf.Free(b)
	pf.Sync()

	pf2, err := OpenPageFile(f)
	if err != nil {
		t.Fatal(err)
	}
	// Both freed pages come back before the file grows.
	x, _ := pf2.Alloc()
	y, _ := pf2.Alloc()
	if (x != a && x != b) || (y != a && y != b) || x == y {
		t.Fatalf("free list lost: got %d,%d want {%d,%d}", x, y, a, b)
	}
	if pf2.NumPages() != 3 {
		t.Fatalf("NumPages = %d, want 3", pf2.NumPages())
	}
}

func TestPageAccessValidation(t *testing.T) {
	pf, _ := CreatePageFile(newTestFile(t), 128)
	buf := make([]byte, 128)
	if err := pf.ReadPage(0, buf); !errors.Is(err, ErrBadPage) {
		t.Errorf("reading header page = %v, want ErrBadPage", err)
	}
	if err := pf.ReadPage(99, buf); !errors.Is(err, ErrBadPage) {
		t.Errorf("reading unallocated page = %v, want ErrBadPage", err)
	}
	id, _ := pf.Alloc()
	if err := pf.WritePage(id, make([]byte, 64)); err == nil {
		t.Error("short buffer write should fail")
	}
	if err := pf.ReadPage(id, make([]byte, 256)); err == nil {
		t.Error("long buffer read should fail")
	}
}

func TestClosedPageFile(t *testing.T) {
	pf, _ := CreatePageFile(newTestFile(t), 128)
	if err := pf.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := pf.Alloc(); err == nil {
		t.Error("Alloc after close should fail")
	}
	if err := pf.Sync(); err == nil {
		t.Error("Sync after close should fail")
	}
	if err := pf.Close(); err == nil {
		t.Error("double close should fail")
	}
}

func TestManyPagesStressAllocFree(t *testing.T) {
	pf, _ := CreatePageFile(newTestFile(t), 128)
	var ids []PageID
	for i := 0; i < 100; i++ {
		id, err := pf.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	// Free every other page, then reallocate: count must not grow.
	for i := 0; i < len(ids); i += 2 {
		if err := pf.Free(ids[i]); err != nil {
			t.Fatal(err)
		}
	}
	before := pf.NumPages()
	for i := 0; i < 50; i++ {
		if _, err := pf.Alloc(); err != nil {
			t.Fatal(err)
		}
	}
	if pf.NumPages() != before {
		t.Fatalf("file grew from %d to %d pages despite free list", before, pf.NumPages())
	}
}
