package storage

// The Checksums feature: a Pager layer that seals every data page with
// a CRC32-IEEE trailer so silent device corruption (torn writes, bit
// rot) surfaces as a typed ErrPageCorrupt instead of garbage records.
//
// The layer sits directly above PageFile and below the buffer pools, so
// every flush write-back is sealed and every cache miss is verified
// with no changes in the pools themselves. The trailer lives in the
// last 4 bytes of the physical page: clients of a ChecksumPager see a
// logical page ChecksumSize bytes smaller than the platform page, which
// is the feature's storage cost (its ROM/latency cost is priced by
// bench B5 through the NFP feedback loop).
//
// Free-list pages and freshly allocated pages are written raw by
// PageFile (next-pointers and zero fill, no trailer), so an all-zero
// physical page is accepted as valid — it can only be a fresh page that
// no one has written yet. A torn or rotten page cannot masquerade as
// one: any nonzero byte forces the CRC check.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync"

	"famedb/internal/stats"
)

// ChecksumSize is the per-page trailer cost of the Checksums feature.
const ChecksumSize = 4

// ChecksumPager wraps a *PageFile with CRC32 page trailers. It is safe
// for concurrent use (the sharded buffer pool issues reads and
// write-backs from several shards at once); physical scratch buffers
// come from a pool rather than a latched field.
type ChecksumPager struct {
	base    *PageFile
	logical int
	scratch sync.Pool
	// metrics observes checksum failures and scrub traffic when the
	// Statistics feature is composed; nil otherwise.
	metrics *stats.Fault
}

// NewChecksumPager layers CRC32 trailers over base. The logical page
// size shrinks by ChecksumSize.
func NewChecksumPager(base *PageFile) (*ChecksumPager, error) {
	phys := base.PageSize()
	if phys <= ChecksumSize {
		return nil, fmt.Errorf("storage: page size %d too small for checksum trailer", phys)
	}
	cp := &ChecksumPager{base: base, logical: phys - ChecksumSize}
	cp.scratch.New = func() any { return make([]byte, phys) }
	return cp, nil
}

// SetMetrics attaches the Statistics feature's fault counters.
func (cp *ChecksumPager) SetMetrics(m *stats.Fault) { cp.metrics = m }

// Base returns the wrapped page file (the scrub pass and the composer
// need the free list and page count).
func (cp *ChecksumPager) Base() *PageFile { return cp.base }

// PageSize implements Pager: the logical size visible to clients.
func (cp *ChecksumPager) PageSize() int { return cp.logical }

// Alloc implements Pager.
func (cp *ChecksumPager) Alloc() (PageID, error) { return cp.base.Alloc() }

// Free implements Pager.
func (cp *ChecksumPager) Free(id PageID) error { return cp.base.Free(id) }

// Sync implements Pager.
func (cp *ChecksumPager) Sync() error { return cp.base.Sync() }

// Close implements Pager.
func (cp *ChecksumPager) Close() error { return cp.base.Close() }

// zeroPage reports whether every byte is zero (a fresh, never-written
// page — valid without a trailer).
func zeroPage(p []byte) bool {
	for _, b := range p {
		if b != 0 {
			return false
		}
	}
	return true
}

// verify checks a physical page image. It returns the *PageError
// (wrapping ErrPageCorrupt) describing the mismatch, or nil.
func (cp *ChecksumPager) verify(id PageID, phys []byte) error {
	payload, trailer := phys[:cp.logical], phys[cp.logical:]
	stored := binary.LittleEndian.Uint32(trailer)
	want := crc32.ChecksumIEEE(payload)
	if stored == want {
		return nil
	}
	if stored == 0 && zeroPage(payload) {
		return nil // fresh page, never sealed
	}
	cp.metrics.ChecksumFailure()
	return pageErr("read", id, fmt.Errorf("crc stored %08x, computed %08x: %w", stored, want, ErrPageCorrupt))
}

// ReadPage implements Pager: the physical page is read and its trailer
// verified before the logical payload is handed to the caller.
func (cp *ChecksumPager) ReadPage(id PageID, buf []byte) error {
	if len(buf) != cp.logical {
		return fmt.Errorf("storage: buffer size %d != page size %d", len(buf), cp.logical)
	}
	phys := cp.scratch.Get().([]byte)
	defer cp.scratch.Put(phys)
	if err := cp.base.ReadPage(id, phys); err != nil {
		return err
	}
	if err := cp.verify(id, phys); err != nil {
		return err
	}
	copy(buf, phys[:cp.logical])
	return nil
}

// WritePage implements Pager: the logical payload is sealed with its
// CRC32 trailer and written as one physical page.
func (cp *ChecksumPager) WritePage(id PageID, buf []byte) error {
	if len(buf) != cp.logical {
		return fmt.Errorf("storage: buffer size %d != page size %d", len(buf), cp.logical)
	}
	phys := cp.scratch.Get().([]byte)
	defer cp.scratch.Put(phys)
	copy(phys, buf)
	binary.LittleEndian.PutUint32(phys[cp.logical:], crc32.ChecksumIEEE(buf))
	return cp.base.WritePage(id, phys)
}

// VerifyReport summarizes a scrub pass over the page file.
type VerifyReport struct {
	// PagesChecked counts data pages whose trailers were verified.
	PagesChecked int
	// FreeSkipped counts free-list pages skipped (they carry raw
	// next-pointers, not sealed payloads).
	FreeSkipped int
	// Corrupt lists the pages whose trailers did not match, in
	// ascending page order.
	Corrupt []PageID
}

// Ok reports whether the scrub found no corruption.
func (r VerifyReport) Ok() bool { return len(r.Corrupt) == 0 }

// String renders the report for logs and the shell.
func (r VerifyReport) String() string {
	if r.Ok() {
		return fmt.Sprintf("verify: %d pages ok, %d free skipped", r.PagesChecked, r.FreeSkipped)
	}
	return fmt.Sprintf("verify: %d pages checked, %d free skipped, %d CORRUPT %v",
		r.PagesChecked, r.FreeSkipped, len(r.Corrupt), r.Corrupt)
}

// Verify scrubs every allocated data page: the free list is walked
// first (free pages carry no trailers), then each remaining page's CRC
// is checked. I/O errors abort the scrub; corruption does not — the
// report lists every bad page so an operator sees the full damage, not
// just the first hit.
func (cp *ChecksumPager) Verify() (VerifyReport, error) {
	var rep VerifyReport
	free, err := cp.base.FreePages()
	if err != nil {
		return rep, err
	}
	isFree := make(map[PageID]bool, len(free))
	for _, id := range free {
		isFree[id] = true
	}
	phys := cp.scratch.Get().([]byte)
	defer cp.scratch.Put(phys)
	n := cp.base.NumPages()
	for id := PageID(1); uint32(id) < n; id++ {
		if isFree[id] {
			rep.FreeSkipped++
			continue
		}
		if err := cp.base.ReadPage(id, phys); err != nil {
			return rep, err
		}
		rep.PagesChecked++
		if err := cp.verify(id, phys); err != nil {
			rep.Corrupt = append(rep.Corrupt, id)
		}
	}
	cp.metrics.Scrubbed(int64(rep.PagesChecked))
	return rep, nil
}
