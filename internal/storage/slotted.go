package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// A slotted page stores variable-length records within one page:
//
//	+--------+-------------------+---------------+-----------------+
//	| header | slot array (grows →)  free space  (← cells grow)    |
//	+--------+-------------------+---------------+-----------------+
//
// The header is 16 bytes:
//
//	[0]    page type (owner-defined)
//	[1]    flags (owner-defined)
//	[2:4]  slot count (uint16)
//	[4:6]  cell area start: offset of the lowest cell byte (uint16)
//	[6:10] next page (uint32, owner-defined chaining)
//	[10:14] owner extra (uint32)
//	[14:16] live record count (uint16)
//
// Each slot is 4 bytes: cell offset (uint16) and cell length (uint16).
// A deleted slot has offset 0; slot storage is reused by later inserts.
const (
	slottedHeaderSize = 16
	slotSize          = 4
)

// ErrPageFull is returned when a record does not fit in the page.
var ErrPageFull = errors.New("storage: page full")

// ErrNoRecord is returned when a slot is empty or out of range.
var ErrNoRecord = errors.New("storage: no such record")

// SlottedPage wraps a page buffer with slotted-record operations. It
// does not own the buffer; mutations write through to it.
type SlottedPage struct {
	buf []byte
}

// InitSlotted formats buf as an empty slotted page of the given type.
func InitSlotted(buf []byte, pageType byte) SlottedPage {
	for i := range buf {
		buf[i] = 0
	}
	buf[0] = pageType
	binary.LittleEndian.PutUint16(buf[4:6], uint16(len(buf)))
	return SlottedPage{buf: buf}
}

// AsSlotted interprets buf as an existing slotted page.
func AsSlotted(buf []byte) SlottedPage { return SlottedPage{buf: buf} }

// Type returns the page type byte.
func (p SlottedPage) Type() byte { return p.buf[0] }

// SetType sets the page type byte.
func (p SlottedPage) SetType(t byte) { p.buf[0] = t }

// Flags returns the owner-defined flags byte.
func (p SlottedPage) Flags() byte { return p.buf[1] }

// SetFlags sets the owner-defined flags byte.
func (p SlottedPage) SetFlags(f byte) { p.buf[1] = f }

// Next returns the owner-defined chaining page ID.
func (p SlottedPage) Next() PageID {
	return PageID(binary.LittleEndian.Uint32(p.buf[6:10]))
}

// SetNext sets the chaining page ID.
func (p SlottedPage) SetNext(id PageID) {
	binary.LittleEndian.PutUint32(p.buf[6:10], uint32(id))
}

// Extra returns the owner-defined extra word.
func (p SlottedPage) Extra() uint32 {
	return binary.LittleEndian.Uint32(p.buf[10:14])
}

// SetExtra sets the owner-defined extra word.
func (p SlottedPage) SetExtra(v uint32) {
	binary.LittleEndian.PutUint32(p.buf[10:14], v)
}

// NumSlots returns the slot count including tombstones.
func (p SlottedPage) NumSlots() int {
	return int(binary.LittleEndian.Uint16(p.buf[2:4]))
}

func (p SlottedPage) setNumSlots(n int) {
	binary.LittleEndian.PutUint16(p.buf[2:4], uint16(n))
}

// NumRecords returns the live (non-deleted) record count.
func (p SlottedPage) NumRecords() int {
	return int(binary.LittleEndian.Uint16(p.buf[14:16]))
}

func (p SlottedPage) setNumRecords(n int) {
	binary.LittleEndian.PutUint16(p.buf[14:16], uint16(n))
}

func (p SlottedPage) cellStart() int {
	return int(binary.LittleEndian.Uint16(p.buf[4:6]))
}

func (p SlottedPage) setCellStart(off int) {
	binary.LittleEndian.PutUint16(p.buf[4:6], uint16(off))
}

func (p SlottedPage) slot(i int) (off, length int) {
	base := slottedHeaderSize + i*slotSize
	return int(binary.LittleEndian.Uint16(p.buf[base : base+2])),
		int(binary.LittleEndian.Uint16(p.buf[base+2 : base+4]))
}

func (p SlottedPage) setSlot(i, off, length int) {
	base := slottedHeaderSize + i*slotSize
	binary.LittleEndian.PutUint16(p.buf[base:base+2], uint16(off))
	binary.LittleEndian.PutUint16(p.buf[base+2:base+4], uint16(length))
}

// FreeSpace returns the bytes available for one new record (including
// its slot, assuming a fresh slot is needed).
func (p SlottedPage) FreeSpace() int {
	free := p.cellStart() - (slottedHeaderSize + p.NumSlots()*slotSize) - slotSize
	if free < 0 {
		return 0
	}
	return free
}

// Insert stores rec and returns its slot number. Tombstone slots are
// reused. It returns ErrPageFull when rec does not fit even after
// compaction.
func (p SlottedPage) Insert(rec []byte) (int, error) {
	if len(rec) > len(p.buf) {
		return 0, fmt.Errorf("storage: record of %d bytes exceeds page size: %w", len(rec), ErrPageFull)
	}
	if slot, ok := p.tryInsert(rec); ok {
		return slot, nil
	}
	p.Compact()
	if slot, ok := p.tryInsert(rec); ok {
		return slot, nil
	}
	return 0, ErrPageFull
}

// tryInsert attempts the insert against the current cell layout.
func (p SlottedPage) tryInsert(rec []byte) (int, bool) {
	slotIdx := -1
	for i := 0; i < p.NumSlots(); i++ {
		if off, _ := p.slot(i); off == 0 {
			slotIdx = i
			break
		}
	}
	needSlot := 0
	if slotIdx == -1 {
		needSlot = slotSize
	}
	if p.cellStart()-(slottedHeaderSize+p.NumSlots()*slotSize)-needSlot < len(rec) {
		return 0, false
	}
	off := p.cellStart() - len(rec)
	copy(p.buf[off:], rec)
	p.setCellStart(off)
	if slotIdx == -1 {
		slotIdx = p.NumSlots()
		p.setNumSlots(slotIdx + 1)
	}
	p.setSlot(slotIdx, off, len(rec))
	p.setNumRecords(p.NumRecords() + 1)
	return slotIdx, true
}

// Read returns the record in the given slot. The returned slice aliases
// the page buffer; callers must copy before the page is modified.
func (p SlottedPage) Read(slot int) ([]byte, error) {
	if slot < 0 || slot >= p.NumSlots() {
		return nil, fmt.Errorf("storage: slot %d of %d: %w", slot, p.NumSlots(), ErrNoRecord)
	}
	off, length := p.slot(slot)
	if off == 0 {
		return nil, fmt.Errorf("storage: slot %d deleted: %w", slot, ErrNoRecord)
	}
	return p.buf[off : off+length], nil
}

// Delete removes the record in the given slot, leaving a reusable
// tombstone.
func (p SlottedPage) Delete(slot int) error {
	if _, err := p.Read(slot); err != nil {
		return err
	}
	p.setSlot(slot, 0, 0)
	p.setNumRecords(p.NumRecords() - 1)
	return nil
}

// Update replaces the record in the given slot. If the new record is
// larger and does not fit, ErrPageFull is returned and the page is
// unchanged (the caller relocates the record).
func (p SlottedPage) Update(slot int, rec []byte) error {
	cur, err := p.Read(slot)
	if err != nil {
		return err
	}
	off, _ := p.slot(slot)
	if len(rec) <= len(cur) {
		copy(p.buf[off:], rec)
		p.setSlot(slot, off, len(rec))
		return nil
	}
	// Relocate within the page: tombstone the old cell, then insert.
	// Copy the old bytes first — Insert may compact the page, which
	// does not preserve tombstoned cells.
	old := append([]byte(nil), cur...)
	p.setSlot(slot, 0, 0)
	p.setNumRecords(p.NumRecords() - 1)
	toStore, failErr := rec, error(nil)
	newSlot, err := p.Insert(toStore)
	if err != nil {
		// Roll back by reinserting the old record; it fit before the
		// tombstone freed its space, so this cannot fail.
		failErr = err
		newSlot, err = p.Insert(old)
		if err != nil {
			panic("storage: update rollback failed: " + err.Error())
		}
	}
	if newSlot != slot {
		// Insert picked the lowest tombstone, which may not be the
		// freed slot if earlier tombstones existed; swap so the
		// caller-visible slot number is stable.
		no, nl := p.slot(newSlot)
		oo, ol := p.slot(slot)
		p.setSlot(slot, no, nl)
		p.setSlot(newSlot, oo, ol)
	}
	return failErr
}

// Compact rewrites the cell area to squeeze out holes left by deletes
// and updates. Slot numbers are preserved.
func (p SlottedPage) Compact() {
	type cell struct {
		slot, off, length int
	}
	var cells []cell
	for i := 0; i < p.NumSlots(); i++ {
		off, length := p.slot(i)
		if off != 0 {
			cells = append(cells, cell{i, off, length})
		}
	}
	// Copy cells into a scratch area ordered from the page end.
	scratch := make([]byte, 0, len(p.buf))
	write := len(p.buf)
	for _, c := range cells {
		scratch = append(scratch, p.buf[c.off:c.off+c.length]...)
	}
	read := 0
	for _, c := range cells {
		write -= c.length
		copy(p.buf[write:], scratch[read:read+c.length])
		p.setSlot(c.slot, write, c.length)
		read += c.length
	}
	p.setCellStart(write)
	// Tombstone slots are deliberately NOT reclaimed: slot numbers are
	// stable identifiers (heap RIDs embed them), so the slot array only
	// ever shrinks when the whole page is reformatted.
}

// Records calls fn for every live record with its slot number. The
// record slice aliases the page buffer.
func (p SlottedPage) Records(fn func(slot int, rec []byte) bool) {
	for i := 0; i < p.NumSlots(); i++ {
		off, length := p.slot(i)
		if off == 0 {
			continue
		}
		if !fn(i, p.buf[off:off+length]) {
			return
		}
	}
}
