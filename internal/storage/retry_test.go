package storage

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"famedb/internal/osal"
)

func newRetryStack(t *testing.T, policy RetryPolicy) (*RetryPager, *osal.FaultFS, *Health) {
	t.Helper()
	ffs := osal.NewFaultFS(osal.NewMemFS())
	f, err := ffs.Create("test.db")
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	pf, err := CreatePageFile(f, 256)
	if err != nil {
		t.Fatalf("CreatePageFile: %v", err)
	}
	h := NewHealth()
	return NewRetryPager(pf, policy, h), ffs, h
}

// TestRetryHealsTransient: a transient fault inside the retry budget is
// invisible to the caller, and the injected clock sees the backoff.
func TestRetryHealsTransient(t *testing.T) {
	var slept []time.Duration
	policy := RetryPolicy{
		Attempts: 4,
		Backoff:  time.Millisecond,
		Sleep:    func(d time.Duration) { slept = append(slept, d) },
	}
	rp, ffs, h := newRetryStack(t, policy)
	defer rp.Close()
	id, err := rp.Alloc()
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	// Writes 1..2 from now fail transiently, then the device heals.
	s := osal.NewSchedule(1)
	s.Add(osal.Rule{Class: osal.OpWrite, At: 1, Kind: osal.FaultError, Heal: 2})
	ffs.SetSchedule(s)
	page := bytes.Repeat([]byte{0x11}, rp.PageSize())
	if err := rp.WritePage(id, page); err != nil {
		t.Fatalf("WritePage should retry through transient faults: %v", err)
	}
	if h.Degraded() {
		t.Fatalf("healed fault must not poison")
	}
	want := []time.Duration{time.Millisecond, 2 * time.Millisecond}
	if len(slept) != len(want) || slept[0] != want[0] || slept[1] != want[1] {
		t.Fatalf("backoff sleeps = %v, want %v", slept, want)
	}
}

// TestRetryExhaustionPoisons: a transient fault outliving the budget
// poisons the shared latch — writes return ErrDegraded, reads serve.
func TestRetryExhaustionPoisons(t *testing.T) {
	policy := RetryPolicy{Attempts: 2, Sleep: func(time.Duration) {}}
	rp, ffs, h := newRetryStack(t, policy)
	defer rp.Close()
	id, err := rp.Alloc()
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	page := bytes.Repeat([]byte{0x22}, rp.PageSize())
	if err := rp.WritePage(id, page); err != nil {
		t.Fatalf("WritePage: %v", err)
	}

	var degradedWith error
	h.OnDegrade(func(reason error) { degradedWith = reason })

	// A long transient outage: more consecutive failures than attempts.
	s := osal.NewSchedule(2)
	s.Add(osal.Rule{Class: osal.OpWrite, At: 1, Kind: osal.FaultError, Heal: 10})
	ffs.SetSchedule(s)
	err = rp.WritePage(id, page)
	if !errors.Is(err, osal.ErrTransient) {
		t.Fatalf("exhausting write = %v, want the transient error", err)
	}
	if !h.Degraded() {
		t.Fatalf("exhaustion must poison the latch")
	}
	if degradedWith == nil || !errors.Is(degradedWith, osal.ErrTransient) {
		t.Fatalf("OnDegrade reason = %v", degradedWith)
	}
	ffs.SetSchedule(nil)

	// Writes now refuse with ErrDegraded without touching the device.
	if err := rp.WritePage(id, page); !errors.Is(err, ErrDegraded) {
		t.Fatalf("degraded WritePage = %v, want ErrDegraded", err)
	}
	if _, err := rp.Alloc(); !errors.Is(err, ErrDegraded) {
		t.Fatalf("degraded Alloc = %v, want ErrDegraded", err)
	}
	if err := rp.Sync(); !errors.Is(err, ErrDegraded) {
		t.Fatalf("degraded Sync = %v, want ErrDegraded", err)
	}
	// Reads keep serving the pre-fault data.
	got := make([]byte, rp.PageSize())
	if err := rp.ReadPage(id, got); err != nil {
		t.Fatalf("degraded ReadPage = %v, want success", err)
	}
	if !bytes.Equal(got, page) {
		t.Fatalf("degraded read returned wrong data")
	}
}

// TestRetryPermanentPropagates: permanent injected faults are not
// retried and do not poison.
func TestRetryPermanentPropagates(t *testing.T) {
	attempts := 0
	policy := RetryPolicy{Attempts: 5, Sleep: func(time.Duration) { attempts++ }}
	rp, ffs, h := newRetryStack(t, policy)
	id, err := rp.Alloc()
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	ffs.FailAfter(1)
	page := bytes.Repeat([]byte{0x33}, rp.PageSize())
	err = rp.WritePage(id, page)
	if !errors.Is(err, osal.ErrInjected) || errors.Is(err, osal.ErrTransient) {
		t.Fatalf("permanent fault = %v", err)
	}
	if attempts != 0 {
		t.Fatalf("permanent fault was retried %d times", attempts)
	}
	if h.Degraded() {
		t.Fatalf("permanent fault must not poison (crash-window tests recover by disarming)")
	}
}

// TestRetryCorruptNotRetried: ErrPageCorrupt is not transient — the
// retry layer must hand it straight up.
func TestRetryCorruptNotRetried(t *testing.T) {
	ffs := osal.NewFaultFS(osal.NewMemFS())
	f, _ := ffs.Create("test.db")
	pf, err := CreatePageFile(f, 256)
	if err != nil {
		t.Fatalf("CreatePageFile: %v", err)
	}
	cp, err := NewChecksumPager(pf)
	if err != nil {
		t.Fatalf("NewChecksumPager: %v", err)
	}
	retried := 0
	rp := NewRetryPager(cp, RetryPolicy{Attempts: 3, Sleep: func(time.Duration) { retried++ }}, NewHealth())
	defer rp.Close()
	id, _ := rp.Alloc()
	page := bytes.Repeat([]byte{0x44}, rp.PageSize())
	s := osal.NewSchedule(9)
	s.Add(osal.Rule{Class: osal.OpWrite, At: 1, Kind: osal.FaultTorn})
	ffs.SetSchedule(s)
	if err := rp.WritePage(id, page); err != nil {
		t.Fatalf("torn write: %v", err)
	}
	ffs.SetSchedule(nil)
	buf := make([]byte, rp.PageSize())
	if err := rp.ReadPage(id, buf); !errors.Is(err, ErrPageCorrupt) {
		t.Fatalf("ReadPage = %v, want ErrPageCorrupt", err)
	}
	if retried != 0 {
		t.Fatalf("corruption was retried %d times", retried)
	}
}

// TestHealthConcurrentPoison: racing Poison calls latch exactly once
// and concurrent readers of the gate never see a torn state.
func TestHealthConcurrentPoison(t *testing.T) {
	h := NewHealth()
	fired := 0
	h.OnDegrade(func(error) { fired++ })
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			h.Poison(errors.New("race"))
		}(i)
		go func() {
			defer wg.Done()
			if h.Degraded() && h.Reason() == nil {
				t.Error("degraded with nil reason")
			}
		}()
	}
	wg.Wait()
	if fired != 1 {
		t.Fatalf("OnDegrade fired %d times, want 1", fired)
	}
	if !errors.Is(h.Err(), ErrDegraded) {
		t.Fatalf("Err = %v", h.Err())
	}
}
