package storage

// Typed error taxonomy of the fault-survival layer. Three sentinels
// span the spectrum a caller must distinguish:
//
//   - osal.ErrInjected / osal.ErrTransient — the device failed the
//     operation (transient faults heal; RetryPager retries them).
//   - ErrPageCorrupt — the device lied: the operation "succeeded" but
//     the bytes are wrong (checksum trailer mismatch). Never retried;
//     retrying re-reads the same rot.
//   - ErrDegraded — the database itself refused: a transient fault
//     outlived the retry budget and the engine poisoned into read-only
//     mode to stop compounding damage.
//
// PageError wraps any of them with the page ID and operation so error
// chains stay inspectable with errors.Is while logs carry the context.

import (
	"errors"
	"fmt"
)

// ErrPageCorrupt is returned when a page's checksum trailer does not
// match its contents (the Checksums feature). It always arrives wrapped
// in a *PageError carrying the page ID.
var ErrPageCorrupt = errors.New("storage: page checksum mismatch")

// ErrDegraded is returned for write-class operations after the engine
// poisoned into degraded read-only mode. Reads keep serving.
var ErrDegraded = errors.New("storage: degraded read-only mode")

// PageError wraps a page-granular failure with the operation and page
// ID. Unwrap exposes the cause, so errors.Is(err, ErrBadPage) and
// friends see through it.
type PageError struct {
	// Op is the failing operation: "alloc", "free", "read", "write",
	// "verify", "free-list".
	Op string
	// Page is the page the operation addressed.
	Page PageID
	// Err is the underlying cause.
	Err error
}

// Error implements error.
func (e *PageError) Error() string {
	return fmt.Sprintf("storage: %s page %d: %v", e.Op, e.Page, e.Err)
}

// Unwrap exposes the cause for errors.Is / errors.As.
func (e *PageError) Unwrap() error { return e.Err }

// pageErr wraps err with op and page context unless it is nil or
// already a *PageError for the same page.
func pageErr(op string, id PageID, err error) error {
	if err == nil {
		return nil
	}
	var pe *PageError
	if errors.As(err, &pe) && pe.Page == id {
		return err
	}
	return &PageError{Op: op, Page: id, Err: err}
}
